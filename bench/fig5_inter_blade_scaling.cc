// Figure 5 (center): performance scaling across compute blades (10 threads per blade).
//
// Paper series: MIND, MIND-PSO (simulated weaker consistency), MIND-PSO+ (PSO + unbounded
// directory) and GAM on TF / GC / M_A / M_C at 1-8 blades, normalized to MIND at 1 blade.
// Expected shape: TF scales well for MIND (~1.5-2x per doubling); GC peaks around 2 blades
// then degrades (contentious shared writes); M_A / M_C fail to scale past 1 blade under TSO
// (invalidation ping-pong + directory capacity pressure) while PSO/PSO+ and GAM fare better.
#include <functional>
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::MakeMind;
using bench::MakeMindPso;
using bench::MakeMindPsoPlus;
using bench::PaperGamConfig;
using bench::RunWorkload;
using bench::ScaledOps;

using SpecFn = std::function<WorkloadSpec(int blades, uint64_t per_thread)>;
constexpr int kThreadsPerBlade = 10;

void RunFigure() {
  const uint64_t total_ops = ScaledOps(400'000);
  const std::vector<int> blade_counts = {1, 2, 4, 8};
  const std::vector<std::pair<std::string, SpecFn>> workloads = {
      {"TF", [](int b, uint64_t per) { return TfSpec(b, kThreadsPerBlade, per); }},
      {"GC", [](int b, uint64_t per) { return GcSpec(b, kThreadsPerBlade, per); }},
      {"MA", [](int b, uint64_t per) { return MemcachedASpec(b, kThreadsPerBlade, per); }},
      {"MC", [](int b, uint64_t per) { return MemcachedCSpec(b, kThreadsPerBlade, per); }},
  };

  PrintSectionHeader(
      "Figure 5 (center): inter-blade scaling, 10 threads/blade, normalized perf "
      "(1 = MIND @ 1 blade)");
  TablePrinter table({"workload", "blades", "MIND", "MIND-PSO", "MIND-PSO+", "GAM"});
  table.PrintHeader();

  for (const auto& [name, make_spec] : workloads) {
    double mind_base = 0.0;
    for (int blades : blade_counts) {
      const uint64_t per_thread =
          total_ops / static_cast<uint64_t>(blades * kThreadsPerBlade);
      const WorkloadSpec spec = make_spec(blades, per_thread);

      auto mind = MakeMind(blades);
      const auto mind_report = RunWorkload(*mind, spec);
      auto pso = MakeMindPso(blades);
      const auto pso_report = RunWorkload(*pso, spec);
      auto pso_plus = MakeMindPsoPlus(blades);
      const auto pso_plus_report = RunWorkload(*pso_plus, spec);
      GamSystem gam(PaperGamConfig(blades));
      const auto gam_report = RunWorkload(gam, spec);

      const double mind_perf = 1.0 / ToSeconds(mind_report.makespan);
      if (blades == 1) {
        mind_base = mind_perf;
      }
      table.PrintRow(
          name, blades, TablePrinter::Fmt(mind_perf / mind_base, 2),
          TablePrinter::Fmt((1.0 / ToSeconds(pso_report.makespan)) / mind_base, 2),
          TablePrinter::Fmt((1.0 / ToSeconds(pso_plus_report.makespan)) / mind_base, 2),
          TablePrinter::Fmt((1.0 / ToSeconds(gam_report.makespan)) / mind_base, 2));
    }
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
