// Figure 5 (right): Native-KVS throughput (MOPS) under YCSB-A and YCSB-C.
//
// Paper series: MIND and FastSwap, single-blade 1-10 threads; MIND alone for 20-80 threads
// (2-8 blades — FastSwap cannot scale past one blade). Expected shape: near-linear
// single-blade scaling for both; beyond one blade, YCSB-C (read-only) keeps scaling for
// MIND while YCSB-A (50% writes) collapses under cross-blade read-write contention.
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::MakeMind;
using bench::PaperFastSwapConfig;
using bench::RunWorkload;
using bench::ScaledOps;

constexpr int kThreadsPerBlade = 10;

void RunFigure() {
  const uint64_t total_ops = ScaledOps(300'000);

  PrintSectionHeader("Figure 5 (right): Native-KVS, single blade (MOPS)");
  TablePrinter single({"ycsb", "threads", "MIND", "FastSwap"});
  single.PrintHeader();
  for (double read_ratio : {0.5, 1.0}) {
    const char* ycsb = read_ratio >= 1.0 ? "C" : "A";
    for (int threads : {1, 2, 4, 10}) {
      const WorkloadSpec spec = NativeKvsSpec(1, threads, read_ratio,
                                              total_ops / static_cast<uint64_t>(threads),
                                              /*table_pages=*/32'768);
      auto mind = MakeMind(1);
      const auto mind_report = RunWorkload(*mind, spec);
      FastSwapSystem fastswap(PaperFastSwapConfig());
      const auto fs_report = RunWorkload(fastswap, spec);
      single.PrintRow(ycsb, threads, TablePrinter::Fmt(mind_report.throughput_mops, 3),
                      TablePrinter::Fmt(fs_report.throughput_mops, 3));
    }
  }

  PrintSectionHeader(
      "Figure 5 (right): Native-KVS, multiple blades, 10 threads/blade (MOPS; FastSwap "
      "cannot scale past one blade)");
  TablePrinter multi({"ycsb", "threads", "blades", "MIND"});
  multi.PrintHeader();
  for (double read_ratio : {0.5, 1.0}) {
    const char* ycsb = read_ratio >= 1.0 ? "C" : "A";
    for (int blades : {2, 4, 8}) {
      const int threads = blades * kThreadsPerBlade;
      const WorkloadSpec spec = NativeKvsSpec(blades, kThreadsPerBlade, read_ratio,
                                              total_ops / static_cast<uint64_t>(threads),
                                              /*table_pages=*/32'768);
      auto mind = MakeMind(blades);
      const auto report = RunWorkload(*mind, spec);
      multi.PrintRow(ycsb, threads, blades, TablePrinter::Fmt(report.throughput_mops, 3));
    }
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
