// Shared helpers for the figure benches: system factories with the paper's evaluation
// configuration (§6.3, §7) and a one-call replay runner.
//
// Every bench prints the rows/series of one paper figure. Scale the (simulated) job size
// with MIND_BENCH_SCALE (default 1.0) to trade fidelity for wall-clock time.
#ifndef MIND_BENCH_BENCH_UTIL_H_
#define MIND_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/baselines/fastswap.h"
#include "src/baselines/gam.h"
#include "src/baselines/mind_system.h"
#include "src/common/table_printer.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

namespace mind {
namespace bench {

inline double Scale() {
  if (const char* s = std::getenv("MIND_BENCH_SCALE"); s != nullptr) {
    const double v = std::atof(s);
    if (v > 0.0) {
      return v;
    }
  }
  return 1.0;
}

inline uint64_t ScaledOps(uint64_t base) {
  const auto v = static_cast<uint64_t>(static_cast<double>(base) * Scale());
  return std::max<uint64_t>(v, 1000);
}

// The paper's evaluation rack: 8 compute blades (10 threads each at full scale), 8 memory
// blade VMs, 512 MB local DRAM per compute blade, 30k directory slots, 45k rules.
//
// The bounded-splitting epoch is scaled with the benches' scaled-down job sizes: the paper
// runs last 60+ seconds (hundreds of 100 ms epochs); our replays last ~100-500 simulated
// milliseconds, so a 5 ms epoch preserves the epochs-per-run ratio the control loop needs.
// Figure 9 (right) sweeps the epoch length explicitly.
inline RackConfig PaperRackConfig(int compute_blades) {
  RackConfig c;
  c.num_compute_blades = compute_blades;
  c.num_memory_blades = 8;
  c.memory_blade_capacity = 8ull << 30;
  c.compute_cache_bytes = 512ull << 20;
  c.directory_slots = 30000;
  c.tcam_rules = 45000;
  c.splitting.epoch_length = 5 * kMillisecond;
  return c;
}

inline GamConfig PaperGamConfig(int compute_blades) {
  GamConfig c;
  c.num_compute_blades = compute_blades;
  c.num_memory_blades = 8;
  c.compute_cache_bytes = 512ull << 20;
  return c;
}

inline FastSwapConfig PaperFastSwapConfig() {
  FastSwapConfig c;
  c.num_memory_blades = 8;
  c.compute_cache_bytes = 512ull << 20;
  return c;
}

inline std::unique_ptr<MindSystem> MakeMind(int blades, std::string label = "MIND") {
  return std::make_unique<MindSystem>(PaperRackConfig(blades), std::move(label));
}

inline std::unique_ptr<MindSystem> MakeMindPso(int blades) {
  RackConfig c = PaperRackConfig(blades);
  c.consistency = ConsistencyModel::kPso;
  return std::make_unique<MindSystem>(c, "MIND-PSO");
}

inline std::unique_ptr<MindSystem> MakeMindPsoPlus(int blades) {
  RackConfig c = PaperRackConfig(blades);
  c.consistency = ConsistencyModel::kPso;
  c.directory_slots = 10'000'000;  // "Infinite" directory capacity (§7.1).
  return std::make_unique<MindSystem>(c, "MIND-PSO+");
}

// MIND_PREFETCH=<none|nextn|stride> opts every RunWorkload replay into that prefetch
// policy (kNone — no prefetching — remains the default).
inline PrefetchPolicy PrefetchPolicyFromEnv() {
  if (const char* s = std::getenv("MIND_PREFETCH"); s != nullptr) {
    if (auto p = ParsePrefetchPolicy(s); p.has_value()) {
      return *p;
    }
    // Fail fast: silently running a long sweep with the wrong policy is worse.
    std::fprintf(stderr, "bench: unknown MIND_PREFETCH \"%s\" (want none|nextn|stride)\n",
                 s);
    std::exit(2);
  }
  return PrefetchPolicy::kNone;
}

// `--prefetch=<none|nextn|stride>` on a bench/example command line, with MIND_PREFETCH
// as the fallback.
inline PrefetchPolicy PrefetchFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--prefetch=", 11) == 0) {
      if (auto p = ParsePrefetchPolicy(argv[i] + 11); p.has_value()) {
        return *p;
      }
      std::fprintf(stderr, "unknown --prefetch \"%s\" (want none|nextn|stride)\n",
                   argv[i] + 11);
      std::exit(2);
    }
  }
  return PrefetchPolicyFromEnv();
}

// MIND_TRACE=FILE opts every RunWorkload replay into TraceScope recording and writes the
// Chrome trace_event JSON to FILE (second and later replays in the same bench get a
// numeric suffix so they don't clobber each other). Empty value: fail fast, exit 2.
inline std::string TracePathFromEnv() {
  if (const char* s = std::getenv("MIND_TRACE"); s != nullptr) {
    if (*s == '\0') {
      std::fprintf(stderr, "bench: MIND_TRACE must name an output file\n");
      std::exit(2);
    }
    return s;
  }
  return {};
}

// `--trace=FILE` on an example command line, with MIND_TRACE as the fallback.
inline std::string TraceFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      if (argv[i][8] == '\0') {
        std::fprintf(stderr, "--trace needs an output file (--trace=FILE)\n");
        std::exit(2);
      }
      return argv[i] + 8;
    }
  }
  return TracePathFromEnv();
}

// MIND_PROFILE=<0|1> opts every RunWorkload replay into the wall-clock phase profiler.
inline bool ProfileFromEnv() {
  if (const char* s = std::getenv("MIND_PROFILE"); s != nullptr) {
    if (std::strcmp(s, "1") == 0 || std::strcmp(s, "on") == 0) {
      return true;
    }
    if (std::strcmp(s, "0") == 0 || std::strcmp(s, "off") == 0) {
      return false;
    }
    std::fprintf(stderr, "bench: unknown MIND_PROFILE \"%s\" (want 0|1|on|off)\n", s);
    std::exit(2);
  }
  return false;
}

// `--profile` on an example command line, with MIND_PROFILE as the fallback.
inline bool ProfileFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      return true;
    }
  }
  return ProfileFromEnv();
}

// Per-phase wall-clock breakdown after a profiled run: one line per lane that recorded
// anything, shard lanes first, the coordinator's serial lane last.
inline void PrintPhaseProfile(const PhaseProfiler& prof) {
  std::printf("phase profile (wall clock):\n");
  for (size_t l = 0; l < prof.num_lanes(); ++l) {
    const PhaseProfiler::Lane& lane = prof.lane(l);
    uint64_t lane_total = 0;
    for (int p = 0; p < PhaseProfiler::kNumPhases; ++p) {
      lane_total += lane.total_ns[p];
    }
    if (lane_total == 0) {
      continue;
    }
    if (l == prof.serial_lane()) {
      std::printf("  serial :");
    } else {
      std::printf("  shard %zu:", l);
    }
    for (int p = 0; p < PhaseProfiler::kNumPhases; ++p) {
      if (lane.count[p] == 0) {
        continue;
      }
      std::printf(" %s %.2fms/%llu",
                  PhaseProfiler::PhaseName(static_cast<PhaseProfiler::Phase>(p)),
                  static_cast<double>(lane.total_ns[p]) / 1e6,
                  static_cast<unsigned long long>(lane.count[p]));
    }
    std::printf("\n");
  }
}

// Writes the run's trace (plus profiler lanes, when present) to `path` and prints one
// accounting line. Call after Run() — the engine finalizes the scope there.
inline void WriteTraceReportLine(const ReplayEngine& engine, const std::string& path) {
  const TraceScope* scope = engine.trace_scope();
  if (scope == nullptr || !scope->finalized()) {
    return;
  }
  if (!scope->WriteChromeJsonFile(path, engine.profiler())) {
    std::fprintf(stderr, "bench: cannot write trace to %s\n", path.c_str());
    std::exit(2);
  }
  std::printf("[trace] %s: %zu semantic + %zu execution events, digest %016llx, "
              "dropped %llu\n",
              path.c_str(), scope->semantic_events(), scope->execution_events(),
              static_cast<unsigned long long>(scope->SemanticDigest()),
              static_cast<unsigned long long>(scope->dropped()));
}

// One accounting line per replayed system when prefetching was on: the coverage /
// accuracy numbers the prefetch figure plots, attached to the system's report.
inline void PrintPrefetchReportLine(const ReplayReport& report, PrefetchPolicy policy) {
  if (policy == PrefetchPolicy::kNone) {
    return;
  }
  const PrefetchStats& p = report.prefetch;
  std::printf("[prefetch] %-8s %-10s policy=%-6s issued=%llu useful=%llu late=%llu "
              "evicted=%llu stale=%llu rearmed=%llu coverage=%.1f%% accuracy=%.1f%%\n",
              report.system.c_str(), report.workload.c_str(), ToString(policy),
              static_cast<unsigned long long>(p.issued),
              static_cast<unsigned long long>(p.useful),
              static_cast<unsigned long long>(p.late),
              static_cast<unsigned long long>(p.evicted_unused),
              static_cast<unsigned long long>(p.discarded_stale),
              static_cast<unsigned long long>(p.rearmed),
              100.0 * report.PrefetchCoverage(), 100.0 * p.Accuracy());
}

// Generates traces for `spec`, replays them on `sys`, returns the report. Every shard
// count drives the same channel-based engine (results are bit-identical across shard
// counts and vs the per-op reference path); `shards > 1` adds concurrent execution. A
// sampler forces the per-op reference path (exact global observation points). The
// MIND_PREFETCH env override (see PrefetchPolicyFromEnv) opts the replay into a prefetch
// policy and prints the per-system accounting line.
inline ReplayReport RunWorkload(MemorySystem& sys, const WorkloadSpec& spec,
                                ReplayEngine::Sampler sampler = nullptr,
                                SimTime sample_interval = 10 * kMillisecond, int shards = 1) {
  const WorkloadTraces traces = GenerateTraces(spec);
  ReplayOptions opts;
  opts.shards = shards;
  // A sampler forces the per-op reference path anyway; opting out of channels up front
  // also skips Setup's VA-resolved op materialization for those runs.
  opts.use_channels = sampler == nullptr;
  opts.prefetch = PrefetchPolicyFromEnv();
  const std::string trace_path = TracePathFromEnv();
  opts.trace = !trace_path.empty();
  opts.profile = ProfileFromEnv();
  ReplayEngine engine(&sys, &traces, opts);
  const Status s = engine.Setup();
  if (!s.ok()) {
    std::fprintf(stderr, "replay setup failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  ReplayReport report = engine.Run(std::move(sampler), sample_interval);
  PrintPrefetchReportLine(report, opts.prefetch);
  if (opts.trace) {
    // A bench replays many workload/system pairs; suffix every trace after the first so
    // one MIND_TRACE value yields one file per replay instead of the last one standing.
    static int traced_runs = 0;
    const std::string path =
        traced_runs == 0 ? trace_path : trace_path + "." + std::to_string(traced_runs);
    ++traced_runs;
    WriteTraceReportLine(engine, path);
  }
  if (opts.profile && engine.profiler() != nullptr) {
    PrintPhaseProfile(*engine.profiler());
  }
  return report;
}

// `--shards=N` on a bench/example command line, with MIND_REPLAY_SHARDS as the fallback.
inline int ShardsFromArgs(int argc, char** argv, int def = 1) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      const int v = std::atoi(argv[i] + 9);
      if (v > 0) {
        return v;
      }
    }
  }
  if (const char* s = std::getenv("MIND_REPLAY_SHARDS"); s != nullptr) {
    const int v = std::atoi(s);
    if (v > 0) {
      return v;
    }
  }
  return def;
}

// ---------------------------------------------------------------------------
// BENCH_*.json trajectory emitter (shared by microbench_core and the wall-clock figure
// bench): appends one labeled entry per run so perf accumulates across PRs.
// ---------------------------------------------------------------------------

struct BenchResult {
  std::string name;
  double ns_per_op = 0.0;
  uint64_t iterations = 0;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {  // Control characters are illegal inside JSON strings.
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Serializes one trajectory entry, indented to sit inside the "entries" array.
inline std::string SerializeEntry(const std::string& label,
                                  const std::vector<BenchResult>& results) {
  std::ostringstream os;
  os << "    {\n";
  os << "      \"label\": \"" << JsonEscape(label) << "\",\n";
  os << "      \"unix_time\": " << static_cast<long long>(std::time(nullptr)) << ",\n";
  os << "      \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    char ns[64];
    std::snprintf(ns, sizeof(ns), "%.3f", results[i].ns_per_op);
    os << "        {\"name\": \"" << JsonEscape(results[i].name) << "\", \"ns_per_op\": " << ns
       << ", \"iterations\": " << results[i].iterations << "}"
       << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "      ]\n";
  os << "    }";
  return os.str();
}

// Appends the entry to the trajectory file, creating it when absent. The writer always
// emits the same shape (see bench/README.md), so the merge is a suffix splice.
inline void AppendTrajectoryEntry(const std::vector<BenchResult>& results,
                                  const char* default_label = "run") {
  if (results.empty()) {
    return;
  }
  const char* path_env = std::getenv("MIND_BENCH_JSON");
  std::string path = path_env != nullptr ? path_env : "BENCH_microbench.json";
  if (path_env == nullptr && !std::ifstream(path).good() &&
      std::ifstream("../BENCH_microbench.json").good()) {
    // The usual workflow runs from build/ (gitignored): when no trajectory file exists
    // here but the committed one sits in the parent directory, append there instead of
    // silently growing an invisible copy.
    path = "../BENCH_microbench.json";
  }
  const char* label_env = std::getenv("MIND_BENCH_LABEL");
  const std::string label = label_env != nullptr ? label_env : default_label;
  const std::string entry = SerializeEntry(label, results);

  std::string existing;
  if (std::ifstream in(path); in.good()) {
    std::ostringstream buf;
    buf << in.rdbuf();
    existing = buf.str();
  }

  std::string out;
  const std::string suffix = "\n  ]\n}";
  if (existing.empty()) {
    out = "{\n  \"schema\": \"mind-microbench-v1\",\n  \"entries\": [\n" + entry + "\n  ]\n}\n";
  } else {
    const size_t splice = existing.rfind(suffix);
    if (splice == std::string::npos) {
      // Never truncate a file we cannot parse — it may hold the committed multi-PR
      // trajectory with line endings or formatting this writer did not produce.
      std::fprintf(stderr,
                   "bench: %s does not end with the mind-microbench-v1 shape; "
                   "refusing to overwrite (entry not recorded)\n",
                   path.c_str());
      return;
    }
    const std::string prefix = existing.substr(0, splice);
    const bool empty_array = !prefix.empty() && prefix.back() == '[';
    out = prefix + (empty_array ? "\n" : ",\n") + entry + "\n  ]\n}\n";
  }

  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  f << out;
  std::fprintf(stderr, "bench: appended entry \"%s\" (%zu benchmarks) to %s\n", label.c_str(),
               results.size(), path.c_str());
}

}  // namespace bench
}  // namespace mind

#endif  // MIND_BENCH_BENCH_UTIL_H_
