// Shared helpers for the figure benches: system factories with the paper's evaluation
// configuration (§6.3, §7) and a one-call replay runner.
//
// Every bench prints the rows/series of one paper figure. Scale the (simulated) job size
// with MIND_BENCH_SCALE (default 1.0) to trade fidelity for wall-clock time.
#ifndef MIND_BENCH_BENCH_UTIL_H_
#define MIND_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <memory>
#include <string>

#include "src/baselines/fastswap.h"
#include "src/baselines/gam.h"
#include "src/baselines/mind_system.h"
#include "src/common/table_printer.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

namespace mind {
namespace bench {

inline double Scale() {
  if (const char* s = std::getenv("MIND_BENCH_SCALE"); s != nullptr) {
    const double v = std::atof(s);
    if (v > 0.0) {
      return v;
    }
  }
  return 1.0;
}

inline uint64_t ScaledOps(uint64_t base) {
  const auto v = static_cast<uint64_t>(static_cast<double>(base) * Scale());
  return std::max<uint64_t>(v, 1000);
}

// The paper's evaluation rack: 8 compute blades (10 threads each at full scale), 8 memory
// blade VMs, 512 MB local DRAM per compute blade, 30k directory slots, 45k rules.
//
// The bounded-splitting epoch is scaled with the benches' scaled-down job sizes: the paper
// runs last 60+ seconds (hundreds of 100 ms epochs); our replays last ~100-500 simulated
// milliseconds, so a 5 ms epoch preserves the epochs-per-run ratio the control loop needs.
// Figure 9 (right) sweeps the epoch length explicitly.
inline RackConfig PaperRackConfig(int compute_blades) {
  RackConfig c;
  c.num_compute_blades = compute_blades;
  c.num_memory_blades = 8;
  c.memory_blade_capacity = 8ull << 30;
  c.compute_cache_bytes = 512ull << 20;
  c.directory_slots = 30000;
  c.tcam_rules = 45000;
  c.splitting.epoch_length = 5 * kMillisecond;
  return c;
}

inline GamConfig PaperGamConfig(int compute_blades) {
  GamConfig c;
  c.num_compute_blades = compute_blades;
  c.num_memory_blades = 8;
  c.compute_cache_bytes = 512ull << 20;
  return c;
}

inline FastSwapConfig PaperFastSwapConfig() {
  FastSwapConfig c;
  c.num_memory_blades = 8;
  c.compute_cache_bytes = 512ull << 20;
  return c;
}

inline std::unique_ptr<MindSystem> MakeMind(int blades, std::string label = "MIND") {
  return std::make_unique<MindSystem>(PaperRackConfig(blades), std::move(label));
}

inline std::unique_ptr<MindSystem> MakeMindPso(int blades) {
  RackConfig c = PaperRackConfig(blades);
  c.consistency = ConsistencyModel::kPso;
  return std::make_unique<MindSystem>(c, "MIND-PSO");
}

inline std::unique_ptr<MindSystem> MakeMindPsoPlus(int blades) {
  RackConfig c = PaperRackConfig(blades);
  c.consistency = ConsistencyModel::kPso;
  c.directory_slots = 10'000'000;  // "Infinite" directory capacity (§7.1).
  return std::make_unique<MindSystem>(c, "MIND-PSO+");
}

// Generates traces for `spec`, replays them on `sys`, returns the report.
inline ReplayReport RunWorkload(MemorySystem& sys, const WorkloadSpec& spec,
                                ReplayEngine::Sampler sampler = nullptr,
                                SimTime sample_interval = 10 * kMillisecond) {
  const WorkloadTraces traces = GenerateTraces(spec);
  ReplayEngine engine(&sys, &traces);
  const Status s = engine.Setup();
  if (!s.ok()) {
    std::fprintf(stderr, "replay setup failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  return engine.Run(std::move(sampler), sample_interval);
}

}  // namespace bench
}  // namespace mind

#endif  // MIND_BENCH_BENCH_UTIL_H_
