// Figure 9 (left): the storage-vs-performance tradeoff that Bounded Splitting navigates.
//
// For TF and GC (8 blades x 10 threads): run with *fixed* directory region sizes from 2 MB
// down to 16 KB (splitting disabled, uncapped slots so demand is observable), then with
// Bounded Splitting (BS). Expected shape: false invalidations fall as regions shrink while
// directory entries grow ~linearly in 1/size; BS lands near the small-region false-
// invalidation count at a fraction of the entries.
#include <functional>
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::PaperRackConfig;
using bench::RunWorkload;
using bench::ScaledOps;

constexpr int kBlades = 8;
constexpr int kThreadsPerBlade = 10;

struct RowResult {
  uint64_t false_invalidations;
  uint64_t peak_entries;
};

RowResult RunOne(const WorkloadSpec& spec, uint64_t fixed_region_size, bool bounded_splitting) {
  RackConfig cfg = PaperRackConfig(kBlades);
  if (bounded_splitting) {
    cfg.splitting.enabled = true;
    cfg.splitting.initial_region_size = 16 * 1024;
    cfg.directory_slots = 30'000;
  } else {
    cfg.splitting.enabled = false;
    cfg.splitting.initial_region_size = fixed_region_size;
    cfg.directory_slots = 4'000'000;  // Uncapped: measure demanded entries.
  }
  MindSystem sys(cfg);
  (void)RunWorkload(sys, spec);
  return RowResult{sys.rack().stats().false_invalidations,
                   sys.rack().directory().high_water()};
}

void RunFigure() {
  const uint64_t total_ops = ScaledOps(400'000);
  const uint64_t per_thread = total_ops / (kBlades * kThreadsPerBlade);
  using SpecFn = std::function<WorkloadSpec()>;
  const std::vector<std::pair<std::string, SpecFn>> workloads = {
      {"TF", [&] { return TfSpec(kBlades, kThreadsPerBlade, per_thread); }},
      {"GC", [&] { return GcSpec(kBlades, kThreadsPerBlade, per_thread); }},
  };

  PrintSectionHeader(
      "Figure 9 (left): false invalidations (normalized to 2MB) and directory entries");
  TablePrinter table({"workload", "region", "false_inv(norm)", "false_inv", "entries"}, 17);
  table.PrintHeader();

  for (const auto& [name, make_spec] : workloads) {
    const WorkloadSpec spec = make_spec();
    double base = 0.0;
    const std::vector<std::pair<std::string, uint64_t>> sizes = {
        {"2MB", 2048 * 1024}, {"1MB", 1024 * 1024}, {"256KB", 256 * 1024},
        {"64KB", 64 * 1024},  {"16KB", 16 * 1024},
    };
    for (const auto& [label, size] : sizes) {
      const auto r = RunOne(spec, size, /*bounded_splitting=*/false);
      if (base == 0.0) {
        base = std::max<double>(1.0, static_cast<double>(r.false_invalidations));
      }
      table.PrintRow(name, label,
                     TablePrinter::Fmt(static_cast<double>(r.false_invalidations) / base, 3),
                     r.false_invalidations, r.peak_entries);
    }
    const auto bs = RunOne(spec, 0, /*bounded_splitting=*/true);
    table.PrintRow(name, "BS",
                   TablePrinter::Fmt(static_cast<double>(bs.false_invalidations) / base, 3),
                   bs.false_invalidations, bs.peak_entries);
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
