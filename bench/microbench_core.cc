// Google-benchmark microbenchmarks of MIND's core data-plane/control-plane structures:
// the hot operations on the simulated switch's critical path. These are *implementation*
// benchmarks (how fast this library executes), complementing the figure benches (what the
// modeled system would measure).
//
// Besides the console table, every run appends an entry to BENCH_microbench.json (path
// overridable via MIND_BENCH_JSON, entry label via MIND_BENCH_LABEL) so the perf
// trajectory of the O(1) access pipeline is recorded across PRs. Schema documented in
// bench/README.md.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/blade/dram_cache.h"
#include "src/common/rng.h"
#include "src/controlplane/allocator.h"
#include "src/core/mind.h"
#include "src/dataplane/directory.h"
#include "src/dataplane/protection.h"
#include "src/dataplane/tcam.h"
#include "src/dataplane/translation.h"

namespace mind {
namespace {

void BM_TcamLookup(benchmark::State& state) {
  Tcam<int> tcam(nullptr);
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    (void)tcam.InsertRange(static_cast<uint64_t>(i) << 16, 16, i);
  }
  uint64_t key = 0;
  for (auto _ : state) {
    key = (key + 0x9137) % (static_cast<uint64_t>(state.range(0)) << 16);
    benchmark::DoNotOptimize(tcam.Lookup(key));
  }
}
BENCHMARK(BM_TcamLookup)->Arg(64)->Arg(1024)->Arg(16384);

// LPM over a realistic mix of prefix lengths: a few blade-scale ranges, many 16 KB region
// entries, page-sized migration outliers, plus nested outliers overriding broader ranges —
// the population the switch TCAM actually holds. Exercises the active-prefix bit-scan path.
void BM_TcamLpmMixedPrefixes(benchmark::State& state) {
  Tcam<int> tcam(nullptr);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < 4; ++i) {  // Blade-scale 1 GB ranges.
    (void)tcam.InsertRange(static_cast<uint64_t>(i) << 30, 30, 1000 + i);
  }
  for (int i = 0; i < n; ++i) {  // 16 KB region entries spread across the blades.
    (void)tcam.InsertRange(static_cast<uint64_t>(i) << 14, 14, i);
  }
  for (int i = 0; i < n / 8; ++i) {  // 4 KB outliers nested inside every 8th region.
    (void)tcam.InsertRange(static_cast<uint64_t>(i) << 17, 12, 2000 + i);
  }
  uint64_t key = 0;
  for (auto _ : state) {
    key = (key + 0x9137) % (static_cast<uint64_t>(n) << 14);
    benchmark::DoNotOptimize(tcam.Lookup(key));
  }
}
BENCHMARK(BM_TcamLpmMixedPrefixes)->Arg(1024)->Arg(16384);

void BM_TranslationLookup(benchmark::State& state) {
  AddressTranslator t(nullptr);
  for (int i = 0; i < 8; ++i) {
    (void)t.AddBladeRange(static_cast<MemoryBladeId>(i), static_cast<uint64_t>(i) << 33,
                          1ull << 33);
  }
  uint64_t va = 0;
  for (auto _ : state) {
    va = (va + 0x1003'7fff) % (8ull << 33);
    benchmark::DoNotOptimize(t.Translate(va));
  }
}
BENCHMARK(BM_TranslationLookup);

void BM_ProtectionCheck(benchmark::State& state) {
  ProtectionTable p(nullptr);
  for (int d = 0; d < 16; ++d) {
    for (int i = 0; i < state.range(0) / 16; ++i) {
      (void)p.Grant(static_cast<ProtDomainId>(d),
                    (static_cast<uint64_t>(d) << 40) + (static_cast<uint64_t>(i) << 24),
                    1 << 20, PermClass::kReadWrite);
    }
  }
  uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(
        p.Check(static_cast<ProtDomainId>(i % 16),
                ((i % 16) << 40) + ((i % (static_cast<uint64_t>(state.range(0)) / 16)) << 24)));
  }
}
BENCHMARK(BM_ProtectionCheck)->Arg(256)->Arg(4096);

void BM_DirectoryLookup(benchmark::State& state) {
  CacheDirectory dir(static_cast<uint32_t>(state.range(0)) + 1);
  for (int i = 0; i < state.range(0); ++i) {
    (void)dir.Create(static_cast<uint64_t>(i) << 14, 14);
  }
  uint64_t va = 0;
  for (auto _ : state) {
    va = (va + 0x4ab7) % (static_cast<uint64_t>(state.range(0)) << 14);
    benchmark::DoNotOptimize(dir.Lookup(va));
  }
}
BENCHMARK(BM_DirectoryLookup)->Arg(1024)->Arg(30000);

void BM_DirectorySplitMerge(benchmark::State& state) {
  CacheDirectory dir(64);
  (void)dir.Create(0, 21);  // One 2 MB region.
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.Split(0));
    benchmark::DoNotOptimize(dir.MergeWithBuddy(0, 21));
  }
}
BENCHMARK(BM_DirectorySplitMerge);

void BM_AllocatorAllocFree(benchmark::State& state) {
  BalancedAllocator alloc;
  for (int i = 0; i < 8; ++i) {
    (void)alloc.AddBlade(static_cast<MemoryBladeId>(i), static_cast<uint64_t>(i) << 33,
                         1ull << 33);
  }
  for (auto _ : state) {
    auto vma = alloc.Allocate(1 << 20);
    benchmark::DoNotOptimize(vma);
    (void)alloc.Free(*vma);
  }
}
BENCHMARK(BM_AllocatorAllocFree);

void BM_DramCacheHit(benchmark::State& state) {
  DramCache cache(1 << 16, false);
  for (uint64_t p = 0; p < (1 << 16); ++p) {
    (void)cache.Insert(p, false);
  }
  uint64_t p = 0;
  for (auto _ : state) {
    p = (p + 7919) % (1 << 16);
    benchmark::DoNotOptimize(cache.Lookup(p));
  }
}
BENCHMARK(BM_DramCacheHit);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(7);
  ZipfianGenerator zipf(1 << 20, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_RackLocalHit(benchmark::State& state) {
  RackConfig cfg;
  cfg.num_compute_blades = 1;
  cfg.num_memory_blades = 1;
  Rack rack(cfg);
  const ProcessId pid = *rack.Exec("bm");
  const ProtDomainId pdid = *rack.controller().PdidOf(pid);
  const ThreadId tid = rack.SpawnThread(pid, 0)->tid;
  const VirtAddr va = *rack.Mmap(pid, 1 << 20, PermClass::kReadWrite);
  SimTime now = rack.Access({tid, 0, pdid, va, AccessType::kWrite, 0}).completion;
  for (auto _ : state) {
    const auto r = rack.Access({tid, 0, pdid, va, AccessType::kWrite, now});
    now = r.completion;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RackLocalHit);

void BM_RackRemoteMiss(benchmark::State& state) {
  RackConfig cfg;
  cfg.num_compute_blades = 1;
  cfg.num_memory_blades = 8;
  cfg.compute_cache_bytes = 64 * kPageSize;  // Tiny: every access misses.
  Rack rack(cfg);
  const ProcessId pid = *rack.Exec("bm");
  const ProtDomainId pdid = *rack.controller().PdidOf(pid);
  const ThreadId tid = rack.SpawnThread(pid, 0)->tid;
  const VirtAddr va = *rack.Mmap(pid, 1ull << 30, PermClass::kReadWrite);
  SimTime now = 0;
  uint64_t page = 0;
  for (auto _ : state) {
    page = (page + 257) % (1 << 18);
    const auto r = rack.Access({tid, 0, pdid, va + PageToAddr(page), AccessType::kRead, now});
    now = r.completion;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RackRemoteMiss);

// ---------------------------------------------------------------------------
// BENCH_microbench.json emitter: appends one labeled entry per run so the perf
// trajectory of the access-pipeline structures accumulates across PRs.
// ---------------------------------------------------------------------------

struct BenchResult {
  std::string name;
  double ns_per_op = 0.0;
  uint64_t iterations = 0;
};

// google-benchmark renamed Run::error_occurred to the Run::skipped enum in 1.8.0; probe
// whichever member this library version has (overload on int is preferred, so the
// error_occurred spelling wins where both could resolve).
template <typename R>
auto RunFailed(const R& run, int) -> decltype(static_cast<bool>(run.error_occurred)) {
  return run.error_occurred;
}
template <typename R>
auto RunFailed(const R& run, long) -> decltype(static_cast<bool>(run.skipped)) {
  return static_cast<bool>(run.skipped);  // Any skip (message or error) excludes the run.
}

class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const auto& run : report) {
      if (RunFailed(run, 0)) {
        continue;
      }
      results.push_back(
          BenchResult{run.benchmark_name(), run.GetAdjustedRealTime(),
                      static_cast<uint64_t>(run.iterations)});
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<BenchResult> results;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {  // Control characters are illegal inside JSON strings.
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Serializes one trajectory entry, indented to sit inside the "entries" array.
std::string SerializeEntry(const std::string& label, const std::vector<BenchResult>& results) {
  std::ostringstream os;
  os << "    {\n";
  os << "      \"label\": \"" << JsonEscape(label) << "\",\n";
  os << "      \"unix_time\": " << static_cast<long long>(std::time(nullptr)) << ",\n";
  os << "      \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    char ns[64];
    std::snprintf(ns, sizeof(ns), "%.3f", results[i].ns_per_op);
    os << "        {\"name\": \"" << JsonEscape(results[i].name) << "\", \"ns_per_op\": " << ns
       << ", \"iterations\": " << results[i].iterations << "}"
       << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "      ]\n";
  os << "    }";
  return os.str();
}

// Appends the entry to the trajectory file, creating it when absent. The writer always
// emits the same shape (see bench/README.md), so the merge is a suffix splice.
void AppendTrajectoryEntry(const std::vector<BenchResult>& results) {
  if (results.empty()) {
    return;
  }
  const char* path_env = std::getenv("MIND_BENCH_JSON");
  std::string path = path_env != nullptr ? path_env : "BENCH_microbench.json";
  if (path_env == nullptr && !std::ifstream(path).good() &&
      std::ifstream("../BENCH_microbench.json").good()) {
    // The usual workflow runs from build/ (gitignored): when no trajectory file exists
    // here but the committed one sits in the parent directory, append there instead of
    // silently growing an invisible copy.
    path = "../BENCH_microbench.json";
  }
  const char* label_env = std::getenv("MIND_BENCH_LABEL");
  const std::string label = label_env != nullptr ? label_env : "run";
  const std::string entry = SerializeEntry(label, results);

  std::string existing;
  if (std::ifstream in(path); in.good()) {
    std::ostringstream buf;
    buf << in.rdbuf();
    existing = buf.str();
  }

  std::string out;
  const std::string suffix = "\n  ]\n}";
  if (existing.empty()) {
    out = "{\n  \"schema\": \"mind-microbench-v1\",\n  \"entries\": [\n" + entry + "\n  ]\n}\n";
  } else {
    const size_t splice = existing.rfind(suffix);
    if (splice == std::string::npos) {
      // Never truncate a file we cannot parse — it may hold the committed multi-PR
      // trajectory with line endings or formatting this writer did not produce.
      std::fprintf(stderr,
                   "microbench: %s does not end with the mind-microbench-v1 shape; "
                   "refusing to overwrite (entry not recorded)\n",
                   path.c_str());
      return;
    }
    const std::string prefix = existing.substr(0, splice);
    const bool empty_array = !prefix.empty() && prefix.back() == '[';
    out = prefix + (empty_array ? "\n" : ",\n") + entry + "\n  ]\n}\n";
  }

  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) {
    std::fprintf(stderr, "microbench: cannot write %s\n", path.c_str());
    return;
  }
  f << out;
  std::fprintf(stderr, "microbench: appended entry \"%s\" (%zu benchmarks) to %s\n",
               label.c_str(), results.size(), path.c_str());
}

}  // namespace
}  // namespace mind

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  mind::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  mind::AppendTrajectoryEntry(reporter.results);
  benchmark::Shutdown();
  return 0;
}
