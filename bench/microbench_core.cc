// Google-benchmark microbenchmarks of MIND's core data-plane/control-plane structures:
// the hot operations on the simulated switch's critical path. These are *implementation*
// benchmarks (how fast this library executes), complementing the figure benches (what the
// modeled system would measure).
//
// Besides the console table, every run appends an entry to BENCH_microbench.json (path
// overridable via MIND_BENCH_JSON, entry label via MIND_BENCH_LABEL) so the perf
// trajectory of the O(1) access pipeline is recorded across PRs. Schema documented in
// bench/README.md.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/blade/dram_cache.h"
#include "src/common/rng.h"
#include "src/controlplane/allocator.h"
#include "src/core/channel_group.h"
#include "src/core/mind.h"
#include "src/dataplane/directory.h"
#include "src/dataplane/protection.h"
#include "src/dataplane/tcam.h"
#include "src/dataplane/translation.h"

namespace mind {
namespace {

void BM_TcamLookup(benchmark::State& state) {
  Tcam<int> tcam(nullptr);
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    (void)tcam.InsertRange(static_cast<uint64_t>(i) << 16, 16, i);
  }
  uint64_t key = 0;
  for (auto _ : state) {
    key = (key + 0x9137) % (static_cast<uint64_t>(state.range(0)) << 16);
    benchmark::DoNotOptimize(tcam.Lookup(key));
  }
}
BENCHMARK(BM_TcamLookup)->Arg(64)->Arg(1024)->Arg(16384);

// LPM over a realistic mix of prefix lengths: a few blade-scale ranges, many 16 KB region
// entries, page-sized migration outliers, plus nested outliers overriding broader ranges —
// the population the switch TCAM actually holds. Exercises the active-prefix bit-scan path.
void BM_TcamLpmMixedPrefixes(benchmark::State& state) {
  Tcam<int> tcam(nullptr);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < 4; ++i) {  // Blade-scale 1 GB ranges.
    (void)tcam.InsertRange(static_cast<uint64_t>(i) << 30, 30, 1000 + i);
  }
  for (int i = 0; i < n; ++i) {  // 16 KB region entries spread across the blades.
    (void)tcam.InsertRange(static_cast<uint64_t>(i) << 14, 14, i);
  }
  for (int i = 0; i < n / 8; ++i) {  // 4 KB outliers nested inside every 8th region.
    (void)tcam.InsertRange(static_cast<uint64_t>(i) << 17, 12, 2000 + i);
  }
  uint64_t key = 0;
  for (auto _ : state) {
    key = (key + 0x9137) % (static_cast<uint64_t>(n) << 14);
    benchmark::DoNotOptimize(tcam.Lookup(key));
  }
}
BENCHMARK(BM_TcamLpmMixedPrefixes)->Arg(1024)->Arg(16384);

void BM_TranslationLookup(benchmark::State& state) {
  AddressTranslator t(nullptr);
  for (int i = 0; i < 8; ++i) {
    (void)t.AddBladeRange(static_cast<MemoryBladeId>(i), static_cast<uint64_t>(i) << 33,
                          1ull << 33);
  }
  uint64_t va = 0;
  for (auto _ : state) {
    va = (va + 0x1003'7fff) % (8ull << 33);
    benchmark::DoNotOptimize(t.Translate(va));
  }
}
BENCHMARK(BM_TranslationLookup);

void BM_ProtectionCheck(benchmark::State& state) {
  ProtectionTable p(nullptr);
  for (int d = 0; d < 16; ++d) {
    for (int i = 0; i < state.range(0) / 16; ++i) {
      (void)p.Grant(static_cast<ProtDomainId>(d),
                    (static_cast<uint64_t>(d) << 40) + (static_cast<uint64_t>(i) << 24),
                    1 << 20, PermClass::kReadWrite);
    }
  }
  uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(
        p.Check(static_cast<ProtDomainId>(i % 16),
                ((i % 16) << 40) + ((i % (static_cast<uint64_t>(state.range(0)) / 16)) << 24)));
  }
}
BENCHMARK(BM_ProtectionCheck)->Arg(256)->Arg(4096);

void BM_DirectoryLookup(benchmark::State& state) {
  CacheDirectory dir(static_cast<uint32_t>(state.range(0)) + 1);
  for (int i = 0; i < state.range(0); ++i) {
    (void)dir.Create(static_cast<uint64_t>(i) << 14, 14);
  }
  uint64_t va = 0;
  for (auto _ : state) {
    va = (va + 0x4ab7) % (static_cast<uint64_t>(state.range(0)) << 14);
    benchmark::DoNotOptimize(dir.Lookup(va));
  }
}
BENCHMARK(BM_DirectoryLookup)->Arg(1024)->Arg(30000);

void BM_DirectorySplitMerge(benchmark::State& state) {
  CacheDirectory dir(64);
  (void)dir.Create(0, 21);  // One 2 MB region.
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.Split(0));
    benchmark::DoNotOptimize(dir.MergeWithBuddy(0, 21));
  }
}
BENCHMARK(BM_DirectorySplitMerge);

void BM_AllocatorAllocFree(benchmark::State& state) {
  BalancedAllocator alloc;
  for (int i = 0; i < 8; ++i) {
    (void)alloc.AddBlade(static_cast<MemoryBladeId>(i), static_cast<uint64_t>(i) << 33,
                         1ull << 33);
  }
  for (auto _ : state) {
    auto vma = alloc.Allocate(1 << 20);
    benchmark::DoNotOptimize(vma);
    (void)alloc.Free(*vma);
  }
}
BENCHMARK(BM_AllocatorAllocFree);

void BM_DramCacheHit(benchmark::State& state) {
  DramCache cache(1 << 16, false);
  for (uint64_t p = 0; p < (1 << 16); ++p) {
    (void)cache.Insert(p, false);
  }
  uint64_t p = 0;
  for (auto _ : state) {
    p = (p + 7919) % (1 << 16);
    benchmark::DoNotOptimize(cache.Lookup(p));
  }
}
BENCHMARK(BM_DramCacheHit);

// The per-blade group merge-commit walk (src/core/channel_group.h) at small and large
// lane counts: 4 lanes exercises the branchy linear argmin scan, 32 lanes the
// GroupMergeLoserTree (crossover at kGroupMergeLinearScanMax). Per-op (non-uniform)
// latencies with jitter so the winner genuinely alternates between lanes, as live merges
// do; one iteration merge-commits every lane's full run.
void BM_GroupMerge(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kOpsPerLane = 64;
  Rng rng(29);
  std::vector<std::vector<Completion>> comps(n, std::vector<Completion>(kOpsPerLane));
  std::vector<GroupLane> lanes(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < kOpsPerLane; ++j) {
      comps[i][j].latency = 80 + rng.NextBelow(64);
    }
    lanes[i].member = i;
    lanes[i].thread_index = i;
    lanes[i].clock = rng.NextBelow(32);
    lanes[i].uniform_latency = 0;  // Per-op latencies: the merge pays full compare cost.
    lanes[i].comps = comps[i].data();
    lanes[i].count = kOpsPerLane;
  }
  Histogram hist;
  uint64_t total = 0;
  for (auto _ : state) {
    total += GroupMergeCommit(
        lanes.data(), n, /*horizon=*/1ull << 40, /*think=*/10, hist,
        [](const GroupLane& ln, size_t idx) { return ln.comps[idx].latency; },
        [](GroupLane&, size_t) {});
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_GroupMerge)->Arg(4)->Arg(32);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(7);
  ZipfianGenerator zipf(1 << 20, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_RackLocalHit(benchmark::State& state) {
  RackConfig cfg;
  cfg.num_compute_blades = 1;
  cfg.num_memory_blades = 1;
  Rack rack(cfg);
  const ProcessId pid = *rack.Exec("bm");
  const ProtDomainId pdid = *rack.controller().PdidOf(pid);
  const ThreadId tid = rack.SpawnThread(pid, 0)->tid;
  const VirtAddr va = *rack.Mmap(pid, 1 << 20, PermClass::kReadWrite);
  SimTime now = rack.Access({tid, 0, pdid, va, AccessType::kWrite, 0}).completion;
  for (auto _ : state) {
    const auto r = rack.Access({tid, 0, pdid, va, AccessType::kWrite, now});
    now = r.completion;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RackLocalHit);

void BM_RackRemoteMiss(benchmark::State& state) {
  RackConfig cfg;
  cfg.num_compute_blades = 1;
  cfg.num_memory_blades = 8;
  cfg.compute_cache_bytes = 64 * kPageSize;  // Tiny: every access misses.
  Rack rack(cfg);
  const ProcessId pid = *rack.Exec("bm");
  const ProtDomainId pdid = *rack.controller().PdidOf(pid);
  const ThreadId tid = rack.SpawnThread(pid, 0)->tid;
  const VirtAddr va = *rack.Mmap(pid, 1ull << 30, PermClass::kReadWrite);
  SimTime now = 0;
  uint64_t page = 0;
  for (auto _ : state) {
    page = (page + 257) % (1 << 18);
    const auto r = rack.Access({tid, 0, pdid, va + PageToAddr(page), AccessType::kRead, now});
    now = r.completion;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RackRemoteMiss);

// ---------------------------------------------------------------------------
// BENCH_microbench.json emitter: appends one labeled entry per run so the perf
// trajectory of the access-pipeline structures accumulates across PRs.
// ---------------------------------------------------------------------------

// BenchResult and the trajectory emitter live in bench_util.h, shared with the
// wall-clock figure bench (fig_replay_throughput).
using bench::BenchResult;

// google-benchmark renamed Run::error_occurred to the Run::skipped enum in 1.8.0; probe
// whichever member this library version has (overload on int is preferred, so the
// error_occurred spelling wins where both could resolve).
template <typename R>
auto RunFailed(const R& run, int) -> decltype(static_cast<bool>(run.error_occurred)) {
  return run.error_occurred;
}
template <typename R>
auto RunFailed(const R& run, long) -> decltype(static_cast<bool>(run.skipped)) {
  return static_cast<bool>(run.skipped);  // Any skip (message or error) excludes the run.
}

class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const auto& run : report) {
      if (RunFailed(run, 0)) {
        continue;
      }
      results.push_back(
          BenchResult{run.benchmark_name(), run.GetAdjustedRealTime(),
                      static_cast<uint64_t>(run.iterations)});
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<BenchResult> results;
};

}  // namespace
}  // namespace mind

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  mind::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  mind::bench::AppendTrajectoryEntry(reporter.results);
  benchmark::Shutdown();
  return 0;
}
