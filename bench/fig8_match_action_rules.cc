// Figure 8 (center): match-action rules consumed at the switch for address translation and
// memory protection, vs blade count (dataset grows with workers), against conventional
// page-granularity designs with 2 MB and 1 GB pages.
//
// Expected shape (log y): MIND stays nearly constant (one range rule per memory blade, one
// coalesced protection entry per vma) and far under the 45k rule limit; page-based designs
// grow linearly with the dataset — 2 MB pages blow through the limit, 1 GB pages stay
// smaller in absolute count but still scale with footprint.
#include <vector>

#include "bench/alloc_patterns.h"
#include "bench/bench_util.h"
#include "src/core/mind.h"

namespace mind {
namespace {

using bench::AllocationPattern;
using bench::kGiB;
using bench::kMiB;
using bench::SimulatePagedPlacement;

constexpr int kThreadsPerBlade = 10;
constexpr uint64_t kRuleLimit = 45'000;

uint64_t MindRules(const std::vector<uint64_t>& allocs) {
  Rack rack(bench::PaperRackConfig(8));
  const ProcessId pid = *rack.Exec("fig8");
  for (uint64_t size : allocs) {
    auto va = rack.Mmap(pid, size, PermClass::kReadWrite);
    if (!va.ok()) {
      std::fprintf(stderr, "mmap failed: %s\n", va.status().ToString().c_str());
      std::abort();
    }
  }
  // Translation + protection rules (the quantities Fig. 8 center plots).
  return rack.translator().rule_count() + rack.protection().rule_count();
}

void RunFigure() {
  PrintSectionHeader(
      "Figure 8 (center): match-action rules for heap (limit = 45000), 8 memory blades");
  TablePrinter table({"workload", "blades", "2MB-pages", "1GB-pages", "MIND"}, 12);
  table.PrintHeader();

  for (const std::string workload : {"TF", "GC", "MA&C"}) {
    for (int blades : {1, 2, 4, 8}) {
      const auto allocs = AllocationPattern(workload, blades * kThreadsPerBlade);
      const auto paged_2m = SimulatePagedPlacement(allocs, 2 * kMiB, 8);
      const auto paged_1g = SimulatePagedPlacement(allocs, 1 * kGiB, 8);
      table.PrintRow(workload, blades, paged_2m.rules, paged_1g.rules, MindRules(allocs));
    }
  }
  std::printf("\n(rule limit: %llu)\n", static_cast<unsigned long long>(kRuleLimit));
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
