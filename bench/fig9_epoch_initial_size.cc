// Figure 9 (right): sensitivity of Bounded Splitting to epoch length and initial region
// size (TF and GC, 8 blades x 10 threads).
//
// Expected shape: epoch sizes 1-100 ms barely change the false-invalidation count (the
// paper picks 100 ms to minimize control-plane overheads); larger *initial* region sizes
// incur more false invalidations (several epochs of splitting before regions stabilize),
// which is why MIND defaults to 16 KB. Neither knob noticeably moves steady-state entries.
#include <functional>
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::PaperRackConfig;
using bench::RunWorkload;
using bench::ScaledOps;

constexpr int kBlades = 8;
constexpr int kThreadsPerBlade = 10;

struct RowResult {
  uint64_t false_invalidations = 0;
  uint64_t entries = 0;
};

RowResult RunOne(const WorkloadSpec& spec, SimTime epoch, uint64_t initial_region) {
  RackConfig cfg = PaperRackConfig(kBlades);
  cfg.splitting.epoch_length = epoch;
  cfg.splitting.initial_region_size = initial_region;
  MindSystem sys(cfg);
  (void)RunWorkload(sys, spec);
  return RowResult{sys.rack().stats().false_invalidations,
                   sys.rack().directory().entry_count()};
}

void RunFigure() {
  const uint64_t total_ops = ScaledOps(400'000);
  const uint64_t per_thread = total_ops / (kBlades * kThreadsPerBlade);
  using SpecFn = std::function<WorkloadSpec()>;
  const std::vector<std::pair<std::string, SpecFn>> workloads = {
      {"TF", [&] { return TfSpec(kBlades, kThreadsPerBlade, per_thread); }},
      {"GC", [&] { return GcSpec(kBlades, kThreadsPerBlade, per_thread); }},
  };

  PrintSectionHeader(
      "Figure 9 (right): #false invalidations vs epoch size (normalized to 100ms epoch)");
  TablePrinter epochs({"workload", "epoch_ms", "false_inv(norm)", "entries"}, 17);
  epochs.PrintHeader();
  for (const auto& [name, make_spec] : workloads) {
    const WorkloadSpec spec = make_spec();
    const auto base = RunOne(spec, 100 * kMillisecond, 16 * 1024);
    const double denom = std::max<double>(1.0, static_cast<double>(base.false_invalidations));
    for (SimTime epoch : {1 * kMillisecond, 5 * kMillisecond, 10 * kMillisecond,
                          100 * kMillisecond}) {
      const auto r = RunOne(spec, epoch, 16 * 1024);
      epochs.PrintRow(name, ToMillis(epoch),
                      TablePrinter::Fmt(static_cast<double>(r.false_invalidations) / denom, 3),
                      r.entries);
    }
  }

  PrintSectionHeader(
      "Figure 9 (right): #false invalidations vs initial region size (normalized to 2MB)");
  TablePrinter inits({"workload", "initial", "false_inv(norm)", "entries"}, 17);
  inits.PrintHeader();
  const std::vector<std::pair<std::string, uint64_t>> sizes = {
      {"2MB", 2048 * 1024}, {"1MB", 1024 * 1024}, {"256KB", 256 * 1024},
      {"64KB", 64 * 1024},  {"16KB", 16 * 1024},
  };
  // The scaled epoch (5 ms, matching PaperRackConfig) keeps the epochs-per-run ratio of the
  // paper's 100 ms epochs over minute-long executions.
  const SimTime scaled_epoch = 5 * kMillisecond;
  for (const auto& [name, make_spec] : workloads) {
    const WorkloadSpec spec = make_spec();
    double denom = 0.0;
    for (const auto& [label, size] : sizes) {
      const auto r = RunOne(spec, scaled_epoch, size);
      if (denom == 0.0) {
        denom = std::max<double>(1.0, static_cast<double>(r.false_invalidations));
      }
      inits.PrintRow(name, label,
                     TablePrinter::Fmt(static_cast<double>(r.false_invalidations) / denom, 3),
                     r.entries);
    }
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
