// End-to-end replay wall-clock throughput: how fast the *simulator* replays a figure-scale
// workload, serial vs sharded. This is the harness-performance companion to the per-op
// microbenchmarks — ns/op of the whole replay loop (trace decode, clock merge, access
// pipeline, histogramming), not of one isolated structure — so regressions in the replay
// engine itself are tracked across PRs, not just hot-path structure regressions.
//
// Compared configurations, all replaying the identical trace on identical racks:
//   serial-1shard     — the per-op reference path (use_channels = false: global min-heap,
//                       one virtual Access per op — the pre-channel serial engine).
//   sharded-{1,2,4,8} — the AccessChannel engine at increasing shard counts (results are
//                       bit-identical to serial by construction; only wall-clock moves).
//
// Appends `FigReplayWallclock/*` entries (ns/op over total replayed ops) to
// BENCH_microbench.json, plus a dimensionless `drain_serialized_fraction` row for the
// coherence-bound series: the fraction of serialized-drain ops the directory-region
// ownership split could NOT retire owner-parallel (lower is better; the gate catches it
// creeping back up). `--shards=N` runs one extra sharded point. Scale the trace with
// MIND_BENCH_SCALE.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

struct Timed {
  ReplayReport report;
  std::string registry_text;  // Unified metrics snapshot (src/obs/metrics_registry.h).
  double wall_ns = 0.0;
  uint64_t parallel_hits = 0;
  uint64_t grouped_ops = 0;
  uint64_t drained_ops = 0;
  uint64_t owner_drained = 0;  // Subset of drained_ops retired owner-parallel.

  // Fraction of drained (serialized-phase) ops that still had to execute one at a time
  // through the global merge step after directory-region ownership carved out the
  // owner-parallel phases. Shard-count invariant (the drain composition is bit-identical
  // across shard counts), so any sharded run reports the same number.
  [[nodiscard]] double SerializedFraction() const {
    return drained_ops == 0
               ? 0.0
               : 1.0 - static_cast<double>(owner_drained) / static_cast<double>(drained_ops);
  }
};

void CollectShards(ReplayEngine& engine, Timed* out) {
  for (const ShardReport& sr : engine.shard_reports()) {
    out->parallel_hits += sr.parallel_hits;
    out->grouped_ops += sr.grouped_ops;
    out->drained_ops += sr.drained_ops;
    out->owner_drained += sr.owner_drained;
  }
  std::ostringstream os;
  engine.metrics()->ExportText(os);
  out->registry_text = os.str();
}

// Headline series: the shape sharded replay targets — multi-blade, cache-resident
// per-blade working sets with an occasional cross-blade coherence event (the Fig. 5 right
// "scalable" regime: native-KVS-like partitioned state, TF-like private compute). Once
// warm, >99% of ops are blade-local hits, so the harness — not the simulated switch — is
// the bottleneck, which is exactly what the refactor attacks.
WorkloadSpec HotSpec() {
  WorkloadSpec s;
  s.name = "blade-resident";
  s.num_blades = 8;
  s.threads_per_blade = 1;
  s.private_pages_per_thread = 1024;
  s.private_pattern = Pattern::kUniform;
  s.private_write_fraction = 0.5;
  s.accesses_per_thread = bench::ScaledOps(1'500'000);
  s.think_time = 200;
  s.seed = 7;
  return s;
}

// Counterpoint series: TF is coherence-dense (an invalidation or upgrade crosses shard
// ownership every few tens of globally-ordered ops), so the serialized drain dominates
// and sharding cannot help much — reported so the trajectory tracks both regimes
// honestly.
WorkloadSpec CoherenceBoundSpec() {
  return TfSpec(/*blades=*/8, /*threads_per_blade=*/1, bench::ScaledOps(150'000));
}

// Channel-group series: GAM with heavy intra-blade contention — 4 threads per blade all
// queue on the per-blade library lock, so per-thread channels can only lower-bound hit
// latencies and (pre-groups) every committed op paid a virtual Commit +
// FifoResource::Acquire round-trip. The per-blade ChannelGroup replays the merged lock
// queue once per round instead; this series is the regression guard for that path.
WorkloadSpec GamContendedSpec() {
  WorkloadSpec s;
  s.name = "gam-contended";
  s.num_blades = 4;
  s.threads_per_blade = 4;
  s.private_pages_per_thread = 2000;
  s.private_pattern = Pattern::kUniform;
  s.private_write_fraction = 0.5;
  s.shared_pages = 512;
  s.shared_access_fraction = 0.02;
  s.shared_write_fraction = 0.2;
  s.accesses_per_thread = bench::ScaledOps(250'000);
  s.think_time = 200;
  s.seed = 11;
  return s;
}

using SystemFactory = std::unique_ptr<MemorySystem> (*)();

std::unique_ptr<MemorySystem> MakeMind8() { return bench::MakeMind(8); }
std::unique_ptr<MemorySystem> MakeGam4() {
  return std::make_unique<GamSystem>(bench::PaperGamConfig(4));
}

Timed RunSerial(const WorkloadTraces& traces, SystemFactory make_system) {
  auto sys = make_system();
  ReplayOptions opts;
  opts.use_channels = false;  // Per-op reference path: one virtual Access per op.
  ReplayEngine engine(sys.get(), &traces, opts);
  (void)engine.Setup();
  const auto t0 = std::chrono::steady_clock::now();
  Timed out;
  out.report = engine.Run();
  out.wall_ns = std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
                    .count();
  CollectShards(engine, &out);
  return out;
}

Timed RunSharded(const WorkloadTraces& traces, int shards, SystemFactory make_system) {
  auto sys = make_system();
  ReplayOptions opts;
  opts.shards = shards;
  ReplayEngine engine(sys.get(), &traces, opts);
  (void)engine.Setup();
  const auto t0 = std::chrono::steady_clock::now();
  Timed out;
  out.report = engine.Run();
  out.wall_ns = std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
                    .count();
  CollectShards(engine, &out);
  return out;
}

}  // namespace
}  // namespace mind

int main(int argc, char** argv) {
  using namespace mind;
  std::vector<bench::BenchResult> results;

  auto run_series = [&](const std::string& tag, const WorkloadTraces& traces,
                        const std::vector<int>& shard_points, SystemFactory make_system) {
    const uint64_t ops = traces.TotalOps();
    std::printf("\nReplay wall-clock throughput — %s (%s), %llu ops, %d blades, "
                "%u host cores\n",
                tag.c_str(), traces.name.c_str(), static_cast<unsigned long long>(ops),
                traces.num_blades, std::thread::hardware_concurrency());
    std::printf("(simulator performance; simulated-time results are bit-identical across "
                "rows)\n");
    TablePrinter table({"config", "wall ms", "ns/op", "Mops/s wall", "parallel hits",
                        "grouped", "owner-par drain", "sim ms"});
    table.PrintHeader();
    Timed last;
    auto add = [&](const std::string& name, Timed t) {
      const double ns_per_op = t.wall_ns / static_cast<double>(ops);
      table.PrintRow(name, TablePrinter::Fmt(t.wall_ns / 1e6, 1),
                     TablePrinter::Fmt(ns_per_op, 1), TablePrinter::Fmt(1e3 / ns_per_op, 2),
                     t.parallel_hits, t.grouped_ops,
                     std::to_string(t.owner_drained) + "/" + std::to_string(t.drained_ops),
                     TablePrinter::Fmt(ToMillis(t.report.makespan), 2));
      results.push_back(
          bench::BenchResult{"FigReplayWallclock/" + tag + "/" + name, ns_per_op, ops});
      last = std::move(t);
    };
    add("serial-1shard", RunSerial(traces, make_system));
    for (const int shards : shard_points) {
      add("sharded-" + std::to_string(shards) + "shard",
          RunSharded(traces, shards, make_system));
    }
    // Every per-run counter this table summarizes is also published through the unified
    // registry; one snapshot per series (the last sharded point) keeps the full detail
    // in the log without hand-rolled counter prints.
    std::printf("registry snapshot (%s, final sharded run):\n%s", tag.c_str(),
                last.registry_text.c_str());
    if (tag == "tf_coherence_bound") {
      // The region-ownership payoff metric on the drain-dominated series: the fraction of
      // serialized-phase ops that still retired one at a time through the global merge
      // step. Lower is better, so the trajectory gate (fail above 1.25x baseline) catches
      // a change that quietly re-serializes owner-parallel work. Deterministic for a fixed
      // trace scale and shard-count invariant (see SerializedFraction).
      std::printf("drain serialized fraction: %.3f (owner-parallel retired %llu of %llu "
                  "drained ops)\n",
                  last.SerializedFraction(),
                  static_cast<unsigned long long>(last.owner_drained),
                  static_cast<unsigned long long>(last.drained_ops));
      results.push_back(
          bench::BenchResult{"FigReplayWallclock/" + tag + "/drain_serialized_fraction",
                             last.SerializedFraction(), last.drained_ops});
    }
  };

  std::vector<int> shard_points = {1, 2, 4, 8};
  if (const int extra = bench::ShardsFromArgs(argc, argv, 0);
      extra > 0 && std::find(shard_points.begin(), shard_points.end(), extra) ==
                       shard_points.end()) {
    shard_points.push_back(extra);
  }
  {
    const WorkloadTraces traces = GenerateTraces(HotSpec());
    run_series("blade_resident", traces, shard_points, MakeMind8);
  }
  {
    const WorkloadTraces traces = GenerateTraces(CoherenceBoundSpec());
    run_series("tf_coherence_bound", traces, shard_points, MakeMind8);
  }
  {
    // 4 blades: shard counts past 4 clamp to 4, so the series stops there.
    const WorkloadTraces traces = GenerateTraces(GamContendedSpec());
    run_series("gam_contended", traces, {1, 2, 4}, MakeGam4);
  }
  bench::AppendTrajectoryEntry(results, "fig-replay-wallclock");
  return 0;
}
