// Ablation (§8, "Other coherence protocols"): MSI (the paper's protocol) vs the MESI
// extension — cold reads take E with silent write-upgrade privilege.
//
// Expected tradeoff: workloads with private read-then-write patterns (TF's activations, the
// micro 50/50 private sweep) save their S->M upgrade round trips under MESI; read-mostly
// *shared* workloads (Memcached-C) pay extra 2-RTT E->S handoffs whenever a second blade
// reads a region first touched by another.
#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::PaperRackConfig;
using bench::RunWorkload;
using bench::ScaledOps;

constexpr int kBlades = 4;
constexpr int kThreadsPerBlade = 10;

void RunFigure() {
  const uint64_t total_ops = ScaledOps(200'000);
  const uint64_t per_thread = total_ops / (kBlades * kThreadsPerBlade);

  PrintSectionHeader("Ablation: MSI vs MESI coherence");
  TablePrinter table({"workload", "protocol", "runtime_ms", "upgrades", "owner_handoffs"},
                     15);
  table.PrintHeader();

  struct Case {
    std::string name;
    WorkloadSpec spec;
  };
  const std::vector<Case> cases = {
      {"TF", TfSpec(kBlades, kThreadsPerBlade, per_thread)},
      {"MC", MemcachedCSpec(kBlades, kThreadsPerBlade, per_thread)},
      {"micro-rw", MicroSpec(kBlades, 0.5, 0.1, 100'000, per_thread)},
  };

  for (const auto& c : cases) {
    for (auto protocol : {CoherenceProtocol::kMsi, CoherenceProtocol::kMesi}) {
      RackConfig cfg = PaperRackConfig(kBlades);
      cfg.protocol = protocol;
      MindSystem sys(cfg, std::string("MIND-") + ToString(protocol));
      const auto report = RunWorkload(sys, c.spec);
      const RackStats& s = sys.rack().stats();
      table.PrintRow(c.name, ToString(protocol),
                     TablePrinter::Fmt(ToMillis(report.makespan), 2), s.write_upgrades,
                     s.transitions_m_to_s + s.transitions_m_to_m);
    }
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
