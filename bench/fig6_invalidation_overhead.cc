// Figure 6: invalidation overhead — #remote accesses, #invalidations and #flushed pages
// per memory access, vs number of compute blades (10 threads each).
//
// Expected shape (log y): all three rates grow with blade count; M_A / M_C sit an order of
// magnitude above TF in invalidations and flushed pages (heavy shared writes); GC's growth
// is steeper than TF's (it writes ~2.5x more shared data), explaining its scaling collapse.
#include <functional>
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::MakeMind;
using bench::RunWorkload;
using bench::ScaledOps;

using SpecFn = std::function<WorkloadSpec(int blades, uint64_t per_thread)>;
constexpr int kThreadsPerBlade = 10;

void RunFigure() {
  const uint64_t total_ops = ScaledOps(400'000);
  const std::vector<std::pair<std::string, SpecFn>> workloads = {
      {"TF", [](int b, uint64_t per) { return TfSpec(b, kThreadsPerBlade, per); }},
      {"GC", [](int b, uint64_t per) { return GcSpec(b, kThreadsPerBlade, per); }},
      {"MA", [](int b, uint64_t per) { return MemcachedASpec(b, kThreadsPerBlade, per); }},
      {"MC", [](int b, uint64_t per) { return MemcachedCSpec(b, kThreadsPerBlade, per); }},
  };

  PrintSectionHeader("Figure 6: occurrences per memory access (MIND)");
  TablePrinter table(
      {"workload", "blades", "remote/acc", "inval/acc", "flushed/acc"}, 16);
  table.PrintHeader();

  for (const auto& [name, make_spec] : workloads) {
    for (int blades : {1, 2, 4, 8}) {
      const uint64_t per_thread =
          total_ops / static_cast<uint64_t>(blades * kThreadsPerBlade);
      auto mind = MakeMind(blades);
      const auto report = RunWorkload(*mind, make_spec(blades, per_thread));
      table.PrintRow(name, blades, TablePrinter::Fmt(report.RemoteAccessesPerOp(), 5),
                     TablePrinter::Fmt(report.InvalidationsPerOp(), 5),
                     TablePrinter::Fmt(report.FlushedPagesPerOp(), 5));
    }
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
