// Ablation (design principle P1, §4.3.1): decoupling cache-access granularity (4 KB pages)
// from directory granularity (variable regions) vs the coupled design where the cache block
// IS the directory block — a miss then fetches the whole region.
//
// Expected: the coupled design wastes memory bandwidth and cache capacity (whole regions
// move on every miss, and whole regions are falsely invalidated), so runtime and page
// traffic are strictly worse, increasingly so at larger region sizes.
#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::PaperRackConfig;
using bench::RunWorkload;
using bench::ScaledOps;

constexpr int kBlades = 4;
constexpr int kThreadsPerBlade = 10;

uint64_t TotalMemoryReads(MindSystem& sys) {
  uint64_t reads = 0;
  for (int m = 0; m < sys.rack().config().num_memory_blades; ++m) {
    reads += sys.rack().memory_blade(static_cast<MemoryBladeId>(m)).reads();
  }
  return reads;
}

void RunFigure() {
  const uint64_t total_ops = ScaledOps(200'000);
  const uint64_t per_thread = total_ops / (kBlades * kThreadsPerBlade);
  const WorkloadSpec spec = GcSpec(kBlades, kThreadsPerBlade, per_thread);

  PrintSectionHeader(
      "Ablation: decoupled page-granularity fetch vs coupled whole-region fetch");
  TablePrinter table({"region", "design", "runtime_ms", "pages_fetched", "false_inv"}, 15);
  table.PrintHeader();

  for (uint64_t region : {16ull * 1024, 64ull * 1024, 256ull * 1024}) {
    for (bool coupled : {false, true}) {
      RackConfig cfg = PaperRackConfig(kBlades);
      cfg.splitting.enabled = false;  // Fix the granularity for a clean comparison.
      cfg.splitting.initial_region_size = region;
      cfg.directory_slots = 4'000'000;
      cfg.fetch_whole_region = coupled;
      MindSystem sys(cfg, coupled ? "coupled" : "MIND");
      const auto report = RunWorkload(sys, spec);
      table.PrintRow(region / 1024, coupled ? "coupled" : "decoupled",
                     TablePrinter::Fmt(ToMillis(report.makespan), 2), TotalMemoryReads(sys),
                     sys.rack().stats().false_invalidations);
    }
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
