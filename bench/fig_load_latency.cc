// Load-latency curves on the contention-aware fabric (src/net/queue_model.h).
//
// The paper's evaluation argues MIND's in-network data plane holds its latency under
// offered load where software paths saturate (Fig. 5/6 context). This bench sweeps the
// offered load directly — shrinking the per-op think time of a coherence-dense Zipfian
// workload from 2 us to 0 — on kWindowedMG1 fabrics, so per-port occupancy turns into
// queueing delay, and plots throughput plus p50/p99 for:
//
//   * MIND            — switch-native multicast invalidations (§4.3.2),
//   * MIND-unicast    — the same rack with sequential software unicast fan-out,
//   * GAM, FastSwap   — the software baselines on the same queue model.
//
// Two things must show: p99 rises monotonically (within a tolerance band — the queue
// model reacts to occupancy, not noise) as think time shrinks, and MIND-multicast
// diverges from MIND-unicast under load: the unicast sender's staggered copies occupy
// its egress port for the whole fan-out, so invalidation-wave queueing compounds exactly
// when the fabric is busiest.
//
// Every number is simulated time from a deterministic replay — rerunning this bench
// cannot produce different output. The zero-think rows append
// `FigLoadLatency/<system>/saturated-sim-ns-op` to BENCH_microbench.json, gated by
// tools/check_bench_regression.py: queue-model or routing drift shows up as a
// trajectory step, not runner noise. CI runs MIND_BENCH_SCALE=0.1 like the other figs.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/histogram.h"

namespace mind {
namespace {

// Coherence-dense shared traffic: invalidation waves + remote fetches keep every port
// class busy (compute tx/rx, memory rx, switch stages).
WorkloadSpec LoadSpec(int blades, SimTime think) {
  WorkloadSpec spec = MemcachedASpec(blades, /*threads_per_blade=*/2,
                                     bench::ScaledOps(50'000));
  spec.shared_pages = 8192;
  spec.think_time = think;
  spec.name = "memcached-a/think-" + std::to_string(think);
  return spec;
}

WorkloadSpec SwapLoadSpec(SimTime think) {
  // FastSwap is single-blade: a working set ~1.5x its cache keeps the swap ports hot.
  WorkloadSpec spec;
  spec.name = "swap/think-" + std::to_string(think);
  spec.num_blades = 1;
  spec.threads_per_blade = 4;
  spec.private_pages_per_thread = 50'000;
  spec.private_pattern = Pattern::kUniform;
  spec.private_write_fraction = 0.5;
  spec.accesses_per_thread = bench::ScaledOps(100'000);
  spec.think_time = think;
  return spec;
}

ReplayReport Replay(MemorySystem& sys, const WorkloadTraces& traces) {
  ReplayOptions opts;
  opts.shards = 4;  // Execution strategy only: results are bit-identical at any count.
  ReplayEngine engine(&sys, &traces, opts);
  const Status s = engine.Setup();
  if (!s.ok()) {
    std::fprintf(stderr, "replay setup failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  return engine.Run();
}

FabricConfig ContendedFabric() {
  FabricConfig f;
  f.queue_model = QueueModelKind::kWindowedMG1;
  return f;
}

int Run() {
  struct SystemUnderTest {
    std::string name;
    std::function<std::unique_ptr<MemorySystem>()> make;
    bool swap_spec = false;
  };
  const std::vector<SystemUnderTest> systems = {
      {"MIND",
       [] {
         RackConfig c = bench::PaperRackConfig(8);
         c.fabric = ContendedFabric();
         return std::make_unique<MindSystem>(c);
       }},
      {"MIND-unicast",
       [] {
         RackConfig c = bench::PaperRackConfig(8);
         c.fabric = ContendedFabric();
         c.use_multicast = false;
         return std::make_unique<MindSystem>(c, "MIND-unicast");
       }},
      {"GAM",
       [] {
         GamConfig c = bench::PaperGamConfig(8);
         c.fabric = ContendedFabric();
         return std::make_unique<GamSystem>(c);
       }},
      {"FastSwap",
       [] {
         FastSwapConfig c = bench::PaperFastSwapConfig();
         c.fabric = ContendedFabric();
         return std::make_unique<FastSwapSystem>(c);
       },
       /*swap_spec=*/true},
  };
  // Offered load rises as think time falls; 0 = each thread issues back to back.
  const std::vector<SimTime> think_sweep = {2000, 1000, 500, 200, 100, 0};

  std::printf("Load-latency sweep — kWindowedMG1 fabric, think time 2us -> 0 "
              "(offered load rises left to right in each system block)\n");
  TablePrinter table({"system", "think ns", "Mops/s sim", "p50 us", "p99 us",
                      "fwait us/op", "inv sent"});
  table.PrintHeader();

  std::vector<bench::BenchResult> results;
  int failures = 0;
  SimTime mind_saturated_p99 = 0;
  SimTime unicast_saturated_p99 = 0;
  for (const SystemUnderTest& s : systems) {
    SimTime prev_p99 = 0;
    for (const SimTime think : think_sweep) {
      const WorkloadTraces traces =
          GenerateTraces(s.swap_spec ? SwapLoadSpec(think) : LoadSpec(8, think));
      auto sys = s.make();
      const ReplayReport report = Replay(*sys, traces);
      const HistogramSummary lat = report.latency_histogram.Summary();
      const double wait_us_per_op =
          report.total_ops == 0
              ? 0.0
              : ToMicros(report.counters.breakdown_sums.fabric_wait) /
                    static_cast<double>(report.total_ops);
      table.PrintRow(s.name, think, TablePrinter::Fmt(report.throughput_mops, 3),
                     TablePrinter::Fmt(ToMicros(lat.p50), 2),
                     TablePrinter::Fmt(ToMicros(lat.p99), 1),
                     TablePrinter::Fmt(wait_us_per_op, 3),
                     report.counters.invalidations);
      // Monotonicity check: tail latency must not fall as offered load rises. A 5%
      // tolerance absorbs histogram bucket granularity — the deterministic replay can
      // land adjacent think times one bucket apart near saturation.
      if (lat.p99 + lat.p99 / 20 < prev_p99) {
        std::fprintf(stderr, "FAIL: %s p99 fell from %llu to %llu as load rose\n",
                     s.name.c_str(), static_cast<unsigned long long>(prev_p99),
                     static_cast<unsigned long long>(lat.p99));
        ++failures;
      }
      prev_p99 = lat.p99;
      if (think == 0) {
        if (s.name == "MIND") {
          mind_saturated_p99 = lat.p99;
        } else if (s.name == "MIND-unicast") {
          unicast_saturated_p99 = lat.p99;
        }
        // Gated trajectory row: simulated ns/op at saturation. Deterministic, so any
        // drift is a semantic change in routing or queue models, not runner noise.
        results.push_back(bench::BenchResult{
            "FigLoadLatency/" + s.name + "/saturated-sim-ns-op",
            report.total_ops == 0 ? 0.0
                                  : static_cast<double>(report.makespan) /
                                        static_cast<double>(report.total_ops),
            report.total_ops});
      }
    }
  }

  // The §4.3.2 claim under load: switch-native multicast beats sequential unicast where
  // the fabric is busiest.
  std::printf("\nsaturated p99 — MIND multicast %.1f us vs unicast %.1f us\n",
              ToMicros(mind_saturated_p99), ToMicros(unicast_saturated_p99));
  if (mind_saturated_p99 >= unicast_saturated_p99) {
    std::fprintf(stderr, "FAIL: multicast p99 did not beat unicast under saturation\n");
    ++failures;
  }

  bench::AppendTrajectoryEntry(results, "fig-load-latency");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mind

int main() { return mind::Run(); }
