// Figure 8 (left): directory entries used at the switch over normalized runtime.
//
// Setup matches §7.2: each workload on 8 compute blades x 10 threads, 30k-entry directory
// budget. Expected shape: TF and GC stabilize well below the 30k limit (bounded splitting
// merges their cold streaming regions); M_A and M_C pin the directory at the limit — their
// zipfian shared hot set wants more entries than the SRAM holds, which is what drives their
// false invalidations and scaling collapse.
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"

namespace mind {
namespace {

using bench::MakeMind;
using bench::RunWorkload;
using bench::ScaledOps;

using SpecFn = std::function<WorkloadSpec(uint64_t per_thread)>;
constexpr int kBlades = 8;
constexpr int kThreadsPerBlade = 10;

void RunFigure() {
  const uint64_t total_ops = ScaledOps(600'000);
  const uint64_t per_thread = total_ops / (kBlades * kThreadsPerBlade);
  const std::vector<std::pair<std::string, SpecFn>> workloads = {
      {"TF", [](uint64_t per) { return TfSpec(kBlades, kThreadsPerBlade, per); }},
      {"GC", [](uint64_t per) { return GcSpec(kBlades, kThreadsPerBlade, per); }},
      {"MA", [](uint64_t per) { return MemcachedASpec(kBlades, kThreadsPerBlade, per); }},
      {"MC", [](uint64_t per) { return MemcachedCSpec(kBlades, kThreadsPerBlade, per); }},
  };

  PrintSectionHeader(
      "Figure 8 (left): #used directory entries over normalized runtime (limit = 30000)");
  TablePrinter table({"workload", "t=0.1", "t=0.2", "t=0.4", "t=0.6", "t=0.8", "t=1.0",
                      "peak"},
                     10);
  table.PrintHeader();

  for (const auto& [name, make_spec] : workloads) {
    auto mind = MakeMind(kBlades);
    GaugeSeries series;
    Rack& rack = mind->rack();
    const auto report = RunWorkload(
        *mind, make_spec(per_thread),
        [&](SimTime now) { series.Sample(now, rack.directory().entry_count()); },
        2 * kMillisecond);
    // Downsample the series at fixed fractions of the run.
    auto at_fraction = [&](double f) -> uint64_t {
      const auto target = static_cast<SimTime>(f * static_cast<double>(report.makespan));
      uint64_t value = 0;
      for (const auto& p : series.samples()) {
        if (p.x > target) {
          break;
        }
        value = p.value;
      }
      return value;
    };
    table.PrintRow(name, at_fraction(0.1), at_fraction(0.2), at_fraction(0.4),
                   at_fraction(0.6), at_fraction(0.8),
                   rack.directory().entry_count(), rack.directory().high_water());
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
