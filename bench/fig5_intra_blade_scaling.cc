// Figure 5 (left): performance scaling with thread count on a single compute blade.
//
// Paper series: MIND, FastSwap and GAM on TF / GC / M_A / M_C, 1-10 threads, performance
// (inverse runtime) normalized to MIND at 1 thread. Expected shape: MIND and FastSwap scale
// near-linearly (page-fault-driven remote access, hardware MMU on the fast path); GAM bends
// past ~4 threads as its user-level library's per-access locking saturates.
#include <functional>
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::MakeMind;
using bench::PaperFastSwapConfig;
using bench::PaperGamConfig;
using bench::RunWorkload;
using bench::ScaledOps;

using SpecFn = std::function<WorkloadSpec(int threads, uint64_t per_thread)>;

void RunFigure() {
  const uint64_t total_ops = ScaledOps(150'000);
  const std::vector<int> thread_counts = {1, 2, 4, 10};
  const std::vector<std::pair<std::string, SpecFn>> workloads = {
      {"TF", [](int n, uint64_t per) { return TfSpec(1, n, per); }},
      {"GC", [](int n, uint64_t per) { return GcSpec(1, n, per); }},
      {"MA", [](int n, uint64_t per) { return MemcachedASpec(1, n, per); }},
      {"MC", [](int n, uint64_t per) { return MemcachedCSpec(1, n, per); }},
  };

  PrintSectionHeader(
      "Figure 5 (left): intra-blade scaling, normalized perf (1 = MIND @ 1 thread)");
  TablePrinter table({"workload", "threads", "MIND", "FastSwap", "GAM"});
  table.PrintHeader();

  for (const auto& [name, make_spec] : workloads) {
    double mind_base = 0.0;
    for (int threads : thread_counts) {
      const WorkloadSpec spec = make_spec(threads, total_ops / static_cast<uint64_t>(threads));

      auto mind = MakeMind(1);
      const auto mind_report = RunWorkload(*mind, spec);

      FastSwapSystem fastswap(PaperFastSwapConfig());
      const auto fs_report = RunWorkload(fastswap, spec);

      GamSystem gam(PaperGamConfig(1));
      const auto gam_report = RunWorkload(gam, spec);

      const double mind_perf = 1.0 / ToSeconds(mind_report.makespan);
      if (threads == 1) {
        mind_base = mind_perf;
      }
      table.PrintRow(name, threads, TablePrinter::Fmt(mind_perf / mind_base, 2),
                     TablePrinter::Fmt((1.0 / ToSeconds(fs_report.makespan)) / mind_base, 2),
                     TablePrinter::Fmt((1.0 / ToSeconds(gam_report.makespan)) / mind_base, 2));
    }
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
