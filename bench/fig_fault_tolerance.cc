// Fault tolerance under the §4.4 failure machinery (FaultPlane, src/fault/fault_plane.h).
//
// Part 1 — loss sweep: replay the same coherence-heavy trace on MIND, GAM and FastSwap
// while the seeded loss model drops 0% to 5% of messages-with-ACK. Retransmission latency
// and timeouts land in the committed per-op latencies, so throughput and tail latency
// degrade honestly: MIND and GAM additionally pay §4.4 resets (directory entry dropped,
// every cached copy flushed) when a retry budget exhausts, while FastSwap only stalls (the
// kernel retries the swap-in; there is nothing to reset).
//
// Part 2 — drain storm: a MIND rack serves live replay while scheduled drains migrate two
// memory blades' contents to survivors mid-run. The timeline table shows ops, mean and p99
// latency per simulated-time bucket, with the drain clocks marked: the post-drain buckets
// absorb the re-fault storm (every drained region's cached copies were shot down), then
// the rack returns to steady state.
//
// Loss draws and schedules are deterministic (fixed seed, serialized-path draws only), so
// every number here is bit-identical across replay shard counts — the fault conformance
// suite (tests/fault_injection_test.cc) enforces exactly that. The loss-free rows append
// `FigFaultTolerance/*/loss-free-sim-ns-op` to BENCH_microbench.json and are gated by
// tools/check_bench_regression.py: fault-plane plumbing must stay free on healthy racks.
//
// Scale the trace with MIND_BENCH_SCALE (CI runs 0.1; the committed baseline rows use the
// same scale).
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/histogram.h"

namespace mind {
namespace {

WorkloadSpec FaultCoherenceSpec(int blades) {
  // Zipfian shared table with 50/50 GET/SET: dense invalidation waves and remote fetches,
  // so the loss model sees a steady stream of message-with-ACK sends.
  WorkloadSpec spec = MemcachedASpec(blades, /*threads_per_blade=*/2,
                                     bench::ScaledOps(100'000));
  spec.shared_pages = 8192;
  return spec;
}

WorkloadSpec SwapFaultSpec() {
  // FastSwap is single-blade: a working set ~1.5x its cache keeps a steady swap-in stream
  // for the loss model to delay.
  WorkloadSpec spec;
  spec.name = "swap-faulty";
  spec.num_blades = 1;
  spec.threads_per_blade = 4;
  spec.private_pages_per_thread = 50'000;
  spec.private_pattern = Pattern::kUniform;
  spec.private_write_fraction = 0.5;
  spec.accesses_per_thread = bench::ScaledOps(200'000);
  return spec;
}

// Runs the replay; when `registry_text` is non-null it receives the engine's unified
// metrics snapshot (src/obs/metrics_registry.h) — every counter this figure used to print
// by hand now comes out of the one exporter.
ReplayReport Replay(MemorySystem& sys, const WorkloadTraces& traces,
                    std::string* registry_text = nullptr) {
  ReplayOptions opts;
  opts.shards = 4;  // Execution strategy only: results are bit-identical at any count.
  ReplayEngine engine(&sys, &traces, opts);
  const Status s = engine.Setup();
  if (!s.ok()) {
    std::fprintf(stderr, "replay setup failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  ReplayReport report = engine.Run();
  if (registry_text != nullptr) {
    std::ostringstream os;
    engine.metrics()->ExportText(os);
    *registry_text = os.str();
  }
  return report;
}

// --- Part 1: throughput + tail latency vs loss rate -----------------------------------------

void LossSweep(std::vector<bench::BenchResult>& results) {
  struct SystemUnderTest {
    std::string name;
    std::function<std::unique_ptr<MemorySystem>(double)> make;
    const WorkloadTraces* traces;
  };
  const WorkloadTraces coherence = GenerateTraces(FaultCoherenceSpec(8));
  const WorkloadTraces swap = GenerateTraces(SwapFaultSpec());
  const std::vector<SystemUnderTest> systems = {
      {"MIND",
       [](double loss) {
         RackConfig c = bench::PaperRackConfig(8);
         c.fault.reliability.loss_probability = loss;
         return std::make_unique<MindSystem>(c);
       },
       &coherence},
      {"GAM",
       [](double loss) {
         GamConfig c = bench::PaperGamConfig(8);
         c.fault.reliability.loss_probability = loss;
         return std::make_unique<GamSystem>(c);
       },
       &coherence},
      {"FastSwap",
       [](double loss) {
         FastSwapConfig c = bench::PaperFastSwapConfig();
         c.fault.reliability.loss_probability = loss;
         return std::make_unique<FastSwapSystem>(c);
       },
       &swap},
  };

  std::printf("\nFault tolerance — loss sweep (seeded loss on every message-with-ACK; "
              "%llu coherence ops, %llu swap ops)\n",
              static_cast<unsigned long long>(coherence.TotalOps()),
              static_cast<unsigned long long>(swap.TotalOps()));
  TablePrinter table({"system", "loss %", "Mops/s sim", "avg us", "p99 us", "timeouts",
                      "retx", "resets", "reset-flushed"});
  table.PrintHeader();
  std::string worst_case_registry;  // MIND at the highest loss rate.
  for (const SystemUnderTest& s : systems) {
    for (const double loss : {0.0, 0.005, 0.01, 0.02, 0.05}) {
      auto sys = s.make(loss);
      const bool snapshot = s.name == "MIND" && loss == 0.05;
      const ReplayReport report =
          Replay(*sys, *s.traces, snapshot ? &worst_case_registry : nullptr);
      table.PrintRow(s.name, TablePrinter::Fmt(100.0 * loss, 1),
                     TablePrinter::Fmt(report.throughput_mops, 3),
                     TablePrinter::Fmt(report.avg_latency_us, 2),
                     TablePrinter::Fmt(ToMicros(report.latency_histogram.Summary().p99), 1),
                     report.fault.timeouts, report.fault.retransmissions,
                     report.fault.resets_triggered, report.fault.pages_flushed_by_reset);
      if (loss == 0.0) {
        // Gated trajectory row: simulated ns per op on a healthy rack. Deterministic, so
        // any drift is a semantic change in the fault-plane plumbing, not runner noise.
        results.push_back(bench::BenchResult{
            "FigFaultTolerance/" + s.name + "/loss-free-sim-ns-op",
            report.total_ops == 0
                ? 0.0
                : static_cast<double>(report.makespan) / static_cast<double>(report.total_ops),
            report.total_ops});
      }
    }
  }
  std::printf("\nregistry snapshot — MIND at 5%% loss (unified exporter, "
              "src/obs/metrics_registry.h):\n%s",
              worst_case_registry.c_str());
}

// --- Part 2: drain-storm timeline ------------------------------------------------------------

// Forwards every call to the inner MIND system but inherits the null OpenChannel, so the
// replay engine drives every op through Access in exact global order — where this wrapper
// buckets committed latencies by simulated start time for the timeline.
class TimelineRecorder final : public MemorySystem {
 public:
  TimelineRecorder(MemorySystem* inner, SimTime bucket_width, size_t buckets)
      : inner_(inner), width_(bucket_width), hists_(buckets) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] int num_compute_blades() const override {
    return inner_->num_compute_blades();
  }
  Result<VirtAddr> Alloc(uint64_t size) override { return inner_->Alloc(size); }
  Result<ThreadId> RegisterThread(ComputeBladeId blade) override {
    return inner_->RegisterThread(blade);
  }
  AccessResult Access(ThreadId tid, ComputeBladeId blade, VirtAddr va, AccessType type,
                      SimTime now) override {
    AccessResult res = inner_->Access(tid, blade, va, type, now);
    const size_t b = std::min(static_cast<size_t>(now / width_), hists_.size() - 1);
    hists_[b].Record(res.latency);
    return res;
  }
  [[nodiscard]] SystemCounters counters() const override { return inner_->counters(); }
  [[nodiscard]] FaultCounters fault_counters() const override {
    return inner_->fault_counters();
  }
  [[nodiscard]] SimTime NextScheduledFaultAt() const override {
    return inner_->NextScheduledFaultAt();
  }
  void AdvanceTo(SimTime now) override { inner_->AdvanceTo(now); }

  [[nodiscard]] const std::vector<Histogram>& buckets() const { return hists_; }

 private:
  MemorySystem* inner_;
  SimTime width_;
  std::vector<Histogram> hists_;
};

void DrainStorm(std::vector<bench::BenchResult>& results) {
  const WorkloadTraces traces = GenerateTraces(FaultCoherenceSpec(8));

  // Probe the healthy makespan, then schedule two drains at 40% and 65% of it.
  SimTime makespan = 0;
  {
    auto probe = bench::MakeMind(8);
    makespan = Replay(*probe, traces).makespan;
  }
  RackConfig config = bench::PaperRackConfig(8);
  const SimTime drain1 = (makespan * 2) / 5;
  const SimTime drain2 = (makespan * 13) / 20;
  config.fault.drains.push_back(FaultPlaneConfig::BladeDrain{/*blade=*/0, /*dst=*/4, drain1});
  config.fault.drains.push_back(FaultPlaneConfig::BladeDrain{/*blade=*/1, /*dst=*/5, drain2});

  constexpr size_t kBuckets = 12;
  MindSystem mind(config);
  // The storm run can outlive the healthy makespan (post-drain re-faults); keep the last
  // bucket open-ended by sizing widths off the healthy run.
  TimelineRecorder recorder(&mind, std::max<SimTime>(makespan / kBuckets, 1), kBuckets);
  ReplayOptions opts;  // Null channels on the wrapper: pure per-op replay, exact order.
  ReplayEngine engine(&recorder, &traces, opts);
  if (!engine.Setup().ok()) {
    std::fprintf(stderr, "drain-storm setup failed\n");
    std::abort();
  }
  const ReplayReport report = engine.Run();

  std::printf("\nDrain storm — live replay while memory blades 0 and 1 drain to survivors "
              "(drains at %.1f ms and %.1f ms)\n",
              ToMillis(drain1), ToMillis(drain2));
  TablePrinter table({"window ms", "ops", "avg us", "p99 us", "event"});
  table.PrintHeader();
  const SimTime width = std::max<SimTime>(makespan / kBuckets, 1);
  Histogram steady;
  Histogram during;
  for (size_t b = 0; b < kBuckets; ++b) {
    const Histogram& h = recorder.buckets()[b];
    if (h.count() == 0) {
      continue;
    }
    const SimTime lo = static_cast<SimTime>(b) * width;
    const SimTime hi = lo + width;
    const bool has_drain = (drain1 >= lo && drain1 < hi) || (drain2 >= lo && drain2 < hi);
    char window[64];
    std::snprintf(window, sizeof(window), "%.1f-%.1f", ToMillis(lo), ToMillis(hi));
    table.PrintRow(window, h.count(), TablePrinter::Fmt(ToMicros(h.Mean()), 2),
                   TablePrinter::Fmt(ToMicros(h.Percentile(0.99)), 1),
                   has_drain ? "DRAIN" : "");
    (has_drain ? during : steady).Merge(h);
  }
  std::printf("p99 during drain windows: %.1f us (steady state: %.1f us)\n",
              ToMicros(during.Summary().p99), ToMicros(steady.Summary().p99));
  // The drain/migration/fault counters come out of the unified registry instead of a
  // hand-rolled FaultCounters print (replay/fault/* carries drains_completed and
  // drain_pages_migrated).
  std::printf("\nregistry snapshot — drain storm (unified exporter):\n");
  std::ostringstream storm_registry;
  engine.metrics()->ExportText(storm_registry);
  std::fputs(storm_registry.str().c_str(), stdout);

  // Trajectory row: simulated ns/op for the whole storm run — tracks the end-to-end cost
  // of drains under live traffic across PRs (deterministic, so gated like the loss-free
  // rows once a baseline is committed).
  results.push_back(bench::BenchResult{
      "FigFaultTolerance/MIND/drain-storm-sim-ns-op",
      report.total_ops == 0
          ? 0.0
          : static_cast<double>(report.makespan) / static_cast<double>(report.total_ops),
      report.total_ops});
}

}  // namespace
}  // namespace mind

int main() {
  using namespace mind;
  std::vector<bench::BenchResult> results;
  LossSweep(results);
  DrainStorm(results);
  bench::AppendTrajectoryEntry(results, "fig-fault-tolerance");
  return 0;
}
