// Prefetch coverage figure: policy × workload sweep of the pattern-aware prefetcher
// (src/prefetch/prefetch.h) across all three systems.
//
// Workloads pick the four access shapes that discriminate a swap-path prefetcher:
//   stream  — sequential private scan far past the cache: every op would fault; both
//             policies should cover most faults (high coverage).
//   strided — fixed stride-7 scan (page-coprime, so the whole set cycles): kNextN's
//             +1 readahead wastes fetches, kMajorityStride locks onto the stride.
//   chase   — deterministic RNG-permuted pointer chase: no majority stride exists, the
//             stride policy should (correctly) sit out, coverage ~0.
//   zipf    — zipfian shared table: the hot head caches, the random tail is
//             unpredictable; coverage ~0 without harming the hit path.
//
// Rows print coverage (useful / would-be faults), accuracy (useful / issued), the raw
// issued/useful/late counters, and the simulated makespan speedup vs the same system
// with prefetching off. Appends `FigPrefetchCoverage/*` coverage entries (percent in the
// value slot) to BENCH_microbench.json. Scale ops with MIND_BENCH_SCALE.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

constexpr uint64_t kPrivatePages = 24'576;  // 96 MB per thread vs a 32 MB cache.
constexpr uint64_t kCacheBytes = 32ull << 20;

WorkloadSpec BaseSpec(int blades) {
  WorkloadSpec s;
  s.num_blades = blades;
  s.threads_per_blade = 1;
  s.private_pages_per_thread = kPrivatePages;
  s.private_write_fraction = 0.3;
  s.accesses_per_thread = bench::ScaledOps(30'000);
  s.think_time = 600;
  s.seed = 31;
  return s;
}

WorkloadSpec StreamSpec(int blades) {
  WorkloadSpec s = BaseSpec(blades);
  s.name = "stream";
  s.private_pattern = Pattern::kSequential;
  return s;
}

WorkloadSpec StridedSpec(int blades) {
  WorkloadSpec s = BaseSpec(blades);
  s.name = "strided";
  s.private_pattern = Pattern::kStrided;
  s.stride_pages = 7;  // Coprime with the segment size: the scan covers every page.
  return s;
}

WorkloadSpec ChaseSpec(int blades) {
  WorkloadSpec s = BaseSpec(blades);
  s.name = "chase";
  s.private_pattern = Pattern::kPointerChase;
  return s;
}

WorkloadSpec ZipfSpec(int blades) {
  WorkloadSpec s = BaseSpec(blades);
  s.name = "zipf";
  s.private_pages_per_thread = 0;
  s.shared_pages = 262'144;  // 1 GB zipfian table, read-only (no coherence noise).
  s.shared_pattern = Pattern::kZipfian;
  s.zipf_theta = 0.99;
  s.shared_access_fraction = 1.0;
  s.shared_write_fraction = 0.0;
  return s;
}

std::unique_ptr<MemorySystem> MakeSystem(const std::string& which, int blades) {
  if (which == "MIND") {
    RackConfig c = bench::PaperRackConfig(blades);
    c.compute_cache_bytes = kCacheBytes;
    return std::make_unique<MindSystem>(c);
  }
  if (which == "GAM") {
    GamConfig c = bench::PaperGamConfig(blades);
    c.compute_cache_bytes = kCacheBytes;
    return std::make_unique<GamSystem>(c);
  }
  FastSwapConfig c = bench::PaperFastSwapConfig();
  c.compute_cache_bytes = kCacheBytes;
  return std::make_unique<FastSwapSystem>(c);
}

}  // namespace
}  // namespace mind

int main(int argc, char** argv) {
  using namespace mind;
  (void)argc;
  (void)argv;
  std::vector<bench::BenchResult> results;

  const std::vector<std::string> systems = {"MIND", "GAM", "FastSwap"};
  const std::vector<PrefetchPolicy> policies = {
      PrefetchPolicy::kNone, PrefetchPolicy::kNextN, PrefetchPolicy::kMajorityStride};

  for (const std::string& sys_name : systems) {
    const int blades = sys_name == "FastSwap" ? 1 : 4;
    const std::vector<WorkloadSpec> specs = {StreamSpec(blades), StridedSpec(blades),
                                             ChaseSpec(blades), ZipfSpec(blades)};
    std::printf("\nPrefetch coverage — %s (%d blade%s, miss-heavy working sets)\n",
                sys_name.c_str(), blades, blades == 1 ? "" : "s");
    TablePrinter table({"workload", "policy", "coverage", "accuracy", "issued", "useful",
                        "late", "remote/op", "avg us", "sim ms", "speedup"});
    table.PrintHeader();
    for (const WorkloadSpec& spec : specs) {
      const WorkloadTraces traces = GenerateTraces(spec);
      double none_makespan_ms = 0.0;
      for (const PrefetchPolicy policy : policies) {
        auto sys = MakeSystem(sys_name, blades);
        ReplayOptions opts;
        opts.prefetch = policy;
        ReplayEngine engine(sys.get(), &traces, opts);
        if (const Status s = engine.Setup(); !s.ok()) {
          std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
          return 1;
        }
        const ReplayReport report = engine.Run();
        const double sim_ms = ToMillis(report.makespan);
        if (policy == PrefetchPolicy::kNone) {
          none_makespan_ms = sim_ms;
        }
        const double coverage_pct = 100.0 * report.PrefetchCoverage();
        const double speedup = sim_ms > 0.0 ? none_makespan_ms / sim_ms : 0.0;
        table.PrintRow(spec.name, ToString(policy),
                       TablePrinter::Fmt(coverage_pct, 1) + "%",
                       TablePrinter::Fmt(100.0 * report.prefetch.Accuracy(), 1) + "%",
                       report.prefetch.issued, report.prefetch.useful,
                       report.prefetch.late, TablePrinter::Fmt(report.RemoteAccessesPerOp(), 3),
                       TablePrinter::Fmt(report.avg_latency_us, 2),
                       TablePrinter::Fmt(sim_ms, 2), TablePrinter::Fmt(speedup, 2) + "x");
        // Trajectory: coverage percent for every prefetching row (the figure's headline
        // metric — the acceptance bar is >= 30% on stream/strided for MIND & FastSwap).
        if (policy != PrefetchPolicy::kNone) {
          results.push_back(bench::BenchResult{
              "FigPrefetchCoverage/" + sys_name + "/" + spec.name + "/" +
                  ToString(policy) + "/coverage_pct",
              coverage_pct, report.total_ops});
        }
      }
    }
  }
  bench::AppendTrajectoryEntry(results, "fig-prefetch-coverage");
  return 0;
}
