// Figure 7 (center): 4 KB IOPS under varying read-write and sharing ratios.
//
// Setup matches §7.2: 8 compute blades x 1 thread, 400k-page working set, uniform-random
// accesses. Expected shape: read ratio 1 or sharing ratio 0 keeps throughput high
// (~1-2 x 10^6 IOPS — pages stay cached); raising both the write fraction and the sharing
// ratio collapses throughput by ~10x (M<->S ping-pong invalidations dominate).
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::MakeMind;
using bench::RunWorkload;
using bench::ScaledOps;

void RunFigure() {
  // The paper's 400k-page working set is replayed here at a scaled 150k pages so the
  // scaled-down trace length still warms the caches (see EXPERIMENTS.md on scaling).
  const uint64_t per_thread = ScaledOps(40'000);
  const uint64_t total_pages = 150'000;
  const std::vector<double> ratios = {0.0, 0.25, 0.5, 0.75, 1.0};

  PrintSectionHeader(
      "Figure 7 (center): aggregate 4KB IOPS, 8 blades x 1 thread (scaled working set)");
  TablePrinter table({"read_ratio", "share=0", "share=0.25", "share=0.5", "share=0.75",
                      "share=1.0"},
                     13);
  table.PrintHeader();

  for (double read_ratio : ratios) {
    std::vector<std::string> cells;
    for (double sharing : ratios) {
      auto mind = MakeMind(8);
      const auto report =
          RunWorkload(*mind, MicroSpec(8, read_ratio, sharing, total_pages, per_thread));
      cells.push_back(TablePrinter::Fmt(report.throughput_mops * 1e6, 0));
    }
    table.PrintRow(TablePrinter::Fmt(read_ratio, 2), cells[0], cells[1], cells[2], cells[3],
                   cells[4]);
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
