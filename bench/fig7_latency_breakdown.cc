// Figure 7 (right): end-to-end remote-access latency decomposition vs blade count.
//
// Setup matches §7.2: sharing ratio fixed at 1 (every page shared by all threads), read
// ratio in {0, 0.5, 1}, 1 thread per blade. Expected shape: the read-only workload stays
// near the S->S latency (~10 us) at every blade count; write-heavy workloads climb
// (~10 -> ~30 us at 8 blades in the paper) as invalidation queueing ("Inv (queue)") and
// synchronous TLB shootdowns ("Inv (TLB)") pile onto the critical path.
#include <vector>

#include "bench/bench_util.h"

namespace mind {
namespace {

using bench::MakeMind;
using bench::RunWorkload;
using bench::ScaledOps;

void RunFigure() {
  const uint64_t per_thread = ScaledOps(40'000);
  const uint64_t total_pages = 150'000;  // Scaled working set; see EXPERIMENTS.md.

  PrintSectionHeader(
      "Figure 7 (right): avg remote-access latency breakdown (us), sharing ratio 1");
  TablePrinter table({"read_ratio", "blades", "total", "pgfault", "network", "inv_queue",
                      "inv_tlb"},
                     11);
  table.PrintHeader();

  for (double read_ratio : {0.0, 0.5, 1.0}) {
    for (int blades : {1, 2, 4, 8}) {
      auto mind = MakeMind(blades);
      const auto report =
          RunWorkload(*mind, MicroSpec(blades, read_ratio, 1.0, total_pages, per_thread));
      const auto& sums = report.counters.breakdown_sums;
      const double n = std::max<double>(1.0, static_cast<double>(report.counters.remote_accesses));
      const double fault = ToMicros(sums.fault) / n;
      const double network = ToMicros(sums.network) / n;
      const double queue = ToMicros(sums.inv_queue) / n;
      const double tlb = ToMicros(sums.inv_tlb) / n;
      table.PrintRow(TablePrinter::Fmt(read_ratio, 1), blades,
                     TablePrinter::Fmt(fault + network + queue + tlb, 2),
                     TablePrinter::Fmt(fault, 2), TablePrinter::Fmt(network, 2),
                     TablePrinter::Fmt(queue, 2), TablePrinter::Fmt(tlb, 2));
    }
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
