// Figure 8 (right): memory-blade load balance (Jain's fairness index) of MIND's balanced
// allocation vs conventional 2 MB / 1 GB page placement, vs blade count.
//
// Expected shape: MIND and 2 MB pages both stay near 1.0 (but 2 MB pages pay for it with
// the rule explosion of Fig. 8 center); 1 GB pages lose badly on the allocation-intensive
// Memcached pattern — a handful of huge pages cannot spread across 8 memory blades.
#include <vector>

#include "bench/alloc_patterns.h"
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/core/mind.h"

namespace mind {
namespace {

using bench::AllocationPattern;
using bench::kGiB;
using bench::kMiB;
using bench::SimulatePagedPlacement;

constexpr int kThreadsPerBlade = 10;

double MindFairness(const std::vector<uint64_t>& allocs) {
  Rack rack(bench::PaperRackConfig(8));
  const ProcessId pid = *rack.Exec("fig8");
  for (uint64_t size : allocs) {
    auto va = rack.Mmap(pid, size, PermClass::kReadWrite);
    if (!va.ok()) {
      std::fprintf(stderr, "mmap failed: %s\n", va.status().ToString().c_str());
      std::abort();
    }
  }
  return JainFairnessIndex(rack.controller().allocator().PerBladeLoad());
}

void RunFigure() {
  PrintSectionHeader(
      "Figure 8 (right): Jain's fairness index of per-memory-blade load (8 memory blades)");
  TablePrinter table({"workload", "blades", "2MB-pages", "1GB-pages", "MIND"}, 12);
  table.PrintHeader();

  for (const std::string workload : {"TF", "GC", "MA&C"}) {
    for (int blades : {1, 2, 4, 8}) {
      const auto allocs = AllocationPattern(workload, blades * kThreadsPerBlade);
      const auto paged_2m = SimulatePagedPlacement(allocs, 2 * kMiB, 8);
      const auto paged_1g = SimulatePagedPlacement(allocs, 1 * kGiB, 8);
      table.PrintRow(workload, blades,
                     TablePrinter::Fmt(JainFairnessIndex(paged_2m.loads), 3),
                     TablePrinter::Fmt(JainFairnessIndex(paged_1g.loads), 3),
                     TablePrinter::Fmt(MindFairness(allocs), 3));
    }
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
