// Ablation (design principle P3, §4.3.2): switch-native multicast invalidations with
// egress sharer-list pruning vs sequential software unicast.
//
// The paper's in-network coherence leans on the traffic manager replicating invalidations
// to all sharers in parallel; a CPU-based design must issue them one by one, so its cost
// grows with the sharer count. Part 1 drives S->M upgrades directly against regions with a
// controlled number of sharers and reports the write's end-to-end latency under both
// delivery mechanisms. Part 2 replays the read-mostly Memcached-C workload end to end for
// an application-level view (steady-state fan-out there is small, so the gap is, too).
#include <vector>

#include "bench/bench_util.h"
#include "src/core/mind.h"

namespace mind {
namespace {

using bench::PaperRackConfig;
using bench::RunWorkload;
using bench::ScaledOps;

// Average S->M upgrade latency when `sharers` blades hold the region, over `rounds` fresh
// regions (each region is measured exactly once, cold for the writer).
double MeasureUpgradeLatency(bool multicast, int sharers, int rounds) {
  RackConfig cfg = PaperRackConfig(8);
  cfg.use_multicast = multicast;
  Rack rack(cfg);
  const ProcessId pid = *rack.Exec("ablation");
  const ProtDomainId pdid = *rack.controller().PdidOf(pid);
  std::vector<ThreadId> tids;
  for (int i = 0; i < 8; ++i) {
    tids.push_back(rack.SpawnThread(pid, static_cast<ComputeBladeId>(i))->tid);
  }
  const VirtAddr base = *rack.Mmap(pid, 256ull << 20, PermClass::kReadWrite);

  SimTime now = 0;
  uint64_t total_latency = 0;
  for (int r = 0; r < rounds; ++r) {
    const VirtAddr region = base + static_cast<uint64_t>(r) * (64 * 1024);
    // Build the sharer set: blades 1..sharers read the page.
    for (int s = 1; s <= sharers; ++s) {
      now = rack.Access({tids[static_cast<size_t>(s)], static_cast<ComputeBladeId>(s), pdid,
                         region, AccessType::kRead, now})
                .completion +
            kMicrosecond;
    }
    // Blade 0 writes: invalidations fan out to all sharers.
    const auto w = rack.Access({tids[0], 0, pdid, region, AccessType::kWrite, now});
    total_latency += w.latency;
    now = w.completion + kMicrosecond;
  }
  return ToMicros(total_latency) / rounds;
}

void RunFigure() {
  PrintSectionHeader(
      "Ablation (part 1): S->M upgrade latency (us) vs sharer count, multicast vs unicast");
  TablePrinter direct({"sharers", "multicast_us", "unicast_us", "penalty"}, 14);
  direct.PrintHeader();
  for (int sharers : {1, 2, 4, 7}) {
    const double mc = MeasureUpgradeLatency(/*multicast=*/true, sharers, 200);
    const double uc = MeasureUpgradeLatency(/*multicast=*/false, sharers, 200);
    direct.PrintRow(sharers, TablePrinter::Fmt(mc, 2), TablePrinter::Fmt(uc, 2),
                    TablePrinter::Fmt(uc / mc, 3));
  }

  PrintSectionHeader("Ablation (part 2): end-to-end replay (Memcached-C, 8 blades)");
  TablePrinter replay({"workload", "delivery", "runtime_ms", "avg_lat_us", "invalidations"},
                      14);
  replay.PrintHeader();
  const uint64_t per_thread = ScaledOps(200'000) / 80;
  for (bool multicast : {true, false}) {
    RackConfig cfg = PaperRackConfig(8);
    cfg.use_multicast = multicast;
    MindSystem sys(cfg, multicast ? "MIND" : "MIND-unicast");
    const auto report = RunWorkload(sys, MemcachedCSpec(8, 10, per_thread));
    replay.PrintRow("MC", multicast ? "multicast" : "unicast",
                    TablePrinter::Fmt(ToMillis(report.makespan), 2),
                    TablePrinter::Fmt(report.avg_latency_us, 2),
                    report.counters.invalidations);
  }
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
