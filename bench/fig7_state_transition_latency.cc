// Figure 7 (left): end-to-end latency of every MSI state transition, including data fetch,
// with 2/4/8 compute blades holding the page, split into "network" and "wait for
// ACK/invalidation" components.
//
// Expected values (paper): ~8.5-9.4 us for transitions without invalidations (S->S, I->S/M)
// and for S->M (invalidation overlaps the parallel fetch, slightly above); ~18 us for
// M->S/M (the owner's flush serializes before the fetch: 2 RTTs).
#include <vector>

#include "bench/bench_util.h"
#include "src/core/mind.h"

namespace mind {
namespace {

struct Fixture {
  explicit Fixture(int blades) : rack(bench::PaperRackConfig(blades)) {
    pid = *rack.Exec("fig7");
    pdid = *rack.controller().PdidOf(pid);
    for (int i = 0; i < blades; ++i) {
      tids.push_back(rack.SpawnThread(pid, static_cast<ComputeBladeId>(i))->tid);
    }
    va = *rack.Mmap(pid, 64ull << 20, PermClass::kReadWrite);
  }

  AccessResult Go(int blade, VirtAddr addr, AccessType type, SimTime now) {
    return rack.Access(AccessRequest{tids[static_cast<size_t>(blade)],
                                     static_cast<ComputeBladeId>(blade), pdid, addr, type,
                                     now});
  }

  Rack rack;
  ProcessId pid;
  ProtDomainId pdid;
  std::vector<ThreadId> tids;
  VirtAddr va;
};

struct Measured {
  double total_us;
  double network_us;
  double wait_us;  // Invalidation queue + TLB shootdown at the slowest sharer.
};

Measured FromResult(const AccessResult& r) {
  return Measured{ToMicros(r.latency), ToMicros(r.breakdown.fault + r.breakdown.network),
                  ToMicros(r.breakdown.inv_queue + r.breakdown.inv_tlb)};
}

// S->S: n_sharers blades already share the region; one more blade reads.
Measured MeasureSToS(int n_sharers) {
  Fixture f(8);
  SimTime t = 0;
  for (int b = 0; b < n_sharers; ++b) {
    t = f.Go(b, f.va, AccessType::kRead, t).completion + kMicrosecond;
  }
  return FromResult(f.Go(n_sharers, f.va, AccessType::kRead, t));
}

// S->M: n_sharers blades share; another blade writes, invalidating all of them while the
// page is fetched from memory in parallel.
Measured MeasureSToM(int n_sharers) {
  Fixture f(8);
  SimTime t = 0;
  for (int b = 0; b < n_sharers; ++b) {
    t = f.Go(b, f.va, AccessType::kRead, t).completion + kMicrosecond;
  }
  return FromResult(f.Go(n_sharers, f.va, AccessType::kWrite, t));
}

Measured MeasureIToS() {
  Fixture f(8);
  return FromResult(f.Go(0, f.va, AccessType::kRead, 0));
}

Measured MeasureIToM() {
  Fixture f(8);
  return FromResult(f.Go(0, f.va, AccessType::kWrite, 0));
}

// M->S / M->M: blade 0 owns the region with a dirty page; blade 1 reads/writes it.
Measured MeasureMTo(AccessType type) {
  Fixture f(8);
  const SimTime t = f.Go(0, f.va, AccessType::kWrite, 0).completion + kMicrosecond;
  return FromResult(f.Go(1, f.va, type, t));
}

void RunFigure() {
  PrintSectionHeader("Figure 7 (left): per-transition latency (us), incl. data fetch");
  TablePrinter table({"transition", "sharers", "total_us", "network_us", "wait_ack_us"}, 13);
  table.PrintHeader();

  for (int n : {1, 3, 7}) {  // 2C/4C/8C = requester + {1,3,7} prior holders.
    const auto m = MeasureSToS(n);
    table.PrintRow("S->S", n + 1, TablePrinter::Fmt(m.total_us, 2),
                   TablePrinter::Fmt(m.network_us, 2), TablePrinter::Fmt(m.wait_us, 2));
  }
  for (int n : {1, 3, 7}) {
    const auto m = MeasureSToM(n);
    table.PrintRow("S->M", n + 1, TablePrinter::Fmt(m.total_us, 2),
                   TablePrinter::Fmt(m.network_us, 2), TablePrinter::Fmt(m.wait_us, 2));
  }
  const auto is = MeasureIToS();
  table.PrintRow("I->S", 1, TablePrinter::Fmt(is.total_us, 2),
                 TablePrinter::Fmt(is.network_us, 2), TablePrinter::Fmt(is.wait_us, 2));
  const auto im = MeasureIToM();
  table.PrintRow("I->M", 1, TablePrinter::Fmt(im.total_us, 2),
                 TablePrinter::Fmt(im.network_us, 2), TablePrinter::Fmt(im.wait_us, 2));
  const auto ms = MeasureMTo(AccessType::kRead);
  table.PrintRow("M->S", 2, TablePrinter::Fmt(ms.total_us, 2),
                 TablePrinter::Fmt(ms.network_us, 2), TablePrinter::Fmt(ms.wait_us, 2));
  const auto mm = MeasureMTo(AccessType::kWrite);
  table.PrintRow("M->M", 2, TablePrinter::Fmt(mm.total_us, 2),
                 TablePrinter::Fmt(mm.network_us, 2), TablePrinter::Fmt(mm.wait_us, 2));
}

}  // namespace
}  // namespace mind

int main() {
  mind::RunFigure();
  return 0;
}
