// Allocation patterns for the Figure 8 (center/right) storage and load-balancing benches.
//
// These model the *allocation* behaviour of the paper's applications (what fig8
// measures), not their access streams: TF allocates big parameter/activation tensors, GC a
// few large graph arrays, Memcached a long stream of ~1 MB slabs (allocation-intensive —
// the case where 1 GB-page placement loses badly on balance).
#ifndef MIND_BENCH_ALLOC_PATTERNS_H_
#define MIND_BENCH_ALLOC_PATTERNS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mind {
namespace bench {

inline constexpr uint64_t kMiB = 1024ull * 1024;
inline constexpr uint64_t kGiB = 1024ull * kMiB;

// Returns the allocation sizes (bytes) the workload performs with `threads` workers.
inline std::vector<uint64_t> AllocationPattern(const std::string& workload, int threads) {
  std::vector<uint64_t> allocs;
  if (workload == "TF") {
    // ~60 parameter/gradient tensors plus 3 activation buffers per worker.
    for (int i = 0; i < 60; ++i) {
      allocs.push_back((1ull << (i % 4)) * kMiB);  // 1/2/4/8 MB cycling.
    }
    for (int t = 0; t < threads; ++t) {
      for (int i = 0; i < 3; ++i) {
        allocs.push_back(16 * kMiB);
      }
    }
  } else if (workload == "GC") {
    // GraphChi-style sharded graph: 32 shards of 32 MB per array, plus per-worker
    // streaming buffers.
    for (int i = 0; i < 32; ++i) {
      allocs.push_back(32 * kMiB);
    }
    for (int t = 0; t < threads; ++t) {
      allocs.push_back(8 * kMiB);
      allocs.push_back(8 * kMiB);
    }
  } else {  // "MA&C": Memcached — allocation-intensive slab stream.
    allocs.push_back(64 * kMiB);  // Hash table.
    const int slabs = 1000 + 25 * threads;
    for (int i = 0; i < slabs; ++i) {
      allocs.push_back(1 * kMiB);
    }
  }
  return allocs;
}

// Conventional page-granularity placement: allocations pack sequentially into the open
// huge page; a new page (round-robin across blades) opens when the current one fills.
// One translation rule per opened page.
struct PagedPlacement {
  uint64_t rules = 0;
  std::vector<uint64_t> loads;  // Bytes per memory blade.
};

inline PagedPlacement SimulatePagedPlacement(const std::vector<uint64_t>& allocs,
                                             uint64_t page_size, int memory_blades) {
  PagedPlacement result;
  result.loads.assign(static_cast<size_t>(memory_blades), 0);
  uint64_t open_remaining = 0;
  size_t rr = 0;
  for (uint64_t size : allocs) {
    uint64_t remaining = size;
    while (remaining > 0) {
      if (open_remaining == 0) {
        result.loads[rr % static_cast<size_t>(memory_blades)] += page_size;
        ++rr;
        ++result.rules;
        open_remaining = page_size;
      }
      const uint64_t take = remaining < open_remaining ? remaining : open_remaining;
      remaining -= take;
      open_remaining -= take;
    }
  }
  return result;
}

}  // namespace bench
}  // namespace mind

#endif  // MIND_BENCH_ALLOC_PATTERNS_H_
