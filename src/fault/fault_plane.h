// FaultPlane: the deterministic, seeded fault schedule behind the §4.4 failure handling.
//
// MIND's failure story is ACK/timeout/retransmission plus a switch-driven *reset* that
// flushes a virtual address from every compute blade and drops its directory entry when a
// peer dies mid-transition. ReliabilityTracker models the per-message bookkeeping; this
// module is the schedule that drives it end to end: seeded packet loss on every
// message-with-ACK a system sends, per-blade stall windows that delay invalidation
// deliveries, a compute-blade death at a chosen clock (the blade stops ACKing, so waves
// that target it deterministically exhaust retransmissions and trigger the reset path),
// and scheduled memory-blade drains (migrate every region homed on the blade to a
// survivor, under live traffic).
//
// Determinism contract (what keeps sharded replay bit-identical): loss-RNG draws happen
// only on serialized paths — replay's coherence drain executes those in exact global
// (clock, thread) order for every shard count — so the draw sequence is invariant across
// 1/2/4/8 shards, groups on/off, and the per-op reference mode. Blade death and stall
// windows are pure functions of simulated time (no trigger state, no first-observation
// effects), and scheduled drains execute at their scheduled clock, which the replay engine
// guarantees by clamping its commit horizon at NextDrainAt().
#ifndef MIND_SRC_FAULT_FAULT_PLANE_H_
#define MIND_SRC_FAULT_FAULT_PLANE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/common/types.h"
#include "src/net/reliability.h"
#include "src/obs/trace.h"

namespace mind {

// Fault-event accounting every compared system reports next to SystemCounters. Merge and
// DeltaSince mirror the SystemCounters conventions so sharded replay folds these into one
// report block; operator== is exact (the fault conformance oracle compares blocks).
struct FaultCounters {
  uint64_t timeouts = 0;                // ACK timers expired (includes dead-target waits).
  uint64_t retransmissions = 0;         // Extra send attempts after a timeout.
  uint64_t resets_triggered = 0;        // Retry budgets exhausted (§4.4 reset path).
  uint64_t pages_flushed_by_reset = 0;  // Dirty pages written back by reset flushes.
  uint64_t drains_completed = 0;        // Scheduled blade drains that finished.
  uint64_t drain_pages_migrated = 0;    // Pages moved off draining memory blades.
  uint64_t stalled_deliveries = 0;      // Invalidation deliveries delayed by a stall window.

  void Merge(const FaultCounters& o) {
    timeouts += o.timeouts;
    retransmissions += o.retransmissions;
    resets_triggered += o.resets_triggered;
    pages_flushed_by_reset += o.pages_flushed_by_reset;
    drains_completed += o.drains_completed;
    drain_pages_migrated += o.drain_pages_migrated;
    stalled_deliveries += o.stalled_deliveries;
  }

  // Field-wise delta over a run (counters are monotonic).
  [[nodiscard]] FaultCounters DeltaSince(const FaultCounters& before) const {
    FaultCounters d;
    d.timeouts = timeouts - before.timeouts;
    d.retransmissions = retransmissions - before.retransmissions;
    d.resets_triggered = resets_triggered - before.resets_triggered;
    d.pages_flushed_by_reset = pages_flushed_by_reset - before.pages_flushed_by_reset;
    d.drains_completed = drains_completed - before.drains_completed;
    d.drain_pages_migrated = drain_pages_migrated - before.drain_pages_migrated;
    d.stalled_deliveries = stalled_deliveries - before.stalled_deliveries;
    return d;
  }

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

struct FaultPlaneConfig {
  // Loss model for every message-with-ACK (probability, seed, timeout, retry budget).
  ReliabilityConfig reliability;

  // Invalidation deliveries to `blade` whose switch-egress time lands in [from, until) are
  // delayed by `delay` — a stalled blade (NIC back-pressure, software pause) that slows
  // ACK collection without losing messages. Pure function of time.
  struct StallWindow {
    ComputeBladeId blade = kInvalidComputeBlade;
    SimTime from = 0;
    SimTime until = 0;
    SimTime delay = 0;
  };
  std::vector<StallWindow> stalls;

  // Compute-blade death: from clock `at` the blade stops ACKing invalidations, so any wave
  // that targets it deterministically exhausts the retry budget (no RNG draw) and the
  // requester resets the address. `at` = 0 disables.
  struct BladeDeath {
    ComputeBladeId blade = kInvalidComputeBlade;
    SimTime at = 0;
  };
  BladeDeath death;

  // Graceful memory-blade drain: at clock `at`, migrate every region homed on `blade` to
  // `dst` via the control plane's migration machinery, then the blade can be removed.
  // Entries must be sorted by `at`; `at` = 0 disables an entry.
  struct BladeDrain {
    MemoryBladeId blade = kInvalidMemoryBlade;
    MemoryBladeId dst = kInvalidMemoryBlade;
    SimTime at = 0;
  };
  std::vector<BladeDrain> drains;

  [[nodiscard]] bool lossy() const { return reliability.loss_probability > 0.0; }
};

// Per-system fault state: one seeded ReliabilityTracker plus the schedule above and the
// FaultCounters it produces. Owned by the system (Rack, GamSystem, FastSwapSystem) and —
// like everything the serialized drain touches — mutated only on serialized paths.
class FaultPlane {
 public:
  using SendOutcome = ReliabilityTracker::SendOutcome;

  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  explicit FaultPlane(const FaultPlaneConfig& config = {})
      : config_(config), tracker_(config.reliability) {}

  // True when sends must consult the plane (loss RNG armed or a death is scheduled).
  // Callers gate their SendWithAck calls on this so an unarmed plane leaves every timing
  // and counter bit-identical to a fault-free build.
  [[nodiscard]] bool Armed() const { return config_.lossy() || config_.death.at != 0; }
  [[nodiscard]] bool lossy() const { return config_.lossy(); }

  // One message-with-ACK under the loss model (draws from the seeded RNG — serialized
  // paths only). Latency includes timeout + retransmission costs actually paid.
  MIND_SERIALIZED_PATH SendOutcome SendWithAck(SimTime base_rtt) {
    return tracker_.SendWithAck(base_rtt);
  }

  // Traced variant: same draw sequence, but a retransmitted or undelivered send
  // additionally emits a kFaultTimeout event stamped at `now` (TraceScope,
  // src/obs/trace.h). Tracing observes — it never changes an outcome or a draw.
  MIND_SERIALIZED_PATH SendOutcome SendWithAck(SimTime base_rtt, SimTime now,
                                               ComputeBladeId blade) {
    const SendOutcome out = tracker_.SendWithAck(base_rtt);
    if (trace_ != nullptr && (out.attempts > 1 || !out.delivered)) [[unlikely]] {
      EmitTimeout(now, blade, out);
    }
    return out;
  }

  // Deterministic outcome for a wave that targets a dead blade: the requester waits out
  // the full retry budget without ever seeing an ACK. No RNG draw — the loss-draw sequence
  // stays identical whether or not a death is scheduled.
  MIND_SERIALIZED_PATH SendOutcome DeadTargetOutcome() {
    SendOutcome out;
    out.delivered = false;
    out.attempts = config_.reliability.max_retransmissions + 1;
    out.latency = static_cast<SimTime>(out.attempts) * config_.reliability.ack_timeout;
    extra_.timeouts += static_cast<uint64_t>(out.attempts);
    ++extra_.resets_triggered;
    return out;
  }

  // Traced variant of DeadTargetOutcome, stamped at `now` against the dead blade.
  MIND_SERIALIZED_PATH SendOutcome DeadTargetOutcome(SimTime now, ComputeBladeId blade) {
    const SendOutcome out = DeadTargetOutcome();
    if (trace_ != nullptr) [[unlikely]] {
      EmitTimeout(now, blade, out);
    }
    return out;
  }

  [[nodiscard]] bool BladeDead(ComputeBladeId b, SimTime t) const {
    return config_.death.at != 0 && b == config_.death.blade && t >= config_.death.at;
  }
  [[nodiscard]] bool AnyDead(SharerMask targets, SimTime t) const {
    return config_.death.at != 0 && t >= config_.death.at &&
           (targets & BladeBit(config_.death.blade)) != 0;
  }

  // Extra delivery delay for a message leaving the switch toward `b` at time `t`. Counts
  // the delivery as stalled when nonzero.
  MIND_SERIALIZED_PATH SimTime StallDelay(ComputeBladeId b, SimTime t) {
    SimTime d = 0;
    for (const auto& w : config_.stalls) {
      if (w.blade == b && t >= w.from && t < w.until) {
        d += w.delay;
      }
    }
    if (d != 0) {
      ++extra_.stalled_deliveries;
      if (trace_ != nullptr) [[unlikely]] {
        TraceEvent e;
        e.kind = TraceEventKind::kFaultStall;
        e.clock = t;
        e.blade = b;
        e.a = d;
        trace_->Emit(e);
      }
    }
    return d;
  }
  [[nodiscard]] bool HasStalls() const { return !config_.stalls.empty(); }

  // Earliest scheduled-but-unexecuted drain clock (kNever when none): the replay engine
  // clamps its commit horizon here so channel hits never commit past a cache-mutating
  // scheduled event.
  [[nodiscard]] SimTime NextDrainAt() const {
    return next_drain_ < config_.drains.size() && config_.drains[next_drain_].at != 0
               ? config_.drains[next_drain_].at
               : kNever;
  }

  // Pops the next drain due at or before `now` (nullptr when none). The caller executes
  // the migration with start time = the drain's scheduled `at`, not `now`, so fabric
  // interleaving is identical across replay modes.
  MIND_SERIALIZED_PATH const FaultPlaneConfig::BladeDrain* TakeDueDrain(SimTime now) {
    if (next_drain_ < config_.drains.size() && config_.drains[next_drain_].at != 0 &&
        config_.drains[next_drain_].at <= now) {
      return &config_.drains[next_drain_++];
    }
    return nullptr;
  }

  MIND_SERIALIZED_PATH void OnResetFlushed(uint64_t pages) {
    extra_.pages_flushed_by_reset += pages;
  }
  MIND_SERIALIZED_PATH void OnDrainCompleted(uint64_t pages_migrated) {
    ++extra_.drains_completed;
    extra_.drain_pages_migrated += pages_migrated;
  }

  // Tracker-sourced counters plus the plane's own events, as one block.
  [[nodiscard]] FaultCounters counters() const {
    FaultCounters c = extra_;
    const ReliabilityTracker::Snapshot s = tracker_.snapshot();
    c.timeouts += s.timeouts;
    c.retransmissions += s.retransmissions;
    c.resets_triggered += s.resets_triggered;
    return c;
  }

  [[nodiscard]] const FaultPlaneConfig& config() const { return config_; }
  [[nodiscard]] const ReliabilityTracker& tracker() const { return tracker_; }

  // Semantic-event sink (serialized paths only; null = tracing off, and every
  // hook above reduces to one pointer compare).
  void SetTraceSink(TraceSink* sink) { trace_ = sink; }

 private:
  void EmitTimeout(SimTime now, ComputeBladeId blade, const SendOutcome& out) {
    TraceEvent e;
    e.kind = TraceEventKind::kFaultTimeout;
    e.clock = now;
    e.blade = blade;
    e.a = static_cast<uint64_t>(out.attempts);
    e.b = out.latency;
    trace_->Emit(e);
  }

  FaultPlaneConfig config_;
  ReliabilityTracker tracker_;
  FaultCounters extra_;     // Events not tracked by the ReliabilityTracker itself.
  size_t next_drain_ = 0;   // Drains are executed in schedule order.
  TraceSink* trace_ = nullptr;
};

}  // namespace mind

#endif  // MIND_SRC_FAULT_FAULT_PLANE_H_
