// Latency calibration for the emulated rack.
//
// The paper's testbed (Tofino switch + CX-5 100 Gbps NICs + Xeon blades) is unavailable, so
// all timing constants live here, calibrated against the paper's *measured* numbers:
//   - local DRAM cache hit        < 100 ns                      (§7.2)
//   - 1-RTT remote fetch          ~ 8.5-9.4 us  (I->S/M, S->S, S->M)   (Fig. 7 left)
//   - 2-RTT fetch w/ owner flush  ~ 18 us       (M->S, M->M)           (Fig. 7 left)
//   - TLB shootdown               several us                           (§7.2, [70])
// Every component cost is separately accounted so benches can print the paper's breakdown
// (PgFault / Network / Inv-queue / Inv-TLB, Fig. 7 right).
#ifndef MIND_SRC_SIM_LATENCY_MODEL_H_
#define MIND_SRC_SIM_LATENCY_MODEL_H_

#include <cstdint>

#include "src/common/types.h"

namespace mind {

struct LatencyModel {
  // --- Compute blade ---
  SimTime local_cache_hit = 80;            // DRAM hit through hardware MMU.
  SimTime page_fault_entry = 900;          // Trap + kernel fault-handler entry.
  SimTime pte_install = 400;               // PTE setup + return-to-user after data arrives.
  SimTime tlb_shootdown = 2000;            // Synchronous shootdown during invalidation (§7.2).
  SimTime invalidation_handler_cpu = 400;  // Kernel handling per invalidation request.
  SimTime page_flush_cpu = 250;            // Per dirty page: unmap + post RDMA write.

  // --- Network (per hop: blade <-> switch) ---
  SimTime link_propagation = 1000;         // One-way wire + NIC + PCIe latency per hop.
  double link_bandwidth_gbps = 100.0;      // CX-5 class NICs.
  SimTime rdma_message_overhead = 300;     // Per-message NIC processing (doorbell, CQE).

  // --- Programmable switch ASIC ---
  SimTime switch_pipeline = 400;           // Parser + match-action stages, one pass.
  SimTime switch_recirculation = 400;      // Extra pass for directory update (§6.3, Fig. 4).

  // --- Memory blade ---
  SimTime memory_blade_service = 700;      // One-sided RDMA read/write service at the NIC/DRAM.

  // --- Baseline-specific knobs ---
  // GAM performs permission checks + locking in software on *every* access; the paper reports
  // GAM local accesses are ~10x slower than MIND's MMU-backed local accesses.
  SimTime gam_local_access = 800;
  SimTime gam_software_handler = 1500;     // Home-node request handling on a CPU (no ASIC).

  // Bytes on the wire for a page transfer vs a control message.
  uint64_t page_payload_bytes = kPageSize + 64;   // Page + headers.
  uint64_t control_message_bytes = 64;            // Invalidation / ACK / request.

  // Serialization delay of `bytes` on one link.
  [[nodiscard]] SimTime Serialize(uint64_t bytes) const {
    const double ns = static_cast<double>(bytes) * 8.0 / link_bandwidth_gbps;
    return static_cast<SimTime>(ns);
  }

  // One-way latency of a control-sized message over one hop.
  [[nodiscard]] SimTime ControlHop() const {
    return link_propagation + rdma_message_overhead + Serialize(control_message_bytes);
  }

  // One-way latency of a page-sized message over one hop.
  [[nodiscard]] SimTime PageHop() const {
    return link_propagation + rdma_message_overhead + Serialize(page_payload_bytes);
  }

  // End-to-end cost of a 1-RTT remote page fetch through the switch with no invalidations:
  //   fault -> [compute->switch] -> pipeline (+ recirculation for the directory update)
  //         -> [switch->memory] -> memory service -> [memory->switch] -> pipeline
  //         -> [switch->compute] -> PTE install.
  // Defined over an idle Fabric::Rtt() (src/sim/latency_model.cc) so the Fig. 7
  // calibration asserts the *routed* path — there is no second hand-summed copy of the
  // hop chain to drift from it. With the defaults this lands at ~9.1 us, matching
  // Fig. 7 (left)'s 8.5-9.4 us band.
  [[nodiscard]] SimTime OneRttFetch() const;
};

}  // namespace mind

#endif  // MIND_SRC_SIM_LATENCY_MODEL_H_
