#include "src/sim/latency_model.h"

#include "src/net/fabric.h"

namespace mind {

SimTime LatencyModel::OneRttFetch() const {
  // An idle 1x1 fabric with the default (kFifo) queue models reproduces the calibration
  // constants exactly: zero queueing, only wire + pipeline + service terms.
  Fabric idle(/*num_compute_blades=*/1, /*num_memory_blades=*/1, *this);
  const auto rtt =
      idle.Rtt(Endpoint::Compute(0), Endpoint::Memory(0), MessageKind::kRdmaReadRequest,
               MessageKind::kRdmaReadResponse, /*now=*/0, memory_blade_service,
               /*recirculate=*/true);
  return page_fault_entry + rtt.complete + pte_install;
}

}  // namespace mind
