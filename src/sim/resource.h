// Contention modeling: busy-until FIFO resources over logical time.
//
// The replay engine executes workload threads against per-thread logical clocks. Shared
// serialization points — a directory region mid-transition, a compute blade's invalidation
// handler, a NIC link — are modeled as single-server FIFO resources: a job arriving at `now`
// starts at max(now, busy_until) and occupies the server for its service time. The wait is
// the queueing delay the paper measures as "Inv. (queue)" in Fig. 7 (right).
#ifndef MIND_SRC_SIM_RESOURCE_H_
#define MIND_SRC_SIM_RESOURCE_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "src/common/types.h"

namespace mind {

class FifoResource {
 public:
  struct Grant {
    SimTime start;   // When service begins (>= arrival).
    SimTime finish;  // When service completes.
    SimTime wait;    // start - arrival (queueing delay).
  };

  // Reserve the resource for `service` time units starting no earlier than `arrival`.
  Grant Acquire(SimTime arrival, SimTime service) {
    const SimTime start = std::max(arrival, busy_until_);
    const SimTime finish = start + service;
    busy_until_ = finish;
    total_busy_ += service;
    total_wait_ += start - arrival;
    ++jobs_;
    return Grant{start, finish, start - arrival};
  }

  // Extend the busy horizon without enqueuing work (used when a region must stay locked
  // until invalidation ACKs return, not just while the switch pipeline processes a packet).
  void BlockUntil(SimTime t) { busy_until_ = std::max(busy_until_, t); }

  // Applies a batch of `jobs` grants simulated externally in one pass (a ChannelGroup
  // replaying the FIFO queue over a merged same-blade stream): advances the horizon and
  // folds in exactly the aggregate stats the equivalent per-op Acquire calls would have
  // recorded.
  void AcquireBatch(uint64_t jobs, SimTime total_service, SimTime total_wait,
                    SimTime busy_until) {
    busy_until_ = std::max(busy_until_, busy_until);
    total_busy_ += total_service;
    total_wait_ += total_wait;
    jobs_ += jobs;
  }

  [[nodiscard]] SimTime busy_until() const { return busy_until_; }
  [[nodiscard]] SimTime total_busy() const { return total_busy_; }
  [[nodiscard]] SimTime total_wait() const { return total_wait_; }
  [[nodiscard]] uint64_t jobs() const { return jobs_; }

  void Reset() {
    busy_until_ = 0;
    total_busy_ = 0;
    total_wait_ = 0;
    jobs_ = 0;
  }

 private:
  SimTime busy_until_ = 0;
  SimTime total_busy_ = 0;
  SimTime total_wait_ = 0;
  uint64_t jobs_ = 0;
};

// A keyed family of FIFO resources, created on first use (e.g. one per directory region).
template <typename Key>
class ResourceMap {
 public:
  FifoResource& Get(const Key& key) { return resources_[key]; }

  [[nodiscard]] size_t size() const { return resources_.size(); }

  void Erase(const Key& key) { resources_.erase(key); }
  void Clear() { resources_.clear(); }

 private:
  std::unordered_map<Key, FifoResource> resources_;
};

}  // namespace mind

#endif  // MIND_SRC_SIM_RESOURCE_H_
