// Dynamic mirror of the MIND_SERIALIZED_PATH / MIND_PARALLEL_PHASE static contract
// (src/common/thread_annotations.h, docs/determinism.md).
//
// The replay engine brackets every parallel phase execution (channel scan/commit, owner-
// parallel drain sub-rounds) in a ParallelPhaseScope. Serialized-only primitives — above
// all Rng draws — assert MIND_ASSERT_SERIALIZED_CONTEXT() at their entry, so a contract
// violation that slips past tools/detlint.py (e.g. a draw behind a function pointer the
// linter cannot follow) still dies loudly in any debug/sanitizer build instead of
// silently breaking bit-identical replay. Release builds (NDEBUG) compile the check out.
#ifndef MIND_SRC_COMMON_PHASE_GUARD_H_
#define MIND_SRC_COMMON_PHASE_GUARD_H_

#include <cassert>

namespace mind {
namespace detail {
inline thread_local bool g_in_parallel_phase = false;
}  // namespace detail

// True while the calling thread is executing inside a parallel phase.
inline bool InParallelPhase() { return detail::g_in_parallel_phase; }

// RAII bracket the phase executor places around parallel-phase work. Nests safely
// (restores the previous value), though phases do not currently nest.
class ParallelPhaseScope {
 public:
  ParallelPhaseScope() : prev_(detail::g_in_parallel_phase) {
    detail::g_in_parallel_phase = true;
  }
  ~ParallelPhaseScope() { detail::g_in_parallel_phase = prev_; }

  ParallelPhaseScope(const ParallelPhaseScope&) = delete;
  ParallelPhaseScope& operator=(const ParallelPhaseScope&) = delete;

 private:
  bool prev_;
};

// Entry assertion for MIND_SERIALIZED_PATH primitives whose misuse would break
// determinism (Rng draws, fault-plane loss decisions).
#define MIND_ASSERT_SERIALIZED_CONTEXT()                      \
  assert(!::mind::InParallelPhase() &&                        \
         "serialized-path primitive called inside a parallel " \
         "phase; see docs/determinism.md")

}  // namespace mind

#endif  // MIND_SRC_COMMON_PHASE_GUARD_H_
