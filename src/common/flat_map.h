// Open-addressed hash map from 64-bit keys to small values — the flat, cache-friendly
// building block of the simulated switch's O(1) access pipeline.
//
// The data-plane hot paths (directory lookup, TCAM LPM probe, DRAM-cache hit) model
// match-action table lookups that execute in a constant number of SRAM reads on the ASIC.
// A red-black tree's pointer-chasing descent is the wrong cost model for that; this map
// does a hash, a masked index and a short linear probe over three parallel arrays, which
// is as close as portable C++ gets to the hardware's behavior.
//
// Semantics: linear probing with tombstones, power-of-two capacity, max load factor 3/4
// (including tombstones) before an amortized rehash. Value pointers returned by Find or
// Upsert are invalidated by any subsequent mutation; callers needing stable storage keep
// indices into an external arena instead (see CacheDirectory, DramCache).
#ifndef MIND_SRC_COMMON_FLAT_MAP_H_
#define MIND_SRC_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mind {

template <typename Value>
class FlatMap64 {
 public:
  FlatMap64() = default;

  [[nodiscard]] Value* Find(uint64_t key) {
    return const_cast<Value*>(static_cast<const FlatMap64*>(this)->Find(key));
  }

  [[nodiscard]] const Value* Find(uint64_t key) const {
    if (state_.empty()) {
      return nullptr;
    }
    size_t idx = Hash(key) & mask_;
    while (true) {
      const uint8_t s = state_[idx];
      if (s == kEmpty) {
        return nullptr;
      }
      if (s == kFull && keys_[idx] == key) {
        return &values_[idx];
      }
      idx = (idx + 1) & mask_;
    }
  }

  // Inserts `value` under `key`, or assigns it to the existing entry. Returns the value
  // slot and whether a new entry was created.
  std::pair<Value*, bool> Upsert(uint64_t key, Value value) {
    if (state_.empty() || (occupied_ + 1) * 4 >= (mask_ + 1) * 3) {
      Grow();
    }
    size_t idx = Hash(key) & mask_;
    size_t insert_at = SIZE_MAX;  // First tombstone seen, reusable on insert.
    while (true) {
      const uint8_t s = state_[idx];
      if (s == kFull && keys_[idx] == key) {
        values_[idx] = std::move(value);
        return {&values_[idx], false};
      }
      if (s == kTombstone && insert_at == SIZE_MAX) {
        insert_at = idx;
      }
      if (s == kEmpty) {
        if (insert_at == SIZE_MAX) {
          insert_at = idx;
          ++occupied_;  // Tombstone reuse keeps the occupied count unchanged.
        }
        state_[insert_at] = kFull;
        keys_[insert_at] = key;
        values_[insert_at] = std::move(value);
        ++size_;
        return {&values_[insert_at], true};
      }
      idx = (idx + 1) & mask_;
    }
  }

  bool Erase(uint64_t key) {
    if (state_.empty()) {
      return false;
    }
    size_t idx = Hash(key) & mask_;
    while (true) {
      const uint8_t s = state_[idx];
      if (s == kEmpty) {
        return false;
      }
      if (s == kFull && keys_[idx] == key) {
        state_[idx] = kTombstone;
        values_[idx] = Value{};  // Release value-held resources eagerly.
        --size_;
        return true;
      }
      idx = (idx + 1) & mask_;
    }
  }

  // Unordered iteration; fn(key, value&). The map must not be mutated during iteration.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == kFull) {
        fn(keys_[i], values_[i]);
      }
    }
  }

  void Clear() {
    state_.clear();
    keys_.clear();
    values_.clear();
    size_ = 0;
    occupied_ = 0;
    mask_ = 0;
  }

  void Reserve(size_t n) {
    size_t cap = 16;
    while (n * 3 >= cap * 2) {
      cap <<= 1;
    }
    if (cap > state_.size()) {
      Rehash(cap);
    }
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] size_t capacity() const { return state_.size(); }

 private:
  enum : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  [[nodiscard]] static size_t Hash(uint64_t key) {
    uint64_t h = key * 0x9E3779B97F4A7C15ull;  // Fibonacci multiplier.
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }

  void Grow() {
    size_t cap = 16;
    while ((size_ + 1) * 2 >= cap) {
      cap <<= 1;  // Rehash to load factor <= 1/2, clearing tombstones.
    }
    Rehash(cap);
  }

  void Rehash(size_t new_cap) {
    std::vector<uint8_t> old_state = std::move(state_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    state_.assign(new_cap, kEmpty);
    keys_.assign(new_cap, 0);
    values_.assign(new_cap, Value{});
    mask_ = new_cap - 1;
    occupied_ = size_;
    for (size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) {
        continue;
      }
      size_t idx = Hash(old_keys[i]) & mask_;
      while (state_[idx] == kFull) {
        idx = (idx + 1) & mask_;
      }
      state_[idx] = kFull;
      keys_[idx] = old_keys[i];
      values_[idx] = std::move(old_values[i]);
    }
  }

  std::vector<uint8_t> state_;
  std::vector<uint64_t> keys_;
  std::vector<Value> values_;
  size_t size_ = 0;
  size_t occupied_ = 0;  // Full + tombstone slots.
  size_t mask_ = 0;      // capacity - 1 (0 when unallocated).
};

}  // namespace mind

#endif  // MIND_SRC_COMMON_FLAT_MAP_H_
