// Core value types shared by every MIND module.
//
// MIND operates on a single global virtual address space (the paper, §4.1) that is
// range-partitioned across memory blades. All addresses here are 64-bit; simulated time is
// kept in nanoseconds so that both sub-100ns DRAM hits and 100ms control-plane epochs are
// representable without conversion.
#ifndef MIND_SRC_COMMON_TYPES_H_
#define MIND_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace mind {

// ---------------------------------------------------------------------------
// Addresses and pages.
// ---------------------------------------------------------------------------

using VirtAddr = uint64_t;
using PhysAddr = uint64_t;

inline constexpr uint64_t kPageShift = 12;                  // 4 KB pages, as in the paper.
inline constexpr uint64_t kPageSize = 1ull << kPageShift;   // 4096
inline constexpr uint64_t kPageMask = ~(kPageSize - 1);

// Default region-granularity constants for the cache directory (§4.3, §5).
inline constexpr uint64_t kMinRegionSize = kPageSize;            // 4 KB floor for splitting.
inline constexpr uint64_t kDefaultInitialRegionSize = 16 * 1024; // 16 KB (paper default).
inline constexpr uint64_t kDefaultBaseRegionSize = 2 * 1024 * 1024;  // M = 2 MB base regions.

[[nodiscard]] constexpr VirtAddr PageBase(VirtAddr va) { return va & kPageMask; }
[[nodiscard]] constexpr uint64_t PageNumber(VirtAddr va) { return va >> kPageShift; }
[[nodiscard]] constexpr VirtAddr PageToAddr(uint64_t page_number) {
  return page_number << kPageShift;
}

// ---------------------------------------------------------------------------
// Simulated time (nanoseconds).
// ---------------------------------------------------------------------------

using SimTime = uint64_t;  // Nanoseconds since simulation start.

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * 1000;
inline constexpr SimTime kSecond = 1000ull * 1000 * 1000;

[[nodiscard]] constexpr double ToMicros(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
[[nodiscard]] constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
[[nodiscard]] constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

// ---------------------------------------------------------------------------
// Identifiers.
// ---------------------------------------------------------------------------

// Compute blades and memory blades live in distinct id spaces; both are dense small integers
// assigned by the rack at construction time.
using ComputeBladeId = uint16_t;
using MemoryBladeId = uint16_t;
using ThreadId = uint32_t;  // Globally unique across blades.
using ProcessId = uint32_t;
// Protection-domain id (§4.2). For unmodified applications MIND uses the PID as the PDID.
using ProtDomainId = uint32_t;

inline constexpr ComputeBladeId kInvalidComputeBlade =
    std::numeric_limits<ComputeBladeId>::max();
inline constexpr MemoryBladeId kInvalidMemoryBlade = std::numeric_limits<MemoryBladeId>::max();
inline constexpr ProcessId kInvalidProcess = std::numeric_limits<ProcessId>::max();

// ---------------------------------------------------------------------------
// Access and permission model (§4.2).
// ---------------------------------------------------------------------------

enum class AccessType : uint8_t {
  kRead = 0,
  kWrite = 1,
};

[[nodiscard]] constexpr const char* ToString(AccessType t) {
  return t == AccessType::kRead ? "read" : "write";
}

// Permission classes. MIND maps Linux permissions onto these for unmodified applications,
// but richer classes can be defined per protection domain.
enum class PermClass : uint8_t {
  kNone = 0,
  kReadOnly = 1,
  kReadWrite = 2,
};

[[nodiscard]] constexpr bool Permits(PermClass pc, AccessType t) {
  switch (pc) {
    case PermClass::kNone:
      return false;
    case PermClass::kReadOnly:
      return t == AccessType::kRead;
    case PermClass::kReadWrite:
      return true;
  }
  return false;
}

[[nodiscard]] constexpr const char* ToString(PermClass pc) {
  switch (pc) {
    case PermClass::kNone:
      return "none";
    case PermClass::kReadOnly:
      return "read-only";
    case PermClass::kReadWrite:
      return "read-write";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MSI coherence states (§4.3).
// ---------------------------------------------------------------------------

enum class MsiState : uint8_t {
  kInvalid = 0,    // I: no compute-blade cache holds any page of the region.
  kShared = 1,     // S: one or more blades hold read-only copies.
  kModified = 2,   // M: exactly one blade owns the region read-write.
  // E exists only under the MESI extension (§8 "Other coherence protocols"): a single blade
  // holds the region with silent-upgrade privilege (pages installed writable), so its first
  // write needs no coherence transaction. The directory treats E as possibly dirty.
  kExclusive = 3,
};

[[nodiscard]] constexpr const char* ToString(MsiState s) {
  switch (s) {
    case MsiState::kInvalid:
      return "I";
    case MsiState::kShared:
      return "S";
    case MsiState::kModified:
      return "M";
    case MsiState::kExclusive:
      return "E";
  }
  return "?";
}

// Coherence protocol selection: the paper's MSI, or the MESI extension it sketches in §8.
enum class CoherenceProtocol : uint8_t {
  kMsi = 0,
  kMesi = 1,
};

[[nodiscard]] constexpr const char* ToString(CoherenceProtocol p) {
  return p == CoherenceProtocol::kMsi ? "MSI" : "MESI";
}

// Sharer lists are bitmasks over compute blades; the rack is capped at 64 compute blades,
// far beyond the 8-blade rack evaluated in the paper.
using SharerMask = uint64_t;
inline constexpr int kMaxComputeBlades = 64;

[[nodiscard]] constexpr SharerMask BladeBit(ComputeBladeId b) { return SharerMask{1} << b; }

// ---------------------------------------------------------------------------
// Memory consistency models (§6.1, §7.1).
// ---------------------------------------------------------------------------

enum class ConsistencyModel : uint8_t {
  // Total Store Order: the page-fault-driven implementation on x86; writes that trigger
  // coherence transitions block the issuing thread until the transition completes.
  kTso = 0,
  // Processor Store Order (simulated, as MIND-PSO in §7.1): writes propagate asynchronously;
  // a subsequent read to the same region blocks until the pending write completes.
  kPso = 1,
};

[[nodiscard]] constexpr const char* ToString(ConsistencyModel m) {
  return m == ConsistencyModel::kTso ? "TSO" : "PSO";
}

}  // namespace mind

#endif  // MIND_SRC_COMMON_TYPES_H_
