// Chunked object arena with a free list: stable pointers, index-addressed, no per-object
// allocation on the hot path.
//
// The flat data-plane structures (CacheDirectory, DramCache) keep their records in one of
// these and index them by 32-bit slot from a FlatMap64: chunks never move once allocated,
// so record pointers stay valid across insert/remove/rehash, while the free list recycles
// slots in LIFO order. Slots are default-constructed once per chunk and *reused as-is* —
// callers reset whatever fields matter when they claim a slot.
#ifndef MIND_SRC_COMMON_CHUNKED_ARENA_H_
#define MIND_SRC_COMMON_CHUNKED_ARENA_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace mind {

template <typename T, uint32_t kChunkShift>
class ChunkedArena {
 public:
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;

  // Claims a slot (recycling a freed one when available) and returns its index.
  uint32_t Alloc() {
    if (!free_.empty()) {
      const uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    if ((size_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    return size_++;
  }

  void Free(uint32_t idx) { free_.push_back(idx); }

  [[nodiscard]] T& At(uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }
  [[nodiscard]] const T& At(uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  // Total slots ever claimed (the high-water index bound); freed slots stay counted until
  // reused. Callers sweeping the arena must skip slots they know to be free.
  [[nodiscard]] uint32_t size() const { return size_; }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<uint32_t> free_;
  uint32_t size_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_COMMON_CHUNKED_ARENA_H_
