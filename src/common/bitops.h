// Power-of-two and bit-manipulation helpers.
//
// The protection table decomposes arbitrary vma ranges into power-of-two TCAM entries (§4.2)
// and the directory halves regions down to 4 KB (§5); both lean on these helpers.
#ifndef MIND_SRC_COMMON_BITOPS_H_
#define MIND_SRC_COMMON_BITOPS_H_

#include <bit>
#include <cstdint>

namespace mind {

[[nodiscard]] constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// floor(log2(x)); x must be non-zero.
[[nodiscard]] constexpr uint32_t Log2Floor(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x));
}

// ceil(log2(x)); x must be non-zero.
[[nodiscard]] constexpr uint32_t Log2Ceil(uint64_t x) {
  return x <= 1 ? 0 : Log2Floor(x - 1) + 1;
}

// Smallest power of two >= x (x must be non-zero and representable).
[[nodiscard]] constexpr uint64_t RoundUpPowerOfTwo(uint64_t x) {
  return uint64_t{1} << Log2Ceil(x);
}

// Largest power of two <= x (x must be non-zero).
[[nodiscard]] constexpr uint64_t RoundDownPowerOfTwo(uint64_t x) {
  return uint64_t{1} << Log2Floor(x);
}

[[nodiscard]] constexpr uint64_t AlignUp(uint64_t x, uint64_t alignment) {
  return (x + alignment - 1) & ~(alignment - 1);
}

[[nodiscard]] constexpr uint64_t AlignDown(uint64_t x, uint64_t alignment) {
  return x & ~(alignment - 1);
}

[[nodiscard]] constexpr bool IsAligned(uint64_t x, uint64_t alignment) {
  return (x & (alignment - 1)) == 0;
}

[[nodiscard]] constexpr int PopCount(uint64_t x) { return std::popcount(x); }

// Index of the lowest set bit; x must be non-zero.
[[nodiscard]] constexpr uint32_t LowestSetBit(uint64_t x) {
  return static_cast<uint32_t>(std::countr_zero(x));
}

}  // namespace mind

#endif  // MIND_SRC_COMMON_BITOPS_H_
