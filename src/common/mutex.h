// Annotated mutex / condition-variable wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so state guarded by a raw
// std::mutex is invisible to -Wthread-safety. These wrappers are zero-cost shims over the
// std primitives that add the capability vocabulary: declare shared state
// `MIND_GUARDED_BY(mu)`, take scopes with MutexLock, and the CI static-analysis job
// proves every access happens under the lock.
//
// CondVar::Wait deliberately takes the Mutex (not a unique_lock): TSA analyzes lambda
// bodies as separate functions that do not hold the caller's capabilities, so
// predicate-lambda waits produce false positives. Write waits as manual loops instead:
//
//   MutexLock lk(mu);
//   while (!ready) cv.Wait(mu);
#ifndef MIND_SRC_COMMON_MUTEX_H_
#define MIND_SRC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace mind {

class MIND_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MIND_ACQUIRE() { mu_.lock(); }
  void Unlock() MIND_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scope; the canonical way to hold a Mutex.
class MIND_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MIND_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MIND_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and reacquires before returning. Caller must hold
  // `mu` and must re-check its predicate in a loop (spurious wakeups).
  void Wait(Mutex& mu) MIND_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // Ownership stays with the caller's scope.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mind

#endif  // MIND_SRC_COMMON_MUTEX_H_
