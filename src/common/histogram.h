// Log-bucketed latency histogram with percentile queries.
//
// Used by the replay engine and the benches to report access-latency distributions without
// storing every sample. Buckets are (value-range/64)-granular within each power-of-two decade,
// giving <1.6% relative error on percentile queries — ample for reproducing figure shapes.
#ifndef MIND_SRC_COMMON_HISTOGRAM_H_
#define MIND_SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "src/common/bitops.h"

namespace mind {

// One-shot distribution summary (Histogram::Summary): the fields every report
// and the metrics-registry exporter print, computed once instead of four
// separate Percentile walks at each call site.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;

  friend bool operator==(const HistogramSummary&, const HistogramSummary&) = default;
};

class Histogram {
 public:
  static constexpr int kSubBuckets = 64;
  static constexpr int kDecades = 40;  // Covers values up to 2^40 ns ~ 18 minutes.

  void Record(uint64_t value) {
    ++count_;
    sum_ += value;
    max_ = std::max(max_, value);
    min_ = count_ == 1 ? value : std::min(min_, value);
    buckets_[BucketIndex(value)]++;
  }

  // Records `n` samples of the same value in O(1) — state is bit-identical to n Record
  // calls. The sharded replay engine uses this for uniform-latency hit runs.
  void RecordN(uint64_t value, uint64_t n) {
    if (n == 0) {
      return;
    }
    min_ = count_ == 0 ? value : std::min(min_, value);
    count_ += n;
    sum_ += value * n;
    max_ = std::max(max_, value);
    buckets_[BucketIndex(value)] += n;
  }

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t sum() const { return sum_; }
  [[nodiscard]] uint64_t max() const { return max_; }
  [[nodiscard]] uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Returns the approximate value at quantile q in [0, 1].
  [[nodiscard]] uint64_t Percentile(double q) const {
    if (count_ == 0) {
      return 0;
    }
    const auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        return BucketUpperBound(i);
      }
    }
    return max_;
  }

  // The standard report summary, one pass per percentile over the buckets.
  [[nodiscard]] HistogramSummary Summary() const {
    HistogramSummary s;
    s.count = count_;
    s.min = min();
    s.max = max_;
    s.mean = Mean();
    s.p50 = Percentile(0.50);
    s.p90 = Percentile(0.90);
    s.p99 = Percentile(0.99);
    s.p999 = Percentile(0.999);
    return s;
  }

  void Merge(const Histogram& other) {
    if (other.count_ == 0) {
      return;
    }
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  void Reset() {
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = 0;
    buckets_.fill(0);
  }

  // Exact state equality (every bucket), used by the sharded-replay determinism tests.
  friend bool operator==(const Histogram& a, const Histogram& b) = default;

 private:
  static constexpr size_t kBucketCount = static_cast<size_t>(kDecades) * kSubBuckets;

  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) {
      return static_cast<size_t>(value);
    }
    const uint32_t decade = Log2Floor(value) - 5;  // log2(kSubBuckets) - 1 == 5.
    const uint64_t sub = value >> (decade - 1);    // In [kSubBuckets, 2 * kSubBuckets).
    const size_t idx = static_cast<size_t>(decade) * kSubBuckets +
                       static_cast<size_t>(sub - kSubBuckets);
    return std::min(idx, kBucketCount - 1);
  }

  static uint64_t BucketUpperBound(size_t index) {
    if (index < kSubBuckets) {
      return index;
    }
    const uint64_t decade = index / kSubBuckets;
    const uint64_t sub = index % kSubBuckets;
    return (kSubBuckets + sub + 1) << (decade - 1);
  }

  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = 0;
  std::array<uint64_t, kBucketCount> buckets_{};
};

}  // namespace mind

#endif  // MIND_SRC_COMMON_HISTOGRAM_H_
