// Static concurrency/determinism annotations — the vocabulary of the contract that
// docs/determinism.md states in prose and tools/detlint.py + Clang's Thread Safety
// Analysis enforce mechanically.
//
// Two independent annotation families live here:
//
//  1. Clang Thread Safety Analysis (TSA) macros (MIND_CAPABILITY, MIND_GUARDED_BY,
//     MIND_REQUIRES, ...). These expand to the `thread_safety` attributes under Clang and
//     to nothing elsewhere, so the GCC tier-1 build is unaffected while the CI
//     static-analysis job compiles with `-Wthread-safety -Werror=thread-safety`. Use them
//     on real mutex-protected state (see src/common/mutex.h for the annotated wrappers —
//     libstdc++'s std::mutex carries no capability attributes, so raw std::mutex members
//     are invisible to the analysis).
//
//  2. Phase tags (MIND_SERIALIZED_PATH / MIND_PARALLEL_PHASE). These mark which side of
//     the replay engine's determinism contract a function executes on:
//
//       MIND_SERIALIZED_PATH  — runs only on the global (clock, thread)-ordered merge
//                               step or in single-owner setup/teardown. May draw from
//                               seeded Rng streams and mutate global SystemCounters /
//                               histograms directly.
//       MIND_PARALLEL_PHASE   — runs concurrently across shard workers inside a phase
//                               (channel scan/commit, owner-parallel drain sub-rounds).
//                               Must not draw RNG, must not touch global counters except
//                               through per-shard scratch mailboxes folded at the phase
//                               barrier (the OwnerDrainOps::Fold protocol).
//
//     Under Clang they expand to [[clang::annotate]] so libclang-based tooling sees them
//     in the AST; under any compiler the macro token itself is what tools/detlint.py's
//     regex frontend keys on. Lambdas cannot take attributes portably — tag them with a
//     trailing comment on the definition line instead: `auto f = [&] { ... };  // MIND_PARALLEL_PHASE`.
#ifndef MIND_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define MIND_SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define MIND_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define MIND_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside Clang
#endif

// ---- Clang Thread Safety Analysis -------------------------------------------------

#define MIND_CAPABILITY(x) MIND_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define MIND_SCOPED_CAPABILITY MIND_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define MIND_GUARDED_BY(x) MIND_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define MIND_PT_GUARDED_BY(x) MIND_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define MIND_REQUIRES(...) \
  MIND_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define MIND_REQUIRES_SHARED(...) \
  MIND_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define MIND_ACQUIRE(...) \
  MIND_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define MIND_ACQUIRE_SHARED(...) \
  MIND_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define MIND_RELEASE(...) \
  MIND_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define MIND_TRY_ACQUIRE(...) \
  MIND_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define MIND_EXCLUDES(...) MIND_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define MIND_RETURN_CAPABILITY(x) MIND_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define MIND_NO_THREAD_SAFETY_ANALYSIS \
  MIND_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

// ---- Determinism phase tags (consumed by tools/detlint.py) ------------------------

#if defined(__clang__) && !defined(SWIG)
#define MIND_SERIALIZED_PATH [[clang::annotate("mind::serialized_path")]]
#define MIND_PARALLEL_PHASE [[clang::annotate("mind::parallel_phase")]]
#else
#define MIND_SERIALIZED_PATH
#define MIND_PARALLEL_PHASE
#endif

#endif  // MIND_SRC_COMMON_THREAD_ANNOTATIONS_H_
