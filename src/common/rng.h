// Deterministic, seedable random number generation for workload synthesis.
//
// Every stochastic choice in the repository flows through Rng so that traces, benches and
// property tests are reproducible run-to-run. ZipfianGenerator implements the YCSB-style
// zipfian distribution used for the Memcached and KVS workloads (§7).
#ifndef MIND_SRC_COMMON_RNG_H_
#define MIND_SRC_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>

#include "src/common/phase_guard.h"
#include "src/common/thread_annotations.h"

namespace mind {

// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ull;
      w = (w ^ (w >> 27)) * 0x94d049bb133111ebull;
      s = w ^ (w >> 31);
    }
  }

  // Draws are legal only on serialized (clock, thread)-ordered paths — never inside a
  // parallel phase (docs/determinism.md). The static side is tools/detlint.py; the
  // dynamic side is the debug assertion below, so the two checks agree on where draws
  // are allowed.
  MIND_SERIALIZED_PATH uint64_t Next() {
    MIND_ASSERT_SERIALIZED_CONTEXT();
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  MIND_SERIALIZED_PATH uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  // Uniform double in [0, 1).
  MIND_SERIALIZED_PATH double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli draw.
  MIND_SERIALIZED_PATH bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Zipfian-distributed integers in [0, n) with skew theta (YCSB uses theta = 0.99).
// Implementation follows Gray et al., "Quickly Generating Billion-Record Synthetic
// Databases" — the same derivation YCSB's ZipfianGenerator uses.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99) : n_(n), theta_(theta) {
    assert(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2_ / zetan_);
  }

  MIND_SERIALIZED_PATH uint64_t Next(Rng& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const auto v = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  [[nodiscard]] uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace mind

#endif  // MIND_SRC_COMMON_RNG_H_
