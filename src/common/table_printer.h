// Fixed-width table printing for the benchmark harnesses.
//
// Every bench binary regenerates one paper figure/table as aligned text rows (the paper's
// "same rows/series" requirement); this helper keeps the formatting uniform across benches.
#ifndef MIND_SRC_COMMON_TABLE_PRINTER_H_
#define MIND_SRC_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace mind {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int column_width = 14)
      : headers_(std::move(headers)), width_(column_width) {}

  void PrintHeader(std::ostream& os = std::cout) const {
    for (const auto& h : headers_) {
      os << std::left << std::setw(width_) << h;
    }
    os << "\n";
    os << std::string(headers_.size() * static_cast<size_t>(width_), '-') << "\n";
  }

  template <typename... Cells>
  void PrintRow(Cells&&... cells) const {
    std::ostream& os = std::cout;
    (PrintCell(os, std::forward<Cells>(cells)), ...);
    os << "\n";
  }

  static std::string Fmt(double v, int precision = 3) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
  }

 private:
  template <typename T>
  void PrintCell(std::ostream& os, T&& cell) const {
    os << std::left << std::setw(width_) << cell;
  }

  std::vector<std::string> headers_;
  int width_;
};

inline void PrintSectionHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace mind

#endif  // MIND_SRC_COMMON_TABLE_PRINTER_H_
