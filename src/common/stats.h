// Metric primitives: counters, gauges with time series, and Jain's fairness index.
//
// Figure 6 reports invalidations / flushed pages / remote accesses *per memory access*;
// Figure 8 (left) tracks directory-entry usage over normalized runtime; Figure 8 (right)
// scores allocator balance with Jain's fairness index. These helpers back all three.
#ifndef MIND_SRC_COMMON_STATS_H_
#define MIND_SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mind {

// Jain's fairness index over per-entity loads: (sum x)^2 / (n * sum x^2). 1.0 means perfectly
// balanced; 1/n means all load on one entity. (Jain, Chiu & Hawe, DEC-TR-301, 1984.)
[[nodiscard]] inline double JainFairnessIndex(const std::vector<uint64_t>& loads) {
  if (loads.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (uint64_t x : loads) {
    const auto v = static_cast<double>(x);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) {
    return 1.0;  // No load anywhere is trivially fair.
  }
  return (sum * sum) / (static_cast<double>(loads.size()) * sum_sq);
}

// A named monotonic counter.
struct Counter {
  uint64_t value = 0;
  void Add(uint64_t delta = 1) { value += delta; }
  void Reset() { value = 0; }
};

// Periodic samples of a gauge (e.g. #used directory entries) against a monotonically
// increasing x (e.g. simulated time), for time-series figures.
class GaugeSeries {
 public:
  void Sample(uint64_t x, uint64_t value) { samples_.push_back({x, value}); }

  struct Point {
    uint64_t x;
    uint64_t value;
  };

  [[nodiscard]] const std::vector<Point>& samples() const { return samples_; }
  [[nodiscard]] uint64_t MaxValue() const {
    uint64_t m = 0;
    for (const auto& p : samples_) {
      m = std::max(m, p.value);
    }
    return m;
  }
  void Reset() { samples_.clear(); }

 private:
  std::vector<Point> samples_;
};

}  // namespace mind

#endif  // MIND_SRC_COMMON_STATS_H_
