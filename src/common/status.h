// Lightweight status / result types used across MIND modules.
//
// The control plane returns Linux-compatible error codes to compute blades (§6.1); ErrorCode
// mirrors the subset of errno values MIND emits, plus internal conditions (switch resource
// exhaustion) that the control plane maps to ENOMEM before replying to a blade.
#ifndef MIND_SRC_COMMON_STATUS_H_
#define MIND_SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace mind {

enum class ErrorCode : int {
  kOk = 0,
  kNoMemory,          // ENOMEM: no virtual or physical space left.
  kInvalidArgument,   // EINVAL: malformed request (unaligned, zero-length, ...).
  kPermissionDenied,  // EACCES: protection table rejected the access (§4.2).
  kFault,             // EFAULT: address not covered by any vma.
  kExists,            // EEXIST: overlapping allocation.
  kNotFound,          // ESRCH / ENOENT: unknown process, vma or directory entry.
  kResourceExhausted, // Switch ASIC resource limit hit (TCAM rules or SRAM slots).
  kTimedOut,          // Communication failure after retransmission limit (§4.4).
  kUnavailable,       // Component offline (failure injection).
};

[[nodiscard]] constexpr const char* ToString(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kNoMemory:
      return "no-memory";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kPermissionDenied:
      return "permission-denied";
    case ErrorCode::kFault:
      return "fault";
    case ErrorCode::kExists:
      return "exists";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kResourceExhausted:
      return "resource-exhausted";
    case ErrorCode::kTimedOut:
      return "timed-out";
    case ErrorCode::kUnavailable:
      return "unavailable";
  }
  return "?";
}

class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const {
    std::string s = mind::ToString(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Minimal expected-like result wrapper. Holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result error must carry a non-ok status");
  }
  Result(ErrorCode code) : data_(Status(code)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() {
    assert(ok());
    return std::get<T>(data_);
  }

  [[nodiscard]] Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace mind

#endif  // MIND_SRC_COMMON_STATUS_H_
