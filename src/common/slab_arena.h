// Slab arena for fixed-size payload objects (page payloads, message bodies).
//
// `store_data` replay used to allocate every 4 KB `PageData` with a fresh heap allocation
// on each page fault and free it on eviction/invalidation — at millions of faults the
// allocator becomes the bottleneck (ROADMAP: "NUMA-aware arena for page payloads"). A
// SlabArena instead carves objects out of large slabs and recycles freed objects through
// an intrusive free list: steady-state faults are a pointer pop, and the arena never
// returns memory to the OS while alive, so replay throughput stops depending on malloc.
//
// NUMA: slabs are allocated lazily, on the thread that takes the miss. Under Linux's
// default first-touch policy a per-blade arena whose blade is driven by a NUMA-pinned
// replay shard therefore lands on that shard's node without any explicit binding; callers
// that want placement up front can `ReserveSlabs` from the owning thread.
//
// Thread safety: none. Arenas are per-owner (one per compute blade's DramCache); the
// sharded replay engine only allocates/frees payloads in its serialized coherence phase,
// matching the MemorySystem sharded-access contract.
#ifndef MIND_SRC_COMMON_SLAB_ARENA_H_
#define MIND_SRC_COMMON_SLAB_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace mind {

template <typename T, size_t kObjectsPerSlab = 64>
class SlabArena {
  // Freed objects are reused as free-list nodes, so their bytes must be dead on Free.
  static_assert(std::is_trivially_destructible_v<T>,
                "SlabArena recycles object storage; T must be trivially destructible");
  static_assert(sizeof(T) >= sizeof(void*), "objects must be able to hold a free-list link");
  // Objects double as free-list nodes in place: slabs are pointer-aligned (see
  // SlabStorage) and the stride must preserve that alignment for every slot.
  static_assert(sizeof(T) % alignof(void*) == 0,
                "object stride must keep embedded free-list links pointer-aligned");

 public:
  SlabArena() = default;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  // Returns an uninitialized object (recycled storage keeps its stale bytes; callers that
  // need zeroed pages must clear it, exactly as they would after malloc).
  T* Alloc() {
    ++allocs_;
    if (free_head_ != nullptr) {
      ++recycled_;
      FreeNode* node = free_head_;
      free_head_ = node->next;
      --free_count_;
      return std::launder(reinterpret_cast<T*>(node));
    }
    if (bump_remaining_ == 0) {
      AddSlab();
    }
    T* obj = std::launder(reinterpret_cast<T*>(bump_));
    bump_ += sizeof(T);
    --bump_remaining_;
    return obj;
  }

  void Free(T* obj) {
    auto* node = reinterpret_cast<FreeNode*>(obj);
    node->next = free_head_;
    free_head_ = node;
    ++free_count_;
    ++frees_;
  }

  // unique_ptr flavor: evicted payloads travel to the write-back path as owning pointers
  // and recycle themselves into the arena when dropped. A default-constructed deleter
  // (null arena) falls back to `delete` so detached pointers stay safe.
  struct Deleter {
    SlabArena* arena = nullptr;
    void operator()(T* obj) const {
      if (arena != nullptr) {
        arena->Free(obj);
      } else {
        delete obj;
      }
    }
  };
  using Ptr = std::unique_ptr<T, Deleter>;

  [[nodiscard]] Ptr AllocPtr() { return Ptr(Alloc(), Deleter{this}); }

  // Pre-faults `n` slabs from the calling thread (NUMA first-touch placement).
  void ReserveSlabs(size_t n) {
    const size_t want = slabs_.size() + n;
    // Growing the free list is the only way to bank capacity without disturbing the bump
    // cursor: carve each reserved slab straight into free nodes.
    while (slabs_.size() < want) {
      AddSlab();
      while (bump_remaining_ > 0) {
        T* obj = std::launder(reinterpret_cast<T*>(bump_));
        bump_ += sizeof(T);
        --bump_remaining_;
        Free(obj);
        --frees_;  // Reservation is not a caller-visible free.
      }
    }
  }

  [[nodiscard]] size_t slab_count() const { return slabs_.size(); }
  [[nodiscard]] uint64_t allocs() const { return allocs_; }
  [[nodiscard]] uint64_t frees() const { return frees_; }
  [[nodiscard]] uint64_t recycled() const { return recycled_; }
  [[nodiscard]] uint64_t live() const { return allocs_ - frees_; }
  [[nodiscard]] uint64_t free_count() const { return free_count_; }
  [[nodiscard]] size_t bytes_reserved() const {
    return slabs_.size() * kObjectsPerSlab * sizeof(T);
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  void AddSlab() {
    slabs_.push_back(std::make_unique<SlabStorage>());
    bump_ = slabs_.back()->bytes;
    bump_remaining_ = kObjectsPerSlab;
  }

  struct SlabStorage {
    // Aligned for both T and the free-list links embedded in freed slots.
    alignas(alignof(T) > alignof(void*) ? alignof(T)
                                        : alignof(void*)) std::byte
        bytes[kObjectsPerSlab * sizeof(T)];
  };

  std::vector<std::unique_ptr<SlabStorage>> slabs_;
  std::byte* bump_ = nullptr;
  size_t bump_remaining_ = 0;
  FreeNode* free_head_ = nullptr;
  uint64_t free_count_ = 0;
  uint64_t allocs_ = 0;
  uint64_t frees_ = 0;
  uint64_t recycled_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_COMMON_SLAB_ARENA_H_
