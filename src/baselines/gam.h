// GAM-like software DSM baseline, adapted to the disaggregated setting (§7, "Compared
// systems").
//
// GAM [Cai et al., VLDB'18] is a software distributed shared memory with a *compute-blade-
// homed* cache directory and PSO consistency. Its defining performance behaviours in the
// paper's comparison are:
//   1. Every access — even a local cache hit — pays user-level library overhead (permission
//      check + lock acquisition), ~10x MIND's MMU-backed local hit. The per-blade lock
//      serializes, which is what bends GAM's intra-blade scaling past ~4 threads (Fig. 5 left).
//   2. Misses traverse a *home node* (another compute blade) whose software handler runs on
//      a CPU, then the data is fetched from the owner/memory — sequential remote hops.
//   3. PSO lets writes propagate asynchronously, and page-granularity directory entries in
//      blade DRAM mean no capacity pressure and no false invalidations — which is why GAM
//      overtakes MIND-TSO under heavy read-write sharing (Fig. 5 center, M_A/M_C).
#ifndef MIND_SRC_BASELINES_GAM_H_
#define MIND_SRC_BASELINES_GAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baselines/memory_system.h"
#include "src/blade/dram_cache.h"
#include "src/common/types.h"
#include "src/fault/fault_plane.h"
#include "src/net/fabric.h"
#include "src/prefetch/prefetch.h"
#include "src/sim/latency_model.h"
#include "src/sim/resource.h"

namespace mind {

struct GamConfig {
  int num_compute_blades = 8;
  int num_memory_blades = 8;
  uint64_t compute_cache_bytes = 512ull * 1024 * 1024;
  uint64_t home_chunk_pages = 512;  // 2 MB home-partition granularity.
  LatencyModel latency;
  // Fabric queueing discipline (src/net/queue_model.h); default kFifo = historical timing.
  FabricConfig fabric;
  SimTime lock_service = 150;       // Serialized slice of the per-access library work.
  // Software prefetching in the user-level library: predictions issue behind the blade's
  // FIFO library lock (speculation pays the same serialized entry every access does) and
  // register as sharers at the home directory. Default off (src/prefetch/prefetch.h).
  PrefetchConfig prefetch;
  // §4.4-style fault injection on the home-node request path (loss model only; stall
  // windows and scheduled drains are MIND control-plane machinery). An exhausted retry
  // budget triggers GAM's reset analog: the home drops the page's directory entry and
  // every cached copy is flushed.
  FaultPlaneConfig fault;
};

class GamSystem final : public MemorySystem {
 public:
  explicit GamSystem(GamConfig config);

  [[nodiscard]] std::string name() const override { return "GAM"; }
  [[nodiscard]] int num_compute_blades() const override { return config_.num_compute_blades; }

  Result<VirtAddr> Alloc(uint64_t size) override;
  Result<ThreadId> RegisterThread(ComputeBladeId blade) override;
  MIND_SERIALIZED_PATH AccessResult Access(ThreadId tid, ComputeBladeId blade, VirtAddr va,
                                           AccessType type,
                      SimTime now) override;
  [[nodiscard]] SystemCounters counters() const override { return counters_; }

  // Batched channel contract: a GAM cache hit touches only the blade's own cache, its
  // per-blade library lock and the thread's PSO pending-store list, so it classifies onto
  // the concurrent fast path. Hit latency includes the lock's FIFO queueing delay, which
  // other threads of the same blade move as their ops commit — so runs are latency_final
  // (exact at Submit) only on single-thread blades; under intra-blade contention the
  // channel reports submit-time lower bounds and finalizes each latency at Commit, exactly
  // as the serial library would have served the interleaved lock queue (see
  // src/core/access_channel.h).
  std::unique_ptr<AccessChannel> OpenChannel(ThreadId tid, ComputeBladeId blade) override;

  // Per-blade channel group: the group replays the blade's FIFO library-lock queue over
  // the *merged* (clock, thread) stream of its members in one pass, so every grouped op's
  // latency is exact at group-commit time — the interleaving the per-thread Submit could
  // not know (and had to finalize op by op through Commit) is fully determined inside the
  // batch — and the blade's lock advances once per batch with identical aggregate stats.
  std::unique_ptr<ChannelGroup> OpenChannelGroup(ComputeBladeId blade) override;

  // Ownership-aware drain contract (OwnerDrainOps, memory_system.h): eligible ops are
  // blade-confined library hits — the blade's own cache + FIFO lock plus the thread's PSO
  // pending-store list, which the read barrier prunes in place without ever erasing the
  // map entry (and hits never record pending stores) — so owner-parallel execution for
  // different blades is race-free. Every eligible op pays at least the serialized lock
  // slice plus the local library work.
  std::unique_ptr<OwnerDrainOps> OpenOwnerDrain(int num_shards) override;

  bool SetPrefetchPolicy(PrefetchPolicy policy) override {
    config_.prefetch.policy = policy;
    return true;
  }
  PrefetchStats prefetch_stats() override;

  [[nodiscard]] FaultCounters fault_counters() const override {
    return fault_plane_.counters();
  }

  // Interface blocks plus the fabric's counters and per-port occupancy gauges.
  void CollectMetrics(MetricsRegistry* reg, const std::string& prefix) override {
    MemorySystem::CollectMetrics(reg, prefix);
    fabric_.CollectMetrics(reg, prefix + "/fabric");
  }

  // Drains pending prefetch installs and re-armed windows for every blade (the re-arm gap
  // fix; see MemorySystem::AdvanceTo). Called once after the final op in every replay
  // mode, so it is mode-invariant.
  MIND_SERIALIZED_PATH void AdvanceTo(SimTime now) override;

  // Semantic-event tracing (src/obs/): every GAM emission site is on the
  // serialized Access path; a null sink costs one pointer compare per miss.
  bool SetTraceSink(TraceSink* sink) override {
    trace_ = sink;
    fault_plane_.SetTraceSink(sink);
    return true;
  }

 private:
  class Channel;
  class Group;
  class OwnerDrain;
  // Page-granularity directory entry, held in the home blade's DRAM (unbounded).
  struct DirEntry {
    MsiState state = MsiState::kInvalid;
    ComputeBladeId owner = kInvalidComputeBlade;
    SharerMask sharers = 0;
    SimTime busy_until = 0;
  };

  struct BladeState {
    std::unique_ptr<DramCache> cache;
    FifoResource lock;     // User-level library lock (every access).
    FifoResource handler;  // Home-node request handler (software, one CPU path).
    std::unordered_map<uint64_t, DirEntry> directory;  // Pages homed at this blade.
    BladePrefetchState prefetch;  // In-flight/unused prefetch tables for this blade.
  };

  [[nodiscard]] ComputeBladeId HomeOf(uint64_t page) const {
    return static_cast<ComputeBladeId>((page / config_.home_chunk_pages) %
                                       static_cast<uint64_t>(config_.num_compute_blades));
  }
  [[nodiscard]] MemoryBladeId BackingBlade(uint64_t page) const {
    return static_cast<MemoryBladeId>((page / config_.home_chunk_pages) %
                                      static_cast<uint64_t>(config_.num_memory_blades));
  }
  // The single LatencyModel instance lives in the fabric; this is the constant view.
  [[nodiscard]] const LatencyModel& lat() const { return fabric_.latency(); }

  // One control hop between two compute blades, through the switch (plain forwarding).
  SimTime BladeToBlade(ComputeBladeId from, ComputeBladeId to, MessageKind kind, SimTime t);
  // Page fetch from the backing memory blade to `to`.
  SimTime FetchFromMemory(uint64_t page, ComputeBladeId to, SimTime t);
  // Page flush from `from` to the backing memory blade.
  SimTime FlushToMemory(uint64_t page, ComputeBladeId from, SimTime t);

  // PSO pending-store bookkeeping (same semantics as Rack's).
  struct PendingWrite {
    uint64_t page = 0;
    SimTime completion = 0;
  };
  SimTime PsoReadBarrier(ThreadId tid, uint64_t page, SimTime now);
  // Read-only flavor for channel Submit: same barrier value, no pruning (pruning only
  // drops entries whose completion can never raise a later barrier, so it is invisible).
  [[nodiscard]] SimTime PsoPeekBarrier(ThreadId tid, uint64_t page, SimTime now) const;

  // The user-level library entry every access pays (GAM has no MMU help): PSO read
  // barrier, per-blade FIFO lock, then the local library work. Returns when the library
  // hands control back for a hit (or proceeds to the directory for a miss). Shared by the
  // serial Access path and channel Commit so their timing can never diverge.
  SimTime EnterLibrary(ThreadId tid, ComputeBladeId blade, uint64_t page, AccessType type,
                       SimTime now);

  // GAM's reset analog (§4.4 translated to a compute-blade-homed directory): drop the
  // page's directory entry at `home`, invalidate every blade's cached copy and flush the
  // dirty ones to the backing memory blade. Returns the last flush's landing time.
  SimTime ResetPage(uint64_t page, ComputeBladeId home, SimTime t);

  // --- Prefetch internals (all driven from the serialized Access path) ---
  PrefetchEngine& EnsurePrefetchEngine(ThreadId tid);
  void InstallReadyPrefetches(ComputeBladeId blade, SimTime now);
  void PrefetchAfterFault(ThreadId tid, ComputeBladeId blade, uint64_t page, SimTime done);
  // The issue half of PrefetchAfterFault, also driven by re-arm requests.
  void IssuePrefetches(PrefetchEngine& engine, ComputeBladeId blade, uint64_t page,
                       SimTime done);

  GamConfig config_;
  Fabric fabric_;
  FaultPlane fault_plane_;
  TraceSink* trace_ = nullptr;  // Serialized-path writes only, like counters_.
  std::vector<BladeState> blades_;
  std::vector<uint32_t> blade_thread_counts_;  // Registered threads per blade.
  std::unordered_map<ThreadId, std::vector<PendingWrite>> pending_writes_;
  SystemCounters counters_;
  VirtAddr next_va_ = 0x0000'7000'0000'0000ull;
  const VirtAddr first_va_ = next_va_;  // Prefetch candidates stay inside [first, next).
  ThreadId next_tid_ = 1;
  std::unordered_map<ThreadId, std::unique_ptr<PrefetchEngine>> prefetch_engines_;
  std::vector<uint64_t> prefetch_scratch_;
};

}  // namespace mind

#endif  // MIND_SRC_BASELINES_GAM_H_
