#include "src/baselines/gam.h"

#include <algorithm>

namespace mind {

GamSystem::GamSystem(GamConfig config)
    : config_(config),
      fabric_(config.num_compute_blades, config.num_memory_blades, config.latency) {
  blades_.resize(static_cast<size_t>(config_.num_compute_blades));
  blade_thread_counts_.resize(static_cast<size_t>(config_.num_compute_blades), 0);
  for (auto& b : blades_) {
    b.cache = std::make_unique<DramCache>(config_.compute_cache_bytes >> kPageShift,
                                          /*store_data=*/false);
  }
}

Result<VirtAddr> GamSystem::Alloc(uint64_t size) {
  const VirtAddr base = next_va_;
  next_va_ += AlignUp(size, kPageSize);
  return base;
}

Result<ThreadId> GamSystem::RegisterThread(ComputeBladeId blade) {
  if (blade >= config_.num_compute_blades) {
    return Status(ErrorCode::kInvalidArgument, "no such blade");
  }
  ++blade_thread_counts_[blade];  // Channels check this for submit-time latency finality.
  return next_tid_++;
}

SimTime GamSystem::BladeToBlade(ComputeBladeId from, ComputeBladeId to, MessageKind kind,
                                SimTime t) {
  auto up = fabric_.ToSwitch(Endpoint::Compute(from), kind, t);
  // Plain L2 forwarding through the switch: one pipeline pass, no recirculation.
  auto down = fabric_.FromSwitch(Endpoint::Compute(to), kind,
                                 up.arrival + config_.latency.switch_pipeline);
  return down.arrival;
}

SimTime GamSystem::FetchFromMemory(uint64_t page, ComputeBladeId to, SimTime t) {
  const MemoryBladeId m = BackingBlade(page);
  // Full path: requester NIC -> switch -> memory blade -> switch -> requester.
  auto issue = fabric_.ToSwitch(Endpoint::Compute(to), MessageKind::kRdmaReadRequest, t);
  auto req = fabric_.FromSwitch(Endpoint::Memory(m), MessageKind::kRdmaReadRequest,
                                issue.arrival + config_.latency.switch_pipeline);
  SimTime s = req.arrival + config_.latency.memory_blade_service;
  auto up = fabric_.ToSwitch(Endpoint::Memory(m), MessageKind::kRdmaReadResponse, s);
  auto down = fabric_.FromSwitch(Endpoint::Compute(to), MessageKind::kRdmaReadResponse,
                                 up.arrival + config_.latency.switch_pipeline);
  return down.arrival;
}

SimTime GamSystem::FlushToMemory(uint64_t page, ComputeBladeId from, SimTime t) {
  const MemoryBladeId m = BackingBlade(page);
  auto up = fabric_.ToSwitch(Endpoint::Compute(from), MessageKind::kRdmaWriteRequest, t);
  auto down = fabric_.FromSwitch(Endpoint::Memory(m), MessageKind::kRdmaWriteRequest,
                                 up.arrival + config_.latency.switch_pipeline);
  return down.arrival + config_.latency.memory_blade_service;
}

SimTime GamSystem::PsoReadBarrier(ThreadId tid, uint64_t page, SimTime now) {
  // Same value as the read-only peek — channel Submit's latency simulation depends on
  // that identity — plus the pruning side effect.
  const SimTime barrier = PsoPeekBarrier(tid, page, now);
  if (auto it = pending_writes_.find(tid); it != pending_writes_.end()) {
    // Prune in place but never erase the map entry: channel commits for different blades
    // run concurrently, and a structural map mutation here would race their lookups.
    // Each thread only ever mutates its own vector.
    std::erase_if(it->second,
                  [barrier](const PendingWrite& w) { return w.completion <= barrier; });
  }
  return barrier;
}

SimTime GamSystem::PsoPeekBarrier(ThreadId tid, uint64_t page, SimTime now) const {
  auto it = pending_writes_.find(tid);
  if (it == pending_writes_.end()) {
    return now;
  }
  SimTime barrier = now;
  for (const auto& w : it->second) {
    if (w.page == page) {
      barrier = std::max(barrier, w.completion);
    }
  }
  return barrier;
}

SimTime GamSystem::EnterLibrary(ThreadId tid, ComputeBladeId blade, uint64_t page,
                                AccessType type, SimTime now) {
  if (type == AccessType::kRead) {
    now = PsoReadBarrier(tid, page, now);
  }
  // Library fast path: permission check + lock on *every* access (GAM has no MMU help).
  const auto grant = blades_[blade].lock.Acquire(now, config_.lock_service);
  return grant.finish + config_.latency.gam_local_access;
}

AccessResult GamSystem::Access(ThreadId tid, ComputeBladeId blade, VirtAddr va,
                               AccessType type, SimTime now) {
  ++counters_.total_accesses;
  AccessResult res;
  const uint64_t page = PageNumber(va);
  BladeState& local = blades_[blade];

  const SimTime req_now = now;
  const SimTime lib_done = EnterLibrary(tid, blade, page, type, now);
  SimTime t = lib_done;

  DramCache::Frame* frame = local.cache->Lookup(page);
  const bool hit = frame != nullptr && (type == AccessType::kRead || frame->writable);
  if (hit) {
    ++counters_.local_hits;
    if (type == AccessType::kWrite) {
      frame->dirty = true;
    }
    res.local_hit = true;
    res.latency = t - req_now;  // Includes any PSO read-barrier stall.
    res.completion = t;
    res.breakdown.fault = t - req_now;
    return res;
  }

  // Miss: consult the home node's software directory.
  ++counters_.remote_accesses;
  const ComputeBladeId home = HomeOf(page);
  if (home != blade) {
    t = BladeToBlade(blade, home, MessageKind::kRdmaReadRequest, t);
  }
  BladeState& home_state = blades_[home];
  const auto handler_grant = home_state.handler.Acquire(t, config_.latency.gam_software_handler);
  t = handler_grant.finish;

  DirEntry& dir = home_state.directory[page];
  const bool conflicting =
      type == AccessType::kWrite || dir.state == MsiState::kModified;
  if (conflicting) {
    // Only conflicting transitions wait out an in-flight one; S->S reads proceed.
    t = std::max(t, dir.busy_until);
  }
  res.prev_state = dir.state;

  SimTime inv_done = t;
  // Downgrade/invalidate remote copies as MSI requires. GAM tracks pages exactly, so there
  // are never false invalidations; messages are sequential unicast (software sender).
  if (dir.state == MsiState::kModified && dir.owner != blade) {
    // Owner flushes the page, sequentially before the fetch.
    SimTime at_owner = BladeToBlade(home, dir.owner, MessageKind::kInvalidation, t);
    (void)blades_[dir.owner].cache->InvalidateRange(page, page + 1);
    at_owner += config_.latency.invalidation_handler_cpu + config_.latency.page_flush_cpu;
    const SimTime flushed = FlushToMemory(page, dir.owner, at_owner);
    ++counters_.invalidations;
    ++counters_.pages_flushed;
    inv_done = BladeToBlade(dir.owner, home, MessageKind::kInvalidationAck, at_owner);
    t = std::max(flushed, inv_done);
  } else if (type == AccessType::kWrite && dir.state == MsiState::kShared) {
    SharerMask others = dir.sharers & ~BladeBit(blade);
    SimTime send = t;
    while (others != 0) {
      const auto s = static_cast<ComputeBladeId>(LowestSetBit(others));
      others &= others - 1;
      const SimTime at_sharer = BladeToBlade(home, s, MessageKind::kInvalidation, send);
      send += config_.latency.rdma_message_overhead;  // Sequential software sends.
      (void)blades_[s].cache->InvalidateRange(page, page + 1);
      ++counters_.invalidations;
      const SimTime ack = BladeToBlade(s, home, MessageKind::kInvalidationAck,
                                       at_sharer + config_.latency.invalidation_handler_cpu);
      inv_done = std::max(inv_done, ack);
    }
    t = std::max(t, inv_done);
  }

  // Fetch the page from the backing memory blade to the requester.
  const bool need_data = frame == nullptr;
  SimTime data_at = t;
  if (need_data) {
    data_at = FetchFromMemory(page, blade, t);
  } else {
    data_at = BladeToBlade(home, blade, MessageKind::kRdmaWriteAck, t);
  }
  const SimTime done = std::max(data_at, inv_done) + config_.latency.gam_local_access;

  // Commit directory.
  if (type == AccessType::kWrite) {
    dir.state = MsiState::kModified;
    dir.owner = blade;
    dir.sharers = BladeBit(blade);
  } else {
    dir.state = MsiState::kShared;
    dir.sharers |= BladeBit(blade);
    dir.owner = kInvalidComputeBlade;
  }
  if (conflicting) {
    dir.busy_until = done;
  }
  res.next_state = dir.state;

  // Install locally; evict write-backs as needed.
  if (need_data) {
    auto evicted = local.cache->Insert(page, type == AccessType::kWrite, nullptr);
    if (evicted.has_value() && evicted->dirty) {
      (void)FlushToMemory(evicted->page, blade, done);
      ++counters_.pages_flushed;
    }
  } else if (type == AccessType::kWrite) {
    local.cache->MakeWritable(page);
  }
  if (type == AccessType::kWrite) {
    local.cache->MarkDirty(page);
  }

  res.completion = done;
  res.breakdown.fault = config_.latency.gam_local_access;
  res.breakdown.network =
      done - req_now > res.breakdown.fault ? done - req_now - res.breakdown.fault : 0;
  counters_.breakdown_sums += res.breakdown;

  // PSO: writes return to the thread as soon as the library hands off the request.
  if (type == AccessType::kWrite) {
    res.latency = lib_done - req_now;
    pending_writes_[tid].push_back(PendingWrite{page, done});
  } else {
    res.latency = done - req_now;
  }
  return res;
}

// ---------------------------------------------------------------------------
// AccessChannel over the GAM library hit path (see the contract notes in gam.h).
// ---------------------------------------------------------------------------

class GamSystem::Channel final : public AccessChannel {
 public:
  Channel(GamSystem* sys, ThreadId tid, ComputeBladeId blade)
      : sys_(sys), tid_(tid), blade_(blade) {}

  SubmitResult Submit(const LocalOp* ops, size_t n, SimTime clock, SimTime think,
                      Completion* completions) override {
    BladeState& blade = sys_->blades_[blade_];
    DramCache& cache = *blade.cache;
    const SimTime service = sys_->config_.lock_service;
    const SimTime local_work = sys_->config_.latency.gam_local_access;
    stamps_.Clear();
    think_ = think;
    // With one registered thread on the blade, nothing but this channel ever moves the
    // blade's library lock, so the simulated queue below is exact and latencies are final
    // at Submit. Under intra-blade contention the same simulation yields lower bounds
    // (the lock horizon only ever moves later), finalized per op at Commit.
    const bool sole_thread = sys_->blade_thread_counts_[blade_] == 1;
    SimTime busy = blade.lock.busy_until();
    bool uniform = true;
    SimTime first_latency = 0;
    SubmitResult out;
    out.latency_final = sole_thread;
    size_t i = 0;
    for (; i < n; ++i) {
      const uint64_t page = PageNumber(ops[i].va);
      DramCache::Frame* frame = cache.Find(page);
      if (frame == nullptr) {
        break;
      }
      const bool is_write = ops[i].type == AccessType::kWrite;
      if (is_write && !frame->writable) {
        break;
      }
      stamps_.Add(cache, DramCache::RegionOf(page));
      SimTime arrival = clock;
      if (!is_write) {
        arrival = sys_->PsoPeekBarrier(tid_, page, arrival);
      }
      const SimTime start = std::max(arrival, busy);
      busy = start + service;
      const SimTime latency = (busy + local_work) - clock;
      if (i == 0) {
        first_latency = latency;
      } else {
        uniform &= latency == first_latency;
      }
      completions[i].latency = latency;
      completions[i].token.bits =
          reinterpret_cast<uintptr_t>(frame) | static_cast<uintptr_t>(is_write);
      clock += latency + think;
    }
    out.accepted = i;
    out.end_clock = clock;
    out.uniform_latency =
        sole_thread && uniform && i > 0 && first_latency != 0 ? first_latency : 0;
    return out;
  }

  [[nodiscard]] bool RunValid() const override {
    return stamps_.Valid(*sys_->blades_[blade_].cache);
  }

  void Commit(Completion* completions, size_t n, SimTime clock) override {
    BladeState& blade = sys_->blades_[blade_];
    for (size_t i = 0; i < n; ++i) {
      const uint64_t tagged = completions[i].token.bits;
      auto* frame = reinterpret_cast<DramCache::Frame*>(tagged & ~uint64_t{1});
      const bool is_write = (tagged & 1) != 0;
      // Replays the serial hit path through the shared library-entry helper: real PSO
      // barrier (pruning), real FIFO lock acquisition, LRU touch, dirty bit.
      const SimTime lib_done = sys_->EnterLibrary(
          tid_, blade_, frame->page, is_write ? AccessType::kWrite : AccessType::kRead,
          clock);
      blade.cache->Touch(frame);
      if (is_write) {
        frame->dirty = true;
      }
      completions[i].latency = lib_done - clock;
      clock += completions[i].latency + think_;
    }
  }

 private:
  GamSystem* sys_;
  ThreadId tid_;
  ComputeBladeId blade_;
  SimTime think_ = 0;               // Recorded at Submit; Commit replays per-op clocks.
  DramCache::RegionStamps stamps_;  // Dependency footprint of the last submitted run.
};

std::unique_ptr<AccessChannel> GamSystem::OpenChannel(ThreadId tid, ComputeBladeId blade) {
  if (blade >= config_.num_compute_blades) {
    return nullptr;
  }
  return std::make_unique<Channel>(this, tid, blade);
}

}  // namespace mind
