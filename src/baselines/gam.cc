#include "src/baselines/gam.h"

#include <algorithm>

namespace mind {

GamSystem::GamSystem(GamConfig config)
    : config_(config),
      fabric_(config.num_compute_blades, config.num_memory_blades, config.latency) {
  blades_.resize(static_cast<size_t>(config_.num_compute_blades));
  for (auto& b : blades_) {
    b.cache = std::make_unique<DramCache>(config_.compute_cache_bytes >> kPageShift,
                                          /*store_data=*/false);
  }
}

Result<VirtAddr> GamSystem::Alloc(uint64_t size) {
  const VirtAddr base = next_va_;
  next_va_ += AlignUp(size, kPageSize);
  return base;
}

Result<ThreadId> GamSystem::RegisterThread(ComputeBladeId blade) {
  if (blade >= config_.num_compute_blades) {
    return Status(ErrorCode::kInvalidArgument, "no such blade");
  }
  return next_tid_++;
}

SimTime GamSystem::BladeToBlade(ComputeBladeId from, ComputeBladeId to, MessageKind kind,
                                SimTime t) {
  auto up = fabric_.ToSwitch(Endpoint::Compute(from), kind, t);
  // Plain L2 forwarding through the switch: one pipeline pass, no recirculation.
  auto down = fabric_.FromSwitch(Endpoint::Compute(to), kind,
                                 up.arrival + config_.latency.switch_pipeline);
  return down.arrival;
}

SimTime GamSystem::FetchFromMemory(uint64_t page, ComputeBladeId to, SimTime t) {
  const MemoryBladeId m = BackingBlade(page);
  // Full path: requester NIC -> switch -> memory blade -> switch -> requester.
  auto issue = fabric_.ToSwitch(Endpoint::Compute(to), MessageKind::kRdmaReadRequest, t);
  auto req = fabric_.FromSwitch(Endpoint::Memory(m), MessageKind::kRdmaReadRequest,
                                issue.arrival + config_.latency.switch_pipeline);
  SimTime s = req.arrival + config_.latency.memory_blade_service;
  auto up = fabric_.ToSwitch(Endpoint::Memory(m), MessageKind::kRdmaReadResponse, s);
  auto down = fabric_.FromSwitch(Endpoint::Compute(to), MessageKind::kRdmaReadResponse,
                                 up.arrival + config_.latency.switch_pipeline);
  return down.arrival;
}

SimTime GamSystem::FlushToMemory(uint64_t page, ComputeBladeId from, SimTime t) {
  const MemoryBladeId m = BackingBlade(page);
  auto up = fabric_.ToSwitch(Endpoint::Compute(from), MessageKind::kRdmaWriteRequest, t);
  auto down = fabric_.FromSwitch(Endpoint::Memory(m), MessageKind::kRdmaWriteRequest,
                                 up.arrival + config_.latency.switch_pipeline);
  return down.arrival + config_.latency.memory_blade_service;
}

SimTime GamSystem::PsoReadBarrier(ThreadId tid, uint64_t page, SimTime now) {
  auto it = pending_writes_.find(tid);
  if (it == pending_writes_.end()) {
    return now;
  }
  SimTime barrier = now;
  for (const auto& w : it->second) {
    if (w.page == page) {
      barrier = std::max(barrier, w.completion);
    }
  }
  std::erase_if(it->second,
                [barrier](const PendingWrite& w) { return w.completion <= barrier; });
  if (it->second.empty()) {
    pending_writes_.erase(it);
  }
  return barrier;
}

AccessResult GamSystem::Access(ThreadId tid, ComputeBladeId blade, VirtAddr va,
                               AccessType type, SimTime now) {
  ++counters_.total_accesses;
  AccessResult res;
  const uint64_t page = PageNumber(va);
  BladeState& local = blades_[blade];

  const SimTime req_now = now;
  if (type == AccessType::kRead) {
    now = PsoReadBarrier(tid, page, now);
  }

  // Library fast path: permission check + lock on *every* access (GAM has no MMU help).
  const auto lock_grant = local.lock.Acquire(now, config_.lock_service);
  SimTime t = lock_grant.finish + config_.latency.gam_local_access;

  DramCache::Frame* frame = local.cache->Lookup(page);
  const bool hit = frame != nullptr && (type == AccessType::kRead || frame->writable);
  if (hit) {
    ++counters_.local_hits;
    if (type == AccessType::kWrite) {
      frame->dirty = true;
    }
    res.local_hit = true;
    res.latency = t - req_now;  // Includes any PSO read-barrier stall.
    res.completion = t;
    res.breakdown.fault = t - req_now;
    return res;
  }

  // Miss: consult the home node's software directory.
  ++counters_.remote_accesses;
  const ComputeBladeId home = HomeOf(page);
  if (home != blade) {
    t = BladeToBlade(blade, home, MessageKind::kRdmaReadRequest, t);
  }
  BladeState& home_state = blades_[home];
  const auto handler_grant = home_state.handler.Acquire(t, config_.latency.gam_software_handler);
  t = handler_grant.finish;

  DirEntry& dir = home_state.directory[page];
  const bool conflicting =
      type == AccessType::kWrite || dir.state == MsiState::kModified;
  if (conflicting) {
    // Only conflicting transitions wait out an in-flight one; S->S reads proceed.
    t = std::max(t, dir.busy_until);
  }
  res.prev_state = dir.state;

  SimTime inv_done = t;
  // Downgrade/invalidate remote copies as MSI requires. GAM tracks pages exactly, so there
  // are never false invalidations; messages are sequential unicast (software sender).
  if (dir.state == MsiState::kModified && dir.owner != blade) {
    // Owner flushes the page, sequentially before the fetch.
    SimTime at_owner = BladeToBlade(home, dir.owner, MessageKind::kInvalidation, t);
    (void)blades_[dir.owner].cache->InvalidateRange(page, page + 1);
    at_owner += config_.latency.invalidation_handler_cpu + config_.latency.page_flush_cpu;
    const SimTime flushed = FlushToMemory(page, dir.owner, at_owner);
    ++counters_.invalidations;
    ++counters_.pages_flushed;
    inv_done = BladeToBlade(dir.owner, home, MessageKind::kInvalidationAck, at_owner);
    t = std::max(flushed, inv_done);
  } else if (type == AccessType::kWrite && dir.state == MsiState::kShared) {
    SharerMask others = dir.sharers & ~BladeBit(blade);
    SimTime send = t;
    while (others != 0) {
      const auto s = static_cast<ComputeBladeId>(LowestSetBit(others));
      others &= others - 1;
      const SimTime at_sharer = BladeToBlade(home, s, MessageKind::kInvalidation, send);
      send += config_.latency.rdma_message_overhead;  // Sequential software sends.
      (void)blades_[s].cache->InvalidateRange(page, page + 1);
      ++counters_.invalidations;
      const SimTime ack = BladeToBlade(s, home, MessageKind::kInvalidationAck,
                                       at_sharer + config_.latency.invalidation_handler_cpu);
      inv_done = std::max(inv_done, ack);
    }
    t = std::max(t, inv_done);
  }

  // Fetch the page from the backing memory blade to the requester.
  const bool need_data = frame == nullptr;
  SimTime data_at = t;
  if (need_data) {
    data_at = FetchFromMemory(page, blade, t);
  } else {
    data_at = BladeToBlade(home, blade, MessageKind::kRdmaWriteAck, t);
  }
  const SimTime done = std::max(data_at, inv_done) + config_.latency.gam_local_access;

  // Commit directory.
  if (type == AccessType::kWrite) {
    dir.state = MsiState::kModified;
    dir.owner = blade;
    dir.sharers = BladeBit(blade);
  } else {
    dir.state = MsiState::kShared;
    dir.sharers |= BladeBit(blade);
    dir.owner = kInvalidComputeBlade;
  }
  if (conflicting) {
    dir.busy_until = done;
  }
  res.next_state = dir.state;

  // Install locally; evict write-backs as needed.
  if (need_data) {
    auto evicted = local.cache->Insert(page, type == AccessType::kWrite, nullptr);
    if (evicted.has_value() && evicted->dirty) {
      (void)FlushToMemory(evicted->page, blade, done);
      ++counters_.pages_flushed;
    }
  } else if (type == AccessType::kWrite) {
    local.cache->MakeWritable(page);
  }
  if (type == AccessType::kWrite) {
    local.cache->MarkDirty(page);
  }

  res.completion = done;
  res.breakdown.fault = config_.latency.gam_local_access;
  res.breakdown.network =
      done - req_now > res.breakdown.fault ? done - req_now - res.breakdown.fault : 0;
  counters_.breakdown_sums += res.breakdown;

  // PSO: writes return to the thread as soon as the library hands off the request.
  if (type == AccessType::kWrite) {
    res.latency = (lock_grant.finish + config_.latency.gam_local_access) - req_now;
    pending_writes_[tid].push_back(PendingWrite{page, done});
  } else {
    res.latency = done - req_now;
  }
  return res;
}

}  // namespace mind
