#include "src/baselines/gam.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "src/core/channel_group.h"

namespace mind {

GamSystem::GamSystem(GamConfig config)
    : config_(config),
      fabric_(config.num_compute_blades, config.num_memory_blades, config.latency,
              config.fabric),
      fault_plane_(config.fault) {
  blades_.resize(static_cast<size_t>(config_.num_compute_blades));
  blade_thread_counts_.resize(static_cast<size_t>(config_.num_compute_blades), 0);
  for (auto& b : blades_) {
    b.cache = std::make_unique<DramCache>(config_.compute_cache_bytes >> kPageShift,
                                          /*store_data=*/false);
  }
}

Result<VirtAddr> GamSystem::Alloc(uint64_t size) {
  const VirtAddr base = next_va_;
  next_va_ += AlignUp(size, kPageSize);
  return base;
}

Result<ThreadId> GamSystem::RegisterThread(ComputeBladeId blade) {
  if (blade >= config_.num_compute_blades) {
    return Status(ErrorCode::kInvalidArgument, "no such blade");
  }
  ++blade_thread_counts_[blade];  // Channels check this for submit-time latency finality.
  return next_tid_++;
}

SimTime GamSystem::BladeToBlade(ComputeBladeId from, ComputeBladeId to, MessageKind kind,
                                SimTime t) {
  // Plain L2 forwarding through the switch: one pipeline pass, no recirculation.
  return fabric_.Route(Endpoint::Compute(from), Endpoint::Compute(to), kind, t).arrival;
}

SimTime GamSystem::FetchFromMemory(uint64_t page, ComputeBladeId to, SimTime t) {
  // Full path: requester NIC -> switch -> memory blade -> switch -> requester.
  const auto rtt = fabric_.Rtt(Endpoint::Compute(to), Endpoint::Memory(BackingBlade(page)),
                               MessageKind::kRdmaReadRequest, MessageKind::kRdmaReadResponse,
                               t, lat().memory_blade_service);
  return rtt.complete;
}

SimTime GamSystem::FlushToMemory(uint64_t page, ComputeBladeId from, SimTime t) {
  auto hop = fabric_.Route(Endpoint::Compute(from), Endpoint::Memory(BackingBlade(page)),
                           MessageKind::kRdmaWriteRequest, t);
  return hop.arrival + lat().memory_blade_service;
}

SimTime GamSystem::PsoReadBarrier(ThreadId tid, uint64_t page, SimTime now) {
  // Same value as the read-only peek — channel Submit's latency simulation depends on
  // that identity — plus the pruning side effect.
  const SimTime barrier = PsoPeekBarrier(tid, page, now);
  if (auto it = pending_writes_.find(tid); it != pending_writes_.end()) {
    // Prune in place but never erase the map entry: channel commits for different blades
    // run concurrently, and a structural map mutation here would race their lookups.
    // Each thread only ever mutates its own vector.
    std::erase_if(it->second,
                  [barrier](const PendingWrite& w) { return w.completion <= barrier; });
  }
  return barrier;
}

SimTime GamSystem::PsoPeekBarrier(ThreadId tid, uint64_t page, SimTime now) const {
  auto it = pending_writes_.find(tid);
  if (it == pending_writes_.end()) {
    return now;
  }
  SimTime barrier = now;
  for (const auto& w : it->second) {
    if (w.page == page) {
      barrier = std::max(barrier, w.completion);
    }
  }
  return barrier;
}

SimTime GamSystem::EnterLibrary(ThreadId tid, ComputeBladeId blade, uint64_t page,
                                AccessType type, SimTime now) {
  if (type == AccessType::kRead) {
    now = PsoReadBarrier(tid, page, now);
  }
  // Library fast path: permission check + lock on *every* access (GAM has no MMU help).
  // detlint: allow(parallel-serialized-call): this is the per-blade FifoResource library
  // lock (blade-confined under the group/drain phase discipline), not the fabric's
  // serialized QueueModel::Acquire — the regex frontend matches by name only.
  const auto grant = blades_[blade].lock.Acquire(now, config_.lock_service);
  return grant.finish + lat().gam_local_access;
}

// Ownership-aware drain over the GAM hit path (contract notes in gam.h; engine-side
// discipline in memory_system.h). AccessOwned replays the serial hit path exactly —
// EnterLibrary (PSO read barrier + FIFO lock + local library work), LRU touch, dirty bit
// — with counters absorbed by per-shard scratch; same-blade threads share a shard, so
// the blade's lock queue advances in the same relative order serial replay produces.
class GamSystem::OwnerDrain final : public OwnerDrainOps {
 public:
  OwnerDrain(GamSystem* sys, int num_shards)
      : sys_(sys), scratch_(static_cast<size_t>(num_shards)) {}

  MIND_PARALLEL_PHASE [[nodiscard]] bool Eligible(ThreadId /*tid*/, ComputeBladeId blade,
                                                  VirtAddr va, AccessType type,
                                                  SimTime /*now*/) const override {
    if (sys_->config_.prefetch.enabled()) {
      return false;  // Installs and late joins mutate per-blade tables mid-drain.
    }
    const DramCache::Frame* frame = sys_->blades_[blade].cache->Peek(PageNumber(va));
    return frame != nullptr && !frame->prefetched &&
           (type == AccessType::kRead || frame->writable);
  }
  MIND_SERIALIZED_PATH [[nodiscard]] SimTime MinEligibleCost() const override {
    return sys_->config_.lock_service + sys_->lat().gam_local_access;
  }
  MIND_PARALLEL_PHASE AccessResult AccessOwned(int shard, ThreadId tid, ComputeBladeId blade,
                                               VirtAddr va, AccessType type,
                                               SimTime now) override {
    Scratch& sc = scratch_[static_cast<size_t>(shard)];
    ++sc.total_accesses;
    const uint64_t page = PageNumber(va);
    const SimTime t = sys_->EnterLibrary(tid, blade, page, type, now);
    DramCache::Frame* frame = sys_->blades_[blade].cache->Lookup(page);
    assert(frame != nullptr);  // Guaranteed by Eligible under the phase discipline.
    if (type == AccessType::kWrite) {
      frame->dirty = true;
    }
    ++sc.local_hits;
    AccessResult res;
    res.local_hit = true;
    res.latency = t - now;  // Includes any PSO read-barrier stall, as the serial hit does.
    res.completion = t;
    res.breakdown.fault = t - now;
    return res;
  }
  MIND_SERIALIZED_PATH void Fold() override {
    for (Scratch& sc : scratch_) {
      sys_->counters_.total_accesses += sc.total_accesses;
      sys_->counters_.local_hits += sc.local_hits;
      sc = {};
    }
  }

 private:
  struct Scratch {
    uint64_t total_accesses = 0;
    uint64_t local_hits = 0;
  };

  GamSystem* sys_;
  std::vector<Scratch> scratch_;
};

std::unique_ptr<OwnerDrainOps> GamSystem::OpenOwnerDrain(int num_shards) {
  return std::make_unique<OwnerDrain>(this, num_shards);
}

MIND_SERIALIZED_PATH AccessResult GamSystem::Access(ThreadId tid, ComputeBladeId blade, VirtAddr va,
                               AccessType type, SimTime now) {
  ++counters_.total_accesses;
  AccessResult res;
  const uint64_t page = PageNumber(va);
  BladeState& local = blades_[blade];

  const SimTime req_now = now;
  const SimTime lib_done = EnterLibrary(tid, blade, page, type, now);
  SimTime t = lib_done;

  DramCache::Frame* frame = local.cache->Lookup(page);
  auto is_hit = [&] {
    return frame != nullptr && (type == AccessType::kRead || frame->writable);
  };
  bool hit = is_hit();
  if (!hit && config_.prefetch.enabled()) {
    // Prefetch hooks live on the miss path only: install arrived pages, retry the hit,
    // then try joining an in-flight fetch before paying the full remote path.
    InstallReadyPrefetches(blade, now);
    frame = local.cache->Lookup(page);
    hit = is_hit();
    if (!hit) {
      if (auto it = local.prefetch.in_flight.find(page);
          it != local.prefetch.in_flight.end()) {
        const BladePrefetchState::InFlight entry = it->second;
        local.prefetch.in_flight.erase(it);
        local.prefetch.RecomputeNextReady();
        const bool stale =
            local.cache->region_inval_version(DramCache::RegionOf(page)) !=
            entry.inval_stamp;
        if (!stale && type == AccessType::kRead && frame == nullptr) {
          // Demand read joins the in-flight fetch: the library blocks until the data
          // lands (a late prefetch — shortened the stall without hiding it).
          entry.owner->OnLate();
          ++counters_.remote_accesses;
          const SimTime landed = std::max(t, entry.ready_at);
          auto evicted = local.cache->Insert(page, /*writable=*/false, nullptr);
          if (evicted.has_value()) {
            local.prefetch.OnPageEvicted(evicted->page);
            if (evicted->dirty) {
              (void)FlushToMemory(evicted->page, blade, landed);
              ++counters_.pages_flushed;
            }
          }
          const SimTime done = landed + lat().gam_local_access;
          res.latency = done - req_now;
          res.completion = done;
          res.breakdown.fault = lat().gam_local_access;
          res.breakdown.network = done - req_now > res.breakdown.fault
                                      ? done - req_now - res.breakdown.fault
                                      : 0;
          counters_.breakdown_sums += res.breakdown;
          if (trace_ != nullptr) [[unlikely]] {
            TraceEvent ev;
            ev.kind = TraceEventKind::kPrefetchUseful;
            ev.clock = now;
            ev.dur = done - now;
            ev.tid = tid;
            ev.blade = blade;
            ev.a = page;
            trace_->Emit(ev);
          }
          PrefetchAfterFault(tid, blade, page, done);
          return res;
        }
        // Stale copy, or a write that needs M anyway: drop the speculation and miss.
        if (stale) {
          entry.owner->OnDiscardedStale();
          if (trace_ != nullptr) [[unlikely]] {
            TraceEvent ev;
            ev.kind = TraceEventKind::kPrefetchDiscard;
            ev.clock = now;
            ev.tid = tid;
            ev.blade = blade;
            ev.a = page;
            ev.b = 1;  // Stale at join.
            trace_->Emit(ev);
          }
        } else {
          entry.owner->OnLate();
        }
      }
      if (frame != nullptr && frame->prefetched) {
        // Write upgrade on a prefetched read-only page: its first real use.
        frame->prefetched = false;
        local.prefetch.OnPrefetchedTouch(page);
      }
    }
  }
  if (hit) {
    ++counters_.local_hits;
    if (type == AccessType::kWrite) {
      frame->dirty = true;
    }
    if (frame->prefetched) [[unlikely]] {  // First touch: the prefetch was useful.
      frame->prefetched = false;
      local.prefetch.OnPrefetchedTouch(page);
    }
    res.local_hit = true;
    res.latency = t - req_now;  // Includes any PSO read-barrier stall.
    res.completion = t;
    res.breakdown.fault = t - req_now;
    return res;
  }

  // Miss: consult the home node's software directory.
  ++counters_.remote_accesses;
  const ComputeBladeId home = HomeOf(page);
  if (fault_plane_.lossy()) [[unlikely]] {
    // The request/ownership message to the home rides the loss model; retransmission
    // delay lands on the miss. An exhausted retry budget triggers GAM's reset analog
    // (drop the home's directory entry, flush every cached copy) and fails the access —
    // the next access re-faults from a cold directory.
    const FaultPlane::SendOutcome outcome = fault_plane_.SendWithAck(0, t, blade);
    if (!outcome.delivered) {
      const SimTime failed_at = t + outcome.latency;
      (void)ResetPage(page, home, failed_at);
      res.status = Status(ErrorCode::kTimedOut, "home-node messages lost; page reset");
      res.latency = failed_at - req_now;
      res.completion = failed_at;
      return res;
    }
    t += outcome.latency;
  }
  if (home != blade) {
    t = BladeToBlade(blade, home, MessageKind::kRdmaReadRequest, t);
  }
  BladeState& home_state = blades_[home];
  const auto handler_grant = home_state.handler.Acquire(t, lat().gam_software_handler);
  t = handler_grant.finish;

  DirEntry& dir = home_state.directory[page];
  const bool conflicting =
      type == AccessType::kWrite || dir.state == MsiState::kModified;
  if (conflicting) {
    // Only conflicting transitions wait out an in-flight one; S->S reads proceed.
    t = std::max(t, dir.busy_until);
  }
  res.prev_state = dir.state;

  SimTime inv_done = t;
  const SimTime inv_start = t;
  const uint64_t inv_before = counters_.invalidations;
  // Downgrade/invalidate remote copies as MSI requires. GAM tracks pages exactly, so there
  // are never false invalidations; messages are sequential unicast (software sender).
  if (dir.state == MsiState::kModified && dir.owner != blade) {
    // Owner flushes the page, sequentially before the fetch.
    SimTime at_owner = BladeToBlade(home, dir.owner, MessageKind::kInvalidation, t);
    (void)blades_[dir.owner].cache->InvalidateRange(page, page + 1);
    at_owner += lat().invalidation_handler_cpu + lat().page_flush_cpu;
    const SimTime flushed = FlushToMemory(page, dir.owner, at_owner);
    ++counters_.invalidations;
    ++counters_.pages_flushed;
    inv_done = BladeToBlade(dir.owner, home, MessageKind::kInvalidationAck, at_owner);
    t = std::max(flushed, inv_done);
  } else if (type == AccessType::kWrite && dir.state == MsiState::kShared) {
    SharerMask others = dir.sharers & ~BladeBit(blade);
    SimTime send = t;
    while (others != 0) {
      const auto s = static_cast<ComputeBladeId>(LowestSetBit(others));
      others &= others - 1;
      const SimTime at_sharer = BladeToBlade(home, s, MessageKind::kInvalidation, send);
      send += lat().rdma_message_overhead;  // Sequential software sends.
      (void)blades_[s].cache->InvalidateRange(page, page + 1);
      ++counters_.invalidations;
      const SimTime ack = BladeToBlade(s, home, MessageKind::kInvalidationAck,
                                       at_sharer + lat().invalidation_handler_cpu);
      inv_done = std::max(inv_done, ack);
    }
    t = std::max(t, inv_done);
  }
  if (trace_ != nullptr && counters_.invalidations != inv_before) [[unlikely]] {
    // GAM invalidates exact pages (no false invalidations by construction), so the
    // wave span is the page itself and the flushed count rides the c payload.
    TraceEvent ev;
    ev.kind = TraceEventKind::kInvalidationWave;
    ev.clock = inv_start;
    ev.dur = inv_done > inv_start ? inv_done - inv_start : 0;
    ev.tid = tid;
    ev.blade = blade;
    ev.a = PageToAddr(page);
    ev.b = PageToAddr(page + 1);
    ev.c = TracePack32(counters_.invalidations - inv_before,
                       dir.state == MsiState::kModified ? 1 : 0);
    trace_->Emit(ev);
  }

  // Fetch the page from the backing memory blade to the requester.
  const bool need_data = frame == nullptr;
  SimTime data_at = t;
  if (need_data) {
    data_at = FetchFromMemory(page, blade, t);
  } else {
    data_at = BladeToBlade(home, blade, MessageKind::kRdmaWriteAck, t);
  }
  const SimTime done = std::max(data_at, inv_done) + lat().gam_local_access;

  // Commit directory.
  if (type == AccessType::kWrite) {
    dir.state = MsiState::kModified;
    dir.owner = blade;
    dir.sharers = BladeBit(blade);
  } else {
    dir.state = MsiState::kShared;
    dir.sharers |= BladeBit(blade);
    dir.owner = kInvalidComputeBlade;
  }
  if (conflicting) {
    dir.busy_until = done;
  }
  res.next_state = dir.state;

  // Install locally; evict write-backs as needed.
  if (need_data) {
    auto evicted = local.cache->Insert(page, type == AccessType::kWrite, nullptr);
    if (evicted.has_value()) {
      if (config_.prefetch.enabled()) {
        local.prefetch.OnPageEvicted(evicted->page);  // Evicted-unused feedback.
      }
      if (evicted->dirty) {
        (void)FlushToMemory(evicted->page, blade, done);
        ++counters_.pages_flushed;
      }
    }
  } else if (type == AccessType::kWrite) {
    local.cache->MakeWritable(page);
  }
  if (type == AccessType::kWrite) {
    local.cache->MarkDirty(page);
  }

  res.completion = done;
  res.breakdown.fault = lat().gam_local_access;
  res.breakdown.network =
      done - req_now > res.breakdown.fault ? done - req_now - res.breakdown.fault : 0;
  counters_.breakdown_sums += res.breakdown;
  if (trace_ != nullptr) [[unlikely]] {
    TraceEvent ev;
    ev.kind = TraceEventKind::kAccessSpan;
    ev.clock = req_now;
    ev.dur = done - req_now;  // Full service span; PSO-visible latency may be shorter.
    ev.tid = tid;
    ev.blade = blade;
    ev.a = va;
    ev.b = res.breakdown.fault;
    ev.c = TracePack32(res.breakdown.network, res.breakdown.fabric_wait);
    trace_->Emit(ev);
  }

  // PSO: writes return to the thread as soon as the library hands off the request.
  if (type == AccessType::kWrite) {
    res.latency = lib_done - req_now;
    pending_writes_[tid].push_back(PendingWrite{page, done});
  } else {
    res.latency = done - req_now;
  }
  if (config_.prefetch.enabled()) {
    PrefetchAfterFault(tid, blade, page, done);
  }
  return res;
}

SimTime GamSystem::ResetPage(uint64_t page, ComputeBladeId home, SimTime t) {
  blades_[home].directory.erase(page);
  uint64_t flushed = 0;
  SimTime done = t;
  for (int b = 0; b < config_.num_compute_blades; ++b) {
    auto inv = blades_[b].cache->InvalidateRange(page, page + 1);
    for (auto& ev : inv.flushed) {
      done = std::max(done, FlushToMemory(ev.page, static_cast<ComputeBladeId>(b), t));
      ++counters_.pages_flushed;
      ++flushed;
    }
  }
  fault_plane_.OnResetFlushed(flushed);
  if (trace_ != nullptr) [[unlikely]] {
    TraceEvent ev;
    ev.kind = TraceEventKind::kFaultReset;
    ev.clock = t;
    ev.dur = done > t ? done - t : 0;
    ev.blade = home;
    ev.a = PageToAddr(page);
    ev.b = flushed;
    trace_->Emit(ev);
  }
  return done;
}

MIND_SERIALIZED_PATH void GamSystem::AdvanceTo(SimTime now) {
  if (!config_.prefetch.enabled()) {
    return;
  }
  // Re-arm gap fix: pending re-armed windows issue here even when the blade never takes
  // another serialized access (see the same hook in Rack::AdvanceTo).
  for (int b = 0; b < config_.num_compute_blades; ++b) {
    InstallReadyPrefetches(static_cast<ComputeBladeId>(b), now);
  }
}

// ---------------------------------------------------------------------------
// Software prefetching in the GAM library (src/prefetch/prefetch.h): predictions issue
// behind the per-blade FIFO library lock and register as sharers at the home directory.
// ---------------------------------------------------------------------------

PrefetchEngine& GamSystem::EnsurePrefetchEngine(ThreadId tid) {
  return EnsureEngine(prefetch_engines_, tid, config_.prefetch);
}

void GamSystem::InstallReadyPrefetches(ComputeBladeId blade, SimTime now) {
  BladeState& local = blades_[blade];
  BladePrefetchState& bp = local.prefetch;
  for (const auto& [page, entry] : bp.TakeReady(now)) {
    if (local.cache->region_inval_version(DramCache::RegionOf(page)) !=
        entry.inval_stamp) {
      // An invalidation reached the blade before the data: the copy is stale.
      entry.owner->OnDiscardedStale();
      if (trace_ != nullptr) [[unlikely]] {
        TraceEvent ev;
        ev.kind = TraceEventKind::kPrefetchDiscard;
        ev.clock = now;
        ev.blade = blade;
        ev.a = page;
        ev.b = 0;  // Stale at install.
        trace_->Emit(ev);
      }
      continue;
    }
    entry.owner->OnInstalled();
    if (local.cache->Find(page) != nullptr) {
      continue;  // A demand fault re-fetched it meanwhile.
    }
    // Speculative install at the blade's adaptive cold LRU depth (prefetch-aware
    // eviction priority): a mispredicting burst evicts its own guesses first.
    auto evicted = local.cache->InsertPrefetched(page, /*writable=*/false, nullptr,
                                                 /*pdid=*/0, bp.cold_insert_depth());
    if (evicted.has_value()) {
      bp.OnPageEvicted(evicted->page);
      if (evicted->dirty) {
        (void)FlushToMemory(evicted->page, blade, entry.ready_at);
        ++counters_.pages_flushed;
      }
    }
    bp.unused[page] = entry.owner;
  }
  if (!bp.rearm_requests.empty()) {
    // Re-arm requests from hit paths and channel/group commits: issue the next window at
    // the blade's first serialized point (see the same hook in Rack).
    for (size_t i = 0; i < bp.rearm_requests.size(); ++i) {
      const BladePrefetchState::Rearm rearm = bp.rearm_requests[i];
      IssuePrefetches(*rearm.engine, blade, rearm.page, now);
    }
    bp.rearm_requests.clear();
  }
}

void GamSystem::PrefetchAfterFault(ThreadId tid, ComputeBladeId blade, uint64_t page,
                                   SimTime done) {
  PrefetchEngine& engine = EnsurePrefetchEngine(tid);
  engine.RecordFault(page);
  IssuePrefetches(engine, blade, page, done);
}

void GamSystem::IssuePrefetches(PrefetchEngine& engine, ComputeBladeId blade,
                                uint64_t page, SimTime done) {
  prefetch_scratch_.clear();
  engine.Predict(page, &prefetch_scratch_);
  // Occupancy feedback: skip (and shrink) the window when the trigger page's backing
  // blade port is already saturated with demand traffic.
  if (config_.prefetch.fabric_pressure_threshold < 1.0 &&
      fabric_.Utilization(Endpoint::Memory(BackingBlade(page))) >
          config_.prefetch.fabric_pressure_threshold) {
    engine.OnFabricPressure();
    return;
  }
  BladeState& local = blades_[blade];
  uint64_t last_issued = page;
  bool issued_any = false;
  uint64_t issued_count = 0;
  for (const uint64_t p : prefetch_scratch_) {
    if (!engine.HasInFlightRoom()) {
      break;  // Bounded in-flight queue.
    }
    const VirtAddr va = PageToAddr(p);
    if (va < first_va_ || va >= next_va_) {
      continue;  // Never speculate past the allocated address space.
    }
    if (local.cache->Find(p) != nullptr ||
        local.prefetch.in_flight.find(p) != local.prefetch.in_flight.end()) {
      continue;
    }
    // The library issues the speculative read behind the blade's FIFO lock: speculation
    // pays the same serialized entry every demand access does.
    const auto grant = local.lock.Acquire(done, config_.lock_service);
    SimTime t = grant.finish;
    const ComputeBladeId home = HomeOf(p);
    if (home != blade) {
      t = BladeToBlade(blade, home, MessageKind::kRdmaReadRequest, t);
    }
    BladeState& home_state = blades_[home];
    const auto handler_grant =
        home_state.handler.Acquire(t, lat().gam_software_handler);
    t = handler_grant.finish;
    DirEntry& dir = home_state.directory[p];
    if (dir.state == MsiState::kModified && dir.owner != blade) {
      continue;  // Fetching would force an owner flush: no invalidations for guesses.
    }
    if (dir.busy_until > t) {
      continue;  // Transition in flight: never wait speculatively.
    }
    // Register as a reader: the page installs Shared, so a later writer's invalidation
    // reaches this blade (and an in-flight fetch goes stale through the region stamp).
    if (dir.state == MsiState::kInvalid) {
      dir.state = MsiState::kShared;
    }
    if (dir.state == MsiState::kShared) {
      dir.sharers |= BladeBit(blade);
    }
    const SimTime ready = FetchFromMemory(p, blade, t);
    engine.OnIssued();
    local.prefetch.in_flight[p] = BladePrefetchState::InFlight{
        ready, local.cache->region_inval_version(DramCache::RegionOf(p)), &engine,
        /*pdid=*/0};
    local.prefetch.NoteIssued(ready);
    last_issued = p;
    issued_any = true;
    ++issued_count;
  }
  if (issued_any) {
    engine.NoteIssuedWindow(page, last_issued);
    if (trace_ != nullptr) [[unlikely]] {
      TraceEvent ev;
      ev.kind = TraceEventKind::kPrefetchIssue;
      ev.clock = done;
      ev.blade = blade;
      ev.a = page;
      ev.b = issued_count;
      trace_->Emit(ev);
    }
  }
}

PrefetchStats GamSystem::prefetch_stats() {
  for (auto& b : blades_) {
    b.prefetch.ResolveEvictedUnused([&](uint64_t page) {
      const DramCache::Frame* f = b.cache->Peek(page);
      return f != nullptr && f->prefetched;
    });
  }
  return MergeEngineStats(prefetch_engines_);
}

// ---------------------------------------------------------------------------
// AccessChannel over the GAM library hit path (see the contract notes in gam.h).
// ---------------------------------------------------------------------------

class GamSystem::Channel final : public AccessChannel {
 public:
  Channel(GamSystem* sys, ThreadId tid, ComputeBladeId blade)
      : sys_(sys), tid_(tid), blade_(blade) {}

  MIND_PARALLEL_PHASE SubmitResult Submit(const LocalOp* ops, size_t n, SimTime clock,
                                          SimTime think,
                      Completion* completions) override {
    BladeState& blade = sys_->blades_[blade_];
    DramCache& cache = *blade.cache;
    const SimTime service = sys_->config_.lock_service;
    const SimTime local_work = sys_->lat().gam_local_access;
    stamps_.Clear();
    think_ = think;
    // With one registered thread on the blade, nothing but this channel ever moves the
    // blade's library lock, so the simulated queue below is exact and latencies are final
    // at Submit. Under intra-blade contention latencies depend on how same-blade threads
    // interleave — which only the commit pass (per-blade group merge, or op-by-op
    // Commit) knows — so the contended branch classifies ONLY: hit checks and region
    // stamps, plus a queue-free latency lower bound for the end-clock horizon (the PSO
    // barrier and other threads' lock holds can only push real latencies later). Per-op
    // latencies stay unwritten; the commit pass writes the exact values.
    const bool sole_thread = sys_->blade_thread_counts_[blade_] == 1;
    SimTime busy = blade.lock.busy_until();
    bool uniform = true;
    SimTime first_latency = 0;
    SubmitResult out;
    out.latency_final = sole_thread;
    size_t i = 0;
    for (; i < n; ++i) {
      const uint64_t page = PageNumber(ops[i].va);
      DramCache::Frame* frame = cache.Find(page);
      if (frame == nullptr) {
        break;
      }
      const bool is_write = ops[i].type == AccessType::kWrite;
      if (is_write && !frame->writable) {
        break;
      }
      stamps_.Add(cache, DramCache::RegionOf(page));
      completions[i].token.bits =
          reinterpret_cast<uintptr_t>(frame) | static_cast<uintptr_t>(is_write);
      if (!sole_thread) {
        // Contended blade, classification only: queue-free latency lower bound, no PSO
        // peek, latency field left unwritten (see the loop header comment).
        const SimTime start = std::max(clock, busy);
        busy = start + service;
        clock = (busy + local_work) + think;
        continue;
      }
      SimTime arrival = clock;
      if (!is_write) {
        arrival = sys_->PsoPeekBarrier(tid_, page, arrival);
      }
      const SimTime start = std::max(arrival, busy);
      busy = start + service;
      const SimTime latency = (busy + local_work) - clock;
      if (i == 0) {
        first_latency = latency;
      } else {
        uniform &= latency == first_latency;
      }
      completions[i].latency = latency;
      clock += latency + think;
    }
    out.accepted = i;
    out.end_clock = clock;
    out.uniform_latency =
        sole_thread && uniform && i > 0 && first_latency != 0 ? first_latency : 0;
    return out;
  }

  MIND_PARALLEL_PHASE [[nodiscard]] bool RunValid() const override {
    return stamps_.Valid(*sys_->blades_[blade_].cache);
  }

  MIND_PARALLEL_PHASE void Commit(Completion* completions, size_t n, SimTime clock) override {
    BladeState& blade = sys_->blades_[blade_];
    for (size_t i = 0; i < n; ++i) {
      const uint64_t tagged = completions[i].token.bits;
      const auto* frame = reinterpret_cast<DramCache::Frame*>(tagged & ~uint64_t{1});
      const bool is_write = (tagged & 1) != 0;
      // Replays the serial hit path through the shared library-entry helper: real PSO
      // barrier (pruning), real FIFO lock acquisition, LRU touch, dirty bit.
      const SimTime lib_done = sys_->EnterLibrary(
          tid_, blade_, frame->page, is_write ? AccessType::kWrite : AccessType::kRead,
          clock);
      ApplyCommitToken(*blade.cache, completions[i],
                       [&](uint64_t page) { blade.prefetch.OnPrefetchedTouch(page); });
      completions[i].latency = lib_done - clock;
      clock += completions[i].latency + think_;
    }
  }

 private:
  friend class GamSystem::Group;

  GamSystem* sys_;
  ThreadId tid_;
  ComputeBladeId blade_;
  SimTime think_ = 0;               // Recorded at Submit; Commit replays per-op clocks.
  DramCache::RegionStamps stamps_;  // Dependency footprint of the last submitted run.
};

std::unique_ptr<AccessChannel> GamSystem::OpenChannel(ThreadId tid, ComputeBladeId blade) {
  if (blade >= config_.num_compute_blades) {
    return nullptr;
  }
  return std::make_unique<Channel>(this, tid, blade);
}

// Per-blade ChannelGroup over the GAM library (contract in access_channel.h, merge
// machinery in channel_group.h). This is the group layer's biggest winner: under
// intra-blade contention a per-thread Submit can only lower-bound hit latencies (the
// FIFO library lock's queueing delay depends on how same-blade threads interleave), so
// the per-thread path finalizes op by op through Commit — one virtual call and one
// FifoResource::Acquire per op. The group knows the whole interleaving: it replays the
// lock queue across the merged (clock, thread) stream in one pass — arrival (post
// PSO-read-barrier, with the same pruning EnterLibrary performs), start = max(arrival,
// busy), busy += service — writes the exact latency into each completion, and advances
// the blade's lock once per batch with the aggregate stats the per-op Acquires would
// have recorded.
class GamSystem::Group final : public ChannelGroup {
 public:
  Group(GamSystem* sys, ComputeBladeId blade) : sys_(sys), blade_(blade) {}

  size_t Add(AccessChannel* channel) override {
    members_.push_back(static_cast<Channel*>(channel));
    return members_.size() - 1;
  }

  MIND_PARALLEL_PHASE [[nodiscard]] uint64_t ValidMask() const override {
    const DramCache& cache = *sys_->blades_[blade_].cache;
    uint64_t mask = 0;
    for (size_t m = 0; m < members_.size(); ++m) {
      if (members_[m]->stamps_.Valid(cache)) {
        mask |= uint64_t{1} << m;
      }
    }
    return mask;
  }

  MIND_PARALLEL_PHASE uint64_t CommitMerged(GroupLane* lanes, size_t n, SimTime horizon,
                                            SimTime think, Histogram& hist) override {
    BladeState& blade = sys_->blades_[blade_];
    const SimTime service = sys_->config_.lock_service;
    const SimTime local_work = sys_->lat().gam_local_access;
    SimTime busy = blade.lock.busy_until();
    uint64_t jobs = 0;
    SimTime total_wait = 0;
    // Per-member pending-write lists, resolved once per batch instead of once per read
    // op: hits never add pending writes (only write misses do, and those run on the
    // drain), so after warmup most members have none and the per-op PSO barrier check
    // collapses to an empty test. Pruning inside PsoReadBarrier mutates the vector in
    // place, never the map, so the pointers stay stable across the batch.
    pso_pending_.assign(members_.size(), nullptr);
    for (size_t m = 0; m < members_.size(); ++m) {
      if (auto it = sys_->pending_writes_.find(members_[m]->tid_);
          it != sys_->pending_writes_.end()) {
        pso_pending_[m] = &it->second;
      }
    }
    const uint64_t total = GroupMergeCommit(
        lanes, n, horizon, think, hist,
        [&](GroupLane& ln, size_t idx) {
          Completion& c = ln.comps[idx];
          auto* frame = reinterpret_cast<DramCache::Frame*>(c.token.bits & ~uint64_t{1});
          const SimTime clock = ln.end_clock;  // The op's start clock (merge cursor).
          SimTime arrival = clock;
          if ((c.token.bits & 1) == 0 && pso_pending_[ln.member] != nullptr &&
              !pso_pending_[ln.member]->empty()) {
            // Real PSO read barrier (with pruning), exactly as EnterLibrary would.
            arrival = sys_->PsoReadBarrier(members_[ln.member]->tid_, frame->page, clock);
          }
          const SimTime start = std::max(arrival, busy);
          total_wait += start - arrival;
          busy = start + service;
          ++jobs;
          // Exact at group commit: the merged interleaving fully determines the queue.
          c.latency = (busy + local_work) - clock;
          return c.latency;
        },
        [&](GroupLane& ln, size_t idx) {
          ApplyCommitToken(*blade.cache, ln.comps[idx],
                           [&](uint64_t page) { blade.prefetch.OnPrefetchedTouch(page); });
        });
    blade.lock.AcquireBatch(jobs, static_cast<SimTime>(jobs) * service, total_wait, busy);
    return total;
  }

 private:
  GamSystem* sys_;
  ComputeBladeId blade_;
  std::vector<Channel*> members_;
  // Batch-scoped scratch: member slot -> the thread's PSO pending-write list (or null).
  std::vector<std::vector<PendingWrite>*> pso_pending_;
};

std::unique_ptr<ChannelGroup> GamSystem::OpenChannelGroup(ComputeBladeId blade) {
  if (blade >= config_.num_compute_blades) {
    return nullptr;
  }
  return std::make_unique<Group>(this, blade);
}

}  // namespace mind
