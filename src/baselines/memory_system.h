// Common replay interface over the three compared systems (§7, "Compared systems").
//
// The paper captures each workload's memory accesses once (with Intel PIN) and replays the
// *identical* access stream against MIND, GAM and FastSwap through a memory-access emulator.
// MemorySystem is that emulator's system-side interface: allocate segments, register worker
// threads on blades, and issue timed accesses.
//
// The data-plane boundary is batch-first: besides the per-op Access (the serialized
// reference path every system must implement), a system can hand out AccessChannel objects
// (src/core/access_channel.h) — per-(thread, blade) batched submit/complete channels the
// replay engine drives concurrently, one shard per blade group. All three in-tree systems
// implement channels; the default opt-out (OpenChannel returning null) routes every op
// through the serialized drain, which is always correct, at single-thread speed.
#ifndef MIND_SRC_BASELINES_MEMORY_SYSTEM_H_
#define MIND_SRC_BASELINES_MEMORY_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/types.h"
#include "src/core/access.h"
#include "src/core/access_channel.h"
#include "src/fault/fault_plane.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/prefetch/prefetch.h"

namespace mind {

// Counters every compared system reports; MIND additionally exposes RackStats.
struct SystemCounters {
  uint64_t total_accesses = 0;
  uint64_t local_hits = 0;
  uint64_t remote_accesses = 0;
  uint64_t invalidations = 0;
  uint64_t pages_flushed = 0;
  uint64_t false_invalidations = 0;
  LatencyBreakdown breakdown_sums;

  // Accumulates another counter block (per-shard replay counters fold into one report
  // without double-counting: each access is accounted by exactly one shard or by the
  // system itself, never both).
  void Merge(const SystemCounters& o) {
    total_accesses += o.total_accesses;
    local_hits += o.local_hits;
    remote_accesses += o.remote_accesses;
    invalidations += o.invalidations;
    pages_flushed += o.pages_flushed;
    false_invalidations += o.false_invalidations;
    breakdown_sums += o.breakdown_sums;
  }

  // Field-wise delta over a run (counters are monotonic).
  [[nodiscard]] SystemCounters DeltaSince(const SystemCounters& before) const {
    SystemCounters d;
    d.total_accesses = total_accesses - before.total_accesses;
    d.local_hits = local_hits - before.local_hits;
    d.remote_accesses = remote_accesses - before.remote_accesses;
    d.invalidations = invalidations - before.invalidations;
    d.pages_flushed = pages_flushed - before.pages_flushed;
    d.false_invalidations = false_invalidations - before.false_invalidations;
    d.breakdown_sums = breakdown_sums - before.breakdown_sums;
    return d;
  }
};

// Ownership-aware drain contract backing the replay engine's owner-parallel drain
// phases (ISSUE 7; src/workload/region_ownership.h has the region->owner map itself).
//
// The engine partitions each serialized drain into sub-rounds: it classifies every
// unfinished thread's next op through Eligible, derives a safety horizon H_safe from the
// classification (min over threads of `clock` for ineligible tops and `clock +
// MinEligibleCost + think` for eligible ones), and lets each shard retire its own
// threads' eligible ops with start clocks strictly below H_safe concurrently — no
// barrier between intra-shard ops. Everything else (faults, invalidation waves, splits,
// epoch/sampler boundaries, regions owned by another shard) falls through to a serialized
// merge step that executes the exact global (clock, thread) minimum via Access.
//
// The contract every implementation must honor:
//   * Eligible is non-mutating and may run concurrently with AccessOwned calls of OTHER
//     blades. It must accept only ops whose entire execution touches state confined to
//     the accessing blade plus the accessing thread — in-tree that means local cache
//     hits with prefetching off (hits never evict, never draw fault-plane randomness,
//     and never touch the fabric or any directory), under a consistency model whose
//     read barrier is thread-confined.
//   * AccessOwned(shard, ...) executes one Eligible-approved op on behalf of `shard`,
//     bit-identical in outcome (latency, completion, side effects) to what Access would
//     produce at the same clock, but without touching cross-blade structures: global
//     memo arrays are skipped (pure memoization, outcome-invariant) and counters go to
//     per-shard scratch. Calls for different shards may run concurrently; the engine
//     guarantees same-blade threads always share a shard, so per-blade state (cache LRU,
//     FIFO locks) is only ever mutated in shard-local (clock, thread) order — the same
//     relative order serial replay produces.
//   * MinEligibleCost lower-bounds the thread-visible latency of ANY eligible op: the
//     engine's H_safe lookahead is sound exactly because an op retired inside a phase
//     advances its thread's clock by at least this much.
//   * NextSerialBoundary is the earliest time-driven global event (e.g. a bounded-
//     splitting epoch boundary) that Access would run implicitly; ops at or past it are
//     never phase-eligible, so the event fires on the serialized step exactly as under
//     serial replay. Scheduled fault-plane events are clamped by the engine itself via
//     NextScheduledFaultAt.
//   * Fold merges the per-shard scratch counters into the system's own counters; the
//     engine calls it after every threaded phase barrier. Sequential phase execution
//     (one worker, or a single shard) goes through plain Access instead and never needs
//     folding.
class OwnerDrainOps {
 public:
  virtual ~OwnerDrainOps() = default;

  // Phase tags (docs/determinism.md): Eligible/AccessOwned run inside owner-parallel
  // phases; Fold and NextSerialBoundary run only at phase barriers / sub-round scans on
  // the serialized path. Every override must restate its tag (tools/detlint.py enforces
  // contract totality).
  MIND_PARALLEL_PHASE [[nodiscard]] virtual bool Eligible(ThreadId tid, ComputeBladeId blade,
                                                          VirtAddr va, AccessType type,
                                                          SimTime now) const = 0;
  MIND_SERIALIZED_PATH [[nodiscard]] virtual SimTime MinEligibleCost() const = 0;
  MIND_SERIALIZED_PATH [[nodiscard]] virtual SimTime NextSerialBoundary() const {
    return FaultPlane::kNever;
  }
  MIND_PARALLEL_PHASE virtual AccessResult AccessOwned(int shard, ThreadId tid,
                                                       ComputeBladeId blade, VirtAddr va,
                                                       AccessType type, SimTime now) = 0;
  MIND_SERIALIZED_PATH virtual void Fold() {}
};

class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int num_compute_blades() const = 0;

  // Allocates a segment of the workload's address space (setup phase; not timed).
  virtual Result<VirtAddr> Alloc(uint64_t size) = 0;

  // Registers a worker thread pinned to `blade`. Systems without multi-blade support
  // (FastSwap) reject blades other than 0.
  virtual Result<ThreadId> RegisterThread(ComputeBladeId blade) = 0;

  // One timed memory access from `tid` (running on `blade`) at logical time `now`. This is
  // the serialized reference path: the replay drain executes every op a channel refuses
  // (faults, coherence transitions, control-plane epochs) through it in exact global
  // (clock, thread) order.
  MIND_SERIALIZED_PATH virtual AccessResult Access(ThreadId tid, ComputeBladeId blade,
                                                   VirtAddr va, AccessType type,
                                                   SimTime now) = 0;

  [[nodiscard]] virtual SystemCounters counters() const = 0;

  // Fault-plane accounting (src/fault/fault_plane.h): timeouts, retransmissions, resets,
  // drains. All-zero for systems without fault injection (the interface default).
  [[nodiscard]] virtual FaultCounters fault_counters() const { return {}; }

  // Earliest scheduled-but-unexecuted fault event (FaultPlane::kNever when none). The
  // replay engine clamps its commit horizon here: a scheduled event (e.g. a blade drain)
  // mutates caches at its chosen clock, so channel hits at or past that clock must not
  // commit before the event runs on the serialized path.
  [[nodiscard]] virtual SimTime NextScheduledFaultAt() const { return FaultPlane::kNever; }

  // --- Batched data-plane channels ---
  //
  // Opens the submit/complete channel for one registered (thread, blade) pair; see
  // src/core/access_channel.h for the full classify/commit contract, including the
  // per-2MB-region validity stamps and the phase discipline under which channel calls for
  // different blades may run concurrently. Returning null opts the system out: the engine
  // then drives every op of that thread through Access on the serialized drain, which is
  // always correct (and is also the engine's reference mode for conformance testing).
  virtual std::unique_ptr<AccessChannel> OpenChannel(ThreadId /*tid*/,
                                                     ComputeBladeId /*blade*/) {
    return nullptr;
  }

  // Opens the per-blade channel group over this system's channels (ChannelGroup contract
  // in src/core/access_channel.h): when >= 2 replay threads share a blade, the engine
  // registers their channels as members, validates all their submitted runs in one pass
  // per blade, and commits the merged (clock, thread) stream as one batch per round.
  // Returning null opts the system out; the engine then falls back to per-thread channel
  // commits, which are always correct (and remain the conformance baseline alongside the
  // per-op reference path).
  virtual std::unique_ptr<ChannelGroup> OpenChannelGroup(ComputeBladeId /*blade*/) {
    return nullptr;
  }

  // Advances time-driven control-plane work (e.g. bounded-splitting epochs) to `now`
  // without performing an access. The replay engine calls this once after the final op so
  // trailing epoch boundaries run exactly as they would under serial replay.
  MIND_SERIALIZED_PATH virtual void AdvanceTo(SimTime /*now*/) {}

  // --- Owner-parallel coherence drains (src/workload/region_ownership.h) ---
  //
  // Opens the ownership-aware drain contract for an N-shard replay; see OwnerDrainOps
  // below. Returning null opts the system out: every drained op then takes the fully
  // serialized merge step, which is always correct (and is the pre-ownership behavior).
  virtual std::unique_ptr<OwnerDrainOps> OpenOwnerDrain(int /*num_shards*/) {
    return nullptr;
  }

  // --- Pattern-aware prefetching (src/prefetch/prefetch.h) ---
  //
  // Selects the prefetch policy for subsequent accesses (call before replay starts; the
  // default kNone keeps every system bit-identical to its non-prefetching behavior).
  // Returns false when the system has no prefetch support (the interface default).
  virtual bool SetPrefetchPolicy(PrefetchPolicy /*policy*/) { return false; }

  // Aggregated prefetch accounting across the system's engines. Non-const: systems may
  // lazily classify still-installed-but-evicted pages while aggregating.
  virtual PrefetchStats prefetch_stats() { return {}; }

  // --- Observability (src/obs/, docs/observability.md) ---
  //
  // Installs (or with nullptr, removes) the semantic-event trace sink. Systems
  // emit only from serialized paths, so the sink sees events in exact global
  // (clock, thread) order; with no sink installed the hooks are a null-pointer
  // branch off the hot path. Returns false when the system does not emit
  // events (the interface default).
  virtual bool SetTraceSink(TraceSink* /*sink*/) { return false; }

  // Publishes the system's counter blocks into `reg` under "<prefix>/...".
  // The default covers the interface-level blocks; systems with extra state
  // (MIND's RackStats, bounded-splitting stats) extend it. Serialized-path
  // only: the replay engine calls this at epoch boundaries and end of run.
  virtual void CollectMetrics(MetricsRegistry* reg, const std::string& prefix) {
    const SystemCounters c = counters();
    reg->SetCounter(prefix + "/counters/total_accesses", c.total_accesses);
    reg->SetCounter(prefix + "/counters/local_hits", c.local_hits);
    reg->SetCounter(prefix + "/counters/remote_accesses", c.remote_accesses);
    reg->SetCounter(prefix + "/counters/invalidations", c.invalidations);
    reg->SetCounter(prefix + "/counters/pages_flushed", c.pages_flushed);
    reg->SetCounter(prefix + "/counters/false_invalidations", c.false_invalidations);
    reg->SetCounter(prefix + "/breakdown/fault_ns", c.breakdown_sums.fault);
    reg->SetCounter(prefix + "/breakdown/network_ns", c.breakdown_sums.network);
    reg->SetCounter(prefix + "/breakdown/inv_queue_ns", c.breakdown_sums.inv_queue);
    reg->SetCounter(prefix + "/breakdown/inv_tlb_ns", c.breakdown_sums.inv_tlb);
    reg->SetCounter(prefix + "/breakdown/fabric_wait_ns", c.breakdown_sums.fabric_wait);
    const FaultCounters f = fault_counters();
    reg->SetCounter(prefix + "/fault/timeouts", f.timeouts);
    reg->SetCounter(prefix + "/fault/retransmissions", f.retransmissions);
    reg->SetCounter(prefix + "/fault/resets_triggered", f.resets_triggered);
    reg->SetCounter(prefix + "/fault/pages_flushed_by_reset", f.pages_flushed_by_reset);
    reg->SetCounter(prefix + "/fault/drains_completed", f.drains_completed);
    reg->SetCounter(prefix + "/fault/drain_pages_migrated", f.drain_pages_migrated);
    reg->SetCounter(prefix + "/fault/stalled_deliveries", f.stalled_deliveries);
  }
};

}  // namespace mind

#endif  // MIND_SRC_BASELINES_MEMORY_SYSTEM_H_
