// Common replay interface over the three compared systems (§7, "Compared systems").
//
// The paper captures each workload's memory accesses once (with Intel PIN) and replays the
// *identical* access stream against MIND, GAM and FastSwap through a memory-access emulator.
// MemorySystem is that emulator's system-side interface: allocate segments, register worker
// threads on blades, and issue timed accesses.
#ifndef MIND_SRC_BASELINES_MEMORY_SYSTEM_H_
#define MIND_SRC_BASELINES_MEMORY_SYSTEM_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/access.h"

namespace mind {

// Counters every compared system reports; MIND additionally exposes RackStats.
struct SystemCounters {
  uint64_t total_accesses = 0;
  uint64_t local_hits = 0;
  uint64_t remote_accesses = 0;
  uint64_t invalidations = 0;
  uint64_t pages_flushed = 0;
  uint64_t false_invalidations = 0;
  LatencyBreakdown breakdown_sums;
};

class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int num_compute_blades() const = 0;

  // Allocates a segment of the workload's address space (setup phase; not timed).
  virtual Result<VirtAddr> Alloc(uint64_t size) = 0;

  // Registers a worker thread pinned to `blade`. Systems without multi-blade support
  // (FastSwap) reject blades other than 0.
  virtual Result<ThreadId> RegisterThread(ComputeBladeId blade) = 0;

  // One timed memory access from `tid` (running on `blade`) at logical time `now`.
  virtual AccessResult Access(ThreadId tid, ComputeBladeId blade, VirtAddr va, AccessType type,
                              SimTime now) = 0;

  [[nodiscard]] virtual SystemCounters counters() const = 0;
};

}  // namespace mind

#endif  // MIND_SRC_BASELINES_MEMORY_SYSTEM_H_
