// Common replay interface over the three compared systems (§7, "Compared systems").
//
// The paper captures each workload's memory accesses once (with Intel PIN) and replays the
// *identical* access stream against MIND, GAM and FastSwap through a memory-access emulator.
// MemorySystem is that emulator's system-side interface: allocate segments, register worker
// threads on blades, and issue timed accesses.
#ifndef MIND_SRC_BASELINES_MEMORY_SYSTEM_H_
#define MIND_SRC_BASELINES_MEMORY_SYSTEM_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/access.h"

namespace mind {

// Counters every compared system reports; MIND additionally exposes RackStats.
struct SystemCounters {
  uint64_t total_accesses = 0;
  uint64_t local_hits = 0;
  uint64_t remote_accesses = 0;
  uint64_t invalidations = 0;
  uint64_t pages_flushed = 0;
  uint64_t false_invalidations = 0;
  LatencyBreakdown breakdown_sums;

  // Accumulates another counter block (per-shard replay counters fold into one report
  // without double-counting: each access is accounted by exactly one shard or by the
  // system itself, never both).
  void Merge(const SystemCounters& o) {
    total_accesses += o.total_accesses;
    local_hits += o.local_hits;
    remote_accesses += o.remote_accesses;
    invalidations += o.invalidations;
    pages_flushed += o.pages_flushed;
    false_invalidations += o.false_invalidations;
    breakdown_sums += o.breakdown_sums;
  }

  // Field-wise delta over a run (counters are monotonic).
  [[nodiscard]] SystemCounters DeltaSince(const SystemCounters& before) const {
    SystemCounters d;
    d.total_accesses = total_accesses - before.total_accesses;
    d.local_hits = local_hits - before.local_hits;
    d.remote_accesses = remote_accesses - before.remote_accesses;
    d.invalidations = invalidations - before.invalidations;
    d.pages_flushed = pages_flushed - before.pages_flushed;
    d.false_invalidations = false_invalidations - before.false_invalidations;
    d.breakdown_sums.fault = breakdown_sums.fault - before.breakdown_sums.fault;
    d.breakdown_sums.network = breakdown_sums.network - before.breakdown_sums.network;
    d.breakdown_sums.inv_queue = breakdown_sums.inv_queue - before.breakdown_sums.inv_queue;
    d.breakdown_sums.inv_tlb = breakdown_sums.inv_tlb - before.breakdown_sums.inv_tlb;
    return d;
  }
};

class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int num_compute_blades() const = 0;

  // Allocates a segment of the workload's address space (setup phase; not timed).
  virtual Result<VirtAddr> Alloc(uint64_t size) = 0;

  // Registers a worker thread pinned to `blade`. Systems without multi-blade support
  // (FastSwap) reject blades other than 0.
  virtual Result<ThreadId> RegisterThread(ComputeBladeId blade) = 0;

  // One timed memory access from `tid` (running on `blade`) at logical time `now`.
  virtual AccessResult Access(ThreadId tid, ComputeBladeId blade, VirtAddr va, AccessType type,
                              SimTime now) = 0;

  [[nodiscard]] virtual SystemCounters counters() const = 0;

  // --- Sharded-replay access contract (thread safety) ---
  //
  // The sharded replay engine partitions compute blades across shards and drives blade-
  // local fast-path accesses concurrently; everything else (faults, coherence transitions,
  // control-plane epochs) stays on one serialized drain thread. A system opts into the
  // concurrent fast path by implementing the run-batched Peek/Commit pair:
  //
  //   * PeekLocalRun classifies a consecutive run of `n` ops for one thread WITHOUT
  //     mutating any state. It returns the length m of the leading prefix in which every
  //     op completes entirely within `blade` (a local cache hit whose outcome and latency
  //     depend on nothing another blade can change), filling hints[0..m) with opaque
  //     per-op commit tokens and *end_clock with the clock after op m-1 (the internal
  //     clock advances by latency + think per op). When every op in the prefix has the
  //     same nonzero thread-visible latency — the common case — *uniform_latency reports
  //     it and latencies[] is left untouched, letting the caller account the run in O(1);
  //     otherwise *uniform_latency is 0 and latencies[0..m) holds the exact per-op
  //     latencies a serial Access would report.
  //   * CommitLocalRun applies those hits' side effects (LRU recency, dirty bits) for a
  //     prefix the engine selects, identified by the peeked tokens. It may only touch
  //     state owned by `blade` plus thread-private state of `tid`.
  //   * LocalStateVersion is a monotonic counter over everything a Peek result depends on
  //     for `blade` (cache membership, writability, domain tags, permissions). The engine
  //     reuses peeked runs across rounds only while the version is unchanged and the
  //     thread itself has not advanced outside the fast path.
  //   * All three may be called concurrently from different shards for DIFFERENT blades,
  //     but never concurrently with Access/AdvanceTo or with calls for the same blade.
  //   * Counters must NOT be bumped by Peek/Commit — the replay shard accounts its own
  //     hits, and the merged report adds them to the system's serial-phase delta.
  //
  // The defaults opt out: every access then takes the serialized drain, which is always
  // correct (FastSwap/GAM run this way unchanged, at single-thread speed).
  virtual size_t PeekLocalRun(ThreadId /*tid*/, ComputeBladeId /*blade*/,
                              const LocalOp* /*ops*/, size_t /*n*/, SimTime clock,
                              SimTime /*think*/, SimTime* /*latencies*/, void** /*hints*/,
                              SimTime* end_clock, SimTime* uniform_latency) {
    *end_clock = clock;
    *uniform_latency = 0;
    return 0;
  }
  virtual void CommitLocalRun(ThreadId /*tid*/, ComputeBladeId /*blade*/,
                              void* const* /*hints*/, size_t /*n*/) {}
  [[nodiscard]] virtual uint64_t LocalStateVersion(ComputeBladeId /*blade*/) const {
    return 0;
  }

  // Advances time-driven control-plane work (e.g. bounded-splitting epochs) to `now`
  // without performing an access. The replay engine calls this once after the final op so
  // trailing epoch boundaries run exactly as they would under serial replay.
  virtual void AdvanceTo(SimTime /*now*/) {}
};

}  // namespace mind

#endif  // MIND_SRC_BASELINES_MEMORY_SYSTEM_H_
