#include "src/baselines/fastswap.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "src/core/channel_group.h"

namespace mind {

FastSwapSystem::FastSwapSystem(FastSwapConfig config)
    : config_(config),
      fabric_(1, config.num_memory_blades, config.latency, config.fabric),
      fault_plane_(config.fault) {
  cache_ = std::make_unique<DramCache>(config_.compute_cache_bytes >> kPageShift,
                                       /*store_data=*/false);
}

Result<VirtAddr> FastSwapSystem::Alloc(uint64_t size) {
  const VirtAddr base = next_va_;
  next_va_ += AlignUp(size, kPageSize);
  return base;
}

Result<ThreadId> FastSwapSystem::RegisterThread(ComputeBladeId blade) {
  if (blade != 0) {
    // The defining limitation: no transparent scaling beyond one compute blade (§2.2).
    return Status(ErrorCode::kInvalidArgument,
                  "FastSwap confines a process to a single compute blade");
  }
  return next_tid_++;
}

// Ownership-aware drain over the swap-cache hit path (contract notes in fastswap.h).
// Single blade means a single shard and sequential phases; scratch still isolates the
// counters so the engine's fold discipline is uniform across systems.
class FastSwapSystem::OwnerDrain final : public OwnerDrainOps {
 public:
  OwnerDrain(FastSwapSystem* sys, int num_shards)
      : sys_(sys), scratch_(static_cast<size_t>(num_shards)) {}

  MIND_PARALLEL_PHASE [[nodiscard]] bool Eligible(ThreadId /*tid*/, ComputeBladeId /*blade*/,
                                                  VirtAddr va, AccessType /*type*/,
                                                  SimTime /*now*/) const override {
    if (sys_->config_.prefetch.enabled()) {
      return false;  // Installs and late joins mutate the swap cache mid-drain.
    }
    const DramCache::Frame* frame = sys_->cache_->Peek(PageNumber(va));
    return frame != nullptr && !frame->prefetched;  // Read-write installs: any hit counts.
  }
  MIND_SERIALIZED_PATH [[nodiscard]] SimTime MinEligibleCost() const override {
    return sys_->lat().local_cache_hit;
  }
  MIND_PARALLEL_PHASE AccessResult AccessOwned(int shard, ThreadId /*tid*/,
                                               ComputeBladeId /*blade*/, VirtAddr va,
                                               AccessType type, SimTime now) override {
    Scratch& sc = scratch_[static_cast<size_t>(shard)];
    ++sc.total_accesses;
    DramCache::Frame* frame = sys_->cache_->Lookup(PageNumber(va));
    assert(frame != nullptr);  // Guaranteed by Eligible under the phase discipline.
    if (type == AccessType::kWrite) {
      frame->dirty = true;
    }
    ++sc.local_hits;
    AccessResult res;
    res.local_hit = true;
    res.latency = sys_->lat().local_cache_hit;
    res.completion = now + res.latency;
    return res;
  }
  MIND_SERIALIZED_PATH void Fold() override {
    for (Scratch& sc : scratch_) {
      sys_->counters_.total_accesses += sc.total_accesses;
      sys_->counters_.local_hits += sc.local_hits;
      sc = {};
    }
  }

 private:
  struct Scratch {
    uint64_t total_accesses = 0;
    uint64_t local_hits = 0;
  };

  FastSwapSystem* sys_;
  std::vector<Scratch> scratch_;
};

std::unique_ptr<OwnerDrainOps> FastSwapSystem::OpenOwnerDrain(int num_shards) {
  return std::make_unique<OwnerDrain>(this, num_shards);
}

MIND_SERIALIZED_PATH AccessResult FastSwapSystem::Access(ThreadId tid, ComputeBladeId blade,
                                                          VirtAddr va,
                                    AccessType type, SimTime now) {
  (void)blade;
  ++counters_.total_accesses;
  AccessResult res;
  const uint64_t page = PageNumber(va);

  auto hit = [&](DramCache::Frame* frame) {
    // Swap systems install pages read-write; any hit is a plain DRAM access.
    ++counters_.local_hits;
    if (type == AccessType::kWrite) {
      frame->dirty = true;
    }
    if (frame->prefetched) [[unlikely]] {  // First touch: the prefetch was useful.
      frame->prefetched = false;
      prefetch_.OnPrefetchedTouch(page);
    }
    res.local_hit = true;
    res.latency = lat().local_cache_hit;
    res.completion = now + res.latency;
    return res;
  };
  if (DramCache::Frame* frame = cache_->Lookup(page); frame != nullptr) {
    return hit(frame);
  }

  // Prefetch hooks live on the fault path only (the stream a swap prefetcher observes):
  // install arrived pages, join an in-flight fetch, or fall through to the real fault.
  if (config_.prefetch.enabled()) {
    InstallReadyPrefetches(now);
    if (DramCache::Frame* frame = cache_->Lookup(page); frame != nullptr) {
      return hit(frame);  // An arrived prefetch covers this fault.
    }
    if (auto it = prefetch_.in_flight.find(page); it != prefetch_.in_flight.end()) {
      // Demand fault joins the in-flight swap-in: resolves when the data lands (a late
      // prefetch — shortened the stall without hiding it). Read-write install, so the
      // demand completes either way.
      const BladePrefetchState::InFlight entry = it->second;
      prefetch_.in_flight.erase(it);
      prefetch_.RecomputeNextReady();
      entry.owner->OnLate();
      ++counters_.remote_accesses;
      // The thread still takes the page-fault trap, then blocks until the data lands.
      const SimTime landed =
          std::max(now + lat().page_fault_entry, entry.ready_at);
      InstallPage(page, landed, /*prefetched=*/false, nullptr);
      if (type == AccessType::kWrite) {
        cache_->MarkDirty(page);
      }
      const SimTime done = landed + lat().pte_install;
      res.latency = done - now;
      res.completion = done;
      res.breakdown.fault =
          lat().page_fault_entry + lat().pte_install;
      res.breakdown.network = res.latency - res.breakdown.fault;
      counters_.breakdown_sums += res.breakdown;
      if (trace_ != nullptr) [[unlikely]] {
        TraceEvent ev;
        ev.kind = TraceEventKind::kPrefetchUseful;
        ev.clock = now;
        ev.dur = done - now;
        ev.tid = tid;
        ev.a = page;
        trace_->Emit(ev);
      }
      PrefetchAfterFault(tid, page, done);
      return res;
    }
  }

  // Page fault: frontswap fetch from the backing memory blade through the ToR switch
  // (plain forwarding — no in-network memory logic).
  ++counters_.remote_accesses;
  SimTime t = now + lat().page_fault_entry;
  if (fault_plane_.lossy()) [[unlikely]] {
    // Lost RDMA reads are retried by the kernel; even an exhausted budget only delays the
    // fetch by the summed timeouts (no reset — there is no directory to wedge).
    t += fault_plane_.SendWithAck(0, t, 0).latency;
  }
  const MemoryBladeId m = BackingBlade(page);
  const auto rtt =
      fabric_.Rtt(Endpoint::Compute(0), Endpoint::Memory(m), MessageKind::kRdmaReadRequest,
                  MessageKind::kRdmaReadResponse, t, lat().memory_blade_service);
  t = rtt.complete + lat().pte_install;

  InstallPage(page, t, /*prefetched=*/false, nullptr);
  if (type == AccessType::kWrite) {
    cache_->MarkDirty(page);
  }

  res.latency = t - now;
  res.completion = t;
  res.breakdown.fault = lat().page_fault_entry + lat().pte_install;
  res.breakdown.fabric_wait =
      rtt.request.total_wait() + rtt.response.total_wait();
  res.breakdown.network =
      res.latency > res.breakdown.fault + res.breakdown.fabric_wait
          ? res.latency - res.breakdown.fault - res.breakdown.fabric_wait
          : 0;
  counters_.breakdown_sums += res.breakdown;
  if (trace_ != nullptr) [[unlikely]] {
    TraceEvent ev;
    ev.kind = TraceEventKind::kAccessSpan;
    ev.clock = now;
    ev.dur = t - now;
    ev.tid = tid;
    ev.a = va;
    ev.b = res.breakdown.fault;
    ev.c = TracePack32(res.breakdown.network, res.breakdown.fabric_wait);
    trace_->Emit(ev);
  }
  if (config_.prefetch.enabled()) {
    PrefetchAfterFault(tid, page, t);
  }
  return res;
}

// ---------------------------------------------------------------------------
// Swap-path prefetching (src/prefetch/prefetch.h): predictions issue after the demand
// fault completes, pages arrive asynchronously and fill the swap cache read-write.
// ---------------------------------------------------------------------------

PrefetchEngine& FastSwapSystem::EnsurePrefetchEngine(ThreadId tid) {
  return EnsureEngine(prefetch_engines_, tid, config_.prefetch);
}

void FastSwapSystem::InstallPage(uint64_t page, SimTime now, bool prefetched,
                                 PrefetchEngine* owner) {
  // Speculative swap-ins enter at the adaptive cold LRU depth (prefetch-aware eviction
  // priority); demand swap-ins stay MRU.
  auto evicted = prefetched
                     ? cache_->InsertPrefetched(page, /*writable=*/true, nullptr,
                                                /*pdid=*/0, prefetch_.cold_insert_depth())
                     : cache_->Insert(page, /*writable=*/true, nullptr);
  if (evicted.has_value()) {
    if (config_.prefetch.enabled()) {
      prefetch_.OnPageEvicted(evicted->page);  // Evicted-unused feedback.
    }
    if (evicted->dirty) {
      // Asynchronous write-back of the victim page.
      ++counters_.pages_flushed;
      (void)fabric_.Route(Endpoint::Compute(0),
                          Endpoint::Memory(BackingBlade(evicted->page)),
                          MessageKind::kRdmaWriteRequest, now);
    }
  }
  if (prefetched) {
    prefetch_.unused[page] = owner;
  }
}

void FastSwapSystem::InstallReadyPrefetches(SimTime now) {
  for (const auto& [page, entry] : prefetch_.TakeReady(now)) {
    entry.owner->OnInstalled();  // FastSwap has no invalidations: nothing goes stale.
    if (cache_->Find(page) != nullptr) {
      continue;
    }
    InstallPage(page, entry.ready_at, /*prefetched=*/true, entry.owner);
  }
  if (!prefetch_.rearm_requests.empty()) {
    // Re-arm requests from hit paths and channel/group commits: issue the next window at
    // the blade's first serialized point (see the same hook in Rack).
    for (size_t i = 0; i < prefetch_.rearm_requests.size(); ++i) {
      const BladePrefetchState::Rearm rearm = prefetch_.rearm_requests[i];
      IssuePrefetches(*rearm.engine, rearm.page, now);
    }
    prefetch_.rearm_requests.clear();
  }
}

MIND_SERIALIZED_PATH void FastSwapSystem::AdvanceTo(SimTime now) {
  if (!config_.prefetch.enabled()) {
    return;
  }
  InstallReadyPrefetches(now);
}

void FastSwapSystem::PrefetchAfterFault(ThreadId tid, uint64_t page, SimTime done) {
  PrefetchEngine& engine = EnsurePrefetchEngine(tid);
  engine.RecordFault(page);
  IssuePrefetches(engine, page, done);
}

void FastSwapSystem::IssuePrefetches(PrefetchEngine& engine, uint64_t page, SimTime done) {
  prefetch_scratch_.clear();
  engine.Predict(page, &prefetch_scratch_);
  // Occupancy feedback: skip (and shrink) the window when the trigger page's backing
  // blade port is already saturated with demand traffic.
  if (config_.prefetch.fabric_pressure_threshold < 1.0 &&
      fabric_.Utilization(Endpoint::Memory(BackingBlade(page))) >
          config_.prefetch.fabric_pressure_threshold) {
    engine.OnFabricPressure();
    return;
  }
  uint64_t last_issued = page;
  bool issued_any = false;
  uint64_t issued_count = 0;
  for (const uint64_t p : prefetch_scratch_) {
    if (!engine.HasInFlightRoom()) {
      break;  // Bounded in-flight queue.
    }
    const VirtAddr va = PageToAddr(p);
    if (va < first_va_ || va >= next_va_) {
      continue;  // Never swap in past the allocated address space.
    }
    if (cache_->Find(p) != nullptr ||
        prefetch_.in_flight.find(p) != prefetch_.in_flight.end()) {
      continue;
    }
    // Frontswap read-ahead: the demand fetch's exact hops, issued after it and queueing
    // behind it on the single blade's NIC.
    const MemoryBladeId m = BackingBlade(p);
    const auto pf_rtt = fabric_.Rtt(Endpoint::Compute(0), Endpoint::Memory(m),
                                    MessageKind::kRdmaReadRequest,
                                    MessageKind::kRdmaReadResponse, done,
                                    lat().memory_blade_service);
    const SimTime ready = pf_rtt.complete + lat().pte_install;
    engine.OnIssued();
    prefetch_.in_flight[p] =
        BladePrefetchState::InFlight{ready, 0, &engine, /*pdid=*/0};
    prefetch_.NoteIssued(ready);
    last_issued = p;
    issued_any = true;
    ++issued_count;
  }
  if (issued_any) {
    engine.NoteIssuedWindow(page, last_issued);
    if (trace_ != nullptr) [[unlikely]] {
      TraceEvent ev;
      ev.kind = TraceEventKind::kPrefetchIssue;
      ev.clock = done;
      ev.a = page;
      ev.b = issued_count;
      trace_->Emit(ev);
    }
  }
}

PrefetchStats FastSwapSystem::prefetch_stats() {
  prefetch_.ResolveEvictedUnused([&](uint64_t page) {
    const DramCache::Frame* f = cache_->Peek(page);
    return f != nullptr && f->prefetched;
  });
  return MergeEngineStats(prefetch_engines_);
}

// ---------------------------------------------------------------------------
// AccessChannel over the swap-cache hit path (see the contract notes in fastswap.h).
// ---------------------------------------------------------------------------

class FastSwapSystem::Channel final : public AccessChannel {
 public:
  explicit Channel(FastSwapSystem* sys) : sys_(sys) {}

  MIND_PARALLEL_PHASE SubmitResult Submit(const LocalOp* ops, size_t n, SimTime clock,
                                          SimTime think,
                      Completion* completions) override {
    DramCache& cache = *sys_->cache_;
    const SimTime hit_latency = sys_->lat().local_cache_hit;
    stamps_.Clear();
    SubmitResult out;
    size_t i = 0;
    for (; i < n; ++i) {
      DramCache::Frame* frame = cache.Find(PageNumber(ops[i].va));
      if (frame == nullptr) {
        break;
      }
      // Swap systems install pages read-write; any hit is a plain DRAM access.
      stamps_.Add(cache, DramCache::RegionOf(PageNumber(ops[i].va)));
      completions[i].latency = hit_latency;
      completions[i].token.bits =
          reinterpret_cast<uintptr_t>(frame) |
          static_cast<uintptr_t>(ops[i].type == AccessType::kWrite);
      clock += hit_latency + think;
    }
    out.accepted = i;
    out.end_clock = clock;
    // uniform_latency == 0 is reserved for "consult per-op latencies", so a zero-cost hit
    // configuration reports per-op (all-zero) latencies instead.
    out.uniform_latency = hit_latency;
    return out;
  }

  MIND_PARALLEL_PHASE [[nodiscard]] bool RunValid() const override {
    return stamps_.Valid(*sys_->cache_);
  }

  MIND_PARALLEL_PHASE void Commit(Completion* completions, size_t n,
                                  SimTime /*clock*/) override {
    DramCache& cache = *sys_->cache_;
    for (size_t i = 0; i < n; ++i) {
      ApplyCommitToken(cache, completions[i],
                       [&](uint64_t page) { sys_->prefetch_.OnPrefetchedTouch(page); });
    }
  }

 private:
  friend class FastSwapSystem::Group;

  FastSwapSystem* sys_;
  DramCache::RegionStamps stamps_;  // Dependency footprint of the last submitted run.
};

std::unique_ptr<AccessChannel> FastSwapSystem::OpenChannel(ThreadId /*tid*/,
                                                           ComputeBladeId blade) {
  return blade == 0 ? std::make_unique<Channel>(this) : nullptr;
}

// ChannelGroup over the single swap cache (contract in access_channel.h, merge machinery
// in channel_group.h): the trivial uniform path. Every member's hit latency is the fixed
// local_cache_hit, so the merged batch is pure LRU/dirty interleaving in (clock, thread)
// order with one RecordN per lane; one stamp pass validates every member's run.
class FastSwapSystem::Group final : public ChannelGroup {
 public:
  explicit Group(FastSwapSystem* sys) : sys_(sys) {}

  size_t Add(AccessChannel* channel) override {
    members_.push_back(static_cast<Channel*>(channel));
    return members_.size() - 1;
  }

  MIND_PARALLEL_PHASE [[nodiscard]] uint64_t ValidMask() const override {
    const DramCache& cache = *sys_->cache_;
    uint64_t mask = 0;
    for (size_t m = 0; m < members_.size(); ++m) {
      if (members_[m]->stamps_.Valid(cache)) {
        mask |= uint64_t{1} << m;
      }
    }
    return mask;
  }

  MIND_PARALLEL_PHASE uint64_t CommitMerged(GroupLane* lanes, size_t n, SimTime horizon,
                                            SimTime think, Histogram& hist) override {
    DramCache& cache = *sys_->cache_;
    return GroupMergeCommit(
        lanes, n, horizon, think, hist,
        [](GroupLane& ln, size_t idx) {
          return ln.uniform_latency != 0 ? ln.uniform_latency : ln.comps[idx].latency;
        },
        [&](GroupLane& ln, size_t idx) {
          ApplyCommitToken(cache, ln.comps[idx],
                           [&](uint64_t page) { sys_->prefetch_.OnPrefetchedTouch(page); });
        });
  }

 private:
  FastSwapSystem* sys_;
  std::vector<Channel*> members_;
};

std::unique_ptr<ChannelGroup> FastSwapSystem::OpenChannelGroup(ComputeBladeId blade) {
  return blade == 0 ? std::make_unique<Group>(this) : nullptr;
}

}  // namespace mind
