#include "src/baselines/fastswap.h"

#include <algorithm>

namespace mind {

FastSwapSystem::FastSwapSystem(FastSwapConfig config)
    : config_(config), fabric_(1, config.num_memory_blades, config.latency) {
  cache_ = std::make_unique<DramCache>(config_.compute_cache_bytes >> kPageShift,
                                       /*store_data=*/false);
}

Result<VirtAddr> FastSwapSystem::Alloc(uint64_t size) {
  const VirtAddr base = next_va_;
  next_va_ += AlignUp(size, kPageSize);
  return base;
}

Result<ThreadId> FastSwapSystem::RegisterThread(ComputeBladeId blade) {
  if (blade != 0) {
    // The defining limitation: no transparent scaling beyond one compute blade (§2.2).
    return Status(ErrorCode::kInvalidArgument,
                  "FastSwap confines a process to a single compute blade");
  }
  return next_tid_++;
}

AccessResult FastSwapSystem::Access(ThreadId tid, ComputeBladeId blade, VirtAddr va,
                                    AccessType type, SimTime now) {
  (void)tid;
  (void)blade;
  ++counters_.total_accesses;
  AccessResult res;
  const uint64_t page = PageNumber(va);

  DramCache::Frame* frame = cache_->Lookup(page);
  if (frame != nullptr) {
    // Swap systems install pages read-write; any hit is a plain DRAM access.
    ++counters_.local_hits;
    if (type == AccessType::kWrite) {
      frame->dirty = true;
    }
    res.local_hit = true;
    res.latency = config_.latency.local_cache_hit;
    res.completion = now + res.latency;
    return res;
  }

  // Page fault: frontswap fetch from the backing memory blade through the ToR switch
  // (plain forwarding — no in-network memory logic).
  ++counters_.remote_accesses;
  SimTime t = now + config_.latency.page_fault_entry;
  auto up = fabric_.ToSwitch(Endpoint::Compute(0), MessageKind::kRdmaReadRequest, t);
  t = up.arrival + config_.latency.switch_pipeline;
  const MemoryBladeId m = BackingBlade(page);
  auto req = fabric_.FromSwitch(Endpoint::Memory(m), MessageKind::kRdmaReadRequest, t);
  t = req.arrival + config_.latency.memory_blade_service;
  auto resp_up = fabric_.ToSwitch(Endpoint::Memory(m), MessageKind::kRdmaReadResponse, t);
  auto resp_down = fabric_.FromSwitch(Endpoint::Compute(0), MessageKind::kRdmaReadResponse,
                                      resp_up.arrival + config_.latency.switch_pipeline);
  t = resp_down.arrival + config_.latency.pte_install;

  auto evicted = cache_->Insert(page, /*writable=*/true, nullptr);
  if (evicted.has_value() && evicted->dirty) {
    // Asynchronous write-back of the victim page.
    ++counters_.pages_flushed;
    auto wb_up = fabric_.ToSwitch(Endpoint::Compute(0), MessageKind::kRdmaWriteRequest, t);
    (void)fabric_.FromSwitch(Endpoint::Memory(BackingBlade(evicted->page)),
                             MessageKind::kRdmaWriteRequest,
                             wb_up.arrival + config_.latency.switch_pipeline);
  }
  if (type == AccessType::kWrite) {
    cache_->MarkDirty(page);
  }

  res.latency = t - now;
  res.completion = t;
  res.breakdown.fault = config_.latency.page_fault_entry + config_.latency.pte_install;
  res.breakdown.network = res.latency - res.breakdown.fault;
  counters_.breakdown_sums += res.breakdown;
  return res;
}

// ---------------------------------------------------------------------------
// AccessChannel over the swap-cache hit path (see the contract notes in fastswap.h).
// ---------------------------------------------------------------------------

class FastSwapSystem::Channel final : public AccessChannel {
 public:
  explicit Channel(FastSwapSystem* sys) : sys_(sys) {}

  SubmitResult Submit(const LocalOp* ops, size_t n, SimTime clock, SimTime think,
                      Completion* completions) override {
    DramCache& cache = *sys_->cache_;
    const SimTime hit_latency = sys_->config_.latency.local_cache_hit;
    stamps_.Clear();
    SubmitResult out;
    size_t i = 0;
    for (; i < n; ++i) {
      DramCache::Frame* frame = cache.Find(PageNumber(ops[i].va));
      if (frame == nullptr) {
        break;
      }
      // Swap systems install pages read-write; any hit is a plain DRAM access.
      stamps_.Add(cache, DramCache::RegionOf(PageNumber(ops[i].va)));
      completions[i].latency = hit_latency;
      completions[i].token.bits =
          reinterpret_cast<uintptr_t>(frame) |
          static_cast<uintptr_t>(ops[i].type == AccessType::kWrite);
      clock += hit_latency + think;
    }
    out.accepted = i;
    out.end_clock = clock;
    // uniform_latency == 0 is reserved for "consult per-op latencies", so a zero-cost hit
    // configuration reports per-op (all-zero) latencies instead.
    out.uniform_latency = hit_latency;
    return out;
  }

  [[nodiscard]] bool RunValid() const override { return stamps_.Valid(*sys_->cache_); }

  void Commit(Completion* completions, size_t n, SimTime /*clock*/) override {
    DramCache& cache = *sys_->cache_;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t tagged = completions[i].token.bits;
      auto* frame = reinterpret_cast<DramCache::Frame*>(tagged & ~uint64_t{1});
      cache.Touch(frame);
      if ((tagged & 1) != 0) {
        frame->dirty = true;
      }
    }
  }

 private:
  FastSwapSystem* sys_;
  DramCache::RegionStamps stamps_;  // Dependency footprint of the last submitted run.
};

std::unique_ptr<AccessChannel> FastSwapSystem::OpenChannel(ThreadId /*tid*/,
                                                           ComputeBladeId blade) {
  return blade == 0 ? std::make_unique<Channel>(this) : nullptr;
}

}  // namespace mind
