// FastSwap-like swap-based disaggregated memory baseline (§7, "Compared systems").
//
// FastSwap [Amaro et al., EuroSys'20] exposes far memory through the kernel swap path: page
// faults fetch 4 KB pages from remote memory over RDMA, evictions push them back. There is
// *no* coherence machinery — and therefore no cross-blade sharing: a process is confined to
// one compute blade (the non-transparent end of the paper's design space, §2.2). Intra-blade
// it scales almost linearly, like MIND (Fig. 5 left).
#ifndef MIND_SRC_BASELINES_FASTSWAP_H_
#define MIND_SRC_BASELINES_FASTSWAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/baselines/memory_system.h"
#include "src/blade/dram_cache.h"
#include "src/common/types.h"
#include "src/fault/fault_plane.h"
#include "src/net/fabric.h"
#include "src/prefetch/prefetch.h"
#include "src/sim/latency_model.h"

namespace mind {

struct FastSwapConfig {
  int num_memory_blades = 8;
  uint64_t compute_cache_bytes = 512ull * 1024 * 1024;
  uint64_t chunk_pages = 512;  // Remote placement granularity (2 MB).
  LatencyModel latency;
  // Fabric queueing discipline (src/net/queue_model.h); default kFifo = historical timing.
  FabricConfig fabric;
  // Swap-path prefetching (the canonical beneficiary — Leap runs exactly here): engines
  // watch the fault stream and fill the swap cache ahead of it, read-write like every
  // swapped-in page. Default off (src/prefetch/prefetch.h).
  PrefetchConfig prefetch;
  // Fault injection on the swap RTT (loss model only). The kernel retries a lost RDMA
  // read, so an exhausted retransmission budget just pays the summed timeouts before the
  // fetch proceeds — there is no directory, hence no reset concept.
  FaultPlaneConfig fault;
};

class FastSwapSystem final : public MemorySystem {
 public:
  explicit FastSwapSystem(FastSwapConfig config);

  [[nodiscard]] std::string name() const override { return "FastSwap"; }
  [[nodiscard]] int num_compute_blades() const override { return 1; }

  Result<VirtAddr> Alloc(uint64_t size) override;
  Result<ThreadId> RegisterThread(ComputeBladeId blade) override;
  MIND_SERIALIZED_PATH AccessResult Access(ThreadId tid, ComputeBladeId blade, VirtAddr va,
                                           AccessType type,
                      SimTime now) override;
  [[nodiscard]] SystemCounters counters() const override { return counters_; }

  // Batched channel contract: a FastSwap hit is a plain DRAM access at a fixed latency
  // (pages are installed read-write, there is no coherence machinery), so whole runs
  // classify with an exact uniform latency (see src/core/access_channel.h). Single blade —
  // the channel fast path still removes the per-op virtual Access dispatch under one-shard
  // replay.
  std::unique_ptr<AccessChannel> OpenChannel(ThreadId tid, ComputeBladeId blade) override;

  // Per-blade channel group (trivially uniform: every hit costs the fixed swap-cache
  // latency, so the merged batch accounts across threads with one RecordN per lane; the
  // merge itself still interleaves LRU recency in exact (clock, thread) order).
  std::unique_ptr<ChannelGroup> OpenChannelGroup(ComputeBladeId blade) override;

  // Ownership-aware drain contract (OwnerDrainOps, memory_system.h): any cached page is a
  // fixed-latency read-write hit, so eligibility is just presence (with prefetching off).
  // Single compute blade — every region is home, one shard, so owner phases are never
  // threaded here; the contract still lets single-shard replay retire hit bursts without
  // the per-op heap churn of the serialized merge step.
  std::unique_ptr<OwnerDrainOps> OpenOwnerDrain(int num_shards) override;

  bool SetPrefetchPolicy(PrefetchPolicy policy) override {
    config_.prefetch.policy = policy;
    return true;
  }
  PrefetchStats prefetch_stats() override;

  [[nodiscard]] FaultCounters fault_counters() const override {
    return fault_plane_.counters();
  }

  // Interface blocks plus the fabric's counters and per-port occupancy gauges.
  void CollectMetrics(MetricsRegistry* reg, const std::string& prefix) override {
    MemorySystem::CollectMetrics(reg, prefix);
    fabric_.CollectMetrics(reg, prefix + "/fabric");
  }

  // Drains pending prefetch installs and re-armed windows (the re-arm gap fix; see
  // MemorySystem::AdvanceTo). Called once after the final op in every replay mode, so it
  // is mode-invariant.
  MIND_SERIALIZED_PATH void AdvanceTo(SimTime now) override;

  // Semantic-event tracing (src/obs/): every FastSwap emission site is on the
  // serialized miss path; a null sink costs one pointer compare per miss.
  bool SetTraceSink(TraceSink* sink) override {
    trace_ = sink;
    fault_plane_.SetTraceSink(sink);
    return true;
  }

 private:
  class Channel;
  class Group;
  class OwnerDrain;
  [[nodiscard]] MemoryBladeId BackingBlade(uint64_t page) const {
    return static_cast<MemoryBladeId>((page / config_.chunk_pages) %
                                      static_cast<uint64_t>(config_.num_memory_blades));
  }
  // The single LatencyModel instance lives in the fabric; this is the constant view.
  [[nodiscard]] const LatencyModel& lat() const { return fabric_.latency(); }

  // --- Prefetch internals (all driven from the serialized Access path) ---
  PrefetchEngine& EnsurePrefetchEngine(ThreadId tid);
  // Swap-in of one page at `now`: insert read-write, flush the dirty victim if any.
  void InstallPage(uint64_t page, SimTime now, bool prefetched, PrefetchEngine* owner);
  void InstallReadyPrefetches(SimTime now);
  void PrefetchAfterFault(ThreadId tid, uint64_t page, SimTime done);
  // The issue half of PrefetchAfterFault, also driven by re-arm requests.
  void IssuePrefetches(PrefetchEngine& engine, uint64_t page, SimTime done);

  FastSwapConfig config_;
  Fabric fabric_;
  FaultPlane fault_plane_;
  TraceSink* trace_ = nullptr;  // Serialized-path writes only, like counters_.
  std::unique_ptr<DramCache> cache_;
  SystemCounters counters_;
  VirtAddr next_va_ = 0x0000'7000'0000'0000ull;
  const VirtAddr first_va_ = next_va_;  // Prefetch candidates stay inside [first, next).
  ThreadId next_tid_ = 1;
  std::unordered_map<ThreadId, std::unique_ptr<PrefetchEngine>> prefetch_engines_;
  BladePrefetchState prefetch_;  // Single compute blade.
  std::vector<uint64_t> prefetch_scratch_;
};

}  // namespace mind

#endif  // MIND_SRC_BASELINES_FASTSWAP_H_
