// MemorySystem adapter over the MIND rack.
#ifndef MIND_SRC_BASELINES_MIND_SYSTEM_H_
#define MIND_SRC_BASELINES_MIND_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/memory_system.h"
#include "src/core/mind.h"

namespace mind {

class MindSystem final : public MemorySystem {
 public:
  explicit MindSystem(RackConfig config, std::string label = "MIND")
      : rack_(std::make_unique<Rack>(config)), label_(std::move(label)) {
    auto pid = rack_->Exec("workload");
    pid_ = *pid;
    pdid_ = *rack_->controller().PdidOf(pid_);
  }

  [[nodiscard]] std::string name() const override { return label_; }
  [[nodiscard]] int num_compute_blades() const override {
    return rack_->config().num_compute_blades;
  }

  Result<VirtAddr> Alloc(uint64_t size) override {
    return rack_->Mmap(pid_, size, PermClass::kReadWrite);
  }

  Result<ThreadId> RegisterThread(ComputeBladeId blade) override {
    auto placement = rack_->SpawnThread(pid_, blade);
    if (!placement.ok()) {
      return placement.status();
    }
    return placement->tid;
  }

  MIND_SERIALIZED_PATH AccessResult Access(ThreadId tid, ComputeBladeId blade, VirtAddr va,
                                           AccessType type, SimTime now) override {
    return rack_->Access(AccessRequest{tid, blade, pdid_, va, type, now});
  }

  // Batched channel contract: MIND's blade-local hit path completes without touching any
  // cross-blade state, so the rack's channel classifies whole runs with exact latencies
  // (see the contract notes in rack.h and src/core/access_channel.h).
  std::unique_ptr<AccessChannel> OpenChannel(ThreadId tid, ComputeBladeId blade) override {
    return rack_->OpenChannel(tid, blade, pdid_);
  }
  std::unique_ptr<ChannelGroup> OpenChannelGroup(ComputeBladeId blade) override {
    return rack_->OpenChannelGroup(blade);
  }
  MIND_SERIALIZED_PATH void AdvanceTo(SimTime now) override { rack_->AdvanceTo(now); }

  // Ownership-aware drain contract (OwnerDrainOps, memory_system.h) over the rack's
  // owner-hit path: eligible ops are blade-confined TSO local hits, each costing exactly
  // local_cache_hit; the next bounded-splitting epoch boundary is the rack's serialized
  // boundary (scheduled fault drains are clamped by the engine via NextScheduledFaultAt).
  std::unique_ptr<OwnerDrainOps> OpenOwnerDrain(int num_shards) override {
    class Drain final : public OwnerDrainOps {
     public:
      Drain(Rack* rack, ProtDomainId pdid, int num_shards)
          : rack_(rack), pdid_(pdid), scratch_(static_cast<size_t>(num_shards)) {}

      MIND_PARALLEL_PHASE [[nodiscard]] bool Eligible(ThreadId tid, ComputeBladeId blade,
                                                      VirtAddr va, AccessType type,
                                                      SimTime now) const override {
        return rack_->OwnerHitEligible(AccessRequest{tid, blade, pdid_, va, type, now});
      }
      MIND_SERIALIZED_PATH [[nodiscard]] SimTime MinEligibleCost() const override {
        return rack_->config().latency.local_cache_hit;
      }
      MIND_SERIALIZED_PATH [[nodiscard]] SimTime NextSerialBoundary() const override {
        return rack_->NextSplittingEpochEnd();
      }
      MIND_PARALLEL_PHASE AccessResult AccessOwned(int shard, ThreadId tid,
                                                   ComputeBladeId blade, VirtAddr va,
                                                   AccessType type, SimTime now) override {
        return rack_->AccessOwnedHit(AccessRequest{tid, blade, pdid_, va, type, now},
                                     &scratch_[static_cast<size_t>(shard)]);
      }
      MIND_SERIALIZED_PATH void Fold() override {
        for (Rack::OwnerHitScratch& s : scratch_) {
          rack_->FoldOwnerHits(s);
          s = {};
        }
      }

     private:
      Rack* rack_;
      ProtDomainId pdid_;
      std::vector<Rack::OwnerHitScratch> scratch_;
    };
    return std::make_unique<Drain>(rack_.get(), pdid_, num_shards);
  }

  bool SetPrefetchPolicy(PrefetchPolicy policy) override {
    rack_->SetPrefetchPolicy(policy);
    return true;
  }
  PrefetchStats prefetch_stats() override { return rack_->prefetch_stats(); }

  [[nodiscard]] SystemCounters counters() const override {
    const RackStats& s = rack_->stats();
    SystemCounters c;
    c.total_accesses = s.total_accesses;
    c.local_hits = s.local_hits;
    c.remote_accesses = s.remote_accesses;
    c.invalidations = s.invalidations_sent;
    c.pages_flushed = s.pages_flushed;
    c.false_invalidations = s.false_invalidations;
    c.breakdown_sums = s.breakdown_sums;
    return c;
  }

  [[nodiscard]] FaultCounters fault_counters() const override {
    return rack_->fault_plane().counters();
  }
  [[nodiscard]] SimTime NextScheduledFaultAt() const override {
    return rack_->NextScheduledFaultAt();
  }

  bool SetTraceSink(TraceSink* sink) override {
    rack_->SetTraceSink(sink);
    return true;
  }

  // Interface blocks plus MIND's richer RackStats and the bounded-splitting
  // controller state, under the same prefix tree.
  void CollectMetrics(MetricsRegistry* reg, const std::string& prefix) override {
    MemorySystem::CollectMetrics(reg, prefix);
    const RackStats& s = rack_->stats();
    reg->SetCounter(prefix + "/rack/clean_drops", s.clean_drops);
    reg->SetCounter(prefix + "/rack/evict_writebacks", s.evict_writebacks);
    reg->SetCounter(prefix + "/rack/permission_denials", s.permission_denials);
    reg->SetCounter(prefix + "/rack/directory_capacity_evictions",
                    s.directory_capacity_evictions);
    reg->SetCounter(prefix + "/rack/write_upgrades", s.write_upgrades);
    reg->SetCounter(prefix + "/rack/transitions/i_to_s", s.transitions_i_to_s);
    reg->SetCounter(prefix + "/rack/transitions/i_to_m", s.transitions_i_to_m);
    reg->SetCounter(prefix + "/rack/transitions/s_to_s", s.transitions_s_to_s);
    reg->SetCounter(prefix + "/rack/transitions/s_to_m", s.transitions_s_to_m);
    reg->SetCounter(prefix + "/rack/transitions/m_to_s", s.transitions_m_to_s);
    reg->SetCounter(prefix + "/rack/transitions/m_to_m", s.transitions_m_to_m);
    reg->SetCounter(prefix + "/rack/transitions/m_stay", s.transitions_m_stay);
    const BoundedSplittingStats& bs = rack_->bounded_splitting().stats();
    reg->SetCounter(prefix + "/splitting/epochs", bs.epochs);
    reg->SetCounter(prefix + "/splitting/splits", bs.splits);
    reg->SetCounter(prefix + "/splitting/merges", bs.merges);
    reg->SetCounter(prefix + "/splitting/split_failures", bs.split_failures);
    reg->SetGauge(prefix + "/splitting/last_threshold", bs.last_threshold);
    reg->SetGauge(prefix + "/splitting/current_c", bs.current_c);
    rack_->fabric().CollectMetrics(reg, prefix + "/fabric");
  }

  [[nodiscard]] Rack& rack() { return *rack_; }
  [[nodiscard]] ProcessId pid() const { return pid_; }

 private:
  std::unique_ptr<Rack> rack_;
  std::string label_;
  ProcessId pid_ = kInvalidProcess;
  ProtDomainId pdid_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_BASELINES_MIND_SYSTEM_H_
