#include "src/prefetch/prefetch.h"

namespace mind {

std::optional<PrefetchPolicy> ParsePrefetchPolicy(std::string_view s) {
  if (s == "none") {
    return PrefetchPolicy::kNone;
  }
  if (s == "nextn") {
    return PrefetchPolicy::kNextN;
  }
  if (s == "stride") {
    return PrefetchPolicy::kMajorityStride;
  }
  return std::nullopt;
}

int64_t StrideDetector::MajorityStride() const {
  if (size_ < 2) {
    return 0;
  }
  const uint32_t deltas = size_ - 1;
  if (deltas < kWarmupDeltas) {
    return 0;
  }
  const uint32_t cap = static_cast<uint32_t>(ring_.size());
  const uint32_t oldest = (head_ + cap - size_) % cap;
  auto delta_at = [&](uint32_t i) {
    const uint64_t a = ring_[(oldest + i) % cap];
    const uint64_t b = ring_[(oldest + i + 1) % cap];
    return static_cast<int64_t>(b - a);
  };
  // Boyer-Moore majority vote, then a verification count: the candidate is only a real
  // stride if strictly more than half the deltas agree (Leap's majority criterion, which
  // is what keeps interleaved streams and random noise from producing a bogus stride).
  int64_t candidate = 0;
  uint32_t votes = 0;
  for (uint32_t i = 0; i < deltas; ++i) {
    const int64_t d = delta_at(i);
    if (votes == 0) {
      candidate = d;
      votes = 1;
    } else if (d == candidate) {
      ++votes;
    } else {
      --votes;
    }
  }
  uint32_t count = 0;
  for (uint32_t i = 0; i < deltas; ++i) {
    if (delta_at(i) == candidate) {
      ++count;
    }
  }
  if (candidate == 0 || count * 2 <= deltas) {
    return 0;
  }
  return candidate;
}

void PrefetchEngine::Predict(uint64_t page, std::vector<uint64_t>* out) const {
  int64_t stride = 0;
  switch (config_.policy) {
    case PrefetchPolicy::kNone:
      return;
    case PrefetchPolicy::kNextN:
      stride = 1;
      break;
    case PrefetchPolicy::kMajorityStride:
      stride = detector_.MajorityStride();
      if (stride == 0) {
        return;  // No majority pattern: speculating would only pollute the cache.
      }
      break;
  }
  uint64_t p = page;
  for (uint32_t k = 0; k < window_; ++k) {
    const uint64_t next = p + static_cast<uint64_t>(stride);
    // Stop at address-space edges instead of wrapping into foreign mappings.
    if (stride > 0 ? next < p : next > p) {
      break;
    }
    out->push_back(next);
    p = next;
  }
}

}  // namespace mind
