// Pattern-aware far-memory prefetching (the swap-path optimization MIND's miss latency
// motivates; Leap [Al Maruf & Chowdhury, ATC'20] style).
//
// The data plane resolves hits in O(1) and replays them in batched channel runs, so on
// miss-heavy workloads the remote fault is the dominant remaining cost. A PrefetchEngine
// per (thread, blade) watches the thread's *fault stream* — exactly what a kernel swap
// prefetcher sees — and speculatively fetches ahead of it:
//
//   * kNextN          — sequential readahead: on a fault at page p, fetch p+1..p+W.
//   * kMajorityStride — Leap's majority-vote stride detection: the majority delta of the
//                       recent access history (Boyer-Moore vote + verification count)
//                       becomes the prefetch stride; no majority, no speculation. The
//                       prefetch window W grows on useful prefetches and shrinks on
//                       late/stale ones, bounded by [min_window, max_window].
//
// Touches of prefetched pages are fed back into the history (the analog of the minor
// faults Leap observes on pages the prefetcher already brought in), so a fully covered
// sequential stream keeps looking stride-1 to the detector instead of degenerating into
// window-sized jumps.
//
// Prefetches are speculative and asynchronous: they are issued after the triggering
// demand fault completes, traverse the same simulated fabric as demand fetches, and land
// in a bounded per-engine in-flight queue. A blade installs arrived prefetches at its
// next serialized access; an invalidation wave that hits the page's 2 MB cache region
// between issue and arrival makes the fetched copy stale, and the install is discarded
// (DramCache::region_inval_version). Accounting distinguishes issued / useful (demand hit
// after arrival) / late (demand arrived while still in flight) / evicted-unused /
// discarded-stale, from which reports derive coverage and accuracy.
//
// Thread safety mirrors the AccessChannel phase discipline: all state here is owned by
// one blade (BladePrefetchState) or one (thread, blade) engine, mutated only on the
// serialized drain or in same-blade channel commits — never concurrently.
#ifndef MIND_SRC_PREFETCH_PREFETCH_H_
#define MIND_SRC_PREFETCH_PREFETCH_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/common/types.h"

// detlint: mailbox(stats_)  -- PrefetchEngine::stats_ is per-(thread, blade) engine
// state, folded into the system report only at serialized points (MergeEngineStats);
// mutations reached from channel/group commits are scratch writes, not global counters.

namespace mind {

enum class PrefetchPolicy : uint8_t {
  kNone = 0,        // No speculation (the default; replay stays bit-identical to pre-PR).
  kNextN,           // Sequential readahead.
  kMajorityStride,  // Leap-style majority-vote stride detection.
};

[[nodiscard]] constexpr const char* ToString(PrefetchPolicy p) {
  switch (p) {
    case PrefetchPolicy::kNone:
      return "none";
    case PrefetchPolicy::kNextN:
      return "nextn";
    case PrefetchPolicy::kMajorityStride:
      return "stride";
  }
  return "?";
}

// Accepts the ToString spellings (used by --prefetch= flags and MIND_PREFETCH).
[[nodiscard]] std::optional<PrefetchPolicy> ParsePrefetchPolicy(std::string_view s);

struct PrefetchConfig {
  PrefetchPolicy policy = PrefetchPolicy::kNone;
  uint32_t history = 32;         // Access-history ring capacity (fault-granularity).
  uint32_t min_window = 4;       // Adaptive prefetch-degree floor...
  uint32_t initial_window = 8;
  uint32_t max_window = 64;      // ...and ceiling.
  uint32_t max_in_flight = 128;  // Bounded in-flight prefetch queue per engine.
  // Occupancy feedback: skip a prefetch window (and shrink) when the target memory
  // blade's fabric-port utilization exceeds this fraction. >= 1.0 disables the throttle.
  double fabric_pressure_threshold = 0.75;

  [[nodiscard]] bool enabled() const { return policy != PrefetchPolicy::kNone; }
};

// Monotonic counters; reports take field-wise deltas over a run.
struct PrefetchStats {
  uint64_t issued = 0;           // Prefetch fetches sent to a memory blade.
  uint64_t useful = 0;           // Prefetched pages demand-hit after arrival.
  uint64_t late = 0;             // Demand arrived while the prefetch was in flight.
  uint64_t evicted_unused = 0;   // Installed but evicted/invalidated before any use.
  uint64_t discarded_stale = 0;  // In-flight fetch invalidated before arrival.
  uint64_t rearmed = 0;          // Windows re-armed by touches past the issued midpoint.
  uint64_t throttled = 0;        // Windows skipped by fabric occupancy feedback.

  void Merge(const PrefetchStats& o) {
    issued += o.issued;
    useful += o.useful;
    late += o.late;
    evicted_unused += o.evicted_unused;
    discarded_stale += o.discarded_stale;
    rearmed += o.rearmed;
    throttled += o.throttled;
  }

  [[nodiscard]] PrefetchStats DeltaSince(const PrefetchStats& before) const {
    PrefetchStats d;
    d.issued = issued - before.issued;
    d.useful = useful - before.useful;
    d.late = late - before.late;
    d.evicted_unused = evicted_unused - before.evicted_unused;
    d.discarded_stale = discarded_stale - before.discarded_stale;
    d.rearmed = rearmed - before.rearmed;
    d.throttled = throttled - before.throttled;
    return d;
  }

  // Fraction of issued prefetches that were demand-hit after arrival.
  [[nodiscard]] double Accuracy() const {
    return issued == 0 ? 0.0 : static_cast<double>(useful) / static_cast<double>(issued);
  }
};

// Majority-vote stride detector over a bounded access-history ring (page numbers at fault
// granularity). Public so the unit tests can drive it against a naive reference model.
class StrideDetector {
 public:
  explicit StrideDetector(uint32_t history_capacity)
      : ring_(history_capacity < 2 ? 2 : history_capacity) {}

  void Record(uint64_t page) {
    ring_[head_] = page;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) {
      ++size_;
    }
  }

  // The majority delta of the recorded history: a nonzero stride S such that strictly
  // more than half of the consecutive deltas in the ring equal S (Boyer-Moore candidate
  // pass + verification count). 0 when the history is too short (warm-up: fewer than
  // kWarmupDeltas deltas) or no delta has a majority — no speculation without a pattern.
  [[nodiscard]] int64_t MajorityStride() const;

  [[nodiscard]] uint32_t size() const { return size_; }
  static constexpr uint32_t kWarmupDeltas = 3;

 private:
  std::vector<uint64_t> ring_;  // Oldest-to-newest order is head_..head_+size_ (mod).
  uint32_t size_ = 0;
  uint32_t head_ = 0;
};

// Per-(thread, blade) prefetcher: history + policy + adaptive window + bounded in-flight
// budget + counters. The owning system wires its fetch path: it asks Predict for
// candidate pages after each demand fault, models the fetches itself, and reports the
// outcome of every issued prefetch back through exactly one of OnInstalled/OnLate/
// OnDiscardedStale (freeing the in-flight slot), then OnUseful/OnEvictedUnused once the
// installed page's fate is known.
class PrefetchEngine {
 public:
  explicit PrefetchEngine(const PrefetchConfig& config)
      : config_(config),
        detector_(config.history),
        window_(std::min(std::max(config.initial_window, config.min_window),
                         config.max_window)) {}

  // One demand fault (including late joins of in-flight prefetches).
  void RecordFault(uint64_t page) { detector_.Record(page); }

  // Appends up to window() candidate pages following a fault at `page` (dedup against the
  // cache/in-flight tables is the caller's job; the engine only predicts).
  void Predict(uint64_t page, std::vector<uint64_t>* out) const;

  // In-flight budget.
  [[nodiscard]] bool HasInFlightRoom() const { return in_flight_ < config_.max_in_flight; }
  void OnIssued() {
    ++in_flight_;
    ++stats_.issued;
  }
  // Arrived and installed into the blade cache (fate still unknown).
  void OnInstalled() { --in_flight_; }
  // A demand miss joined (or collided with) the fetch while still in flight.
  void OnLate() {
    --in_flight_;
    ++stats_.late;
    Shrink();
  }
  // An invalidation wave hit the page's region before arrival; the copy was discarded.
  void OnDiscardedStale() {
    --in_flight_;
    ++stats_.discarded_stale;
    Shrink();
  }

  // First demand touch of an installed prefetched page. Grows the window and feeds the
  // touch into the history — the minor-fault stream Leap observes — so a fully covered
  // stream keeps its true stride visible to the detector. A touch past the midpoint of
  // the last *issued* window re-arms the engine (the readahead-marker analog): the next
  // window should go out at the blade's next serialized opportunity instead of waiting
  // for coverage to run dry and a real fault to restart the pipeline. Touches reach here
  // from the serialized hit paths AND from channel/group commits, which is what lets a
  // fully-covered stream that never faults keep its pipeline full.
  void OnUseful(uint64_t page) {
    ++stats_.useful;
    detector_.Record(page);
    window_ = std::min(window_ * 2, config_.max_window);
    if (issued_window_active_) {
      const auto covered = static_cast<int64_t>(page - issued_anchor_);
      const auto span = static_cast<int64_t>(issued_end_ - issued_anchor_);
      if (2 * std::abs(covered) >= std::abs(span)) {
        issued_window_active_ = false;  // Arm at most once per issued window.
        rearm_pending_ = true;
        rearm_page_ = page;
        ++stats_.rearmed;
      }
    }
  }

  // Records the span of an issued prefetch window: `anchor` is the demand page the
  // predictions grew from, `end` the farthest page actually issued (either direction).
  void NoteIssuedWindow(uint64_t anchor, uint64_t end) {
    issued_anchor_ = anchor;
    issued_end_ = end;
    issued_window_active_ = true;
  }

  // Consumes a pending re-arm request: the page to predict the next window from, if a
  // useful touch crossed the issued window's midpoint since the last call.
  [[nodiscard]] std::optional<uint64_t> TakeRearm() {
    if (!rearm_pending_) {
      return std::nullopt;
    }
    rearm_pending_ = false;
    return rearm_page_;
  }
  // Installed page left the cache without ever being touched.
  void OnEvictedUnused() {
    ++stats_.evicted_unused;
    Shrink();
  }
  // The target blade's fabric port crossed the occupancy threshold: the window was
  // skipped outright (speculation must not deepen a queue demand traffic is stuck in).
  void OnFabricPressure() {
    ++stats_.throttled;
    Shrink();
  }

  [[nodiscard]] uint32_t window() const { return window_; }
  [[nodiscard]] uint32_t in_flight() const { return in_flight_; }
  [[nodiscard]] const PrefetchStats& stats() const { return stats_; }
  [[nodiscard]] const StrideDetector& detector() const { return detector_; }
  [[nodiscard]] const PrefetchConfig& config() const { return config_; }

 private:
  void Shrink() { window_ = std::max(window_ / 2, config_.min_window); }

  PrefetchConfig config_;
  StrideDetector detector_;
  uint32_t window_;
  uint32_t in_flight_ = 0;
  PrefetchStats stats_;
  // Issued-window tracking for the re-arm trigger (see OnUseful).
  bool issued_window_active_ = false;
  bool rearm_pending_ = false;
  uint64_t issued_anchor_ = 0;
  uint64_t issued_end_ = 0;
  uint64_t rearm_page_ = 0;
};

// Per-blade bookkeeping shared by that blade's engines: the in-flight table (page ->
// pending fetch) and the installed-but-unused table that classifies useful vs
// evicted-unused. Mutated only under the serialized drain or same-blade channel commits.
class BladePrefetchState {
 public:
  struct InFlight {
    SimTime ready_at = 0;
    uint64_t inval_stamp = 0;  // DramCache::region_inval_version at issue time.
    PrefetchEngine* owner = nullptr;
    ProtDomainId pdid = 0;
  };

  std::unordered_map<uint64_t, InFlight> in_flight;        // page -> pending fetch.
  std::unordered_map<uint64_t, PrefetchEngine*> unused;    // installed, never touched.

  // Re-arm requests recorded by hit paths and channel/group commits (an engine whose
  // useful touches crossed its issued window's midpoint, with the page to predict from
  // and the toucher's protection domain). The owning system drains these at its next
  // serialized prefetch point — the first place issuing new fetches is safe.
  struct Rearm {
    PrefetchEngine* engine = nullptr;
    uint64_t page = 0;
    ProtDomainId pdid = 0;
  };
  std::vector<Rearm> rearm_requests;

  // Earliest in-flight arrival; lets the per-access install hook skip the table scan
  // while nothing can be ready yet.
  [[nodiscard]] SimTime next_ready() const { return next_ready_; }
  void NoteIssued(SimTime ready_at) {
    next_ready_ = in_flight.empty() ? ready_at : std::min(next_ready_, ready_at);
  }
  void RecomputeNextReady() {
    next_ready_ = ~SimTime{0};
    // detlint: allow(unordered-iteration): pure min-reduce; order-invariant.
    for (const auto& [page, entry] : in_flight) {
      next_ready_ = std::min(next_ready_, entry.ready_at);
    }
  }

  // Removes and returns the entries whose fetch has arrived by `now`, sorted by
  // (ready_at, page): install order decides LRU recency — and therefore eviction
  // choice — so it must be deterministic, never hash-map iteration order.
  MIND_SERIALIZED_PATH [[nodiscard]] std::vector<std::pair<uint64_t, InFlight>> TakeReady(
      SimTime now) {
    std::vector<std::pair<uint64_t, InFlight>> ready;
    if (in_flight.empty() || now < next_ready_) {
      return ready;
    }
    // detlint: allow(unordered-iteration): collected entries are sorted by
    // (ready_at, page) below before anything order-sensitive consumes them.
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (it->second.ready_at > now) {
        ++it;
      } else {
        ready.emplace_back(it->first, it->second);
        it = in_flight.erase(it);
      }
    }
    std::sort(ready.begin(), ready.end(), [](const auto& a, const auto& b) {
      return a.second.ready_at != b.second.ready_at
                 ? a.second.ready_at < b.second.ready_at
                 : a.first < b.first;
    });
    RecomputeNextReady();
    return ready;
  }

  // Adaptive cold-insertion depth for speculative installs (prefetch-aware eviction
  // priority, DramCache::InsertPrefetched): prefetched pages enter the blade cache this
  // many frames above the LRU tail instead of at MRU, so a mispredicting burst churns
  // its own guesses instead of evicting demand-faulted pages. Useful touches walk the
  // depth up (accurate speculation earns residency ahead of more of the cold tail);
  // every evicted-unused event halves it.
  [[nodiscard]] uint32_t cold_insert_depth() const { return cold_depth_; }
  static constexpr uint32_t kMinColdDepth = 8;
  static constexpr uint32_t kMaxColdDepth = 512;

  // Resolves installed-but-unused entries whose pages already left the cache (waves drop
  // clean pages without reporting them, so evicted-unused classifies lazily here).
  // `still_prefetched(page)` reports whether the page is still cached with its
  // prefetched marking intact.
  template <typename StillPrefetchedFn>
  MIND_SERIALIZED_PATH void ResolveEvictedUnused(StillPrefetchedFn&& still_prefetched) {
    // detlint: allow(unordered-iteration): per-entry counter bumps commute; no
    // order-sensitive state is derived from the visit order.
    for (auto it = unused.begin(); it != unused.end();) {
      if (still_prefetched(it->first)) {
        ++it;
      } else {
        it->second->OnEvictedUnused();
        ShrinkColdDepth();
        it = unused.erase(it);
      }
    }
  }

  // First demand touch of an installed prefetched page (hit paths and channel/group
  // commits call this with frame->prefetched already checked true by the caller; `pdid`
  // is the toucher's domain, threaded through to any re-arm issue it triggers).
  // Reached from channel/group commits as well as serialized hit paths; tagged for the
  // stricter context (all mutations are blade- or engine-confined mailboxes).
  MIND_PARALLEL_PHASE void OnPrefetchedTouch(uint64_t page, ProtDomainId pdid = 0) {
    auto it = unused.find(page);
    if (it != unused.end()) {
      PrefetchEngine* engine = it->second;
      engine->OnUseful(page);
      unused.erase(it);
      cold_depth_ = std::min(cold_depth_ + 8, kMaxColdDepth);
      if (auto rearm = engine->TakeRearm(); rearm.has_value()) {
        rearm_requests.push_back(Rearm{engine, *rearm, pdid});
      }
    }
  }

  // Eviction feedback: a page leaving the cache that was installed-but-unused.
  void OnPageEvicted(uint64_t page) {
    auto it = unused.find(page);
    if (it != unused.end()) {
      it->second->OnEvictedUnused();
      ShrinkColdDepth();
      unused.erase(it);
    }
  }

 private:
  void ShrinkColdDepth() { cold_depth_ = std::max(cold_depth_ / 2, kMinColdDepth); }

  SimTime next_ready_ = ~SimTime{0};
  uint32_t cold_depth_ = 64;
};

// Per-thread engine registries, shared by the three systems' Access paths.
using PrefetchEngineMap = std::unordered_map<ThreadId, std::unique_ptr<PrefetchEngine>>;

// Lazily creates the (thread, blade) engine on the thread's first demand fault.
inline PrefetchEngine& EnsureEngine(PrefetchEngineMap& engines, ThreadId tid,
                                    const PrefetchConfig& config) {
  auto it = engines.find(tid);
  if (it == engines.end()) {
    it = engines.emplace(tid, std::make_unique<PrefetchEngine>(config)).first;
  }
  return *it->second;
}

// Sums every engine's counters (integer adds: iteration order is irrelevant).
inline PrefetchStats MergeEngineStats(const PrefetchEngineMap& engines) {
  PrefetchStats total;
  // detlint: allow(unordered-iteration): integer adds commute; order-invariant.
  for (const auto& [tid, engine] : engines) {
    total.Merge(engine->stats());
  }
  return total;
}

}  // namespace mind

#endif  // MIND_SRC_PREFETCH_PREFETCH_H_
