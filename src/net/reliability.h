// Communication-failure handling (§4.4): ACKs, timeouts, retransmission and the reset path.
//
// MIND detects packet loss with ACKs + timeouts; a requester retransmits up to a limit, after
// which it sends a *reset* for the virtual address to the switch control plane, forcing all
// compute blades to flush their data for that address and removing the directory entry. That
// reset is what prevents deadlock when a blade dies mid-transition. This module tracks the
// bookkeeping and exposes a failure-injection hook used by the failure tests.
#ifndef MIND_SRC_NET_RELIABILITY_H_
#define MIND_SRC_NET_RELIABILITY_H_

#include <cstdint>
#include <functional>

#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/common/types.h"

namespace mind {

struct ReliabilityConfig {
  SimTime ack_timeout = 100 * kMicrosecond;  // Conservative vs ~9-18 us transitions.
  int max_retransmissions = 3;
  double loss_probability = 0.0;             // Failure injection; 0 in normal operation.
  uint64_t loss_seed = 42;
};

class ReliabilityTracker {
 public:
  explicit ReliabilityTracker(const ReliabilityConfig& config = {})
      : config_(config), rng_(config.loss_seed) {}

  // Outcome of sending one message-with-ACK under the loss model. `base_rtt` is the loss-free
  // round-trip; the returned latency includes timeout + retransmission costs actually paid.
  struct SendOutcome {
    bool delivered = true;     // False => retransmission limit exhausted; caller must reset.
    int attempts = 1;
    SimTime latency = 0;       // Total elapsed including timeouts.
  };

  // Draws the seeded loss RNG: serialized paths only (docs/determinism.md).
  MIND_SERIALIZED_PATH SendOutcome SendWithAck(SimTime base_rtt) {
    SendOutcome out;
    out.latency = 0;
    for (int attempt = 0; attempt <= config_.max_retransmissions; ++attempt) {
      out.attempts = attempt + 1;
      const bool lost = config_.loss_probability > 0.0 && rng_.NextBool(config_.loss_probability);
      if (!lost) {
        out.latency += base_rtt;
        out.delivered = true;
        if (attempt > 0) {
          retransmissions_ += static_cast<uint64_t>(attempt);
        }
        return out;
      }
      out.latency += config_.ack_timeout;  // Wait out the timer before retrying.
      ++timeouts_;
    }
    out.delivered = false;
    retransmissions_ += static_cast<uint64_t>(config_.max_retransmissions);
    ++resets_triggered_;
    return out;
  }

  // Point-in-time view of the protocol counters (monotonic; diff two snapshots for a
  // window). Exact equality is meaningful: the fault conformance oracle compares these.
  struct Snapshot {
    uint64_t timeouts = 0;
    uint64_t retransmissions = 0;
    uint64_t resets_triggered = 0;
    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  [[nodiscard]] Snapshot snapshot() const {
    return Snapshot{timeouts_, retransmissions_, resets_triggered_};
  }

  [[nodiscard]] const ReliabilityConfig& config() const { return config_; }

 private:
  ReliabilityConfig config_;
  Rng rng_;
  uint64_t timeouts_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t resets_triggered_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_NET_RELIABILITY_H_
