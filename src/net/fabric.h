// The rack fabric: dedicated full-duplex links between each blade and the ToR switch.
//
// Every compute and memory blade in the paper's testbed has a dedicated 100 Gbps NIC; the
// switch's per-port capacity matches. We model each direction of each port as a FIFO resource
// so concurrent page transfers to the same blade queue behind one another (NIC serialization),
// while transfers to different blades proceed in parallel — exactly the property MIND's
// multicast invalidation exploits (§4.3.2).
#ifndef MIND_SRC_NET_FABRIC_H_
#define MIND_SRC_NET_FABRIC_H_

#include <cstdint>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/types.h"
#include "src/net/message.h"
#include "src/sim/latency_model.h"
#include "src/sim/resource.h"

namespace mind {

// Endpoint of a link: a compute blade, a memory blade, or the switch CPU (control plane).
struct Endpoint {
  enum class Kind : uint8_t { kComputeBlade, kMemoryBlade, kSwitchCpu };
  Kind kind = Kind::kComputeBlade;
  uint16_t id = 0;

  static Endpoint Compute(ComputeBladeId id) { return {Kind::kComputeBlade, id}; }
  static Endpoint Memory(MemoryBladeId id) { return {Kind::kMemoryBlade, id}; }
  static Endpoint SwitchCpu() { return {Kind::kSwitchCpu, 0}; }
};

class Fabric {
 public:
  Fabric(int num_compute_blades, int num_memory_blades, const LatencyModel& latency)
      : latency_(latency),
        compute_tx_(num_compute_blades),
        compute_rx_(num_compute_blades),
        memory_tx_(num_memory_blades),
        memory_rx_(num_memory_blades) {}

  struct Delivery {
    SimTime arrival;    // When the message is fully received at the destination port.
    SimTime link_wait;  // Queueing delay on the sender's egress link.
  };

  // Transfer one hop: blade -> switch. Returns when the switch has the message.
  Delivery ToSwitch(const Endpoint& from, MessageKind kind, SimTime now) {
    return Transfer(TxOf(from), kind, now);
  }

  // Transfer one hop: switch -> blade. Returns when the blade has the message.
  Delivery FromSwitch(const Endpoint& to, MessageKind kind, SimTime now) {
    return Transfer(RxOf(to), kind, now);
  }

  // Multicast an invalidation from the switch to every compute blade whose bit is set in
  // `sharers`. The switch replicates the packet in the traffic manager; copies traverse
  // distinct egress ports in parallel. Copies for ports not leading to a sharer are dropped
  // in the egress pipeline (§4.3.2), consuming no link bandwidth. Returns per-sharer
  // deliveries in blade order alongside the ids.
  struct MulticastDelivery {
    ComputeBladeId blade;
    Delivery delivery;
  };
  std::vector<MulticastDelivery> MulticastInvalidation(SharerMask sharers, SimTime now) {
    std::vector<MulticastDelivery> out;
    SharerMask remaining = sharers;
    while (remaining != 0) {
      const auto blade = static_cast<ComputeBladeId>(LowestSetBit(remaining));
      remaining &= remaining - 1;
      out.push_back({blade, FromSwitch(Endpoint::Compute(blade), MessageKind::kInvalidation,
                                       now)});
      ++invalidations_sent_;
    }
    ++multicast_operations_;
    return out;
  }

  // Unicast equivalent (ablation baseline): the sender issues one invalidation after another,
  // paying per-message serialization sequentially at its own port before fan-out.
  std::vector<MulticastDelivery> UnicastInvalidations(SharerMask sharers, SimTime now) {
    std::vector<MulticastDelivery> out;
    SimTime send_time = now;
    SharerMask remaining = sharers;
    while (remaining != 0) {
      const auto blade = static_cast<ComputeBladeId>(LowestSetBit(remaining));
      remaining &= remaining - 1;
      // Sequential issue: each message occupies the sender CPU/NIC before the next.
      send_time += latency_.rdma_message_overhead +
                   latency_.Serialize(latency_.control_message_bytes);
      out.push_back({blade, FromSwitch(Endpoint::Compute(blade), MessageKind::kInvalidation,
                                       send_time)});
      ++invalidations_sent_;
    }
    return out;
  }

  [[nodiscard]] uint64_t invalidations_sent() const { return invalidations_sent_; }
  [[nodiscard]] uint64_t multicast_operations() const { return multicast_operations_; }
  [[nodiscard]] const LatencyModel& latency() const { return latency_; }

  [[nodiscard]] int num_compute_blades() const { return static_cast<int>(compute_tx_.size()); }
  [[nodiscard]] int num_memory_blades() const { return static_cast<int>(memory_tx_.size()); }

 private:
  Delivery Transfer(FifoResource& link, MessageKind kind, SimTime now) {
    const uint64_t bytes =
        CarriesPage(kind) ? latency_.page_payload_bytes : latency_.control_message_bytes;
    // The link serializes wire bytes only; per-message NIC processing (doorbells, CQEs)
    // pipelines with other messages, so it adds latency without occupying the link.
    const auto grant = link.Acquire(now, latency_.Serialize(bytes));
    return Delivery{grant.finish + latency_.rdma_message_overhead + latency_.link_propagation,
                    grant.wait};
  }

  FifoResource& TxOf(const Endpoint& e) {
    switch (e.kind) {
      case Endpoint::Kind::kComputeBlade:
        return compute_tx_[e.id];
      case Endpoint::Kind::kMemoryBlade:
        return memory_tx_[e.id];
      case Endpoint::Kind::kSwitchCpu:
        return switch_cpu_link_;
    }
    return switch_cpu_link_;
  }

  FifoResource& RxOf(const Endpoint& e) {
    switch (e.kind) {
      case Endpoint::Kind::kComputeBlade:
        return compute_rx_[e.id];
      case Endpoint::Kind::kMemoryBlade:
        return memory_rx_[e.id];
      case Endpoint::Kind::kSwitchCpu:
        return switch_cpu_link_;
    }
    return switch_cpu_link_;
  }

  LatencyModel latency_;
  std::vector<FifoResource> compute_tx_;  // blade -> switch, per compute blade.
  std::vector<FifoResource> compute_rx_;  // switch -> blade.
  std::vector<FifoResource> memory_tx_;
  std::vector<FifoResource> memory_rx_;
  FifoResource switch_cpu_link_;          // PCIe path to the switch CPU (control plane).
  uint64_t invalidations_sent_ = 0;
  uint64_t multicast_operations_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_NET_FABRIC_H_
