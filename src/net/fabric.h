// The rack fabric: dedicated full-duplex links between each blade and the ToR switch,
// with a pluggable queue model (src/net/queue_model.h) on every port direction and on the
// switch's pipeline/recirculation stages.
//
// Every compute and memory blade in the paper's testbed has a dedicated 100 Gbps NIC; the
// switch's per-port capacity matches. Each direction of each port is one QueueModel, so
// concurrent page transfers to the same blade queue behind one another (NIC
// serialization) while transfers to different blades proceed in parallel — exactly the
// property MIND's multicast invalidation exploits (§4.3.2).
//
// The fabric boundary is a single routed call: `Route(from, to, kind, now)` carries a
// message from one endpoint to another through the switch and returns the per-hop
// `Delivery` breakdown (egress wait, switch wait, ingress wait, wire time). Either side
// may be `Endpoint::Switch()` for a half-route — a request that terminates in the switch
// pipeline (protection check, directory lookup) before continuing, or a message the
// switch itself originates (invalidation fan-out). Charging rules, chosen so the default
// kFifo configuration is bit-identical to the historical ToSwitch/FromSwitch +
// caller-summed constants:
//
//   * blade -> switch: sender egress port (serialization + queueing), per-message NIC
//     overhead + wire propagation, then one pipeline pass (switch_pipeline + stage
//     queueing; + switch_recirculation when `recirculate` is set).
//   * switch -> blade: destination ingress port + overhead + propagation. No pipeline
//     charge — it was paid on switch entry.
//   * blade -> blade: both of the above composed.
//
// `Rtt()` composes the request route, service at the destination and the response route —
// the 1-RTT fetch shape every system shares, asserted in one place by
// LatencyModel::OneRttFetch's Fig. 7 calibration.
//
// Determinism: all methods here run on MIND_SERIALIZED_PATH code only (the coherence
// drain / serialized access path); queue models are pure functions of the call stream.
#ifndef MIND_SRC_NET_FABRIC_H_
#define MIND_SRC_NET_FABRIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/thread_annotations.h"
#include "src/common/types.h"
#include "src/net/message.h"
#include "src/net/queue_model.h"
#include "src/sim/latency_model.h"

namespace mind {

class MetricsRegistry;

// Endpoint of a route: a compute blade, a memory blade, the switch CPU (control plane,
// PCIe-attached) or the switch ASIC itself (pipeline-terminated half-routes).
struct Endpoint {
  enum class Kind : uint8_t { kComputeBlade, kMemoryBlade, kSwitchCpu, kSwitch };
  Kind kind = Kind::kComputeBlade;
  uint16_t id = 0;

  static Endpoint Compute(ComputeBladeId id) { return {Kind::kComputeBlade, id}; }
  static Endpoint Memory(MemoryBladeId id) { return {Kind::kMemoryBlade, id}; }
  static Endpoint SwitchCpu() { return {Kind::kSwitchCpu, 0}; }
  static Endpoint Switch() { return {Kind::kSwitch, 0}; }

  [[nodiscard]] bool IsSwitch() const { return kind == Kind::kSwitch; }
};

class Fabric {
 public:
  // The fabric owns the rack's single LatencyModel instance (every system reads it back
  // through latency()) and builds one queue model per port direction + the two switch
  // stages from `config`.
  Fabric(int num_compute_blades, int num_memory_blades, const LatencyModel& latency,
         const FabricConfig& config = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Per-hop breakdown of one routed message.
  struct Delivery {
    SimTime arrival = 0;       // When the message is fully received at the destination.
    SimTime egress_wait = 0;   // Queueing at the sender's egress port.
    SimTime switch_wait = 0;   // Queueing at the pipeline/recirculation stage.
    SimTime ingress_wait = 0;  // Queueing at the destination's ingress port.
    SimTime wire = 0;          // Serialization + NIC overhead + propagation constants.

    [[nodiscard]] SimTime total_wait() const {
      return egress_wait + switch_wait + ingress_wait;
    }
  };

  // Routes one message from `from` to `to` through the switch, starting at `now`.
  // `recirculate` adds the directory-update recirculation pass on switch entry (§6.3).
  MIND_SERIALIZED_PATH Delivery Route(const Endpoint& from, const Endpoint& to,
                                      MessageKind kind, SimTime now,
                                      bool recirculate = false);

  // A request/response round trip: request route, `service_at_destination` at `to`, then
  // the response route back. `complete` is when the response fully lands at `from`.
  struct RttDelivery {
    Delivery request;
    Delivery response;
    SimTime complete = 0;
  };
  MIND_SERIALIZED_PATH RttDelivery Rtt(const Endpoint& from, const Endpoint& to,
                                       MessageKind request_kind, MessageKind response_kind,
                                       SimTime now, SimTime service_at_destination,
                                       bool recirculate = false);

  // An extra recirculation pass for a message already inside the pipeline (the Fig. 4
  // directory-update pass when it is paid separately from switch entry). Returns when
  // the pass completes; `wait` (optional) receives the stage queueing delay.
  MIND_SERIALIZED_PATH SimTime Recirculate(SimTime now, SimTime* wait = nullptr);

  // Multicast an invalidation from the switch to every compute blade whose bit is set in
  // `sharers`. The switch replicates the packet in the traffic manager; copies traverse
  // distinct egress ports in parallel. Copies for ports not leading to a sharer are
  // dropped in the egress pipeline (§4.3.2), consuming no link bandwidth. Returns
  // per-sharer deliveries in blade order alongside the ids.
  struct MulticastDelivery {
    ComputeBladeId blade;
    Delivery delivery;
  };
  MIND_SERIALIZED_PATH std::vector<MulticastDelivery> MulticastInvalidation(
      SharerMask sharers, SimTime now);

  // Unicast equivalent (ablation baseline): the sender issues one invalidation after
  // another, paying per-message serialization sequentially at its own port before fan-out.
  MIND_SERIALIZED_PATH std::vector<MulticastDelivery> UnicastInvalidations(
      SharerMask sharers, SimTime now);

  // Windowed demand utilization of an endpoint's port, in [0, 1]: the max over its two
  // directions (a fetch loads the rx side with requests and the tx side with page
  // responses). The occupancy-feedback signal for prefetch throttling.
  [[nodiscard]] double Utilization(const Endpoint& e) const;

  // Publishes fabric counters and per-port/per-stage gauges under `prefix`:
  //   <prefix>/invalidations_sent, <prefix>/multicast_operations,
  //   <prefix>/port/<name>/{utilization,depth,wait_ns,jobs},
  //   <prefix>/switch/{pipeline,recirculation}/{utilization,depth,wait_ns,jobs}.
  void CollectMetrics(MetricsRegistry* reg, const std::string& prefix) const;

  [[nodiscard]] uint64_t invalidations_sent() const { return invalidations_sent_; }
  [[nodiscard]] uint64_t multicast_operations() const { return multicast_operations_; }
  [[nodiscard]] const LatencyModel& latency() const { return latency_; }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

  [[nodiscard]] int num_compute_blades() const { return static_cast<int>(compute_tx_.size()); }
  [[nodiscard]] int num_memory_blades() const { return static_cast<int>(memory_tx_.size()); }

 private:
  [[nodiscard]] uint64_t PayloadBytes(MessageKind kind) const {
    return CarriesPage(kind) ? latency_.page_payload_bytes : latency_.control_message_bytes;
  }
  // Service time a message occupies a pipeline stage for under a contending model: the
  // ASIC's aggregate pipeline bandwidth is ~4x one port's line rate, so a stage pass
  // costs a quarter of the wire serialization (docs/fabric.md). Pass-through (kFifo)
  // stages record this as demand without waiting.
  [[nodiscard]] SimTime StageService(uint64_t bytes) const {
    return latency_.Serialize(bytes) / 4;
  }

  QueueModel& TxOf(const Endpoint& e);
  QueueModel& RxOf(const Endpoint& e);

  LatencyModel latency_;
  FabricConfig config_;
  std::vector<std::unique_ptr<QueueModel>> compute_tx_;  // blade -> switch, per blade.
  std::vector<std::unique_ptr<QueueModel>> compute_rx_;  // switch -> blade.
  std::vector<std::unique_ptr<QueueModel>> memory_tx_;
  std::vector<std::unique_ptr<QueueModel>> memory_rx_;
  std::unique_ptr<QueueModel> switch_cpu_link_;  // PCIe path to the switch CPU.
  std::unique_ptr<QueueModel> pipeline_stage_;
  std::unique_ptr<QueueModel> recirc_stage_;
  uint64_t invalidations_sent_ = 0;
  uint64_t multicast_operations_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_NET_FABRIC_H_
