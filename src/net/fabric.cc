#include "src/net/fabric.h"

#include <utility>

#include "src/obs/metrics_registry.h"

namespace mind {

Fabric::Fabric(int num_compute_blades, int num_memory_blades, const LatencyModel& latency,
               const FabricConfig& config)
    : latency_(latency), config_(config) {
  compute_tx_.reserve(static_cast<size_t>(num_compute_blades));
  compute_rx_.reserve(static_cast<size_t>(num_compute_blades));
  for (int i = 0; i < num_compute_blades; ++i) {
    compute_tx_.push_back(MakeQueueModel(config));
    compute_rx_.push_back(MakeQueueModel(config));
  }
  memory_tx_.reserve(static_cast<size_t>(num_memory_blades));
  memory_rx_.reserve(static_cast<size_t>(num_memory_blades));
  for (int i = 0; i < num_memory_blades; ++i) {
    memory_tx_.push_back(MakeQueueModel(config));
    memory_rx_.push_back(MakeQueueModel(config));
  }
  switch_cpu_link_ = MakeQueueModel(config);
  pipeline_stage_ = MakeStageModel(config);
  recirc_stage_ = MakeStageModel(config);
}

QueueModel& Fabric::TxOf(const Endpoint& e) {
  switch (e.kind) {
    case Endpoint::Kind::kComputeBlade:
      return *compute_tx_[e.id];
    case Endpoint::Kind::kMemoryBlade:
      return *memory_tx_[e.id];
    case Endpoint::Kind::kSwitchCpu:
    case Endpoint::Kind::kSwitch:
      return *switch_cpu_link_;
  }
  return *switch_cpu_link_;
}

QueueModel& Fabric::RxOf(const Endpoint& e) {
  switch (e.kind) {
    case Endpoint::Kind::kComputeBlade:
      return *compute_rx_[e.id];
    case Endpoint::Kind::kMemoryBlade:
      return *memory_rx_[e.id];
    case Endpoint::Kind::kSwitchCpu:
    case Endpoint::Kind::kSwitch:
      return *switch_cpu_link_;
  }
  return *switch_cpu_link_;
}

MIND_SERIALIZED_PATH Fabric::Delivery Fabric::Route(const Endpoint& from, const Endpoint& to,
                                                    MessageKind kind, SimTime now,
                                                    bool recirculate) {
  Delivery d;
  SimTime t = now;
  const uint64_t bytes = PayloadBytes(kind);
  const SimTime ser = latency_.Serialize(bytes);
  if (!from.IsSwitch()) {
    // Sender egress: the port serializes wire bytes only; per-message NIC processing
    // (doorbells, CQEs) pipelines with other messages, so it adds latency without
    // occupying the link.
    const auto grant = TxOf(from).Acquire(t, ser);
    d.egress_wait = grant.wait;
    d.wire += ser + latency_.rdma_message_overhead + latency_.link_propagation;
    t = grant.finish + latency_.rdma_message_overhead + latency_.link_propagation;
    // Switch entry: one pipeline pass (parser + match-action stages), plus the
    // directory-update recirculation when requested.
    const auto stage = pipeline_stage_->Acquire(t, StageService(bytes));
    d.switch_wait += stage.wait;
    t += stage.wait + latency_.switch_pipeline;
    if (recirculate) {
      const auto recirc = recirc_stage_->Acquire(t, StageService(bytes));
      d.switch_wait += recirc.wait;
      t += recirc.wait + latency_.switch_recirculation;
    }
  }
  if (!to.IsSwitch()) {
    // Destination ingress: switch egress port toward the blade. No pipeline charge here —
    // a message the switch forwards paid it on entry, and one the switch originates
    // (invalidation fan-out) is generated past the pipeline in the traffic manager.
    const auto grant = RxOf(to).Acquire(t, ser);
    d.ingress_wait = grant.wait;
    d.wire += ser + latency_.rdma_message_overhead + latency_.link_propagation;
    t = grant.finish + latency_.rdma_message_overhead + latency_.link_propagation;
  }
  d.arrival = t;
  return d;
}

MIND_SERIALIZED_PATH Fabric::RttDelivery Fabric::Rtt(const Endpoint& from, const Endpoint& to,
                                                     MessageKind request_kind,
                                                     MessageKind response_kind, SimTime now,
                                                     SimTime service_at_destination,
                                                     bool recirculate) {
  RttDelivery rtt;
  rtt.request = Route(from, to, request_kind, now, recirculate);
  rtt.response =
      Route(to, from, response_kind, rtt.request.arrival + service_at_destination);
  rtt.complete = rtt.response.arrival;
  return rtt;
}

MIND_SERIALIZED_PATH SimTime Fabric::Recirculate(SimTime now, SimTime* wait) {
  const auto stage =
      recirc_stage_->Acquire(now, StageService(latency_.control_message_bytes));
  if (wait != nullptr) {
    *wait = stage.wait;
  }
  return now + stage.wait + latency_.switch_recirculation;
}

MIND_SERIALIZED_PATH std::vector<Fabric::MulticastDelivery> Fabric::MulticastInvalidation(
    SharerMask sharers, SimTime now) {
  std::vector<MulticastDelivery> out;
  SharerMask remaining = sharers;
  while (remaining != 0) {
    const auto blade = static_cast<ComputeBladeId>(LowestSetBit(remaining));
    remaining &= remaining - 1;
    out.push_back({blade, Route(Endpoint::Switch(), Endpoint::Compute(blade),
                                MessageKind::kInvalidation, now)});
    ++invalidations_sent_;
  }
  ++multicast_operations_;
  return out;
}

MIND_SERIALIZED_PATH std::vector<Fabric::MulticastDelivery> Fabric::UnicastInvalidations(
    SharerMask sharers, SimTime now) {
  std::vector<MulticastDelivery> out;
  SimTime send_time = now;
  SharerMask remaining = sharers;
  while (remaining != 0) {
    const auto blade = static_cast<ComputeBladeId>(LowestSetBit(remaining));
    remaining &= remaining - 1;
    // Sequential issue: each message occupies the sender CPU/NIC before the next.
    send_time += latency_.rdma_message_overhead +
                 latency_.Serialize(latency_.control_message_bytes);
    out.push_back({blade, Route(Endpoint::Switch(), Endpoint::Compute(blade),
                                MessageKind::kInvalidation, send_time)});
    ++invalidations_sent_;
  }
  return out;
}

double Fabric::Utilization(const Endpoint& e) const {
  // const_cast-free duplication of Tx/RxOf would need const overloads; keep one pair and
  // cast here (pure reads).
  auto* self = const_cast<Fabric*>(this);
  const double tx = self->TxOf(e).Utilization();
  const double rx = self->RxOf(e).Utilization();
  return tx > rx ? tx : rx;
}

void Fabric::CollectMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->SetCounter(prefix + "/invalidations_sent", invalidations_sent_);
  reg->SetCounter(prefix + "/multicast_operations", multicast_operations_);
  const auto port = [&](const std::string& name, const QueueModel& m) {
    const std::string base = prefix + "/port/" + name;
    reg->SetGauge(base + "/utilization", m.Utilization());
    reg->SetGauge(base + "/depth", static_cast<double>(m.QueueDepth()));
    reg->SetCounter(base + "/wait_ns", m.total_wait());
    reg->SetCounter(base + "/jobs", m.jobs());
  };
  for (size_t i = 0; i < compute_tx_.size(); ++i) {
    const std::string id = std::to_string(i);
    port("compute" + id + "/tx", *compute_tx_[i]);
    port("compute" + id + "/rx", *compute_rx_[i]);
  }
  for (size_t i = 0; i < memory_tx_.size(); ++i) {
    const std::string id = std::to_string(i);
    port("memory" + id + "/tx", *memory_tx_[i]);
    port("memory" + id + "/rx", *memory_rx_[i]);
  }
  const auto stage = [&](const std::string& name, const QueueModel& m) {
    const std::string base = prefix + "/switch/" + name;
    reg->SetGauge(base + "/utilization", m.Utilization());
    reg->SetGauge(base + "/depth", static_cast<double>(m.QueueDepth()));
    reg->SetCounter(base + "/wait_ns", m.total_wait());
    reg->SetCounter(base + "/jobs", m.jobs());
  };
  stage("pipeline", *pipeline_stage_);
  stage("recirculation", *recirc_stage_);
}

}  // namespace mind
