#include "src/net/queue_model.h"

#include <algorithm>
#include <vector>

namespace mind {

namespace {

// Single-server busy-until FIFO — the historical FifoResource::Acquire arithmetic,
// reproduced bit for bit so the default fabric configuration replays unchanged.
class FifoQueueModel final : public QueueModel {
 public:
  using QueueModel::QueueModel;

 protected:
  Grant DoAcquire(SimTime arrival, SimTime service) override {
    const SimTime start = std::max(arrival, busy_until_);
    const SimTime finish = start + service;
    busy_until_ = finish;
    return Grant{start, finish, start - arrival};
  }

 private:
  SimTime busy_until_ = 0;
};

// Pass-through stage: the message is timed by the caller's flat pipeline constant; the
// model only records demand so Utilization()/metrics still see the stage's load.
class PassThroughModel final : public QueueModel {
 public:
  using QueueModel::QueueModel;

 protected:
  Grant DoAcquire(SimTime arrival, SimTime service) override {
    return Grant{arrival, arrival + service, 0};
  }
};

// Bounded free-interval list on the server timeline (Graphite's history-list shape).
// Finite free intervals record gaps earlier allocations left behind; `tail_` is the time
// after which the server is entirely free. A request takes the earliest interval that
// fits at or after its arrival — short control messages backfill gaps in front of queued
// page transfers instead of serializing behind them.
class HistoryListQueueModel final : public QueueModel {
 public:
  HistoryListQueueModel(SimTime window_ns, uint32_t depth)
      : QueueModel(window_ns), depth_(depth == 0 ? 1 : depth) {}

  [[nodiscard]] size_t free_intervals() const { return free_.size(); }

 protected:
  Grant DoAcquire(SimTime arrival, SimTime service) override {
    Expire();
    // Earliest fit across the finite free intervals (kept sorted by start).
    for (size_t i = 0; i < free_.size(); ++i) {
      Interval& iv = free_[i];
      const SimTime start = std::max(iv.start, arrival);
      if (start + service > iv.end) {
        continue;
      }
      const SimTime finish = start + service;
      // Split the interval around the allocation; empty pieces vanish.
      const Interval left{iv.start, start};
      const Interval right{finish, iv.end};
      free_.erase(free_.begin() + static_cast<ptrdiff_t>(i));
      auto at = free_.begin() + static_cast<ptrdiff_t>(i);
      if (right.end > right.start) {
        at = free_.insert(at, right);
      }
      if (left.end > left.start) {
        free_.insert(at, left);
      }
      Bound();
      return Grant{start, finish, start - arrival};
    }
    // No gap fits: allocate from the free tail, recording the skipped gap (if any) as a
    // new finite interval for later backfill.
    const SimTime start = std::max(arrival, tail_);
    if (start > tail_) {
      free_.push_back(Interval{tail_, start});  // Starts past every finite interval.
    }
    tail_ = start + service;
    Bound();
    return Grant{start, start + service, start - arrival};
  }

 private:
  struct Interval {
    SimTime start;
    SimTime end;  // Half-open [start, end).
  };

  // Window expiry: a free interval wholly before the window floor can never serve a
  // request inside the window the simulation is still advancing through.
  void Expire() {
    const SimTime floor = WindowFloor();
    std::erase_if(free_, [floor](const Interval& iv) { return iv.end <= floor; });
    if (tail_ < floor) {
      tail_ = floor;
    }
  }

  // History bound: drop the oldest gaps first (Graphite's bounded history list).
  void Bound() {
    while (free_.size() > depth_) {
      free_.erase(free_.begin());
    }
  }

  size_t depth_;
  std::vector<Interval> free_;  // Sorted by start; disjoint.
  SimTime tail_ = 0;            // Free for all t >= tail_ beyond the listed gaps.
};

// Windowed M/G/1 wait estimate: rho from the sliding demand window, mean service from
// the same window, wait ≈ rho·S̄ / (2·(1 − rho)). rho is clamped below 1 so a saturated
// window yields a large-but-finite (and deterministic) penalty instead of a singularity.
class WindowedMG1QueueModel final : public QueueModel {
 public:
  using QueueModel::QueueModel;

 protected:
  Grant DoAcquire(SimTime arrival, SimTime service) override {
    constexpr double kMaxRho = 0.98;
    double rho = Utilization();  // Demand before this request (Acquire records it after).
    if (rho > kMaxRho) {
      rho = kMaxRho;
    }
    const uint64_t n = QueueDepth();
    const double mean_service =
        n == 0 ? static_cast<double>(service)
               : static_cast<double>(demand_sum()) / static_cast<double>(n);
    const auto wait = static_cast<SimTime>(rho * mean_service / (2.0 * (1.0 - rho)));
    const SimTime start = arrival + wait;
    return Grant{start, start + service, wait};
  }
};

}  // namespace

std::unique_ptr<QueueModel> MakeQueueModel(const FabricConfig& config) {
  switch (config.queue_model) {
    case QueueModelKind::kFifo:
      return std::make_unique<FifoQueueModel>(config.window_ns);
    case QueueModelKind::kHistoryList:
      return std::make_unique<HistoryListQueueModel>(config.window_ns, config.history_depth);
    case QueueModelKind::kWindowedMG1:
      return std::make_unique<WindowedMG1QueueModel>(config.window_ns);
  }
  return std::make_unique<FifoQueueModel>(config.window_ns);
}

std::unique_ptr<QueueModel> MakeStageModel(const FabricConfig& config) {
  if (config.queue_model == QueueModelKind::kFifo) {
    return std::make_unique<PassThroughModel>(config.window_ns);
  }
  return MakeQueueModel(config);
}

}  // namespace mind
