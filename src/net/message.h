// Wire-level message taxonomy for the emulated rack fabric.
//
// MIND's data path carries one-sided RDMA requests whose destination is *not* known to the
// sender — compute blades issue requests on virtual addresses and the switch rewrites headers
// after translation/coherence (§6.3, "Virtualizing RDMA connections"). The message kinds below
// mirror that protocol; sizes drive serialization-delay accounting in the fabric.
#ifndef MIND_SRC_NET_MESSAGE_H_
#define MIND_SRC_NET_MESSAGE_H_

#include <cstdint>

#include "src/common/types.h"

namespace mind {

enum class MessageKind : uint8_t {
  kRdmaReadRequest = 0,   // Compute -> switch: fetch page at VA (page fault path).
  kRdmaWriteRequest,      // Compute -> switch: write-back / flush page at VA.
  kRdmaReadResponse,      // Memory -> switch -> compute: page payload.
  kRdmaWriteAck,          // Memory -> switch -> compute: write completion.
  kInvalidation,          // Switch -> compute (multicast): invalidate a region.
  kInvalidationAck,       // Compute -> switch -> requester: region invalidated.
  kSyscallRequest,        // Compute -> switch control plane (TCP): mmap/brk/exec/...
  kSyscallResponse,       // Control plane -> compute.
  kReset,                 // Compute -> control plane: coherence reset for a VA (§4.4).
};

[[nodiscard]] constexpr const char* ToString(MessageKind k) {
  switch (k) {
    case MessageKind::kRdmaReadRequest:
      return "rdma-read-req";
    case MessageKind::kRdmaWriteRequest:
      return "rdma-write-req";
    case MessageKind::kRdmaReadResponse:
      return "rdma-read-resp";
    case MessageKind::kRdmaWriteAck:
      return "rdma-write-ack";
    case MessageKind::kInvalidation:
      return "invalidation";
    case MessageKind::kInvalidationAck:
      return "invalidation-ack";
    case MessageKind::kSyscallRequest:
      return "syscall-req";
    case MessageKind::kSyscallResponse:
      return "syscall-resp";
    case MessageKind::kReset:
      return "reset";
  }
  return "?";
}

// Whether a message carries a full page payload (drives serialization cost).
[[nodiscard]] constexpr bool CarriesPage(MessageKind k) {
  return k == MessageKind::kRdmaReadResponse || k == MessageKind::kRdmaWriteRequest;
}

struct Message {
  MessageKind kind = MessageKind::kRdmaReadRequest;
  VirtAddr va = 0;                 // Virtual address the operation targets.
  ProtDomainId pdid = 0;           // Protection domain of the issuing process (§4.2).
  AccessType access = AccessType::kRead;
  ComputeBladeId src_compute = kInvalidComputeBlade;
  // Sharer list embedded in invalidations so the egress pipeline can prune multicast
  // copies that would reach non-sharers (§4.3.2).
  SharerMask sharer_list = 0;
};

}  // namespace mind

#endif  // MIND_SRC_NET_MESSAGE_H_
