// Pluggable deterministic queue models for fabric ports and switch pipeline stages.
//
// The fabric used to model every port as a busy-until FifoResource and every switch
// pipeline pass as a flat constant — correct on an idle rack, blind under load: incast at
// a hot memory blade, invalidation-wave fan-out and prefetch traffic stealing demand
// bandwidth were all invisible. This header makes the queueing discipline pluggable, in
// the shape Graphite's performance models proved out for deterministic discrete-time
// simulators (history-list and windowed-M/G/1 queue models):
//
//   * kFifo        — single-server busy-until FIFO, bit-identical to the historical
//                    FifoResource::Acquire path (the default; replay timing is unchanged).
//   * kHistoryList — a bounded list of free intervals on the server timeline. A request
//                    takes the earliest interval that fits at or after its arrival, so a
//                    short control message can backfill the gap in front of a queued page
//                    transfer instead of waiting behind it.
//   * kWindowedMG1 — an analytical M/G/1 wait estimate from recent demand: utilization
//                    rho over a sliding window turns into wait ≈ rho·S̄ / (2·(1 − rho)).
//                    Requests never serialize against each other directly; the *estimate*
//                    rises with offered load, which is what a load-latency curve needs.
//
// Every model additionally tracks a sliding demand window — (arrival, service) pairs with
// a running sum — from which Utilization() reports the fraction of recent wall time the
// port was asked to serve. That number is the occupancy-feedback signal: it drives the
// MetricsRegistry port gauges and PrefetchEngine issue throttling.
//
// Determinism contract (docs/determinism.md): models are pure functions of the serialized
// Acquire call stream — no RNG, no wall clock, no iteration over unordered containers —
// and are only ever called from MIND_SERIALIZED_PATH code (the fabric is part of the
// serialized coherence path). Replay therefore stays bit-identical across shard counts,
// channel groups and fault schedules with any model enabled.
#ifndef MIND_SRC_NET_QUEUE_MODEL_H_
#define MIND_SRC_NET_QUEUE_MODEL_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "src/common/thread_annotations.h"
#include "src/common/types.h"

namespace mind {

enum class QueueModelKind : uint8_t {
  kFifo = 0,
  kHistoryList,
  kWindowedMG1,
};

[[nodiscard]] constexpr const char* ToString(QueueModelKind kind) {
  switch (kind) {
    case QueueModelKind::kFifo:
      return "fifo";
    case QueueModelKind::kHistoryList:
      return "history-list";
    case QueueModelKind::kWindowedMG1:
      return "windowed-mg1";
  }
  return "?";
}

// Queueing configuration of a Fabric, embedded in RackConfig / GamConfig /
// FastSwapConfig (the FaultPlaneConfig pattern). The default is kFifo with the
// historical behavior: timing bit-identical to the pre-queue-model fabric.
struct FabricConfig {
  QueueModelKind queue_model = QueueModelKind::kFifo;
  // Sliding demand window for Utilization() and the kWindowedMG1 estimate. 200 us spans
  // a few dozen remote fetches at paper latencies — long enough to smooth bursts, short
  // enough that pressure decays once traffic moves away.
  SimTime window_ns = 200'000;
  // Bound on the kHistoryList free-interval list (Graphite's history depth).
  uint32_t history_depth = 64;
};

// One service point (a port direction, or a switch pipeline stage).
class QueueModel {
 public:
  struct Grant {
    SimTime start;   // When service begins (>= arrival).
    SimTime finish;  // When service completes.
    SimTime wait;    // start - arrival (queueing delay).
  };

  explicit QueueModel(SimTime window_ns) : window_(window_ns == 0 ? 1 : window_ns) {}
  virtual ~QueueModel() = default;
  QueueModel(const QueueModel&) = delete;
  QueueModel& operator=(const QueueModel&) = delete;

  // Reserve the service point for `service` time units starting no earlier than
  // `arrival`. Serialized-path only: mutates the demand window and model state.
  MIND_SERIALIZED_PATH Grant Acquire(SimTime arrival, SimTime service) {
    // The wait is computed against demand *before* this request (a request never queues
    // behind itself), then the request joins the window.
    Grant g = DoAcquire(arrival, service);
    RecordDemand(arrival, service);
    total_busy_ += service;
    total_wait_ += g.wait;
    ++jobs_;
    return g;
  }

  // Fraction of the sliding window consumed by recent demand, clamped to [0, 1].
  // Evaluated at the latest arrival the model has seen, so it is a pure function of the
  // serialized Acquire stream (no "current time" input that could differ across modes).
  [[nodiscard]] double Utilization() const {
    const double u = static_cast<double>(demand_sum_) / static_cast<double>(window_);
    return u > 1.0 ? 1.0 : u;
  }

  // Requests still inside the sliding demand window (the queue-depth gauge).
  [[nodiscard]] uint64_t QueueDepth() const { return demand_.size(); }

  // Raw windowed demand (service time requested inside the window, unclamped).
  [[nodiscard]] SimTime demand_sum() const { return demand_sum_; }

  [[nodiscard]] SimTime total_busy() const { return total_busy_; }
  [[nodiscard]] SimTime total_wait() const { return total_wait_; }
  [[nodiscard]] uint64_t jobs() const { return jobs_; }
  [[nodiscard]] SimTime window() const { return window_; }
  [[nodiscard]] SimTime horizon() const { return horizon_; }

 protected:
  virtual Grant DoAcquire(SimTime arrival, SimTime service) = 0;

  // Latest arrival seen minus the window — demand and (model-specific) history older
  // than this can no longer affect any estimate.
  [[nodiscard]] SimTime WindowFloor() const {
    return horizon_ > window_ ? horizon_ - window_ : 0;
  }

 private:
  void RecordDemand(SimTime arrival, SimTime service) {
    horizon_ = arrival > horizon_ ? arrival : horizon_;
    demand_.push_back({arrival, service});
    demand_sum_ += service;
    const SimTime floor = WindowFloor();
    while (!demand_.empty() && demand_.front().arrival < floor) {
      demand_sum_ -= demand_.front().service;
      demand_.pop_front();
    }
  }

  struct Demand {
    SimTime arrival;
    SimTime service;
  };

  SimTime window_;
  SimTime horizon_ = 0;     // Latest arrival observed.
  SimTime demand_sum_ = 0;  // Sum of service over demand_.
  std::deque<Demand> demand_;
  SimTime total_busy_ = 0;
  SimTime total_wait_ = 0;
  uint64_t jobs_ = 0;
};

// Builds a port model of the configured kind.
[[nodiscard]] std::unique_ptr<QueueModel> MakeQueueModel(const FabricConfig& config);

// Builds a switch pipeline-stage model. Under kFifo this is a pass-through (wait 0,
// demand still recorded): historically the pipeline was a flat constant that every
// message paid concurrently, and the default must stay bit-identical to that. The other
// kinds contend on the stage with `MakeQueueModel`'s discipline.
[[nodiscard]] std::unique_ptr<QueueModel> MakeStageModel(const FabricConfig& config);

}  // namespace mind

#endif  // MIND_SRC_NET_QUEUE_MODEL_H_
