// TraceScope: the per-run collection of trace sinks plus the deterministic
// merge, digest and Perfetto/Chrome trace_event JSON export.
//
// Topology (docs/observability.md):
//   * one CONTROL sink — written only on serialized paths (the systems' Access
//     hooks, AdvanceTo, epoch/fault hooks). All semantic events land here,
//     already in exact global (clock, thread) order, and ONLY semantic events
//     do: with the ring holding the pure semantic stream, drop-oldest overflow
//     displaces the same events for every execution mode, which is what makes
//     SemanticBytes() bit-identical across shard counts, grouping modes and
//     threading modes for a fixed seed + fault schedule.
//   * one ring-buffer sink PER SHARD — a scratch mailbox in the sense of
//     docs/determinism.md: written only by the worker currently executing that
//     shard's parallel phase (channel/group commit execution events; the
//     serialized drain parks its sub-round events in shard 0's sink while no
//     phase writer is live), merged here at the report boundary by a stable
//     (clock, tid, kind) sort.
//
// Finalize() must be called after the worker join (the engine does this at the
// end of Run); merged()/digest/export are only meaningful afterwards.
#ifndef MIND_SRC_OBS_TRACE_SCOPE_H_
#define MIND_SRC_OBS_TRACE_SCOPE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace mind {

class PhaseProfiler;

class TraceScope {
 public:
  static constexpr size_t kDefaultCapacityPerSink = 1 << 16;

  explicit TraceScope(int num_shards, size_t capacity_per_sink = kDefaultCapacityPerSink);

  // The serialized-path sink (the systems' semantic events land here).
  [[nodiscard]] TraceSink* control() { return &control_; }
  // Shard s's execution-event mailbox; single-writer per phase discipline.
  [[nodiscard]] TraceSink* shard(int s) { return shards_[static_cast<size_t>(s)].get(); }
  [[nodiscard]] int num_shards() const { return static_cast<int>(shards_.size()); }

  // Merges all sinks into one timeline (stable sort by (clock, tid, kind));
  // call once after the last emission.
  void Finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] const std::vector<TraceEvent>& merged() const { return merged_; }
  [[nodiscard]] uint64_t dropped() const;

  // Canonical little-endian byte serialization of the SEMANTIC events in
  // control-sink emission order. This is the determinism witness: bit-identical
  // across 1/2/4/8 shards x groups on/off for the same seed + fault schedule.
  [[nodiscard]] std::string SemanticBytes() const;
  // FNV-1a over SemanticBytes(), for cheap cross-run comparison in reports.
  [[nodiscard]] uint64_t SemanticDigest() const;
  [[nodiscard]] size_t semantic_events() const;
  [[nodiscard]] size_t execution_events() const;

  // Chrome trace_event JSON ("traceEvents" array of X/i events, simulated ns
  // rendered on the microsecond timebase; pid=blade, tid=thread). When
  // `profiler` is non-null its wall-clock lanes are appended as a separate
  // process track. Loadable in Perfetto / chrome://tracing; validated by
  // tools/trace_export.py.
  void WriteChromeJson(std::ostream& os, const PhaseProfiler* profiler = nullptr) const;
  // Convenience file writer; returns false (and reports nothing else) on I/O error.
  [[nodiscard]] bool WriteChromeJsonFile(const std::string& path,
                                         const PhaseProfiler* profiler = nullptr) const;

 private:
  TraceSink control_;
  std::vector<std::unique_ptr<TraceSink>> shards_;
  std::vector<TraceEvent> merged_;
  bool finalized_ = false;
};

}  // namespace mind

#endif  // MIND_SRC_OBS_TRACE_SCOPE_H_
