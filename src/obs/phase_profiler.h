// PhaseProfiler: real wall-clock time per replay phase, per shard.
//
// This is the one component of src/obs/ that reads the host clock, so it is
// explicitly OUTSIDE the determinism contract: profiles are never part of the
// deterministic digest, never feed back into simulated time, and are gated
// behind ReplayOptions::profile (off = not constructed = zero clock reads on
// any path). The exported Perfetto track answers the ROADMAP's H_safe-quantum /
// barrier-cost questions: how long each parallel scan/commit phase, each
// owner-parallel drain phase, each serialized drain stretch and each phase-
// barrier wait actually took on the host.
//
// Storage discipline (docs/determinism.md mailbox pattern): lane s is written
// only by the thread currently executing shard s's phase; the dedicated serial
// lane (index num_shards) only by the coordinating thread on the serialized
// path. Reads happen after the worker join.
#ifndef MIND_SRC_OBS_PHASE_PROFILER_H_
#define MIND_SRC_OBS_PHASE_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <vector>

namespace mind {

class PhaseProfiler {
 public:
  enum class Phase : uint8_t {
    kScan = 0,         // Parallel scan phase (channel submit/classify).
    kCommit = 1,       // Parallel commit phase (channel/group commits).
    kOwnerDrain = 2,   // Owner-parallel drain sub-round phase.
    kSerialDrain = 3,  // Serialized drain stretch (global merge steps).
    kBarrierWait = 4,  // Coordinator's wait for the slowest shard at a barrier.
  };
  static constexpr int kNumPhases = 5;
  static constexpr size_t kMaxIntervalsPerLane = 1 << 14;

  struct Interval {
    uint64_t start_ns = 0;  // Host ns relative to profiler construction.
    uint64_t dur_ns = 0;
    Phase phase = Phase::kScan;
  };

  struct Lane {
    uint64_t total_ns[kNumPhases] = {};
    uint64_t count[kNumPhases] = {};
    std::vector<Interval> intervals;  // Bounded; overflow counted, not stored.
    uint64_t intervals_dropped = 0;
  };

  explicit PhaseProfiler(int num_shards)
      : lanes_(static_cast<size_t>(num_shards) + 1), origin_ns_(HostNowNs()) {}

  // Host monotonic clock. Sole wall-clock read in src/ outside the sim layer;
  // diagnostics-only by construction (see file comment).
  [[nodiscard]] static uint64_t HostNowNs() {
    // detlint: allow(banned-source): wall-clock phase profiler, excluded from the deterministic digest
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
  }

  [[nodiscard]] uint64_t Begin() const { return HostNowNs(); }

  // Records [start, now) into `lane`. Lane indices 0..num_shards-1 are shard
  // lanes; serial_lane() is the serialized path.
  void End(size_t lane, Phase phase, uint64_t start_ns) {
    const uint64_t end_ns = HostNowNs();
    Lane& l = lanes_[lane];
    const auto p = static_cast<size_t>(phase);
    const uint64_t dur = end_ns - start_ns;
    l.total_ns[p] += dur;
    ++l.count[p];
    if (l.intervals.size() < kMaxIntervalsPerLane) {
      l.intervals.push_back(Interval{start_ns - origin_ns_, dur, phase});
    } else {
      ++l.intervals_dropped;
    }
  }

  [[nodiscard]] size_t serial_lane() const { return lanes_.size() - 1; }
  [[nodiscard]] size_t num_lanes() const { return lanes_.size(); }
  [[nodiscard]] const Lane& lane(size_t i) const { return lanes_[i]; }
  [[nodiscard]] uint64_t origin_ns() const { return origin_ns_; }

  [[nodiscard]] static const char* PhaseName(Phase p) {
    switch (p) {
      case Phase::kScan: return "scan";
      case Phase::kCommit: return "commit";
      case Phase::kOwnerDrain: return "owner-drain";
      case Phase::kSerialDrain: return "serial-drain";
      case Phase::kBarrierWait: return "barrier-wait";
    }
    return "?";
  }

 private:
  std::vector<Lane> lanes_;
  uint64_t origin_ns_;
};

}  // namespace mind

#endif  // MIND_SRC_OBS_PHASE_PROFILER_H_
