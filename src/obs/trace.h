// TraceScope event model: typed, binary-compact events describing what happened
// inside a replay, stamped with (simulated clock, thread).
//
// Two event classes with different determinism contracts (docs/observability.md):
//
//   * SEMANTIC events describe what the simulated systems did — access
//     latency-breakdown spans, invalidation waves, directory splits/merges,
//     fault-plane timeouts/resets/stalls, blade drains and region migrations,
//     prefetch lifecycle. Every emission site sits on a serialized path
//     (Rack/GAM/FastSwap Access, the coherence drain, AdvanceTo, epoch hooks),
//     so a single control sink receives them already in exact global
//     (clock, thread) order. The semantic stream is bit-identical across
//     1/2/4/8 shards x groups on/off for a fixed seed and fault schedule; the
//     determinism tests compare its byte serialization directly.
//
//   * EXECUTION events describe how the replay engine scheduled the work —
//     channel commits, group commits, drain sub-round phases. They are emitted
//     from parallel phases into per-shard ring-buffer mailbox sinks (merged at
//     the report boundary) and legitimately vary with shard count and grouping,
//     so they are excluded from the deterministic digest but included in the
//     exported timeline.
//
// Sinks are fixed-capacity ring buffers (drop-oldest on overflow, drops
// counted) so tracing never allocates on the emission path after setup beyond
// amortized vector growth up to the cap. Each sink is single-writer under the
// phase discipline of docs/determinism.md: the control sink is written only on
// serialized paths, shard sink s only by the worker executing shard s's phase.
#ifndef MIND_SRC_OBS_TRACE_H_
#define MIND_SRC_OBS_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace mind {

enum class TraceEventKind : uint8_t {
  // --- Semantic events (serialized-path origin; in the deterministic digest) ---
  kAccessSpan = 1,        // a=va, b=breakdown.fault, c=pack32(network, fabric_wait),
                          // d=pack32(inv_queue, inv_tlb); dur=thread-visible latency.
  kInvalidationWave = 2,  // a=wave_base, b=wave_end, c=pack32(targets, flushed),
                          // d=pack32(false_invalidations, clean_drops); dur=wave span.
  kDirectorySplit = 3,    // a=region base va, b=pre-split size_log2.
  kDirectoryMerge = 4,    // a=merged base va, b=post-merge size_log2.
  kFaultTimeout = 5,      // a=attempts, b=summed retransmission delay (ns).
  kFaultReset = 6,        // a=reset va, b=pages flushed by the reset.
  kFaultStall = 7,        // a=delivery delay (ns); blade=stalled target.
  kBladeDrainBegin = 8,   // a=source memory blade, b=destination memory blade.
  kBladeDrainEnd = 9,     // a=source memory blade, b=pages migrated; dur=drain span.
  kMigrateRange = 10,     // a=chunk base va, b=pages moved; dur=chunk migration span.
  kPrefetchIssue = 11,    // a=trigger page, b=predictions issued in this batch.
  kPrefetchUseful = 12,   // a=page (arrived/in-flight prefetch served a demand miss).
  kPrefetchDiscard = 13,  // a=page, b=reason (0=stale-on-install, 1=stale-on-join).
  kWaveIssue = 14,        // a=sharer mask, b=deliveries, c=1 multicast / 0 unicast,
                          // d=issue span (first to last copy on the wire).
  // --- Execution events (engine scheduling; excluded from the digest) ---
  kChannelCommit = 15,    // a=ops committed, b=shard; clock=commit horizon.
  kGroupCommit = 16,      // a=ops committed, b=lanes; blade=group blade.
  kDrainPhase = 17,       // a=ops retired in the owner-parallel phase, b=H_safe.
};

// Execution events are a suffix of the kind space; everything below is semantic.
[[nodiscard]] constexpr bool IsSemanticEvent(TraceEventKind kind) {
  return static_cast<uint8_t>(kind) < static_cast<uint8_t>(TraceEventKind::kChannelCommit);
}

[[nodiscard]] const char* TraceEventKindName(TraceEventKind kind);

// Packs two (practically sub-4.29s) nanosecond quantities into one payload
// word, saturating instead of wrapping so a pathological value cannot alias.
[[nodiscard]] constexpr uint64_t TracePack32(uint64_t hi, uint64_t lo) {
  constexpr uint64_t kMax = 0xffff'ffffull;
  return ((hi > kMax ? kMax : hi) << 32) | (lo > kMax ? kMax : lo);
}

// One trace record. Fixed width, no pointers: the canonical byte serialization
// (TraceScope::SemanticBytes) is just the fields in declaration order,
// little-endian, which is what the determinism tests compare.
struct TraceEvent {
  SimTime clock = 0;  // Simulated ns: span start for duration events.
  SimTime dur = 0;    // Simulated ns duration; 0 for instant events.
  uint64_t a = 0;     // Kind-specific payload, see TraceEventKind.
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
  ThreadId tid = 0;          // 0 = no thread attribution (control-plane events).
  ComputeBladeId blade = 0;  // Requester / affected blade.
  TraceEventKind kind = TraceEventKind::kAccessSpan;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

// Fixed-capacity single-writer ring buffer of trace events. Drop-oldest on
// overflow keeps the tail of a too-long run — still deterministic, because the
// drop pattern is a pure function of the (deterministic) emission stream.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(cap_ < 1024 ? cap_ : 1024);
  }

  void Emit(const TraceEvent& e) {
    if (ring_.size() < cap_) {
      ring_.push_back(e);
    } else {
      ring_[total_ % cap_] = e;
    }
    ++total_;
  }

  [[nodiscard]] size_t size() const { return ring_.size(); }
  [[nodiscard]] uint64_t total_emitted() const { return total_; }
  [[nodiscard]] uint64_t dropped() const { return total_ - ring_.size(); }

  // Visits retained events oldest-first (unwrapping the ring).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (total_ <= cap_) {
      for (const TraceEvent& e : ring_) fn(e);
      return;
    }
    const size_t head = total_ % cap_;  // Oldest retained event.
    for (size_t i = 0; i < ring_.size(); ++i) {
      fn(ring_[(head + i) % cap_]);
    }
  }

 private:
  size_t cap_;
  std::vector<TraceEvent> ring_;
  uint64_t total_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_OBS_TRACE_H_
