#include "src/obs/metrics_registry.h"

#include <cstdio>
#include <ostream>

namespace mind {

void MetricsRegistry::SetCounter(std::string_view name, uint64_t v) {
  Entry& e = entries_[std::string(name)];
  e.kind = Kind::kCounter;
  e.counter = v;
}

void MetricsRegistry::SetGauge(std::string_view name, double v) {
  Entry& e = entries_[std::string(name)];
  e.kind = Kind::kGauge;
  e.gauge = v;
}

void MetricsRegistry::SetSummary(std::string_view name, const HistogramSummary& s) {
  Entry& e = entries_[std::string(name)];
  e.kind = Kind::kSummary;
  e.summary = s;
}

const MetricsRegistry::Entry* MetricsRegistry::Find(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

void MetricsRegistry::Clear() {
  entries_.clear();
  series_.clear();
  samples_skipped_ = 0;
}

void MetricsRegistry::Sample(SimTime now) {
  if (series_.size() >= kMaxSamples) {
    ++samples_skipped_;
    return;
  }
  SeriesPoint p;
  p.at = now;
  p.values.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    if (e.kind == Kind::kCounter) {
      p.values.emplace_back(name, static_cast<double>(e.counter));
    } else if (e.kind == Kind::kGauge) {
      p.values.emplace_back(name, e.gauge);
    }
  }
  series_.push_back(std::move(p));
}

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

// Metric names are '/'-separated identifier paths (no quotes/backslashes/
// control bytes by construction), so emission needs no escaping pass.
void AppendSummaryJson(std::string* out, const HistogramSummary& s) {
  out->append("{\"count\":");
  AppendU64(out, s.count);
  out->append(",\"min\":");
  AppendU64(out, s.min);
  out->append(",\"max\":");
  AppendU64(out, s.max);
  out->append(",\"mean\":");
  AppendDouble(out, s.mean);
  out->append(",\"p50\":");
  AppendU64(out, s.p50);
  out->append(",\"p90\":");
  AppendU64(out, s.p90);
  out->append(",\"p99\":");
  AppendU64(out, s.p99);
  out->append(",\"p999\":");
  AppendU64(out, s.p999);
  out->append("}");
}

}  // namespace

void MetricsRegistry::ExportText(std::ostream& os) const {
  std::string out;
  out.reserve(entries_.size() * 48);
  for (const auto& [name, e] : entries_) {
    out.append(name);
    out.push_back(' ');
    switch (e.kind) {
      case Kind::kCounter:
        AppendU64(&out, e.counter);
        break;
      case Kind::kGauge:
        AppendDouble(&out, e.gauge);
        break;
      case Kind::kSummary: {
        char buf[200];
        std::snprintf(buf, sizeof buf,
                      "count=%llu min=%llu max=%llu mean=%.1f p50=%llu p90=%llu "
                      "p99=%llu p999=%llu",
                      static_cast<unsigned long long>(e.summary.count),
                      static_cast<unsigned long long>(e.summary.min),
                      static_cast<unsigned long long>(e.summary.max), e.summary.mean,
                      static_cast<unsigned long long>(e.summary.p50),
                      static_cast<unsigned long long>(e.summary.p90),
                      static_cast<unsigned long long>(e.summary.p99),
                      static_cast<unsigned long long>(e.summary.p999));
        out.append(buf);
        break;
      }
    }
    out.push_back('\n');
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

void MetricsRegistry::ExportJson(std::ostream& os) const {
  std::string out;
  out.reserve(entries_.size() * 64 + series_.size() * 128);
  out.append("{\"metrics\":{");
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n\"");
    out.append(name);
    out.append("\":");
    switch (e.kind) {
      case Kind::kCounter:
        AppendU64(&out, e.counter);
        break;
      case Kind::kGauge:
        AppendDouble(&out, e.gauge);
        break;
      case Kind::kSummary:
        AppendSummaryJson(&out, e.summary);
        break;
    }
  }
  out.append("\n},\"series\":[");
  for (size_t i = 0; i < series_.size(); ++i) {
    if (i != 0) out.push_back(',');
    out.append("\n{\"at\":");
    AppendU64(&out, series_[i].at);
    out.append(",\"values\":{");
    for (size_t j = 0; j < series_[i].values.size(); ++j) {
      if (j != 0) out.push_back(',');
      out.push_back('"');
      out.append(series_[i].values[j].first);
      out.append("\":");
      AppendDouble(&out, series_[i].values[j].second);
    }
    out.append("}}");
  }
  out.append("\n]}\n");
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

}  // namespace mind
