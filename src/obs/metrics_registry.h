// MetricsRegistry: one hierarchical named-metric tree over every counter block
// in the repo (SystemCounters, FaultCounters, PrefetchStats, RackStats,
// bounded-splitting stats, replay-report fields), with epoch-boundary
// time-series snapshots and a single JSON/text exporter.
//
// Names are '/'-separated paths ("mind/counters/local_hits",
// "replay/latency/p99"). Storage is a std::map so iteration — and therefore
// every export — is in deterministic lexicographic order (the determinism
// contract bans ordering results by unordered-container iteration).
//
// Determinism: the registry itself is passive storage. When the replay engine
// samples it on the serialized drain path, the sampled values are functions of
// the serialized op stream only, so the time series is shard-count invariant
// like everything else on that path. The registry is never read or written
// from parallel phases.
#ifndef MIND_SRC_OBS_METRICS_REGISTRY_H_
#define MIND_SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"

namespace mind {

class MetricsRegistry {
 public:
  enum class Kind : uint8_t { kCounter, kGauge, kSummary };

  struct Entry {
    Kind kind = Kind::kCounter;
    uint64_t counter = 0;
    double gauge = 0.0;
    HistogramSummary summary;
  };

  // Upserts by name; the last write wins, so collectors can refresh in place.
  void SetCounter(std::string_view name, uint64_t v);
  void SetGauge(std::string_view name, double v);
  void SetSummary(std::string_view name, const HistogramSummary& s);

  [[nodiscard]] const Entry* Find(std::string_view name) const;
  [[nodiscard]] size_t size() const { return entries_.size(); }
  void Clear();

  // Appends one time-series point capturing every scalar entry (counters and
  // gauges; summaries are skipped — they are end-of-run artifacts). Bounded:
  // past kMaxSamples the point is counted as skipped rather than stored, so a
  // long run cannot grow memory without bound.
  static constexpr size_t kMaxSamples = 512;
  void Sample(SimTime now);
  struct SeriesPoint {
    SimTime at = 0;
    std::vector<std::pair<std::string, double>> values;  // Sorted by name.
  };
  [[nodiscard]] const std::vector<SeriesPoint>& series() const { return series_; }
  [[nodiscard]] uint64_t samples_skipped() const { return samples_skipped_; }

  // Exporters. Text is aligned "name value" lines (plus summary expansions);
  // JSON is {"metrics": {...}, "series": [...]}. Both iterate the map, so the
  // output order is deterministic and identical between the two.
  void ExportText(std::ostream& os) const;
  void ExportJson(std::ostream& os) const;

 private:
  std::map<std::string, Entry, std::less<>> entries_;
  std::vector<SeriesPoint> series_;
  uint64_t samples_skipped_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_OBS_METRICS_REGISTRY_H_
