#include "src/obs/trace_scope.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "src/obs/phase_profiler.h"

namespace mind {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAccessSpan: return "access";
    case TraceEventKind::kInvalidationWave: return "inv-wave";
    case TraceEventKind::kDirectorySplit: return "dir-split";
    case TraceEventKind::kDirectoryMerge: return "dir-merge";
    case TraceEventKind::kFaultTimeout: return "fault-timeout";
    case TraceEventKind::kFaultReset: return "fault-reset";
    case TraceEventKind::kFaultStall: return "fault-stall";
    case TraceEventKind::kBladeDrainBegin: return "blade-drain-begin";
    case TraceEventKind::kBladeDrainEnd: return "blade-drain-end";
    case TraceEventKind::kMigrateRange: return "migrate-range";
    case TraceEventKind::kPrefetchIssue: return "prefetch-issue";
    case TraceEventKind::kPrefetchUseful: return "prefetch-useful";
    case TraceEventKind::kPrefetchDiscard: return "prefetch-discard";
    case TraceEventKind::kWaveIssue: return "wave-issue";
    case TraceEventKind::kChannelCommit: return "channel-commit";
    case TraceEventKind::kGroupCommit: return "group-commit";
    case TraceEventKind::kDrainPhase: return "drain-phase";
  }
  return "?";
}

TraceScope::TraceScope(int num_shards, size_t capacity_per_sink)
    : control_(capacity_per_sink) {
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<TraceSink>(capacity_per_sink));
  }
}

void TraceScope::Finalize() {
  if (finalized_) {
    return;
  }
  merged_.clear();
  size_t n = control_.size();
  for (const auto& s : shards_) n += s->size();
  merged_.reserve(n);
  control_.ForEach([&](const TraceEvent& e) { merged_.push_back(e); });
  for (const auto& s : shards_) {
    s->ForEach([&](const TraceEvent& e) { merged_.push_back(e); });
  }
  std::stable_sort(merged_.begin(), merged_.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     if (x.clock != y.clock) return x.clock < y.clock;
                     if (x.tid != y.tid) return x.tid < y.tid;
                     return static_cast<uint8_t>(x.kind) < static_cast<uint8_t>(y.kind);
                   });
  finalized_ = true;
}

uint64_t TraceScope::dropped() const {
  uint64_t d = control_.dropped();
  for (const auto& s : shards_) d += s->dropped();
  return d;
}

namespace {

void AppendLe64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

std::string TraceScope::SemanticBytes() const {
  std::string out;
  out.reserve(control_.size() * 56);
  control_.ForEach([&](const TraceEvent& e) {
    if (!IsSemanticEvent(e.kind)) {
      return;
    }
    AppendLe64(&out, e.clock);
    AppendLe64(&out, e.dur);
    AppendLe64(&out, e.a);
    AppendLe64(&out, e.b);
    AppendLe64(&out, e.c);
    AppendLe64(&out, e.d);
    AppendLe64(&out, (static_cast<uint64_t>(e.tid) << 24) |
                         (static_cast<uint64_t>(e.blade) << 8) |
                         static_cast<uint64_t>(e.kind));
  });
  return out;
}

uint64_t TraceScope::SemanticDigest() const {
  // FNV-1a, 64-bit.
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char ch : SemanticBytes()) {
    h ^= static_cast<uint8_t>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

size_t TraceScope::semantic_events() const {
  size_t n = 0;
  control_.ForEach([&](const TraceEvent& e) { n += IsSemanticEvent(e.kind) ? 1 : 0; });
  return n;
}

size_t TraceScope::execution_events() const {
  size_t n = 0;
  control_.ForEach([&](const TraceEvent& e) { n += IsSemanticEvent(e.kind) ? 0 : 1; });
  for (const auto& s : shards_) n += s->size();
  return n;
}

namespace {

// Chrome's trace_event timebase is microseconds; keep ns precision with three
// decimals. Buffered snprintf keeps the writer allocation-light.
void AppendMicros(std::string* out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out->append(buf);
}

void AppendEvent(std::string* out, const TraceEvent& e, bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("{\"name\":\"");
  out->append(TraceEventKindName(e.kind));
  out->append("\",\"cat\":\"");
  out->append(IsSemanticEvent(e.kind) ? "semantic" : "execution");
  out->append("\",\"ph\":\"");
  out->append(e.dur > 0 ? "X" : "i");
  out->append("\",\"ts\":");
  AppendMicros(out, e.clock);
  if (e.dur > 0) {
    out->append(",\"dur\":");
    AppendMicros(out, e.dur);
  } else {
    out->append(",\"s\":\"t\"");  // Instant scope: thread.
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                ",\"pid\":%u,\"tid\":%u,\"args\":{\"a\":%llu,\"b\":%llu,\"c\":%llu,"
                "\"d\":%llu}}",
                static_cast<unsigned>(e.blade), static_cast<unsigned>(e.tid),
                static_cast<unsigned long long>(e.a), static_cast<unsigned long long>(e.b),
                static_cast<unsigned long long>(e.c),
                static_cast<unsigned long long>(e.d));
  out->append(buf);
}

void AppendMeta(std::string* out, unsigned pid, const char* name, bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":%u,\"tid\":0,"
                "\"args\":{\"name\":\"%s\"}}",
                pid, name);
  out->append(buf);
}

// Profiler lanes render as their own process so wall-clock time never mixes
// with the simulated timeline.
constexpr unsigned kProfilerPid = 9000;

void AppendProfiler(std::string* out, const PhaseProfiler& prof, bool* first) {
  AppendMeta(out, kProfilerPid, "phase profiler (host wall-clock)", first);
  for (size_t lane = 0; lane < prof.num_lanes(); ++lane) {
    for (const PhaseProfiler::Interval& iv : prof.lane(lane).intervals) {
      if (!*first) out->append(",\n");
      *first = false;
      out->append("{\"name\":\"");
      out->append(PhaseProfiler::PhaseName(iv.phase));
      out->append(lane == prof.serial_lane() ? " (serial)" : "");
      out->append("\",\"cat\":\"profile\",\"ph\":\"X\",\"ts\":");
      AppendMicros(out, iv.start_ns);
      out->append(",\"dur\":");
      AppendMicros(out, iv.dur_ns == 0 ? 1 : iv.dur_ns);
      char buf[64];
      std::snprintf(buf, sizeof buf, ",\"pid\":%u,\"tid\":%u,\"args\":{}}", kProfilerPid,
                    static_cast<unsigned>(lane));
      out->append(buf);
    }
  }
}

}  // namespace

void TraceScope::WriteChromeJson(std::ostream& os, const PhaseProfiler* profiler) const {
  std::string out;
  out.reserve(merged_.size() * 160 + 4096);
  out.append("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
  bool first = true;
  uint64_t max_blade = 0;
  for (const TraceEvent& e : merged_) {
    max_blade = e.blade > max_blade ? e.blade : max_blade;
  }
  for (uint64_t b = 0; b <= max_blade; ++b) {
    char name[32];
    std::snprintf(name, sizeof name, "blade %llu", static_cast<unsigned long long>(b));
    AppendMeta(&out, static_cast<unsigned>(b), name, &first);
  }
  for (const TraceEvent& e : merged_) {
    AppendEvent(&out, e, &first);
  }
  if (profiler != nullptr) {
    AppendProfiler(&out, *profiler, &first);
  }
  char tail[128];
  std::snprintf(tail, sizeof tail,
                "\n],\"otherData\":{\"semanticDigest\":\"%016llx\",\"dropped\":%llu}}\n",
                static_cast<unsigned long long>(SemanticDigest()),
                static_cast<unsigned long long>(dropped()));
  out.append(tail);
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

bool TraceScope::WriteChromeJsonFile(const std::string& path,
                                     const PhaseProfiler* profiler) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return false;
  }
  WriteChromeJson(f, profiler);
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace mind
