#include "src/workload/generators.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace mind {

namespace {

// Stateful per-thread page-index generator for one segment.
class IndexGen {
 public:
  IndexGen(Pattern pattern, uint64_t pages, double zipf_theta, uint64_t seed,
           uint64_t stride_pages = 4)
      : pattern_(pattern),
        pages_(std::max<uint64_t>(pages, 1)),
        stride_(std::max<uint64_t>(stride_pages % pages_, 1)) {
    if (pattern_ == Pattern::kZipfian) {
      zipf_ = std::make_unique<ZipfianGenerator>(pages_, zipf_theta);
    }
    if (pattern_ == Pattern::kPointerChase) {
      // Sattolo's algorithm yields a uniformly random *cyclic* permutation, so following
      // next = perm[current] walks every page exactly once before returning to the
      // start — a deterministic pointer chase with no exploitable stride.
      Rng perm_rng(seed * 0x9e3779b97f4a7c15ull + 1);
      perm_.resize(pages_);
      for (uint64_t i = 0; i < pages_; ++i) {
        perm_[i] = i;
      }
      for (uint64_t i = pages_ - 1; i >= 1; --i) {
        const uint64_t j = perm_rng.NextBelow(i);  // j < i: Sattolo, not Fisher-Yates.
        std::swap(perm_[i], perm_[j]);
      }
    }
    cursor_ = seed % pages_;  // Stagger sequential/strided scans across threads.
  }

  uint64_t Next(Rng& rng) {
    switch (pattern_) {
      case Pattern::kSequential:
        return cursor_++ % pages_;
      case Pattern::kUniform:
        return rng.NextBelow(pages_);
      case Pattern::kZipfian:
        return zipf_->Next(rng);
      case Pattern::kStrided: {
        const uint64_t page = cursor_;
        cursor_ = (cursor_ + stride_) % pages_;
        return page;
      }
      case Pattern::kPointerChase:
        cursor_ = perm_[cursor_];
        return cursor_;
    }
    return 0;
  }

 private:
  Pattern pattern_;
  uint64_t pages_;
  uint64_t stride_;
  uint64_t cursor_ = 0;
  std::unique_ptr<ZipfianGenerator> zipf_;
  std::vector<uint64_t> perm_;  // kPointerChase only.
};

}  // namespace

WorkloadTraces GenerateTraces(const WorkloadSpec& spec) {
  WorkloadTraces traces;
  traces.name = spec.name;
  traces.num_blades = spec.num_blades;
  traces.think_time = spec.think_time;

  // Segment layout: [0] shared, [1] metadata, [2 + t] private segment of thread t.
  traces.segments.push_back(SegmentSpec{std::max<uint64_t>(spec.shared_pages, 1)});
  traces.segments.push_back(SegmentSpec{std::max<uint64_t>(spec.metadata_pages, 1)});
  const int threads = spec.total_threads();
  for (int t = 0; t < threads; ++t) {
    traces.segments.push_back(SegmentSpec{std::max<uint64_t>(spec.private_pages_per_thread, 1)});
  }

  const bool has_shared = spec.shared_pages > 0 && spec.shared_access_fraction > 0.0;
  const bool has_private = spec.private_pages_per_thread > 0;
  const bool has_metadata = spec.metadata_pages > 0 && spec.metadata_touch_prob > 0.0;

  // Per-blade partitions of the shared segment for the partitioned (Native-KVS) mode.
  const uint64_t partition_pages =
      spec.partitioned && spec.num_blades > 0
          ? std::max<uint64_t>(spec.shared_pages / static_cast<uint64_t>(spec.num_blades), 1)
          : 0;

  traces.threads.resize(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    Rng rng(spec.seed * 1000003ull + static_cast<uint64_t>(t));
    const int blade = t % spec.num_blades;

    IndexGen shared_gen(spec.shared_pattern,
                        spec.partitioned ? partition_pages : spec.shared_pages,
                        spec.zipf_theta, static_cast<uint64_t>(t) * 7919,
                        spec.stride_pages);
    IndexGen private_gen(spec.private_pattern, spec.private_pages_per_thread, spec.zipf_theta,
                         static_cast<uint64_t>(t) * 104729, spec.stride_pages);
    // Metadata pages are few and hot: zipfian regardless of the main pattern.
    IndexGen metadata_gen(Pattern::kZipfian, spec.metadata_pages, 0.99,
                          static_cast<uint64_t>(t));

    auto& ops = traces.threads[static_cast<size_t>(t)].ops;
    ops.reserve(spec.accesses_per_thread + static_cast<uint64_t>(
                    spec.metadata_touch_prob * static_cast<double>(spec.accesses_per_thread)));

    for (uint64_t i = 0; i < spec.accesses_per_thread; ++i) {
      const bool go_shared = has_shared && (!has_private || rng.NextBool(spec.shared_access_fraction));
      TraceOp op;
      if (go_shared) {
        uint64_t page = shared_gen.Next(rng);
        if (spec.partitioned) {
          // Mostly the issuing blade's partition; occasionally anywhere (cross-partition op).
          if (rng.NextBool(spec.partition_locality)) {
            page = static_cast<uint64_t>(blade) * partition_pages + (page % partition_pages);
          } else {
            page = rng.NextBelow(spec.shared_pages);
          }
          page = std::min(page, spec.shared_pages - 1);
        }
        op = TraceOp{0, page, rng.NextBool(spec.shared_write_fraction) ? AccessType::kWrite
                                                                       : AccessType::kRead};
      } else if (has_private) {
        op = TraceOp{static_cast<uint32_t>(2 + t), private_gen.Next(rng),
                     rng.NextBool(spec.private_write_fraction) ? AccessType::kWrite
                                                               : AccessType::kRead};
      } else {
        continue;  // Degenerate spec: nothing to access.
      }
      ops.push_back(op);

      // Memcached-style bookkeeping: the LRU list touch is a *write* to hot shared metadata
      // even when the operation itself is a GET — the root cause of M_C's poor inter-blade
      // scaling in the paper (§7.1).
      if (has_metadata && rng.NextBool(spec.metadata_touch_prob)) {
        ops.push_back(TraceOp{1, metadata_gen.Next(rng), AccessType::kWrite});
      }
    }
  }
  return traces;
}

// ---------------------------------------------------------------------------
// Paper workload presets. Totals are fixed per job so adding blades/threads is *strong*
// scaling, as in the paper's runtime-based figures.
// ---------------------------------------------------------------------------

namespace {
uint64_t PerThread(uint64_t total, int threads) {
  return std::max<uint64_t>(total / static_cast<uint64_t>(std::max(threads, 1)), 1000);
}
}  // namespace

WorkloadSpec TfSpec(int blades, int threads_per_blade, uint64_t accesses_per_thread) {
  WorkloadSpec s;
  s.name = "TF";
  s.num_blades = blades;
  s.threads_per_blade = threads_per_blade;
  const int threads = s.total_threads();
  // ~384 MB of activations/gradients partitioned across workers, streamed sequentially
  // (sized to fit one blade's 512 MB cache together with the hot parameter set, as the
  // paper's TF working set does); 64 MB of shared model parameters, read-mostly with
  // sparse updates.
  s.private_pages_per_thread = PerThread(98'304, threads);
  s.private_pattern = Pattern::kSequential;
  s.private_write_fraction = 0.50;
  s.shared_pages = 16'384;
  s.shared_pattern = Pattern::kUniform;
  s.shared_access_fraction = 0.25;
  s.shared_write_fraction = 0.024;  // TF's shared-write volume baseline (GC is ~2.5x this).
  s.accesses_per_thread = accesses_per_thread;
  s.think_time = 1000;  // Compute-heavy: convolutions dominate between memory touches.
  s.seed = 11;
  return s;
}

WorkloadSpec GcSpec(int blades, int threads_per_blade, uint64_t accesses_per_thread) {
  WorkloadSpec s;
  s.name = "GC";
  s.num_blades = blades;
  s.threads_per_blade = threads_per_blade;
  const int threads = s.total_threads();
  // 256 MB shared graph (vertex + rank arrays) traversed with power-law skew; per-thread
  // edge streaming buffers. The hot graph caches well, so the dominant scaling cost is
  // coherence waste: random, contentious shared writes (~2.5x TF's shared-write volume)
  // invalidate widely-cached regions, dropping and re-fetching their pages.
  s.private_pages_per_thread = PerThread(262'144, threads);
  s.private_pattern = Pattern::kSequential;
  s.private_write_fraction = 0.30;
  s.shared_pages = 131'072;
  s.shared_pattern = Pattern::kZipfian;
  s.zipf_theta = 0.97;
  s.shared_access_fraction = 0.60;
  s.shared_write_fraction = 0.035;
  s.accesses_per_thread = accesses_per_thread;
  s.think_time = 250;
  s.seed = 13;
  return s;
}

WorkloadSpec MemcachedASpec(int blades, int threads_per_blade, uint64_t accesses_per_thread) {
  WorkloadSpec s;
  s.name = "MA";
  s.num_blades = blades;
  s.threads_per_blade = threads_per_blade;
  // 1 GB shared hash table under zipfian YCSB-A (50% GET / 50% SET), plus hot shared LRU
  // metadata written on most operations.
  s.private_pages_per_thread = 512;
  s.private_pattern = Pattern::kUniform;
  s.private_write_fraction = 0.50;
  s.shared_pages = 262'144;
  s.shared_pattern = Pattern::kZipfian;
  s.zipf_theta = 0.99;
  s.shared_access_fraction = 0.95;
  s.shared_write_fraction = 0.50;
  s.metadata_pages = 128;
  s.metadata_touch_prob = 0.40;
  s.accesses_per_thread = accesses_per_thread;
  s.think_time = 200;
  s.seed = 17;
  return s;
}

WorkloadSpec MemcachedCSpec(int blades, int threads_per_blade, uint64_t accesses_per_thread) {
  WorkloadSpec s = MemcachedASpec(blades, threads_per_blade, accesses_per_thread);
  s.name = "MC";
  s.shared_write_fraction = 0.0;  // YCSB-C: 100% reads...
  s.metadata_touch_prob = 0.40;   // ...but the LRU-touch writes remain (§7.1).
  s.seed = 19;
  return s;
}

WorkloadSpec NativeKvsSpec(int blades, int threads_per_blade, double read_ratio,
                           uint64_t accesses_per_thread, uint64_t table_pages) {
  WorkloadSpec s;
  s.name = read_ratio >= 1.0 ? "KVS-C" : "KVS-A";
  s.num_blades = blades;
  s.threads_per_blade = threads_per_blade;
  // Native KVS partitions its state across blades (better than Memcached, §7.1) and has no
  // shared LRU bookkeeping.
  s.private_pages_per_thread = 256;
  s.private_write_fraction = 0.2;
  s.shared_pages = table_pages;
  s.shared_pattern = Pattern::kZipfian;
  s.zipf_theta = 0.99;
  s.shared_access_fraction = 0.95;
  s.shared_write_fraction = 1.0 - read_ratio;
  s.partitioned = true;
  s.partition_locality = 0.85;
  s.accesses_per_thread = accesses_per_thread;
  s.think_time = 200;
  s.seed = 23;
  return s;
}

WorkloadSpec MicroSpec(int blades, double read_ratio, double sharing_ratio,
                       uint64_t total_pages, uint64_t accesses_per_thread) {
  WorkloadSpec s;
  s.name = "micro";
  s.num_blades = blades;
  s.threads_per_blade = 1;
  const int threads = s.total_threads();
  // `sharing_ratio` of accesses go to a region shared by all threads; the rest to
  // per-thread private slices. Uniform-random pattern over 400k pages total (§7.2).
  s.shared_pages = static_cast<uint64_t>(sharing_ratio * static_cast<double>(total_pages));
  const uint64_t private_total = total_pages - s.shared_pages;
  s.private_pages_per_thread = threads > 0 ? private_total / static_cast<uint64_t>(threads) : 0;
  s.private_pattern = Pattern::kUniform;
  s.shared_pattern = Pattern::kUniform;
  s.shared_access_fraction = sharing_ratio;
  s.shared_write_fraction = 1.0 - read_ratio;
  s.private_write_fraction = 1.0 - read_ratio;
  s.accesses_per_thread = accesses_per_thread;
  s.think_time = 0;
  s.seed = 29;
  return s;
}

}  // namespace mind
