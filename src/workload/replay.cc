#include "src/workload/replay.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <thread>
#include <utility>

#include "src/common/mutex.h"
#include "src/common/phase_guard.h"
#include "src/common/thread_annotations.h"

namespace mind {

Status ReplayEngine::Setup() {
  if (setup_done_) {
    return Status(ErrorCode::kExists, "Setup called twice");
  }
  if (options_.prefetch != PrefetchPolicy::kNone &&
      !system_->SetPrefetchPolicy(options_.prefetch)) {
    return Status(ErrorCode::kInvalidArgument,
                  "system does not support prefetch policies");
  }
  segments_.reserve(traces_->segments.size());
  for (const auto& seg : traces_->segments) {
    SegmentMap map;
    for (uint64_t first = 0; first < seg.pages; first += kChunkPages) {
      const uint64_t chunk_pages = std::min(kChunkPages, seg.pages - first);
      auto base = system_->Alloc(chunk_pages * kPageSize);
      if (!base.ok()) {
        return base.status();
      }
      map.chunk_bases.push_back(*base);
    }
    segments_.push_back(std::move(map));
  }
  const int blades = std::min(traces_->num_blades, system_->num_compute_blades());
  thread_ids_.reserve(traces_->threads.size());
  thread_blades_.reserve(traces_->threads.size());
  for (size_t t = 0; t < traces_->threads.size(); ++t) {
    const auto blade = static_cast<ComputeBladeId>(t % static_cast<size_t>(blades));
    auto tid = system_->RegisterThread(blade);
    if (!tid.ok()) {
      return tid.status();
    }
    thread_ids_.push_back(*tid);
    thread_blades_.push_back(blade);
  }
  // Directory-region ownership (src/workload/region_ownership.h): home every 2 MB region
  // at the blade whose threads touch it most. A pure function of the traces, so the map —
  // and with it the owner-parallel drain's phase/serial composition — is identical for
  // every shard count, threading mode and replay path.
  for (size_t t = 0; t < traces_->threads.size(); ++t) {
    for (const TraceOp& op : traces_->threads[t].ops) {
      ownership_.Credit(AddressOf(op.segment, op.page), thread_blades_[t]);
    }
  }
  ownership_.Seal();
  setup_done_ = true;
  if (options_.use_channels) {
    // Channel-driven runs stream resolved ops into Submit; resolving here keeps Run's
    // replay loop free of address arithmetic (and out of wall-clock measurements), like
    // the rest of the setup phase. The reference path resolves lazily through AddressOf.
    MaterializeOps();
  }
  return Status::Ok();
}

void ReplayEngine::MaterializeOps() {
  if (!thread_ops_.empty()) {
    return;  // Segment maps are immutable after Setup; the arrays never go stale.
  }
  thread_ops_.resize(traces_->threads.size());
  for (size_t t = 0; t < thread_ops_.size(); ++t) {
    const auto& ops = traces_->threads[t].ops;
    thread_ops_[t].reserve(ops.size());
    for (const TraceOp& op : ops) {
      thread_ops_[t].push_back(LocalOp{AddressOf(op.segment, op.page), op.type});
    }
  }
}

namespace {

constexpr SimTime kNoHorizon = std::numeric_limits<SimTime>::max();

// Adaptive per-thread scan-window bounds: windows start small, double while runs commit
// whole, and shrink toward the observed committed run length when a coherence horizon or
// a region-stamp invalidation cuts a run short. This bounds wasted submits to ~2x the
// committed ops even in coherence-dense traces, while hit-dominated traces quickly reach
// the configured maximum window.
constexpr uint32_t kMinScanWindow = 4;

// Per-thread replay cursor plus its submitted run. A run is submitted once (one batched
// virtual call) and reused across rounds while it stays exact: the channel's region
// stamps are unchanged (AccessChannel::RunValid) and the thread itself has not advanced
// through the serialized drain. Tokens inside a valid run cannot drift — channel commits
// only touch recency, dirt and per-blade service occupancy.
struct ThreadRt {
  SimTime clock = 0;
  uint64_t next_op = 0;
  SimTime last_start = 0;  // Start timestamp of the last executed op (trailing epochs).
  size_t index = 0;        // Global thread index (heap tie-break, same as per-op replay).
  ThreadId tid = 0;
  ComputeBladeId blade = 0;
  int shard = 0;
  AccessChannel* channel = nullptr;  // Null: every op takes the serialized drain.
  size_t group_member = 0;           // Member slot in the blade's ChannelGroup (if any).
  bool finished = false;
  // Submitted-run state.
  bool buf_valid = false;
  bool blocked = false;        // Submit refused at the run end (a coherence op is next).
  bool window_capped = false;  // Run ended at the scan window with trace ops remaining.
  bool ran_in_drain = false;   // Cursor moved outside the fast path; run is stale.
  bool latency_final = true;   // False: latencies finalize at per-op Commit (see contract).
  uint32_t window = kMinScanWindow;  // Adaptive scan-window size (see kMinScanWindow).
  // Owner-drain classification cache: the thread's next op, resolved and classified
  // (owner-homed blade-local hit below the drain boundary?). Invalidated whenever the
  // state the verdict reads may have changed — conservatively stale-false is always safe.
  bool drain_classified = false;
  bool drain_eligible = false;
  VirtAddr top_va = 0;
  AccessType top_type = AccessType::kRead;
  SimTime buf_end_clock = 0;
  SimTime uniform_lat = 0;     // Nonzero: every op in the run has this latency.
  size_t buf_pos = 0;          // Committed prefix of the run.
  size_t buf_len = 0;          // Accepted length of the run.
  std::vector<Completion> comps;  // Typed completions from AccessChannel::Submit.
};

struct ShardRt {
  std::vector<size_t> threads;                     // Owned global thread indices.
  std::vector<std::vector<size_t>> blade_threads;  // Grouped by owned blade.
  std::vector<ChannelGroup*> blade_groups;         // Parallel to blade_threads (or null).
  std::vector<GroupLane> lanes;                    // Per-round group-commit scratch.
  SimTime barrier = kNoHorizon;  // Scan result: earliest clock this shard cannot pass.
  bool any_blocked = false;
  uint64_t phase_retired = 0;    // Ops this shard retired in the last owner-drain phase.
  std::vector<size_t> phase_order;  // Owner-drain scratch: eligible threads, clock order.
  Rng rng{0};  // Per-shard stream (reserved for stochastic replay extensions).
  ShardReport report;
};

}  // namespace

ReplayReport ReplayEngine::Run(Sampler sampler, SimTime sample_interval) {
  assert(setup_done_ && "Setup must be called before Run");
  MemorySystem* system = system_;
  const WorkloadTraces& traces = *traces_;
  const SimTime think = traces.think_time;
  // Sanitized adaptive-window bounds: a configured cap below kMinScanWindow lowers the
  // floor with it, keeping every clamp well-formed (lo <= hi).
  const uint32_t max_window = std::max(options_.scan_window_ops, 1u);
  const uint32_t min_window = std::min(kMinScanWindow, max_window);

  // A sampler observes the system between globally-ordered ops, so it forces the per-op
  // reference path; use_channels = false selects it explicitly (conformance baseline).
  const bool reference_mode = sampler != nullptr || !options_.use_channels;

  // Shard layout: blades are dealt round-robin to shards, threads follow their blade.
  int blades_used = 1;
  for (const ComputeBladeId b : thread_blades_) {
    blades_used = std::max(blades_used, static_cast<int>(b) + 1);
  }
  const int num_shards = reference_mode ? 1 : std::clamp(options_.shards, 1, blades_used);
  effective_shards_ = num_shards;

  // --- Observability (src/obs/) -------------------------------------------
  // Constructed per Run so repeated Runs never mix artifacts. The trace scope's control
  // sink goes to the system (serialized-path semantic events); the engine itself writes
  // only execution events, into per-shard mailbox sinks from parallel phases and into
  // the control sink from the serialized drain. The profiler is wall-clock and never
  // touches simulated state; the registry is filled at the report boundary and sampled
  // on the serialized drain path.
  trace_scope_.reset();
  profiler_.reset();
  metrics_ = std::make_unique<MetricsRegistry>();
  if (options_.trace) {
    trace_scope_ = std::make_unique<TraceScope>(num_shards);
    (void)system->SetTraceSink(trace_scope_->control());
  }
  if (options_.profile) {
    profiler_ = std::make_unique<PhaseProfiler>(num_shards);
  }
  PhaseProfiler* const prof = profiler_.get();
  // detlint: mailbox(exec_sinks)
  std::vector<TraceSink*> exec_sinks(static_cast<size_t>(num_shards), nullptr);
  if (trace_scope_ != nullptr) {
    for (int s = 0; s < num_shards; ++s) {
      exec_sinks[static_cast<size_t>(s)] = trace_scope_->shard(s);
    }
  }

  std::vector<std::unique_ptr<AccessChannel>> channels(traces.threads.size());
  if (!reference_mode) {
    MaterializeOps();
    for (size_t t = 0; t < channels.size(); ++t) {
      channels[t] = system->OpenChannel(thread_ids_[t], thread_blades_[t]);
    }
  }

  std::vector<ThreadRt> threads(traces.threads.size());
  std::vector<ShardRt> shards(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards[s].rng = Rng(options_.seed ^ (0x9e3779b97f4a7c15ull * (s + 1)));
    shards[s].blade_threads.resize(
        static_cast<size_t>((blades_used - s + num_shards - 1) / num_shards));
  }
  for (size_t t = 0; t < threads.size(); ++t) {
    ThreadRt& th = threads[t];
    th.index = t;
    th.window = min_window;
    th.tid = thread_ids_[t];
    th.blade = thread_blades_[t];
    th.shard = static_cast<int>(th.blade) % num_shards;
    th.channel = channels[t].get();
    th.finished = traces.threads[t].ops.empty();
    ShardRt& sh = shards[th.shard];
    sh.threads.push_back(t);
    sh.blade_threads[static_cast<size_t>(th.blade) / num_shards].push_back(t);
  }

  // Per-blade channel groups: wherever >= 2 channel-driven threads share a blade (and the
  // system hands out a group for it), the blade's runs validate in one pass and commit as
  // one merged batch per round. Everything else keeps the per-thread commit path.
  std::vector<std::unique_ptr<ChannelGroup>> groups;
  for (ShardRt& sh : shards) {
    sh.blade_groups.assign(sh.blade_threads.size(), nullptr);
    if (reference_mode || !options_.use_channel_groups) {
      continue;
    }
    for (size_t g = 0; g < sh.blade_threads.size(); ++g) {
      const std::vector<size_t>& group_threads = sh.blade_threads[g];
      size_t with_channels = 0;
      for (const size_t t : group_threads) {
        if (threads[t].channel != nullptr) {
          ++with_channels;
        }
      }
      if (with_channels < 2 || with_channels > ChannelGroup::kMaxGroupLanes) {
        continue;
      }
      auto group = system->OpenChannelGroup(threads[group_threads[0]].blade);
      if (group == nullptr) {
        continue;
      }
      for (const size_t t : group_threads) {
        if (threads[t].channel != nullptr) {
          threads[t].group_member = group->Add(threads[t].channel);
        }
      }
      sh.blade_groups[g] = group.get();
      groups.push_back(std::move(group));
    }
  }

  const SystemCounters before = system->counters();
  const PrefetchStats prefetch_before = system->prefetch_stats();
  const FaultCounters fault_before = system->fault_counters();

  // --- Phase bodies -------------------------------------------------------

  // Scan (parallel, read-only): refresh each owned thread's submitted run where stale, and
  // find the shard's barrier — the earliest timestamp it cannot replay without the drain.
  auto scan_shard = [&](int s) {  // MIND_PARALLEL_PHASE
    ShardRt& sh = shards[s];
    sh.barrier = kNoHorizon;
    sh.any_blocked = false;
    for (size_t g = 0; g < sh.blade_threads.size(); ++g) {
      ChannelGroup* group = sh.blade_groups[g];
      // Grouped blade: one validation pass covers every member's submitted run (the
      // blade-global epochs are compared once, then each member's region stamps).
      const uint64_t valid_mask = group != nullptr ? group->ValidMask() : 0;
      for (const size_t t : sh.blade_threads[g]) {
        ThreadRt& th = threads[t];
        if (th.finished) {
          continue;
        }
        const bool run_valid =
            th.channel != nullptr && (group != nullptr
                                          ? ((valid_mask >> th.group_member) & 1) != 0
                                          : th.channel->RunValid());
        const bool keep =
            th.buf_valid && !th.ran_in_drain && th.buf_pos < th.buf_len && run_valid;
        if (!keep) {
          if (th.buf_valid && th.channel != nullptr) {
            if (th.buf_pos >= th.buf_len) {
              th.window = std::min(th.window * 2, max_window);
            } else {
              // Shrink smoothly (at most halving) toward twice the committed run, so one
              // early-cut round does not collapse a well-sized window.
              th.window =
                  std::clamp(std::max(static_cast<uint32_t>(th.buf_pos) * 2, th.window / 2),
                             min_window, max_window);
            }
          }
          if (th.channel == nullptr) {
            // Opted-out thread: every op takes the serialized drain; the thread pins the
            // shard's barrier at its frontier clock so the drain always runs it in order.
            th.buf_pos = 0;
            th.buf_len = 0;
            th.blocked = true;
            th.window_capped = false;
            th.buf_end_clock = th.clock;
          } else {
            const std::vector<LocalOp>& resolved = thread_ops_[t];
            const size_t want = static_cast<size_t>(std::min<uint64_t>(
                th.window, resolved.size() - th.next_op));
            if (th.comps.size() < want) {
              th.comps.resize(want);
            }
            const SubmitResult run = th.channel->Submit(
                resolved.data() + th.next_op, want, th.clock, think, th.comps.data());
            th.buf_pos = 0;
            th.buf_len = run.accepted;
            th.uniform_lat = run.uniform_latency;
            th.latency_final = run.latency_final;
            th.blocked = run.accepted < want;
            th.window_capped = !th.blocked && th.next_op + run.accepted < resolved.size();
            th.buf_end_clock = run.end_clock;
          }
          th.buf_valid = true;
          th.ran_in_drain = false;
        }
        if (th.blocked || th.window_capped) {
          sh.any_blocked |= th.blocked;
          sh.barrier = std::min(sh.barrier, th.buf_end_clock);
        }
      }
    }
  };

  // Commit (parallel, mutating blade-local state only): replay submitted runs with start
  // timestamps strictly below the horizon. `finished` guards against a stale run: a
  // thread the drain ran to completion is skipped by the scan, so its old submitted ops
  // must never replay. Same-blade threads merge in (clock, thread) order so LRU recency,
  // dirty bits and per-blade lock occupancy evolve exactly as under per-op replay.
  auto commit_prefix = [&](ThreadRt& th, ShardRt& sh, SimTime horizon,  // MIND_PARALLEL_PHASE
                           size_t max_ops) {
    if (th.finished || !th.buf_valid) {
      return;
    }
    const size_t start = th.buf_pos;
    if (start >= th.buf_len || th.clock >= horizon) {
      return;
    }
    SimTime clock = th.clock;
    SimTime last_start = th.last_start;
    size_t count;
    if (!th.latency_final) {
      // Commit-finalized latencies (e.g. GAM's per-blade library lock under intra-blade
      // contention): commit op by op, reading the exact latency back from the channel.
      // Only the op's start clock decides horizon eligibility, so the finalized latency
      // never invalidates the decision to commit.
      count = 0;
      while (start + count < th.buf_len && count < max_ops && clock < horizon) {
        Completion& c = th.comps[start + count];
        th.channel->Commit(&c, 1, clock);
        last_start = clock;
        clock += c.latency + think;
        sh.report.latency_histogram.Record(c.latency);
        sh.report.latency_sum += c.latency;
        ++count;
      }
      if (count == 0) {
        return;
      }
    } else if (th.uniform_lat != 0) {
      // Uniform-latency run: the committable prefix is pure arithmetic — count ops whose
      // start clock lies below the horizon and account them with one RecordN.
      const SimTime step = th.uniform_lat + think;
      count = std::min(th.buf_len - start, max_ops);
      count = static_cast<size_t>(std::min<uint64_t>(
          count, (horizon - clock - 1) / step + 1));
      last_start = clock + static_cast<SimTime>(count - 1) * step;
      sh.report.latency_histogram.RecordN(th.uniform_lat, count);
      sh.report.latency_sum += th.uniform_lat * count;
      th.channel->Commit(th.comps.data() + start, count, clock);
      clock += static_cast<SimTime>(count) * step;
    } else {
      count = 0;
      while (start + count < th.buf_len && count < max_ops && clock < horizon) {
        const SimTime lat = th.comps[start + count].latency;
        last_start = clock;
        clock += lat + think;
        sh.report.latency_histogram.Record(lat);
        sh.report.latency_sum += lat;
        ++count;
      }
      if (count == 0) {
        return;
      }
      th.channel->Commit(th.comps.data() + start, count, th.clock);
    }
    sh.report.parallel_hits += count;
    sh.report.counters.total_accesses += count;
    sh.report.counters.local_hits += count;
    th.last_start = last_start;
    th.clock = clock;
    th.buf_pos = start + count;
    th.next_op += count;
    sh.report.makespan = std::max(sh.report.makespan, clock);
    if (th.next_op == traces.threads[th.index].ops.size()) {
      th.finished = true;
    }
  };
  auto commit_shard = [&](int s, SimTime horizon) {  // MIND_PARALLEL_PHASE
    ShardRt& sh = shards[s];
    TraceSink* const lane_trace = exec_sinks[static_cast<size_t>(s)];
    const uint64_t hits_before = sh.report.parallel_hits;
    const uint64_t grouped_before = sh.report.grouped_ops;
    for (size_t g = 0; g < sh.blade_threads.size(); ++g) {
      const std::vector<size_t>& group_threads = sh.blade_threads[g];
      if (ChannelGroup* group = sh.blade_groups[g]; group != nullptr) {
        // Grouped blade: gather every member with committable work into a lane, then one
        // CommitMerged call replays the merged (clock, thread) stream up to the horizon —
        // one virtual call per blade per round, with latencies finalized inside the batch.
        sh.lanes.clear();
        for (const size_t t : group_threads) {
          ThreadRt& th = threads[t];
          if (th.finished || !th.buf_valid || th.channel == nullptr ||
              th.buf_pos >= th.buf_len || th.clock >= horizon) {
            continue;
          }
          GroupLane lane;
          lane.member = th.group_member;
          lane.thread_index = th.index;
          lane.clock = th.clock;
          lane.uniform_latency = th.uniform_lat;
          lane.comps = th.comps.data() + th.buf_pos;
          lane.count = th.buf_len - th.buf_pos;
          sh.lanes.push_back(lane);
        }
        if (sh.lanes.empty()) {
          continue;
        }
        const uint64_t committed = group->CommitMerged(
            sh.lanes.data(), sh.lanes.size(), horizon, think,
            sh.report.latency_histogram);
        if (committed == 0) {
          continue;
        }
        SimTime group_end = 0;
        for (const GroupLane& lane : sh.lanes) {
          if (lane.committed == 0) {
            continue;
          }
          group_end = std::max(group_end, lane.end_clock);
          ThreadRt& th = threads[lane.thread_index];
          th.last_start = lane.last_start;
          th.clock = lane.end_clock;
          th.buf_pos += lane.committed;
          th.next_op += lane.committed;
          sh.report.latency_sum += lane.latency_sum;
          sh.report.makespan = std::max(sh.report.makespan, lane.end_clock);
          if (th.next_op == traces.threads[th.index].ops.size()) {
            th.finished = true;
          }
        }
        sh.report.parallel_hits += committed;
        sh.report.grouped_ops += committed;
        sh.report.counters.total_accesses += committed;
        sh.report.counters.local_hits += committed;
        if (lane_trace != nullptr) [[unlikely]] {
          TraceEvent ev;
          ev.kind = TraceEventKind::kGroupCommit;
          ev.clock = group_end;
          ev.blade = threads[group_threads[0]].blade;
          ev.a = committed;
          ev.b = sh.lanes.size();
          lane_trace->Emit(ev);
        }
        continue;
      }
      if (group_threads.size() == 1) {
        // One thread on the blade: the whole eligible prefix commits in one batch.
        commit_prefix(threads[group_threads[0]], sh, horizon, SIZE_MAX);
        continue;
      }
      for (;;) {
        ThreadRt* best = nullptr;
        for (const size_t t : group_threads) {
          ThreadRt& th = threads[t];
          if (th.finished || !th.buf_valid || th.buf_pos >= th.buf_len ||
              th.clock >= horizon) {
            continue;
          }
          if (best == nullptr || th.clock < best->clock ||
              (th.clock == best->clock && th.index < best->index)) {
            best = &th;
          }
        }
        if (best == nullptr) {
          break;
        }
        commit_prefix(*best, sh, horizon, 1);
      }
    }
    if (lane_trace != nullptr) [[unlikely]] {
      // One execution event per shard per round covering the plain (ungrouped) channel
      // commits; grouped batches carried their own kGroupCommit events above.
      const uint64_t plain = (sh.report.parallel_hits - hits_before) -
                             (sh.report.grouped_ops - grouped_before);
      if (plain != 0) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kChannelCommit;
        ev.clock = sh.report.makespan;
        ev.a = plain;
        ev.b = static_cast<uint64_t>(s);
        lane_trace->Emit(ev);
      }
    }
  };

  // --- Serialized drain & owner-parallel drain phases ---------------------

  // Ownership-aware drain contract (OwnerDrainOps, memory_system.h): non-null when the
  // option is on and the system implements it. The reference path opens it too (one
  // shard, sequential phases) — reference and fast paths exercise the same
  // ownership-partitioned drain, diverging only in execution strategy.
  std::unique_ptr<OwnerDrainOps> owner_ops =
      options_.owner_parallel_drain ? system->OpenOwnerDrain(num_shards) : nullptr;
  // Lower bound on how far one eligible op advances its thread's clock; the H_safe
  // lookahead below is sound exactly because of it. Zero (degenerate zero-cost configs)
  // collapses every sub-round to a serialized step — still correct, never parallel.
  const SimTime min_step = owner_ops != nullptr ? owner_ops->MinEligibleCost() + think : 0;

  SimTime next_sample = sample_interval;
  // Metrics time series: sampled only from the serialized merge step (exec_serial), so
  // every sampled value is a function of the serialized op stream — shard-count
  // invariant, and identical with tracing on or off. Reuses the sampler interval
  // without forcing the reference path (CollectMetrics only reads).
  SimTime next_metrics_at = sample_interval;
  auto sample_metrics = [&](SimTime now) {  // MIND_SERIALIZED_PATH
    if (now < next_metrics_at) {
      return;
    }
    system->CollectMetrics(metrics_.get(), "system");
    metrics_->Sample(now);
    while (now >= next_metrics_at) {
      next_metrics_at += sample_interval;
    }
  };
  // Earliest time-driven global event the drain must serialize: a scheduled fault-plane
  // drain, the system's own serial boundary (e.g. a bounded-splitting epoch end) and —
  // on the reference path — the next sampler observation point. Ops at or past it are
  // never phase-eligible, so the event fires on a serialized step exactly as under
  // per-op replay. Recomputed whenever a serialized step may have fired one.
  SimTime drain_boundary = 0;
  auto compute_boundary = [&] {
    SimTime b = std::min(system->NextScheduledFaultAt(), owner_ops->NextSerialBoundary());
    if (sampler != nullptr) {
      b = std::min(b, next_sample);
    }
    return b;
  };

  // Classifies the thread's next op for the owner drain: resolved VA/type plus the
  // eligibility verdict — start clock below the boundary, region homed at the accessing
  // thread's blade (RegionOwnership: gate identical for every shard count), and the
  // system vouching for a blade-confined hit. Cached per thread; a stale-false verdict
  // only costs parallelism, never correctness, and every invalidation rule below is a
  // deterministic function of the executed-op sequence — so the drain's phase/serial
  // composition is identical across shard counts and threading modes.
  auto classify = [&](ThreadRt& th) {  // MIND_PARALLEL_PHASE
    // Runs both on the serialized sub-round scan and inside owner-parallel phases
    // (re-classification after a retired op) — tagged for the stricter context.
    if (th.drain_classified) {
      return;
    }
    const TraceOp& op = traces.threads[th.index].ops[th.next_op];
    th.top_va = AddressOf(op.segment, op.page);
    th.top_type = op.type;
    th.drain_eligible =
        th.clock < drain_boundary && ownership_.OwnedByAccessor(th.top_va, th.blade) &&
        owner_ops->Eligible(th.tid, th.blade, th.top_va, th.top_type, th.clock);
    th.drain_classified = true;
  };

  // One serialized merge step: thread `t`'s next op through the reference per-op
  // algorithm — sampler observation point, Access against the fully-merged state,
  // per-shard accounting. Returns the local-hit verdict (the bounded exit policy's
  // signal) plus how far the op's effects may have reached beyond the accessed page at
  // other blades: the invalidation wave's VA span (MIND's multicast false-invalidates
  // the whole directory entry), or `failed` for a lost-message reset (§4.4 flushes a
  // region whose span the result does not carry — reclassify everything).
  struct SerialStep {
    bool hit = false;
    bool failed = false;
    VirtAddr wave_base = 0;
    VirtAddr wave_end = 0;
  };
  auto exec_serial = [&](size_t t) {  // MIND_SERIALIZED_PATH
    ThreadRt& th = threads[t];
    if (sampler != nullptr && th.clock >= next_sample) {
      sampler(th.clock);
      while (th.clock >= next_sample) {
        next_sample += sample_interval;
      }
    }
    const auto& ops = traces.threads[t].ops;
    const TraceOp& op = ops[th.next_op];
    const AccessResult r =
        system->Access(th.tid, th.blade, AddressOf(op.segment, op.page), op.type,
                       th.clock);
    ShardRt& sh = shards[th.shard];
    sh.report.latency_histogram.Record(r.latency);
    sh.report.latency_sum += r.latency;
    ++sh.report.drained_ops;
    th.last_start = th.clock;
    th.clock += r.latency + think;
    if (th.buf_valid && th.buf_pos < th.buf_len) {
      // Alignment invariant: comps[buf_pos] always classifies trace op next_op, so the
      // op the drain just executed is positionally the run's next classified op —
      // advance the cursor in tandem. A still-region-valid run then resumes on the
      // fast path at the next round instead of being thrown away and reclassified
      // (drained hits used to poison the whole submitted window). State drift is
      // covered exactly as for commits: membership/writability/domain changes bump the
      // stamped regions (killing the run via RunValid), while recency and dirtiness
      // never affect classification.
      ++th.buf_pos;
    } else {
      th.ran_in_drain = true;  // Past the classified prefix: the run is stale.
    }
    sh.report.makespan = std::max(sh.report.makespan, th.clock);
    th.drain_classified = false;
    if (++th.next_op >= ops.size()) {
      th.finished = true;
    }
    sample_metrics(th.clock);
    return SerialStep{r.local_hit, !r.status.ok(), r.wave_base, r.wave_end};
  };

  const bool use_threads =
      num_shards > 1 &&
      (options_.force_threads || std::thread::hardware_concurrency() > 1);

  // Owner-parallel drain phase, one shard's slice: retire the shard's threads' eligible
  // top ops with start clocks strictly below `h_safe`, in shard-local (clock, index)
  // order. Same-blade threads always share a shard, so every per-blade structure (cache
  // LRU, FIFO locks) advances in exactly the relative order serial replay produces;
  // cross-blade phase ops commute. Threaded phases execute through
  // OwnerDrainOps::AccessOwned (per-shard counter scratch, no global memos); sequential
  // phases — single shard, single core, or the reference path — use plain Access, whose
  // extra memo work is pure memoization and whose epoch/drain pumps are no-ops below the
  // boundary. Outcomes are bit-identical either way.
  auto owner_phase_shard = [&](int s, SimTime h_safe) {  // MIND_PARALLEL_PHASE
    ShardRt& sh = shards[s];
    uint64_t retired = 0;
    // Every eligible thread retires at most one op per phase: its clock advances by at
    // least min_step, landing at or past h_safe (h_safe <= clock + min_step by
    // construction). So one pass in (clock, index) order visits exactly the sequence the
    // repeated global-argmin scan would — collect, sort, retire.
    sh.phase_order.clear();
    for (const size_t t : sh.threads) {
      const ThreadRt& th = threads[t];
      if (!th.finished && th.drain_eligible && th.clock < h_safe) {
        sh.phase_order.push_back(t);
      }
    }
    if (sh.phase_order.size() > 1) {
      std::sort(sh.phase_order.begin(), sh.phase_order.end(), [&](size_t a, size_t b) {
        return threads[a].clock != threads[b].clock ? threads[a].clock < threads[b].clock
                                                    : threads[a].index < threads[b].index;
      });
    }
    for (const size_t t : sh.phase_order) {
      ThreadRt& th = threads[t];
      const AccessResult r =
          use_threads
              ? owner_ops->AccessOwned(s, th.tid, th.blade, th.top_va, th.top_type,
                                       th.clock)
              // detlint: allow(parallel-serialized-call): single-shard sequential phases run
              // reference Access; eligible ops are blade-confined hits that never draw.
              : system->Access(th.tid, th.blade, th.top_va, th.top_type, th.clock);
      sh.report.latency_histogram.Record(r.latency);
      sh.report.latency_sum += r.latency;
      ++sh.report.drained_ops;
      ++sh.report.owner_drained;
      th.last_start = th.clock;
      th.clock += r.latency + think;
      if (th.buf_valid && th.buf_pos < th.buf_len) {
        ++th.buf_pos;  // Run-cursor alignment, exactly as on the serialized step.
      } else {
        th.ran_in_drain = true;
      }
      sh.report.makespan = std::max(sh.report.makespan, th.clock);
      th.drain_classified = false;
      ++retired;
      if (++th.next_op >= traces.threads[th.index].ops.size()) {
        th.finished = true;
      } else {
        // Re-classify on the fly: hits never evict, insert or fire events, so every
        // other thread's verdict is still exact — only this thread's top changed.
        classify(th);
      }
    }
    sh.phase_retired = retired;
  };

  // --- Worker pool ---------------------------------------------------------

  enum class Phase : uint8_t { kScan, kCommit, kOwnerDrain };
  // Phase-barrier state, fully guarded by `mu` (Clang Thread Safety Analysis proves it
  // in the CI static-analysis job; waits are manual loops because TSA analyzes predicate
  // lambdas as functions that do not hold the caller's capability).
  struct Sync {
    Mutex mu;
    CondVar work_cv;
    CondVar done_cv;
    uint64_t gen MIND_GUARDED_BY(mu) = 0;
    Phase phase MIND_GUARDED_BY(mu) = Phase::kScan;
    SimTime horizon MIND_GUARDED_BY(mu) = 0;  // Commit horizon, or owner-drain H_safe.
    int remaining MIND_GUARDED_BY(mu) = 0;
    bool exit MIND_GUARDED_BY(mu) = false;
  } sync;

  // Wall-clock phase mapping for the profiler (lane s written only by the thread running
  // shard s's phase — the mailbox discipline of docs/determinism.md).
  auto prof_phase = [](Phase p) {
    switch (p) {
      case Phase::kScan:
        return PhaseProfiler::Phase::kScan;
      case Phase::kCommit:
        return PhaseProfiler::Phase::kCommit;
      case Phase::kOwnerDrain:
        return PhaseProfiler::Phase::kOwnerDrain;
    }
    return PhaseProfiler::Phase::kScan;
  };
  auto run_one = [&](int s, Phase phase, SimTime horizon) {  // MIND_PARALLEL_PHASE
    // Dynamic half of the phase contract: while the scope is live, Rng draws assert.
    // Sequential executions get the same bracket — phase work is draw-free by
    // construction in every mode (eligibility gates exclude anything that could).
    ParallelPhaseScope in_phase;
    const uint64_t prof_start = prof != nullptr ? prof->Begin() : 0;
    switch (phase) {
      case Phase::kScan:
        scan_shard(s);
        break;
      case Phase::kCommit:
        commit_shard(s, horizon);
        break;
      case Phase::kOwnerDrain:
        owner_phase_shard(s, horizon);
        break;
    }
    if (prof != nullptr) {
      prof->End(static_cast<size_t>(s), prof_phase(phase), prof_start);
    }
  };
  std::vector<std::thread> workers;
  if (use_threads) {
    workers.reserve(static_cast<size_t>(num_shards) - 1);
    for (int s = 1; s < num_shards; ++s) {
      workers.emplace_back([&, s] {
        uint64_t seen = 0;
        for (;;) {
          Phase phase;
          SimTime horizon;
          {
            MutexLock lk(sync.mu);
            while (!sync.exit && sync.gen == seen) {
              sync.work_cv.Wait(sync.mu);
            }
            if (sync.exit) {
              return;
            }
            seen = sync.gen;
            phase = sync.phase;
            horizon = sync.horizon;
          }
          run_one(s, phase, horizon);
          {
            MutexLock lk(sync.mu);
            if (--sync.remaining == 0) {
              sync.done_cv.NotifyOne();
            }
          }
        }
      });
    }
  }
  auto run_phase = [&](Phase phase, SimTime horizon) {
    if (!use_threads) {
      for (int s = 0; s < num_shards; ++s) {
        run_one(s, phase, horizon);
      }
      return;
    }
    {
      MutexLock lk(sync.mu);
      sync.phase = phase;
      sync.horizon = horizon;
      sync.remaining = num_shards - 1;
      ++sync.gen;
    }
    sync.work_cv.NotifyAll();
    run_one(0, phase, horizon);
    const uint64_t wait_start = prof != nullptr ? prof->Begin() : 0;
    {
      MutexLock lk(sync.mu);
      while (sync.remaining != 0) {
        sync.done_cv.Wait(sync.mu);
      }
    }
    if (prof != nullptr) {
      // The coordinator's stall for the slowest shard: the barrier cost the ROADMAP's
      // H_safe-quantum question asks about, on its own serial-lane track.
      prof->End(prof->serial_lane(), PhaseProfiler::Phase::kBarrierWait, wait_start);
    }
  };

  // Serialized drain: the reference algorithm over *all* threads. In bounded mode it
  // runs until the coherence burst passes and hands back to the parallel phase;
  // unbounded it IS serial replay, with sampler observation points between ops.
  // Correctness does not depend on the exit policy. Without an owner contract, every op
  // takes the global min-heap one at a time (the pre-ownership drain); with one, the
  // drain runs in sub-rounds — classify every unfinished thread's top op, derive the
  // safety horizon H_safe = min over threads of (eligible ? clock + min_step : clock),
  // and either retire all eligible ops below H_safe owner-parallel (their clocks
  // provably precede every other top, and executed ops land at or past H_safe) or
  // execute the exact global (clock, thread) minimum serially.
  using Item = std::pair<SimTime, size_t>;
  std::vector<Item> heap;
  heap.reserve(threads.size());
  const auto heap_cmp = [](const Item& a, const Item& b) { return a > b; };  // Min-heap.
  // Sequential-mode phase scratch: eligible threads collected by the sub-round scan, so
  // the phase retires straight off the scan instead of re-scanning every shard's threads
  // through the worker-pool machinery (the dominant drain overhead at a few ops/phase).
  std::vector<size_t> phase_seq;
  phase_seq.reserve(threads.size());
  auto drain = [&](bool bounded, uint32_t max_coherence_ops,  // MIND_SERIALIZED_PATH
                   uint32_t hit_streak_exit) {
    uint32_t coherence_ops = 0;
    uint32_t hit_streak = 0;
    if (owner_ops == nullptr) {
      // Pre-ownership serial drain. The min-heap buffer persists across invocations:
      // bounded drains run once per round in coherence-dense stretches, and a fresh
      // priority_queue per call would pay an allocation each time.
      heap.clear();
      for (size_t t = 0; t < threads.size(); ++t) {
        if (!threads[t].finished) {
          heap.emplace_back(threads[t].clock, t);
        }
      }
      std::make_heap(heap.begin(), heap.end(), heap_cmp);
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), heap_cmp);
        const size_t t = heap.back().second;
        heap.pop_back();
        const bool hit = exec_serial(t).hit;
        if (!threads[t].finished) {
          heap.emplace_back(threads[t].clock, t);
          std::push_heap(heap.begin(), heap.end(), heap_cmp);
        }
        if (!bounded) {
          continue;
        }
        if (hit) {
          if (++hit_streak >= hit_streak_exit) {
            break;
          }
        } else {
          hit_streak = 0;
          if (++coherence_ops >= max_coherence_ops) {
            break;
          }
        }
      }
      return;
    }
    // Owner-partitioned drain. Everything outside the drain (channel commits, scans,
    // horizon work) may have moved caches and boundaries, so start from a clean slate.
    for (ThreadRt& th : threads) {
      th.drain_classified = false;
    }
    drain_boundary = compute_boundary();
    for (;;) {
      SimTime h_safe = kNoHorizon;
      SimTime min_eligible = kNoHorizon;
      size_t t_min = SIZE_MAX;
      phase_seq.clear();
      for (size_t t = 0; t < threads.size(); ++t) {
        ThreadRt& th = threads[t];
        if (th.finished) {
          continue;
        }
        classify(th);
        h_safe = std::min(h_safe, th.drain_eligible ? th.clock + min_step : th.clock);
        if (th.drain_eligible) {
          min_eligible = std::min(min_eligible, th.clock);
          phase_seq.push_back(t);
        }
        if (t_min == SIZE_MAX || th.clock < threads[t_min].clock) {
          t_min = t;  // Ascending t: first occurrence wins clock ties, as the heap would.
        }
      }
      if (t_min == SIZE_MAX) {
        break;  // All threads finished.
      }
      const bool phase_work = min_eligible < h_safe;
      if (phase_work) {
        uint64_t retired = 0;
        // Bounded drains exist to ride out a coherence burst and hand back to the
        // channels, whose batched group commits retire hits far cheaper than any drain
        // path. An uncapped phase would retire every eligible op below H_safe —
        // overshooting the hit-streak exit and bouncing channel-committable work into
        // the drain — so cap the phase at the remaining streak budget and retire the
        // capped prefix in global (clock, index) order. Cap and prefix depend only on
        // global state, so the drain composition (and the serialized-fraction metric)
        // stays identical across shard counts and threading modes.
        const uint64_t budget = bounded ? hit_streak_exit - hit_streak : UINT64_MAX;
        bool threaded_phase = use_threads;
        if (use_threads && bounded) {
          size_t below = 0;
          for (const size_t t : phase_seq) {
            below += threads[t].clock < h_safe ? size_t{1} : size_t{0};
          }
          threaded_phase = below <= budget;  // Whole phase fits: keep it parallel.
        }
        if (threaded_phase) {
          run_phase(Phase::kOwnerDrain, h_safe);
          owner_ops->Fold();  // Per-shard counter scratch -> system counters.
          for (ShardRt& sh : shards) {
            retired += sh.phase_retired;
            sh.phase_retired = 0;
          }
        } else {
          // Fused sequential phase: retire straight off the scan's eligible list in
          // global (clock, index) order. Same-blade threads always share a shard, so
          // their relative order matches the shard-local sort exactly, and cross-blade
          // phase ops commute — bit-identical to the shard-major and threaded
          // executions, minus the per-shard scratch/dispatch per phase.
          if (phase_seq.size() > 1) {
            std::sort(phase_seq.begin(), phase_seq.end(), [&](size_t a, size_t b) {
              return threads[a].clock != threads[b].clock
                         ? threads[a].clock < threads[b].clock
                         : threads[a].index < threads[b].index;
            });
          }
          for (const size_t t : phase_seq) {
            ThreadRt& th = threads[t];
            if (th.clock >= h_safe || retired >= budget) {
              break;  // Sorted ascending: every later entry is at or past H_safe.
            }
            ShardRt& sh = shards[th.shard];
            const AccessResult r =
                system->Access(th.tid, th.blade, th.top_va, th.top_type, th.clock);
            sh.report.latency_histogram.Record(r.latency);
            sh.report.latency_sum += r.latency;
            ++sh.report.drained_ops;
            ++sh.report.owner_drained;
            th.last_start = th.clock;
            th.clock += r.latency + think;
            if (th.buf_valid && th.buf_pos < th.buf_len) {
              ++th.buf_pos;  // Run-cursor alignment, exactly as on the serialized step.
            } else {
              th.ran_in_drain = true;
            }
            sh.report.makespan = std::max(sh.report.makespan, th.clock);
            th.drain_classified = false;
            ++retired;
            if (++th.next_op >= traces.threads[th.index].ops.size()) {
              th.finished = true;
            } else {
              // Hits never evict, insert or fire events — only this thread's verdict
              // moved; refresh it on the fly for the next sub-round's scan.
              classify(th);
            }
          }
        }
        if (exec_sinks[0] != nullptr && retired != 0) [[unlikely]] {
          // Execution event: one owner-parallel drain sub-round, stamped at its safety
          // horizon. Deliberately NOT the control sink — the control ring must hold only
          // the semantic stream, so drop-oldest overflow displaces the same events for
          // every shard count; round-cadence execution events go to the shard-0 mailbox
          // (the drain is serialized, so no phase writer is live here).
          TraceEvent ev;
          ev.kind = TraceEventKind::kDrainPhase;
          ev.clock = h_safe;
          ev.a = retired;
          ev.b = h_safe;
          exec_sinks[0]->Emit(ev);
        }
        if (bounded) {
          // Phase ops are hits by construction; the streak accumulates in bulk (any
          // deterministic, layout-invariant policy preserves bit-identity of results).
          hit_streak += static_cast<uint32_t>(std::min<uint64_t>(retired, UINT32_MAX));
          if (hit_streak >= hit_streak_exit) {
            break;
          }
        }
      } else {
        const SimTime start = threads[t_min].clock;
        const ComputeBladeId acc_blade = threads[t_min].blade;
        const VirtAddr acc_va = threads[t_min].top_va;
        const SerialStep step = exec_serial(t_min);
        if (start >= drain_boundary || step.failed) {
          // The step ran at or past a time-driven event (epoch end, scheduled drain,
          // sampler tick) and may have fired it, or it failed outright (the §4.4 reset
          // flushes a directory region whose span the result does not carry) — anything
          // can have moved. Reclassify everything against the fresh boundary.
          for (ThreadRt& th : threads) {
            th.drain_classified = false;
          }
          drain_boundary = compute_boundary();
        } else if (!step.hit) {
          // A sub-boundary miss mutates hit-state only at the accessor's blade (fetch
          // insert + eviction, lock/swap bookkeeping, prefetch issue) and on remote
          // copies inside the invalidation span: the accessed page itself (GAM's
          // page-exact unicast invalidations) plus, when a MIND multicast wave fired,
          // every page of the directory entry (false invalidations). So only verdicts
          // matching the blade, the page, or the wave span can have gone stale. The
          // miss can also *schedule* a new serial boundary (e.g. bounded splitting
          // opening an epoch): a shrunken boundary invalidates eligible verdicts now
          // at or past it.
          const bool waved = step.wave_end > step.wave_base;
          for (ThreadRt& th : threads) {
            if (th.drain_classified &&
                (th.blade == acc_blade || th.top_va == acc_va ||
                 (waved && th.top_va >= step.wave_base && th.top_va < step.wave_end))) {
              th.drain_classified = false;
            }
          }
          const SimTime fresh = compute_boundary();
          if (fresh < drain_boundary) {
            for (ThreadRt& th : threads) {
              if (th.drain_classified && th.drain_eligible && th.clock >= fresh) {
                th.drain_classified = false;
              }
            }
          }
          drain_boundary = fresh;
        }
        // A hit below the boundary fires nothing and never evicts or inserts — only the
        // executed thread's verdict (cleared inside exec_serial) went stale.
        if (bounded) {
          if (step.hit) {
            if (++hit_streak >= hit_streak_exit) {
              break;
            }
          } else {
            hit_streak = 0;
            if (++coherence_ops >= max_coherence_ops) {
              break;
            }
          }
        }
      }
    }
  };

  // Serialized drain stretches record on the profiler's serial lane; nested
  // owner-parallel sub-rounds still record on their shard lanes (the serial-drain
  // interval contains them — see docs/observability.md).
  auto timed_drain = [&](bool bounded, uint32_t max_coherence_ops,  // MIND_SERIALIZED_PATH
                         uint32_t hit_streak_exit) {
    const uint64_t drain_start = prof != nullptr ? prof->Begin() : 0;
    drain(bounded, max_coherence_ops, hit_streak_exit);
    if (prof != nullptr) {
      prof->End(prof->serial_lane(), PhaseProfiler::Phase::kSerialDrain, drain_start);
    }
  };

  if (reference_mode) {
    timed_drain(/*bounded=*/false, 0, 0);
  } else {
    // --- Round loop -------------------------------------------------------

    // Adaptive drain exit policy (deterministic, hence result-invariant — the drain is
    // always in exact global order): on coherence-dense stretches, rounds commit almost
    // nothing and the scan/commit/barrier machinery is pure overhead, so each
    // unproductive round lets the next drain run geometrically longer — both more
    // coherence ops and a longer hit streak before it hands back — keeping the engine on
    // the near-serial drain until real blade-local runs reappear; one productive round
    // snaps the policy back to the configured bounds.
    uint32_t drain_coherence_budget = options_.drain_max_coherence_ops;
    uint32_t drain_streak_exit = options_.drain_hit_streak_exit;
    constexpr uint32_t kMaxCoherenceBudget = 4096;
    constexpr uint32_t kMaxStreakExit = 64;

    for (;;) {
      run_phase(Phase::kScan, 0);
      SimTime horizon = kNoHorizon;
      bool any_blocked = false;
      for (const ShardRt& sh : shards) {
        horizon = std::min(horizon, sh.barrier);
        any_blocked |= sh.any_blocked;
      }
      // A scheduled fault event (e.g. a blade drain) mutates caches at its chosen clock:
      // channel hits at or past that clock must not commit before the event runs on the
      // serialized path (the first drained Access with clock >= the event time fires it).
      // kNever leaves the horizon untouched.
      horizon = std::min(horizon, system->NextScheduledFaultAt());
      uint64_t committed_before = 0;
      for (const ShardRt& sh : shards) {
        committed_before += sh.report.parallel_hits;
      }
      run_phase(Phase::kCommit, horizon);
      bool all_finished = true;
      for (const ThreadRt& th : threads) {
        if (!th.finished) {
          all_finished = false;
          break;
        }
      }
      if (all_finished) {
        break;
      }
      assert(horizon != kNoHorizon && "unfinished threads must contribute a barrier");
      uint64_t committed_after = 0;
      for (const ShardRt& sh : shards) {
        committed_after += sh.report.parallel_hits;
      }
      // When every barrier came from window exhaustion (no blocked thread), the horizon
      // thread committed its whole window and rescanning alone makes progress — except in
      // degenerate zero-latency/zero-think configs where the horizon equals the frontier
      // clock and nothing commits; the drain (always exact) then guarantees progress.
      if (any_blocked || committed_after == committed_before) {
        timed_drain(/*bounded=*/true, drain_coherence_budget, drain_streak_exit);
        if (committed_after - committed_before < threads.size()) {
          drain_coherence_budget = std::min(drain_coherence_budget * 2, kMaxCoherenceBudget);
          drain_streak_exit = std::min(drain_streak_exit * 2, kMaxStreakExit);
        } else {
          drain_coherence_budget = options_.drain_max_coherence_ops;
          drain_streak_exit = options_.drain_hit_streak_exit;
        }
      }
    }
  }
  if (use_threads) {
    {
      MutexLock lk(sync.mu);
      sync.exit = true;
    }
    sync.work_cv.NotifyAll();
    for (std::thread& w : workers) {
      w.join();
    }
  }

  // Trailing time-driven control-plane work: per-op replay runs splitting epochs inside
  // every Access, including hits past the last coherence event; AdvanceTo replays those
  // boundaries (same boundary timestamps, same entry stats) for full-state identity. On
  // the reference path the final Access already ran them, making this a no-op.
  SimTime max_start = 0;
  uint64_t total_ops = 0;
  for (const ShardRt& sh : shards) {
    total_ops += sh.report.parallel_hits + sh.report.drained_ops;
  }
  for (const ThreadRt& th : threads) {
    max_start = std::max(max_start, th.last_start);
  }
  if (total_ops > 0) {
    system->AdvanceTo(max_start);
  }

  // --- Merge --------------------------------------------------------------

  ReplayReport report;
  report.system = system->name();
  report.workload = traces.name;
  report.total_ops = total_ops;
  report.counters = system->counters().DeltaSince(before);
  report.prefetch = system->prefetch_stats().DeltaSince(prefetch_before);
  report.fault = system->fault_counters().DeltaSince(fault_before);
  uint64_t latency_sum = 0;
  shard_reports_.clear();
  shard_reports_.reserve(shards.size());
  for (ShardRt& sh : shards) {
    report.makespan = std::max(report.makespan, sh.report.makespan);
    report.latency_histogram.Merge(sh.report.latency_histogram);
    report.counters.Merge(sh.report.counters);
    latency_sum += sh.report.latency_sum;
    shard_reports_.push_back(std::move(sh.report));
  }
  // Throughput divides by the *merged* makespan — the slowest shard's frontier — not any
  // single shard's clock, so per-shard reports combine without inflating MOPS.
  if (report.makespan > 0) {
    report.throughput_mops =
        static_cast<double>(report.total_ops) / (ToSeconds(report.makespan) * 1e6);
  }
  if (report.total_ops > 0) {
    report.avg_latency_us =
        ToMicros(latency_sum) / static_cast<double>(report.total_ops);
  }

  // --- Observability report boundary --------------------------------------
  // Final registry fill: the system's cumulative tree under "system/", the run's delta
  // report under "replay/". Prefetch stats enter only here (prefetch_stats() resolves
  // lazily and must not run mid-drain — see MemorySystem::CollectMetrics).
  system->CollectMetrics(metrics_.get(), "system");
  report.FillRegistry(metrics_.get(), "replay");
  metrics_->SetGauge("replay/shards", static_cast<double>(effective_shards_));
  uint64_t parallel_hits = 0;
  uint64_t grouped_ops = 0;
  uint64_t drained_ops = 0;
  uint64_t owner_drained = 0;
  for (const ShardReport& sr : shard_reports_) {
    parallel_hits += sr.parallel_hits;
    grouped_ops += sr.grouped_ops;
    drained_ops += sr.drained_ops;
    owner_drained += sr.owner_drained;
  }
  metrics_->SetCounter("replay/parallel_hits", parallel_hits);
  metrics_->SetCounter("replay/grouped_ops", grouped_ops);
  metrics_->SetCounter("replay/drained_ops", drained_ops);
  metrics_->SetCounter("replay/owner_drained", owner_drained);
  if (trace_scope_ != nullptr) {
    (void)system->SetTraceSink(nullptr);  // Detach before the scope can go away.
    trace_scope_->Finalize();
    metrics_->SetCounter("trace/semantic_events", trace_scope_->semantic_events());
    metrics_->SetCounter("trace/execution_events", trace_scope_->execution_events());
    metrics_->SetCounter("trace/dropped", trace_scope_->dropped());
    metrics_->SetCounter("trace/semantic_digest", trace_scope_->SemanticDigest());
  }
  return report;
}

void ReplayReport::FillRegistry(MetricsRegistry* reg, const std::string& prefix) const {
  reg->SetGauge(prefix + "/makespan_ns", static_cast<double>(makespan));
  reg->SetCounter(prefix + "/total_ops", total_ops);
  reg->SetGauge(prefix + "/throughput_mops", throughput_mops);
  reg->SetGauge(prefix + "/avg_latency_us", avg_latency_us);
  reg->SetSummary(prefix + "/latency_ns", latency_histogram.Summary());
  reg->SetCounter(prefix + "/counters/total_accesses", counters.total_accesses);
  reg->SetCounter(prefix + "/counters/local_hits", counters.local_hits);
  reg->SetCounter(prefix + "/counters/remote_accesses", counters.remote_accesses);
  reg->SetCounter(prefix + "/counters/invalidations", counters.invalidations);
  reg->SetCounter(prefix + "/counters/pages_flushed", counters.pages_flushed);
  reg->SetCounter(prefix + "/counters/false_invalidations",
                  counters.false_invalidations);
  reg->SetCounter(prefix + "/breakdown/fault_ns", counters.breakdown_sums.fault);
  reg->SetCounter(prefix + "/breakdown/network_ns", counters.breakdown_sums.network);
  reg->SetCounter(prefix + "/breakdown/inv_queue_ns", counters.breakdown_sums.inv_queue);
  reg->SetCounter(prefix + "/breakdown/inv_tlb_ns", counters.breakdown_sums.inv_tlb);
  reg->SetCounter(prefix + "/breakdown/fabric_wait_ns",
                  counters.breakdown_sums.fabric_wait);
  reg->SetCounter(prefix + "/prefetch/issued", prefetch.issued);
  reg->SetCounter(prefix + "/prefetch/useful", prefetch.useful);
  reg->SetCounter(prefix + "/prefetch/late", prefetch.late);
  reg->SetCounter(prefix + "/prefetch/evicted_unused", prefetch.evicted_unused);
  reg->SetCounter(prefix + "/prefetch/discarded_stale", prefetch.discarded_stale);
  reg->SetCounter(prefix + "/prefetch/rearmed", prefetch.rearmed);
  reg->SetCounter(prefix + "/prefetch/throttled", prefetch.throttled);
  reg->SetGauge(prefix + "/prefetch/coverage", PrefetchCoverage());
  reg->SetCounter(prefix + "/fault/timeouts", fault.timeouts);
  reg->SetCounter(prefix + "/fault/retransmissions", fault.retransmissions);
  reg->SetCounter(prefix + "/fault/resets_triggered", fault.resets_triggered);
  reg->SetCounter(prefix + "/fault/pages_flushed_by_reset", fault.pages_flushed_by_reset);
  reg->SetCounter(prefix + "/fault/drains_completed", fault.drains_completed);
  reg->SetCounter(prefix + "/fault/drain_pages_migrated", fault.drain_pages_migrated);
  reg->SetCounter(prefix + "/fault/stalled_deliveries", fault.stalled_deliveries);
  reg->SetGauge(prefix + "/rates/remote_accesses_per_op", RemoteAccessesPerOp());
  reg->SetGauge(prefix + "/rates/invalidations_per_op", InvalidationsPerOp());
  reg->SetGauge(prefix + "/rates/flushed_pages_per_op", FlushedPagesPerOp());
}

}  // namespace mind
