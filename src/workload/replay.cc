#include "src/workload/replay.h"

#include <algorithm>
#include <queue>

namespace mind {

Status ReplayEngine::Setup() {
  if (setup_done_) {
    return Status(ErrorCode::kExists, "Setup called twice");
  }
  segments_.reserve(traces_->segments.size());
  for (const auto& seg : traces_->segments) {
    SegmentMap map;
    for (uint64_t first = 0; first < seg.pages; first += kChunkPages) {
      const uint64_t chunk_pages = std::min(kChunkPages, seg.pages - first);
      auto base = system_->Alloc(chunk_pages * kPageSize);
      if (!base.ok()) {
        return base.status();
      }
      map.chunk_bases.push_back(*base);
    }
    segments_.push_back(std::move(map));
  }
  const int blades = std::min(traces_->num_blades, system_->num_compute_blades());
  thread_ids_.reserve(traces_->threads.size());
  thread_blades_.reserve(traces_->threads.size());
  for (size_t t = 0; t < traces_->threads.size(); ++t) {
    const auto blade = static_cast<ComputeBladeId>(t % static_cast<size_t>(blades));
    auto tid = system_->RegisterThread(blade);
    if (!tid.ok()) {
      return tid.status();
    }
    thread_ids_.push_back(*tid);
    thread_blades_.push_back(blade);
  }
  setup_done_ = true;
  return Status::Ok();
}

ReplayReport ReplayEngine::Run(Sampler sampler, SimTime sample_interval) {
  ReplayReport report;
  report.system = system_->name();
  report.workload = traces_->name;

  const SystemCounters before = system_->counters();

  struct ThreadCursor {
    SimTime clock = 0;
    size_t next_op = 0;
  };
  std::vector<ThreadCursor> cursors(traces_->threads.size());

  // Min-heap keyed by thread clock: pop the earliest thread, run one access, push back.
  using HeapItem = std::pair<SimTime, size_t>;  // (clock, thread index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (size_t t = 0; t < cursors.size(); ++t) {
    if (!traces_->threads[t].ops.empty()) {
      heap.emplace(0, t);
    }
  }

  SimTime next_sample = sample_interval;
  SimTime makespan = 0;
  uint64_t total_ops = 0;
  uint64_t latency_sum = 0;

  while (!heap.empty()) {
    const auto [clock, t] = heap.top();
    heap.pop();
    ThreadCursor& cur = cursors[t];

    if (sampler != nullptr && clock >= next_sample) {
      sampler(clock);
      while (clock >= next_sample) {
        next_sample += sample_interval;
      }
    }

    const TraceOp& op = traces_->threads[t].ops[cur.next_op];
    const VirtAddr va = AddressOf(op.segment, op.page);
    const AccessResult res =
        system_->Access(thread_ids_[t], thread_blades_[t], va, op.type, cur.clock);

    cur.clock += res.latency + traces_->think_time;
    makespan = std::max(makespan, cur.clock);
    ++total_ops;
    latency_sum += res.latency;
    report.latency_histogram.Record(res.latency);

    if (++cur.next_op < traces_->threads[t].ops.size()) {
      heap.emplace(cur.clock, t);
    }
  }

  report.makespan = makespan;
  report.total_ops = total_ops;
  if (makespan > 0) {
    report.throughput_mops =
        static_cast<double>(total_ops) / (ToSeconds(makespan) * 1e6);
  }
  if (total_ops > 0) {
    report.avg_latency_us =
        ToMicros(latency_sum) / static_cast<double>(total_ops);
  }

  const SystemCounters after = system_->counters();
  report.counters.total_accesses = after.total_accesses - before.total_accesses;
  report.counters.local_hits = after.local_hits - before.local_hits;
  report.counters.remote_accesses = after.remote_accesses - before.remote_accesses;
  report.counters.invalidations = after.invalidations - before.invalidations;
  report.counters.pages_flushed = after.pages_flushed - before.pages_flushed;
  report.counters.false_invalidations =
      after.false_invalidations - before.false_invalidations;
  report.counters.breakdown_sums.fault =
      after.breakdown_sums.fault - before.breakdown_sums.fault;
  report.counters.breakdown_sums.network =
      after.breakdown_sums.network - before.breakdown_sums.network;
  report.counters.breakdown_sums.inv_queue =
      after.breakdown_sums.inv_queue - before.breakdown_sums.inv_queue;
  report.counters.breakdown_sums.inv_tlb =
      after.breakdown_sums.inv_tlb - before.breakdown_sums.inv_tlb;
  return report;
}

}  // namespace mind
