#include "src/workload/replay.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>

namespace mind {

Status ReplayEngine::Setup() {
  if (setup_done_) {
    return Status(ErrorCode::kExists, "Setup called twice");
  }
  segments_.reserve(traces_->segments.size());
  for (const auto& seg : traces_->segments) {
    SegmentMap map;
    for (uint64_t first = 0; first < seg.pages; first += kChunkPages) {
      const uint64_t chunk_pages = std::min(kChunkPages, seg.pages - first);
      auto base = system_->Alloc(chunk_pages * kPageSize);
      if (!base.ok()) {
        return base.status();
      }
      map.chunk_bases.push_back(*base);
    }
    segments_.push_back(std::move(map));
  }
  const int blades = std::min(traces_->num_blades, system_->num_compute_blades());
  thread_ids_.reserve(traces_->threads.size());
  thread_blades_.reserve(traces_->threads.size());
  for (size_t t = 0; t < traces_->threads.size(); ++t) {
    const auto blade = static_cast<ComputeBladeId>(t % static_cast<size_t>(blades));
    auto tid = system_->RegisterThread(blade);
    if (!tid.ok()) {
      return tid.status();
    }
    thread_ids_.push_back(*tid);
    thread_blades_.push_back(blade);
  }
  setup_done_ = true;
  return Status::Ok();
}

ReplayReport ReplayEngine::Run(Sampler sampler, SimTime sample_interval) {
  ReplayReport report;
  report.system = system_->name();
  report.workload = traces_->name;

  const SystemCounters before = system_->counters();

  struct ThreadCursor {
    SimTime clock = 0;
    size_t next_op = 0;
  };
  std::vector<ThreadCursor> cursors(traces_->threads.size());

  // Min-heap keyed by thread clock: pop the earliest thread, run one access, push back.
  using HeapItem = std::pair<SimTime, size_t>;  // (clock, thread index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (size_t t = 0; t < cursors.size(); ++t) {
    if (!traces_->threads[t].ops.empty()) {
      heap.emplace(0, t);
    }
  }

  SimTime next_sample = sample_interval;
  SimTime makespan = 0;
  uint64_t total_ops = 0;
  uint64_t latency_sum = 0;

  while (!heap.empty()) {
    const auto [clock, t] = heap.top();
    heap.pop();
    ThreadCursor& cur = cursors[t];

    if (sampler != nullptr && clock >= next_sample) {
      sampler(clock);
      while (clock >= next_sample) {
        next_sample += sample_interval;
      }
    }

    const TraceOp& op = traces_->threads[t].ops[cur.next_op];
    const VirtAddr va = AddressOf(op.segment, op.page);
    const AccessResult res =
        system_->Access(thread_ids_[t], thread_blades_[t], va, op.type, cur.clock);

    cur.clock += res.latency + traces_->think_time;
    makespan = std::max(makespan, cur.clock);
    ++total_ops;
    latency_sum += res.latency;
    report.latency_histogram.Record(res.latency);

    if (++cur.next_op < traces_->threads[t].ops.size()) {
      heap.emplace(cur.clock, t);
    }
  }

  report.makespan = makespan;
  report.total_ops = total_ops;
  if (makespan > 0) {
    report.throughput_mops =
        static_cast<double>(total_ops) / (ToSeconds(makespan) * 1e6);
  }
  if (total_ops > 0) {
    report.avg_latency_us =
        ToMicros(latency_sum) / static_cast<double>(total_ops);
  }

  report.counters = system_->counters().DeltaSince(before);
  return report;
}

// ---------------------------------------------------------------------------
// ShardedReplayEngine.
// ---------------------------------------------------------------------------

namespace {

constexpr SimTime kNoHorizon = std::numeric_limits<SimTime>::max();

// Adaptive per-thread scan-window bounds: windows start small, double while runs commit
// whole, and shrink toward the observed committed run length when a coherence horizon or
// a state-version change cuts a run short. This bounds wasted peeks to ~2x the committed
// ops even in coherence-dense traces, while hit-dominated traces quickly reach the
// configured maximum window.
constexpr uint32_t kMinScanWindow = 4;

// Per-thread replay cursor plus its peeked hit-run. A run is peeked once (one batched
// virtual call) and reused across rounds while it stays exact: the blade's
// LocalStateVersion is unchanged (no membership/permission mutation on that blade) and
// the thread itself has not advanced through the serialized drain. Latencies and hints
// inside a valid run cannot drift — blade-local commits only touch recency and dirt.
struct ThreadRt {
  SimTime clock = 0;
  uint64_t next_op = 0;
  SimTime last_start = 0;  // Start timestamp of the last executed op (trailing epochs).
  size_t index = 0;        // Global thread index (heap tie-break, same as serial replay).
  ThreadId tid = 0;
  ComputeBladeId blade = 0;
  int shard = 0;
  bool finished = false;
  // Peeked run state.
  bool buf_valid = false;
  bool blocked = false;        // Peek refused at the run end (a coherence op is next).
  bool window_capped = false;  // Run ended at the scan window with trace ops remaining.
  bool ran_in_drain = false;   // Cursor moved outside the fast path; run is stale.
  uint64_t scan_version = 0;
  uint32_t window = kMinScanWindow;  // Adaptive scan-window size (see kMinScanWindow).
  SimTime buf_end_clock = 0;
  SimTime uniform_lat = 0;     // Nonzero: every op in the run has this latency.
  size_t buf_pos = 0;          // Committed prefix of the run.
  size_t buf_len = 0;          // Peeked length of the run.
  std::vector<SimTime> lats;   // Per-op latencies; meaningful only when uniform_lat == 0.
  std::vector<void*> hints;    // Opaque commit tokens from PeekLocalRun.
};

struct ShardRt {
  std::vector<size_t> threads;                     // Owned global thread indices.
  std::vector<std::vector<size_t>> blade_threads;  // Grouped by owned blade.
  SimTime barrier = kNoHorizon;  // Scan result: earliest clock this shard cannot pass.
  bool any_blocked = false;
  Rng rng{0};  // Per-shard stream (reserved for stochastic replay extensions).
  ShardReport report;
};

}  // namespace

Status ShardedReplayEngine::Setup() {
  if (Status s = base_.Setup(); !s.ok()) {
    return s;
  }
  // Materialize the VA-resolved op stream per thread (see header): the scan phase hands
  // contiguous slices of these arrays straight to PeekLocalRun.
  thread_ops_.resize(base_.traces_->threads.size());
  for (size_t t = 0; t < thread_ops_.size(); ++t) {
    const auto& ops = base_.traces_->threads[t].ops;
    thread_ops_[t].reserve(ops.size());
    for (const TraceOp& op : ops) {
      thread_ops_[t].push_back(LocalOp{base_.AddressOf(op.segment, op.page), op.type});
    }
  }
  return Status::Ok();
}

ReplayReport ShardedReplayEngine::Run(ReplayEngine::Sampler sampler,
                                      SimTime sample_interval) {
  if (sampler != nullptr) {
    // Samplers observe the system between globally-ordered ops; only the serial engine
    // provides those exact observation points.
    effective_shards_ = 1;
    shard_reports_.clear();
    return base_.Run(std::move(sampler), sample_interval);
  }
  assert(base_.setup_done_ && "Setup must be called before Run");
  MemorySystem* system = base_.system_;
  const WorkloadTraces& traces = *base_.traces_;
  const SimTime think = traces.think_time;
  // Sanitized adaptive-window bounds: a configured cap below kMinScanWindow lowers the
  // floor with it, keeping every clamp well-formed (lo <= hi).
  const uint32_t max_window = std::max(options_.scan_window_ops, 1u);
  const uint32_t min_window = std::min(kMinScanWindow, max_window);

  // Shard layout: blades are dealt round-robin to shards, threads follow their blade.
  int blades_used = 1;
  for (const ComputeBladeId b : base_.thread_blades_) {
    blades_used = std::max(blades_used, static_cast<int>(b) + 1);
  }
  const int num_shards = std::clamp(options_.shards, 1, blades_used);
  effective_shards_ = num_shards;

  std::vector<ThreadRt> threads(traces.threads.size());
  std::vector<ShardRt> shards(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards[s].rng = Rng(options_.seed ^ (0x9e3779b97f4a7c15ull * (s + 1)));
    shards[s].blade_threads.resize(
        static_cast<size_t>((blades_used - s + num_shards - 1) / num_shards));
  }
  for (size_t t = 0; t < threads.size(); ++t) {
    ThreadRt& th = threads[t];
    th.index = t;
    th.window = min_window;
    th.tid = base_.thread_ids_[t];
    th.blade = base_.thread_blades_[t];
    th.shard = static_cast<int>(th.blade) % num_shards;
    th.finished = traces.threads[t].ops.empty();
    ShardRt& sh = shards[th.shard];
    sh.threads.push_back(t);
    sh.blade_threads[static_cast<size_t>(th.blade) / num_shards].push_back(t);
  }

  const SystemCounters before = system->counters();

  // --- Phase bodies -------------------------------------------------------

  // Scan (parallel, read-only): refresh each owned thread's peeked run where stale, and
  // find the shard's barrier — the earliest timestamp it cannot replay without the drain.
  auto scan_shard = [&](int s) {
    ShardRt& sh = shards[s];
    sh.barrier = kNoHorizon;
    sh.any_blocked = false;
    for (const size_t t : sh.threads) {
      ThreadRt& th = threads[t];
      if (th.finished) {
        continue;
      }
      const uint64_t version = system->LocalStateVersion(th.blade);
      const bool keep = th.buf_valid && !th.ran_in_drain && version == th.scan_version &&
                        th.buf_pos < th.buf_len;
      if (!keep) {
        if (th.buf_valid) {
          if (th.buf_pos >= th.buf_len) {
            th.window = std::min(th.window * 2, max_window);
          } else {
            // Shrink smoothly (at most halving) toward twice the committed run, so one
            // early-cut round does not collapse a well-sized window.
            th.window =
                std::clamp(std::max(static_cast<uint32_t>(th.buf_pos) * 2, th.window / 2),
                           min_window, max_window);
          }
        }
        const std::vector<LocalOp>& resolved = thread_ops_[t];
        const size_t want = static_cast<size_t>(std::min<uint64_t>(
            th.window, resolved.size() - th.next_op));
        if (th.lats.size() < want) {
          th.lats.resize(want);
        }
        if (th.hints.size() < want) {
          th.hints.resize(want);
        }
        SimTime end_clock = th.clock;
        SimTime uniform_lat = 0;
        const size_t m =
            system->PeekLocalRun(th.tid, th.blade, resolved.data() + th.next_op, want,
                                 th.clock, think, th.lats.data(), th.hints.data(),
                                 &end_clock, &uniform_lat);
        th.buf_pos = 0;
        th.buf_len = m;
        th.uniform_lat = uniform_lat;
        th.blocked = m < want;
        th.window_capped = !th.blocked && th.next_op + m < resolved.size();
        th.buf_end_clock = end_clock;
        th.scan_version = version;
        th.buf_valid = true;
        th.ran_in_drain = false;
      }
      if (th.blocked || th.window_capped) {
        sh.any_blocked |= th.blocked;
        sh.barrier = std::min(sh.barrier, th.buf_end_clock);
      }
    }
  };

  // Commit (parallel, mutating blade-local state only): replay peeked hits with start
  // timestamps strictly below the horizon. `finished` guards against a stale run: a
  // thread the drain ran to completion is skipped by the scan, so its old peeked ops
  // must never replay. Same-blade threads merge in (clock, thread) order so LRU recency
  // and dirty bits evolve exactly as under serial replay.
  auto commit_prefix = [&](ThreadRt& th, ShardRt& sh, SimTime horizon, size_t max_ops) {
    if (th.finished || !th.buf_valid) {
      return;
    }
    const size_t start = th.buf_pos;
    if (start >= th.buf_len || th.clock >= horizon) {
      return;
    }
    SimTime clock = th.clock;
    SimTime last_start = th.last_start;
    size_t count;
    if (th.uniform_lat != 0) {
      // Uniform-latency run: the committable prefix is pure arithmetic — count ops whose
      // start clock lies below the horizon and account them with one RecordN.
      const SimTime step = th.uniform_lat + think;
      count = std::min(th.buf_len - start, max_ops);
      count = static_cast<size_t>(std::min<uint64_t>(
          count, (horizon - clock - 1) / step + 1));
      last_start = clock + static_cast<SimTime>(count - 1) * step;
      clock += static_cast<SimTime>(count) * step;
      sh.report.latency_histogram.RecordN(th.uniform_lat, count);
      sh.report.latency_sum += th.uniform_lat * count;
    } else {
      count = 0;
      while (start + count < th.buf_len && count < max_ops && clock < horizon) {
        const SimTime lat = th.lats[start + count];
        last_start = clock;
        clock += lat + think;
        sh.report.latency_histogram.Record(lat);
        sh.report.latency_sum += lat;
        ++count;
      }
      if (count == 0) {
        return;
      }
    }
    system->CommitLocalRun(th.tid, th.blade, th.hints.data() + start, count);
    sh.report.parallel_hits += count;
    sh.report.counters.total_accesses += count;
    sh.report.counters.local_hits += count;
    th.last_start = last_start;
    th.clock = clock;
    th.buf_pos = start + count;
    th.next_op += count;
    sh.report.makespan = std::max(sh.report.makespan, clock);
    if (th.next_op == traces.threads[th.index].ops.size()) {
      th.finished = true;
    }
  };
  auto commit_shard = [&](int s, SimTime horizon) {
    ShardRt& sh = shards[s];
    for (const auto& group : sh.blade_threads) {
      if (group.size() == 1) {
        // One thread on the blade: the whole eligible prefix commits in one batch.
        commit_prefix(threads[group[0]], sh, horizon, SIZE_MAX);
        continue;
      }
      for (;;) {
        ThreadRt* best = nullptr;
        for (const size_t t : group) {
          ThreadRt& th = threads[t];
          if (th.finished || !th.buf_valid || th.buf_pos >= th.buf_len ||
              th.clock >= horizon) {
            continue;
          }
          if (best == nullptr || th.clock < best->clock ||
              (th.clock == best->clock && th.index < best->index)) {
            best = &th;
          }
        }
        if (best == nullptr) {
          break;
        }
        commit_prefix(*best, sh, horizon, 1);
      }
    }
  };

  // Serialized drain: the reference single-threaded algorithm over *all* threads, run
  // until the coherence burst passes. Every op it executes is in exact global
  // (clock, thread) order against the fully-merged state, so correctness does not depend
  // on the exit policy.
  auto drain = [&]() {
    using Item = std::pair<SimTime, size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    for (size_t t = 0; t < threads.size(); ++t) {
      if (!threads[t].finished) {
        heap.emplace(threads[t].clock, t);
      }
    }
    uint32_t coherence_ops = 0;
    uint32_t hit_streak = 0;
    while (!heap.empty()) {
      const auto [clock, t] = heap.top();
      heap.pop();
      ThreadRt& th = threads[t];
      const auto& ops = traces.threads[t].ops;
      const TraceOp& op = ops[th.next_op];
      const AccessResult r =
          system->Access(th.tid, th.blade, base_.AddressOf(op.segment, op.page), op.type,
                         th.clock);
      ShardRt& sh = shards[th.shard];
      sh.report.latency_histogram.Record(r.latency);
      sh.report.latency_sum += r.latency;
      ++sh.report.drained_ops;
      th.last_start = th.clock;
      th.clock += r.latency + think;
      th.ran_in_drain = true;  // Peeked run (if any) is positionally stale.
      sh.report.makespan = std::max(sh.report.makespan, th.clock);
      if (++th.next_op < ops.size()) {
        heap.emplace(th.clock, t);
      } else {
        th.finished = true;
      }
      if (r.local_hit) {
        if (++hit_streak >= options_.drain_hit_streak_exit) {
          break;
        }
      } else {
        hit_streak = 0;
        if (++coherence_ops >= options_.drain_max_coherence_ops) {
          break;
        }
      }
    }
  };

  // --- Worker pool --------------------------------------------------------

  enum class Phase : uint8_t { kScan, kCommit };
  struct Sync {
    std::mutex mu;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    uint64_t gen = 0;
    Phase phase = Phase::kScan;
    SimTime horizon = 0;
    int remaining = 0;
    bool exit = false;
  } sync;

  const bool use_threads =
      num_shards > 1 &&
      (options_.force_threads || std::thread::hardware_concurrency() > 1);
  std::vector<std::thread> workers;
  if (use_threads) {
    workers.reserve(static_cast<size_t>(num_shards) - 1);
    for (int s = 1; s < num_shards; ++s) {
      workers.emplace_back([&, s] {
        uint64_t seen = 0;
        for (;;) {
          Phase phase;
          SimTime horizon;
          {
            std::unique_lock lk(sync.mu);
            sync.work_cv.wait(lk, [&] { return sync.exit || sync.gen != seen; });
            if (sync.exit) {
              return;
            }
            seen = sync.gen;
            phase = sync.phase;
            horizon = sync.horizon;
          }
          if (phase == Phase::kScan) {
            scan_shard(s);
          } else {
            commit_shard(s, horizon);
          }
          {
            std::lock_guard lk(sync.mu);
            if (--sync.remaining == 0) {
              sync.done_cv.notify_one();
            }
          }
        }
      });
    }
  }
  auto run_phase = [&](Phase phase, SimTime horizon) {
    if (!use_threads) {
      for (int s = 0; s < num_shards; ++s) {
        phase == Phase::kScan ? scan_shard(s) : commit_shard(s, horizon);
      }
      return;
    }
    {
      std::lock_guard lk(sync.mu);
      sync.phase = phase;
      sync.horizon = horizon;
      sync.remaining = num_shards - 1;
      ++sync.gen;
    }
    sync.work_cv.notify_all();
    phase == Phase::kScan ? scan_shard(0) : commit_shard(0, horizon);
    std::unique_lock lk(sync.mu);
    sync.done_cv.wait(lk, [&] { return sync.remaining == 0; });
  };

  // --- Round loop ---------------------------------------------------------

  for (;;) {
    run_phase(Phase::kScan, 0);
    SimTime horizon = kNoHorizon;
    bool any_blocked = false;
    for (const ShardRt& sh : shards) {
      horizon = std::min(horizon, sh.barrier);
      any_blocked |= sh.any_blocked;
    }
    uint64_t committed_before = 0;
    for (const ShardRt& sh : shards) {
      committed_before += sh.report.parallel_hits;
    }
    run_phase(Phase::kCommit, horizon);
    bool all_finished = true;
    for (const ThreadRt& th : threads) {
      if (!th.finished) {
        all_finished = false;
        break;
      }
    }
    if (all_finished) {
      break;
    }
    assert(horizon != kNoHorizon && "unfinished threads must contribute a barrier");
    uint64_t committed_after = 0;
    for (const ShardRt& sh : shards) {
      committed_after += sh.report.parallel_hits;
    }
    // When every barrier came from window exhaustion (no blocked thread), the horizon
    // thread committed its whole window and rescanning alone makes progress — except in
    // degenerate zero-latency/zero-think configs where the horizon equals the frontier
    // clock and nothing commits; the drain (always exact) then guarantees progress.
    if (any_blocked || committed_after == committed_before) {
      drain();
    }
  }
  if (use_threads) {
    {
      std::lock_guard lk(sync.mu);
      sync.exit = true;
    }
    sync.work_cv.notify_all();
    for (std::thread& w : workers) {
      w.join();
    }
  }

  // Trailing time-driven control-plane work: serial replay runs splitting epochs inside
  // every Access, including hits past the last coherence event; AdvanceTo replays those
  // boundaries (same boundary timestamps, same entry stats) for full-state identity.
  SimTime max_start = 0;
  uint64_t total_ops = 0;
  for (const ShardRt& sh : shards) {
    total_ops += sh.report.parallel_hits + sh.report.drained_ops;
  }
  for (const ThreadRt& th : threads) {
    max_start = std::max(max_start, th.last_start);
  }
  if (total_ops > 0) {
    system->AdvanceTo(max_start);
  }

  // --- Merge --------------------------------------------------------------

  ReplayReport report;
  report.system = system->name();
  report.workload = traces.name;
  report.total_ops = total_ops;
  report.counters = system->counters().DeltaSince(before);
  uint64_t latency_sum = 0;
  shard_reports_.clear();
  shard_reports_.reserve(shards.size());
  for (ShardRt& sh : shards) {
    report.makespan = std::max(report.makespan, sh.report.makespan);
    report.latency_histogram.Merge(sh.report.latency_histogram);
    report.counters.Merge(sh.report.counters);
    latency_sum += sh.report.latency_sum;
    shard_reports_.push_back(std::move(sh.report));
  }
  // Throughput divides by the *merged* makespan — the slowest shard's frontier — not any
  // single shard's clock, so per-shard reports combine without inflating MOPS.
  if (report.makespan > 0) {
    report.throughput_mops =
        static_cast<double>(report.total_ops) / (ToSeconds(report.makespan) * 1e6);
  }
  if (report.total_ops > 0) {
    report.avg_latency_us =
        ToMicros(latency_sum) / static_cast<double>(report.total_ops);
  }
  return report;
}

}  // namespace mind
