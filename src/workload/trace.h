// System-independent memory-access traces.
//
// The paper captures workload accesses once (Intel PIN) and replays the identical stream
// against all compared systems (§7). Traces here are expressed against logical *segments*
// (shared heap, hot metadata, per-thread private) rather than raw VAs, so each system's own
// allocator can place them; the replay engine materializes VAs per system. This guarantees
// byte-identical access sequences across MIND, GAM and FastSwap.
#ifndef MIND_SRC_WORKLOAD_TRACE_H_
#define MIND_SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace mind {

struct TraceOp {
  uint32_t segment = 0;   // Index into WorkloadTraces::segments.
  uint64_t page = 0;      // Page offset within the segment.
  AccessType type = AccessType::kRead;
};

struct SegmentSpec {
  uint64_t pages = 0;

  [[nodiscard]] uint64_t bytes() const { return pages * kPageSize; }
};

struct ThreadTrace {
  std::vector<TraceOp> ops;
};

struct WorkloadTraces {
  std::string name;
  std::vector<SegmentSpec> segments;
  std::vector<ThreadTrace> threads;  // Global thread index; blade = index % num_blades.
  int num_blades = 1;
  SimTime think_time = 0;            // CPU work modeled between consecutive accesses.

  [[nodiscard]] uint64_t TotalOps() const {
    uint64_t n = 0;
    for (const auto& t : threads) {
      n += t.ops.size();
    }
    return n;
  }

  [[nodiscard]] uint64_t FootprintPages() const {
    uint64_t n = 0;
    for (const auto& s : segments) {
      n += s.pages;
    }
    return n;
  }
};

}  // namespace mind

#endif  // MIND_SRC_WORKLOAD_TRACE_H_
