// Synthetic workload generators matching the paper's evaluation set (§7).
//
// The original traces come from real applications (TensorFlow/ResNet-50, GraphChi/PageRank
// on the Twitter graph, Memcached under YCSB A/C) captured with Intel PIN — unavailable
// here. Each generator reproduces the statistical structure the paper *reports* for its
// workload, which is what the evaluation discriminates on:
//   TF  — streaming private activations + read-mostly shared parameters; very few shared
//         writes; scales ~1.67x per blade doubling.
//   GC  — random (power-law) traversal of a large shared graph; ~2.5x TF's shared-write
//         volume; peaks at 2 blades then degrades.
//   M_A — Memcached, YCSB-A: zipfian GET/SET 50/50 over a shared table, plus hot shared
//         metadata (LRU lists) written on nearly every operation.
//   M_C — Memcached, YCSB-C: 100% GET — but the LRU metadata writes remain, which is why it
//         still fails to scale across blades in the paper.
//   Native-KVS — partitioned KV store: threads mostly touch their own blade's partition.
//   Micro — uniform accesses over a 400k-page working set with exact read-ratio and
//         sharing-ratio knobs (Fig. 7 center/right).
#ifndef MIND_SRC_WORKLOAD_GENERATORS_H_
#define MIND_SRC_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/workload/trace.h"

namespace mind {

enum class Pattern : uint8_t {
  kSequential = 0,  // Streaming scan with wraparound.
  kUniform,
  kZipfian,
  kStrided,       // Fixed-stride scan (WorkloadSpec::stride_pages) with wraparound.
  kPointerChase,  // Deterministic RNG-permuted chase: page -> perm[page] along a single
                  // cycle (Sattolo), so every page is visited once per lap and
                  // consecutive deltas carry no majority stride to detect.
};

struct WorkloadSpec {
  std::string name = "custom";
  int num_blades = 1;
  int threads_per_blade = 1;
  uint64_t accesses_per_thread = 50'000;
  SimTime think_time = 200;  // ns of CPU work between accesses.
  uint64_t seed = 1;

  // Per-thread private segment.
  uint64_t private_pages_per_thread = 0;
  Pattern private_pattern = Pattern::kSequential;
  double private_write_fraction = 0.5;
  uint64_t stride_pages = 4;  // Step of kStrided scans (private and shared patterns).

  // Shared segment (one, visible to all threads).
  uint64_t shared_pages = 0;
  Pattern shared_pattern = Pattern::kUniform;
  double shared_access_fraction = 0.0;  // P(access targets the shared segment).
  double shared_write_fraction = 0.0;   // P(shared access is a write).
  double zipf_theta = 0.99;

  // Hot metadata segment (e.g. Memcached LRU lists): with probability
  // metadata_touch_prob, an operation *additionally* writes a metadata page.
  uint64_t metadata_pages = 0;
  double metadata_touch_prob = 0.0;

  // Partitioned sharing (Native-KVS): the shared segment is divided into per-blade
  // partitions; an access stays in the issuing blade's partition with probability
  // partition_locality, otherwise it lands uniformly anywhere in the segment.
  bool partitioned = false;
  double partition_locality = 0.8;

  [[nodiscard]] int total_threads() const { return num_blades * threads_per_blade; }
};

// Materializes the per-thread traces for a spec. Deterministic for a given spec+seed.
WorkloadTraces GenerateTraces(const WorkloadSpec& spec);

// --- Paper workload presets. `blades` and `threads_per_blade` select the scaling point. ---

WorkloadSpec TfSpec(int blades, int threads_per_blade, uint64_t accesses_per_thread = 40'000);
WorkloadSpec GcSpec(int blades, int threads_per_blade, uint64_t accesses_per_thread = 40'000);
WorkloadSpec MemcachedASpec(int blades, int threads_per_blade,
                            uint64_t accesses_per_thread = 40'000);
WorkloadSpec MemcachedCSpec(int blades, int threads_per_blade,
                            uint64_t accesses_per_thread = 40'000);
WorkloadSpec NativeKvsSpec(int blades, int threads_per_blade, double read_ratio,
                           uint64_t accesses_per_thread = 40'000,
                           uint64_t table_pages = 262'144);

// Fig. 7 microbenchmark: uniform over `total_pages` (400k in the paper), with exact
// read/sharing ratios; 1 thread per blade.
WorkloadSpec MicroSpec(int blades, double read_ratio, double sharing_ratio,
                       uint64_t total_pages = 400'000,
                       uint64_t accesses_per_thread = 30'000);

}  // namespace mind

#endif  // MIND_SRC_WORKLOAD_GENERATORS_H_
