// Directory-region shard ownership for the replay engine's coherence drain (the
// home-node partitioning of the ROADMAP's region-ownership item).
//
// Every 2 MB directory region — the granularity MIND's switch directory, the channel
// run-validity stamps (DramCache::RegionOf) and the bounded-splitting floor all share —
// gets a *home compute blade*: the blade whose threads touch the region most across the
// workload's traces (ties break toward the lower blade id, so the map is a pure function
// of the traces). A region's owner shard under an N-shard replay is then blade-affine,
// `home_blade % N` — exactly the blade->shard deal the engine already uses for threads,
// so a thread and the regions it predominantly touches always land on the same shard,
// for every shard count at once.
//
// The replay engine uses the map as the *eligibility gate* of its owner-parallel drain
// phases: an op may retire inside a phase only when its region's home blade is the
// accessing thread's blade (the accessor's shard owns the region under every shard
// decomposition simultaneously). Cross-region effects — a thread reaching into a region
// homed elsewhere, faults, invalidation waves, splits — are exactly what the gate routes
// through the serialized merge step instead. Because the gate is shard-count-invariant,
// the phase/serial composition of a drain (and with it every drain-occupancy counter) is
// bit-identical across 1/2/4/8 shards, which keeps the conformance oracle simple.
#ifndef MIND_SRC_WORKLOAD_REGION_OWNERSHIP_H_
#define MIND_SRC_WORKLOAD_REGION_OWNERSHIP_H_

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace mind {

class RegionOwnership {
 public:
  // 2 MB regions: the directory / channel-stamp / splitting-floor granularity.
  static constexpr uint32_t kRegionShift = 21;

  [[nodiscard]] static uint64_t RegionOf(VirtAddr va) { return va >> kRegionShift; }

  // Credits one trace op at `va` to `blade` (the accessing thread's compute blade).
  // Call once per trace op during engine setup, before Seal.
  void Credit(VirtAddr va, ComputeBladeId blade) {
    assert(!sealed_);
    std::vector<uint64_t>& counts = tallies_[RegionOf(va)];
    if (counts.size() <= blade) {
      counts.resize(static_cast<size_t>(blade) + 1, 0);
    }
    ++counts[blade];
  }

  // Fixes each credited region's home blade to the majority toucher (lowest blade id on
  // ties) and drops the tallies. The sealed map is a dense array over the credited region
  // span — segment VAs come from the allocator's contiguous heap, so the span is small
  // and HomeBlade (called once per classified op on the drain's hot path) is an index,
  // not a hash probe. Idempotent queries only after this.
  void Seal() {
    if (!tallies_.empty()) {
      base_region_ = UINT64_MAX;
      uint64_t last = 0;
      // detlint: allow(unordered-iteration): min/max reduce; order-invariant.
      for (const auto& [region, counts] : tallies_) {
        base_region_ = region < base_region_ ? region : base_region_;
        last = region > last ? region : last;
      }
      home_.assign(last - base_region_ + 1, -1);
      // detlint: allow(unordered-iteration): each iteration writes only its own keyed
      // slot of home_; the visit order cannot leak into the sealed map.
      for (const auto& [region, counts] : tallies_) {
        uint64_t best_count = 0;
        int16_t best_blade = 0;
        for (size_t b = 0; b < counts.size(); ++b) {
          if (counts[b] > best_count) {
            best_count = counts[b];
            best_blade = static_cast<int16_t>(b);
          }
        }
        home_[region - base_region_] = best_blade;
        ++credited_;
      }
    }
    tallies_.clear();
    sealed_ = true;
  }

  [[nodiscard]] bool sealed() const { return sealed_; }
  [[nodiscard]] size_t num_regions() const { return credited_; }

  // Home compute blade of the region containing `va`; -1 for a region no trace op was
  // credited to (callers treat unknown regions as cross-shard, i.e. serialized).
  [[nodiscard]] int HomeBlade(VirtAddr va) const {
    const uint64_t idx = RegionOf(va) - base_region_;
    return idx < home_.size() ? home_[idx] : -1;
  }

  // Owner shard under an N-shard replay: blade-affine for known regions (matching the
  // engine's blade->shard deal), hashed for unknown ones.
  [[nodiscard]] int OwnerShard(VirtAddr va, int num_shards) const {
    assert(num_shards > 0);
    const int blade = HomeBlade(va);
    return blade >= 0 ? blade % num_shards
                      : static_cast<int>(RegionOf(va) % static_cast<uint64_t>(num_shards));
  }

  // True when the accessor's blade owns the region under every shard decomposition at
  // once — the shard-count-invariant eligibility gate of the owner-parallel drain.
  [[nodiscard]] bool OwnedByAccessor(VirtAddr va, ComputeBladeId accessor_blade) const {
    return HomeBlade(va) == static_cast<int>(accessor_blade);
  }

 private:
  std::unordered_map<uint64_t, std::vector<uint64_t>> tallies_;  // region -> per-blade hits.
  uint64_t base_region_ = 0;   // First credited region (dense-array offset).
  std::vector<int16_t> home_;  // region - base_region_ -> home blade, -1 uncredited.
  size_t credited_ = 0;
  bool sealed_ = false;
};

}  // namespace mind

#endif  // MIND_SRC_WORKLOAD_REGION_OWNERSHIP_H_
