// Trace replay engine: the memory-access emulator of §7, built on AccessChannels.
//
// ReplayEngine replays system-independent traces against any MemorySystem. Compute blades
// are partitioned across N shards, each with its own logical-clock frontier, RNG stream,
// latency histogram and counter block, and replay alternates between a parallel phase
// (shards drive blade-local runs through the per-(thread, blade) AccessChannel
// submit/complete contract — see src/core/access_channel.h) and a serialized drain
// (coherence events — faults, invalidation waves, directory transitions, splitting epochs —
// execute through per-op Access on one thread in global timestamp order). The handoff
// between the two is a bounded epoch barrier: each round, every shard scans forward to the
// timestamp of its first non-local op (or a bounded window), the minimum across shards
// becomes the commit horizon H, and only ops starting strictly before H commit, in
// per-blade (clock, thread) order. Because a channel-accepted op neither reads nor writes
// anything a cross-shard coherence event can change (cache membership, permissions and PSO
// barriers are only mutated by the serialized drain, and submitted runs are revalidated
// against per-2MB-region version stamps), the merged result is bit-identical to
// single-threaded per-op replay — same makespan, counters and latency histogram for 1, 2
// or N shards, threads or no threads.
//
// Serial replay is the degenerate case of the same loop: one shard, same channels, same
// drain. Two situations force the pure per-op reference path (every op through Access on
// the global min-heap): a non-null sampler, which needs exact globally-ordered observation
// points, and ReplayOptions::use_channels = false, the conformance baseline the channel
// contract is tested against. An optional sampler observes the system at fixed
// simulated-time intervals (used for the directory-occupancy time series of Fig. 8 left).
#ifndef MIND_SRC_WORKLOAD_REPLAY_H_
#define MIND_SRC_WORKLOAD_REPLAY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/memory_system.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/phase_profiler.h"
#include "src/obs/trace_scope.h"
#include "src/workload/region_ownership.h"
#include "src/workload/trace.h"

namespace mind {

struct ReplayReport {
  std::string system;
  std::string workload;
  SimTime makespan = 0;           // Simulated time until the last thread finished.
  uint64_t total_ops = 0;
  double throughput_mops = 0.0;   // Million operations per simulated second.
  double avg_latency_us = 0.0;    // Mean thread-visible latency.
  Histogram latency_histogram;
  SystemCounters counters;        // Delta over the run.
  PrefetchStats prefetch;         // Delta over the run (all-zero with policy kNone).
  FaultCounters fault;            // Delta over the run (all-zero without fault injection).

  // Derived per-access rates (Fig. 6).
  [[nodiscard]] double RemoteAccessesPerOp() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(counters.remote_accesses) /
                                static_cast<double>(total_ops);
  }
  [[nodiscard]] double InvalidationsPerOp() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(counters.invalidations) /
                                static_cast<double>(total_ops);
  }
  [[nodiscard]] double FlushedPagesPerOp() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(counters.pages_flushed) /
                                static_cast<double>(total_ops);
  }

  // Remote-fault coverage of the prefetcher: the fraction of would-be remote faults a
  // prefetched page turned into local hits. Useful prefetches removed their fault from
  // counters.remote_accesses, so the denominator reassembles the no-prefetch fault count.
  [[nodiscard]] double PrefetchCoverage() const {
    const double would_fault =
        static_cast<double>(prefetch.useful + counters.remote_accesses);
    return would_fault == 0.0 ? 0.0 : static_cast<double>(prefetch.useful) / would_fault;
  }

  // Publishes every report field into the registry under `prefix` — the single
  // exporter the example binaries and figure generators print from, so the
  // report schema lives in exactly one place (src/obs/metrics_registry.h).
  void FillRegistry(MetricsRegistry* reg, const std::string& prefix) const;
};

struct ReplayOptions {
  // Replay shards; clamped to [1, blades driven by the trace].
  int shards = 1;
  // Drive blade-local runs through the systems' AccessChannels. Off = the per-op serial
  // reference path (every op through Access in exact global order) that the channel
  // conformance suite compares against.
  bool use_channels = true;
  // Drive same-blade threads through per-blade ChannelGroups (src/core/access_channel.h):
  // whenever >= 2 threads of a shard share a blade (and the system hands out groups), the
  // threads' submitted runs validate in one pass per blade and their merged
  // (clock, thread) stream commits as one batch per round — with latencies finalized
  // exactly inside the batch where per-thread Submit could only bound them (GAM's library
  // lock under intra-blade contention). Groups are an execution strategy, never a
  // semantic: results are bit-identical on or off. Off = per-thread channel commits (the
  // plain-channel conformance path).
  bool use_channel_groups = true;
  // Spawn worker threads even when the host reports a single hardware thread (TSan and
  // scheduling tests). By default threads are used only for shards > 1 on multi-core
  // hosts; results are bit-identical either way — threading is an execution strategy,
  // never a semantic.
  bool force_threads = false;
  // Per-thread run scan window per round: bounds submit-buffer memory and the wasted
  // rescan when another shard's coherence event cuts the horizon short.
  uint32_t scan_window_ops = 2048;
  // Serialized-drain exit policy: hand back to the parallel phase after this many
  // coherence (non-hit) ops, or as soon as this many consecutive hits show that a
  // blade-local run has resumed. Any deterministic policy preserves bit-identity; these
  // only trade barrier crossings against serialized hit work.
  uint32_t drain_max_coherence_ops = 64;
  uint32_t drain_hit_streak_exit = 2;
  // Partition the serialized drain itself by directory-region ownership
  // (src/workload/region_ownership.h): whenever every unfinished thread's next op below
  // the global safety horizon is an owner-homed blade-local hit (OwnerDrainOps,
  // memory_system.h), the shards retire those ops concurrently — intra-shard without
  // barriers — instead of one at a time through the global min-heap. Cross-region
  // effects, faults, waves and every time-driven boundary still serialize. Like channels
  // and groups, an execution strategy, never a semantic: results are bit-identical on or
  // off, for every shard count, and the reference path engages it too. Off = the pure
  // pre-ownership serial drain (the comparison baseline).
  bool owner_parallel_drain = true;
  // Base seed for the per-shard RNG streams (stream s draws from seed ^ f(s); reserved
  // for stochastic replay extensions such as jittered think times).
  uint64_t seed = 1;
  // Prefetch policy applied to the system at Setup (MemorySystem::SetPrefetchPolicy).
  // kNone — the default — leaves the system untouched, so replay stays bit-identical to
  // the pre-prefetch engine for every shard count. With a real policy, replay is
  // deterministic for a fixed configuration, and the report carries the prefetch
  // accounting delta (issued/useful/late + derived coverage).
  PrefetchPolicy prefetch = PrefetchPolicy::kNone;
  // Record a TraceScope (src/obs/trace_scope.h) for the run: semantic events from the
  // systems' serialized paths into the control sink, execution events (channel/group
  // commits, drain sub-rounds) from the engine into per-shard mailbox sinks. Off — the
  // default — constructs nothing and leaves the systems' sinks null, so the hot path
  // pays at most one pointer compare per miss and nothing at all on hits.
  bool trace = false;
  // Record wall-clock per-phase profiles (src/obs/phase_profiler.h). Never part of the
  // deterministic digest; off = the profiler is not constructed = zero host-clock reads.
  bool profile = false;
};

// Per-shard accounting, exposed for tests and perf analysis. The merged ReplayReport is
// the sum/max over these plus the system's serialized-phase counter delta.
struct ShardReport {
  uint64_t parallel_hits = 0;  // Ops committed on the shard's concurrent channel path.
  uint64_t grouped_ops = 0;    // Subset of parallel_hits committed via per-blade groups.
  uint64_t drained_ops = 0;    // This shard's ops executed by the serialized drain.
  uint64_t owner_drained = 0;  // Subset of drained_ops retired in owner-parallel phases.
  SimTime makespan = 0;
  uint64_t latency_sum = 0;
  Histogram latency_histogram;
  SystemCounters counters;     // Channel-committed counters only (drain ops count in-system).
};

class ReplayEngine {
 public:
  // `sampler(now)` is invoked every `sample_interval` of simulated time when provided.
  using Sampler = std::function<void(SimTime)>;

  ReplayEngine(MemorySystem* system, const WorkloadTraces* traces,
               ReplayOptions options = {})
      : system_(system), traces_(traces), options_(options) {}

  // Allocates segments and registers threads (round-robin over blades). Must be called
  // exactly once before Run. Large segments are allocated in 64 MB chunks, matching how
  // real applications grow their heaps (and letting the balanced allocator spread a big
  // segment's bandwidth across memory blades instead of pinning it to one).
  Status Setup();

  // Replays the traces. A non-null sampler needs exact global-order observation points,
  // so it forces the per-op reference path (documented fallback); otherwise the channel
  // rounds run, with worker threads when shards > 1 (see ReplayOptions::force_threads).
  ReplayReport Run(Sampler sampler = nullptr, SimTime sample_interval = 10 * kMillisecond);

  // VA of `page` within `segment` after Setup (tests poke at specific addresses).
  [[nodiscard]] VirtAddr AddressOf(uint32_t segment, uint64_t page) const {
    const SegmentMap& m = segments_[segment];
    return m.chunk_bases[page / kChunkPages] + PageToAddr(page % kChunkPages);
  }

  // Shards actually used by the last Run: options.shards clamped to [1, blades driven by
  // the trace]; 1 when the per-op reference path ran (sampler or use_channels = false).
  [[nodiscard]] int effective_shards() const { return effective_shards_; }
  [[nodiscard]] const std::vector<ShardReport>& shard_reports() const {
    return shard_reports_;
  }

  // Directory-region ownership map built by Setup from the traces (blade-affine majority
  // homes; see src/workload/region_ownership.h). Tests pick owner/non-owner addresses
  // through it.
  [[nodiscard]] const RegionOwnership& ownership() const { return ownership_; }

  // Observability artifacts of the last Run (src/obs/). The trace scope is non-null and
  // finalized after a Run with options.trace; the profiler after one with
  // options.profile. The metrics registry always exists after Run: report fields plus
  // MemorySystem::CollectMetrics under "system/...", with mid-run series points sampled
  // on the serialized drain path at the sampler interval.
  [[nodiscard]] TraceScope* trace_scope() { return trace_scope_.get(); }
  [[nodiscard]] const TraceScope* trace_scope() const { return trace_scope_.get(); }
  [[nodiscard]] const PhaseProfiler* profiler() const { return profiler_.get(); }
  [[nodiscard]] MetricsRegistry* metrics() { return metrics_.get(); }

  static constexpr uint64_t kChunkPages = (64ull << 20) >> kPageShift;

 private:
  struct SegmentMap {
    std::vector<VirtAddr> chunk_bases;
  };

  // Materializes the VA-resolved op stream per thread on first use: the scan phase hands
  // contiguous slices of these arrays straight to AccessChannel::Submit instead of
  // re-resolving addresses per op (costs ~16 bytes per trace op; skipped entirely on the
  // per-op reference path, which resolves through AddressOf as it drains).
  void MaterializeOps();

  MemorySystem* system_;          // Not owned.
  const WorkloadTraces* traces_;  // Not owned.
  ReplayOptions options_;
  std::vector<SegmentMap> segments_;
  std::vector<ThreadId> thread_ids_;
  std::vector<ComputeBladeId> thread_blades_;
  std::vector<std::vector<LocalOp>> thread_ops_;  // Per-thread VA-resolved trace (lazy).
  RegionOwnership ownership_;                     // 2 MB region -> home blade (Setup).
  bool setup_done_ = false;
  int effective_shards_ = 0;
  std::vector<ShardReport> shard_reports_;
  std::unique_ptr<TraceScope> trace_scope_;    // Non-null after Run with options.trace.
  std::unique_ptr<PhaseProfiler> profiler_;    // Non-null after Run with options.profile.
  std::unique_ptr<MetricsRegistry> metrics_;   // Non-null after Run.
};

}  // namespace mind

#endif  // MIND_SRC_WORKLOAD_REPLAY_H_
