// Trace replay engine: the memory-access emulator of §7.
//
// Replays system-independent traces against any MemorySystem with per-thread logical clocks.
// A global min-heap interleaves threads in timestamp order, so cross-thread contention
// (directory serialization, invalidation-handler queues, NIC links) is resolved
// deterministically. Reports makespan, throughput and the per-access counters the figures
// need; an optional sampler observes the system at fixed simulated-time intervals (used for
// the directory-occupancy time series of Fig. 8 left).
#ifndef MIND_SRC_WORKLOAD_REPLAY_H_
#define MIND_SRC_WORKLOAD_REPLAY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/baselines/memory_system.h"
#include "src/common/histogram.h"
#include "src/workload/trace.h"

namespace mind {

struct ReplayReport {
  std::string system;
  std::string workload;
  SimTime makespan = 0;           // Simulated time until the last thread finished.
  uint64_t total_ops = 0;
  double throughput_mops = 0.0;   // Million operations per simulated second.
  double avg_latency_us = 0.0;    // Mean thread-visible latency.
  Histogram latency_histogram;
  SystemCounters counters;        // Delta over the run.

  // Derived per-access rates (Fig. 6).
  [[nodiscard]] double RemoteAccessesPerOp() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(counters.remote_accesses) /
                                static_cast<double>(total_ops);
  }
  [[nodiscard]] double InvalidationsPerOp() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(counters.invalidations) /
                                static_cast<double>(total_ops);
  }
  [[nodiscard]] double FlushedPagesPerOp() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(counters.pages_flushed) /
                                static_cast<double>(total_ops);
  }
};

class ReplayEngine {
 public:
  // `sampler(now)` is invoked every `sample_interval` of simulated time when provided.
  using Sampler = std::function<void(SimTime)>;

  ReplayEngine(MemorySystem* system, const WorkloadTraces* traces)
      : system_(system), traces_(traces) {}

  // Allocates segments and registers threads (round-robin over blades). Must be called
  // exactly once before Run. Large segments are allocated in 64 MB chunks, matching how
  // real applications grow their heaps (and letting the balanced allocator spread a big
  // segment's bandwidth across memory blades instead of pinning it to one).
  Status Setup();

  ReplayReport Run(Sampler sampler = nullptr, SimTime sample_interval = 10 * kMillisecond);

  // VA of `page` within `segment` after Setup (tests poke at specific addresses).
  [[nodiscard]] VirtAddr AddressOf(uint32_t segment, uint64_t page) const {
    const SegmentMap& m = segments_[segment];
    return m.chunk_bases[page / kChunkPages] + PageToAddr(page % kChunkPages);
  }

  static constexpr uint64_t kChunkPages = (64ull << 20) >> kPageShift;

 private:
  struct SegmentMap {
    std::vector<VirtAddr> chunk_bases;
  };

  MemorySystem* system_;          // Not owned.
  const WorkloadTraces* traces_;  // Not owned.
  std::vector<SegmentMap> segments_;
  std::vector<ThreadId> thread_ids_;
  std::vector<ComputeBladeId> thread_blades_;
  bool setup_done_ = false;
};

}  // namespace mind

#endif  // MIND_SRC_WORKLOAD_REPLAY_H_
