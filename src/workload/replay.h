// Trace replay engines: the memory-access emulator of §7.
//
// ReplayEngine replays system-independent traces against any MemorySystem with per-thread
// logical clocks. A global min-heap interleaves threads in timestamp order, so cross-thread
// contention (directory serialization, invalidation-handler queues, NIC links) is resolved
// deterministically. Reports makespan, throughput and the per-access counters the figures
// need; an optional sampler observes the system at fixed simulated-time intervals (used for
// the directory-occupancy time series of Fig. 8 left).
//
// ShardedReplayEngine is the concurrent version: compute blades are partitioned across N
// shards, each with its own logical-clock frontier, RNG stream, latency histogram and
// counter block, and replay alternates between a parallel phase (shards run blade-local
// cache hits lock-free via the MemorySystem Peek/Commit contract) and a serialized drain
// (coherence events — faults, invalidation waves, directory transitions, splitting epochs —
// execute on one thread in global timestamp order). The handoff between the two is a
// bounded epoch barrier: each round, every shard scans forward to the timestamp of its
// first non-local op (or a bounded window), the minimum across shards becomes the commit
// horizon H, and only hits strictly before H are committed in per-blade (clock, thread)
// order. Because blade-local hits neither read nor write anything a cross-shard coherence
// event can change (cache membership, permissions and PSO barriers are only mutated by the
// serialized drain), the merged result is bit-identical to single-threaded replay — same
// makespan, counters and latency histogram for 1, 2 or N shards, threads or no threads.
#ifndef MIND_SRC_WORKLOAD_REPLAY_H_
#define MIND_SRC_WORKLOAD_REPLAY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/baselines/memory_system.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/workload/trace.h"

namespace mind {

struct ReplayReport {
  std::string system;
  std::string workload;
  SimTime makespan = 0;           // Simulated time until the last thread finished.
  uint64_t total_ops = 0;
  double throughput_mops = 0.0;   // Million operations per simulated second.
  double avg_latency_us = 0.0;    // Mean thread-visible latency.
  Histogram latency_histogram;
  SystemCounters counters;        // Delta over the run.

  // Derived per-access rates (Fig. 6).
  [[nodiscard]] double RemoteAccessesPerOp() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(counters.remote_accesses) /
                                static_cast<double>(total_ops);
  }
  [[nodiscard]] double InvalidationsPerOp() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(counters.invalidations) /
                                static_cast<double>(total_ops);
  }
  [[nodiscard]] double FlushedPagesPerOp() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(counters.pages_flushed) /
                                static_cast<double>(total_ops);
  }
};

class ReplayEngine {
 public:
  // `sampler(now)` is invoked every `sample_interval` of simulated time when provided.
  using Sampler = std::function<void(SimTime)>;

  ReplayEngine(MemorySystem* system, const WorkloadTraces* traces)
      : system_(system), traces_(traces) {}

  // Allocates segments and registers threads (round-robin over blades). Must be called
  // exactly once before Run. Large segments are allocated in 64 MB chunks, matching how
  // real applications grow their heaps (and letting the balanced allocator spread a big
  // segment's bandwidth across memory blades instead of pinning it to one).
  Status Setup();

  ReplayReport Run(Sampler sampler = nullptr, SimTime sample_interval = 10 * kMillisecond);

  // VA of `page` within `segment` after Setup (tests poke at specific addresses).
  [[nodiscard]] VirtAddr AddressOf(uint32_t segment, uint64_t page) const {
    const SegmentMap& m = segments_[segment];
    return m.chunk_bases[page / kChunkPages] + PageToAddr(page % kChunkPages);
  }

  static constexpr uint64_t kChunkPages = (64ull << 20) >> kPageShift;

 private:
  struct SegmentMap {
    std::vector<VirtAddr> chunk_bases;
  };

  MemorySystem* system_;          // Not owned.
  const WorkloadTraces* traces_;  // Not owned.
  std::vector<SegmentMap> segments_;
  std::vector<ThreadId> thread_ids_;
  std::vector<ComputeBladeId> thread_blades_;
  bool setup_done_ = false;

  friend class ShardedReplayEngine;  // Reuses Setup/AddressOf and the serial fallback.
};

// ---------------------------------------------------------------------------
// Sharded concurrent replay.
// ---------------------------------------------------------------------------

struct ShardedReplayOptions {
  int shards = 1;
  // Spawn worker threads even when the host reports a single hardware thread (TSan and
  // scheduling tests). By default threads are used only for shards > 1 on multi-core
  // hosts; results are bit-identical either way — threading is an execution strategy,
  // never a semantic.
  bool force_threads = false;
  // Per-thread hit-run scan window per round: bounds scan-buffer memory and the wasted
  // rescan when another shard's coherence event cuts the horizon short.
  uint32_t scan_window_ops = 2048;
  // Serialized-drain exit policy: hand back to the parallel phase after this many
  // coherence (non-hit) ops, or as soon as this many consecutive hits show that a
  // blade-local run has resumed. Any deterministic policy preserves bit-identity; these
  // only trade barrier crossings against serialized hit work.
  uint32_t drain_max_coherence_ops = 64;
  uint32_t drain_hit_streak_exit = 2;
  // Base seed for the per-shard RNG streams (stream s draws from seed ^ f(s); reserved
  // for stochastic replay extensions such as jittered think times).
  uint64_t seed = 1;
};

// Per-shard accounting, exposed for tests and perf analysis. The merged ReplayReport is
// the sum/max over these plus the system's serialized-phase counter delta.
struct ShardReport {
  uint64_t parallel_hits = 0;  // Ops committed on the shard's concurrent fast path.
  uint64_t drained_ops = 0;    // This shard's ops executed by the serialized drain.
  SimTime makespan = 0;
  uint64_t latency_sum = 0;
  Histogram latency_histogram;
  SystemCounters counters;     // Parallel-hit counters only (drain ops count in-system).
};

class ShardedReplayEngine {
 public:
  ShardedReplayEngine(MemorySystem* system, const WorkloadTraces* traces,
                      ShardedReplayOptions options = {})
      : base_(system, traces), options_(options) {}

  // Same allocation/registration as ReplayEngine::Setup (identical thread ids and blade
  // placement, so sharded and serial replay drive byte-identical access streams). The
  // sharded engine additionally materializes every trace op to its VA once here — the
  // segment maps are immutable after Setup, so the replay loop streams ready-made
  // (va, type) pairs straight into the batched fast path instead of re-resolving
  // addresses per op (costs ~16 bytes per trace op of extra memory).
  Status Setup();

  // Replays the traces. A non-null sampler needs exact global-order observation points,
  // so it forces the serial engine (documented fallback); otherwise the sharded rounds
  // run, with worker threads when shards > 1 (see ShardedReplayOptions::force_threads).
  ReplayReport Run(ReplayEngine::Sampler sampler = nullptr,
                   SimTime sample_interval = 10 * kMillisecond);

  [[nodiscard]] VirtAddr AddressOf(uint32_t segment, uint64_t page) const {
    return base_.AddressOf(segment, page);
  }

  // Shards actually used: options.shards clamped to [1, blades driven by the trace].
  [[nodiscard]] int effective_shards() const { return effective_shards_; }
  [[nodiscard]] const std::vector<ShardReport>& shard_reports() const {
    return shard_reports_;
  }

 private:
  ReplayEngine base_;
  ShardedReplayOptions options_;
  int effective_shards_ = 0;
  std::vector<std::vector<LocalOp>> thread_ops_;  // Per-thread VA-resolved trace.
  std::vector<ShardReport> shard_reports_;
};

}  // namespace mind

#endif  // MIND_SRC_WORKLOAD_REPLAY_H_
