// In-network address translation (§4.1).
//
// MIND range-partitions the single global virtual address space across memory blades so that
// one translation entry per blade suffices: any VA inside a blade's range maps 1:1 onto that
// blade's physical space. Outlier entries — static binary addresses, migrated pages — are
// range translations held in TCAM, where longest-prefix matching guarantees the most specific
// entry wins. The rule count this table consumes is the quantity plotted in Fig. 8 (center).
#ifndef MIND_SRC_DATAPLANE_TRANSLATION_H_
#define MIND_SRC_DATAPLANE_TRANSLATION_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/dataplane/tcam.h"

namespace mind {

struct Translation {
  MemoryBladeId blade = kInvalidMemoryBlade;
  PhysAddr phys_addr = 0;  // Physical address of the translated VA on that blade.
};

class AddressTranslator {
 public:
  // `tcam` is the shared rule-capacity pool (blade ranges + outliers all consume rules).
  explicit AddressTranslator(TcamCapacity* tcam) : capacity_(tcam), outliers_(tcam) {}

  // Registers a memory blade owning the contiguous VA range [va_start, va_start + size),
  // identity-mapped onto its physical range starting at 0. One rule per blade. The overlap
  // check consults only the two ordered-map neighbours, so registering B blades costs
  // O(B log B) total rather than the O(B^2) of a full scan per registration.
  Status AddBladeRange(MemoryBladeId blade, VirtAddr va_start, uint64_t size) {
    if (size == 0) {
      return Status(ErrorCode::kInvalidArgument, "empty blade range");
    }
    auto next = blade_ranges_.lower_bound(va_start);
    if (next != blade_ranges_.end() && next->first < va_start + size) {
      return Status(ErrorCode::kExists, "overlapping blade range");
    }
    if (next != blade_ranges_.begin()) {
      const auto prev = std::prev(next);
      if (prev->first + prev->second.size > va_start) {
        return Status(ErrorCode::kExists, "overlapping blade range");
      }
    }
    if (capacity_ != nullptr && !capacity_->TryReserve()) {
      return Status(ErrorCode::kResourceExhausted, "no TCAM capacity for blade range");
    }
    blade_ranges_.emplace_hint(next, va_start, BladeRange{blade, size});
    ++version_;
    return Status::Ok();
  }

  Status RemoveBladeRange(VirtAddr va_start) {
    if (blade_ranges_.erase(va_start) == 0) {
      return Status(ErrorCode::kNotFound);
    }
    if (capacity_ != nullptr) {
      capacity_->Release();
    }
    ++version_;
    return Status::Ok();
  }

  // Installs an outlier translation: the aligned 2^size_log2 range at `va_base` maps to
  // (blade, pa_base) instead of the enclosing blade range. Used for static virtual addresses
  // embedded in binaries and for page migration (§4.1, "Transparency via outlier entries").
  Status AddOutlier(VirtAddr va_base, uint32_t size_log2, MemoryBladeId blade,
                    PhysAddr pa_base) {
    const Status s =
        outliers_.InsertRange(va_base, size_log2, OutlierTarget{blade, pa_base, va_base});
    if (s.ok()) {
      ++version_;
    }
    return s;
  }

  Status RemoveOutlier(VirtAddr va_base, uint32_t size_log2) {
    const Status s = outliers_.RemoveRange(va_base, size_log2);
    if (s.ok()) {
      ++version_;
    }
    return s;
  }

  // Translates a VA. Outlier entries take precedence (longest-prefix match); otherwise the
  // enclosing blade range applies. Returns kFault if no mapping covers the address.
  [[nodiscard]] Result<Translation> Translate(VirtAddr va) const {
    if (const auto outlier = outliers_.Lookup(va); outlier.has_value()) {
      return Translation{outlier->blade, outlier->pa_base + (va - outlier->va_base)};
    }
    auto it = blade_ranges_.upper_bound(va);
    if (it == blade_ranges_.begin()) {
      return Status(ErrorCode::kFault, "address below all blade ranges");
    }
    --it;
    const auto& [start, range] = *it;
    if (va >= start + range.size) {
      return Status(ErrorCode::kFault, "address beyond blade range");
    }
    return Translation{range.blade, va - start};
  }

  // Total match-action rules consumed: one per blade range plus one per outlier entry.
  [[nodiscard]] uint64_t rule_count() const {
    return blade_ranges_.size() + outliers_.entries();
  }
  [[nodiscard]] uint64_t outlier_count() const { return outliers_.entries(); }
  [[nodiscard]] size_t blade_range_count() const { return blade_ranges_.size(); }

  // Monotonic mutation counter; the rack's pipeline/translation caches snapshot this to
  // detect stale memoized translations.
  [[nodiscard]] uint64_t version() const { return version_; }

 private:
  struct BladeRange {
    MemoryBladeId blade = kInvalidMemoryBlade;
    uint64_t size = 0;
  };
  struct OutlierTarget {
    MemoryBladeId blade = kInvalidMemoryBlade;
    PhysAddr pa_base = 0;
    VirtAddr va_base = 0;
  };

  TcamCapacity* capacity_;
  std::map<VirtAddr, BladeRange> blade_ranges_;  // Keyed by range start.
  Tcam<OutlierTarget> outliers_;
  uint64_t version_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_DATAPLANE_TRANSLATION_H_
