// Domain-based memory protection (§4.2).
//
// MIND decouples protection from translation: a protection entry maps <PDID, vma> to a
// permission class, held in TCAM. Because TCAM entries match only aligned power-of-two
// ranges, an arbitrary vma is decomposed into at most 2*log2(size) such entries (the paper
// bounds it by ceil(log2 s) because the control plane aligns allocations to power-of-two
// sizes; we support both aligned and unaligned grants). Adjacent entries of the same domain
// and class are coalesced to reclaim TCAM space.
#ifndef MIND_SRC_DATAPLANE_PROTECTION_H_
#define MIND_SRC_DATAPLANE_PROTECTION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/dataplane/tcam.h"

namespace mind {

class ProtectionTable {
 public:
  explicit ProtectionTable(TcamCapacity* capacity) : capacity_(capacity) {}

  // Grants `pc` to protection domain `pdid` over [base, base + size). The range is split
  // into aligned power-of-two TCAM entries; adjacent same-class entries are coalesced.
  Status Grant(ProtDomainId pdid, VirtAddr base, uint64_t size, PermClass pc);

  // Revokes any permission entries of `pdid` intersecting [base, base + size).
  // Entries straddling the boundary are split so the revocation is exact.
  Status Revoke(ProtDomainId pdid, VirtAddr base, uint64_t size);

  // Data-plane permission check on a memory access request. Missing entry => kNone.
  [[nodiscard]] PermClass Check(ProtDomainId pdid, VirtAddr va) const;

  [[nodiscard]] bool Allows(ProtDomainId pdid, VirtAddr va, AccessType access) const {
    return Permits(Check(pdid, va), access);
  }

  // Total TCAM entries across all domains — the protection share of Fig. 8 (center).
  [[nodiscard]] uint64_t rule_count() const { return rule_count_; }

  // Monotonic mutation counter, bumped by every Grant/Revoke (even failed ones — the
  // counter over-approximates change, which is always safe for cache invalidation). The
  // rack's fused pipeline cache snapshots this to detect stale memoized verdicts.
  [[nodiscard]] uint64_t version() const { return version_; }

  // Decomposes [base, base+size) into aligned power-of-two pieces (exposed for tests:
  // the piece count must not exceed 2 * ceil(log2(size)) + 1).
  struct Piece {
    VirtAddr base;
    uint32_t size_log2;
  };
  static std::vector<Piece> DecomposeRange(VirtAddr base, uint64_t size);

 private:
  // Per-domain interval map: key = range start, value = {size, pc}. The TCAM capacity pool
  // is charged one rule per power-of-two piece of each interval.
  struct Interval {
    uint64_t size = 0;
    PermClass pc = PermClass::kNone;
  };
  using IntervalMap = std::map<VirtAddr, Interval>;

  [[nodiscard]] static uint64_t PieceCount(VirtAddr base, uint64_t size) {
    return DecomposeRange(base, size).size();
  }

  // Charges/releases TCAM rules for an interval; returns false if capacity exhausted.
  bool ChargeRules(VirtAddr base, uint64_t size);
  void ReleaseRules(VirtAddr base, uint64_t size);

  // Coalesces `it` with neighbours of equal permission class. Returns iterator to the
  // (possibly merged) interval.
  IntervalMap::iterator Coalesce(IntervalMap& map, IntervalMap::iterator it);

  TcamCapacity* capacity_;
  std::unordered_map<ProtDomainId, IntervalMap> domains_;
  uint64_t rule_count_ = 0;
  uint64_t version_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_DATAPLANE_PROTECTION_H_
