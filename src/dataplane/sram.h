// SRAM slot store for cache-directory entries (§6.3, "Cache directory management").
//
// MIND reserves a fixed amount of data-plane SRAM, partitioned into fixed-size slots, one per
// directory region entry. The control plane keeps a free list of slots and a `used map` from
// a region's base virtual address to its slot. We reproduce that structure exactly — the 30k
// slot budget is what saturates for the Memcached workloads (Fig. 8 left).
#ifndef MIND_SRC_DATAPLANE_SRAM_H_
#define MIND_SRC_DATAPLANE_SRAM_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace mind {

using SramSlot = uint32_t;
inline constexpr SramSlot kInvalidSlot = UINT32_MAX;

class SramSlotStore {
 public:
  explicit SramSlotStore(uint32_t num_slots) {
    free_list_.reserve(num_slots);
    // Push in reverse so slot 0 is handed out first (cosmetic, aids debugging).
    for (uint32_t s = num_slots; s > 0; --s) {
      free_list_.push_back(s - 1);
    }
    total_slots_ = num_slots;
  }

  // Allocates a slot and binds it to `region_base` in the used map.
  Result<SramSlot> Allocate(VirtAddr region_base) {
    if (free_list_.empty()) {
      return Status(ErrorCode::kResourceExhausted, "directory SRAM full");
    }
    const SramSlot slot = free_list_.back();
    free_list_.pop_back();
    used_map_[region_base] = slot;
    high_water_ = std::max<uint64_t>(high_water_, used_map_.size());
    return slot;
  }

  Status Free(VirtAddr region_base) {
    auto it = used_map_.find(region_base);
    if (it == used_map_.end()) {
      return Status(ErrorCode::kNotFound);
    }
    free_list_.push_back(it->second);
    used_map_.erase(it);
    return Status::Ok();
  }

  // Re-keys a slot when a region's base changes (merge keeps the left buddy's slot).
  Status Rekey(VirtAddr old_base, VirtAddr new_base) {
    auto it = used_map_.find(old_base);
    if (it == used_map_.end()) {
      return Status(ErrorCode::kNotFound);
    }
    const SramSlot slot = it->second;
    used_map_.erase(it);
    used_map_[new_base] = slot;
    return Status::Ok();
  }

  [[nodiscard]] std::optional<SramSlot> SlotOf(VirtAddr region_base) const {
    auto it = used_map_.find(region_base);
    if (it == used_map_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  [[nodiscard]] uint64_t used() const { return used_map_.size(); }
  [[nodiscard]] uint64_t free() const { return free_list_.size(); }
  [[nodiscard]] uint64_t total() const { return total_slots_; }
  [[nodiscard]] uint64_t high_water() const { return high_water_; }
  [[nodiscard]] double utilization() const {
    return total_slots_ == 0
               ? 0.0
               : static_cast<double>(used()) / static_cast<double>(total_slots_);
  }

 private:
  std::vector<SramSlot> free_list_;
  std::unordered_map<VirtAddr, SramSlot> used_map_;
  uint64_t total_slots_ = 0;
  uint64_t high_water_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_DATAPLANE_SRAM_H_
