#include "src/dataplane/protection.h"

#include <algorithm>
#include <cassert>

namespace mind {

std::vector<ProtectionTable::Piece> ProtectionTable::DecomposeRange(VirtAddr base,
                                                                    uint64_t size) {
  std::vector<Piece> pieces;
  VirtAddr cur = base;
  uint64_t remaining = size;
  while (remaining > 0) {
    // Largest power-of-two block that is both aligned at `cur` and fits in `remaining`.
    const uint64_t align_limit = cur == 0 ? remaining : (cur & (~cur + 1));  // Lowest set bit.
    const uint64_t fit_limit = RoundDownPowerOfTwo(remaining);
    const uint64_t block = std::min(align_limit == 0 ? fit_limit : align_limit, fit_limit);
    pieces.push_back(Piece{cur, Log2Floor(block)});
    cur += block;
    remaining -= block;
  }
  return pieces;
}

bool ProtectionTable::ChargeRules(VirtAddr base, uint64_t size) {
  const uint64_t n = PieceCount(base, size);
  if (capacity_ != nullptr && !capacity_->TryReserve(n)) {
    return false;
  }
  rule_count_ += n;
  return true;
}

void ProtectionTable::ReleaseRules(VirtAddr base, uint64_t size) {
  const uint64_t n = PieceCount(base, size);
  if (capacity_ != nullptr) {
    capacity_->Release(n);
  }
  rule_count_ -= std::min(rule_count_, n);
}

Status ProtectionTable::Grant(ProtDomainId pdid, VirtAddr base, uint64_t size, PermClass pc) {
  if (size == 0) {
    return Status(ErrorCode::kInvalidArgument, "empty protection range");
  }
  ++version_;
  // Exact-overwrite semantics: clear any previous grants over the range, then insert.
  if (Status s = Revoke(pdid, base, size); !s.ok() && s.code() != ErrorCode::kNotFound) {
    return s;
  }
  if (!ChargeRules(base, size)) {
    return Status(ErrorCode::kResourceExhausted, "protection TCAM full");
  }
  auto& map = domains_[pdid];
  auto [it, inserted] = map.emplace(base, Interval{size, pc});
  assert(inserted);
  Coalesce(map, it);
  return Status::Ok();
}

Status ProtectionTable::Revoke(ProtDomainId pdid, VirtAddr base, uint64_t size) {
  ++version_;
  auto dom_it = domains_.find(pdid);
  if (dom_it == domains_.end()) {
    return Status(ErrorCode::kNotFound);
  }
  auto& map = dom_it->second;
  const VirtAddr end = base + size;
  bool removed_any = false;

  // Find the first interval that could intersect [base, end).
  auto it = map.upper_bound(base);
  if (it != map.begin()) {
    --it;
  }
  while (it != map.end() && it->first < end) {
    const VirtAddr ival_start = it->first;
    const VirtAddr ival_end = ival_start + it->second.size;
    const PermClass pc = it->second.pc;
    if (ival_end <= base) {
      ++it;
      continue;
    }
    removed_any = true;
    ReleaseRules(ival_start, it->second.size);
    it = map.erase(it);
    // Reinsert the non-revoked remainders (left and/or right slivers).
    if (ival_start < base) {
      const uint64_t left_size = base - ival_start;
      if (ChargeRules(ival_start, left_size)) {
        map.emplace(ival_start, Interval{left_size, pc});
      }
    }
    if (ival_end > end) {
      const uint64_t right_size = ival_end - end;
      if (ChargeRules(end, right_size)) {
        it = map.emplace(end, Interval{right_size, pc}).first;
        ++it;
      }
    }
  }
  if (map.empty()) {
    domains_.erase(dom_it);
  }
  return removed_any ? Status::Ok() : Status(ErrorCode::kNotFound);
}

PermClass ProtectionTable::Check(ProtDomainId pdid, VirtAddr va) const {
  auto dom_it = domains_.find(pdid);
  if (dom_it == domains_.end()) {
    return PermClass::kNone;
  }
  const auto& map = dom_it->second;
  auto it = map.upper_bound(va);
  if (it == map.begin()) {
    return PermClass::kNone;
  }
  --it;
  if (va >= it->first + it->second.size) {
    return PermClass::kNone;
  }
  return it->second.pc;
}

ProtectionTable::IntervalMap::iterator ProtectionTable::Coalesce(IntervalMap& map,
                                                                 IntervalMap::iterator it) {
  // Merge with the left neighbour when contiguous and same class. Coalescing two adjacent
  // intervals can strictly reduce the number of power-of-two pieces (e.g. [0,4K)+[4K,8K) ->
  // one 8K entry), which is the TCAM-storage optimization of §4.2.
  if (it != map.begin()) {
    auto left = std::prev(it);
    if (left->first + left->second.size == it->first && left->second.pc == it->second.pc) {
      ReleaseRules(left->first, left->second.size);
      ReleaseRules(it->first, it->second.size);
      const VirtAddr merged_base = left->first;
      const uint64_t merged_size = left->second.size + it->second.size;
      const PermClass pc = it->second.pc;
      map.erase(left);
      map.erase(it);
      // Re-charge; merging never increases piece count, so this cannot fail after the
      // releases above unless another thread raced (single-threaded control plane: safe).
      ChargeRules(merged_base, merged_size);
      it = map.emplace(merged_base, Interval{merged_size, pc}).first;
    }
  }
  // Merge with the right neighbour.
  auto right = std::next(it);
  if (right != map.end() && it->first + it->second.size == right->first &&
      right->second.pc == it->second.pc) {
    ReleaseRules(it->first, it->second.size);
    ReleaseRules(right->first, right->second.size);
    const VirtAddr merged_base = it->first;
    const uint64_t merged_size = it->second.size + right->second.size;
    const PermClass pc = it->second.pc;
    map.erase(right);
    map.erase(it);
    ChargeRules(merged_base, merged_size);
    it = map.emplace(merged_base, Interval{merged_size, pc}).first;
  }
  return it;
}

}  // namespace mind
