// Ternary CAM model with longest-prefix matching and capacity accounting.
//
// MIND stores outlier address translations and protection entries in switch TCAM (§4.1-4.2).
// TCAM entries match power-of-two ranges: a 64-bit value plus a prefix length; the most
// specific (longest-prefix) entry wins, which is what lets outlier entries override the
// blade-range translation and lets nested protection grants override broader ones.
//
// Capacity is enforced because Figure 8 (center) depends on it: the ASIC in the paper holds
// ~45k match-action rules. Multiple tables can share one capacity pool via TcamCapacity, the
// way translation and protection share the physical TCAM.
#ifndef MIND_SRC_DATAPLANE_TCAM_H_
#define MIND_SRC_DATAPLANE_TCAM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "src/common/status.h"
#include "src/common/types.h"

namespace mind {

// Shared capacity pool across tables that occupy the same physical TCAM.
class TcamCapacity {
 public:
  explicit TcamCapacity(uint64_t max_entries) : max_entries_(max_entries) {}

  [[nodiscard]] bool TryReserve(uint64_t n = 1) {
    if (used_ + n > max_entries_) {
      return false;
    }
    used_ += n;
    high_water_ = std::max(high_water_, used_);
    return true;
  }
  void Release(uint64_t n = 1) { used_ -= std::min(used_, n); }

  [[nodiscard]] uint64_t used() const { return used_; }
  [[nodiscard]] uint64_t max_entries() const { return max_entries_; }
  [[nodiscard]] uint64_t high_water() const { return high_water_; }
  [[nodiscard]] double utilization() const {
    return max_entries_ == 0 ? 0.0
                             : static_cast<double>(used_) / static_cast<double>(max_entries_);
  }

 private:
  uint64_t max_entries_;
  uint64_t used_ = 0;
  uint64_t high_water_ = 0;
};

// One LPM table over 64-bit keys. prefix_len counts matched high-order bits: an entry with
// prefix_len L matches keys whose top L bits equal the entry's. prefix_len 64 is an exact
// match; prefix_len (64 - k) matches an aligned 2^k range.
template <typename Value>
class Tcam {
 public:
  explicit Tcam(TcamCapacity* capacity) : capacity_(capacity) {}

  // Inserts an entry for the aligned power-of-two range [base, base + 2^size_log2).
  // Fails with kResourceExhausted when the shared capacity pool is full, kInvalidArgument
  // when the base is not aligned to the range size.
  Status InsertRange(uint64_t base, uint32_t size_log2, const Value& value) {
    if (size_log2 > 63 || (base & ((uint64_t{1} << size_log2) - 1)) != 0) {
      return Status(ErrorCode::kInvalidArgument, "unaligned TCAM range");
    }
    const uint32_t prefix_len = 64 - size_log2;
    auto& table = tables_[prefix_len];
    const uint64_t key = Mask(base, prefix_len);
    auto it = table.find(key);
    if (it != table.end()) {
      it->second = value;  // Overwrite in place; no capacity change.
      return Status::Ok();
    }
    if (capacity_ != nullptr && !capacity_->TryReserve()) {
      return Status(ErrorCode::kResourceExhausted, "TCAM full");
    }
    table.emplace(key, value);
    ++entries_;
    return Status::Ok();
  }

  Status RemoveRange(uint64_t base, uint32_t size_log2) {
    const uint32_t prefix_len = 64 - size_log2;
    auto table_it = tables_.find(prefix_len);
    if (table_it == tables_.end()) {
      return Status(ErrorCode::kNotFound);
    }
    const uint64_t key = Mask(base, prefix_len);
    if (table_it->second.erase(key) == 0) {
      return Status(ErrorCode::kNotFound);
    }
    if (table_it->second.empty()) {
      tables_.erase(table_it);
    }
    if (capacity_ != nullptr) {
      capacity_->Release();
    }
    --entries_;
    return Status::Ok();
  }

  // Longest-prefix match: returns the value of the most specific entry covering `key`.
  [[nodiscard]] std::optional<Value> Lookup(uint64_t key) const {
    // tables_ is ordered by prefix_len ascending; iterate descending for longest-first.
    for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
      const auto& [prefix_len, table] = *it;
      auto entry = table.find(Mask(key, prefix_len));
      if (entry != table.end()) {
        return entry->second;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] uint64_t entries() const { return entries_; }

  void Clear() {
    if (capacity_ != nullptr) {
      capacity_->Release(entries_);
    }
    tables_.clear();
    entries_ = 0;
  }

 private:
  static uint64_t Mask(uint64_t key, uint32_t prefix_len) {
    if (prefix_len == 0) {
      return 0;
    }
    return key & ~((prefix_len >= 64) ? 0ull : ((uint64_t{1} << (64 - prefix_len)) - 1));
  }

  TcamCapacity* capacity_;  // Not owned; may be null (uncapped table).
  std::map<uint32_t, std::unordered_map<uint64_t, Value>> tables_;
  uint64_t entries_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_DATAPLANE_TCAM_H_
