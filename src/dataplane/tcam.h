// Ternary CAM model with longest-prefix matching and capacity accounting.
//
// MIND stores outlier address translations and protection entries in switch TCAM (§4.1-4.2).
// TCAM entries match power-of-two ranges: a 64-bit value plus a prefix length; the most
// specific (longest-prefix) entry wins, which is what lets outlier entries override the
// blade-range translation and lets nested protection grants override broader ones.
//
// Lookup is on the per-access path, so it models the ASIC's single-pass behavior: an
// active-prefix-length bitmask names the populated prefix tables; Lookup bit-scans it
// longest-first and probes only those, each probe a flat open-addressed hash. A TCAM with
// three distinct range sizes installed costs at most three O(1) probes regardless of entry
// count — no ordered-map walk.
//
// Capacity is enforced because Figure 8 (center) depends on it: the ASIC in the paper holds
// ~45k match-action rules. Multiple tables can share one capacity pool via TcamCapacity, the
// way translation and protection share the physical TCAM.
#ifndef MIND_SRC_DATAPLANE_TCAM_H_
#define MIND_SRC_DATAPLANE_TCAM_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "src/common/bitops.h"
#include "src/common/flat_map.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace mind {

// Shared capacity pool across tables that occupy the same physical TCAM.
class TcamCapacity {
 public:
  explicit TcamCapacity(uint64_t max_entries) : max_entries_(max_entries) {}

  [[nodiscard]] bool TryReserve(uint64_t n = 1) {
    if (used_ + n > max_entries_) {
      return false;
    }
    used_ += n;
    high_water_ = std::max(high_water_, used_);
    return true;
  }
  void Release(uint64_t n = 1) { used_ -= std::min(used_, n); }

  [[nodiscard]] uint64_t used() const { return used_; }
  [[nodiscard]] uint64_t max_entries() const { return max_entries_; }
  [[nodiscard]] uint64_t high_water() const { return high_water_; }
  [[nodiscard]] double utilization() const {
    return max_entries_ == 0 ? 0.0
                             : static_cast<double>(used_) / static_cast<double>(max_entries_);
  }

 private:
  uint64_t max_entries_;
  uint64_t used_ = 0;
  uint64_t high_water_ = 0;
};

// One LPM table over 64-bit keys. prefix_len counts matched high-order bits: an entry with
// prefix_len L matches keys whose top L bits equal the entry's. prefix_len 64 is an exact
// match; prefix_len (64 - k) matches an aligned 2^k range.
template <typename Value>
class Tcam {
 public:
  explicit Tcam(TcamCapacity* capacity) : capacity_(capacity) {}

  // Inserts an entry for the aligned power-of-two range [base, base + 2^size_log2).
  // Fails with kResourceExhausted when the shared capacity pool is full, kInvalidArgument
  // when the base is not aligned to the range size. Overwriting an existing entry in place
  // consumes no capacity and leaves the active-prefix bitmask untouched (the table's entry
  // count is unchanged), so LPM ordering still holds afterwards.
  Status InsertRange(uint64_t base, uint32_t size_log2, const Value& value) {
    if (size_log2 > 63 || (base & ((uint64_t{1} << size_log2) - 1)) != 0) {
      return Status(ErrorCode::kInvalidArgument, "unaligned TCAM range");
    }
    const uint32_t prefix_len = 64 - size_log2;
    auto& table = tables_[prefix_len];
    const uint64_t key = Mask(base, prefix_len);
    if (table != nullptr) {
      if (Value* existing = table->Find(key); existing != nullptr) {
        *existing = value;  // Overwrite in place; no capacity change.
        return Status::Ok();
      }
    }
    if (capacity_ != nullptr && !capacity_->TryReserve()) {
      return Status(ErrorCode::kResourceExhausted, "TCAM full");
    }
    if (table == nullptr) {
      table = std::make_unique<FlatMap64<Value>>();
    }
    table->Upsert(key, value);
    active_prefixes_ |= PrefixBit(prefix_len);
    ++entries_;
    return Status::Ok();
  }

  Status RemoveRange(uint64_t base, uint32_t size_log2) {
    if (size_log2 > 63) {
      return Status(ErrorCode::kNotFound);
    }
    const uint32_t prefix_len = 64 - size_log2;
    auto& table = tables_[prefix_len];
    if (table == nullptr || !table->Erase(Mask(base, prefix_len))) {
      return Status(ErrorCode::kNotFound);
    }
    if (table->empty()) {
      table.reset();
      active_prefixes_ &= ~PrefixBit(prefix_len);
    }
    if (capacity_ != nullptr) {
      capacity_->Release();
    }
    --entries_;
    return Status::Ok();
  }

  // Longest-prefix match: returns the value of the most specific entry covering `key`.
  // Bit-scans the active-prefix mask from the longest populated prefix down; only live
  // prefix lengths are probed.
  [[nodiscard]] std::optional<Value> Lookup(uint64_t key) const {
    uint64_t mask = active_prefixes_;
    while (mask != 0) {
      const uint32_t bit = Log2Floor(mask);  // Highest set bit = longest prefix.
      mask ^= uint64_t{1} << bit;
      const uint32_t prefix_len = bit + 1;
      if (const Value* v = tables_[prefix_len]->Find(Mask(key, prefix_len)); v != nullptr) {
        return *v;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] uint64_t entries() const { return entries_; }

  void Clear() {
    if (capacity_ != nullptr) {
      capacity_->Release(entries_);
    }
    for (auto& table : tables_) {
      table.reset();
    }
    active_prefixes_ = 0;
    entries_ = 0;
  }

 private:
  // prefix_len is always >= 1 (size_log2 <= 63), so prefix lengths 1..64 map to mask bits
  // 0..63.
  [[nodiscard]] static constexpr uint64_t PrefixBit(uint32_t prefix_len) {
    return uint64_t{1} << (prefix_len - 1);
  }

  static uint64_t Mask(uint64_t key, uint32_t prefix_len) {
    if (prefix_len == 0) {
      return 0;
    }
    return key & ~((prefix_len >= 64) ? 0ull : ((uint64_t{1} << (64 - prefix_len)) - 1));
  }

  TcamCapacity* capacity_;  // Not owned; may be null (uncapped table).
  std::array<std::unique_ptr<FlatMap64<Value>>, 65> tables_;  // Indexed by prefix_len.
  uint64_t active_prefixes_ = 0;
  uint64_t entries_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_DATAPLANE_TCAM_H_
