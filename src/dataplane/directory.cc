#include "src/dataplane/directory.h"

#include <algorithm>
#include <cassert>

namespace mind {

DirectoryEntry* CacheDirectory::Lookup(VirtAddr va) {
  auto it = entries_.upper_bound(va);
  if (it == entries_.begin()) {
    return nullptr;
  }
  --it;
  return it->second.Contains(va) ? &it->second : nullptr;
}

const DirectoryEntry* CacheDirectory::Lookup(VirtAddr va) const {
  auto it = entries_.upper_bound(va);
  if (it == entries_.begin()) {
    return nullptr;
  }
  --it;
  return it->second.Contains(va) ? &it->second : nullptr;
}

Result<DirectoryEntry*> CacheDirectory::Create(VirtAddr base, uint32_t size_log2) {
  if (size_log2 < kPageShift || !IsAligned(base, uint64_t{1} << size_log2)) {
    return Status(ErrorCode::kInvalidArgument, "bad region geometry");
  }
  const VirtAddr end = base + (uint64_t{1} << size_log2);
  // Overlap check against neighbours.
  auto it = entries_.upper_bound(base);
  if (it != entries_.end() && it->second.base < end) {
    return Status(ErrorCode::kExists, "region overlaps successor");
  }
  if (it != entries_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end() > base) {
      return Status(ErrorCode::kExists, "region overlaps predecessor");
    }
  }
  auto slot = slots_.Allocate(base);
  if (!slot.ok()) {
    return slot.status();
  }
  DirectoryEntry entry;
  entry.base = base;
  entry.size_log2 = size_log2;
  auto [pos, inserted] = entries_.emplace(base, entry);
  assert(inserted);
  return &pos->second;
}

Status CacheDirectory::Remove(VirtAddr base) {
  auto it = entries_.find(base);
  if (it == entries_.end()) {
    return Status(ErrorCode::kNotFound);
  }
  entries_.erase(it);
  return slots_.Free(base);
}

Status CacheDirectory::Split(VirtAddr base) {
  auto it = entries_.find(base);
  if (it == entries_.end()) {
    return Status(ErrorCode::kNotFound);
  }
  DirectoryEntry& parent = it->second;
  if (parent.size_log2 <= kPageShift) {
    return Status(ErrorCode::kInvalidArgument, "region already at 4KB floor");
  }
  const uint32_t child_log2 = parent.size_log2 - 1;
  const VirtAddr upper_base = base + (uint64_t{1} << child_log2);

  auto slot = slots_.Allocate(upper_base);
  if (!slot.ok()) {
    return slot.status();
  }

  DirectoryEntry upper = parent;  // Children inherit coherence state conservatively.
  upper.base = upper_base;
  upper.size_log2 = child_log2;
  upper.ResetEpochCounters();

  parent.size_log2 = child_log2;
  parent.ResetEpochCounters();

  entries_.emplace(upper_base, upper);
  return Status::Ok();
}

bool CacheDirectory::StatesCompatible(const DirectoryEntry& a, const DirectoryEntry& b) {
  // Merging must not create a region with two owners or an owner plus foreign sharers.
  // E (MESI) counts as owner-held, exactly like M.
  const bool a_owned = a.OwnerHeld();
  const bool b_owned = b.OwnerHeld();
  if (a_owned && b_owned) {
    return a.owner == b.owner;
  }
  if (a_owned) {
    // Owner + shared copies on other blades cannot merge into a single state.
    return b.state == MsiState::kInvalid || b.sharers == BladeBit(a.owner);
  }
  if (b_owned) {
    return a.state == MsiState::kInvalid || a.sharers == BladeBit(b.owner);
  }
  return true;  // I/S combinations merge via sharer-list union.
}

Status CacheDirectory::MergeWithBuddy(VirtAddr base, uint32_t max_size_log2) {
  auto it = entries_.find(base);
  if (it == entries_.end()) {
    return Status(ErrorCode::kNotFound);
  }
  DirectoryEntry& entry = it->second;
  if (entry.size_log2 >= max_size_log2) {
    return Status(ErrorCode::kInvalidArgument, "at maximum region size");
  }
  const uint64_t size = entry.size();
  const VirtAddr buddy_base = base ^ size;
  auto buddy_it = entries_.find(buddy_base);
  if (buddy_it == entries_.end() || buddy_it->second.size_log2 != entry.size_log2) {
    return Status(ErrorCode::kNotFound, "no same-size buddy");
  }
  DirectoryEntry& buddy = buddy_it->second;
  if (!StatesCompatible(entry, buddy)) {
    return Status(ErrorCode::kInvalidArgument, "incompatible coherence states");
  }

  DirectoryEntry& lower = base < buddy_base ? entry : buddy;
  DirectoryEntry& upper = base < buddy_base ? buddy : entry;

  // Merged state: M > E > S > I; sharer lists union; owner follows the dominant state.
  auto rank = [](MsiState st) {
    switch (st) {
      case MsiState::kInvalid:
        return 0;
      case MsiState::kShared:
        return 1;
      case MsiState::kExclusive:
        return 2;
      case MsiState::kModified:
        return 3;
    }
    return 0;
  };
  if (rank(upper.state) > rank(lower.state)) {
    lower.state = upper.state;
    lower.owner = upper.owner;
  }
  lower.sharers |= upper.sharers;
  lower.busy_until = std::max(lower.busy_until, upper.busy_until);
  lower.last_active = std::max(lower.last_active, upper.last_active);
  lower.epoch_false_invalidations += upper.epoch_false_invalidations;
  lower.epoch_invalidations += upper.epoch_invalidations;
  lower.epoch_accesses += upper.epoch_accesses;
  lower.size_log2 += 1;

  const VirtAddr upper_key = upper.base;
  entries_.erase(upper_key);
  return slots_.Free(upper_key);
}

std::optional<VirtAddr> CacheDirectory::FindEvictionVictim(SimTime now, int scan_limit) {
  if (entries_.empty()) {
    return std::nullopt;
  }
  auto it = entries_.lower_bound(clock_cursor_);
  std::optional<VirtAddr> best;
  SimTime best_age = 0;
  for (int i = 0; i < scan_limit; ++i) {
    if (it == entries_.end()) {
      it = entries_.begin();
    }
    const DirectoryEntry& e = it->second;
    if (e.busy_until <= now) {
      const SimTime age = now >= e.last_active ? now - e.last_active : 0;
      if (!best.has_value() || age > best_age) {
        best = e.base;
        best_age = age;
      }
    }
    ++it;
    if (it == entries_.end()) {
      it = entries_.begin();
    }
    if (static_cast<uint64_t>(i + 1) >= entries_.size()) {
      break;
    }
  }
  if (it != entries_.end()) {
    clock_cursor_ = it->first;
  }
  return best;
}

}  // namespace mind
