#include "src/dataplane/directory.h"

#include <algorithm>
#include <cassert>

namespace mind {

uint32_t CacheDirectory::AllocIndex() {
  const uint32_t idx = arena_.Alloc();
  if (live_.size() * 64 <= idx) {
    live_.resize(static_cast<size_t>(idx) / 64 + 1, 0);
  }
  live_[idx >> 6] |= uint64_t{1} << (idx & 63);
  return idx;
}

void CacheDirectory::FreeIndex(uint32_t idx) {
  live_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  arena_.Free(idx);
}

void CacheDirectory::AddToClass(uint32_t size_log2) {
  if (class_counts_[size_log2]++ == 0) {
    active_classes_ |= uint64_t{1} << size_log2;
  }
}

void CacheDirectory::RemoveFromClass(uint32_t size_log2) {
  assert(class_counts_[size_log2] > 0);
  if (--class_counts_[size_log2] == 0) {
    active_classes_ &= ~(uint64_t{1} << size_log2);
  }
}

Result<DirectoryEntry*> CacheDirectory::Create(VirtAddr base, uint32_t size_log2) {
  if (size_log2 < kPageShift || size_log2 > 63 ||
      !IsAligned(base, uint64_t{1} << size_log2)) {
    return Status(ErrorCode::kInvalidArgument, "bad region geometry");
  }
  const VirtAddr end = base + (uint64_t{1} << size_log2);
  // Overlap check against neighbours in the ordered side-index.
  auto it = ordered_.upper_bound(base);
  if (it != ordered_.end() && it->first < end) {
    return Status(ErrorCode::kExists, "region overlaps successor");
  }
  if (it != ordered_.begin()) {
    auto prev = std::prev(it);
    if (EntryAt(prev->second).end() > base) {
      return Status(ErrorCode::kExists, "region overlaps predecessor");
    }
  }
  auto slot = slots_.Allocate(base);
  if (!slot.ok()) {
    return slot.status();
  }
  const uint32_t idx = AllocIndex();
  DirectoryEntry& entry = EntryAt(idx);
  entry = DirectoryEntry{};  // Arena slots are reused; reset every field.
  entry.base = base;
  entry.size_log2 = size_log2;
  by_base_.Upsert(base, idx);
  ordered_.emplace_hint(it, base, idx);
  AddToClass(size_log2);
  ++version_;
  return &entry;
}

Status CacheDirectory::Remove(VirtAddr base) {
  const uint32_t* idxp = by_base_.Find(base);
  if (idxp == nullptr) {
    return Status(ErrorCode::kNotFound);
  }
  const uint32_t idx = *idxp;
  RemoveFromClass(EntryAt(idx).size_log2);
  by_base_.Erase(base);
  ordered_.erase(base);
  FreeIndex(idx);
  ++version_;
  return slots_.Free(base);
}

Status CacheDirectory::Split(VirtAddr base) {
  const uint32_t* idxp = by_base_.Find(base);
  if (idxp == nullptr) {
    return Status(ErrorCode::kNotFound);
  }
  DirectoryEntry& parent = EntryAt(*idxp);
  if (parent.size_log2 <= kPageShift) {
    return Status(ErrorCode::kInvalidArgument, "region already at 4KB floor");
  }
  const uint32_t child_log2 = parent.size_log2 - 1;
  const VirtAddr upper_base = base + (uint64_t{1} << child_log2);

  auto slot = slots_.Allocate(upper_base);
  if (!slot.ok()) {
    return slot.status();
  }

  const uint32_t upper_idx = AllocIndex();
  DirectoryEntry& upper = EntryAt(upper_idx);
  upper = parent;  // Children inherit coherence state conservatively.
  upper.base = upper_base;
  upper.size_log2 = child_log2;
  upper.ResetEpochCounters();

  RemoveFromClass(parent.size_log2);
  parent.size_log2 = child_log2;
  parent.ResetEpochCounters();
  AddToClass(child_log2);
  AddToClass(child_log2);

  by_base_.Upsert(upper_base, upper_idx);
  ordered_.emplace(upper_base, upper_idx);
  ++version_;
  return Status::Ok();
}

bool CacheDirectory::StatesCompatible(const DirectoryEntry& a, const DirectoryEntry& b) {
  // Merging must not create a region with two owners or an owner plus foreign sharers.
  // E (MESI) counts as owner-held, exactly like M.
  const bool a_owned = a.OwnerHeld();
  const bool b_owned = b.OwnerHeld();
  if (a_owned && b_owned) {
    return a.owner == b.owner;
  }
  if (a_owned) {
    // Owner + shared copies on other blades cannot merge into a single state.
    return b.state == MsiState::kInvalid || b.sharers == BladeBit(a.owner);
  }
  if (b_owned) {
    return a.state == MsiState::kInvalid || a.sharers == BladeBit(b.owner);
  }
  return true;  // I/S combinations merge via sharer-list union.
}

Status CacheDirectory::MergeWithBuddy(VirtAddr base, uint32_t max_size_log2) {
  const uint32_t* idxp = by_base_.Find(base);
  if (idxp == nullptr) {
    return Status(ErrorCode::kNotFound);
  }
  const uint32_t idx = *idxp;
  DirectoryEntry& entry = EntryAt(idx);
  if (entry.size_log2 >= max_size_log2) {
    return Status(ErrorCode::kInvalidArgument, "at maximum region size");
  }
  const uint64_t size = entry.size();
  const VirtAddr buddy_base = base ^ size;
  const uint32_t* buddy_idxp = by_base_.Find(buddy_base);
  if (buddy_idxp == nullptr || EntryAt(*buddy_idxp).size_log2 != entry.size_log2) {
    return Status(ErrorCode::kNotFound, "no same-size buddy");
  }
  const uint32_t buddy_idx = *buddy_idxp;
  DirectoryEntry& buddy = EntryAt(buddy_idx);
  if (!StatesCompatible(entry, buddy)) {
    return Status(ErrorCode::kInvalidArgument, "incompatible coherence states");
  }

  DirectoryEntry& lower = base < buddy_base ? entry : buddy;
  DirectoryEntry& upper = base < buddy_base ? buddy : entry;
  const uint32_t upper_idx = base < buddy_base ? buddy_idx : idx;

  // Merged state: M > E > S > I; sharer lists union; owner follows the dominant state.
  auto rank = [](MsiState st) {
    switch (st) {
      case MsiState::kInvalid:
        return 0;
      case MsiState::kShared:
        return 1;
      case MsiState::kExclusive:
        return 2;
      case MsiState::kModified:
        return 3;
    }
    return 0;
  };
  if (rank(upper.state) > rank(lower.state)) {
    lower.state = upper.state;
    lower.owner = upper.owner;
  }
  lower.sharers |= upper.sharers;
  lower.busy_until = std::max(lower.busy_until, upper.busy_until);
  lower.last_active = std::max(lower.last_active, upper.last_active);
  lower.epoch_false_invalidations += upper.epoch_false_invalidations;
  lower.epoch_invalidations += upper.epoch_invalidations;
  lower.epoch_accesses += upper.epoch_accesses;

  RemoveFromClass(lower.size_log2);
  RemoveFromClass(upper.size_log2);
  lower.size_log2 += 1;
  AddToClass(lower.size_log2);

  const VirtAddr upper_key = upper.base;
  by_base_.Erase(upper_key);
  ordered_.erase(upper_key);
  FreeIndex(upper_idx);
  ++version_;
  return slots_.Free(upper_key);
}

std::optional<VirtAddr> CacheDirectory::FindEvictionVictim(SimTime now, int scan_limit) {
  const uint64_t count = by_base_.size();
  if (count == 0) {
    return std::nullopt;
  }
  if (clock_idx_ >= arena_.size()) {
    clock_idx_ = 0;
  }
  const uint64_t to_scan =
      std::min<uint64_t>(static_cast<uint64_t>(std::max(scan_limit, 0)), count);
  if (to_scan == 0) {
    return std::nullopt;
  }
  std::optional<VirtAddr> best;
  SimTime best_age = 0;
  uint64_t scanned = 0;
  // Word-level bit-scan over the live bitmap: the sweep jumps dead slots 64 at a time, so
  // a sparse arena (a 10M-slot PSO+ directory after mass teardown) costs O(words), not
  // O(slots). Visit order is the same cyclic live-slot order as a linear walk: starting at
  // the cursor's word with the bits below the cursor masked off, then whole words with
  // wraparound; one full cycle visits every live entry exactly once, and to_scan <= count
  // stops the sweep before any repeat.
  const size_t words = live_.size();
  size_t w = static_cast<size_t>(clock_idx_) >> 6;
  uint64_t word = live_[w] & (~uint64_t{0} << (clock_idx_ & 63));
  uint32_t idx = clock_idx_;
  while (scanned < to_scan) {
    if (word == 0) {
      w = (w + 1 == words) ? 0 : w + 1;
      word = live_[w];
      continue;
    }
    idx = static_cast<uint32_t>(w * 64) + static_cast<uint32_t>(LowestSetBit(word));
    word &= word - 1;
    const DirectoryEntry& e = EntryAt(idx);
    ++scanned;
    if (e.busy_until <= now) {
      const SimTime age = now >= e.last_active ? now - e.last_active : 0;
      if (!best.has_value() || age > best_age) {
        best = e.base;
        best_age = age;
      }
    }
  }
  clock_idx_ = (idx + 1 >= arena_.size()) ? 0 : idx + 1;
  return best;
}

}  // namespace mind
