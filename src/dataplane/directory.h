// In-network cache directory (§4.3, §6.3).
//
// The directory tracks *variable-sized regions* — not pages — so the whole thing fits in the
// switch ASIC's SRAM slot budget (30k entries in the paper's deployment). Each entry carries
// the MSI state, the owner, the sharer bitmap, and the epoch counters the bounded-splitting
// algorithm (§5) consumes. Entries are created lazily at the configured initial region size
// when a region is first cached, split/merged by the control plane between epochs, and
// evicted (with a forced invalidation, performed by the caller) under capacity pressure.
//
// Lookup is the per-access hot path and models one match-action stage: an active-size-class
// bitmap names the region sizes currently present; for each live class (bit-scan, cheapest
// first) the address is aligned down to that class and probed in a flat open-addressed hash
// keyed by region base. Regions never overlap, so at most one class can contain the address
// and the first containing probe wins — O(popcount(active classes)) probes, no tree descent.
// Entries live in a chunked arena so pointers stay stable across create/remove/rehash. An
// ordered side-index (base -> arena slot) is maintained off the hot path for ForEach, the
// Create overlap check and buddy merges; the CLOCK eviction sweep resumes by arena slot and
// skips dead slots with a word-level bit-scan of the live bitmap, so sparse arenas cost
// O(words) per sweep rather than a linear slot walk.
#ifndef MIND_SRC_DATAPLANE_DIRECTORY_H_
#define MIND_SRC_DATAPLANE_DIRECTORY_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/chunked_arena.h"
#include "src/common/flat_map.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/dataplane/sram.h"
#include "src/dataplane/stt.h"

namespace mind {

struct DirectoryEntry {
  VirtAddr base = 0;
  uint32_t size_log2 = 0;
  MsiState state = MsiState::kInvalid;
  ComputeBladeId owner = kInvalidComputeBlade;
  SharerMask sharers = 0;

  // Region lock: while a transition with invalidations is in flight the region is "busy";
  // conflicting requests queue behind this horizon (transient-state blocking).
  SimTime busy_until = 0;
  SimTime last_active = 0;

  // Epoch-scoped counters for bounded splitting (§5).
  uint64_t epoch_false_invalidations = 0;
  uint64_t epoch_invalidations = 0;
  uint64_t epoch_accesses = 0;
  // Consecutive epochs with zero false invalidations; merge hysteresis uses this so a
  // momentarily-quiet hot region is not merged back just to re-split next epoch.
  uint32_t quiet_epochs = 0;

  [[nodiscard]] uint64_t size() const { return uint64_t{1} << size_log2; }
  [[nodiscard]] VirtAddr end() const { return base + size(); }
  [[nodiscard]] bool Contains(VirtAddr va) const { return va >= base && va < end(); }

  [[nodiscard]] bool OwnerHeld() const {
    return state == MsiState::kModified || state == MsiState::kExclusive;
  }

  [[nodiscard]] RequestorRole RoleOf(ComputeBladeId blade) const {
    if (OwnerHeld() && owner == blade) {
      return RequestorRole::kOwner;
    }
    if ((sharers & BladeBit(blade)) != 0) {
      return RequestorRole::kSharer;
    }
    return RequestorRole::kNone;
  }

  void ResetEpochCounters() {
    epoch_false_invalidations = 0;
    epoch_invalidations = 0;
    epoch_accesses = 0;
  }
};

class CacheDirectory {
 public:
  explicit CacheDirectory(uint32_t capacity_slots) : slots_(capacity_slots) {}

  // Returns the entry whose region contains `va`, or nullptr if none exists (region is in
  // the implicit I state). Entry pointers are stable until the entry is removed or merged.
  [[nodiscard]] DirectoryEntry* Lookup(VirtAddr va) {
    uint64_t mask = active_classes_;
    while (mask != 0) {
      const uint32_t log2 = LowestSetBit(mask);
      mask &= mask - 1;
      const VirtAddr base = va & ~((uint64_t{1} << log2) - 1);
      if (const uint32_t* idx = by_base_.Find(base); idx != nullptr) {
        DirectoryEntry& e = EntryAt(*idx);
        if (e.Contains(va)) {
          return &e;
        }
      }
    }
    return nullptr;
  }
  [[nodiscard]] const DirectoryEntry* Lookup(VirtAddr va) const {
    return const_cast<CacheDirectory*>(this)->Lookup(va);
  }

  // Creates an entry for the aligned region [base, base + 2^size_log2). Fails with
  // kResourceExhausted when no SRAM slot is free (caller should evict) and kExists when the
  // region would overlap an existing entry.
  Result<DirectoryEntry*> Create(VirtAddr base, uint32_t size_log2);

  // Removes the entry at `base`, freeing its SRAM slot.
  Status Remove(VirtAddr base);

  // Splits the region at `base` into two buddies; the upper half takes a fresh SRAM slot.
  // Children inherit state/owner/sharers/busy horizon conservatively. Fails when the region
  // is already at the 4 KB floor or when no slot is free.
  Status Split(VirtAddr base);

  // Merges the region at `base` with its buddy if the buddy exists, both are the same size,
  // their union is aligned, the merged size would not exceed `max_size_log2`, and their
  // coherence states are compatible (no conflicting owners). Frees the upper buddy's slot.
  Status MergeWithBuddy(VirtAddr base, uint32_t max_size_log2);

  // True if the two entries' states can be merged conservatively.
  [[nodiscard]] static bool StatesCompatible(const DirectoryEntry& a, const DirectoryEntry& b);

  // Picks a victim entry for capacity eviction: a CLOCK-style cursor sweep that prefers the
  // stalest entry among the next `scan_limit` entries that are not busy at `now`. Returns
  // nullopt when every scanned entry is busy. The cursor is an arena slot, so resuming is
  // O(1) and a removed cursor entry is skipped naturally instead of derailing the sweep.
  [[nodiscard]] std::optional<VirtAddr> FindEvictionVictim(SimTime now, int scan_limit = 64);

  // Iteration for the control plane (bounded splitting, stats sampling), in ascending
  // region-base order via the ordered side-index.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& [base, idx] : ordered_) {
      fn(EntryAt(idx));
    }
  }

  // Monotonic mutation counter: bumped by every Create/Remove/Split/Merge. The rack's
  // fused pipeline cache snapshots this to detect stale memoized directory entries.
  [[nodiscard]] uint64_t version() const { return version_; }

  [[nodiscard]] uint64_t entry_count() const { return by_base_.size(); }
  [[nodiscard]] uint64_t capacity() const { return slots_.total(); }
  [[nodiscard]] double utilization() const { return slots_.utilization(); }
  [[nodiscard]] uint64_t high_water() const { return slots_.high_water(); }
  [[nodiscard]] const SramSlotStore& slots() const { return slots_; }

 private:
  [[nodiscard]] DirectoryEntry& EntryAt(uint32_t idx) { return arena_.At(idx); }
  [[nodiscard]] bool LiveAt(uint32_t idx) const {
    return (live_[idx >> 6] & (uint64_t{1} << (idx & 63))) != 0;
  }

  uint32_t AllocIndex();
  void FreeIndex(uint32_t idx);
  void AddToClass(uint32_t size_log2);
  void RemoveFromClass(uint32_t size_log2);

  // Hot-path index: region base -> arena slot, probed per active size class.
  FlatMap64<uint32_t> by_base_;
  uint64_t active_classes_ = 0;             // Bit i set <=> a live entry has size_log2 == i.
  std::array<uint32_t, 64> class_counts_{};

  // Stable entry storage; `live_` marks occupied slots for the CLOCK sweep.
  ChunkedArena<DirectoryEntry, /*kChunkShift=*/10> arena_;
  std::vector<uint64_t> live_;

  // Ordered side-index (base -> arena slot), maintained off the hot path.
  std::map<VirtAddr, uint32_t> ordered_;

  SramSlotStore slots_;
  uint32_t clock_idx_ = 0;   // Arena slot where the next eviction sweep resumes.
  uint64_t version_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_DATAPLANE_DIRECTORY_H_
