// Materialized MSI state-transition table (§6.3, Fig. 4).
//
// A single match-action unit cannot look up a directory entry, compute the transition and
// write the entry back in one pass, so MIND splits the logic across two MAUs: the first holds
// directory entries, the second holds *this* table — every possible (state, access, requestor
// role) combination with its resulting actions — and the packet recirculates once to commit
// the update. Storing the table explicitly trades a little SRAM for the per-packet compute
// the ASIC lacks. We materialize the same table so tests can enumerate every transition.
#ifndef MIND_SRC_DATAPLANE_STT_H_
#define MIND_SRC_DATAPLANE_STT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/types.h"

namespace mind {

// The requesting blade's relationship to the region before the access.
enum class RequestorRole : uint8_t {
  kNone = 0,    // Not in the sharer list and not the owner.
  kSharer = 1,  // Holds the region in S.
  kOwner = 2,   // Owns the region in M.
};

[[nodiscard]] constexpr const char* ToString(RequestorRole r) {
  switch (r) {
    case RequestorRole::kNone:
      return "none";
    case RequestorRole::kSharer:
      return "sharer";
    case RequestorRole::kOwner:
      return "owner";
  }
  return "?";
}

// Who must be invalidated before the access may proceed.
enum class InvalidateTargets : uint8_t {
  kNone = 0,
  kOtherSharers = 1,  // All sharers except the requestor (S -> M upgrade).
  kOwner = 2,         // The current owner (M -> S / M -> M handoff).
};

struct SttEntry {
  MsiState state;            // Match: current region state.
  AccessType access;         // Match: requested access.
  RequestorRole role;        // Match: requestor's standing in the entry.

  MsiState next_state;       // Action: state written back on recirculation.
  InvalidateTargets invalidate;  // Action: multicast invalidation targets.
  bool sequential_fetch;     // Action: data fetch must wait for flush (M-state sources).
  bool becomes_owner;        // Action: requestor recorded as owner.
  bool joins_sharers;        // Action: requestor appended to sharer list.
  bool clears_sharers;       // Action: sharer list reset to requestor only.
};

// The full states x accesses x roles table. Transitions that cannot occur by construction
// (e.g. role=kOwner when state=S) still get well-defined conservative rows so a corrupted
// directory cannot wedge the pipeline — mirroring the defensive default rules installed on
// the ASIC. Under kMesi (the §8 extension) cold reads enter E instead of S: the page is
// installed writable at the single holder, making its first write free of any coherence
// transaction, at the price of treating E like M (possibly dirty, 2-RTT handoff) when
// another blade shows up.
class StateTransitionTable {
 public:
  explicit StateTransitionTable(CoherenceProtocol protocol = CoherenceProtocol::kMsi)
      : protocol_(protocol) {
    Materialize();
  }

  [[nodiscard]] const SttEntry& Lookup(MsiState state, AccessType access,
                                       RequestorRole role) const {
    return table_[Index(state, access, role)];
  }

  [[nodiscard]] const std::vector<SttEntry>& rows() const { return rows_; }

  // TCAM footprint of the materialized table: one rule per row (tens of entries; §8 notes
  // even MOESI-scale tables remain small relative to ASIC capacity).
  [[nodiscard]] size_t rule_count() const { return rows_.size(); }
  [[nodiscard]] CoherenceProtocol protocol() const { return protocol_; }

 private:
  static constexpr size_t Index(MsiState s, AccessType a, RequestorRole r) {
    return (static_cast<size_t>(s) * 2 + static_cast<size_t>(a)) * 3 + static_cast<size_t>(r);
  }

  void Materialize() {
    auto add = [this](MsiState s, AccessType a, RequestorRole r, MsiState next,
                      InvalidateTargets inv, bool seq, bool owner, bool join, bool clear) {
      const SttEntry e{s, a, r, next, inv, seq, owner, join, clear};
      table_[Index(s, a, r)] = e;
      rows_.push_back(e);
    };
    using S = MsiState;
    using A = AccessType;
    using R = RequestorRole;
    using I = InvalidateTargets;

    // --- State I: no cached copies anywhere; fetch from memory, no invalidations. Under
    // MESI a cold read takes E (exclusive, silently upgradable) instead of S. ---
    const S cold_read_state =
        protocol_ == CoherenceProtocol::kMesi ? S::kExclusive : S::kShared;
    const bool cold_read_owns = protocol_ == CoherenceProtocol::kMesi;
    add(S::kInvalid, A::kRead, R::kNone, cold_read_state, I::kNone, false, cold_read_owns,
        !cold_read_owns, cold_read_owns);
    add(S::kInvalid, A::kWrite, R::kNone, S::kModified, I::kNone, false, true, false, true);
    // Defensive rows (roles impossible in I).
    add(S::kInvalid, A::kRead, R::kSharer, S::kShared, I::kNone, false, false, true, false);
    add(S::kInvalid, A::kRead, R::kOwner, S::kShared, I::kNone, false, false, true, false);
    add(S::kInvalid, A::kWrite, R::kSharer, S::kModified, I::kNone, false, true, false, true);
    add(S::kInvalid, A::kWrite, R::kOwner, S::kModified, I::kNone, false, true, false, true);

    // --- State S: reads join the sharer list; writes upgrade to M, invalidating the rest.
    // Memory holds the latest data in S (dirty pages were flushed on the M->S downgrade), so
    // data always comes from the memory blade and invalidation proceeds in parallel. ---
    add(S::kShared, A::kRead, R::kNone, S::kShared, I::kNone, false, false, true, false);
    add(S::kShared, A::kRead, R::kSharer, S::kShared, I::kNone, false, false, true, false);
    add(S::kShared, A::kRead, R::kOwner, S::kShared, I::kNone, false, false, true, false);
    add(S::kShared, A::kWrite, R::kNone, S::kModified, I::kOtherSharers, false, true, false,
        true);
    add(S::kShared, A::kWrite, R::kSharer, S::kModified, I::kOtherSharers, false, true, false,
        true);
    add(S::kShared, A::kWrite, R::kOwner, S::kModified, I::kOtherSharers, false, true, false,
        true);

    // --- State M: the owner's faults hit memory directly (its uncached pages are clean in
    // memory thanks to write-back-on-evict); non-owners must first have the owner flush its
    // dirty pages, making the fetch *sequential* — the 2-RTT, ~18us path of Fig. 7 (left). ---
    add(S::kModified, A::kRead, R::kOwner, S::kModified, I::kNone, false, true, false, false);
    add(S::kModified, A::kWrite, R::kOwner, S::kModified, I::kNone, false, true, false, false);
    add(S::kModified, A::kRead, R::kNone, S::kShared, I::kOwner, true, false, true, true);
    add(S::kModified, A::kRead, R::kSharer, S::kShared, I::kOwner, true, false, true, true);
    add(S::kModified, A::kWrite, R::kNone, S::kModified, I::kOwner, true, true, false, true);
    add(S::kModified, A::kWrite, R::kSharer, S::kModified, I::kOwner, true, true, false, true);

    // --- State E (MESI only): one blade holds the region with silent-upgrade privilege.
    // Because the holder may have written without telling the switch, the directory treats
    // E exactly like M on remote accesses: invalidate + flush the holder, sequential fetch.
    // The holder's own faults stay in E with a plain 1-RTT memory fetch. ---
    add(S::kExclusive, A::kRead, R::kOwner, S::kExclusive, I::kNone, false, true, false,
        false);
    add(S::kExclusive, A::kWrite, R::kOwner, S::kExclusive, I::kNone, false, true, false,
        false);
    add(S::kExclusive, A::kRead, R::kNone, S::kShared, I::kOwner, true, false, true, true);
    add(S::kExclusive, A::kRead, R::kSharer, S::kShared, I::kOwner, true, false, true, true);
    add(S::kExclusive, A::kWrite, R::kNone, S::kModified, I::kOwner, true, true, false, true);
    add(S::kExclusive, A::kWrite, R::kSharer, S::kModified, I::kOwner, true, true, false,
        true);
  }

  CoherenceProtocol protocol_;
  std::array<SttEntry, 24> table_{};
  std::vector<SttEntry> rows_;
};

}  // namespace mind

#endif  // MIND_SRC_DATAPLANE_STT_H_
