// Balanced physical memory allocation (§4.1).
//
// The virtual address space is range-partitioned across memory blades with a 1:1 VA->PA
// mapping inside each partition, so physical allocation *is* virtual allocation within the
// chosen blade's partition. The control plane places each new allocation on the blade with
// the least total allocation (near-optimal load balancing, validated in Fig. 8 right) and
// uses a first-fit extent allocator inside the partition to minimize external fragmentation.
// Allocation sizes are rounded to powers of two and aligned so each vma is representable as
// a single TCAM protection entry (§4.2).
//
// Alternative placement policies (fixed 2 MB / 1 GB page interleaving) are implemented for
// the Fig. 8 comparisons against conventional page-granularity designs.
#ifndef MIND_SRC_CONTROLPLANE_ALLOCATOR_H_
#define MIND_SRC_CONTROLPLANE_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace mind {

enum class PlacementPolicy : uint8_t {
  kBalanced = 0,     // MIND: whole vma on the least-loaded blade.
  kPageInterleave,   // Conventional: chop into fixed pages, round-robin across blades.
};

struct AllocatorConfig {
  PlacementPolicy policy = PlacementPolicy::kBalanced;
  uint64_t interleave_page_size = 2 * 1024 * 1024;  // For kPageInterleave.
  bool round_sizes_to_pow2 = true;                  // MIND's TCAM-friendly rounding.
};

// One allocation as seen by the caller: a contiguous vma in the global VA space.
struct VmaAllocation {
  VirtAddr base = 0;
  uint64_t size = 0;           // Rounded (allocated) size.
  uint64_t requested_size = 0;
  // Chunks that landed on blades (one for kBalanced; many for kPageInterleave).
  struct Chunk {
    VirtAddr va = 0;
    uint64_t size = 0;
    MemoryBladeId blade = kInvalidMemoryBlade;
  };
  std::vector<Chunk> chunks;
};

class BalancedAllocator {
 public:
  explicit BalancedAllocator(AllocatorConfig config = {}) : config_(config) {}

  // Registers a memory blade's partition [va_start, va_start + capacity).
  Status AddBlade(MemoryBladeId blade, VirtAddr va_start, uint64_t capacity);

  // Allocates `size` bytes; returns the vma. kNoMemory when no partition can fit it.
  Result<VmaAllocation> Allocate(uint64_t size);

  // Releases a previous allocation.
  Status Free(const VmaAllocation& vma);

  // Marks a blade draining/offline: no new placements land on it (existing allocations
  // stay until migration moves them). Part of the drain/failover path.
  Status SetOffline(MemoryBladeId blade);

  // Per-blade allocated bytes, in blade-id order — input to Jain's fairness index.
  [[nodiscard]] std::vector<uint64_t> PerBladeLoad() const;

  [[nodiscard]] uint64_t total_allocated() const { return total_allocated_; }
  [[nodiscard]] size_t blade_count() const { return blades_.size(); }

  // Number of distinct contiguous placements made so far; each costs one translation rule in
  // a page-granularity design (kPageInterleave) but MIND's blade ranges absorb kBalanced
  // placements for free. Used by the Fig. 8 (center) bench.
  [[nodiscard]] uint64_t placement_count() const { return placement_count_; }

 private:
  struct Blade {
    MemoryBladeId id = kInvalidMemoryBlade;
    VirtAddr start = 0;
    uint64_t capacity = 0;
    uint64_t allocated = 0;
    bool offline = false;  // Draining: excluded from placement decisions.
    // Free extents keyed by base address (first-fit scans in address order).
    std::map<VirtAddr, uint64_t> free_extents;
  };

  // First-fit within one blade partition, honoring alignment. Returns kNoMemory if no fit.
  Result<VirtAddr> AllocateInBlade(Blade& blade, uint64_t size, uint64_t alignment);
  void FreeInBlade(Blade& blade, VirtAddr base, uint64_t size);

  // Index of the least-loaded blade that can fit `size`; -1 if none.
  [[nodiscard]] int PickLeastLoaded(uint64_t size) const;

  AllocatorConfig config_;
  std::vector<Blade> blades_;
  uint64_t total_allocated_ = 0;
  uint64_t placement_count_ = 0;
  size_t interleave_cursor_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_CONTROLPLANE_ALLOCATOR_H_
