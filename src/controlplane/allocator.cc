#include "src/controlplane/allocator.h"

#include <algorithm>
#include <cassert>

namespace mind {

Status BalancedAllocator::AddBlade(MemoryBladeId blade, VirtAddr va_start, uint64_t capacity) {
  if (capacity == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-capacity blade");
  }
  for (const auto& b : blades_) {
    if (va_start < b.start + b.capacity && b.start < va_start + capacity) {
      return Status(ErrorCode::kExists, "partition overlaps existing blade");
    }
  }
  Blade b;
  b.id = blade;
  b.start = va_start;
  b.capacity = capacity;
  b.free_extents[va_start] = capacity;
  blades_.push_back(std::move(b));
  return Status::Ok();
}

Result<VirtAddr> BalancedAllocator::AllocateInBlade(Blade& blade, uint64_t size,
                                                    uint64_t alignment) {
  for (auto it = blade.free_extents.begin(); it != blade.free_extents.end(); ++it) {
    const VirtAddr ext_base = it->first;
    const uint64_t ext_size = it->second;
    const VirtAddr aligned = AlignUp(ext_base, alignment);
    const uint64_t padding = aligned - ext_base;
    if (padding + size > ext_size) {
      continue;
    }
    // Carve [aligned, aligned + size) out of the extent.
    blade.free_extents.erase(it);
    if (padding > 0) {
      blade.free_extents[ext_base] = padding;
    }
    const uint64_t tail = ext_size - padding - size;
    if (tail > 0) {
      blade.free_extents[aligned + size] = tail;
    }
    blade.allocated += size;
    return aligned;
  }
  return Status(ErrorCode::kNoMemory, "no extent fits in blade partition");
}

void BalancedAllocator::FreeInBlade(Blade& blade, VirtAddr base, uint64_t size) {
  blade.allocated -= std::min(blade.allocated, size);
  auto [it, inserted] = blade.free_extents.emplace(base, size);
  assert(inserted && "double free");
  // Coalesce with right neighbour.
  auto next = std::next(it);
  if (next != blade.free_extents.end() && it->first + it->second == next->first) {
    it->second += next->second;
    blade.free_extents.erase(next);
  }
  // Coalesce with left neighbour.
  if (it != blade.free_extents.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      blade.free_extents.erase(it);
    }
  }
}

Status BalancedAllocator::SetOffline(MemoryBladeId blade) {
  for (auto& b : blades_) {
    if (b.id == blade) {
      b.offline = true;
      return Status::Ok();
    }
  }
  return Status(ErrorCode::kNotFound, "no such memory blade");
}

int BalancedAllocator::PickLeastLoaded(uint64_t size) const {
  int best = -1;
  uint64_t best_allocated = UINT64_MAX;
  for (size_t i = 0; i < blades_.size(); ++i) {
    const Blade& b = blades_[i];
    if (b.offline || b.allocated + size > b.capacity) {
      continue;  // Fast reject; first-fit may still fail on fragmentation, handled below.
    }
    if (b.allocated < best_allocated) {
      best_allocated = b.allocated;
      best = static_cast<int>(i);
    }
  }
  return best;
}

Result<VmaAllocation> BalancedAllocator::Allocate(uint64_t size) {
  if (size == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-size allocation");
  }
  if (blades_.empty()) {
    return Status(ErrorCode::kNoMemory, "no memory blades registered");
  }

  VmaAllocation vma;
  vma.requested_size = size;

  if (config_.policy == PlacementPolicy::kBalanced) {
    uint64_t rounded = AlignUp(size, kPageSize);
    if (config_.round_sizes_to_pow2) {
      rounded = RoundUpPowerOfTwo(rounded);
    }
    // Try least-loaded first; on fragmentation failure fall through to the next candidates.
    std::vector<size_t> order(blades_.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return blades_[a].allocated < blades_[b].allocated;
    });
    for (size_t idx : order) {
      Blade& blade = blades_[idx];
      if (blade.offline) {
        continue;
      }
      // Align to the allocation's own (power-of-two) size so the vma is one TCAM entry.
      const uint64_t alignment = config_.round_sizes_to_pow2 ? rounded : kPageSize;
      auto base = AllocateInBlade(blade, rounded, alignment);
      if (base.ok()) {
        vma.base = *base;
        vma.size = rounded;
        vma.chunks.push_back({*base, rounded, blade.id});
        total_allocated_ += rounded;
        ++placement_count_;
        return vma;
      }
    }
    return Status(ErrorCode::kNoMemory, "no blade can fit allocation");
  }

  // kPageInterleave: chop into fixed-size pages, place round-robin. The vma is still
  // contiguous in VA space in a real page-based system; here each chunk lands wherever the
  // cursor points, and the VA of the allocation is the VA of the first chunk (callers that
  // need contiguity use kBalanced; this policy exists for the Fig. 8 comparisons).
  const uint64_t page = config_.interleave_page_size;
  const uint64_t rounded = AlignUp(size, page);
  uint64_t remaining = rounded;
  std::vector<VmaAllocation::Chunk> chunks;
  while (remaining > 0) {
    bool placed = false;
    for (size_t attempt = 0; attempt < blades_.size(); ++attempt) {
      Blade& blade = blades_[interleave_cursor_ % blades_.size()];
      ++interleave_cursor_;
      if (blade.offline) {
        continue;
      }
      auto base = AllocateInBlade(blade, page, page);
      if (base.ok()) {
        chunks.push_back({*base, page, blade.id});
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Roll back partial placement.
      for (const auto& c : chunks) {
        for (auto& blade : blades_) {
          if (blade.id == c.blade) {
            FreeInBlade(blade, c.va, c.size);
          }
        }
      }
      return Status(ErrorCode::kNoMemory, "interleaved allocation failed");
    }
    remaining -= page;
  }
  vma.base = chunks.front().va;
  vma.size = rounded;
  vma.chunks = std::move(chunks);
  total_allocated_ += rounded;
  placement_count_ += vma.chunks.size();
  return vma;
}

Status BalancedAllocator::Free(const VmaAllocation& vma) {
  for (const auto& chunk : vma.chunks) {
    bool found = false;
    for (auto& blade : blades_) {
      if (blade.id == chunk.blade) {
        FreeInBlade(blade, chunk.va, chunk.size);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status(ErrorCode::kNotFound, "chunk names unknown blade");
    }
  }
  total_allocated_ -= std::min(total_allocated_, vma.size);
  return Status::Ok();
}

std::vector<uint64_t> BalancedAllocator::PerBladeLoad() const {
  std::vector<uint64_t> loads(blades_.size(), 0);
  for (size_t i = 0; i < blades_.size(); ++i) {
    loads[i] = blades_[i].allocated;
  }
  return loads;
}

}  // namespace mind
