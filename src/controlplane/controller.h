// Switch control-plane controller (§3.2, §6.3).
//
// The switch CPU hosts the MIND control program: it terminates syscall intercepts from the
// compute blades (mmap/brk/munmap/mprotect/exec/exit), keeps the canonical vma and process
// structures, performs balanced memory allocation, and pushes the resulting translation and
// protection rules into the data plane. It has the global view principle P2 relies on.
#ifndef MIND_SRC_CONTROLPLANE_CONTROLLER_H_
#define MIND_SRC_CONTROLPLANE_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/controlplane/allocator.h"
#include "src/controlplane/bounded_splitting.h"
#include "src/controlplane/process_manager.h"
#include "src/dataplane/protection.h"
#include "src/dataplane/translation.h"

namespace mind {

struct VmaRecord {
  VmaAllocation alloc;
  ProcessId pid = kInvalidProcess;
  ProtDomainId pdid = 0;
  PermClass perm = PermClass::kNone;

  [[nodiscard]] VirtAddr base() const { return alloc.base; }
  [[nodiscard]] uint64_t size() const { return alloc.size; }
  [[nodiscard]] VirtAddr end() const { return alloc.base + alloc.size; }
};

class Controller {
 public:
  Controller(AddressTranslator* translator, ProtectionTable* protection,
             BoundedSplitting* splitting, int num_compute_blades,
             AllocatorConfig alloc_config = {})
      : translator_(translator),
        protection_(protection),
        splitting_(splitting),
        allocator_(alloc_config),
        processes_(num_compute_blades) {}

  // Brings a memory blade online: reserves its VA partition and installs the single
  // blade-range translation rule (§4.1).
  Status MemoryBladeOnline(MemoryBladeId blade, uint64_t capacity_bytes);

  // --- Syscall surface (Linux-compatible semantics, §6.1) ---

  Result<ProcessId> Exec(const std::string& name) { return processes_.Exec(name); }
  Status Exit(ProcessId pid);

  Result<ProcessManager::ThreadPlacement> SpawnThread(
      ProcessId pid, ComputeBladeId pinned = kInvalidComputeBlade) {
    return processes_.SpawnThread(pid, pinned);
  }

  // mmap: allocates `size` bytes, grants `perm` to the process's protection domain.
  Result<VirtAddr> Mmap(ProcessId pid, uint64_t size, PermClass perm);

  // munmap of an entire previously mmap'd vma.
  Status Munmap(ProcessId pid, VirtAddr base);

  // mprotect over [base, base+size) — must lie inside one vma of this process.
  Status Mprotect(ProcessId pid, VirtAddr base, uint64_t size, PermClass perm);

  // Capability-style grant: share [base, base+size) of pid's vma with another protection
  // domain (e.g. one domain per client session, §4.2).
  Status GrantToDomain(ProcessId owner, ProtDomainId grantee, VirtAddr base, uint64_t size,
                       PermClass perm);
  Status RevokeFromDomain(ProtDomainId grantee, VirtAddr base, uint64_t size);

  // Page migration support: moves the aligned range to `dst` blade and installs an outlier
  // translation entry (§4.1, "Transparency via outlier entries").
  Status MigrateRange(VirtAddr base, uint32_t size_log2, MemoryBladeId dst, PhysAddr dst_pa);

  // Marks a memory blade draining: the allocator stops placing new vmas on it. Existing
  // translation rules stay until migration retargets them (drain/failover path).
  Status MemoryBladeDraining(MemoryBladeId blade) { return allocator_.SetOffline(blade); }

  // --- Queries ---

  [[nodiscard]] const VmaRecord* FindVma(VirtAddr va) const;

  // Iterates every live vma in base-address order (drain/failover enumerates what must
  // move off a blade).
  template <typename Fn>
  void ForEachVma(Fn&& fn) const {
    for (const auto& [base, vma] : vmas_) {
      fn(vma);
    }
  }
  [[nodiscard]] Result<ProtDomainId> PdidOf(ProcessId pid) const {
    return processes_.PdidOf(pid);
  }
  [[nodiscard]] ProcessManager& processes() { return processes_; }
  [[nodiscard]] const BalancedAllocator& allocator() const { return allocator_; }
  [[nodiscard]] uint64_t syscall_count() const { return syscall_count_; }
  [[nodiscard]] size_t vma_count() const { return vmas_.size(); }

 private:
  AddressTranslator* translator_;   // Not owned (lives in the data plane).
  ProtectionTable* protection_;     // Not owned.
  BoundedSplitting* splitting_;     // Not owned; may be null (baselines).
  BalancedAllocator allocator_;
  ProcessManager processes_;
  std::map<VirtAddr, VmaRecord> vmas_;  // Keyed by vma base.
  VirtAddr next_partition_start_ = kPartitionStart;
  uint64_t syscall_count_ = 0;

  static constexpr VirtAddr kPartitionStart = 0x0000'7000'0000'0000ull;
};

}  // namespace mind

#endif  // MIND_SRC_CONTROLPLANE_CONTROLLER_H_
