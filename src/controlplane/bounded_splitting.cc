#include "src/controlplane/bounded_splitting.h"

#include <algorithm>

namespace mind {

void BoundedSplitting::RunEpoch(SimTime now) {
  ++stats_.epochs;

  // Pass 1: gather epoch totals.
  uint64_t total_false = 0;
  directory_->ForEach([&](DirectoryEntry& e) {
    total_false += e.epoch_false_invalidations;
  });
  stats_.last_epoch_false_invalidations = total_false;

  const uint64_t n = std::max<uint64_t>(base_region_count_, 1);
  // Threshold t = Σf / (c · N). With no false invalidations anywhere, t is 0 and nothing
  // splits; merging still proceeds (under capacity pressure) to reclaim slots.
  const double t = static_cast<double>(total_false) / (c_ * static_cast<double>(n));
  stats_.last_threshold = t;

  const uint32_t min_log2 = Log2Floor(config_.min_region_size);
  const uint32_t max_log2 = Log2Floor(config_.base_region_size);

  // Pass 2: choose splits (each qualifying region splits once per epoch) and merges.
  // Collect bases first — Split/Merge mutate the map under iteration otherwise. A buddy
  // pair merges only when the *combined* count stays well below t and slots are scarce.
  const bool merging_active = directory_->utilization() > config_.merge_low_water;
  std::vector<VirtAddr> split_candidates;
  std::vector<VirtAddr> merge_candidates;
  directory_->ForEach([&](DirectoryEntry& e) {
    const auto f = static_cast<double>(e.epoch_false_invalidations);
    if (f > t && f >= 1.0 && e.size_log2 > min_log2) {
      split_candidates.push_back(e.base);
      return;
    }
    if (!merging_active || e.size_log2 >= max_log2) {
      return;
    }
    const VirtAddr buddy_base = e.base ^ e.size();
    if (buddy_base < e.base) {
      return;  // Only the lower buddy proposes, avoiding double consideration.
    }
    const DirectoryEntry* buddy = directory_->Lookup(buddy_base);
    if (buddy == nullptr || buddy->base != buddy_base || buddy->size_log2 != e.size_log2) {
      return;
    }
    if (e.quiet_epochs < config_.merge_quiet_epochs ||
        buddy->quiet_epochs < config_.merge_quiet_epochs) {
      return;  // Hysteresis: only persistently-cold pairs merge.
    }
    const double combined =
        f + static_cast<double>(buddy->epoch_false_invalidations);
    if (combined <= std::max(config_.merge_fraction * t, 0.0)) {
      merge_candidates.push_back(e.base);
    }
  });

  // Merges run first so the slots they free are available to this epoch's splits.
  // MergeWithBuddy re-checks existence, buddy size equality and state compatibility.
  for (VirtAddr base : merge_candidates) {
    if (directory_->MergeWithBuddy(base, max_log2).ok()) {
      ++stats_.merges;
      if (trace_ != nullptr) [[unlikely]] {
        TraceEvent ev;
        ev.kind = TraceEventKind::kDirectoryMerge;
        ev.clock = now;  // The epoch boundary this decision belongs to.
        ev.a = base;
        const DirectoryEntry* merged = directory_->Lookup(base);
        ev.b = merged != nullptr ? merged->size_log2 : 0;
        trace_->Emit(ev);
      }
    }
  }

  for (VirtAddr base : split_candidates) {
    if (directory_->utilization() >= config_.target_utilization) {
      ++stats_.split_failures;
      continue;  // Capacity-gated; AdjustC below will shrink c and raise t.
    }
    const DirectoryEntry* pre = trace_ != nullptr ? directory_->Lookup(base) : nullptr;
    const uint64_t pre_log2 = pre != nullptr ? pre->size_log2 : 0;
    if (directory_->Split(base).ok()) {
      ++stats_.splits;
      if (trace_ != nullptr) [[unlikely]] {
        TraceEvent ev;
        ev.kind = TraceEventKind::kDirectorySplit;
        ev.clock = now;
        ev.a = base;
        ev.b = pre_log2;
        trace_->Emit(ev);
      }
    } else {
      ++stats_.split_failures;
    }
  }

  // Pass 3: update quiet streaks, then reset epoch counters for the next window.
  directory_->ForEach([&](DirectoryEntry& e) {
    e.quiet_epochs = e.epoch_false_invalidations == 0 ? e.quiet_epochs + 1 : 0;
    e.ResetEpochCounters();
  });

  AdjustC();
  stats_.current_c = c_;
}

void BoundedSplitting::AdjustC() {
  // Larger c => lower threshold => more splits and more entries. Shrink it when the SRAM
  // nears capacity; grow it when there is headroom to split further.
  const double util = directory_->utilization();
  if (util >= config_.target_utilization) {
    c_ = std::max(c_ / 2.0, config_.min_c);
  } else if (util < config_.low_utilization) {
    c_ = std::min(c_ * 2.0, config_.max_c);
  }
}

}  // namespace mind
