// Process and thread management at the switch control plane (§6.1, §6.3).
//
// Compute blades intercept exec/exit and forward them to the control plane, which keeps the
// canonical task structures and the blade<->process mapping. Threads of one process running
// on *different* compute blades share a PID — and therefore a protection domain and address
// space — which is precisely what gives MIND transparent compute elasticity. Thread placement
// is round-robin, as in the paper ("we do not focus on scheduling in this work").
#ifndef MIND_SRC_CONTROLPLANE_PROCESS_MANAGER_H_
#define MIND_SRC_CONTROLPLANE_PROCESS_MANAGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace mind {

struct TaskStruct {
  ProcessId pid = kInvalidProcess;
  ProtDomainId pdid = 0;  // Defaults to pid for unmodified applications (§4.2).
  std::string name;
  // tid -> compute blade hosting that thread.
  std::unordered_map<ThreadId, ComputeBladeId> threads;
};

class ProcessManager {
 public:
  explicit ProcessManager(int num_compute_blades) : num_blades_(num_compute_blades) {}

  // exec: creates a process; its PDID defaults to the new PID.
  Result<ProcessId> Exec(const std::string& name) {
    const ProcessId pid = next_pid_++;
    TaskStruct task;
    task.pid = pid;
    task.pdid = pid;
    task.name = name;
    processes_.emplace(pid, std::move(task));
    return pid;
  }

  // Spawns a thread of `pid`; placement is round-robin across compute blades unless the
  // caller pins it. Returns the (tid, blade) pair.
  struct ThreadPlacement {
    ThreadId tid;
    ComputeBladeId blade;
  };
  Result<ThreadPlacement> SpawnThread(ProcessId pid,
                                      ComputeBladeId pinned = kInvalidComputeBlade) {
    auto it = processes_.find(pid);
    if (it == processes_.end()) {
      return Status(ErrorCode::kNotFound, "unknown pid");
    }
    const ThreadId tid = next_tid_++;
    const ComputeBladeId blade =
        pinned != kInvalidComputeBlade
            ? pinned
            : static_cast<ComputeBladeId>(round_robin_++ % static_cast<uint32_t>(num_blades_));
    it->second.threads[tid] = blade;
    thread_to_process_[tid] = pid;
    return ThreadPlacement{tid, blade};
  }

  Status Exit(ProcessId pid) {
    auto it = processes_.find(pid);
    if (it == processes_.end()) {
      return Status(ErrorCode::kNotFound, "unknown pid");
    }
    // detlint: allow(unordered-iteration): teardown erases each visited key from an
    // independent map; order-invariant.
    for (const auto& [tid, blade] : it->second.threads) {
      thread_to_process_.erase(tid);
    }
    processes_.erase(it);
    return Status::Ok();
  }

  [[nodiscard]] const TaskStruct* Find(ProcessId pid) const {
    auto it = processes_.find(pid);
    return it == processes_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] Result<ProtDomainId> PdidOf(ProcessId pid) const {
    auto it = processes_.find(pid);
    if (it == processes_.end()) {
      return Status(ErrorCode::kNotFound, "unknown pid");
    }
    return it->second.pdid;
  }

  // Assigns a custom protection domain (e.g. one per client session, §4.2).
  Status SetPdid(ProcessId pid, ProtDomainId pdid) {
    auto it = processes_.find(pid);
    if (it == processes_.end()) {
      return Status(ErrorCode::kNotFound, "unknown pid");
    }
    it->second.pdid = pdid;
    return Status::Ok();
  }

  [[nodiscard]] Result<ComputeBladeId> BladeOfThread(ThreadId tid) const {
    auto pit = thread_to_process_.find(tid);
    if (pit == thread_to_process_.end()) {
      return Status(ErrorCode::kNotFound, "unknown tid");
    }
    const TaskStruct& task = processes_.at(pit->second);
    return task.threads.at(tid);
  }

  [[nodiscard]] Result<ProcessId> ProcessOfThread(ThreadId tid) const {
    auto pit = thread_to_process_.find(tid);
    if (pit == thread_to_process_.end()) {
      return Status(ErrorCode::kNotFound, "unknown tid");
    }
    return pit->second;
  }

  [[nodiscard]] size_t process_count() const { return processes_.size(); }

 private:
  int num_blades_;
  ProcessId next_pid_ = 1;
  ThreadId next_tid_ = 1;
  uint32_t round_robin_ = 0;
  std::unordered_map<ProcessId, TaskStruct> processes_;
  std::unordered_map<ThreadId, ProcessId> thread_to_process_;
};

}  // namespace mind

#endif  // MIND_SRC_CONTROLPLANE_PROCESS_MANAGER_H_
