#include "src/controlplane/controller.h"

#include <algorithm>

namespace mind {

Status Controller::MemoryBladeOnline(MemoryBladeId blade, uint64_t capacity_bytes) {
  ++syscall_count_;
  const VirtAddr start = next_partition_start_;
  if (Status s = allocator_.AddBlade(blade, start, capacity_bytes); !s.ok()) {
    return s;
  }
  if (Status s = translator_->AddBladeRange(blade, start, capacity_bytes); !s.ok()) {
    return s;
  }
  next_partition_start_ += capacity_bytes;
  return Status::Ok();
}

Result<VirtAddr> Controller::Mmap(ProcessId pid, uint64_t size, PermClass perm) {
  ++syscall_count_;
  auto pdid = processes_.PdidOf(pid);
  if (!pdid.ok()) {
    return pdid.status();
  }
  auto alloc = allocator_.Allocate(size);
  if (!alloc.ok()) {
    return alloc.status();  // ENOMEM back to the blade.
  }
  if (Status s = protection_->Grant(*pdid, alloc->base, alloc->size, perm); !s.ok()) {
    (void)allocator_.Free(*alloc);
    return s;
  }
  VmaRecord rec;
  rec.alloc = *alloc;
  rec.pid = pid;
  rec.pdid = *pdid;
  rec.perm = perm;
  const VirtAddr base = rec.base();
  vmas_.emplace(base, std::move(rec));
  if (splitting_ != nullptr) {
    splitting_->OnAllocationChanged(allocator_.total_allocated());
  }
  return base;
}

Status Controller::Munmap(ProcessId pid, VirtAddr base) {
  ++syscall_count_;
  auto it = vmas_.find(base);
  if (it == vmas_.end()) {
    return Status(ErrorCode::kFault, "no vma at address");
  }
  if (it->second.pid != pid) {
    return Status(ErrorCode::kPermissionDenied, "vma belongs to another process");
  }
  (void)protection_->Revoke(it->second.pdid, it->second.base(), it->second.size());
  if (Status s = allocator_.Free(it->second.alloc); !s.ok()) {
    return s;
  }
  vmas_.erase(it);
  if (splitting_ != nullptr) {
    splitting_->OnAllocationChanged(allocator_.total_allocated());
  }
  return Status::Ok();
}

Status Controller::Mprotect(ProcessId pid, VirtAddr base, uint64_t size, PermClass perm) {
  ++syscall_count_;
  const VmaRecord* vma = FindVma(base);
  if (vma == nullptr || vma->pid != pid) {
    return Status(ErrorCode::kFault, "range not mapped by this process");
  }
  if (base + size > vma->end()) {
    return Status(ErrorCode::kInvalidArgument, "range exceeds vma");
  }
  return protection_->Grant(vma->pdid, base, size, perm);
}

Status Controller::GrantToDomain(ProcessId owner, ProtDomainId grantee, VirtAddr base,
                                 uint64_t size, PermClass perm) {
  ++syscall_count_;
  const VmaRecord* vma = FindVma(base);
  if (vma == nullptr || vma->pid != owner) {
    return Status(ErrorCode::kPermissionDenied, "granting process does not own the range");
  }
  if (base + size > vma->end()) {
    return Status(ErrorCode::kInvalidArgument, "range exceeds vma");
  }
  return protection_->Grant(grantee, base, size, perm);
}

Status Controller::RevokeFromDomain(ProtDomainId grantee, VirtAddr base, uint64_t size) {
  ++syscall_count_;
  return protection_->Revoke(grantee, base, size);
}

Status Controller::MigrateRange(VirtAddr base, uint32_t size_log2, MemoryBladeId dst,
                                PhysAddr dst_pa) {
  ++syscall_count_;
  return translator_->AddOutlier(base, size_log2, dst, dst_pa);
}

Status Controller::Exit(ProcessId pid) {
  ++syscall_count_;
  // Tear down all vmas owned by the process, then the task itself.
  for (auto it = vmas_.begin(); it != vmas_.end();) {
    if (it->second.pid == pid) {
      (void)protection_->Revoke(it->second.pdid, it->second.base(), it->second.size());
      (void)allocator_.Free(it->second.alloc);
      it = vmas_.erase(it);
    } else {
      ++it;
    }
  }
  if (splitting_ != nullptr) {
    splitting_->OnAllocationChanged(allocator_.total_allocated());
  }
  return processes_.Exit(pid);
}

const VmaRecord* Controller::FindVma(VirtAddr va) const {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  --it;
  if (va >= it->second.end()) {
    return nullptr;
  }
  return &it->second;
}

}  // namespace mind
