// Compute-blade local DRAM cache (§2.1 partial disaggregation, §6.1).
//
// Under MIND's partial-disaggregation model each compute blade keeps a few GB of local DRAM
// as a *virtually addressed* page cache (512 MB in the paper's evaluation — ~25% of workload
// footprint). The cache tracks per-page write permission and dirtiness; on an invalidation
// for a region it must flush every writable (dirty) page in that region and drop all local
// PTEs for it (§6.1). Eviction is LRU with write-back of dirty pages.
//
// Page payloads are optional: correctness tests and the examples move real bytes, while the
// figure benches run metadata-only to keep memory use flat.
#ifndef MIND_SRC_BLADE_DRAM_CACHE_H_
#define MIND_SRC_BLADE_DRAM_CACHE_H_

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/types.h"

namespace mind {

using PageData = std::array<uint8_t, kPageSize>;

class DramCache {
 public:
  DramCache(uint64_t capacity_frames, bool store_data)
      : capacity_(capacity_frames), store_data_(store_data) {}

  struct Frame {
    bool dirty = false;
    bool writable = false;
    // Protection domain that faulted the page in. A hit from a different domain re-checks
    // against the switch's protection table (MPK-style domain tags on local PTEs), so one
    // session can never ride another session's cached pages (§4.2).
    ProtDomainId pdid = 0;
    std::unique_ptr<PageData> data;  // Null when the cache is metadata-only.
    std::list<uint64_t>::iterator lru_it;
  };

  // Returns the frame caching `page` (a page number), or nullptr. Bumps LRU recency.
  Frame* Lookup(uint64_t page);
  [[nodiscard]] const Frame* Peek(uint64_t page) const;  // No LRU side effects.

  // Inserts (or updates) a page. If the cache is full, evicts the LRU page first and
  // returns it so the caller can write back dirty data. `data` may be null.
  struct Eviction {
    uint64_t page = 0;
    bool dirty = false;
    std::unique_ptr<PageData> data;
  };
  std::optional<Eviction> Insert(uint64_t page, bool writable,
                                 std::unique_ptr<PageData> data = nullptr,
                                 ProtDomainId pdid = 0);

  // Upgrades an existing frame to writable (S->M locally). No-op if absent.
  void MakeWritable(uint64_t page);
  // Marks a cached page dirty after a store. No-op if absent.
  void MarkDirty(uint64_t page);

  // Invalidates every cached page in [page_begin, page_end): dirty pages are returned for
  // write-back (these are the "flushed pages" of Fig. 6), clean pages are simply dropped.
  struct RangeInvalidation {
    std::vector<Eviction> flushed;  // Dirty pages needing write-back, ascending page order.
    uint64_t dropped_clean = 0;
  };
  RangeInvalidation InvalidateRange(uint64_t page_begin, uint64_t page_end);

  // Downgrade to read-only without dropping: flushes dirty pages (returned) and clears
  // write permission. Used by the ablation that keeps M->S sharers resident.
  RangeInvalidation DowngradeRange(uint64_t page_begin, uint64_t page_end);

  [[nodiscard]] uint64_t CountRange(uint64_t page_begin, uint64_t page_end) const;

  [[nodiscard]] uint64_t size() const { return frames_.size(); }
  [[nodiscard]] uint64_t capacity() const { return capacity_; }
  [[nodiscard]] bool store_data() const { return store_data_; }

 private:
  void TouchLru(uint64_t page, Frame& frame);

  uint64_t capacity_;
  bool store_data_;
  std::map<uint64_t, Frame> frames_;  // Ordered by page number for range invalidations.
  std::list<uint64_t> lru_;           // Front = most recently used.
};

}  // namespace mind

#endif  // MIND_SRC_BLADE_DRAM_CACHE_H_
