// Compute-blade local DRAM cache (§2.1 partial disaggregation, §6.1).
//
// Under MIND's partial-disaggregation model each compute blade keeps a few GB of local DRAM
// as a *virtually addressed* page cache (512 MB in the paper's evaluation — ~25% of workload
// footprint). The cache tracks per-page write permission and dirtiness; on an invalidation
// for a region it must flush every writable (dirty) page in that region and drop all local
// PTEs for it (§6.1). Eviction is LRU with write-back of dirty pages.
//
// The hit path — the single hottest operation in the whole simulation — is one flat-hash
// probe plus an intrusive LRU relink: frames live in a chunked arena (stable pointers, no
// per-node allocation) linked by 32-bit indices, and a flat open-addressed map takes page
// number to arena slot. Ordered range invalidation is preserved without an ordered map via
// a compact per-region page index: one presence bitmap per aligned 512-page (2 MB) region,
// walked region-by-region, word-by-word, in ascending page order.
//
// Page payloads are optional: correctness tests and the examples move real bytes, while the
// figure benches run metadata-only to keep memory use flat. When payloads are on, they come
// from a per-blade slab arena rather than per-fault heap allocations: faulted-in pages pop
// a recycled 4 KB slot and evicted/flushed pages return theirs once the write-back is done,
// so `store_data` replay no longer thrashes the allocator (and the arena's lazy slab growth
// gives first-touch NUMA placement under sharded replay).
#ifndef MIND_SRC_BLADE_DRAM_CACHE_H_
#define MIND_SRC_BLADE_DRAM_CACHE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/chunked_arena.h"
#include "src/common/flat_map.h"
#include "src/common/slab_arena.h"
#include "src/common/types.h"

namespace mind {

using PageData = std::array<uint8_t, kPageSize>;

// Per-blade payload arena: 64 pages (256 KB) per slab keeps slab metadata negligible while
// letting small caches stay small.
using PagePool = SlabArena<PageData, 64>;
using PagePtr = PagePool::Ptr;

class DramCache {
 public:
  DramCache(uint64_t capacity_frames, bool store_data)
      : capacity_(capacity_frames), store_data_(store_data) {}

  struct Frame {
    bool dirty = false;
    bool writable = false;
    // Installed by a prefetch and not yet demand-touched. The hit paths clear it on the
    // first touch (classifying the prefetch useful); always false when prefetching is
    // off, so the flag costs the fast path one perfectly-predicted branch.
    bool prefetched = false;
    // Protection domain that faulted the page in. A hit from a different domain re-checks
    // against the switch's protection table (MPK-style domain tags on local PTEs), so one
    // session can never ride another session's cached pages (§4.2).
    ProtDomainId pdid = 0;
    PagePtr data;  // Arena-backed payload; null when the cache is metadata-only.
    // Intrusive LRU bookkeeping: the cached page number, this frame's arena slot, and the
    // neighbouring slots in recency order (kNilFrame-terminated).
    uint64_t page = 0;
    uint32_t self = 0;
    uint32_t lru_prev = 0;
    uint32_t lru_next = 0;
  };

  // Returns the frame caching `page` (a page number), or nullptr. Bumps LRU recency.
  Frame* Lookup(uint64_t page);
  // No LRU side effects; `Find` is the mutable flavor used by memoizing fast paths.
  [[nodiscard]] Frame* Find(uint64_t page);
  [[nodiscard]] const Frame* Peek(uint64_t page) const;

  // Moves a frame (obtained from Lookup/Find) to the MRU position. O(1); no-op when the
  // frame is already most recent. Lets a caller that memoized the frame pointer keep LRU
  // order exact without re-probing the hash.
  void Touch(Frame* frame);

  // Inserts (or updates) a page, copying `bytes` into an arena-backed payload slot (or
  // zero-filling when `bytes` is null, matching anonymous-mmap semantics). If the cache is
  // full, evicts the LRU page first and returns it so the caller can write back dirty
  // data; the eviction's payload recycles into this blade's arena when dropped.
  struct Eviction {
    uint64_t page = 0;
    bool dirty = false;
    PagePtr data;
  };
  std::optional<Eviction> Insert(uint64_t page, bool writable,
                                 const PageData* bytes = nullptr, ProtDomainId pdid = 0);

  // Speculative install for prefetched pages (prefetch-aware eviction priority): like
  // Insert, but the new frame enters the recency order `lru_depth` frames above the cold
  // end instead of at MRU — so under pressure a burst of guesses evicts its own earlier
  // guesses before any demand-faulted page — and is marked Frame::prefetched (the first
  // demand touch promotes it through the ordinary Touch path). `lru_depth` >= current
  // size degenerates to an MRU insert. Callers are expected to have deduplicated against
  // the cache (a page already present takes the demand-style Insert path instead).
  std::optional<Eviction> InsertPrefetched(uint64_t page, bool writable,
                                           const PageData* bytes, ProtDomainId pdid,
                                           uint32_t lru_depth);

  // Upgrades an existing frame to writable (S->M locally). No-op if absent.
  void MakeWritable(uint64_t page);
  // Marks a cached page dirty after a store. No-op if absent.
  void MarkDirty(uint64_t page);

  // Invalidates every cached page in [page_begin, page_end): dirty pages are returned for
  // write-back (these are the "flushed pages" of Fig. 6), clean pages are simply dropped.
  struct RangeInvalidation {
    std::vector<Eviction> flushed;  // Dirty pages needing write-back, ascending page order.
    uint64_t dropped_clean = 0;
  };
  RangeInvalidation InvalidateRange(uint64_t page_begin, uint64_t page_end);

  // Downgrade to read-only without dropping: flushes dirty pages (returned) and clears
  // write permission. Used by the ablation that keeps M->S sharers resident.
  RangeInvalidation DowngradeRange(uint64_t page_begin, uint64_t page_end);

  [[nodiscard]] uint64_t CountRange(uint64_t page_begin, uint64_t page_end) const;

  [[nodiscard]] uint64_t size() const { return index_.size(); }
  [[nodiscard]] uint64_t capacity() const { return capacity_; }
  [[nodiscard]] bool store_data() const { return store_data_; }
  [[nodiscard]] PagePool& payload_pool() { return pool_; }
  [[nodiscard]] const PagePool& payload_pool() const { return pool_; }

  // Per-2MB-region membership/permission version: the last mutation ordinal at which any
  // page of the aligned 512-page region changed membership, writability or domain tag
  // (0 = never) — but NOT recency or dirtiness, so the batched channel fast path can
  // Touch and MarkDirty without invalidating submitted runs. AccessChannel validity
  // stamps compare against this, so an invalidation wave over a shared region no longer
  // invalidates submitted runs over private regions of the same blade. Values are drawn
  // from one global monotonic counter, so a region that empties out and is later
  // repopulated can never repeat an old version.
  [[nodiscard]] uint64_t region_version(uint64_t region) const {
    const uint64_t* v = region_versions_.Find(region);
    return v == nullptr ? 0 : *v;
  }
  [[nodiscard]] static uint64_t RegionOf(uint64_t page) { return page / kRegionPages; }

  // Per-2MB-region *invalidation* version: the last mutation ordinal at which pages of
  // the region were dropped by a coherence/permission event (InvalidateRange — waves,
  // shoot-downs, munmap), but NOT by inserts, LRU evictions or downgrades. In-flight
  // prefetches stamp this at issue time: a wave that lands in the region between issue
  // and arrival makes the fetched copy stale, so the install is discarded. Whole-range
  // invalidations spanning many regions bump one wide epoch instead of every region
  // (max() of the two sides keeps the comparison exact either way).
  [[nodiscard]] uint64_t region_inval_version(uint64_t region) const {
    const uint64_t* v = region_inval_versions_.Find(region);
    return std::max(wide_inval_version_, v == nullptr ? 0 : *v);
  }

  // Per-region page index granularity: one bitmap (and one state version) per aligned
  // 512-page (2 MB) region.
  static constexpr uint64_t kRegionPages = 512;

  // Dependency footprint of a classified channel run: (region, version) stamps recorded
  // at classification time and re-checked before the run is reused. Add runs once per
  // accepted op on the submit hot path, so the dedup must be O(1): a direct-mapped tag
  // filter absorbs repeats (runs span a handful of regions, typically hitting distinct
  // slots), and only a filter miss pays the short authoritative scan.
  class RegionStamps {
   public:
    void Clear() {
      stamps_.clear();
      tags_.fill(0);
      global_ = 0;
    }
    void Add(const DramCache& cache, uint64_t region) {
      global_ = cache.version_;  // Snapshot of the global mutation ordinal (see Valid).
      uint64_t& tag = tags_[region & (kTagSlots - 1)];
      if (tag == region + 1) {
        return;  // Already stamped (tags store region + 1 so 0 means empty).
      }
      tag = region + 1;
      for (const Stamp& s : stamps_) {
        if (s.region == region) {
          return;  // Tag slot was overwritten by a colliding region; stamp exists.
        }
      }
      stamps_.push_back(Stamp{region, cache.region_version(region)});
    }
    [[nodiscard]] bool Valid(const DramCache& cache) const {
      if (cache.version_ == global_) {
        // Nothing in the whole cache mutated membership/permissions since the stamps
        // were recorded (recency and dirtiness don't advance the ordinal), so every
        // per-region check would pass — validation is one comparison per round in the
        // common no-mutation case instead of a hash probe per stamped region.
        return true;
      }
      for (const Stamp& s : stamps_) {
        if (cache.region_version(s.region) != s.version) {
          return false;
        }
      }
      return true;
    }

   private:
    static constexpr size_t kTagSlots = 16;
    struct Stamp {
      uint64_t region = 0;
      uint64_t version = 0;
    };
    std::array<uint64_t, kTagSlots> tags_{};
    std::vector<Stamp> stamps_;
    uint64_t global_ = 0;  // Cache-wide ordinal at recording time (0 = no stamps yet).
  };

 private:
  static constexpr uint32_t kNilFrame = UINT32_MAX;
  struct Region {
    std::array<uint64_t, kRegionPages / 64> bits{};
    uint32_t count = 0;
  };

  [[nodiscard]] Frame& FrameAt(uint32_t idx) { return arena_.At(idx); }
  [[nodiscard]] const Frame& FrameAt(uint32_t idx) const { return arena_.At(idx); }

  void LruUnlink(Frame& frame);
  void LruPushFront(Frame& frame);
  // Links a new frame so exactly min(depth, size) existing frames are colder than it.
  void LruInsertAtDepth(Frame& frame, uint32_t depth);
  // The shared construction path of Insert and InsertPrefetched for a page not yet
  // cached: evict under capacity pressure, build the frame, link at `lru_depth`
  // (kMruDepth = MRU), index. Callers bump the region themselves.
  static constexpr uint32_t kMruDepth = UINT32_MAX;
  std::optional<Eviction> EmplaceNewFrame(uint64_t page, bool writable,
                                          const PageData* bytes, ProtDomainId pdid,
                                          bool prefetched, uint32_t lru_depth);
  void IndexSetPage(uint64_t page);
  void IndexClearPage(uint64_t page);
  // Advances the global version and records it as `page`'s region version.
  void BumpRegion(uint64_t page) { region_versions_.Upsert(RegionOf(page), ++version_); }
  // Removes the frame at `idx` from every structure; returns its eviction record.
  Eviction RemoveFrame(uint32_t idx);

  // Calls fn(page) for every cached page in [page_begin, page_end) in ascending order,
  // walking the per-region bitmaps word by word with the range boundaries masked off.
  // `kMutates` permits fn to remove the visited page (and thus its region).
  template <bool kMutates, typename Fn>
  void ForEachPageInRange(uint64_t page_begin, uint64_t page_end, Fn&& fn) const;

  // Allocates an arena payload slot holding a copy of `bytes` (or zeros).
  [[nodiscard]] PagePtr MakePayload(const PageData* bytes);

  uint64_t capacity_;
  bool store_data_;
  PagePool pool_;              // Payload slab arena (store_data only).
  FlatMap64<uint32_t> index_;  // Page number -> arena slot.
  ChunkedArena<Frame, /*kChunkShift=*/12> arena_;
  uint32_t lru_head_ = kNilFrame;  // Most recently used.
  uint32_t lru_tail_ = kNilFrame;  // Least recently used.
  uint64_t version_ = 0;           // Global mutation ordinal feeding region_version().
  // Region number -> last mutation version (never erased; see region_version()).
  FlatMap64<uint64_t> region_versions_;
  // Invalidation-only versions (see region_inval_version): narrow InvalidateRange calls
  // bump the overlapped regions' entries; calls spanning > kWideInvalRegions regions bump
  // the wide epoch once instead.
  FlatMap64<uint64_t> region_inval_versions_;
  uint64_t wide_inval_version_ = 0;
  static constexpr uint64_t kWideInvalRegions = 32;
  std::unordered_map<uint64_t, Region> regions_;  // Region number -> presence bitmap.
};

}  // namespace mind

#endif  // MIND_SRC_BLADE_DRAM_CACHE_H_
