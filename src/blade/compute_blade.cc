#include "src/blade/compute_blade.h"

namespace mind {

ComputeBlade::InvalidationOutcome ComputeBlade::HandleInvalidation(VirtAddr base, VirtAddr end,
                                                                   SimTime arrival) {
  ++invalidations_received_;

  InvalidationOutcome out;
  auto range = cache_.InvalidateRange(PageNumber(base), PageNumber(end - 1) + 1);
  out.flushed = std::move(range.flushed);
  out.dropped_clean = range.dropped_clean;

  // Service time: kernel handler entry, one synchronous TLB shootdown if any PTE was
  // dropped, then per-dirty-page flush work (unmap + post one-sided RDMA write).
  const bool any_pte = !out.flushed.empty() || out.dropped_clean > 0;
  const SimTime tlb = any_pte ? latency_.tlb_shootdown : 0;
  const SimTime service = latency_.invalidation_handler_cpu + tlb +
                          static_cast<SimTime>(out.flushed.size()) * latency_.page_flush_cpu;

  const auto grant = handler_queue_.Acquire(arrival, service);
  out.start = grant.start;
  out.done = grant.finish;
  out.queue_wait = grant.wait;
  out.tlb_time = tlb;

  pages_flushed_ += out.flushed.size();
  if (any_pte) {
    ++tlb_shootdowns_;
  }
  return out;
}

}  // namespace mind
