// Compute blade model (§6.1).
//
// A compute blade runs workload threads, keeps its DRAM page cache, and services coherence
// invalidations from the switch on a serial kernel path: each invalidation waits in the
// blade's handler queue, performs a synchronous TLB shootdown, flushes the region's dirty
// pages back to memory and drops the local PTEs. The queue wait and shootdown costs are the
// "Inv. (queue)" and "Inv. (TLB)" components of Fig. 7 (right).
#ifndef MIND_SRC_BLADE_COMPUTE_BLADE_H_
#define MIND_SRC_BLADE_COMPUTE_BLADE_H_

#include <cstdint>
#include <vector>

#include "src/blade/dram_cache.h"
#include "src/common/types.h"
#include "src/sim/latency_model.h"
#include "src/sim/resource.h"

namespace mind {

class ComputeBlade {
 public:
  ComputeBlade(ComputeBladeId id, uint64_t cache_frames, bool store_data,
               const LatencyModel& latency)
      : id_(id), cache_(cache_frames, store_data), latency_(latency) {}

  [[nodiscard]] ComputeBladeId id() const { return id_; }
  [[nodiscard]] DramCache& cache() { return cache_; }
  [[nodiscard]] const DramCache& cache() const { return cache_; }

  // Processes an invalidation request for region [base, end) that arrived at `arrival`.
  // Returns the flush set and the timing decomposition. The requested page (the one the
  // requesting blade asked for) is identified so false invalidations can be counted by the
  // caller: every *other* dirty page flushed here was invalidated "falsely" (§4.3.1).
  struct InvalidationOutcome {
    SimTime start = 0;          // When the handler began (>= arrival).
    SimTime done = 0;           // When flushes were posted and PTEs dropped.
    SimTime queue_wait = 0;     // Handler-queue delay.
    SimTime tlb_time = 0;       // Synchronous TLB shootdown portion.
    std::vector<DramCache::Eviction> flushed;  // Dirty pages to write back.
    uint64_t dropped_clean = 0;
  };
  InvalidationOutcome HandleInvalidation(VirtAddr base, VirtAddr end, SimTime arrival);

  // Per-blade counters.
  [[nodiscard]] uint64_t invalidations_received() const { return invalidations_received_; }
  [[nodiscard]] uint64_t pages_flushed() const { return pages_flushed_; }
  [[nodiscard]] uint64_t tlb_shootdowns() const { return tlb_shootdowns_; }
  [[nodiscard]] const FifoResource& handler_queue() const { return handler_queue_; }

 private:
  ComputeBladeId id_;
  DramCache cache_;
  LatencyModel latency_;
  FifoResource handler_queue_;  // Serial kernel invalidation path.
  uint64_t invalidations_received_ = 0;
  uint64_t pages_flushed_ = 0;
  uint64_t tlb_shootdowns_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_BLADE_COMPUTE_BLADE_H_
