// Passive memory blade (§3.2, §6.2).
//
// MIND's memory blades store pages and answer one-sided RDMA reads/writes — no CPU cycles,
// no RPC handlers, no polling threads. We model the blade as a page store behind a NIC whose
// service time covers the DMA into/out of DRAM. Byte storage is optional (metadata-only for
// the large benches).
#ifndef MIND_SRC_BLADE_MEMORY_BLADE_H_
#define MIND_SRC_BLADE_MEMORY_BLADE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "src/blade/dram_cache.h"  // For PageData.
#include "src/common/types.h"

namespace mind {

class MemoryBlade {
 public:
  MemoryBlade(MemoryBladeId id, uint64_t capacity_bytes, bool store_data)
      : id_(id), capacity_pages_(capacity_bytes >> kPageShift), store_data_(store_data) {}

  [[nodiscard]] MemoryBladeId id() const { return id_; }
  [[nodiscard]] uint64_t capacity_pages() const { return capacity_pages_; }

  // One-sided RDMA write of a full page at physical page number `pa_page`. Pages are
  // zero-filled on first touch, matching anonymous-mmap semantics.
  void WritePage(uint64_t pa_page, const PageData* data) {
    ++writes_;
    if (!store_data_) {
      return;
    }
    auto& slot = pages_[pa_page];
    if (slot == nullptr) {
      slot = std::make_unique<PageData>();
      slot->fill(0);
    }
    if (data != nullptr) {
      *slot = *data;
    }
  }

  // One-sided RDMA read. Returns null in metadata-only mode or for never-written pages
  // (semantically all-zero).
  [[nodiscard]] const PageData* ReadPage(uint64_t pa_page) {
    ++reads_;
    if (!store_data_) {
      return nullptr;
    }
    auto it = pages_.find(pa_page);
    return it == pages_.end() ? nullptr : it->second.get();
  }

  [[nodiscard]] uint64_t reads() const { return reads_; }
  [[nodiscard]] uint64_t writes() const { return writes_; }
  [[nodiscard]] uint64_t resident_pages() const { return pages_.size(); }
  [[nodiscard]] bool store_data() const { return store_data_; }

 private:
  MemoryBladeId id_;
  uint64_t capacity_pages_;
  bool store_data_;
  std::unordered_map<uint64_t, std::unique_ptr<PageData>> pages_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace mind

#endif  // MIND_SRC_BLADE_MEMORY_BLADE_H_
