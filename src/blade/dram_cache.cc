#include "src/blade/dram_cache.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mind {

void DramCache::LruUnlink(Frame& frame) {
  if (frame.lru_prev != kNilFrame) {
    FrameAt(frame.lru_prev).lru_next = frame.lru_next;
  } else {
    lru_head_ = frame.lru_next;
  }
  if (frame.lru_next != kNilFrame) {
    FrameAt(frame.lru_next).lru_prev = frame.lru_prev;
  } else {
    lru_tail_ = frame.lru_prev;
  }
}

void DramCache::LruPushFront(Frame& frame) {
  frame.lru_prev = kNilFrame;
  frame.lru_next = lru_head_;
  if (lru_head_ != kNilFrame) {
    FrameAt(lru_head_).lru_prev = frame.self;
  } else {
    lru_tail_ = frame.self;
  }
  lru_head_ = frame.self;
}

void DramCache::LruInsertAtDepth(Frame& frame, uint32_t depth) {
  // Walk `depth` frames up from the cold end; the new frame links between the walked
  // prefix (stays colder) and the rest (stays warmer). O(depth), bounded by the caller's
  // adaptive depth — and only ever paid on speculative installs, never on hits.
  uint32_t colder = kNilFrame;    // Becomes frame.lru_next.
  uint32_t warmer = lru_tail_;    // Becomes frame.lru_prev.
  while (depth > 0 && warmer != kNilFrame) {
    colder = warmer;
    warmer = FrameAt(warmer).lru_prev;
    --depth;
  }
  frame.lru_next = colder;
  frame.lru_prev = warmer;
  if (colder != kNilFrame) {
    FrameAt(colder).lru_prev = frame.self;
  } else {
    lru_tail_ = frame.self;
  }
  if (warmer != kNilFrame) {
    FrameAt(warmer).lru_next = frame.self;
  } else {
    lru_head_ = frame.self;
  }
}

void DramCache::IndexSetPage(uint64_t page) {
  Region& region = regions_[page / kRegionPages];
  const uint64_t bit = page % kRegionPages;
  region.bits[bit >> 6] |= uint64_t{1} << (bit & 63);
  ++region.count;
}

void DramCache::IndexClearPage(uint64_t page) {
  auto it = regions_.find(page / kRegionPages);
  assert(it != regions_.end());
  const uint64_t bit = page % kRegionPages;
  it->second.bits[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
  if (--it->second.count == 0) {
    regions_.erase(it);
  }
}

DramCache::Frame* DramCache::Lookup(uint64_t page) {
  const uint32_t* idxp = index_.Find(page);
  if (idxp == nullptr) {
    return nullptr;
  }
  Frame& frame = FrameAt(*idxp);
  Touch(&frame);
  return &frame;
}

DramCache::Frame* DramCache::Find(uint64_t page) {
  const uint32_t* idxp = index_.Find(page);
  return idxp == nullptr ? nullptr : &FrameAt(*idxp);
}

const DramCache::Frame* DramCache::Peek(uint64_t page) const {
  const uint32_t* idxp = index_.Find(page);
  return idxp == nullptr ? nullptr : &FrameAt(*idxp);
}

void DramCache::Touch(Frame* frame) {
  if (lru_head_ == frame->self) {
    return;  // Already most recent.
  }
  LruUnlink(*frame);
  LruPushFront(*frame);
}

DramCache::Eviction DramCache::RemoveFrame(uint32_t idx) {
  Frame& frame = FrameAt(idx);
  BumpRegion(frame.page);
  Eviction ev{frame.page, frame.dirty, std::move(frame.data)};
  LruUnlink(frame);
  index_.Erase(frame.page);
  IndexClearPage(frame.page);
  arena_.Free(idx);
  return ev;
}

PagePtr DramCache::MakePayload(const PageData* bytes) {
  PagePtr data = pool_.AllocPtr();
  if (bytes != nullptr) {
    *data = *bytes;
  } else {
    data->fill(0);  // Recycled slots keep stale bytes; fresh pages read as zero.
  }
  return data;
}

std::optional<DramCache::Eviction> DramCache::EmplaceNewFrame(uint64_t page, bool writable,
                                                              const PageData* bytes,
                                                              ProtDomainId pdid,
                                                              bool prefetched,
                                                              uint32_t lru_depth) {
  std::optional<Eviction> evicted;
  if (index_.size() >= capacity_ && capacity_ > 0) {
    assert(lru_tail_ != kNilFrame);
    evicted = RemoveFrame(lru_tail_);
  }
  const uint32_t idx = arena_.Alloc();
  Frame& frame = FrameAt(idx);
  frame.writable = writable;
  frame.dirty = false;
  frame.prefetched = prefetched;  // Arena slots recycle: always written explicitly.
  frame.pdid = pdid;
  frame.page = page;
  frame.self = idx;
  frame.data = store_data_ ? MakePayload(bytes) : nullptr;
  if (lru_depth == kMruDepth) {
    LruPushFront(frame);
  } else {
    LruInsertAtDepth(frame, lru_depth);
  }
  index_.Upsert(page, idx);
  IndexSetPage(page);
  return evicted;
}

std::optional<DramCache::Eviction> DramCache::Insert(uint64_t page, bool writable,
                                                     const PageData* bytes,
                                                     ProtDomainId pdid) {
  BumpRegion(page);  // Membership or permissions may change on either path below.
  if (Frame* existing = Find(page); existing != nullptr) {
    // Re-insert: permission upgrade and/or fresh data. A demand re-insert counts as the
    // page's first real use, so it sheds any prefetched marking.
    existing->writable = existing->writable || writable;
    existing->prefetched = false;
    existing->pdid = pdid;
    if (store_data_ && bytes != nullptr) {
      if (existing->data == nullptr) {
        existing->data = pool_.AllocPtr();
      }
      *existing->data = *bytes;
    }
    Touch(existing);
    return std::nullopt;
  }
  return EmplaceNewFrame(page, writable, bytes, pdid, /*prefetched=*/false, kMruDepth);
}

std::optional<DramCache::Eviction> DramCache::InsertPrefetched(uint64_t page, bool writable,
                                                               const PageData* bytes,
                                                               ProtDomainId pdid,
                                                               uint32_t lru_depth) {
  if (Find(page) != nullptr) {
    // Callers dedup before speculative installs; a racing demand insert wins.
    return Insert(page, writable, bytes, pdid);
  }
  BumpRegion(page);
  return EmplaceNewFrame(page, writable, bytes, pdid, /*prefetched=*/true, lru_depth);
}

void DramCache::MakeWritable(uint64_t page) {
  if (Frame* frame = Find(page); frame != nullptr) {
    frame->writable = true;
    BumpRegion(page);
  }
}

void DramCache::MarkDirty(uint64_t page) {
  if (Frame* frame = Find(page); frame != nullptr) {
    frame->dirty = true;
  }
}

template <bool kMutates, typename Fn>
void DramCache::ForEachPageInRange(uint64_t page_begin, uint64_t page_end, Fn&& fn) const {
  if (page_begin >= page_end || regions_.empty()) {
    return;
  }
  const uint64_t region_begin = page_begin / kRegionPages;
  const uint64_t region_last = (page_end - 1) / kRegionPages;

  auto process_region = [&](uint64_t r) {
    auto rit = regions_.find(r);
    if (rit == regions_.end()) {
      return;
    }
    for (uint64_t w = 0; w < kRegionPages / 64; ++w) {
      const uint64_t word_base = r * kRegionPages + w * 64;
      if (word_base >= page_end) {
        break;
      }
      if (word_base + 64 <= page_begin) {
        continue;
      }
      // Snapshot the word with the range boundaries masked off, then visit set bits
      // ascending; fn may mutate the region (kMutates) without disturbing the snapshot.
      uint64_t bits = rit->second.bits[w];
      if (page_begin > word_base) {
        bits &= ~uint64_t{0} << (page_begin - word_base);
      }
      if (page_end < word_base + 64) {
        bits &= (uint64_t{1} << (page_end - word_base)) - 1;
      }
      while (bits != 0) {
        fn(word_base + static_cast<uint64_t>(std::countr_zero(bits)));
        bits &= bits - 1;
      }
      if constexpr (kMutates) {
        // fn may have removed pages and thereby erased the region once empty.
        rit = regions_.find(r);
        if (rit == regions_.end()) {
          break;
        }
      }
    }
  };

  if (region_last - region_begin >= regions_.size()) {
    // Sparse range (e.g. a whole-VMA shoot-down over a huge mapping): visiting the live
    // regions that intersect it beats probing every region number in the span.
    std::vector<uint64_t> keys;
    keys.reserve(regions_.size());
    // detlint: allow(unordered-iteration): keys are collected then sorted before the
    // order-sensitive visit below.
    for (const auto& [r, region] : regions_) {
      if (r >= region_begin && r <= region_last) {
        keys.push_back(r);
      }
    }
    std::sort(keys.begin(), keys.end());  // fn must still see ascending page order.
    for (uint64_t r : keys) {
      process_region(r);
    }
  } else {
    for (uint64_t r = region_begin; r <= region_last; ++r) {
      process_region(r);
    }
  }
}

DramCache::RangeInvalidation DramCache::InvalidateRange(uint64_t page_begin,
                                                        uint64_t page_end) {
  RangeInvalidation result;
  if (page_begin < page_end) {
    // Stamp the invalidation even over pages the cache does not hold: an in-flight
    // prefetch for this range must observe the wave and discard its (stale) install.
    const uint64_t first = RegionOf(page_begin);
    const uint64_t last = RegionOf(page_end - 1);
    if (last - first >= kWideInvalRegions) {
      wide_inval_version_ = ++version_;  // Whole-VMA shoot-down: one wide epoch.
    } else {
      for (uint64_t r = first; r <= last; ++r) {
        region_inval_versions_.Upsert(r, ++version_);
      }
    }
  }
  ForEachPageInRange<true>(page_begin, page_end, [&](uint64_t page) {
    Eviction ev = RemoveFrame(*index_.Find(page));
    if (ev.dirty) {
      result.flushed.push_back(std::move(ev));
    } else {
      ++result.dropped_clean;
    }
  });
  return result;
}

DramCache::RangeInvalidation DramCache::DowngradeRange(uint64_t page_begin,
                                                       uint64_t page_end) {
  RangeInvalidation result;
  ForEachPageInRange<false>(page_begin, page_end, [&](uint64_t page) {
    BumpRegion(page);  // Writability changes below; per-region so other runs survive.
    Frame& frame = FrameAt(*index_.Find(page));
    if (frame.dirty) {
      // Flush a copy; the page stays cached read-only.
      Eviction flushed{page, true, nullptr};
      if (frame.data != nullptr) {
        flushed.data = MakePayload(frame.data.get());
      }
      result.flushed.push_back(std::move(flushed));
      frame.dirty = false;
    }
    frame.writable = false;
  });
  return result;
}

uint64_t DramCache::CountRange(uint64_t page_begin, uint64_t page_end) const {
  uint64_t count = 0;
  ForEachPageInRange<false>(page_begin, page_end, [&](uint64_t) { ++count; });
  return count;
}

}  // namespace mind
