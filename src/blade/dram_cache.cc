#include "src/blade/dram_cache.h"

#include <cassert>

namespace mind {

DramCache::Frame* DramCache::Lookup(uint64_t page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) {
    return nullptr;
  }
  TouchLru(page, it->second);
  return &it->second;
}

const DramCache::Frame* DramCache::Peek(uint64_t page) const {
  auto it = frames_.find(page);
  return it == frames_.end() ? nullptr : &it->second;
}

void DramCache::TouchLru(uint64_t page, Frame& frame) {
  lru_.erase(frame.lru_it);
  lru_.push_front(page);
  frame.lru_it = lru_.begin();
}

std::optional<DramCache::Eviction> DramCache::Insert(uint64_t page, bool writable,
                                                     std::unique_ptr<PageData> data,
                                                     ProtDomainId pdid) {
  if (auto it = frames_.find(page); it != frames_.end()) {
    // Re-insert: permission upgrade and/or fresh data.
    it->second.writable = it->second.writable || writable;
    it->second.pdid = pdid;
    if (data != nullptr) {
      it->second.data = std::move(data);
    }
    TouchLru(page, it->second);
    return std::nullopt;
  }

  std::optional<Eviction> evicted;
  if (frames_.size() >= capacity_ && capacity_ > 0) {
    assert(!lru_.empty());
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    auto vit = frames_.find(victim);
    assert(vit != frames_.end());
    evicted = Eviction{victim, vit->second.dirty, std::move(vit->second.data)};
    frames_.erase(vit);
  }

  Frame frame;
  frame.writable = writable;
  frame.dirty = false;
  frame.pdid = pdid;
  if (store_data_) {
    frame.data = data != nullptr ? std::move(data) : std::make_unique<PageData>();
  }
  lru_.push_front(page);
  frame.lru_it = lru_.begin();
  frames_.emplace(page, std::move(frame));
  return evicted;
}

void DramCache::MakeWritable(uint64_t page) {
  if (auto it = frames_.find(page); it != frames_.end()) {
    it->second.writable = true;
  }
}

void DramCache::MarkDirty(uint64_t page) {
  if (auto it = frames_.find(page); it != frames_.end()) {
    it->second.dirty = true;
  }
}

DramCache::RangeInvalidation DramCache::InvalidateRange(uint64_t page_begin,
                                                        uint64_t page_end) {
  RangeInvalidation result;
  auto it = frames_.lower_bound(page_begin);
  while (it != frames_.end() && it->first < page_end) {
    if (it->second.dirty) {
      result.flushed.push_back(Eviction{it->first, true, std::move(it->second.data)});
    } else {
      ++result.dropped_clean;
    }
    lru_.erase(it->second.lru_it);
    it = frames_.erase(it);
  }
  return result;
}

DramCache::RangeInvalidation DramCache::DowngradeRange(uint64_t page_begin,
                                                       uint64_t page_end) {
  RangeInvalidation result;
  for (auto it = frames_.lower_bound(page_begin); it != frames_.end() && it->first < page_end;
       ++it) {
    if (it->second.dirty) {
      // Flush a copy; the page stays cached read-only.
      Eviction flushed{it->first, true, nullptr};
      if (it->second.data != nullptr) {
        flushed.data = std::make_unique<PageData>(*it->second.data);
      }
      result.flushed.push_back(std::move(flushed));
      it->second.dirty = false;
    }
    it->second.writable = false;
  }
  return result;
}

uint64_t DramCache::CountRange(uint64_t page_begin, uint64_t page_end) const {
  uint64_t count = 0;
  for (auto it = frames_.lower_bound(page_begin); it != frames_.end() && it->first < page_end;
       ++it) {
    ++count;
  }
  return count;
}

}  // namespace mind
