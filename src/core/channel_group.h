// Shared machinery behind the per-blade ChannelGroup implementations (contract in
// src/core/access_channel.h).
//
// Every in-tree system commits a group the same way: k-way merge the member lanes'
// uncommitted runs in (clock, thread) order — the exact order serial per-op replay
// interleaves same-blade threads — and walk the merged stream once, applying per-op side
// effects and finalizing latencies as the walk goes. Only two steps differ per system:
// how an op's latency is produced (read back from the submitted completions when Submit
// was exact, or re-simulated against live blade state — GAM's library lock — when it
// could only bound them) and what the per-op apply does. GroupMergeCommit factors the
// merge so those two steps are inlined lambdas: no per-op virtual dispatch anywhere in a
// group commit.
#ifndef MIND_SRC_CORE_CHANNEL_GROUP_H_
#define MIND_SRC_CORE_CHANNEL_GROUP_H_

#include <cstddef>
#include <cstdint>

#include "src/blade/dram_cache.h"
#include "src/common/histogram.h"
#include "src/core/access_channel.h"

namespace mind {

// The per-op apply shared by every in-tree commit path — per-thread Channel::Commit and
// per-blade group merges alike: untag the frame-pointer token (bit 0 = write), bump LRU
// recency, set the dirty bit, and classify a first touch of a prefetched page through
// `on_prefetched_touch(page)`. Keeping this in ONE place is what keeps the six commit
// sites bit-identical to each other (the conformance suite's core guarantee).
template <typename OnPrefetchedTouch>
inline void ApplyCommitToken(DramCache& cache, const Completion& completion,
                             OnPrefetchedTouch&& on_prefetched_touch) {
  const uint64_t tagged = completion.token.bits;
  auto* frame = reinterpret_cast<DramCache::Frame*>(tagged & ~uint64_t{1});
  cache.Touch(frame);
  if ((tagged & 1) != 0) {
    frame->dirty = true;
  }
  if (frame->prefetched) [[unlikely]] {  // First touch of a prefetched page: useful.
    frame->prefetched = false;
    on_prefetched_touch(frame->page);
  }
}

// Folds each lane's committed latencies into `hist`: O(1) per uniform lane via RecordN —
// the cross-thread batched accounting MIND's TSO hit runs get — and per-op otherwise
// (non-uniform lanes always carry written completion latencies). The shared tail of every
// CommitMerged.
void RecordLaneLatencies(const GroupLane* lanes, size_t n, Histogram& hist);

// Lane counts at or below this use GroupMergeCommit's branchy linear scan (the whole
// comparison state fits in registers and a blade rarely hosts more threads); larger
// groups pay O(log n) compares per committed op through GroupMergeLoserTree instead of
// O(n). Crossover measured by BM_GroupMerge (bench/microbench_core.cc).
inline constexpr size_t kGroupMergeLinearScanMax = 8;

// k-way merge cursor for GroupMergeCommit at large lane counts: a classic loser tree.
// Internal nodes hold tournament losers, the overall winner sits outside the tree, and
// advancing replays only the winner's leaf-to-root path. Dead lanes (exhausted, or
// frontier at/past the horizon) lose every compare against a live lane, so the winner is
// exactly the linear scan's argmin by (end_clock, thread_index) over live lanes — merge
// order, and therefore replay results, are bit-identical to the linear path.
//
// The caller owns the lanes: commit the winner (advancing its end_clock / committed),
// then Reseat() to restore the tournament for the changed key.
class GroupMergeLoserTree {
 public:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  GroupMergeLoserTree(const GroupLane* lanes, size_t n, SimTime horizon);

  // Lane to commit from next, or kNone once every lane is dead.
  [[nodiscard]] size_t Winner() const { return Dead(winner_) ? kNone : winner_; }

  // Re-seats the tournament after the winner lane's key changed; returns the new Winner().
  size_t Reseat();

 private:
  [[nodiscard]] bool Dead(size_t i) const {
    return i >= n_ || lanes_[i].committed >= lanes_[i].count ||
           lanes_[i].end_clock >= horizon_;
  }
  // Strict merge order: live before dead, then (end_clock, thread_index); thread_index is
  // unique per lane, so the order is total over live lanes.
  [[nodiscard]] bool Before(size_t a, size_t b) const;

  const GroupLane* lanes_;
  size_t n_;
  SimTime horizon_;
  size_t pow2_ = 1;    // Leaf slots: n rounded up to a power of two (pad lanes are dead).
  size_t winner_ = 0;
  size_t loser_[ChannelGroup::kMaxGroupLanes];  // Internal nodes 1..pow2_-1; [0] unused.
};

// The shared merge-commit walk. Merges the lanes in (clock, thread_index) order and
// commits every op whose start clock lies strictly below `horizon`:
//
//   latency_of(lane, op_index) -> SimTime   finalized latency of lane.comps[op_index];
//                                           called with lane.end_clock holding the op's
//                                           start clock, and may rewrite the completion
//                                           (systems finalizing against live blade state
//                                           record the exact value there).
//   apply(lane, op_index)                   per-op side effects (LRU recency, dirty bit,
//                                           prefetched-touch), in merged order.
//
// Lane out-fields (committed / end_clock / last_start / latency_sum) are (re)written from
// scratch; accounting goes to `hist` via RecordLaneLatencies. Returns total committed.
//
// The per-op argmin is a linear scan up to kGroupMergeLinearScanMax lanes and a
// GroupMergeLoserTree above it; both yield the same (end_clock, thread_index) winner, so
// the merge order — and every committed result — is identical either way.
template <typename LatencyFn, typename ApplyFn>
uint64_t GroupMergeCommit(GroupLane* lanes, size_t n, SimTime horizon, SimTime think,
                          Histogram& hist, LatencyFn&& latency_of, ApplyFn&& apply) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    GroupLane& ln = lanes[i];
    ln.committed = 0;
    ln.end_clock = ln.clock;
    ln.last_start = ln.clock;
    ln.latency_sum = 0;
  }
  auto commit_one = [&](GroupLane& best) {
    const size_t idx = best.committed;
    const SimTime start = best.end_clock;
    const SimTime latency = latency_of(best, idx);
    apply(best, idx);
    best.last_start = start;
    best.latency_sum += latency;
    best.end_clock = start + latency + think;
    ++best.committed;
    ++total;
  };
  if (n <= kGroupMergeLinearScanMax) {
    for (;;) {
      GroupLane* best = nullptr;
      for (size_t i = 0; i < n; ++i) {
        GroupLane& ln = lanes[i];
        if (ln.committed >= ln.count || ln.end_clock >= horizon) {
          continue;
        }
        if (best == nullptr || ln.end_clock < best->end_clock ||
            (ln.end_clock == best->end_clock && ln.thread_index < best->thread_index)) {
          best = &ln;
        }
      }
      if (best == nullptr) {
        break;
      }
      commit_one(*best);
    }
  } else {
    GroupMergeLoserTree tree(lanes, n, horizon);
    for (size_t w = tree.Winner(); w != GroupMergeLoserTree::kNone; w = tree.Reseat()) {
      commit_one(lanes[w]);
    }
  }
  RecordLaneLatencies(lanes, n, hist);
  return total;
}

}  // namespace mind

#endif  // MIND_SRC_CORE_CHANNEL_GROUP_H_
