// Shared machinery behind the per-blade ChannelGroup implementations (contract in
// src/core/access_channel.h).
//
// Every in-tree system commits a group the same way: k-way merge the member lanes'
// uncommitted runs in (clock, thread) order — the exact order serial per-op replay
// interleaves same-blade threads — and walk the merged stream once, applying per-op side
// effects and finalizing latencies as the walk goes. Only two steps differ per system:
// how an op's latency is produced (read back from the submitted completions when Submit
// was exact, or re-simulated against live blade state — GAM's library lock — when it
// could only bound them) and what the per-op apply does. GroupMergeCommit factors the
// merge so those two steps are inlined lambdas: no per-op virtual dispatch anywhere in a
// group commit.
#ifndef MIND_SRC_CORE_CHANNEL_GROUP_H_
#define MIND_SRC_CORE_CHANNEL_GROUP_H_

#include <cstddef>
#include <cstdint>

#include "src/blade/dram_cache.h"
#include "src/common/histogram.h"
#include "src/core/access_channel.h"

namespace mind {

// The per-op apply shared by every in-tree commit path — per-thread Channel::Commit and
// per-blade group merges alike: untag the frame-pointer token (bit 0 = write), bump LRU
// recency, set the dirty bit, and classify a first touch of a prefetched page through
// `on_prefetched_touch(page)`. Keeping this in ONE place is what keeps the six commit
// sites bit-identical to each other (the conformance suite's core guarantee).
template <typename OnPrefetchedTouch>
inline void ApplyCommitToken(DramCache& cache, const Completion& completion,
                             OnPrefetchedTouch&& on_prefetched_touch) {
  const uint64_t tagged = completion.token.bits;
  auto* frame = reinterpret_cast<DramCache::Frame*>(tagged & ~uint64_t{1});
  cache.Touch(frame);
  if ((tagged & 1) != 0) {
    frame->dirty = true;
  }
  if (frame->prefetched) [[unlikely]] {  // First touch of a prefetched page: useful.
    frame->prefetched = false;
    on_prefetched_touch(frame->page);
  }
}

// Folds each lane's committed latencies into `hist`: O(1) per uniform lane via RecordN —
// the cross-thread batched accounting MIND's TSO hit runs get — and per-op otherwise
// (non-uniform lanes always carry written completion latencies). The shared tail of every
// CommitMerged.
void RecordLaneLatencies(const GroupLane* lanes, size_t n, Histogram& hist);

// The shared merge-commit walk. Merges the lanes in (clock, thread_index) order and
// commits every op whose start clock lies strictly below `horizon`:
//
//   latency_of(lane, op_index) -> SimTime   finalized latency of lane.comps[op_index];
//                                           called with lane.end_clock holding the op's
//                                           start clock, and may rewrite the completion
//                                           (systems finalizing against live blade state
//                                           record the exact value there).
//   apply(lane, op_index)                   per-op side effects (LRU recency, dirty bit,
//                                           prefetched-touch), in merged order.
//
// Lane out-fields (committed / end_clock / last_start / latency_sum) are (re)written from
// scratch; accounting goes to `hist` via RecordLaneLatencies. Returns total committed.
template <typename LatencyFn, typename ApplyFn>
uint64_t GroupMergeCommit(GroupLane* lanes, size_t n, SimTime horizon, SimTime think,
                          Histogram& hist, LatencyFn&& latency_of, ApplyFn&& apply) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    GroupLane& ln = lanes[i];
    ln.committed = 0;
    ln.end_clock = ln.clock;
    ln.last_start = ln.clock;
    ln.latency_sum = 0;
  }
  for (;;) {
    GroupLane* best = nullptr;
    for (size_t i = 0; i < n; ++i) {
      GroupLane& ln = lanes[i];
      if (ln.committed >= ln.count || ln.end_clock >= horizon) {
        continue;
      }
      if (best == nullptr || ln.end_clock < best->end_clock ||
          (ln.end_clock == best->end_clock && ln.thread_index < best->thread_index)) {
        best = &ln;
      }
    }
    if (best == nullptr) {
      break;
    }
    const size_t idx = best->committed;
    const SimTime start = best->end_clock;
    const SimTime latency = latency_of(*best, idx);
    apply(*best, idx);
    best->last_start = start;
    best->latency_sum += latency;
    best->end_clock = start + latency + think;
    ++best->committed;
    ++total;
  }
  RecordLaneLatencies(lanes, n, hist);
  return total;
}

}  // namespace mind

#endif  // MIND_SRC_CORE_CHANNEL_GROUP_H_
