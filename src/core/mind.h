// Umbrella header for the MIND library.
//
// #include "src/core/mind.h" pulls in the full public API: the Rack (in-network MMU +
// blades), its configuration, access types and statistics. Substrate headers can also be
// included individually.
#ifndef MIND_SRC_CORE_MIND_H_
#define MIND_SRC_CORE_MIND_H_

#include "src/common/status.h"    // IWYU pragma: export
#include "src/common/types.h"     // IWYU pragma: export
#include "src/core/access.h"      // IWYU pragma: export
#include "src/core/config.h"      // IWYU pragma: export
#include "src/core/rack.h"        // IWYU pragma: export
#include "src/core/rack_stats.h"  // IWYU pragma: export

#endif  // MIND_SRC_CORE_MIND_H_
