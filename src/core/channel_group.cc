#include "src/core/channel_group.h"

#include <utility>

namespace mind {

void RecordLaneLatencies(const GroupLane* lanes, size_t n, Histogram& hist) {
  for (size_t i = 0; i < n; ++i) {
    const GroupLane& ln = lanes[i];
    if (ln.committed == 0) {
      continue;
    }
    if (ln.uniform_latency != 0) {
      // Uniform run: every committed op of the lane had exactly this latency (the
      // completions may legitimately be unwritten — see the Submit contract).
      hist.RecordN(ln.uniform_latency, ln.committed);
    } else {
      for (size_t j = 0; j < ln.committed; ++j) {
        hist.Record(ln.comps[j].latency);
      }
    }
  }
}

bool GroupMergeLoserTree::Before(size_t a, size_t b) const {
  const bool dead_a = Dead(a);
  const bool dead_b = Dead(b);
  if (dead_a != dead_b) {
    return dead_b;  // A live lane precedes any dead one.
  }
  if (dead_a) {
    return a < b;  // Both dead: any stable order works, they are never committed.
  }
  const GroupLane& la = lanes_[a];
  const GroupLane& lb = lanes_[b];
  return la.end_clock < lb.end_clock ||
         (la.end_clock == lb.end_clock && la.thread_index < lb.thread_index);
}

GroupMergeLoserTree::GroupMergeLoserTree(const GroupLane* lanes, size_t n, SimTime horizon)
    : lanes_(lanes), n_(n), horizon_(horizon) {
  while (pow2_ < n_) {
    pow2_ <<= 1;
  }
  // Bottom-up tournament: winner_of[j] is the winner of the subtree under internal node
  // j, the loser stays at j. Scratch only — the steady state keeps losers plus one
  // winner, which is what makes Reseat a single leaf-to-root replay.
  size_t winner_of[2 * ChannelGroup::kMaxGroupLanes];
  for (size_t i = 0; i < pow2_; ++i) {
    winner_of[pow2_ + i] = i;
  }
  for (size_t j = pow2_ - 1; j >= 1; --j) {
    const size_t a = winner_of[2 * j];
    const size_t b = winner_of[2 * j + 1];
    const bool a_first = Before(a, b);
    winner_of[j] = a_first ? a : b;
    loser_[j] = a_first ? b : a;
  }
  winner_ = winner_of[1];
}

size_t GroupMergeLoserTree::Reseat() {
  size_t cur = winner_;
  for (size_t j = (pow2_ + cur) >> 1; j >= 1; j >>= 1) {
    if (Before(loser_[j], cur)) {
      std::swap(cur, loser_[j]);
    }
  }
  winner_ = cur;
  return Winner();
}

}  // namespace mind
