#include "src/core/channel_group.h"

namespace mind {

void RecordLaneLatencies(const GroupLane* lanes, size_t n, Histogram& hist) {
  for (size_t i = 0; i < n; ++i) {
    const GroupLane& ln = lanes[i];
    if (ln.committed == 0) {
      continue;
    }
    if (ln.uniform_latency != 0) {
      // Uniform run: every committed op of the lane had exactly this latency (the
      // completions may legitimately be unwritten — see the Submit contract).
      hist.RecordN(ln.uniform_latency, ln.committed);
    } else {
      for (size_t j = 0; j < ln.committed; ++j) {
        hist.Record(ln.comps[j].latency);
      }
    }
  }
}

}  // namespace mind
