// Rack-level configuration for MIND.
//
// Defaults mirror the paper's evaluation setup (§6.3, §7): 8 compute blades with 512 MB of
// local DRAM cache each, a ToR programmable switch with ~30k directory SRAM slots and ~45k
// match-action rules, MSI coherence with bounded splitting (16 KB initial regions, 100 ms
// epochs), and TSO consistency from the page-fault-driven implementation.
#ifndef MIND_SRC_CORE_CONFIG_H_
#define MIND_SRC_CORE_CONFIG_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/controlplane/allocator.h"
#include "src/controlplane/bounded_splitting.h"
#include "src/fault/fault_plane.h"
#include "src/net/queue_model.h"
#include "src/prefetch/prefetch.h"
#include "src/sim/latency_model.h"

namespace mind {

struct RackConfig {
  int num_compute_blades = 8;
  int num_memory_blades = 8;
  uint64_t memory_blade_capacity = 8ull * 1024 * 1024 * 1024;  // 8 GB per blade.
  uint64_t compute_cache_bytes = 512ull * 1024 * 1024;         // 512 MB local DRAM (§7).

  // Switch ASIC resource budgets (§7.2: 30k directory entries, 45k match-action rules).
  uint32_t directory_slots = 30000;
  uint64_t tcam_rules = 45000;

  // Store real page bytes (examples/correctness tests) or metadata only (figure benches).
  bool store_data = false;

  ConsistencyModel consistency = ConsistencyModel::kTso;

  // MSI (the paper's protocol) or the MESI extension it sketches in §8: cold reads take E
  // with pages installed writable, so private read-then-write patterns skip the S->M
  // upgrade round trip.
  CoherenceProtocol protocol = CoherenceProtocol::kMsi;

  // Invalidation delivery: switch-native multicast with egress pruning (§4.3.2) vs the
  // sequential-unicast ablation.
  bool use_multicast = true;

  // Ablation of the §4.3.1 decoupling: when true, a miss fetches the *entire* directory
  // region (the coupled "cache block = directory block" design the paper argues against),
  // paying one page transfer per page in the region instead of one.
  bool fetch_whole_region = false;

  LatencyModel latency;
  // Fabric queueing discipline (src/net/queue_model.h). The default — kFifo ports,
  // pass-through switch stages — is bit-identical to the pre-queue-model fabric.
  FabricConfig fabric;
  BoundedSplittingConfig splitting;
  AllocatorConfig alloc;
  // §4.4 failure handling: loss model, stall windows, blade death, scheduled drains
  // (src/fault/fault_plane.h). The default — loss-free, nothing scheduled — leaves every
  // timing and counter bit-identical to a fault-free build.
  FaultPlaneConfig fault;
  // Pattern-aware swap-path prefetching on the remote-fault path (default off; see
  // src/prefetch/prefetch.h). Prefetched pages install Shared through the directory
  // state machine and are discarded when an invalidation wave outraces their arrival.
  PrefetchConfig prefetch;

  [[nodiscard]] uint64_t cache_frames() const { return compute_cache_bytes >> kPageShift; }

  // Convenience: the MIND-PSO+ configuration of §7.1 — PSO plus effectively infinite
  // directory capacity.
  static RackConfig PsoPlus() {
    RackConfig c;
    c.consistency = ConsistencyModel::kPso;
    c.directory_slots = 10'000'000;
    return c;
  }
};

}  // namespace mind

#endif  // MIND_SRC_CORE_CONFIG_H_
