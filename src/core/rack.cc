#include "src/core/rack.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "src/core/channel_group.h"

namespace mind {

Rack::Rack(RackConfig config)
    : config_(config),
      tcam_capacity_(config.tcam_rules),
      translator_(&tcam_capacity_),
      protection_(&tcam_capacity_),
      directory_(config.directory_slots),
      stt_(config.protocol),
      splitting_(&directory_, config.splitting),
      controller_(&translator_, &protection_, &splitting_, config.num_compute_blades,
                  config.alloc),
      fabric_(config.num_compute_blades, config.num_memory_blades, config.latency,
              config.fabric),
      lat_(fabric_.latency()),
      fault_plane_(config.fault) {
  compute_blades_.reserve(static_cast<size_t>(config.num_compute_blades));
  for (int i = 0; i < config.num_compute_blades; ++i) {
    compute_blades_.push_back(std::make_unique<ComputeBlade>(
        static_cast<ComputeBladeId>(i), config.cache_frames(), config.store_data,
        config.latency));
  }
  blade_prefetch_.resize(static_cast<size_t>(config.num_compute_blades));
  memory_blades_.reserve(static_cast<size_t>(config.num_memory_blades));
  for (int i = 0; i < config.num_memory_blades; ++i) {
    memory_blades_.push_back(std::make_unique<MemoryBlade>(static_cast<MemoryBladeId>(i),
                                                           config.memory_blade_capacity,
                                                           config.store_data));
    const Status s = controller_.MemoryBladeOnline(static_cast<MemoryBladeId>(i),
                                                   config.memory_blade_capacity);
    assert(s.ok());
    (void)s;
  }
}

// ---------------------------------------------------------------------------
// Data-path helpers.
// ---------------------------------------------------------------------------

bool Rack::TranslatePage(VirtAddr va, Translation* out) {
  const uint64_t page = PageNumber(va);
  TranslationSlot& slot = translation_cache_[page & (kPipelineSlots - 1)];
  const uint64_t version = translator_.version();
  if (slot.page == page && slot.version == version) {
    *out = slot.tr;
    return true;
  }
  auto tr = translator_.Translate(PageBase(va));
  if (!tr.ok()) {
    return false;  // Negative results are not memoized.
  }
  slot.page = page;
  slot.version = version;
  slot.tr = *tr;
  *out = *tr;
  return true;
}

SimTime Rack::FetchPageFromMemory(VirtAddr va, ComputeBladeId requester, SimTime start,
                                  const PageData** bytes, SimTime* fabric_wait) {
  Translation tr;
  const bool translated = TranslatePage(va, &tr);
  assert(translated && "translation must exist for an allocated vma");
  (void)translated;
  // Switch egress -> memory blade NIC (header-rewritten one-sided RDMA read, §6.3).
  auto to_mem = fabric_.Route(Endpoint::Switch(), Endpoint::Memory(tr.blade),
                              MessageKind::kRdmaReadRequest, start);
  const SimTime t = to_mem.arrival + lat_.memory_blade_service;
  const PageData* payload = memory_blades_[tr.blade]->ReadPage(PageNumber(tr.phys_addr));
  if (bytes != nullptr) {
    *bytes = payload;
  }
  // Memory blade -> switch -> requesting compute blade (page payload).
  auto to_blade = fabric_.Route(Endpoint::Memory(tr.blade), Endpoint::Compute(requester),
                                MessageKind::kRdmaReadResponse, t);
  if (fabric_wait != nullptr) {
    *fabric_wait += to_mem.total_wait() + to_blade.total_wait();
  }
  return to_blade.arrival;
}

SimTime Rack::WriteBackPage(ComputeBladeId from, uint64_t page, const PageData* data,
                            SimTime start) {
  Translation tr;
  if (!TranslatePage(PageToAddr(page), &tr)) {
    return start;  // vma was unmapped concurrently; drop the write-back.
  }
  auto hop = fabric_.Route(Endpoint::Compute(from), Endpoint::Memory(tr.blade),
                           MessageKind::kRdmaWriteRequest, start);
  const SimTime t = hop.arrival + lat_.memory_blade_service;
  memory_blades_[tr.blade]->WritePage(PageNumber(tr.phys_addr), data);
  return t;
}

void Rack::InsertIntoCache(ComputeBladeId blade_id, uint64_t page, bool writable,
                           const PageData* bytes, SimTime now, ProtDomainId pdid,
                           bool prefetched) {
  auto& cache = compute_blades_[blade_id]->cache();
  // Payload storage comes from the blade's slab arena inside Insert (copy of `bytes`, or
  // a zero-filled recycled slot) — no per-fault heap allocation. Speculative installs
  // enter at the blade's adaptive cold LRU depth (prefetch-aware eviction priority).
  auto evicted =
      prefetched ? cache.InsertPrefetched(page, writable, bytes, pdid,
                                          blade_prefetch_[blade_id].cold_insert_depth())
                 : cache.Insert(page, writable, bytes, pdid);
  if (evicted.has_value()) {
    ++cache_epoch_;  // A frame left a cache; memoized frame pointers may now dangle.
    if (config_.prefetch.enabled()) {
      blade_prefetch_[blade_id].OnPageEvicted(evicted->page);  // Evicted-unused feedback.
    }
  }
  if (evicted.has_value() && evicted->dirty) {
    // Write-back on eviction keeps memory the source of truth for uncached pages — the
    // invariant that lets M-state owner faults fetch from memory in one RTT.
    ++stats_.evict_writebacks;
    WriteBackPage(blade_id, evicted->page, evicted->data.get(), now);
  }
}

Rack::InvalidationWave Rack::InvalidateBlades(SharerMask targets, const DirectoryEntry& entry,
                                              uint64_t requested_page,
                                              ComputeBladeId requester, SimTime t) {
  InvalidationWave wave;
  if (targets == 0) {
    return wave;
  }
  ++cache_epoch_;  // Invalidation wave: every pipeline-cache slot must revalidate.
  const auto deliveries = config_.use_multicast ? fabric_.MulticastInvalidation(targets, t)
                                                : fabric_.UnicastInvalidations(targets, t);
  stats_.invalidations_sent += deliveries.size();
  if (trace_ != nullptr) [[unlikely]] {
    // Wave issue: multicast puts every copy on the wire at once, unicast staggers them —
    // the span between first and last delivery makes the difference visible in a trace.
    SimTime first = deliveries.empty() ? t : deliveries.front().delivery.arrival;
    SimTime last = first;
    for (const auto& d : deliveries) {
      first = std::min(first, d.delivery.arrival);
      last = std::max(last, d.delivery.arrival);
    }
    TraceEvent ev;
    ev.kind = TraceEventKind::kWaveIssue;
    ev.clock = t;
    ev.blade = requester != kInvalidComputeBlade ? requester : 0;
    ev.a = targets;
    ev.b = deliveries.size();
    ev.c = config_.use_multicast ? 1 : 0;
    ev.d = last - first;
    trace_->Emit(ev);
  }
  for (const auto& d : deliveries) {
    ComputeBlade& sharer = *compute_blades_[d.blade];
    SimTime arrival = d.delivery.arrival;
    if (fault_plane_.HasStalls()) [[unlikely]] {
      // Stalled blade: the delivery sits in the NIC queue for the window's delay, so its
      // ACK — and the whole wave — lands late at the requester. Pure function of time.
      arrival += fault_plane_.StallDelay(d.blade, arrival);
    }
    auto outcome = sharer.HandleInvalidation(entry.base, entry.end(), arrival);

    SimTime flush_land = outcome.done;
    for (auto& ev : outcome.flushed) {
      flush_land = std::max(flush_land,
                            WriteBackPage(d.blade, ev.page, ev.data.get(), outcome.done));
      if (ev.page != requested_page) {
        ++wave.false_invalidations;
      }
    }
    wave.flushed += outcome.flushed.size();
    wave.clean_drops += outcome.dropped_clean;
    wave.flush_landed = std::max(wave.flush_landed, flush_land);

    // ACK: sharer -> switch -> requesting blade (§4.4: the requester collects ACKs).
    // Forced/capacity invalidations have no requester; their ACK terminates in the
    // switch pipeline (a half-route).
    const Endpoint ack_dst = requester != kInvalidComputeBlade
                                 ? Endpoint::Compute(requester)
                                 : Endpoint::Switch();
    auto ack = fabric_.Route(Endpoint::Compute(d.blade), ack_dst,
                             MessageKind::kInvalidationAck, outcome.done);
    wave.max_ack_at_requester = std::max(wave.max_ack_at_requester, ack.arrival);
    wave.max_queue_wait = std::max(wave.max_queue_wait, outcome.queue_wait);
    wave.max_tlb = std::max(wave.max_tlb, outcome.tlb_time);
  }
  stats_.pages_flushed += wave.flushed;
  stats_.false_invalidations += wave.false_invalidations;
  stats_.clean_drops += wave.clean_drops;
  if (trace_ != nullptr) [[unlikely]] {
    TraceEvent ev;
    ev.kind = TraceEventKind::kInvalidationWave;
    ev.clock = t;
    ev.dur = wave.max_ack_at_requester > t ? wave.max_ack_at_requester - t : 0;
    ev.blade = requester != kInvalidComputeBlade ? requester : 0;
    ev.a = entry.base;
    ev.b = entry.end();
    ev.c = TracePack32(deliveries.size(), wave.flushed);
    ev.d = TracePack32(wave.false_invalidations, wave.clean_drops);
    trace_->Emit(ev);
  }
  return wave;
}

DirectoryEntry* Rack::EnsureDirectoryEntry(VirtAddr va, SimTime& t, Status* error) {
  if (auto* existing = directory_.Lookup(va); existing != nullptr) {
    return existing;
  }
  const VmaRecord* vma = controller_.FindVma(va);
  if (vma == nullptr) {
    *error = Status(ErrorCode::kFault, "address not mapped");
    return nullptr;
  }
  // New entries start at the configured initial region size (16 KB default), clipped to the
  // vma and shrunk until the aligned region lies fully inside it.
  uint64_t region_size = std::max<uint64_t>(
      kPageSize, std::min<uint64_t>(config_.splitting.initial_region_size,
                                    RoundDownPowerOfTwo(vma->size())));
  VirtAddr base = AlignDown(va, region_size);
  while (region_size > kPageSize &&
         (base < vma->base() || base + region_size > vma->end())) {
    region_size >>= 1;
    base = AlignDown(va, region_size);
  }

  auto created = directory_.Create(base, Log2Floor(region_size));
  int eviction_rounds = 0;
  const uint32_t max_region_log2 = Log2Floor(config_.splitting.base_region_size);
  while (!created.ok()) {
    if (created.status().code() != ErrorCode::kResourceExhausted || eviction_rounds >= 64) {
      *error = created.status();
      return nullptr;
    }
    ++eviction_rounds;
    auto victim_base = directory_.FindEvictionVictim(t);
    if (!victim_base.has_value()) {
      *error = Status(ErrorCode::kResourceExhausted, "directory full and all entries busy");
      return nullptr;
    }
    // Capacity pressure, cheap path first: fold the stale victim into its buddy — a pure
    // control-plane action that frees a slot without touching any blade (coherence state
    // merges conservatively).
    if (directory_.MergeWithBuddy(*victim_base, max_region_log2).ok()) {
      created = directory_.Create(base, Log2Floor(region_size));
      continue;
    }
    // Otherwise force-invalidate the victim region. Every dirty page it flushes is by
    // definition falsely invalidated (nothing in it was requested).
    DirectoryEntry* victim = directory_.Lookup(*victim_base);
    assert(victim != nullptr);
    const SharerMask holders =
        victim->OwnerHeld() ? BladeBit(victim->owner) : victim->sharers;
    auto wave = InvalidateBlades(holders, *victim, UINT64_MAX, kInvalidComputeBlade, t);
    ++stats_.directory_capacity_evictions;
    t = std::max(t, wave.max_ack_at_requester);
    const Status removed = directory_.Remove(*victim_base);
    assert(removed.ok());
    (void)removed;
    created = directory_.Create(base, Log2Floor(region_size));
  }
  return *created;
}

SimTime Rack::PsoReadBarrier(ThreadId tid, VirtAddr va, SimTime now) {
  auto it = pending_writes_.find(tid);
  if (it == pending_writes_.end()) {
    return now;
  }
  auto& pending = it->second;
  SimTime barrier = now;
  for (const auto& w : pending) {
    if (va >= w.begin && va < w.end) {
      barrier = std::max(barrier, w.completion);
    }
  }
  // Prune completed stores.
  std::erase_if(pending, [barrier](const PendingWrite& w) { return w.completion <= barrier; });
  if (pending.empty()) {
    pending_writes_.erase(it);
  }
  return barrier;
}

SimTime Rack::PsoPeekBarrier(ThreadId tid, VirtAddr va, SimTime now) const {
  const auto it = pending_writes_.find(tid);
  if (it == pending_writes_.end()) {
    return now;
  }
  SimTime barrier = now;
  for (const auto& w : it->second) {
    if (va >= w.begin && va < w.end) {
      barrier = std::max(barrier, w.completion);
    }
  }
  return barrier;
}

void Rack::PsoRecordWrite(ThreadId tid, VirtAddr va, SimTime completion) {
  // Store-buffer granularity is the page: a later read of the *same page* must drain the
  // pending store, but reads elsewhere proceed — that's what makes PSO outrun TSO.
  const VirtAddr begin = PageBase(va);
  auto& pending = pending_writes_[tid];
  for (auto& w : pending) {
    if (w.begin == begin) {
      w.completion = std::max(w.completion, completion);
      return;
    }
  }
  pending.push_back(PendingWrite{begin, begin + kPageSize, completion});
}

// ---------------------------------------------------------------------------
// The MIND access path (Fig. 2 right, Fig. 4).
// ---------------------------------------------------------------------------

void Rack::PopulatePipeline(const AccessRequest& req, uint64_t page, DramCache::Frame* frame,
                            DirectoryEntry* dir_entry) {
  PipelineSlot& slot = pipeline_[req.tid & (kPipelineSlots - 1)];
  slot.generation = PipelineGeneration();
  slot.page = page;
  slot.tid = req.tid;
  slot.blade = req.blade;
  slot.pdid = req.pdid;
  slot.frame = frame;
  slot.dir_entry = dir_entry;
  if (frame != nullptr && frame->pdid == req.pdid) {
    // Same-domain frame: the seed hit path trusts the frame's own permission bits, so the
    // memoized verdict can too. Writes stay gated on frame->writable at use time.
    slot.read_ok = true;
    slot.write_ok = true;
  } else {
    // Cross-domain (or no frame): only the access type that was actually checked against
    // the protection table is known-allowed; the other stays conservative and will take
    // the full path once, repopulating the slot.
    slot.read_ok = req.type == AccessType::kRead;
    slot.write_ok = req.type == AccessType::kWrite;
  }
}

bool Rack::TryLocalHit(const AccessRequest& req, SimTime now, AccessResult* res,
                       DramCache::Frame** frame_out, bool* pslot_valid_out) {
  const uint64_t page = PageNumber(req.va);
  ComputeBlade& blade = *compute_blades_[req.blade];
  *frame_out = nullptr;
  *pslot_valid_out = false;

  // 0. Fused pipeline cache: one validity check replays the whole translation ->
  // protection -> PTE traversal for the thread's last page, modeling the ASIC's
  // single-pass match-action pipeline. Valid only while no structure the memo depends on
  // has mutated (see PipelineGeneration); anything short of a clean same-page local hit
  // falls through to the full path below.
  PipelineSlot& pslot = pipeline_[req.tid & (kPipelineSlots - 1)];
  const bool pslot_valid = pslot.generation == PipelineGeneration() && pslot.page == page &&
                           pslot.tid == req.tid && pslot.blade == req.blade &&
                           pslot.pdid == req.pdid;
  if (pslot_valid && pslot.frame != nullptr) {
    const bool allowed = req.type == AccessType::kRead
                             ? pslot.read_ok
                             : (pslot.write_ok && pslot.frame->writable);
    if (allowed) {
      // No prefetched-touch check here: a memoized frame can never carry the flag. The
      // slot is only populated after a demand use (which clears it), the flag is only
      // ever set on freshly inserted frames, and arena reuse of a freed frame implies an
      // eviction, which bumps cache_epoch_ and invalidates the slot.
      blade.cache().Touch(pslot.frame);  // Keep LRU order exactly as the slow path would.
      if (req.type == AccessType::kWrite) {
        pslot.frame->dirty = true;
      }
      res->local_hit = true;
      res->latency = (now - req.now) + lat_.local_cache_hit;
      res->completion = req.now + res->latency;
      return true;
    }
  }

  // 1. Local DRAM cache, through the hardware MMU: the fast path. A hit from a different
  // protection domain than the one that faulted the page in re-validates against the
  // protection table (domain-tagged PTEs), so cached pages never leak across domains.
  DramCache::Frame* frame = blade.cache().Lookup(page);
  *frame_out = frame;
  *pslot_valid_out = pslot_valid;
  const bool domain_ok =
      frame != nullptr &&
      (frame->pdid == req.pdid || protection_.Allows(req.pdid, req.va, req.type));
  const bool hit = frame != nullptr && domain_ok &&
                   (req.type == AccessType::kRead || frame->writable);
  if (!hit) {
    return false;
  }
  if (req.type == AccessType::kWrite) {
    frame->dirty = true;
  }
  if (frame->prefetched) [[unlikely]] {  // First touch: the prefetch was useful.
    frame->prefetched = false;
    blade_prefetch_[req.blade].OnPrefetchedTouch(page, req.pdid);
  }
  PopulatePipeline(req, page, frame, pslot_valid ? pslot.dir_entry : nullptr);
  res->local_hit = true;
  res->latency = (now - req.now) + lat_.local_cache_hit;
  res->completion = req.now + res->latency;
  return true;
}

// Owner-parallel drain support (contract notes in rack.h). Eligibility is the hit
// condition of Access step 1 re-stated over the read-only cache probe, further restricted
// to configurations where the whole hit is blade/thread-confined: TSO (the PSO read
// barrier mutates the shared pending-writes map), prefetching off (installs and window
// re-arms fire at arbitrary serialized points), and no pending prefetched-touch (its
// bookkeeping belongs to the serialized path that set the flag).
MIND_PARALLEL_PHASE bool Rack::OwnerHitEligible(const AccessRequest& req) const {
  if (config_.consistency != ConsistencyModel::kTso || config_.prefetch.enabled()) {
    return false;
  }
  const DramCache::Frame* frame = compute_blades_[req.blade]->cache().Peek(PageNumber(req.va));
  if (frame == nullptr || frame->prefetched) {
    return false;
  }
  if (frame->pdid != req.pdid && !protection_.Allows(req.pdid, req.va, req.type)) {
    return false;
  }
  return req.type == AccessType::kRead || frame->writable;
}

MIND_PARALLEL_PHASE AccessResult Rack::AccessOwnedHit(const AccessRequest& req,
                                                      OwnerHitScratch* scratch) {
  ++scratch->total_accesses;
  // Lookup (not the pipeline memo) so LRU recency moves exactly as the serial hit path
  // would; the memo and PopulatePipeline are skipped per the channel contract — pure
  // memoization, outcome-invariant. Epoch/drain pumping is skipped too: the engine only
  // schedules owner hits strictly below every time-driven boundary, where the pumps are
  // no-ops.
  DramCache::Frame* frame = compute_blades_[req.blade]->cache().Lookup(PageNumber(req.va));
  assert(frame != nullptr);  // Guaranteed by OwnerHitEligible under the phase discipline.
  if (req.type == AccessType::kWrite) {
    frame->dirty = true;
  }
  ++scratch->local_hits;
  AccessResult res;
  res.local_hit = true;
  res.latency = lat_.local_cache_hit;  // TSO: no barrier displacement by construction.
  res.completion = req.now + res.latency;
  return res;
}

// AccessChannel over the blade-local hit path (see the contract notes in rack.h). Submit
// is a specialized loop over the hit conditions of Access step 1 (present frame, domain
// re-validation, write permission): one virtual call classifies the whole run, with the
// per-op request plumbing and consistency-model dispatch hoisted out. Commit tokens are
// tagged frame pointers (bit 0 = write), so the commit pass needs neither the op array nor
// the latency array. Under TSO every hit in the run costs exactly local_cache_hit,
// reported once through uniform_latency; only PSO barrier displacement (a pending
// same-page store) forces per-op accounting. Latencies are always exact at Submit — a hit
// depends on nothing another same-blade thread commits — so runs are latency_final.
class Rack::Channel final : public AccessChannel {
 public:
  Channel(Rack* rack, ThreadId tid, ComputeBladeId blade, ProtDomainId pdid)
      : rack_(rack), tid_(tid), blade_(blade), pdid_(pdid) {}

  MIND_PARALLEL_PHASE SubmitResult Submit(const LocalOp* ops, size_t n, SimTime clock,
                                          SimTime think, Completion* completions) override {
    DramCache& cache = rack_->compute_blades_[blade_]->cache();
    const SimTime hit_latency = rack_->lat_.local_cache_hit;
    const bool pso = rack_->config_.consistency == ConsistencyModel::kPso;
    stamps_.Clear();
    protection_version_ = rack_->protection_.version();
    // uniform_latency == 0 is reserved for "consult per-op latencies", so a (degenerate)
    // zero-cost hit configuration must report per-op latencies from the start.
    bool uniform = hit_latency != 0;
    SubmitResult out;
    size_t i = 0;
    for (; i < n; ++i) {
      const uint64_t page = PageNumber(ops[i].va);
      DramCache::Frame* frame = cache.Find(page);
      if (frame == nullptr) {
        break;
      }
      const bool is_write = ops[i].type == AccessType::kWrite;
      if (frame->pdid != pdid_ &&
          !rack_->protection_.Allows(pdid_, ops[i].va, ops[i].type)) {
        break;
      }
      if (is_write && !frame->writable) {
        break;
      }
      stamps_.Add(cache, DramCache::RegionOf(page));
      SimTime latency = hit_latency;
      if (pso && !is_write) {
        const SimTime barrier = rack_->PsoPeekBarrier(tid_, ops[i].va, clock);
        latency = (barrier - clock) + hit_latency;
      }
      if (latency != hit_latency && uniform) {
        // First divergence: backfill the uniform prefix and switch to per-op latencies
        // (a uniform run legitimately leaves the latency fields unwritten — see the
        // Submit contract).
        for (size_t j = 0; j < i; ++j) {
          completions[j].latency = hit_latency;
        }
        uniform = false;
      }
      if (!uniform) {
        completions[i].latency = latency;
      }
      completions[i].token.bits =
          reinterpret_cast<uintptr_t>(frame) | static_cast<uintptr_t>(is_write);
      clock += latency + think;
    }
    out.accepted = i;
    out.end_clock = clock;
    out.uniform_latency = uniform ? hit_latency : 0;
    return out;
  }

  MIND_PARALLEL_PHASE [[nodiscard]] bool RunValid() const override {
    return rack_->protection_.version() == protection_version_ &&
           stamps_.Valid(rack_->compute_blades_[blade_]->cache());
  }

  MIND_PARALLEL_PHASE void Commit(Completion* completions, size_t n,
                                  SimTime /*clock*/) override {
    DramCache& cache = rack_->compute_blades_[blade_]->cache();
    BladePrefetchState& bp = rack_->blade_prefetch_[blade_];
    for (size_t i = 0; i < n; ++i) {
      ApplyCommitToken(cache, completions[i],
                       [&](uint64_t page) { bp.OnPrefetchedTouch(page, pdid_); });
    }
  }

 private:
  friend class Rack::Group;

  Rack* rack_;
  ThreadId tid_;
  ComputeBladeId blade_;
  ProtDomainId pdid_;
  DramCache::RegionStamps stamps_;   // Dependency footprint of the last submitted run.
  uint64_t protection_version_ = 0;  // Blade-global stamp (permissions/domain grants).
};

std::unique_ptr<AccessChannel> Rack::OpenChannel(ThreadId tid, ComputeBladeId blade,
                                                 ProtDomainId pdid) {
  return std::make_unique<Channel>(this, tid, blade, pdid);
}

// Per-blade ChannelGroup over the MIND hit path (contract in access_channel.h, merge
// machinery in channel_group.h). Hit latencies are always exact at Submit, so the group's
// whole job is the single-pass blade view: ValidMask compares the protection-table
// version once per blade (instead of once per member) before the members' region stamps,
// and CommitMerged interleaves the members' runs in (clock, thread) order — the exact
// LRU/dirty order serial replay produces — with uniform TSO runs accounted across all
// member threads through Histogram::RecordN.
class Rack::Group final : public ChannelGroup {
 public:
  Group(Rack* rack, ComputeBladeId blade) : rack_(rack), blade_(blade) {}

  size_t Add(AccessChannel* channel) override {
    members_.push_back(static_cast<Channel*>(channel));
    return members_.size() - 1;
  }

  MIND_PARALLEL_PHASE [[nodiscard]] uint64_t ValidMask() const override {
    const DramCache& cache = rack_->compute_blades_[blade_]->cache();
    const uint64_t protection_version = rack_->protection_.version();
    uint64_t mask = 0;
    for (size_t m = 0; m < members_.size(); ++m) {
      if (members_[m]->protection_version_ == protection_version &&
          members_[m]->stamps_.Valid(cache)) {
        mask |= uint64_t{1} << m;
      }
    }
    return mask;
  }

  MIND_PARALLEL_PHASE uint64_t CommitMerged(GroupLane* lanes, size_t n, SimTime horizon,
                                            SimTime think, Histogram& hist) override {
    DramCache& cache = rack_->compute_blades_[blade_]->cache();
    BladePrefetchState& bp = rack_->blade_prefetch_[blade_];
    return GroupMergeCommit(
        lanes, n, horizon, think, hist,
        [](GroupLane& ln, size_t idx) {
          // Exact at Submit: the uniform value, or the per-op latency PSO displacement
          // forced Submit to record.
          return ln.uniform_latency != 0 ? ln.uniform_latency : ln.comps[idx].latency;
        },
        [&](GroupLane& ln, size_t idx) {
          ApplyCommitToken(cache, ln.comps[idx], [&](uint64_t page) {
            bp.OnPrefetchedTouch(page, members_[ln.member]->pdid_);
          });
        });
  }

 private:
  Rack* rack_;
  ComputeBladeId blade_;
  std::vector<Channel*> members_;
};

std::unique_ptr<ChannelGroup> Rack::OpenChannelGroup(ComputeBladeId blade) {
  return std::make_unique<Group>(this, blade);
}

MIND_SERIALIZED_PATH AccessResult Rack::Access(const AccessRequest& req) {
  splitting_.MaybeRunEpoch(req.now);
  MaybeRunScheduledDrains(req.now);
  ++stats_.total_accesses;

  AccessResult res;
  const uint64_t page = PageNumber(req.va);
  ComputeBlade& blade = *compute_blades_[req.blade];

  SimTime now = req.now;
  if (config_.consistency == ConsistencyModel::kPso && req.type == AccessType::kRead) {
    now = PsoReadBarrier(req.tid, req.va, now);
  }

  // Not a clean hit past here: TryLocalHit hands back the frame it probed (still present
  // for S->M upgrades and cross-domain denials) and the pipeline memo's validity, so the
  // fault path re-resolves neither.
  DramCache::Frame* frame = nullptr;
  bool pslot_valid = false;
  if (TryLocalHit(req, now, &res, &frame, &pslot_valid)) {
    ++stats_.local_hits;
    return res;
  }

  // Prefetch hooks live entirely on the miss path (out of line so the hit path above
  // stays as tight as pre-prefetch): installs, late joins and new issues all trigger at
  // demand faults — the stream a swap prefetcher actually observes.
  if (config_.prefetch.enabled()) [[unlikely]] {
    if (ServiceViaPrefetch(req, now, page, &frame, &pslot_valid, &res)) {
      return res;
    }
  }
  PipelineSlot& pslot = pipeline_[req.tid & (kPipelineSlots - 1)];

  // 2. Page fault: issue a one-sided RDMA request on the *virtual* address to the switch
  // (a half-route: the request terminates in the pipeline for translation + protection).
  ++stats_.remote_accesses;
  SimTime t = now + lat_.page_fault_entry;
  // Requester-path port/stage queueing, accumulated hop by hop into the Fig. 7 breakdown.
  SimTime fabric_wait = 0;
  auto to_switch = fabric_.Route(Endpoint::Compute(req.blade), Endpoint::Switch(),
                                 MessageKind::kRdmaReadRequest, t);
  const SimTime issued_at = t + lat_.rdma_message_overhead;  // Thread-side post completes.
  t = to_switch.arrival;  // Ingress parse + translation + protection already charged.
  fabric_wait += to_switch.total_wait();

  // 3. Protection check in the match-action pipeline (§4.2). A missing <PDID, vma> entry
  // rejects the request; the blade maps that to EFAULT when no vma covers the address and
  // EACCES when the vma exists but the permission class mismatches.
  if (!protection_.Allows(req.pdid, req.va, req.type)) {
    ++stats_.permission_denials;
    auto reject = fabric_.Route(Endpoint::Switch(), Endpoint::Compute(req.blade),
                                MessageKind::kRdmaWriteAck, t);
    res.status = controller_.FindVma(req.va) == nullptr
                     ? Status(ErrorCode::kFault, "address not mapped")
                     : Status(ErrorCode::kPermissionDenied);
    res.latency = reject.arrival - req.now;
    res.completion = reject.arrival;
    return res;
  }

  // 4. Directory lookup (first MAU); lazily create the region entry if absent. A still-
  // valid pipeline slot short-circuits the lookup: the memoized entry cannot have been
  // removed, split or merged without bumping the generation.
  DirectoryEntry* entry = pslot_valid ? pslot.dir_entry : nullptr;
  if (entry == nullptr) {
    Status dir_error;
    const uint64_t evictions_before = stats_.directory_capacity_evictions;
    entry = EnsureDirectoryEntry(req.va, t, &dir_error);
    if (entry == nullptr) {
      res.status = dir_error;
      res.latency = t - req.now;
      res.completion = t;
      return res;
    }
    if (stats_.directory_capacity_evictions != evictions_before) [[unlikely]] {
      // Capacity pressure force-invalidated an unrelated victim region at whatever
      // blades held it. The victim's span is unrelated to this access, so publish an
      // unbounded wave span: consumers scoping cache-state damage must assume any page
      // anywhere may have been dropped.
      res.wave_base = 0;
      res.wave_end = UINT64_MAX;
    }
  }

  // Transient-state blocking: wait out any in-flight transition on this region.
  const SimTime busy_wait = entry->busy_until > t ? entry->busy_until - t : 0;
  t += busy_wait;
  ++entry->epoch_accesses;
  entry->last_active = t;

  const RequestorRole role = entry->RoleOf(req.blade);
  const SttEntry& row = stt_.Lookup(entry->state, req.type, role);
  res.prev_state = entry->state;
  res.next_state = row.next_state;

  // 5. Transition decision (second MAU) + recirculation to commit the entry (Fig. 4).
  {
    SimTime recirc_wait = 0;
    t = fabric_.Recirculate(t, &recirc_wait);
    fabric_wait += recirc_wait;
  }

  // 6. Invalidations via switch-native multicast with egress pruning (§4.3.2).
  SharerMask targets = 0;
  if (row.invalidate == InvalidateTargets::kOtherSharers) {
    targets = entry->sharers & ~BladeBit(req.blade);
  } else if (row.invalidate == InvalidateTargets::kOwner &&
             entry->owner != kInvalidComputeBlade && entry->owner != req.blade) {
    targets = BladeBit(entry->owner);
  }

  InvalidationWave wave;
  if (targets != 0) {
    if (fault_plane_.Armed()) [[unlikely]] {
      // A dead blade never ACKs: the wave deterministically waits out its full retry
      // budget (no loss draw, so the RNG sequence is death-schedule-invariant). On a
      // lossy fabric the seeded RNG decides. Either way an exhausted budget resets the
      // address (§4.4) and fails the access with the timeout-summed latency.
      const FaultPlane::SendOutcome outcome =
          fault_plane_.AnyDead(targets, t) ? fault_plane_.DeadTargetOutcome(t, req.blade)
                                           : fault_plane_.SendWithAck(0, t, req.blade);
      if (!outcome.delivered) {
        (void)ResetAddress(req.va, t);
        res.status = Status(ErrorCode::kTimedOut, "invalidation ACKs lost; region reset");
        res.latency = (t + outcome.latency) - req.now;
        res.completion = t + outcome.latency;
        return res;
      }
      t += outcome.latency;  // Timeout-and-retransmit delays actually incurred.
    }
    wave = InvalidateBlades(targets, *entry, page, req.blade, t);
    // Splitting signal: every page falsely invalidated in this region — dirty flushes AND
    // clean drops (each dropped page is a future re-fetch). The *reported*
    // false-invalidation counter stays dirty-page-only, matching the paper's definition.
    entry->epoch_false_invalidations += wave.false_invalidations + wave.clean_drops;
    ++entry->epoch_invalidations;
    res.triggered_invalidation = true;
    // Union with any capacity-eviction span published above (that one is unbounded, so
    // widening means keeping it).
    if (res.wave_end <= res.wave_base) {
      res.wave_base = entry->base;
      res.wave_end = entry->end();
    }
  }

  // 7. Data fetch. S->M upgrades with the page already cached skip the fetch entirely; the
  // M->S/M->M handoff must wait for the previous owner's flush to land (sequential 2-RTT
  // path); S-state fetches overlap with the invalidation wave (parallel 1-RTT path).
  const bool need_data = frame == nullptr;
  const PageData* bytes = nullptr;
  SimTime data_at_requester;
  if (need_data) {
    SimTime fetch_start = row.sequential_fetch ? std::max(t, wave.flush_landed) : t;
    if (fault_plane_.lossy()) [[unlikely]] {
      // The remote read-with-ACK rides the same loss model: retransmission delay lands on
      // the fetch, and an exhausted budget resets the address (§4.4) and fails the access.
      const FaultPlane::SendOutcome outcome =
          fault_plane_.SendWithAck(0, fetch_start, req.blade);
      if (!outcome.delivered) {
        (void)ResetAddress(req.va, fetch_start);
        res.status = Status(ErrorCode::kTimedOut, "remote fetch lost; region reset");
        res.latency = (fetch_start + outcome.latency) - req.now;
        res.completion = fetch_start + outcome.latency;
        return res;
      }
      fetch_start += outcome.latency;
    }
    data_at_requester = FetchPageFromMemory(req.va, req.blade, fetch_start, &bytes,
                                            &fabric_wait);
    if (config_.fetch_whole_region) {
      // Coupled-granularity ablation (§4.3.1): pull every other page of the region too.
      // The extra transfers serialize on the requester's NIC behind the demanded page.
      for (VirtAddr va = entry->base; va < entry->end(); va += kPageSize) {
        const uint64_t p = PageNumber(va);
        if (p == page || blade.cache().Peek(p) != nullptr) {
          continue;
        }
        const PageData* extra_bytes = nullptr;
        const SimTime arrived = FetchPageFromMemory(va, req.blade, fetch_start, &extra_bytes);
        InsertIntoCache(req.blade, p, /*writable=*/false, extra_bytes, arrived);
        data_at_requester = std::max(data_at_requester, arrived);
      }
    }
  } else {
    ++stats_.write_upgrades;
    auto grant = fabric_.Route(Endpoint::Switch(), Endpoint::Compute(req.blade),
                               MessageKind::kRdmaWriteAck, t);
    data_at_requester = grant.arrival;
    fabric_wait += grant.total_wait();
  }

  const SimTime done =
      std::max(data_at_requester, wave.max_ack_at_requester) + lat_.pte_install;

  // 8. Commit the directory entry (the recirculated update).
  if (row.clears_sharers) {
    entry->sharers = 0;
    entry->owner = kInvalidComputeBlade;
  }
  if (row.becomes_owner) {
    entry->owner = req.blade;
    entry->sharers = BladeBit(req.blade);
  } else if (row.joins_sharers) {
    entry->sharers |= BladeBit(req.blade);
  }
  entry->state = row.next_state;
  if (!entry->OwnerHeld()) {
    entry->owner = kInvalidComputeBlade;
  }
  entry->busy_until = targets != 0 ? done : t;

  // 9. Install the page at the requesting blade. Under MESI, E-state pages install
  // writable (the silent-upgrade privilege): the holder's first store is a local hit.
  const bool writable =
      req.type == AccessType::kWrite || row.next_state == MsiState::kExclusive;
  if (need_data) {
    InsertIntoCache(req.blade, page, writable, bytes, done, req.pdid);
  } else if (writable) {
    blade.cache().MakeWritable(page);
  }
  if (req.type == AccessType::kWrite) {
    blade.cache().MarkDirty(page);
  }
  // Prime the pipeline cache for the thread's next access to this page. The generation is
  // snapshotted *after* all of this access's mutations (insert/evict/invalidate), so the
  // memo is valid exactly until the next conflicting event.
  PopulatePipeline(req, page, blade.cache().Find(page), entry);

  // 10. Bookkeeping: transition counters and the Fig. 7 (right) latency decomposition.
  switch (res.prev_state) {
    case MsiState::kInvalid:
      // Cold reads land in S (MSI) or E (MESI); both count as the read-miss bucket.
      (row.next_state == MsiState::kModified) ? ++stats_.transitions_i_to_m
                                              : ++stats_.transitions_i_to_s;
      break;
    case MsiState::kShared:
      (row.next_state == MsiState::kShared) ? ++stats_.transitions_s_to_s
                                            : ++stats_.transitions_s_to_m;
      break;
    case MsiState::kModified:
    case MsiState::kExclusive:  // E handoffs cost the same 2-RTT path as M.
      if (role == RequestorRole::kOwner) {
        ++stats_.transitions_m_stay;
      } else if (row.next_state == MsiState::kShared) {
        ++stats_.transitions_m_to_s;
      } else {
        ++stats_.transitions_m_to_m;
      }
      break;
  }

  res.breakdown.fault = lat_.page_fault_entry + lat_.pte_install;
  res.breakdown.inv_queue = wave.max_queue_wait;
  res.breakdown.inv_tlb = wave.max_tlb;
  res.breakdown.fabric_wait = fabric_wait;
  const SimTime total = done - req.now;
  const SimTime accounted =
      res.breakdown.fault + wave.max_queue_wait + wave.max_tlb + fabric_wait;
  res.breakdown.network = total > accounted ? total - accounted : 0;
  stats_.breakdown_sums += res.breakdown;

  res.completion = done;
  if (config_.consistency == ConsistencyModel::kPso && req.type == AccessType::kWrite) {
    // Store buffering: the thread resumes once the request is posted; coherence completes
    // asynchronously. A later read to this region blocks via PsoReadBarrier.
    res.latency = issued_at - req.now;
    PsoRecordWrite(req.tid, req.va, done);
  } else {
    res.latency = done - req.now;
  }
  if (trace_ != nullptr) [[unlikely]] {
    // Latency-breakdown span for the serviced miss. Local hits are deliberately
    // untraced: the fused hit pipeline stays event-free (hot-path contract).
    TraceEvent ev;
    ev.kind = TraceEventKind::kAccessSpan;
    ev.clock = req.now;
    ev.dur = done - req.now;  // Thread-visible wait under PSO differs; span = service.
    ev.tid = req.tid;
    ev.blade = req.blade;
    ev.a = req.va;
    ev.b = res.breakdown.fault;
    ev.c = TracePack32(res.breakdown.network, res.breakdown.fabric_wait);
    ev.d = TracePack32(res.breakdown.inv_queue, res.breakdown.inv_tlb);
    trace_->Emit(ev);
  }
  if (config_.prefetch.enabled()) {
    // Speculative fetches go out once the demand fault is fully serviced — off its
    // critical path, serialized behind it on the blade's egress link.
    PrefetchAfterFault(req, page, done);
  }
  return res;
}

// ---------------------------------------------------------------------------
// Pattern-aware prefetching over the remote-fault path (src/prefetch/prefetch.h).
// ---------------------------------------------------------------------------

bool Rack::ServiceViaPrefetch(const AccessRequest& req, SimTime now, uint64_t page,
                              DramCache::Frame** frame, bool* pslot_valid,
                              AccessResult* res) {
  ComputeBlade& blade = *compute_blades_[req.blade];
  InstallReadyPrefetches(req.blade, now);
  BladePrefetchState& bp = blade_prefetch_[req.blade];
  const bool had_frame = *frame != nullptr;
  // Installs may evict arbitrary frames — including the one the hit path just probed —
  // so re-resolve before anything dereferences it.
  *frame = blade.cache().Find(page);
  if (!had_frame && *frame != nullptr) {
    // An arrived prefetch covers this fault: replay the ordinary hit path (LRU, memo,
    // useful classification, domain re-validation) at the same timestamp.
    if (TryLocalHit(req, now, res, frame, pslot_valid)) {
      ++stats_.local_hits;
      if (trace_ != nullptr) [[unlikely]] {
        TraceEvent ev;
        ev.kind = TraceEventKind::kPrefetchUseful;
        ev.clock = now;
        ev.tid = req.tid;
        ev.blade = req.blade;
        ev.a = page;
        trace_->Emit(ev);
      }
      return true;
    }
  }
  // Speculation never widens access: everything below re-checks the protection table
  // for the *demanding* (thread, domain), exactly as the fault path would.
  const bool allowed = protection_.Allows(req.pdid, req.va, req.type);
  if (auto it = bp.in_flight.find(page); allowed && it != bp.in_flight.end()) {
    const BladePrefetchState::InFlight entry = it->second;
    bp.in_flight.erase(it);
    bp.RecomputeNextReady();
    const bool stale = blade.cache().region_inval_version(DramCache::RegionOf(page)) !=
                       entry.inval_stamp;
    if (!stale && req.type == AccessType::kRead && *frame == nullptr) {
      // Demand read joins the in-flight fetch: the thread still takes the page-fault
      // trap, then blocks until the data lands (a late prefetch — it shortened the
      // stall without hiding it).
      entry.owner->OnLate();
      ++stats_.remote_accesses;
      const SimTime landed = std::max(now + lat_.page_fault_entry, entry.ready_at);
      InsertIntoCache(req.blade, page, /*writable=*/false, PeekPageBytes(req.va), landed,
                      req.pdid);
      const SimTime done = landed + lat_.pte_install;
      PopulatePipeline(req, page, blade.cache().Find(page), nullptr);
      res->local_hit = false;
      res->latency = done - req.now;
      res->completion = done;
      res->breakdown.fault = lat_.page_fault_entry + lat_.pte_install;
      res->breakdown.network =
          res->latency > res->breakdown.fault ? res->latency - res->breakdown.fault : 0;
      stats_.breakdown_sums += res->breakdown;
      if (trace_ != nullptr) [[unlikely]] {
        TraceEvent ev;
        ev.kind = TraceEventKind::kPrefetchUseful;
        ev.clock = now;
        ev.dur = done - now;
        ev.tid = req.tid;
        ev.blade = req.blade;
        ev.a = page;
        trace_->Emit(ev);
      }
      PrefetchAfterFault(req, page, done);
      return true;
    }
    // Stale copy, or a write that needs M anyway: drop the speculation and fault.
    if (stale) {
      entry.owner->OnDiscardedStale();
      if (trace_ != nullptr) [[unlikely]] {
        TraceEvent ev;
        ev.kind = TraceEventKind::kPrefetchDiscard;
        ev.clock = now;
        ev.tid = req.tid;
        ev.blade = req.blade;
        ev.a = page;
        ev.b = 1;  // Stale discovered at demand-join time.
        trace_->Emit(ev);
      }
    } else {
      entry.owner->OnLate();
    }
  }
  if (*frame != nullptr && (*frame)->prefetched && allowed) {
    // Write upgrade on a prefetched read-only page: its first real use. Denied accesses
    // never count as useful — the fault path is about to reject them untouched.
    (*frame)->prefetched = false;
    bp.OnPrefetchedTouch(page, req.pdid);
  }
  return false;
}

PrefetchEngine& Rack::EnsurePrefetchEngine(ThreadId tid) {
  return EnsureEngine(prefetch_engines_, tid, config_.prefetch);
}

const PageData* Rack::PeekPageBytes(VirtAddr va) {
  if (!config_.store_data) {
    return nullptr;
  }
  Translation tr;
  if (!TranslatePage(va, &tr)) {
    return nullptr;
  }
  return memory_blades_[tr.blade]->ReadPage(PageNumber(tr.phys_addr));
}

void Rack::InstallReadyPrefetches(ComputeBladeId blade_id, SimTime now) {
  BladePrefetchState& bp = blade_prefetch_[blade_id];
  DramCache& cache = compute_blades_[blade_id]->cache();
  for (const auto& [page, entry] : bp.TakeReady(now)) {
    if (cache.region_inval_version(DramCache::RegionOf(page)) != entry.inval_stamp) {
      // An invalidation wave outran the fetch: the copy is stale, never install it.
      entry.owner->OnDiscardedStale();
      if (trace_ != nullptr) [[unlikely]] {
        TraceEvent ev;
        ev.kind = TraceEventKind::kPrefetchDiscard;
        ev.clock = now;
        ev.blade = blade_id;
        ev.a = page;
        ev.b = 0;  // Stale discovered at install time.
        trace_->Emit(ev);
      }
      continue;
    }
    entry.owner->OnInstalled();
    if (cache.Find(page) != nullptr) {
      continue;  // A demand fault re-fetched it meanwhile; nothing to install.
    }
    InsertIntoCache(blade_id, page, /*writable=*/false, PeekPageBytes(PageToAddr(page)),
                    entry.ready_at, entry.pdid, /*prefetched=*/true);
    bp.unused[page] = entry.owner;
  }
  if (!bp.rearm_requests.empty()) {
    // Re-arm requests recorded by hit paths and channel/group commits: engines whose
    // useful touches crossed their issued window's midpoint issue the next window here —
    // the first serialized point on the blade — so a fully-covered stream keeps fetching
    // without waiting for coverage to run dry and a real fault to restart the pipeline.
    for (size_t i = 0; i < bp.rearm_requests.size(); ++i) {
      const BladePrefetchState::Rearm rearm = bp.rearm_requests[i];
      IssuePrefetches(*rearm.engine, blade_id, rearm.pdid, rearm.page, now);
    }
    bp.rearm_requests.clear();
  }
}

void Rack::PrefetchAfterFault(const AccessRequest& req, uint64_t page, SimTime done) {
  PrefetchEngine& engine = EnsurePrefetchEngine(req.tid);
  engine.RecordFault(page);
  IssuePrefetches(engine, req.blade, req.pdid, page, done);
}

void Rack::IssuePrefetches(PrefetchEngine& engine, ComputeBladeId blade_id,
                           ProtDomainId pdid, uint64_t page, SimTime start) {
  prefetch_scratch_.clear();
  engine.Predict(page, &prefetch_scratch_);
  if (prefetch_scratch_.empty()) {
    return;
  }
  // Occupancy feedback: when the trigger page's home blade port is already saturated with
  // demand traffic, speculative fetches would only deepen the queue the demand stream is
  // stuck in. Shrink the window instead of issuing (it regrows on useful touches).
  if (Translation tr; config_.prefetch.fabric_pressure_threshold < 1.0 &&
                      TranslatePage(PageToAddr(page), &tr) &&
                      fabric_.Utilization(Endpoint::Memory(tr.blade)) >
                          config_.prefetch.fabric_pressure_threshold) {
    engine.OnFabricPressure();
    return;
  }
  BladePrefetchState& bp = blade_prefetch_[blade_id];
  DramCache& cache = compute_blades_[blade_id]->cache();
  uint64_t last_issued = page;
  uint64_t issued_count = 0;
  bool issued_any = false;
  for (const uint64_t p : prefetch_scratch_) {
    if (!engine.HasInFlightRoom()) {
      break;  // Bounded in-flight queue.
    }
    if (cache.Find(p) != nullptr || bp.in_flight.find(p) != bp.in_flight.end()) {
      continue;
    }
    const VirtAddr va = PageToAddr(p);
    if (!protection_.Allows(pdid, va, AccessType::kRead)) {
      continue;  // Speculation never crosses a protection boundary.
    }
    SimTime t = start;
    Status err;
    DirectoryEntry* entry = EnsureDirectoryEntry(va, t, &err);
    if (entry == nullptr) {
      continue;
    }
    if (entry->busy_until > t) {
      continue;  // Transition in flight: never wait speculatively.
    }
    if ((entry->state == MsiState::kModified || entry->state == MsiState::kExclusive) &&
        entry->owner != blade_id) {
      continue;  // Fetching would force an owner flush: no invalidations for guesses.
    }
    const SttEntry& row =
        stt_.Lookup(entry->state, AccessType::kRead, entry->RoleOf(blade_id));
    if (row.invalidate != InvalidateTargets::kNone) {
      continue;  // Defensive: mirrors the owner check above.
    }
    // Join the sharer list through the ordinary read transition, demoted to Shared: a
    // speculative page never takes E/M, so its first write still pays the upgrade.
    if (entry->state == MsiState::kInvalid) {
      entry->state = MsiState::kShared;
    }
    entry->sharers |= BladeBit(blade_id);
    // Requester NIC -> switch (pipeline + directory recirculation) -> memory blade ->
    // requester: the demand fetch's exact hops, issued after it and queueing behind it.
    auto up = fabric_.Route(Endpoint::Compute(blade_id), Endpoint::Switch(),
                            MessageKind::kRdmaReadRequest, t, /*recirculate=*/true);
    const SimTime at_switch = up.arrival;
    const PageData* bytes = nullptr;  // Payload is re-read from memory at install time.
    const SimTime ready =
        FetchPageFromMemory(va, blade_id, at_switch, &bytes) + lat_.pte_install;
    engine.OnIssued();
    bp.in_flight[p] = BladePrefetchState::InFlight{
        ready, cache.region_inval_version(DramCache::RegionOf(p)), &engine, pdid};
    bp.NoteIssued(ready);
    last_issued = p;
    ++issued_count;
    issued_any = true;
  }
  if (issued_any) {
    engine.NoteIssuedWindow(page, last_issued);
    if (trace_ != nullptr) [[unlikely]] {
      TraceEvent ev;
      ev.kind = TraceEventKind::kPrefetchIssue;
      ev.clock = start;
      ev.blade = blade_id;
      ev.a = page;
      ev.b = issued_count;
      trace_->Emit(ev);
    }
  }
}

PrefetchStats Rack::prefetch_stats() {
  for (size_t b = 0; b < blade_prefetch_.size(); ++b) {
    const DramCache& cache = compute_blades_[b]->cache();
    blade_prefetch_[b].ResolveEvictedUnused([&](uint64_t page) {
      const DramCache::Frame* f = cache.Peek(page);
      return f != nullptr && f->prefetched;
    });
  }
  return MergeEngineStats(prefetch_engines_);
}

AccessResult Rack::AccessByThread(ThreadId tid, VirtAddr va, AccessType type, SimTime now) {
  AccessResult res;
  auto blade = controller_.processes().BladeOfThread(tid);
  auto pid = controller_.processes().ProcessOfThread(tid);
  if (!blade.ok() || !pid.ok()) {
    res.status = Status(ErrorCode::kNotFound, "unknown thread");
    return res;
  }
  auto pdid = controller_.processes().PdidOf(*pid);
  assert(pdid.ok());
  return Access(AccessRequest{tid, *blade, *pdid, va, type, now});
}

// ---------------------------------------------------------------------------
// Byte-level convenience operations (examples / end-to-end tests).
// ---------------------------------------------------------------------------

Result<SimTime> Rack::WriteBytes(ThreadId tid, VirtAddr va, const void* src, uint64_t len,
                                 SimTime now) {
  const auto* p = static_cast<const uint8_t*>(src);
  auto blade = controller_.processes().BladeOfThread(tid);
  if (!blade.ok()) {
    return blade.status();
  }
  SimTime t = now;
  while (len > 0) {
    const uint64_t offset = va & (kPageSize - 1);
    const uint64_t chunk = std::min<uint64_t>(len, kPageSize - offset);
    AccessResult r = AccessByThread(tid, va, AccessType::kWrite, t);
    if (!r.status.ok()) {
      return r.status;
    }
    t += r.latency;
    if (auto* frame = compute_blades_[*blade]->cache().Lookup(PageNumber(va));
        frame != nullptr && frame->data != nullptr) {
      std::memcpy(frame->data->data() + offset, p, chunk);
    }
    va += chunk;
    p += chunk;
    len -= chunk;
  }
  return t;
}

Result<SimTime> Rack::ReadBytes(ThreadId tid, VirtAddr va, void* dst, uint64_t len,
                                SimTime now) {
  auto* p = static_cast<uint8_t*>(dst);
  auto blade = controller_.processes().BladeOfThread(tid);
  if (!blade.ok()) {
    return blade.status();
  }
  SimTime t = now;
  while (len > 0) {
    const uint64_t offset = va & (kPageSize - 1);
    const uint64_t chunk = std::min<uint64_t>(len, kPageSize - offset);
    AccessResult r = AccessByThread(tid, va, AccessType::kRead, t);
    if (!r.status.ok()) {
      return r.status;
    }
    t += r.latency;
    if (auto* frame = compute_blades_[*blade]->cache().Lookup(PageNumber(va));
        frame != nullptr && frame->data != nullptr) {
      std::memcpy(p, frame->data->data() + offset, chunk);
    } else {
      std::memset(p, 0, chunk);  // Metadata-only mode reads as zero.
    }
    va += chunk;
    p += chunk;
    len -= chunk;
  }
  return t;
}

// ---------------------------------------------------------------------------
// Failure handling and teardown.
// ---------------------------------------------------------------------------

Result<SimTime> Rack::MigrateRange(VirtAddr base, uint32_t size_log2, MemoryBladeId dst,
                                   SimTime now) {
  if (dst >= memory_blades_.size()) {
    return Status(ErrorCode::kInvalidArgument, "no such memory blade");
  }
  const uint64_t size = uint64_t{1} << size_log2;
  if (controller_.FindVma(base) == nullptr) {
    return Status(ErrorCode::kFault, "range not mapped");
  }
  // 1. Quiesce: drop cached copies everywhere, flushing dirty pages to the *old* home.
  ShootDownRange(base, size, /*write_back=*/true);
  // 2. Copy pages old-home -> new-home. The control plane drives full-page RDMA reads and
  //    writes; contiguous physical space on `dst` comes from its migration arena.
  const PhysAddr dst_pa = migration_cursor_;
  migration_cursor_ += size;
  SimTime t = now;
  for (VirtAddr va = base; va < base + size; va += kPageSize) {
    auto tr = translator_.Translate(va);
    if (!tr.ok()) {
      return tr.status();
    }
    const PageData* bytes = memory_blades_[tr->blade]->ReadPage(PageNumber(tr->phys_addr));
    memory_blades_[dst]->WritePage(PageNumber(dst_pa + (va - base)), bytes);
    // One page crosses the fabric twice (src -> switch -> dst).
    auto hop = fabric_.Route(Endpoint::Memory(tr->blade), Endpoint::Memory(dst),
                             MessageKind::kRdmaWriteRequest, t);
    t = hop.arrival + lat_.memory_blade_service;
  }
  // 3. Flip the translation: the outlier's longest-prefix match now overrides the blade
  //    range for this range only.
  if (Status s = controller_.MigrateRange(base, size_log2, dst, dst_pa); !s.ok()) {
    return s;
  }
  // 4. Coherence state for the range restarts cold (I) at the new home.
  std::vector<VirtAddr> stale;
  directory_.ForEach([&](DirectoryEntry& e) {
    if (e.base < base + size && e.end() > base) {
      stale.push_back(e.base);
    }
  });
  for (VirtAddr b : stale) {
    (void)directory_.Remove(b);
  }
  if (trace_ != nullptr) [[unlikely]] {
    TraceEvent ev;
    ev.kind = TraceEventKind::kMigrateRange;
    ev.clock = now;
    ev.dur = t - now;
    ev.a = base;
    ev.b = size >> kPageShift;
    trace_->Emit(ev);
  }
  return t;
}

Status Rack::ResetAddress(VirtAddr va, SimTime now) {
  DirectoryEntry* entry = directory_.Lookup(va);
  if (entry == nullptr) {
    return Status(ErrorCode::kNotFound, "no directory entry for address");
  }
  // §4.4: force *all* compute blades to flush their data for the address, then remove the
  // directory entry — conservative, but it breaks transitions wedged by a dead blade.
  SharerMask everyone = 0;
  for (int i = 0; i < config_.num_compute_blades; ++i) {
    everyone |= BladeBit(static_cast<ComputeBladeId>(i));
  }
  const InvalidationWave wave =
      InvalidateBlades(everyone, *entry, UINT64_MAX, kInvalidComputeBlade, now);
  fault_plane_.OnResetFlushed(wave.flushed);
  if (trace_ != nullptr) [[unlikely]] {
    TraceEvent ev;
    ev.kind = TraceEventKind::kFaultReset;
    ev.clock = now;
    ev.a = va;
    ev.b = wave.flushed;
    trace_->Emit(ev);
  }
  return directory_.Remove(entry->base);
}

Result<SimTime> Rack::DrainMemoryBlade(MemoryBladeId src, MemoryBladeId dst, SimTime now) {
  if (src >= memory_blades_.size() || dst >= memory_blades_.size() || src == dst) {
    return Status(ErrorCode::kInvalidArgument, "bad drain source/destination blade");
  }
  // 1. Mark the blade draining: the allocator places nothing new on it while we move the
  //    existing content off.
  if (Status s = controller_.MemoryBladeDraining(src); !s.ok()) {
    return s;
  }
  // 2. Enumerate what lives there. Allocation chunks record their placement blade, and
  //    every chunk is power-of-two sized and self-aligned (the TCAM-friendly rounding), so
  //    each is directly a MigrateRange unit.
  struct Piece {
    VirtAddr va = 0;
    uint32_t size_log2 = 0;
  };
  std::vector<Piece> pieces;
  controller_.ForEachVma([&](const VmaRecord& vma) {
    for (const auto& chunk : vma.alloc.chunks) {
      if (chunk.blade == src) {
        pieces.push_back(Piece{chunk.va, Log2Floor(chunk.size)});
      }
    }
  });
  // 3. Migrate each piece to the survivor: shoot-down with write-back, page copies over
  //    the fabric, outlier translation retarget, directory entries restart cold. Pieces
  //    migrate sequentially — the control plane drives one range at a time.
  if (trace_ != nullptr) [[unlikely]] {
    TraceEvent ev;
    ev.kind = TraceEventKind::kBladeDrainBegin;
    ev.clock = now;
    ev.a = src;
    ev.b = dst;
    trace_->Emit(ev);
  }
  SimTime t = now;
  uint64_t pages = 0;
  for (const Piece& piece : pieces) {
    // Skip pieces a previous migration already moved off this blade (outlier translation
    // no longer points at `src`).
    auto tr = translator_.Translate(piece.va);
    if (!tr.ok() || tr->blade != src) {
      continue;
    }
    auto done = MigrateRange(piece.va, piece.size_log2, dst, t);
    if (!done.ok()) {
      return done.status();
    }
    t = *done;
    pages += (uint64_t{1} << piece.size_log2) >> kPageShift;
  }
  fault_plane_.OnDrainCompleted(pages);
  if (trace_ != nullptr) [[unlikely]] {
    TraceEvent ev;
    ev.kind = TraceEventKind::kBladeDrainEnd;
    ev.clock = now;
    ev.dur = t - now;
    ev.a = src;
    ev.b = pages;
    trace_->Emit(ev);
  }
  return t;
}

MIND_SERIALIZED_PATH void Rack::AdvanceTo(SimTime now) {
  splitting_.MaybeRunEpoch(now);
  MaybeRunScheduledDrains(now);
  if (config_.prefetch.enabled()) {
    // Re-arm gap fix: a fully covered stream records re-arm requests from hit paths and
    // channel commits, but those only issue at the blade's next serialized access — which
    // may never come. Drain installs and pending re-armed windows for every blade here.
    for (int b = 0; b < config_.num_compute_blades; ++b) {
      InstallReadyPrefetches(static_cast<ComputeBladeId>(b), now);
    }
  }
}

void Rack::ShootDownRange(VirtAddr base, uint64_t size, bool write_back) {
  ++cache_epoch_;
  const uint64_t first = PageNumber(base);
  const uint64_t last = PageNumber(base + size - 1) + 1;
  for (auto& blade : compute_blades_) {
    auto inv = blade->cache().InvalidateRange(first, last);
    if (!write_back) {
      continue;
    }
    for (auto& ev : inv.flushed) {
      ++stats_.pages_flushed;
      WriteBackPage(blade->id(), ev.page, ev.data.get(), /*start=*/0);
    }
  }
}

Status Rack::Mprotect(ProcessId pid, VirtAddr base, uint64_t size, PermClass perm) {
  Status s = controller_.Mprotect(pid, base, size, perm);
  if (s.ok()) {
    // Cached PTEs in the range may now over-permit; drop them so the next access re-checks
    // against the switch's protection table.
    ShootDownRange(base, size, /*write_back=*/true);
  }
  return s;
}

Status Rack::RevokeFromDomain(ProtDomainId grantee, VirtAddr base, uint64_t size) {
  Status s = controller_.RevokeFromDomain(grantee, base, size);
  if (s.ok()) {
    ShootDownRange(base, size, /*write_back=*/true);
  }
  return s;
}

Status Rack::Munmap(ProcessId pid, VirtAddr base) {
  const VmaRecord* vma = controller_.FindVma(base);
  if (vma == nullptr) {
    return Status(ErrorCode::kFault, "no vma at address");
  }
  const VirtAddr begin = vma->base();
  const VirtAddr end = vma->end();
  // Drop cached pages everywhere (no write-back — the mapping is going away) and remove the
  // covered directory entries.
  ++cache_epoch_;
  for (auto& blade : compute_blades_) {
    (void)blade->cache().InvalidateRange(PageNumber(begin), PageNumber(end - 1) + 1);
  }
  std::vector<VirtAddr> to_remove;
  directory_.ForEach([&](DirectoryEntry& e) {
    if (e.base < end && e.end() > begin) {
      to_remove.push_back(e.base);
    }
  });
  for (VirtAddr b : to_remove) {
    (void)directory_.Remove(b);
  }
  return controller_.Munmap(pid, base);
}

}  // namespace mind
