// AccessChannel: the batched submit/complete data-plane contract of the replay emulator.
//
// MIND's switch processes memory traffic as batched packet streams, not one call at a time
// (§4, §5); the emulator's system boundary mirrors that. A channel is a per-(thread, blade)
// submission object handed out by a MemorySystem: the replay engine streams runs of resolved
// ops into Submit, receives typed Completion records for the leading blade-local prefix, and
// later applies their side effects with Commit. The split is classify/commit:
//
//   * Submit CLASSIFIES: it walks the run and accepts the longest leading prefix in which
//     every op completes entirely within the channel's blade — a local cache hit whose
//     outcome depends on nothing another blade can change — WITHOUT mutating any state.
//     Each accepted op gets a Completion (latency + typed CommitToken); the op that stops
//     the run (fault, upgrade, permission miss) is NOT consumed and must be replayed through
//     MemorySystem::Access on the serialized drain.
//   * Commit APPLIES: LRU recency, dirty bits, per-blade service-resource occupancy —
//     everything a serial Access would have mutated for those hits. It may only touch state
//     owned by the channel's blade plus thread-private state of the channel's thread.
//
// Validity is tracked at 2 MB cache-region granularity: Submit records a version stamp for
// every region the accepted run depends on, and RunValid() re-checks only those stamps. A
// coherence event that invalidates pages of a *shared* region therefore does not kill a
// peeked run over *private* regions of the same blade — the fix for the coherence-dense
// sharded-replay regression (see ROADMAP "finer sharded-replay invalidation").
//
// Thread safety (the sharded-replay engine's phase discipline):
//   * Submit/RunValid/Commit may run concurrently with the same calls on channels of OTHER
//     blades, but never concurrently with Access/AdvanceTo, with control-plane calls, or
//     with calls on a channel of the same blade.
//   * Neither Submit nor Commit may bump the system's SystemCounters: the engine accounts
//     committed channel ops itself (total_accesses + local_hits), and the merged report
//     adds them to the system's serialized-phase counter delta.
#ifndef MIND_SRC_CORE_ACCESS_CHANNEL_H_
#define MIND_SRC_CORE_ACCESS_CHANNEL_H_

#include <cstddef>
#include <cstdint>

#include "src/common/thread_annotations.h"
#include "src/common/types.h"
#include "src/core/access.h"

namespace mind {

// Opaque-but-typed commit handle for one classified op. The payload is system-defined (the
// in-tree systems store a tagged DramCache frame pointer: bit 0 = write); the engine only
// stores and returns it. Replaces the former `void** hints` raw-pointer plumbing.
struct CommitToken {
  uint64_t bits = 0;
};

// One accepted op of a submitted run.
struct Completion {
  // Thread-visible latency. Final when the run's SubmitResult says latency_final;
  // otherwise a lower bound that Commit rewrites in place.
  SimTime latency = 0;
  CommitToken token;
};

// Per-run summary returned by Submit.
struct SubmitResult {
  // Length of the accepted leading all-local prefix (0 = the very next op needs the drain).
  size_t accepted = 0;
  // Clock after op accepted-1, advancing by latency + think per op. Exact when
  // latency_final; otherwise a lower bound (safe as an epoch-barrier horizon).
  SimTime end_clock = 0;
  // Nonzero: every accepted op has exactly this latency, so the caller may account the run
  // in O(1) (histogram RecordN + pure horizon arithmetic). Zero: consult per-op latencies.
  // A nonzero uniform latency implies latency_final.
  SimTime uniform_latency = 0;
  // True: completion latencies (and end_clock) are exact as submitted, and Commit may be
  // called with any prefix length. False: latencies depend on blade state that evolves as
  // same-blade ops commit (e.g. GAM's per-blade library lock under multi-thread
  // contention); the caller must commit op by op, passing each op's start clock, and read
  // the finalized latency back from the Completion.
  bool latency_final = true;
};

class Histogram;

class AccessChannel {
 public:
  virtual ~AccessChannel() = default;

  // Classifies a run of `n` consecutive ops for this channel's thread starting at `clock`
  // with `think` time between ops. Fills completions[0..accepted): tokens always; latency
  // fields always written for a latency_final run that is not reported uniform, but MAY
  // be left unwritten for a uniform run (the reported uniform value applies to every op,
  // which is what lets callers account such runs in O(1)) and for a non-latency_final
  // run (they would only be lower bounds; the commit pass — per-op Commit or a group
  // merge — writes the exact values). Mutates nothing outside the channel's own
  // bookkeeping; records the region stamps RunValid() checks.
  MIND_PARALLEL_PHASE virtual SubmitResult Submit(const LocalOp* ops, size_t n, SimTime clock,
                                                  SimTime think, Completion* completions) = 0;

  // True while every piece of state the last Submit's classification depends on is
  // unchanged — checked via the per-2MB-region state versions stamped at Submit (plus any
  // blade-global epochs such as the protection-table version). While true, the accepted
  // run may keep committing across rounds; once false, the remainder must be resubmitted.
  MIND_PARALLEL_PHASE [[nodiscard]] virtual bool RunValid() const = 0;

  // Applies the side effects of the first `n` completions of the last submitted run (or of
  // its next uncommitted ops, when committing a run in pieces — the channel is positionless:
  // `completions` points at the piece, `clock` is the start clock of its first op). For
  // latency_final runs the recorded latencies are authoritative; otherwise n must be 1 and
  // completions[0].latency is rewritten with the exact value.
  MIND_PARALLEL_PHASE virtual void Commit(Completion* completions, size_t n,
                                          SimTime clock) = 0;
};

// --- Per-blade channel groups -----------------------------------------------
//
// MIND's fabric sees the *merged* per-blade access stream, not per-thread slices (§4, §5);
// ChannelGroup is the aggregation layer that restores that view to the commit path. One
// group spans every same-blade channel a replay shard owns. Each round the engine still
// Submits per thread (classification of a thread's run is thread-local by construction),
// but validation and commit happen per *blade*:
//
//   * ValidMask re-checks every member's submitted run in one pass — the blade-global
//     epochs (e.g. the protection-table version) are compared once per blade instead of
//     once per thread, then each member's region stamps against the one cache.
//   * CommitMerged merges the members' uncommitted runs into a single (clock, thread)
//     ordered stream and commits its horizon-eligible prefix as one batch: one virtual
//     call per blade per round instead of one per op. Latencies that per-thread Submit
//     could only lower-bound (GAM's per-blade library lock under intra-blade contention)
//     are finalized exactly here, in the same single pass — the group replays the lock
//     queue over the merged stream and advances the blade's FIFO resource once per batch,
//     so grouped ops report exact latencies instead of op-at-a-time commit-finalization.
//
// The same phase discipline as AccessChannel applies: group calls for different blades
// may run concurrently; a group call may only touch state owned by its blade plus
// member-thread-private state, and never bumps SystemCounters (the engine accounts
// committed ops itself). Groups support up to kMaxGroupLanes members; the engine falls
// back to per-thread commits beyond that.

// One member thread's slice of a group commit round. The engine fills the top block from
// the member's submitted-run state; CommitMerged writes the bottom block back.
struct GroupLane {
  // Engine-filled:
  size_t member = 0;            // Member slot from ChannelGroup::Add.
  size_t thread_index = 0;      // Global thread index: the (clock, thread) merge tie-break.
  SimTime clock = 0;            // Thread frontier at the first uncommitted op.
  SimTime uniform_latency = 0;  // From the member's SubmitResult (0: per-op latencies).
  Completion* comps = nullptr;  // Uncommitted slice of the member's submitted run.
  size_t count = 0;             // Ops available in the slice.
  // Written by CommitMerged:
  size_t committed = 0;         // Leading ops committed (start clock strictly below horizon).
  SimTime end_clock = 0;        // Thread frontier after the committed prefix.
  SimTime last_start = 0;       // Start clock of the lane's last committed op.
  uint64_t latency_sum = 0;     // Sum of finalized latencies over the committed prefix.
};

class ChannelGroup {
 public:
  static constexpr size_t kMaxGroupLanes = 64;  // ValidMask is one word.

  virtual ~ChannelGroup() = default;

  // Registers a member channel (must belong to this group's blade and have been handed
  // out by the same system). Returns the member slot used by GroupLane::member and
  // ValidMask. Members are registered once, before the first round.
  virtual size_t Add(AccessChannel* channel) = 0;

  // One validity pass for the whole blade: blade-global epochs checked once, then every
  // member's last-submitted region stamps. Bit m of the result = member m's run is still
  // valid. The bit of a member that never submitted is unspecified; the engine's own run
  // bookkeeping gates actual reuse.
  MIND_PARALLEL_PHASE [[nodiscard]] virtual uint64_t ValidMask() const = 0;

  // Merges the lanes' uncommitted runs in (clock, thread_index) order and commits every
  // op whose start clock lies strictly below `horizon` as one batch: per-op side effects
  // (LRU recency, dirty bits, prefetched-touch classification) apply in exactly the order
  // serial per-op replay would produce, and latencies are finalized against live blade
  // state where Submit could only bound them. Latency accounting goes straight into
  // `hist` — uniform lanes in O(1) via Histogram::RecordN, per-op otherwise — and the
  // per-lane outcome scatters back into `lanes`. Returns total ops committed.
  MIND_PARALLEL_PHASE virtual uint64_t CommitMerged(GroupLane* lanes, size_t n,
                                                    SimTime horizon, SimTime think,
                                                    Histogram& hist) = 0;
};

}  // namespace mind

#endif  // MIND_SRC_CORE_ACCESS_CHANNEL_H_
