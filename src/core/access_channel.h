// AccessChannel: the batched submit/complete data-plane contract of the replay emulator.
//
// MIND's switch processes memory traffic as batched packet streams, not one call at a time
// (§4, §5); the emulator's system boundary mirrors that. A channel is a per-(thread, blade)
// submission object handed out by a MemorySystem: the replay engine streams runs of resolved
// ops into Submit, receives typed Completion records for the leading blade-local prefix, and
// later applies their side effects with Commit. The split is classify/commit:
//
//   * Submit CLASSIFIES: it walks the run and accepts the longest leading prefix in which
//     every op completes entirely within the channel's blade — a local cache hit whose
//     outcome depends on nothing another blade can change — WITHOUT mutating any state.
//     Each accepted op gets a Completion (latency + typed CommitToken); the op that stops
//     the run (fault, upgrade, permission miss) is NOT consumed and must be replayed through
//     MemorySystem::Access on the serialized drain.
//   * Commit APPLIES: LRU recency, dirty bits, per-blade service-resource occupancy —
//     everything a serial Access would have mutated for those hits. It may only touch state
//     owned by the channel's blade plus thread-private state of the channel's thread.
//
// Validity is tracked at 2 MB cache-region granularity: Submit records a version stamp for
// every region the accepted run depends on, and RunValid() re-checks only those stamps. A
// coherence event that invalidates pages of a *shared* region therefore does not kill a
// peeked run over *private* regions of the same blade — the fix for the coherence-dense
// sharded-replay regression (see ROADMAP "finer sharded-replay invalidation").
//
// Thread safety (the sharded-replay engine's phase discipline):
//   * Submit/RunValid/Commit may run concurrently with the same calls on channels of OTHER
//     blades, but never concurrently with Access/AdvanceTo, with control-plane calls, or
//     with calls on a channel of the same blade.
//   * Neither Submit nor Commit may bump the system's SystemCounters: the engine accounts
//     committed channel ops itself (total_accesses + local_hits), and the merged report
//     adds them to the system's serialized-phase counter delta.
#ifndef MIND_SRC_CORE_ACCESS_CHANNEL_H_
#define MIND_SRC_CORE_ACCESS_CHANNEL_H_

#include <cstddef>
#include <cstdint>

#include "src/common/types.h"
#include "src/core/access.h"

namespace mind {

// Opaque-but-typed commit handle for one classified op. The payload is system-defined (the
// in-tree systems store a tagged DramCache frame pointer: bit 0 = write); the engine only
// stores and returns it. Replaces the former `void** hints` raw-pointer plumbing.
struct CommitToken {
  uint64_t bits = 0;
};

// One accepted op of a submitted run.
struct Completion {
  // Thread-visible latency. Final when the run's SubmitResult says latency_final;
  // otherwise a lower bound that Commit rewrites in place.
  SimTime latency = 0;
  CommitToken token;
};

// Per-run summary returned by Submit.
struct SubmitResult {
  // Length of the accepted leading all-local prefix (0 = the very next op needs the drain).
  size_t accepted = 0;
  // Clock after op accepted-1, advancing by latency + think per op. Exact when
  // latency_final; otherwise a lower bound (safe as an epoch-barrier horizon).
  SimTime end_clock = 0;
  // Nonzero: every accepted op has exactly this latency, so the caller may account the run
  // in O(1) (histogram RecordN + pure horizon arithmetic). Zero: consult per-op latencies.
  // A nonzero uniform latency implies latency_final.
  SimTime uniform_latency = 0;
  // True: completion latencies (and end_clock) are exact as submitted, and Commit may be
  // called with any prefix length. False: latencies depend on blade state that evolves as
  // same-blade ops commit (e.g. GAM's per-blade library lock under multi-thread
  // contention); the caller must commit op by op, passing each op's start clock, and read
  // the finalized latency back from the Completion.
  bool latency_final = true;
};

class AccessChannel {
 public:
  virtual ~AccessChannel() = default;

  // Classifies a run of `n` consecutive ops for this channel's thread starting at `clock`
  // with `think` time between ops. Fills completions[0..accepted): tokens always; latency
  // fields always written when the run is not reported uniform (final per latency_final
  // above), but MAY be left unwritten for a uniform run — the reported uniform value
  // applies to every op, which is what lets callers account such runs in O(1). Mutates
  // nothing outside the channel's own bookkeeping; records the region stamps RunValid()
  // checks.
  virtual SubmitResult Submit(const LocalOp* ops, size_t n, SimTime clock, SimTime think,
                              Completion* completions) = 0;

  // True while every piece of state the last Submit's classification depends on is
  // unchanged — checked via the per-2MB-region state versions stamped at Submit (plus any
  // blade-global epochs such as the protection-table version). While true, the accepted
  // run may keep committing across rounds; once false, the remainder must be resubmitted.
  [[nodiscard]] virtual bool RunValid() const = 0;

  // Applies the side effects of the first `n` completions of the last submitted run (or of
  // its next uncommitted ops, when committing a run in pieces — the channel is positionless:
  // `completions` points at the piece, `clock` is the start clock of its first op). For
  // latency_final runs the recorded latencies are authoritative; otherwise n must be 1 and
  // completions[0].latency is rewritten with the exact value.
  virtual void Commit(Completion* completions, size_t n, SimTime clock) = 0;
};

}  // namespace mind

#endif  // MIND_SRC_CORE_ACCESS_CHANNEL_H_
