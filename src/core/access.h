// Access-request/result types for the MIND data path.
#ifndef MIND_SRC_CORE_ACCESS_H_
#define MIND_SRC_CORE_ACCESS_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/types.h"

namespace mind {

struct AccessRequest {
  ThreadId tid = 0;
  ComputeBladeId blade = 0;
  ProtDomainId pdid = 0;
  VirtAddr va = 0;
  AccessType type = AccessType::kRead;
  SimTime now = 0;
};

// Compact per-op input for the batched blade-local fast path (sharded replay): the
// resolved VA and the access type; everything else is per-run.
struct LocalOp {
  VirtAddr va = 0;
  AccessType type = AccessType::kRead;
};

// The additive latency decomposition of Fig. 7 (right): PgFault covers trap entry and PTE
// install; Network covers hops, switch pipeline passes, serialization, memory service and
// directory serialization; Inv-queue and Inv-TLB cover the slowest sharer's handler-queue
// wait and synchronous TLB shootdown on the invalidation critical path; Fabric-wait
// covers port/stage queueing on the requester's own hops (the contention component the
// queue models add — zero on an idle rack, where Network is pure wire + service time).
struct LatencyBreakdown {
  SimTime fault = 0;
  SimTime network = 0;
  SimTime inv_queue = 0;
  SimTime inv_tlb = 0;
  SimTime fabric_wait = 0;

  [[nodiscard]] SimTime Total() const {
    return fault + network + inv_queue + inv_tlb + fabric_wait;
  }

  LatencyBreakdown& operator+=(const LatencyBreakdown& o) {
    fault += o.fault;
    network += o.network;
    inv_queue += o.inv_queue;
    inv_tlb += o.inv_tlb;
    fabric_wait += o.fabric_wait;
    return *this;
  }

  // Field-wise delta between two monotonic breakdown sums (counter deltas over a run).
  // Keeping subtraction next to the fields means a future component cannot be silently
  // missed by a hand-rolled copy elsewhere.
  [[nodiscard]] LatencyBreakdown operator-(const LatencyBreakdown& o) const {
    LatencyBreakdown d;
    d.fault = fault - o.fault;
    d.network = network - o.network;
    d.inv_queue = inv_queue - o.inv_queue;
    d.inv_tlb = inv_tlb - o.inv_tlb;
    d.fabric_wait = fabric_wait - o.fabric_wait;
    return d;
  }
};

struct AccessResult {
  Status status;
  SimTime latency = 0;     // Thread-visible latency (PSO writes return before completion).
  SimTime completion = 0;  // Absolute time the coherence transition fully finished.
  bool local_hit = false;
  bool triggered_invalidation = false;
  // VA span the invalidation wave covered — the whole directory entry, since the
  // multicast false-invalidates every page of it at the targeted blades. Empty
  // (base == end) when no wave fired. Consumers scoping cache-state damage (e.g. the
  // replay drain's eligibility cache) need the span, not just the flag.
  VirtAddr wave_base = 0;
  VirtAddr wave_end = 0;
  MsiState prev_state = MsiState::kInvalid;  // Directory state before the access.
  MsiState next_state = MsiState::kInvalid;
  LatencyBreakdown breakdown;
};

}  // namespace mind

#endif  // MIND_SRC_CORE_ACCESS_H_
