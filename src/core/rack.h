// The MIND rack: public API tying the switch data plane, control plane, compute blades and
// memory blades together (Fig. 2).
//
// A Rack hosts the full in-network memory management unit: address translation, protection
// and the MSI cache directory execute "on the switch ASIC" in the access path; allocation,
// permission assignment and bounded splitting run at the control plane; compute blades keep
// page caches and service invalidations; memory blades passively serve one-sided RDMA.
//
// The data path is driven by logical time: callers supply the access timestamp and receive
// the thread-visible latency plus the absolute completion time, which lets the trace-replay
// engine model a whole rack of concurrent threads deterministically.
#ifndef MIND_SRC_CORE_RACK_H_
#define MIND_SRC_CORE_RACK_H_

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/blade/compute_blade.h"
#include "src/blade/memory_blade.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/types.h"
#include "src/controlplane/bounded_splitting.h"
#include "src/controlplane/controller.h"
#include "src/core/access.h"
#include "src/core/access_channel.h"
#include "src/core/config.h"
#include "src/core/rack_stats.h"
#include "src/dataplane/directory.h"
#include "src/dataplane/protection.h"
#include "src/dataplane/stt.h"
#include "src/dataplane/tcam.h"
#include "src/dataplane/translation.h"
#include "src/fault/fault_plane.h"
#include "src/net/fabric.h"
#include "src/obs/trace.h"

namespace mind {

class Rack {
 public:
  explicit Rack(RackConfig config);

  // --- Control-plane surface (syscall intercepts, §6.1) ---

  Result<ProcessId> Exec(const std::string& name) { return controller_.Exec(name); }
  Status Exit(ProcessId pid) { return controller_.Exit(pid); }
  Result<ProcessManager::ThreadPlacement> SpawnThread(
      ProcessId pid, ComputeBladeId pinned = kInvalidComputeBlade) {
    return controller_.SpawnThread(pid, pinned);
  }
  Result<VirtAddr> Mmap(ProcessId pid, uint64_t size, PermClass perm) {
    return controller_.Mmap(pid, size, perm);
  }
  // munmap also tears down coherence state for the vma (flushing nothing — data is gone).
  Status Munmap(ProcessId pid, VirtAddr base);
  // Permission changes shoot down cached pages in the range at every blade (with dirty
  // write-back), so stale PTEs can never bypass the switch's protection check.
  Status Mprotect(ProcessId pid, VirtAddr base, uint64_t size, PermClass perm);
  Status GrantToDomain(ProcessId owner, ProtDomainId grantee, VirtAddr base, uint64_t size,
                       PermClass perm) {
    return controller_.GrantToDomain(owner, grantee, base, size, perm);
  }
  Status RevokeFromDomain(ProtDomainId grantee, VirtAddr base, uint64_t size);

  // --- Data path ---

  // Serialized reference path (docs/determinism.md): may draw fault-plane randomness and
  // mutates RackStats directly, so it must never run inside a parallel phase.
  MIND_SERIALIZED_PATH AccessResult Access(const AccessRequest& req);

  // --- Batched data-plane channel (AccessChannel contract, src/core/access_channel.h) ---
  //
  // Opens the per-(thread, blade) submit/complete channel over the blade-local hit path.
  // Submit classifies a run as pure blade-local hits without mutating anything: the
  // accepted prefix is exactly the ops for which Access would return at step 0/1 (local
  // DRAM hit), with exact per-op latencies, tagged-frame-pointer commit tokens and the end
  // clock. Safe to call concurrently with channels of different blades while no
  // Access/control-plane call runs: it only reads the blade's cache index, the protection
  // table and the channel thread's PSO pending-write list. Commit applies those hits' side
  // effects — LRU recency and dirty bits — touching only the blade's own cache. The
  // pipeline memo and PSO pruning are deliberately skipped: both are pure memoization
  // whose absence never changes an access outcome, so channel-driven and serial replay
  // stay bit-identical. Run validity is stamped per 2 MB cache region (plus the
  // protection-table version), so an invalidation wave over a shared region leaves runs
  // over private regions of the same blade valid.
  std::unique_ptr<AccessChannel> OpenChannel(ThreadId tid, ComputeBladeId blade,
                                             ProtDomainId pdid);

  // Opens the per-blade channel group over the rack's channels (ChannelGroup contract in
  // src/core/access_channel.h): one protection-version + region-stamp validation pass per
  // blade covers every member's submitted run, and the merged (clock, thread) stream of
  // the blade's threads commits as one batch — under TSO a single uniform-latency batch
  // accounted across threads with Histogram::RecordN.
  std::unique_ptr<ChannelGroup> OpenChannelGroup(ComputeBladeId blade);

  // Runs any bounded-splitting epoch boundaries at or before `now` (the data path does
  // this implicitly on every Access; sharded replay calls it for boundaries that fall
  // after the last serialized access).
  void AdvanceSplittingEpochs(SimTime now) { splitting_.MaybeRunEpoch(now); }

  // Advances every time-driven control-plane activity to `now` without an access:
  // splitting epochs, scheduled fault-plane drains, and — when prefetching is on — each
  // blade's pending prefetch installs and re-armed windows (a fully covered stream's next
  // window issues here even though the blade never takes another serialized access). The
  // replay engine calls this once after the final op in every mode, so everything that
  // runs here is mode-invariant.
  MIND_SERIALIZED_PATH void AdvanceTo(SimTime now);

  // --- Pattern-aware prefetching (src/prefetch/prefetch.h) ---
  //
  // Per-(thread, blade) engines watch the fault stream and speculatively fetch ahead of
  // it. Prefetched pages install Shared through the ordinary directory state machine
  // (join-sharers transitions only — a prefetch never triggers an invalidation wave or
  // takes E/M), and an in-flight fetch whose 2 MB region is hit by an invalidation wave
  // before arrival is discarded via DramCache::region_inval_version. With the default
  // kNone policy nothing here runs and the data path is bit-identical to pre-prefetch.
  void SetPrefetchPolicy(PrefetchPolicy policy) { config_.prefetch.policy = policy; }
  [[nodiscard]] PrefetchStats prefetch_stats();

  // Resolves the thread's blade and protection domain, then runs Access.
  AccessResult AccessByThread(ThreadId tid, VirtAddr va, AccessType type, SimTime now);

  // Byte-granular reads/writes for examples and end-to-end tests (requires store_data).
  // They fault pages in via Access and then move real bytes. Returns the completion time.
  Result<SimTime> WriteBytes(ThreadId tid, VirtAddr va, const void* src, uint64_t len,
                             SimTime now);
  Result<SimTime> ReadBytes(ThreadId tid, VirtAddr va, void* dst, uint64_t len, SimTime now);

  // Page migration (§4.1, "Transparency via outlier entries"): moves the aligned range
  // [base, base + 2^size_log2) to `dst` memory blade — copies the pages, installs an
  // outlier translation (LPM overrides the blade range), and shoots down cached copies so
  // subsequent faults fetch from the new home. Returns the completion time.
  Result<SimTime> MigrateRange(VirtAddr base, uint32_t size_log2, MemoryBladeId dst,
                               SimTime now);

  // --- Failure handling (§4.4) ---

  // Reset for a VA: forces all blades to drop/flush the containing region and removes its
  // directory entry, breaking any wedged transition.
  Status ResetAddress(VirtAddr va, SimTime now);

  // Graceful memory-blade drain/failover: marks `src` draining (no new allocations land
  // on it), migrates every vma chunk homed on it to `dst` via the migration machinery
  // (shoot-down, page copies, outlier translation retarget), and records the drain in the
  // fault counters. After it returns, `src` serves no translated range and can be
  // removed. Returns the completion time.
  Result<SimTime> DrainMemoryBlade(MemoryBladeId src, MemoryBladeId dst, SimTime now);

  // Earliest scheduled-but-unexecuted fault event (FaultPlane::kNever when none). The
  // replay engine clamps its commit horizon here so channel hits never commit past a
  // cache-mutating scheduled event — in serial per-op replay the event runs before them
  // and may turn them into misses.
  [[nodiscard]] SimTime NextScheduledFaultAt() const { return fault_plane_.NextDrainAt(); }

  // --- Owner-parallel drain support (OwnerDrainOps contract, memory_system.h) ---
  //
  // The owner-parallel hit path mirrors the channel contract above: a blade-confined
  // local hit executed without the pipeline/translation memos (pure memoization, outcome-
  // invariant) and without touching RackStats, so shards may run AccessOwnedHit for
  // *different* blades concurrently while per-shard scratch absorbs the counters.

  // Per-shard counter scratch for owner-parallel hits; folded via FoldOwnerHits.
  struct OwnerHitScratch {
    uint64_t total_accesses = 0;
    uint64_t local_hits = 0;
  };

  // True iff Access(req) would retire as a blade-local cache hit whose execution touches
  // only req.blade's cache plus req.tid's state: TSO (the PSO read barrier erases pending-
  // write map entries, which is thread-confined but not concurrency-safe against the map's
  // other entries... see rack.cc), prefetching off (installs/re-arms mutate per-blade
  // tables at arbitrary points), the frame present with a passing domain check, and
  // writable when the op writes. Non-mutating; no epoch/drain pumping.
  MIND_PARALLEL_PHASE [[nodiscard]] bool OwnerHitEligible(const AccessRequest& req) const;

  // Executes one OwnerHitEligible-approved hit: LRU touch + dirty bit on req.blade's
  // cache only, latency = local_cache_hit, counters into `scratch`. Bit-identical in
  // outcome to Access at the same clock (the skipped memo priming and scheduled-event
  // pumps are outcome-invariant below the engine's safety horizon).
  MIND_PARALLEL_PHASE AccessResult AccessOwnedHit(const AccessRequest& req,
                                                  OwnerHitScratch* scratch);

  // Merges a shard's scratch counters into RackStats (serialized; engine calls it at
  // phase barriers).
  MIND_SERIALIZED_PATH void FoldOwnerHits(const OwnerHitScratch& scratch) {
    stats_.total_accesses += scratch.total_accesses;
    stats_.local_hits += scratch.local_hits;
  }

  // Earliest bounded-splitting epoch boundary Access would run implicitly — the rack's
  // NextSerialBoundary for the owner drain (ops at or past it stay serialized so the
  // epoch fires exactly as under serial replay).
  [[nodiscard]] SimTime NextSplittingEpochEnd() const { return splitting_.next_epoch_end(); }

  // --- Observability (src/obs/, docs/observability.md) ---
  //
  // Installs the semantic-event sink on the rack and its fault plane + splitting
  // controller. Every emission site sits on the serialized path (the Access miss
  // path, drains, epochs, resets); with a null sink each hook is one pointer
  // compare, and nothing at all is added before the TryLocalHit fast exit.
  void SetTraceSink(TraceSink* sink) {
    trace_ = sink;
    fault_plane_.SetTraceSink(sink);
    splitting_.SetTraceSink(sink);
  }

  // --- Introspection (benches & tests) ---

  [[nodiscard]] const RackConfig& config() const { return config_; }
  [[nodiscard]] const RackStats& stats() const { return stats_; }
  [[nodiscard]] CacheDirectory& directory() { return directory_; }
  [[nodiscard]] Controller& controller() { return controller_; }
  [[nodiscard]] BoundedSplitting& bounded_splitting() { return splitting_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] const Fabric& fabric() const { return fabric_; }
  [[nodiscard]] const AddressTranslator& translator() const { return translator_; }
  [[nodiscard]] const ProtectionTable& protection() const { return protection_; }
  [[nodiscard]] const StateTransitionTable& stt() const { return stt_; }
  [[nodiscard]] ComputeBlade& compute_blade(ComputeBladeId id) { return *compute_blades_[id]; }
  [[nodiscard]] MemoryBlade& memory_blade(MemoryBladeId id) { return *memory_blades_[id]; }
  [[nodiscard]] TcamCapacity& tcam_capacity() { return tcam_capacity_; }
  [[nodiscard]] FaultPlane& fault_plane() { return fault_plane_; }
  [[nodiscard]] const FaultPlane& fault_plane() const { return fault_plane_; }

  // Total match-action rules in use: translation + protection + the materialized STT.
  [[nodiscard]] uint64_t MatchActionRules() const {
    return translator_.rule_count() + protection_.rule_count() + stt_.rule_count();
  }

 private:
  // AccessChannel implementation over the blade-local hit path (defined in rack.cc).
  class Channel;
  // Per-blade ChannelGroup over those channels (defined in rack.cc).
  class Group;

  // Result of delivering one invalidation wave to a set of blades.
  struct InvalidationWave {
    SimTime max_ack_at_requester = 0;  // Slowest ACK as seen by the requesting blade.
    SimTime flush_landed = 0;          // When the last flushed page reached memory.
    SimTime max_queue_wait = 0;
    SimTime max_tlb = 0;
    uint64_t flushed = 0;
    uint64_t false_invalidations = 0;
    uint64_t clean_drops = 0;
  };

  // Invalidates `targets` for the entry's region on behalf of `requester` (which asked for
  // `requested_page`; pass UINT64_MAX for forced/capacity invalidations with no requested
  // page). Performs flush write-backs to memory blades and routes ACKs to the requester.
  InvalidationWave InvalidateBlades(SharerMask targets, const DirectoryEntry& entry,
                                    uint64_t requested_page, ComputeBladeId requester,
                                    SimTime t);

  // Finds or lazily creates the directory entry covering `va`, evicting under capacity
  // pressure. Advances `t` by any control-plane work performed. Null on kFault (no vma).
  DirectoryEntry* EnsureDirectoryEntry(VirtAddr va, SimTime& t, Status* error);

  // Fetches the page containing `va` from its memory blade towards `requester`. Returns the
  // data-arrival time; `bytes` receives the page payload when data storage is on.
  // `fabric_wait` (optional) accumulates the fetch's port/stage queueing delay.
  SimTime FetchPageFromMemory(VirtAddr va, ComputeBladeId requester, SimTime start,
                              const PageData** bytes, SimTime* fabric_wait = nullptr);

  // Writes one page back to its memory blade (flush or eviction), returning landing time.
  SimTime WriteBackPage(ComputeBladeId from, uint64_t page, const PageData* data,
                        SimTime start);

  // Current backing bytes of the page containing `va` (store_data mode only; null
  // otherwise, or when the va is no longer translated). Prefetch installs re-read the
  // memory blade here instead of holding payload pointers across in-flight time.
  [[nodiscard]] const PageData* PeekPageBytes(VirtAddr va);

  // Inserts a fetched page into the requester's cache, handling dirty LRU eviction.
  // `prefetched` installs speculatively: marked Frame::prefetched and linked at the
  // blade's adaptive cold LRU depth instead of MRU (prefetch-aware eviction priority).
  void InsertIntoCache(ComputeBladeId blade, uint64_t page, bool writable,
                       const PageData* bytes, SimTime now, ProtDomainId pdid = 0,
                       bool prefetched = false);

  // Drops cached pages of [base, base+size) at every compute blade, writing dirty pages
  // back to memory first. Used on permission changes and teardown.
  void ShootDownRange(VirtAddr base, uint64_t size, bool write_back);

  // Executes any scheduled fault-plane drain due at or before `now`, at its *scheduled*
  // clock (never `now`), so fabric interleaving is identical across replay modes. Called
  // at the top of every Access and from AdvanceTo; the common case is one compare inside
  // FaultPlane::TakeDueDrain.
  void MaybeRunScheduledDrains(SimTime now) {
    while (const FaultPlaneConfig::BladeDrain* d = fault_plane_.TakeDueDrain(now)) {
      (void)DrainMemoryBlade(d->blade, d->dst, d->at);
    }
  }

  // PSO support: pending-store tracking per thread.
  struct PendingWrite {
    VirtAddr begin = 0;
    VirtAddr end = 0;
    SimTime completion = 0;
  };
  SimTime PsoReadBarrier(ThreadId tid, VirtAddr va, SimTime now);
  void PsoRecordWrite(ThreadId tid, VirtAddr va, SimTime completion);
  // Read-only flavor for PeekLocalHit: same barrier value, no pruning (pruning only drops
  // entries whose completion can never raise a later barrier, so skipping it is invisible).
  [[nodiscard]] SimTime PsoPeekBarrier(ThreadId tid, VirtAddr va, SimTime now) const;

  // --- Prefetch internals (serialized drain only; see SetPrefetchPolicy above) ---

  // Lazily creates the (thread, blade) engine on the thread's first demand fault.
  PrefetchEngine& EnsurePrefetchEngine(ThreadId tid);
  // Installs arrived in-flight prefetches for `blade` (discarding stale ones) — runs at
  // the top of every Access so a covered fault becomes a plain local hit.
  void InstallReadyPrefetches(ComputeBladeId blade, SimTime now);
  // Records the fault, predicts ahead and issues speculative fetches starting at the
  // demand access's completion time `done`.
  void PrefetchAfterFault(const AccessRequest& req, uint64_t page, SimTime done);
  // The issue half of PrefetchAfterFault, also driven by re-arm requests (a useful touch
  // past the issued window's midpoint, possibly observed by a channel/group commit):
  // predicts from `page` and issues `engine`'s next window starting at `start`.
  void IssuePrefetches(PrefetchEngine& engine, ComputeBladeId blade_id, ProtDomainId pdid,
                       uint64_t page, SimTime start);
  // The prefetch slice of the miss path, out of line to keep Access's hit path tight:
  // installs arrived pages (retrying the hit), joins in-flight fetches (late) and
  // classifies prefetched write-upgrades. True when the access was fully serviced.
  bool ServiceViaPrefetch(const AccessRequest& req, SimTime now, uint64_t page,
                          DramCache::Frame** frame, bool* pslot_valid, AccessResult* res);

  // The blade-local hit path of Access (steps 0/1): pipeline-memo short-circuit, then the
  // MMU/DRAM-cache probe with domain re-validation. `now` is the post-PSO-barrier time.
  // Mutates LRU recency (also when a present frame fails the hit checks, matching the
  // historical Lookup-then-fall-through behavior) and primes the pipeline memo on
  // success. Does NOT touch stats. On failure, `*frame_out` / `*pslot_valid_out` return
  // the probed frame and memo validity so the fault path does not redo either.
  bool TryLocalHit(const AccessRequest& req, SimTime now, AccessResult* res,
                   DramCache::Frame** frame_out, bool* pslot_valid_out);

  // --- Fused pipeline cache (the ASIC's single-pass match-action traversal) ---
  //
  // Per-thread memo of {protection verdict, cached frame, directory entry} for the last
  // page the thread touched. A slot is valid only while the generation it snapshotted
  // still equals PipelineGeneration(), which is the sum of monotonic mutation counters of
  // every structure the verdict depends on: the directory (create/remove/split/merge and
  // capacity evictions), the protection table (mmap/mprotect/grant/revoke/munmap), the
  // translator (blade ranges, migration outliers) and `cache_epoch_` (bumped whenever any
  // blade's DRAM cache drops or evicts frames: invalidation waves, shoot-downs, LRU
  // evictions). Any control-plane mutation, invalidation wave, split/merge or migration
  // therefore invalidates every slot at once — stale translations, permissions, directory
  // pointers and frame pointers can never be replayed.
  static constexpr uint32_t kPipelineSlots = 256;  // Power of two; direct-mapped by tid.
  struct PipelineSlot {
    uint64_t generation = UINT64_MAX;
    uint64_t page = UINT64_MAX;
    ThreadId tid = 0;
    ComputeBladeId blade = kInvalidComputeBlade;
    ProtDomainId pdid = 0;
    bool read_ok = false;   // Protection verdict known-allowed for reads.
    bool write_ok = false;  // Protection verdict known-allowed for writes.
    DramCache::Frame* frame = nullptr;
    DirectoryEntry* dir_entry = nullptr;
  };
  [[nodiscard]] uint64_t PipelineGeneration() const {
    return directory_.version() + protection_.version() + translator_.version() +
           cache_epoch_;
  }
  void PopulatePipeline(const AccessRequest& req, uint64_t page, DramCache::Frame* frame,
                        DirectoryEntry* dir_entry);

  // Direct-mapped translation memo (the switch's translation MAU result for a page),
  // validated against the translator's mutation counter.
  struct TranslationSlot {
    uint64_t page = UINT64_MAX;
    uint64_t version = UINT64_MAX;
    Translation tr;
  };
  // Translates the page containing `va` through the memo; false on kFault.
  bool TranslatePage(VirtAddr va, Translation* out);

  RackConfig config_;

  // Data plane.
  TcamCapacity tcam_capacity_;
  AddressTranslator translator_;
  ProtectionTable protection_;
  CacheDirectory directory_;
  StateTransitionTable stt_;

  // Control plane.
  BoundedSplitting splitting_;
  Controller controller_;

  // Fabric + blades. The fabric owns the rack's single LatencyModel; lat_ is a view of it
  // for the many call sites that only need constants.
  Fabric fabric_;
  const LatencyModel& lat_;
  FaultPlane fault_plane_;
  std::vector<std::unique_ptr<ComputeBlade>> compute_blades_;
  std::vector<std::unique_ptr<MemoryBlade>> memory_blades_;

  RackStats stats_;
  // Semantic trace sink (null = tracing off). Written to only from serialized
  // paths, like stats_; see SetTraceSink above.
  TraceSink* trace_ = nullptr;
  std::unordered_map<ThreadId, std::vector<PendingWrite>> pending_writes_;
  std::array<PipelineSlot, kPipelineSlots> pipeline_{};
  std::array<TranslationSlot, kPipelineSlots> translation_cache_{};
  // Bumped whenever frames leave any blade's DRAM cache (see PipelineGeneration above).
  uint64_t cache_epoch_ = 0;
  // Physical arena on destination blades for migrated ranges; grows monotonically. A full
  // implementation would reuse the balanced allocator; a bump cursor suffices for the
  // migration feature and keeps PAs disjoint from the identity-mapped partitions.
  PhysAddr migration_cursor_ = 1ull << 44;
  // Prefetch state: per-thread engines plus per-blade in-flight/unused tables (mutated on
  // the serialized drain; channel commits touch only their own blade's entry). Kept after
  // the hot pipeline/translation memo arrays so their cache placement is unchanged.
  std::unordered_map<ThreadId, std::unique_ptr<PrefetchEngine>> prefetch_engines_;
  std::vector<BladePrefetchState> blade_prefetch_;
  std::vector<uint64_t> prefetch_scratch_;
};

}  // namespace mind

#endif  // MIND_SRC_CORE_RACK_H_
