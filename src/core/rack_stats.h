// Aggregate rack-level counters backing Figures 5-9.
#ifndef MIND_SRC_CORE_RACK_STATS_H_
#define MIND_SRC_CORE_RACK_STATS_H_

#include <cstdint>

#include "src/core/access.h"

namespace mind {

struct RackStats {
  uint64_t total_accesses = 0;
  uint64_t local_hits = 0;
  uint64_t remote_accesses = 0;      // Accesses that crossed the network (Fig. 6).
  uint64_t invalidations_sent = 0;   // Invalidation requests delivered to blades (Fig. 6).
  uint64_t pages_flushed = 0;        // Dirty pages written back due to invalidation (Fig. 6).
  uint64_t false_invalidations = 0;  // Flushed dirty pages that were not requested (§4.3.1).
  uint64_t clean_drops = 0;          // Clean cached pages dropped by invalidations.
  uint64_t evict_writebacks = 0;     // Dirty pages written back on LRU eviction (not Fig. 6).
  uint64_t permission_denials = 0;
  uint64_t directory_capacity_evictions = 0;  // Forced invalidations under SRAM pressure.
  uint64_t write_upgrades = 0;       // S->M upgrades satisfied without a data fetch.

  // Transition counts keyed by (previous state, invalidation needed).
  uint64_t transitions_i_to_s = 0;
  uint64_t transitions_i_to_m = 0;
  uint64_t transitions_s_to_s = 0;
  uint64_t transitions_s_to_m = 0;
  uint64_t transitions_m_stay = 0;   // Owner fault inside its own M region.
  uint64_t transitions_m_to_s = 0;
  uint64_t transitions_m_to_m = 0;   // Ownership handoff.

  LatencyBreakdown breakdown_sums;   // Summed over remote accesses.

  [[nodiscard]] double PerAccess(uint64_t counter) const {
    return total_accesses == 0
               ? 0.0
               : static_cast<double>(counter) / static_cast<double>(total_accesses);
  }

  RackStats Delta(const RackStats& earlier) const {
    RackStats d = *this;
    d.total_accesses -= earlier.total_accesses;
    d.local_hits -= earlier.local_hits;
    d.remote_accesses -= earlier.remote_accesses;
    d.invalidations_sent -= earlier.invalidations_sent;
    d.pages_flushed -= earlier.pages_flushed;
    d.false_invalidations -= earlier.false_invalidations;
    d.clean_drops -= earlier.clean_drops;
    d.evict_writebacks -= earlier.evict_writebacks;
    d.permission_denials -= earlier.permission_denials;
    d.directory_capacity_evictions -= earlier.directory_capacity_evictions;
    d.write_upgrades -= earlier.write_upgrades;
    d.transitions_i_to_s -= earlier.transitions_i_to_s;
    d.transitions_i_to_m -= earlier.transitions_i_to_m;
    d.transitions_s_to_s -= earlier.transitions_s_to_s;
    d.transitions_s_to_m -= earlier.transitions_s_to_m;
    d.transitions_m_stay -= earlier.transitions_m_stay;
    d.transitions_m_to_s -= earlier.transitions_m_to_s;
    d.transitions_m_to_m -= earlier.transitions_m_to_m;
    d.breakdown_sums = breakdown_sums - earlier.breakdown_sums;
    return d;
  }
};

}  // namespace mind

#endif  // MIND_SRC_CORE_RACK_STATS_H_
