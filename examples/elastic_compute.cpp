// Transparent compute elasticity — the property that motivates MIND (§1, §2.2).
//
// A long-running job starts on ONE compute blade. Mid-run, the operator grants it three
// more blades; new worker threads spawn there and immediately operate on the same shared
// state — no data migration, no resharding, no application logic. The in-network directory
// absorbs the new sharers. Swap-based disaggregation (FastSwap et al.) cannot do this step
// at all: the process is pinned to its original blade.
//
// The job: striped increments over a shared counter array, with a verification pass that
// every increment from every phase is visible at the end.
#include <cstdio>
#include <vector>

#include "src/core/mind.h"

int main() {
  using namespace mind;

  RackConfig config;
  config.num_compute_blades = 4;
  config.num_memory_blades = 2;
  config.memory_blade_capacity = 1ull << 30;
  config.compute_cache_bytes = 32ull << 20;
  config.store_data = true;
  Rack rack(config);

  constexpr uint64_t kCounters = 8192;
  const ProcessId pid = *rack.Exec("elastic-job");
  const VirtAddr counters = *rack.Mmap(pid, kCounters * sizeof(uint64_t),
                                       PermClass::kReadWrite);

  auto bump_range = [&](ThreadId tid, uint64_t begin, uint64_t end, SimTime now) -> SimTime {
    for (uint64_t i = begin; i < end; ++i) {
      uint64_t value = 0;
      const VirtAddr va = counters + i * sizeof(uint64_t);
      now = *rack.ReadBytes(tid, va, &value, sizeof(value), now);
      ++value;
      now = *rack.WriteBytes(tid, va, &value, sizeof(value), now);
    }
    return now;
  };

  // --- Phase 1: one blade, one worker (the "before elasticity" world). ---
  const ThreadId w0 = rack.SpawnThread(pid, 0)->tid;
  SimTime now = bump_range(w0, 0, kCounters, 0);
  std::printf("phase 1: 1 worker on 1 blade bumped all %llu counters (t=%.2f ms)\n",
              static_cast<unsigned long long>(kCounters), ToMillis(now));

  // --- Phase 2: scale out to 4 blades. The new threads share the PID, so the switch's
  // translation/protection rules already cover them; first touches fault their pages over
  // coherently (M-state handoffs from blade 0). ---
  std::vector<ThreadId> workers = {w0};
  for (int blade = 1; blade < 4; ++blade) {
    workers.push_back(rack.SpawnThread(pid, static_cast<ComputeBladeId>(blade))->tid);
  }
  std::printf("phase 2: scaled out to %zu workers across 4 blades — no data moved\n",
              workers.size());

  const uint64_t stripe = kCounters / workers.size();
  std::vector<SimTime> done(workers.size(), now);
  for (size_t w = 0; w < workers.size(); ++w) {
    done[w] = bump_range(workers[w], static_cast<uint64_t>(w) * stripe,
                         (w + 1 == workers.size()) ? kCounters
                                                   : (static_cast<uint64_t>(w) + 1) * stripe,
                         now);
  }
  SimTime phase2_end = 0;
  for (SimTime t : done) {
    phase2_end = std::max(phase2_end, t);
  }
  const double speedup = static_cast<double>(now) / static_cast<double>(phase2_end - now);
  std::printf("phase 2 finished in %.2f ms (%.2fx vs phase 1's %.2f ms)\n",
              ToMillis(phase2_end - now), speedup, ToMillis(now));
  now = phase2_end;

  // --- Verify: every counter must be exactly 2 (one bump per phase), read from a blade
  // that did NOT write most of them. ---
  uint64_t wrong = 0;
  for (uint64_t i = 0; i < kCounters; i += 37) {
    uint64_t value = 0;
    now = *rack.ReadBytes(workers[3], counters + i * sizeof(uint64_t), &value, sizeof(value),
                          now);
    wrong += value == 2 ? 0 : 1;
  }

  const RackStats& s = rack.stats();
  std::printf("\nownership handoffs (M->M/M->S) during scale-out: %llu\n",
              static_cast<unsigned long long>(s.transitions_m_to_m + s.transitions_m_to_s));
  std::printf("verification: %s (%llu mismatches)\n", wrong == 0 ? "OK" : "FAILURE",
              static_cast<unsigned long long>(wrong));
  return wrong == 0 ? 0 : 1;
}
