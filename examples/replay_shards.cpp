// Sharded trace replay, end to end: generate a multi-blade workload, replay it on a MIND
// rack with N replay shards (`--shards=N`, default 1), and print the merged report plus
// the per-shard breakdown.
//
// Replay results are bit-identical for every shard count — sharding changes how fast the
// simulator runs, never what it computes. Try `--shards=1` and `--shards=4` and compare
// the reported makespan, counters and latency percentiles: they match exactly, while the
// wall-clock drops on multi-core hosts (and even single-core hosts gain from the batched
// fast path).
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/mind_system.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

using namespace mind;

int main(int argc, char** argv) {
  // --shards=N, or MIND_REPLAY_SHARDS as the fallback (shared bench/example parser).
  const int shards = bench::ShardsFromArgs(argc, argv);
  // --prefetch=<none|nextn|stride>, or MIND_PREFETCH as the fallback: opt the replay
  // into pattern-aware prefetching (src/prefetch/prefetch.h). Default: none.
  const PrefetchPolicy prefetch = bench::PrefetchFromArgs(argc, argv);
  // --trace=FILE (or MIND_TRACE): record a TraceScope and export Chrome/Perfetto JSON.
  // --profile (or MIND_PROFILE=1): wall-clock per-phase profile, printed after the run.
  const std::string trace_path = bench::TraceFromArgs(argc, argv);
  const bool profile = bench::ProfileFromArgs(argc, argv);

  RackConfig config;
  config.num_compute_blades = 4;
  config.num_memory_blades = 4;
  config.compute_cache_bytes = 64ull << 20;
  config.splitting.epoch_length = 5 * kMillisecond;
  MindSystem system(config);

  // KVS-style mix at 4 blades: cache-resident per-thread partitions (long blade-local
  // runs the AccessChannel fast path batches; the sequential scan also gives the warmup
  // faults a stride for --prefetch to detect) plus a zipfian shared table with sparse
  // writes — real cross-shard invalidation waves for the deterministic merge to sequence.
  WorkloadSpec spec;
  spec.name = "kvs-mix";
  spec.num_blades = 4;
  spec.threads_per_blade = 2;
  spec.private_pages_per_thread = 2048;
  spec.private_pattern = Pattern::kSequential;
  spec.private_write_fraction = 0.5;
  spec.shared_pages = 2048;
  spec.shared_pattern = Pattern::kZipfian;
  spec.shared_access_fraction = 0.02;
  spec.shared_write_fraction = 0.05;
  spec.accesses_per_thread = 20'000;
  spec.seed = 5;
  const WorkloadTraces traces = GenerateTraces(spec);

  ReplayOptions options;
  options.shards = shards;
  options.prefetch = prefetch;
  options.trace = !trace_path.empty();
  options.profile = profile;
  ReplayEngine engine(&system, &traces, options);
  if (const Status s = engine.Setup(); !s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const ReplayReport report = engine.Run();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();

  std::printf("workload            : %s on %s\n", report.workload.c_str(),
              report.system.c_str());
  std::printf("replay shards       : %d (requested %d)\n", engine.effective_shards(),
              shards);
  std::printf("total ops           : %llu\n",
              static_cast<unsigned long long>(report.total_ops));
  std::printf("simulated makespan  : %.3f ms\n", ToMillis(report.makespan));
  std::printf("throughput          : %.3f Mops/s (simulated)\n", report.throughput_mops);
  const HistogramSummary latency = report.latency_histogram.Summary();
  std::printf("avg latency         : %.3f us   p50 %.3f us   p99 %.3f us\n",
              report.avg_latency_us, ToMicros(latency.p50), ToMicros(latency.p99));
  std::printf("local hit rate      : %.1f%%\n",
              report.total_ops == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(report.counters.local_hits) /
                        static_cast<double>(report.total_ops));
  std::printf("invalidations       : %llu (%.4f per op)\n",
              static_cast<unsigned long long>(report.counters.invalidations),
              report.InvalidationsPerOp());
  std::printf("prefetch            : %s (issued %llu, useful %llu, late %llu, "
              "coverage %.1f%%)\n",
              ToString(prefetch), static_cast<unsigned long long>(report.prefetch.issued),
              static_cast<unsigned long long>(report.prefetch.useful),
              static_cast<unsigned long long>(report.prefetch.late),
              100.0 * report.PrefetchCoverage());
  std::printf("replay wall clock   : %.1f ms\n\n", wall_ms);

  std::printf("per-shard breakdown (parallel fast-path hits vs serialized coherence):\n");
  const auto& shard_reports = engine.shard_reports();
  uint64_t drained = 0;
  uint64_t owner_drained = 0;
  for (size_t s = 0; s < shard_reports.size(); ++s) {
    const ShardReport& sr = shard_reports[s];
    drained += sr.drained_ops;
    owner_drained += sr.owner_drained;
    std::printf("  shard %zu: %9llu parallel hits, %9llu drained ops (%llu owner-parallel), "
                "makespan %.3f ms\n",
                s, static_cast<unsigned long long>(sr.parallel_hits),
                static_cast<unsigned long long>(sr.drained_ops),
                static_cast<unsigned long long>(sr.owner_drained), ToMillis(sr.makespan));
  }
  // Drain ops that were owner-homed blade-local hits retired in owner-parallel phases
  // instead of one at a time through the global merge (src/workload/region_ownership.h).
  std::printf("owner-parallel drain: %llu of %llu drained ops (%.1f%%)\n",
              static_cast<unsigned long long>(owner_drained),
              static_cast<unsigned long long>(drained),
              drained == 0 ? 0.0
                           : 100.0 * static_cast<double>(owner_drained) /
                                 static_cast<double>(drained));
  if (options.trace) {
    bench::WriteTraceReportLine(engine, trace_path);
  }
  if (profile && engine.profiler() != nullptr) {
    bench::PrintPhaseProfile(*engine.profiler());
  }
  std::printf("\nRe-run with a different --shards=N: every number above except the wall "
              "clock stays identical.\n");
  return 0;
}
