// PageRank over shared disaggregated memory — the paper's GraphChi/GC scenario (§7.1),
// runnable end to end.
//
// The graph (CSR adjacency) and both rank arrays live in the disaggregated pool; worker
// threads on different compute blades each own a vertex range, but read neighbour ranks
// written by *other* blades every iteration. With a swap-based system this sharing is
// impossible without sharding the graph and adding message passing; on MIND it is ordinary
// shared memory, kept coherent by the in-network directory.
//
// The example verifies the distributed result against a single-threaded in-process
// reference computation, then reports the coherence traffic the iterations generated.
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/core/mind.h"

namespace {

using namespace mind;

constexpr uint32_t kVertices = 2000;
constexpr uint32_t kEdgesPerVertex = 8;
constexpr int kIterations = 5;
constexpr double kDamping = 0.85;

struct Csr {
  std::vector<uint32_t> offsets;  // kVertices + 1.
  std::vector<uint32_t> targets;
  std::vector<uint32_t> out_degree;
};

Csr BuildGraph() {
  Csr g;
  Rng rng(12345);
  ZipfianGenerator zipf(kVertices, 0.8);  // Power-law targets, like real web/social graphs.
  g.offsets.assign(kVertices + 1, 0);
  g.out_degree.assign(kVertices, kEdgesPerVertex);
  g.targets.reserve(kVertices * kEdgesPerVertex);
  for (uint32_t v = 0; v < kVertices; ++v) {
    g.offsets[v] = static_cast<uint32_t>(g.targets.size());
    for (uint32_t e = 0; e < kEdgesPerVertex; ++e) {
      g.targets.push_back(static_cast<uint32_t>(zipf.Next(rng)));
    }
  }
  g.offsets[kVertices] = static_cast<uint32_t>(g.targets.size());
  return g;
}

std::vector<double> ReferencePageRank(const Csr& g) {
  std::vector<double> rank(kVertices, 1.0 / kVertices);
  std::vector<double> next(kVertices, 0.0);
  for (int it = 0; it < kIterations; ++it) {
    std::fill(next.begin(), next.end(), (1.0 - kDamping) / kVertices);
    for (uint32_t v = 0; v < kVertices; ++v) {
      const double share = kDamping * rank[v] / g.out_degree[v];
      for (uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        next[g.targets[e]] += share;
      }
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace

int main() {
  RackConfig config;
  config.num_compute_blades = 4;
  config.num_memory_blades = 2;
  config.memory_blade_capacity = 1ull << 30;
  config.compute_cache_bytes = 16ull << 20;
  config.store_data = true;
  Rack rack(config);

  const ProcessId pid = *rack.Exec("pagerank");
  std::vector<ThreadId> workers;
  for (int blade = 0; blade < config.num_compute_blades; ++blade) {
    workers.push_back(rack.SpawnThread(pid, static_cast<ComputeBladeId>(blade))->tid);
  }

  const Csr graph = BuildGraph();

  // Lay the graph and the two rank arrays out in disaggregated memory.
  const VirtAddr va_offsets = *rack.Mmap(pid, (kVertices + 1) * sizeof(uint32_t),
                                         PermClass::kReadWrite);
  const VirtAddr va_targets = *rack.Mmap(pid, graph.targets.size() * sizeof(uint32_t),
                                         PermClass::kReadWrite);
  const VirtAddr va_rank = *rack.Mmap(pid, kVertices * sizeof(double), PermClass::kReadWrite);
  const VirtAddr va_next = *rack.Mmap(pid, kVertices * sizeof(double), PermClass::kReadWrite);

  // Load the graph from blade 0 (one-time ingest).
  SimTime now = 0;
  now = *rack.WriteBytes(workers[0], va_offsets, graph.offsets.data(),
                         graph.offsets.size() * sizeof(uint32_t), now);
  now = *rack.WriteBytes(workers[0], va_targets, graph.targets.data(),
                         graph.targets.size() * sizeof(uint32_t), now);
  const std::vector<double> init(kVertices, 1.0 / kVertices);
  now = *rack.WriteBytes(workers[0], va_rank, init.data(), kVertices * sizeof(double), now);

  std::printf("pagerank: %u vertices, %zu edges on disaggregated memory, %zu workers\n",
              kVertices, graph.targets.size(), workers.size());

  // Iterate: each worker handles a contiguous vertex range on its own blade; per-iteration
  // "barriers" are modeled by advancing every worker to the same logical time.
  const uint32_t span = kVertices / static_cast<uint32_t>(workers.size());
  for (int it = 0; it < kIterations; ++it) {
    // Reset `next` (worker 0).
    const std::vector<double> base(kVertices, (1.0 - kDamping) / kVertices);
    now = *rack.WriteBytes(workers[0], va_next, base.data(), kVertices * sizeof(double), now);

    std::vector<SimTime> done(workers.size(), now);
    for (size_t w = 0; w < workers.size(); ++w) {
      const uint32_t begin = static_cast<uint32_t>(w) * span;
      const uint32_t end = w + 1 == workers.size() ? kVertices : begin + span;
      SimTime t = now;
      for (uint32_t v = begin; v < end; ++v) {
        double rank_v = 0.0;
        t = *rack.ReadBytes(workers[w], va_rank + v * sizeof(double), &rank_v, sizeof(double),
                            t);
        const double share = kDamping * rank_v / graph.out_degree[v];
        for (uint32_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
          const uint32_t tgt = graph.targets[e];
          double acc = 0.0;
          t = *rack.ReadBytes(workers[w], va_next + tgt * sizeof(double), &acc, sizeof(double),
                              t);
          acc += share;
          t = *rack.WriteBytes(workers[w], va_next + tgt * sizeof(double), &acc,
                               sizeof(double), t);
        }
      }
      done[w] = t;
    }
    // Barrier.
    for (SimTime t : done) {
      now = std::max(now, t);
    }
    // Swap rank <- next (copy via worker 0).
    std::vector<double> buffer(kVertices);
    now = *rack.ReadBytes(workers[0], va_next, buffer.data(), kVertices * sizeof(double), now);
    now = *rack.WriteBytes(workers[0], va_rank, buffer.data(), kVertices * sizeof(double), now);
    std::printf("  iteration %d done at t=%.2f ms\n", it + 1, ToMillis(now));
  }

  // Verify against the reference.
  std::vector<double> result(kVertices);
  now = *rack.ReadBytes(workers[1], va_rank, result.data(), kVertices * sizeof(double), now);
  const std::vector<double> expected = ReferencePageRank(graph);
  double max_err = 0.0;
  for (uint32_t v = 0; v < kVertices; ++v) {
    max_err = std::max(max_err, std::fabs(result[v] - expected[v]));
  }

  const RackStats& s = rack.stats();
  std::printf("\nmax |distributed - reference| = %.3e\n", max_err);
  std::printf("coherence: %llu invalidations, %llu flushed, %llu false invalidations\n",
              static_cast<unsigned long long>(s.invalidations_sent),
              static_cast<unsigned long long>(s.pages_flushed),
              static_cast<unsigned long long>(s.false_invalidations));
  const bool ok = max_err < 1e-9;
  std::printf("%s\n", ok ? "OK" : "FAILURE");
  return ok ? 0 : 1;
}
