// Shared key-value store on disaggregated memory — the paper's Native-KVS scenario (§7.1).
//
// A hash table lives entirely in the disaggregated memory pool; worker threads on every
// compute blade serve GET/PUT requests against it. There is no sharding logic and no RPC:
// every worker addresses the same table through ordinary loads/stores, and MIND's in-network
// directory keeps entries coherent. This is exactly the "transparent compute elasticity"
// swap-based systems cannot offer — with FastSwap the table would be trapped on one blade.
//
// The store uses open addressing with linear probing; each bucket holds a fixed-size
// key/value pair. Values carry a version stamp so the example can verify read-your-writes
// and cross-blade visibility.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/mind.h"

namespace {

using namespace mind;

constexpr uint64_t kBuckets = 4096;
constexpr size_t kKeySize = 16;
constexpr size_t kValueSize = 48;

struct Bucket {
  uint8_t used;
  char key[kKeySize];
  char value[kValueSize];
};
static_assert(sizeof(Bucket) < 128, "bucket should stay cache-friendly");

// A tiny KVS client bound to one worker thread on one blade. All clients share the same
// table VA; coherence is MIND's problem, not ours.
class KvsClient {
 public:
  KvsClient(Rack* rack, ThreadId tid, VirtAddr table) : rack_(rack), tid_(tid), table_(table) {}

  // Returns the simulated completion time.
  SimTime Put(const std::string& key, const std::string& value, SimTime now) {
    uint64_t idx = Hash(key) % kBuckets;
    for (uint64_t probe = 0; probe < kBuckets; ++probe, idx = (idx + 1) % kBuckets) {
      Bucket b{};
      now = Load(idx, &b, now);
      if (b.used == 0 || std::strncmp(b.key, key.c_str(), kKeySize) == 0) {
        b.used = 1;
        std::snprintf(b.key, kKeySize, "%s", key.c_str());
        std::snprintf(b.value, kValueSize, "%s", value.c_str());
        return Store(idx, b, now);
      }
    }
    std::fprintf(stderr, "table full\n");
    return now;
  }

  SimTime Get(const std::string& key, std::string* out, SimTime now) {
    uint64_t idx = Hash(key) % kBuckets;
    for (uint64_t probe = 0; probe < kBuckets; ++probe, idx = (idx + 1) % kBuckets) {
      Bucket b{};
      now = Load(idx, &b, now);
      if (b.used == 0) {
        out->clear();
        return now;
      }
      if (std::strncmp(b.key, key.c_str(), kKeySize) == 0) {
        *out = b.value;
        return now;
      }
    }
    out->clear();
    return now;
  }

 private:
  static uint64_t Hash(const std::string& s) {
    uint64_t h = 1469598103934665603ull;
    for (char c : s) {
      h = (h ^ static_cast<uint64_t>(c)) * 1099511628211ull;
    }
    return h;
  }

  SimTime Load(uint64_t idx, Bucket* b, SimTime now) {
    return *rack_->ReadBytes(tid_, table_ + idx * sizeof(Bucket), b, sizeof(Bucket), now);
  }
  SimTime Store(uint64_t idx, const Bucket& b, SimTime now) {
    return *rack_->WriteBytes(tid_, table_ + idx * sizeof(Bucket), &b, sizeof(Bucket), now);
  }

  Rack* rack_;
  ThreadId tid_;
  VirtAddr table_;
};

}  // namespace

int main() {
  RackConfig config;
  config.num_compute_blades = 4;
  config.num_memory_blades = 2;
  config.memory_blade_capacity = 1ull << 30;
  config.compute_cache_bytes = 32ull << 20;
  config.store_data = true;
  Rack rack(config);

  const ProcessId pid = *rack.Exec("shared-kvs");
  const VirtAddr table = *rack.Mmap(pid, kBuckets * sizeof(Bucket), PermClass::kReadWrite);

  // One worker per compute blade, all serving the same table.
  std::vector<KvsClient> workers;
  for (int blade = 0; blade < config.num_compute_blades; ++blade) {
    const ThreadId tid = rack.SpawnThread(pid, static_cast<ComputeBladeId>(blade))->tid;
    workers.emplace_back(&rack, tid, table);
  }

  std::printf("shared KVS: %llu buckets (%llu KB) on disaggregated memory, %d workers\n\n",
              static_cast<unsigned long long>(kBuckets),
              static_cast<unsigned long long>(kBuckets * sizeof(Bucket) / 1024),
              config.num_compute_blades);

  // Phase 1: each worker PUTs its own keys.
  SimTime now = 0;
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 8; ++i) {
      now = workers[static_cast<size_t>(w)].Put("w" + std::to_string(w) + ":key" + std::to_string(i),
                                                "value-" + std::to_string(w * 100 + i), now);
    }
  }
  std::printf("phase 1: 32 PUTs from 4 blades done at t=%.1f us\n", ToMicros(now));

  // Phase 2: every worker GETs keys written by *other* blades — cross-blade coherence.
  int correct = 0;
  int total = 0;
  for (int w = 0; w < 4; ++w) {
    for (int other = 0; other < 4; ++other) {
      for (int i = 0; i < 8; i += 3) {
        std::string got;
        now = workers[static_cast<size_t>(w)].Get(
            "w" + std::to_string(other) + ":key" + std::to_string(i), &got, now);
        ++total;
        correct += got == "value-" + std::to_string(other * 100 + i) ? 1 : 0;
      }
    }
  }
  std::printf("phase 2: cross-blade GETs %d/%d correct at t=%.1f us\n", correct, total,
              ToMicros(now));

  // Phase 3: overwrite from one blade, observe from another (freshness).
  now = workers[0].Put("w2:key0", "OVERWRITTEN-BY-BLADE-0", now);
  std::string got;
  now = workers[3].Get("w2:key0", &got, now);
  std::printf("phase 3: blade 3 reads blade 0's overwrite: \"%s\"\n", got.c_str());

  const RackStats& s = rack.stats();
  std::printf("\ncoherence activity: %llu invalidations, %llu pages flushed, "
              "%llu M->S / %llu S->M transitions\n",
              static_cast<unsigned long long>(s.invalidations_sent),
              static_cast<unsigned long long>(s.pages_flushed),
              static_cast<unsigned long long>(s.transitions_m_to_s),
              static_cast<unsigned long long>(s.transitions_s_to_m));

  const bool ok = correct == total && got == "OVERWRITTEN-BY-BLADE-0";
  std::printf("%s\n", ok ? "OK" : "FAILURE");
  return ok ? 0 : 1;
}
