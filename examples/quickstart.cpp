// Quickstart: bring up a MIND rack, allocate disaggregated memory, and share it
// transparently between threads running on *different* compute blades.
//
// This is the paper's headline capability: a process's threads spread across blades while
// reading and writing one coherent address space — no application changes, no message
// passing. The in-network directory keeps every byte coherent.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/mind.h"

int main() {
  using namespace mind;

  // 1. Configure a small rack: 2 compute blades + 2 memory blades behind one programmable
  //    switch. store_data=true moves real bytes (examples/tests); benches run metadata-only.
  RackConfig config;
  config.num_compute_blades = 2;
  config.num_memory_blades = 2;
  config.memory_blade_capacity = 1ull << 30;  // 1 GB per memory blade.
  config.compute_cache_bytes = 64ull << 20;   // 64 MB local DRAM cache per compute blade.
  config.store_data = true;
  Rack rack(config);

  // 2. Start a process and place one thread on each compute blade. Both threads share the
  //    same PID — and therefore the same protection domain and address space (§6.1).
  const ProcessId pid = *rack.Exec("quickstart");
  const ThreadId alice = rack.SpawnThread(pid, /*pinned=*/0)->tid;
  const ThreadId bob = rack.SpawnThread(pid, /*pinned=*/1)->tid;

  // 3. mmap 1 MB of disaggregated memory. The control plane picks the least-loaded memory
  //    blade, installs the translation + protection rules in the switch, and returns a VA.
  const VirtAddr buf = *rack.Mmap(pid, 1 << 20, PermClass::kReadWrite);
  std::printf("mmap'd 1 MB of disaggregated memory at VA 0x%llx\n",
              static_cast<unsigned long long>(buf));

  // 4. Alice (blade 0) writes a message.
  const std::string hello = "hello from blade 0, via the in-network MMU";
  SimTime now = *rack.WriteBytes(alice, buf, hello.data(), hello.size() + 1, 0);
  std::printf("[blade 0] wrote: \"%s\"\n", hello.c_str());

  // 5. Bob (blade 1) reads it back. The switch sees blade 1's RDMA read, finds the region
  //    Modified at blade 0, invalidates it there (flushing the dirty page to its memory
  //    blade), and serves blade 1 the fresh data — the M->S transition of Fig. 7.
  char readback[128] = {};
  now = *rack.ReadBytes(bob, buf, readback, sizeof(readback), now);
  std::printf("[blade 1] read:  \"%s\"\n", readback);

  // 6. Inspect what the coherence machinery did.
  const RackStats& stats = rack.stats();
  std::printf("\n--- rack stats ---\n");
  std::printf("accesses:       %llu (%llu local hits, %llu remote)\n",
              static_cast<unsigned long long>(stats.total_accesses),
              static_cast<unsigned long long>(stats.local_hits),
              static_cast<unsigned long long>(stats.remote_accesses));
  std::printf("invalidations:  %llu (pages flushed: %llu)\n",
              static_cast<unsigned long long>(stats.invalidations_sent),
              static_cast<unsigned long long>(stats.pages_flushed));
  std::printf("M->S handoffs:  %llu\n",
              static_cast<unsigned long long>(stats.transitions_m_to_s));
  std::printf("simulated time: %.2f us\n", ToMicros(now));

  const bool ok = std::strcmp(readback, hello.c_str()) == 0;
  std::printf("\n%s\n", ok ? "OK: blade 1 observed blade 0's write coherently."
                           : "FAILURE: stale read!");
  return ok ? 0 : 1;
}
