// Capability-style memory protection with in-network enforcement (§4.2).
//
// MIND decouples protection from translation: <protection-domain, vma> -> permission-class
// entries live in the switch TCAM and are checked on every remote access at line rate. This
// example plays out the paper's motivating scenario — a database server that gives each
// client session its *own* protection domain, so one session can never read another's
// buffers even though all sessions live in the same process and address space. Traditional
// per-process page tables cannot express this.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/mind.h"

int main() {
  using namespace mind;

  RackConfig config;
  config.num_compute_blades = 2;
  config.num_memory_blades = 1;
  config.memory_blade_capacity = 1ull << 30;
  config.store_data = true;
  Rack rack(config);

  // The database server process owns two session buffers.
  const ProcessId server = *rack.Exec("db-server");
  const ThreadId worker = rack.SpawnThread(server, 0)->tid;
  const VirtAddr session_a = *rack.Mmap(server, 64 * kPageSize, PermClass::kReadWrite);
  const VirtAddr session_b = *rack.Mmap(server, 64 * kPageSize, PermClass::kReadWrite);

  // Two client sessions get their own protection domains (arbitrary ids, not PIDs).
  const ProtDomainId alice = 1001;
  const ProtDomainId bob = 1002;
  // Each session may only touch its own buffer; Alice's is read-write, and she also gets a
  // read-only window into the first page of Bob's buffer (a shared result page).
  (void)rack.GrantToDomain(server, alice, session_a, 64 * kPageSize, PermClass::kReadWrite);
  (void)rack.GrantToDomain(server, bob, session_b, 64 * kPageSize, PermClass::kReadWrite);
  (void)rack.GrantToDomain(server, alice, session_b, kPageSize, PermClass::kReadOnly);

  std::printf("protection domains installed: alice=%u bob=%u\n", alice, bob);
  std::printf("switch now holds %llu protection rules\n\n",
              static_cast<unsigned long long>(rack.protection().rule_count()));

  auto access = [&](ProtDomainId domain, const char* who, VirtAddr va, AccessType type,
                    const char* what) {
    const AccessResult r =
        rack.Access(AccessRequest{worker, /*blade=*/0, domain, va, type, /*now=*/0});
    std::printf("%-6s %-5s %-28s -> %s\n", who, ToString(type), what,
                r.status.ok() ? "ALLOWED" : r.status.ToString().c_str());
    return r.status.ok();
  };

  bool ok = true;
  // Alice in her own buffer: full access.
  ok &= access(alice, "alice", session_a, AccessType::kWrite, "own buffer");
  ok &= access(alice, "alice", session_a + 63 * kPageSize, AccessType::kRead, "own buffer end");
  // Alice reading the shared result page of Bob's buffer: allowed, read-only.
  ok &= access(alice, "alice", session_b, AccessType::kRead, "bob's shared page (ro)");
  // Alice writing it: denied by the TCAM.
  ok &= !access(alice, "alice", session_b, AccessType::kWrite, "bob's shared page (ro)");
  // Alice deeper into Bob's buffer: denied outright.
  ok &= !access(alice, "alice", session_b + 8 * kPageSize, AccessType::kRead, "bob's private");
  // Bob symmetric.
  ok &= access(bob, "bob", session_b + 8 * kPageSize, AccessType::kWrite, "own buffer");
  ok &= !access(bob, "bob", session_a, AccessType::kRead, "alice's buffer");

  // The server revokes Alice's read window — e.g. the session ended.
  (void)rack.RevokeFromDomain(alice, session_b, kPageSize);
  std::printf("\nserver revoked alice's window into bob's buffer\n");
  ok &= !access(alice, "alice", session_b, AccessType::kRead, "bob's shared page (revoked)");

  std::printf("\npermission denials enforced by the switch: %llu\n",
              static_cast<unsigned long long>(rack.stats().permission_denials));
  std::printf("%s\n", ok ? "OK" : "FAILURE");
  return ok ? 0 : 1;
}
