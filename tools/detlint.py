#!/usr/bin/env python3
"""DetLint: statically enforce the determinism & phase-concurrency contract.

The replay engine's determinism contract (docs/determinism.md) has two halves:

  * RNG draws and global-counter mutation happen only on SERIALIZED paths —
    replay executes those in exact global (clock, thread) order for every shard
    count, so the draw/mutation sequence is invariant across 1/2/4/8 shards,
    channel groups on/off, and the per-op reference mode.
  * PARALLEL phases (channel Submit/Commit rounds, owner-drain sub-rounds) may
    only touch blade-/thread-/shard-confined state; counters go to per-shard
    scratch mailboxes that Fold into the system at phase barriers.

Functions state which half they belong to with MIND_SERIALIZED_PATH /
MIND_PARALLEL_PHASE (src/common/thread_annotations.h). Lambdas carry the tag as
a trailing comment on their introducer line:

    auto scan_shard = [&](int s) {  // MIND_PARALLEL_PHASE

DetLint walks the call graph from every parallel-phase root and rejects:

  parallel-rng              an RNG draw (Rng::Next*/SendWithAck/...) reachable
                            from a parallel root
  parallel-serialized-call  any other MIND_SERIALIZED_PATH function called from
                            parallel-reachable code
  parallel-counter          mutation of a global counter receiver (counters_,
                            stats_, extra_) from parallel-reachable code that
                            is not scratch or a declared mailbox
  banned-source             nondeterminism sources anywhere in src/:
                            std::random_device, rand()/srand(), time(NULL),
                            *_clock::now(), sleep_*/usleep/nanosleep,
                            std::hash<T*>
  unordered-iteration       range-for over a std::unordered_{map,set} member
                            (hash order is not deterministic across libstdc++
                            versions/ASLR; collect+sort instead)
  untagged-contract         a definition of a phase-contract method (Access,
                            Submit, Commit, Eligible, AccessOwned, Fold, ...)
                            that does not restate its phase tag

Escapes (put the marker comment line directly above the offending line):

    // detlint: allow(<rule-id>): <reason>     suppress through the next
                                               non-comment, non-blank line
    // detlint: mailbox(<name>)                declare <name> a per-shard /
                                               per-engine scratch mailbox for
                                               this file (exempts it from
                                               parallel-counter)

Frontends: a pure-regex scanner (always available, what CI runs) and a libclang
frontend (--mode libclang) that resolves functions and phase tags from the AST
via compile_commands.json when the clang python bindings are installed. Both
feed the same rule engine.

Usage:
    tools/detlint.py [--root DIR] [--mode auto|regex|libclang]
                     [--compile-commands build/compile_commands.json]
                     [--self-test] [-v]

Exit status: 0 = clean, 1 = violations, 2 = usage/internal error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Shared model
# --------------------------------------------------------------------------

SERIALIZED = "serialized"
PARALLEL = "parallel"

# Callee names that count as an RNG draw when reached from a parallel root.
RNG_DRAW_NAMES = {
    "Next", "NextBelow", "NextDouble", "NextBool",  # Rng / ZipfianGenerator
    "SendWithAck", "DeadTargetOutcome",             # fault-plane loss model
}

# Phase-contract methods: every definition must restate its tag (totality).
CONTRACT_NAMES = {
    # MemorySystem / OwnerDrainOps (src/baselines/memory_system.h)
    "Access", "AdvanceTo",
    "Eligible", "AccessOwned", "MinEligibleCost", "NextSerialBoundary", "Fold",
    # AccessChannel / ChannelGroup (src/core/access_channel.h)
    "Submit", "RunValid", "Commit", "ValidMask", "CommitMerged",
    # Fault plane (src/net/reliability.h)
    "SendWithAck",
}

# Receiver names treated as global counter blocks.
COUNTER_RECEIVERS = ("counters_", "stats_", "extra_")

# Receiver prefixes that mark per-shard / per-lane scratch.
SCRATCH_PREFIXES = ("scratch", "sc", "sh", "lane", "report", "local")

# Lowercase std-container/utility method names: never traversal targets (calls
# to them resolve to the standard library, not to repo functions).
STD_STOP_NAMES = {
    "erase", "push_back", "emplace_back", "pop_back", "insert", "find",
    "begin", "end", "rbegin", "rend", "size", "empty", "clear", "reserve",
    "resize", "count", "at", "front", "back", "emplace", "swap", "assign",
    "sort", "min", "max", "abs", "get", "reset", "release", "push", "pop",
    "top", "data", "c_str", "str", "substr", "append", "contains", "value",
    "has_value", "value_or", "emplace_hint", "lower_bound", "upper_bound",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast", "new",
    "delete", "throw", "assert", "defined", "decltype", "noexcept", "typeid",
    "alignas", "static_assert", "co_await", "co_return", "co_yield",
}


class FunctionInfo:
    """One function (or tagged lambda): name, phase tag, own body text."""

    __slots__ = ("name", "tag", "path", "line", "body_lines", "is_def",
                 "is_contract_site")

    def __init__(self, name, tag, path, line, body_lines, is_def,
                 is_contract_site=False):
        self.name = name
        self.tag = tag                  # SERIALIZED | PARALLEL | None
        self.path = path
        self.line = line                # 1-based line of the header
        self.body_lines = body_lines    # [(lineno, text)] own text, no nested fns
        self.is_def = is_def
        self.is_contract_site = is_contract_site  # looked like an override/decl


class FileInfo:
    """Per-file facts the rules need besides the function records."""

    def __init__(self, path):
        self.path = path
        self.lines = []              # raw source lines
        self.code_lines = []         # comment/string-stripped, same indexing
        self.allows = {}             # lineno -> set(rule-ids) suppressed there
        self.mailboxes = set()       # names declared scratch mailboxes
        self.unordered_names = set() # member/var names of unordered containers


class Finding:
    __slots__ = ("rule", "path", "line", "message")

    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# --------------------------------------------------------------------------
# Source preprocessing (shared by both frontends)
# --------------------------------------------------------------------------

def strip_comments_and_strings(lines):
    """Blank out comments, string and char literals, preserving line/column
    layout so line numbers and brace positions survive."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                if c == "*" and i + 1 < n and raw[i + 1] == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif c == "/" and i + 1 < n and raw[i + 1] == "/":
                buf.append(" " * (n - i))
                break
            elif c == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                buf.append("  ")
                i += 2
            elif c in "\"'":
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                    elif raw[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        i += 1
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out


ALLOW_RE = re.compile(r"//\s*detlint:\s*allow\(([\w-]+)\)")
MAILBOX_RE = re.compile(r"//\s*detlint:\s*mailbox\((\w+)\)")
COMMENT_ONLY_RE = re.compile(r"^\s*(//.*)?$")


def collect_markers(fi):
    """Resolve allow/mailbox markers. An allow marker suppresses its rule for
    every line from the marker through the next non-comment, non-blank line."""
    pending = {}  # rule -> marker line
    for idx, raw in enumerate(fi.lines):
        lineno = idx + 1
        m = MAILBOX_RE.search(raw)
        if m:
            fi.mailboxes.add(m.group(1))
        for m in ALLOW_RE.finditer(raw):
            pending.setdefault(m.group(1), lineno)
        if pending:
            for rule in pending:
                fi.allows.setdefault(lineno, set()).add(rule)
            if not COMMENT_ONLY_RE.match(raw):
                pending = {}


def allowed(fi, rule, lineno):
    return rule in fi.allows.get(lineno, set())


UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}]*?>\s*(\w+)\s*[;{=]", re.S)
UNORDERED_ALIAS_RE = re.compile(
    r"using\s+(\w+)\s*=\s*std::unordered_(?:map|set)\b")


def collect_unordered_names(fi, header_code=None):
    """Names of unordered-container members/vars declared in this file (and in
    its paired header, so .cc loops over header members are caught)."""
    for code in filter(None, ["\n".join(fi.code_lines), header_code]):
        for m in UNORDERED_DECL_RE.finditer(code):
            fi.unordered_names.add(m.group(1))
        aliases = UNORDERED_ALIAS_RE.findall(code)
        for alias in aliases:
            for m in re.finditer(r"\b%s\b\s*[&*]?\s*(\w+)\s*[,;)&]" % alias,
                                 code):
                if m.group(1) not in ("const",):
                    fi.unordered_names.add(m.group(1))


# --------------------------------------------------------------------------
# Regex frontend: function discovery
# --------------------------------------------------------------------------

TAG_TOKEN_RE = re.compile(r"\bMIND_(SERIALIZED_PATH|PARALLEL_PHASE)\b")
LAMBDA_TAG_RE = re.compile(
    r"\bauto\s+(\w+)\s*=\s*\[.*//\s*MIND_(SERIALIZED_PATH|PARALLEL_PHASE)\b")
LAMBDA_HEAD_RE = re.compile(r"\bauto\s+(\w+)\s*=\s*\[")
HEADER_NAME_RE = re.compile(r"([A-Za-z_~]\w*)\s*\($")
CONTROL_HEAD_RE = re.compile(
    r"\b(if|for|while|switch|catch|do|else)\s*\($|^\s*(do|else|try)\s*$")


def _header_tag(header_code, header_raw):
    m = TAG_TOKEN_RE.search(header_code)
    if m:
        return SERIALIZED if m.group(1) == "SERIALIZED_PATH" else PARALLEL
    m = re.search(r"//\s*MIND_(SERIALIZED_PATH|PARALLEL_PHASE)\b", header_raw)
    if m:
        return SERIALIZED if m.group(1) == "SERIALIZED_PATH" else PARALLEL
    return None


def _match_paren(code, start):
    """Index just past the ')' matching the '(' at `start` (or -1)."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


ANON_LAMBDA_RE = re.compile(r"\[[^\[\]]*\]\s*(?:\(|mutable|->|$)")


def _function_name_from_header(header):
    """The identifier owning the first argument list in a function header."""
    header = header.strip()
    lam = LAMBDA_HEAD_RE.search(header)
    if lam:
        return lam.group(1)
    if ANON_LAMBDA_RE.search(header):
        return None  # anonymous lambda argument: body belongs to the caller
    i = header.find("(")
    while i > 0:
        m = re.search(r"([A-Za-z_~][\w:]*)\s*$", header[:i])
        if m:
            name = m.group(1).split("::")[-1]
            before = header[:m.start()].rstrip()
            if before.endswith(".") or before.endswith("->"):
                return None  # member call expression, not a definition
            if name not in CPP_KEYWORDS:
                return name
        # Skip attribute/macro parens like MIND_REQUIRES(mu) and look further.
        j = _match_paren(header, i)
        if j < 0:
            return None
        i = header.find("(", j)
    return None


def scan_functions_regex(fi):
    """Find function definitions + tagged declarations with a brace matcher
    over comment-stripped source. Nested lambdas become their own records and
    their lines are excluded from the enclosing function's own text."""
    functions = []
    code = fi.code_lines
    nlines = len(code)

    # line -> (start-col for statement) tracking via a linear walk.
    stmt_start = (0, 0)  # (line_idx, col)
    depth_stack = []     # open records: [func_record, body_end_marker]
    open_funcs = []      # stack of (FunctionInfo, set_of_nested_line_ranges)
    brace_depth = 0
    func_depth = []      # brace depth at which each open function's body began

    # Tagged declarations (no body): scan separately, simple and line-local.
    decl_re = re.compile(
        r"MIND_(SERIALIZED_PATH|PARALLEL_PHASE)\b([^;{]*);")
    flat = "\n".join(code)
    for m in decl_re.finditer(flat):
        line = flat.count("\n", 0, m.start()) + 1
        name = _function_name_from_header(
            "MIND_X " + m.group(2).replace("\n", " "))
        if name:
            tag = SERIALIZED if m.group(1) == "SERIALIZED_PATH" else PARALLEL
            functions.append(FunctionInfo(
                name, tag, fi.path, line, [], is_def=False,
                is_contract_site="override" in m.group(2)))

    i = 0  # char walk over `flat` for brace matching
    line_of = []
    ln = 1
    for ch in flat:
        line_of.append(ln)
        if ch == "\n":
            ln += 1

    last_stmt_break = 0
    paren_depth = 0
    k = 0
    while k < len(flat):
        ch = flat[k]
        if ch == "(":
            paren_depth += 1
        elif ch == ")":
            paren_depth = max(0, paren_depth - 1)
        elif ch == ";":
            if paren_depth == 0:
                last_stmt_break = k + 1
            k += 1
            continue
        if ch == "{":
            header = flat[last_stmt_break:k]
            header_line = line_of[min(last_stmt_break, len(flat) - 1)]
            # find first non-space char of header for a better line anchor
            hm = re.search(r"\S", header)
            if hm:
                header_line = line_of[last_stmt_break + hm.start()]
            name = None
            hstrip = header.strip()
            is_control = bool(CONTROL_HEAD_RE.search(hstrip)) or \
                hstrip.endswith("=") or hstrip == ""
            looks_func = "(" in header and not is_control and \
                not re.search(r"\b(struct|class|enum|union|namespace)\s+\w*\s*"
                              r"(final)?\s*(:[^:]|$)", hstrip) and \
                ")" in header.replace("\n", "")
            if looks_func:
                name = _function_name_from_header(header)
            if name in STD_STOP_NAMES:
                name = None
            if name and name not in CPP_KEYWORDS:
                raw_header = "\n".join(
                    fi.lines[line_of[last_stmt_break] - 1:
                             line_of[k] if line_of[k] < nlines else nlines])
                tag = _header_tag(header, raw_header)
                rec = FunctionInfo(
                    name, tag, fi.path, header_line, [], is_def=True,
                    is_contract_site="override" in header)
                functions.append(rec)
                open_funcs.append(rec)
                func_depth.append(brace_depth)
            brace_depth += 1
            last_stmt_break = k + 1
            paren_depth = 0
        elif ch == "}":
            brace_depth -= 1
            if open_funcs and brace_depth == func_depth[-1]:
                open_funcs.pop()
                func_depth.pop()
            last_stmt_break = k + 1
            paren_depth = 0
        elif ch == "\n":
            pass
        k += 1
        # Attribute own text: assign each line to the innermost open function.
    # Second pass: assign lines to innermost function via re-walk.
    _assign_own_lines(fi, functions)
    return functions


def _assign_own_lines(fi, functions):
    """Re-walk braces to attribute each code line to its innermost function."""
    flat = "\n".join(fi.code_lines)
    defs = [f for f in functions if f.is_def]
    defs_by_line = {}
    for f in defs:
        defs_by_line.setdefault(f.line, []).append(f)

    brace_depth = 0
    open_funcs = []
    func_depth = []
    last_stmt_break = 0
    ln = 1
    line_of = []
    for ch in flat:
        line_of.append(ln)
        if ch == "\n":
            ln += 1
    owner_of_line = {}

    paren_depth = 0
    k = 0
    while k < len(flat):
        ch = flat[k]
        if ch == "(":
            paren_depth += 1
        elif ch == ")":
            paren_depth = max(0, paren_depth - 1)
        if ch == "{":
            header = flat[last_stmt_break:k]
            hm = re.search(r"\S", header)
            header_line = line_of[last_stmt_break + hm.start()] if hm else \
                line_of[min(k, len(flat) - 1)]
            cands = defs_by_line.get(header_line, [])
            rec = cands.pop(0) if cands else None
            if rec is not None:
                open_funcs.append(rec)
                func_depth.append(brace_depth)
            brace_depth += 1
            last_stmt_break = k + 1
            paren_depth = 0
        elif ch == "}":
            brace_depth -= 1
            if open_funcs and brace_depth == func_depth[-1]:
                # Catch one-line bodies closed before the line's newline.
                owner_of_line.setdefault(line_of[k], open_funcs[-1])
                open_funcs.pop()
                func_depth.pop()
            last_stmt_break = k + 1
            paren_depth = 0
        elif ch == ";":
            if paren_depth == 0:
                last_stmt_break = k + 1
        elif ch == "\n":
            if open_funcs:
                owner_of_line.setdefault(line_of[k], open_funcs[-1])
        k += 1

    for idx, text in enumerate(fi.code_lines):
        lineno = idx + 1
        rec = owner_of_line.get(lineno)
        if rec is not None:
            rec.body_lines.append((lineno, text))


# --------------------------------------------------------------------------
# libclang frontend (optional)
# --------------------------------------------------------------------------

def scan_functions_libclang(fi, index, compile_args):
    """AST-accurate function discovery: names from cursors, phase tags from
    [[clang::annotate]] attributes. Body text still comes from the stripped
    source slice (the mutation/call regexes are source-level either way)."""
    import clang.cindex as ci
    tu = index.parse(fi.path, args=compile_args)
    functions = []
    fn_kinds = (ci.CursorKind.CXX_METHOD, ci.CursorKind.FUNCTION_DECL,
                ci.CursorKind.CONSTRUCTOR, ci.CursorKind.LAMBDA_EXPR)

    def annotate_tag(cur):
        for ch in cur.get_children():
            if ch.kind == ci.CursorKind.ANNOTATE_ATTR:
                if ch.spelling == "mind::parallel_phase":
                    return PARALLEL
                if ch.spelling == "mind::serialized_path":
                    return SERIALIZED
        return None

    def visit(cur):
        for ch in cur.get_children():
            if ch.location.file and ch.location.file.name != fi.path:
                continue
            if ch.kind in fn_kinds:
                ext = ch.extent
                start, end = ext.start.line, ext.end.line
                body = [(n, fi.code_lines[n - 1])
                        for n in range(start, min(end, len(fi.code_lines)) + 1)]
                functions.append(FunctionInfo(
                    ch.spelling or "<lambda>", annotate_tag(ch), fi.path,
                    start, body, is_def=ch.is_definition(),
                    is_contract_site=True))
            visit(ch)

    visit(tu.cursor)
    return functions


# --------------------------------------------------------------------------
# Rule engine
# --------------------------------------------------------------------------

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
BANNED_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::time\b|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "wall-clock time()"),
    (re.compile(r"\b\w*_clock::now\s*\("), "std::chrono clock now()"),
    (re.compile(r"\b(?:sleep_for|sleep_until|usleep|nanosleep)\s*\("),
     "sleeping primitive"),
    (re.compile(r"\bstd::hash\s*<[^<>]*\*\s*>"), "std::hash over a pointer"),
]
COUNTER_MUT_RE = re.compile(
    r"((?:\w+\s*(?:\.|->)\s*)*)(%s)\s*(?:\.|->)\s*\w+\s*"
    r"(\+\+|--|\+=|-=|\|=|&=|=[^=])" % "|".join(COUNTER_RECEIVERS))
COUNTER_INCR_RE = re.compile(
    r"(?:\+\+|--)\s*((?:\w+\s*(?:\.|->)\s*)*)(%s)\b"
    % "|".join(COUNTER_RECEIVERS))
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*([^\)]+)\)")


def _scratch_receiver(prefix):
    first = re.split(r"\.|->", prefix.strip())[0].strip() if prefix else ""
    return any(first == p or first.startswith(p + "_") or first == p + "_"
               for p in SCRATCH_PREFIXES)


class RuleEngine:
    def __init__(self, files, functions, verbose=False):
        self.files = {f.path: f for f in files}
        self.functions = functions
        self.by_name = {}
        for fn in functions:
            self.by_name.setdefault(fn.name, []).append(fn)
        self.verbose = verbose
        self.findings = []

    def _tag_of(self, name):
        """Merged tag for a bare name across all decls/defs (None if unknown
        or conflicting-with-parallel: parallel wins so traversal continues)."""
        tags = {f.tag for f in self.by_name.get(name, []) if f.tag}
        if not tags:
            return None
        if len(tags) == 1:
            return tags.pop()
        # Mixed tags (e.g. a name defined serialized in one system, parallel
        # in another): treat as parallel so traversal keeps checking bodies.
        return PARALLEL

    def report(self, rule, path, line, msg):
        fi = self.files.get(path)
        if fi is not None and allowed(fi, rule, line):
            return
        self.findings.append(Finding(rule, path, line, msg))

    # --- R: banned-source + unordered-iteration (file-wide) ---------------

    def run_filewide(self):
        for fi in self.files.values():
            for idx, text in enumerate(fi.code_lines):
                lineno = idx + 1
                for pat, what in BANNED_PATTERNS:
                    if pat.search(text):
                        self.report(
                            "banned-source", fi.path, lineno,
                            "nondeterminism source: %s (replay must be "
                            "bit-identical across shard counts; derive from "
                            "SimTime or the seeded serialized-path Rng)"
                            % what)
                for m in RANGE_FOR_RE.finditer(text):
                    expr = m.group(1).strip()
                    tail = re.split(r"\.|->", expr)[-1].strip()
                    tail = tail.split("(")[0].strip()
                    if tail in fi.unordered_names or \
                            expr in fi.unordered_names:
                        self.report(
                            "unordered-iteration", fi.path, lineno,
                            "range-for over unordered container '%s': hash "
                            "order is not deterministic; collect + sort, or "
                            "mark '// detlint: allow(unordered-iteration)' "
                            "with the order-invariance argument" % tail)

    # --- R: untagged-contract ---------------------------------------------

    def run_contract(self):
        tagged_names = set()
        for fn in self.functions:
            if fn.tag:
                tagged_names.add(fn.name)
        for fn in self.functions:
            if fn.name in CONTRACT_NAMES and fn.is_contract_site and \
                    fn.tag is None:
                self.report(
                    "untagged-contract", fn.path, fn.line,
                    "'%s' implements a phase-contract method but does not "
                    "restate MIND_SERIALIZED_PATH / MIND_PARALLEL_PHASE "
                    "(contract totality: every override declares its phase)"
                    % fn.name)

    # --- R: parallel closure rules ----------------------------------------

    def run_parallel(self):
        roots = [f for f in self.functions if f.tag == PARALLEL and f.is_def]
        # Closure over names: parallel roots plus every untagged callee.
        closure = {}
        work = []
        for r in roots:
            closure.setdefault(r.name, []).append(r)
            work.append(r)
        visited_names = {r.name for r in roots}
        while work:
            fn = work.pop()
            for lineno, text in fn.body_lines:
                for m in CALL_RE.finditer(text):
                    callee = m.group(1)
                    if callee in CPP_KEYWORDS or callee == fn.name or \
                            callee in STD_STOP_NAMES:
                        continue
                    tag = self._tag_of(callee)
                    if tag == SERIALIZED:
                        rule = ("parallel-rng" if callee in RNG_DRAW_NAMES
                                else "parallel-serialized-call")
                        what = ("draws RNG" if rule == "parallel-rng"
                                else "is a serialized-path function")
                        self.report(
                            rule, fn.path, lineno,
                            "'%s' (parallel-phase-reachable via '%s') calls "
                            "'%s', which %s; route it through the serialized "
                            "drain or allow-mark with the confinement "
                            "argument" % (fn.name, fn.name, callee, what))
                    elif callee in RNG_DRAW_NAMES:
                        # Unresolved draw-looking callee: still a violation.
                        self.report(
                            "parallel-rng", fn.path, lineno,
                            "'%s' calls RNG draw '%s' from a parallel phase; "
                            "draws are serialized-path only" %
                            (fn.name, callee))
                    elif tag is None and callee in self.by_name and \
                            callee not in visited_names:
                        visited_names.add(callee)
                        for rec in self.by_name[callee]:
                            if rec.is_def:
                                work.append(rec)
                # Counter mutation inside parallel-reachable code.
                fi = self.files.get(fn.path)
                for m in list(COUNTER_MUT_RE.finditer(text)) + \
                        list(COUNTER_INCR_RE.finditer(text)):
                    prefix, recv = m.group(1) or "", m.group(2)
                    if _scratch_receiver(prefix):
                        continue
                    if fi is not None and recv in fi.mailboxes:
                        continue
                    self.report(
                        "parallel-counter", fn.path, lineno,
                        "'%s' (parallel-phase-reachable) mutates global "
                        "counter receiver '%s%s'; parallel phases must write "
                        "per-shard scratch and Fold at the barrier (or "
                        "declare '// detlint: mailbox(%s)')" %
                        (fn.name, prefix, recv, recv))

    def run_all(self):
        self.run_filewide()
        self.run_contract()
        self.run_parallel()
        return self.findings


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------

def load_file(path):
    fi = FileInfo(path)
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        fi.lines = f.read().splitlines()
    fi.code_lines = strip_comments_and_strings(fi.lines)
    collect_markers(fi)
    return fi


def paired_header_code(path, all_paths):
    if not path.endswith(".cc"):
        return None
    header = path[:-3] + ".h"
    if header in all_paths:
        with open(header, "r", encoding="utf-8", errors="replace") as f:
            return "\n".join(strip_comments_and_strings(f.read().splitlines()))
    return None


def lint_paths(paths, mode="regex", compile_commands=None, verbose=False):
    files, functions = [], []
    all_paths = set(paths)

    index = None
    compile_args_for = {}
    if mode == "libclang":
        import clang.cindex as ci
        index = ci.Index.create()
        if compile_commands:
            db = ci.CompilationDatabase.fromDirectory(
                os.path.dirname(os.path.abspath(compile_commands)))
            for p in paths:
                cmds = db.getCompileCommands(p)
                if cmds:
                    args = [a for a in list(cmds[0].arguments)[1:-1]
                            if a not in ("-c", "-o")]
                    compile_args_for[p] = args

    for path in sorted(paths):
        fi = load_file(path)
        collect_unordered_names(fi, paired_header_code(path, all_paths))
        files.append(fi)
        # The annotation header defines the macros; its text would read as
        # tagged declarations. Markers/banned rules still apply to it.
        if path.endswith("thread_annotations.h"):
            continue
        if mode == "libclang":
            functions.extend(scan_functions_libclang(
                fi, index, compile_args_for.get(path, ["-std=c++20"])))
        else:
            functions.extend(scan_functions_regex(fi))

    engine = RuleEngine(files, functions, verbose=verbose)
    findings = engine.run_all()
    if verbose:
        tagged = sum(1 for f in functions if f.tag)
        sys.stderr.write(
            "detlint: %d files, %d functions (%d tagged), %d findings\n"
            % (len(files), len(functions), tagged, len(findings)))
    return findings


def source_files(root):
    out = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in filenames:
            if fn.endswith((".h", ".cc")):
                out.append(os.path.join(dirpath, fn))
    return out


# --------------------------------------------------------------------------
# Self-test over tests/detlint_fixtures/
# --------------------------------------------------------------------------

EXPECT_RE = re.compile(r"//\s*detlint-expect:\s*([\w-]+)")


def self_test(root, mode, verbose):
    fixture_dir = os.path.join(root, "tests", "detlint_fixtures")
    fixtures = sorted(
        os.path.join(fixture_dir, f) for f in os.listdir(fixture_dir)
        if f.endswith(".cc"))
    if not fixtures:
        print("detlint self-test: no fixtures found in %s" % fixture_dir)
        return 2
    failures = 0
    for path in fixtures:
        with open(path, "r", encoding="utf-8") as f:
            head = f.read(4096)
        m = EXPECT_RE.search(head)
        if not m:
            print("FAIL %s: missing '// detlint-expect:' header" % path)
            failures += 1
            continue
        expect = m.group(1)
        findings = lint_paths([path], mode=mode, verbose=False)
        rules = sorted({f.rule for f in findings})
        if expect == "clean":
            ok = not findings
            detail = "; ".join(str(f) for f in findings)
        else:
            ok = expect in rules
            detail = "got %s" % (rules or "no findings")
        status = "ok  " if ok else "FAIL"
        if not ok:
            failures += 1
        if verbose or not ok:
            print("%s %s (expect %s%s)" %
                  (status, os.path.basename(path), expect,
                   ", %s" % detail if not ok else ""))
    print("detlint self-test: %d/%d fixtures pass" %
          (len(fixtures) - failures, len(fixtures)))
    return 1 if failures else 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--mode", choices=("auto", "regex", "libclang"),
                    default="auto")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the libclang frontend")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("-v", "--verbose", action="store_true")
    ap.add_argument("files", nargs="*",
                    help="lint only these files (default: all of src/)")
    args = ap.parse_args(argv)

    mode = args.mode
    if mode in ("auto", "libclang"):
        try:
            import clang.cindex  # noqa: F401
            mode = "libclang"
        except ImportError:
            if mode == "libclang":
                print("detlint: --mode libclang requested but the clang "
                      "python bindings are not importable", file=sys.stderr)
                return 2
            mode = "regex"

    if args.self_test:
        return self_test(args.root, mode, args.verbose)

    paths = args.files or source_files(args.root)
    if not paths:
        print("detlint: nothing to lint under %s/src" % args.root,
              file=sys.stderr)
        return 2
    cc = args.compile_commands
    if mode == "libclang" and cc is None:
        cand = os.path.join(args.root, "build", "compile_commands.json")
        cc = cand if os.path.exists(cand) else None
    findings = lint_paths(paths, mode=mode, compile_commands=cc,
                          verbose=args.verbose)
    for f in findings:
        print(f)
    if findings:
        print("detlint: %d violation(s) [%s frontend]" %
              (len(findings), mode), file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
