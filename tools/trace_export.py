#!/usr/bin/env python3
"""Validate (and summarize) Chrome trace_event JSON written by TraceScope.

Usage:
  tools/trace_export.py --validate trace.json     # exit 0 iff well-formed
  tools/trace_export.py --summary trace.json      # event counts per name/phase

"Well-formed" means: the file parses as JSON, the top level is an object with a
"traceEvents" list, and every event is an object carrying name/ph/ts/pid/tid
with the types Perfetto and chrome://tracing require ("X" events additionally
need a numeric "dur"; "i" instants need a scope "s"). Stdlib only.
"""

import argparse
import collections
import json
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
KNOWN_PHASES = {"X", "i", "M", "B", "E", "C"}


def validate(trace, path):
    errors = []
    if not isinstance(trace, dict):
        return [f"{path}: top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: missing or non-list 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in REQUIRED_KEYS:
            if key not in ev:
                errors.append(f"{where}: missing '{key}'")
        ph = ev.get("ph")
        if ph is not None and ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
        if not isinstance(ev.get("ts", 0), (int, float)):
            errors.append(f"{where}: non-numeric 'ts'")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            errors.append(f"{where}: 'X' event missing numeric 'dur'")
        if ph == "i" and "s" not in ev:
            errors.append(f"{where}: instant event missing scope 's'")
        if len(errors) >= 20:
            errors.append(f"{path}: ... (stopping after 20 errors)")
            return errors
    return errors


def summarize(trace):
    counts = collections.Counter()
    cats = collections.Counter()
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") == "M":
            continue
        counts[ev.get("name", "?")] += 1
        cats[ev.get("cat", "?")] += 1
    print(f"events: {sum(counts.values())}")
    for cat, n in sorted(cats.items()):
        print(f"  cat {cat}: {n}")
    for name, n in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"  {name}: {n}")
    other = trace.get("otherData", {})
    if "semanticDigest" in other:
        print(f"semanticDigest: {other['semanticDigest']}  dropped: {other.get('dropped', 0)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--validate", action="store_true", help="check structure, exit nonzero on problems")
    parser.add_argument("--summary", action="store_true", help="print per-event-name counts")
    parser.add_argument("traces", nargs="+", metavar="trace.json")
    args = parser.parse_args()
    if not (args.validate or args.summary):
        args.validate = True

    failed = False
    for path in args.traces:
        try:
            with open(path, encoding="utf-8") as f:
                trace = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            failed = True
            continue
        if args.validate:
            errors = validate(trace, path)
            if errors:
                print("\n".join(errors), file=sys.stderr)
                failed = True
            else:
                n = len(trace["traceEvents"])
                print(f"{path}: OK ({n} events)")
        if args.summary:
            summarize(trace)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
