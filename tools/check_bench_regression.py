#!/usr/bin/env python3
"""CI perf-regression gate over the committed microbench trajectory.

Compares a candidate run (the mind-microbench-v1 JSON a CI bench run just wrote, e.g.
MIND_BENCH_JSON=/tmp/ci_microbench.json) against the committed baseline trajectory
(BENCH_microbench.json). For every benchmark in the candidate's last entry, the baseline
value is the LATEST committed entry containing that benchmark name; the gate fails when

    candidate_ns > baseline_ns * (1 + tolerance)

for any benchmark. The default tolerance is deliberately loose (25%) to absorb shared-
runner noise — the gate exists to catch step regressions (an accidental O(log n)
reintroduction, a fast path falling off), not 5% drift. Benchmarks without any committed
baseline are reported and skipped (they gate from their first committed entry onward).

Exit codes: 0 ok, 1 regression(s), 2 usage/shape error.
"""

import argparse
import json
import sys


def load_entries(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "mind-microbench-v1" or not isinstance(doc.get("entries"), list):
        print(f"error: {path} is not a mind-microbench-v1 trajectory", file=sys.stderr)
        sys.exit(2)
    return doc["entries"]


def latest_baselines(entries):
    """name -> (ns_per_op, entry label), from the newest entry containing the name."""
    baselines = {}
    for entry in entries:  # Entries are append-ordered; later wins.
        for bench in entry.get("benchmarks", []):
            baselines[bench["name"]] = (float(bench["ns_per_op"]), entry.get("label", "?"))
    return baselines


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidate", help="mind-microbench-v1 JSON written by the CI run")
    parser.add_argument("baseline", help="committed trajectory (BENCH_microbench.json)")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown before failing (default: 0.25 = 25%%)")
    args = parser.parse_args()
    if args.tolerance < 0:
        print("error: tolerance must be >= 0", file=sys.stderr)
        sys.exit(2)

    candidate_entries = load_entries(args.candidate)
    if not candidate_entries:
        print(f"error: {args.candidate} has no entries", file=sys.stderr)
        sys.exit(2)
    candidate = candidate_entries[-1]
    baselines = latest_baselines(load_entries(args.baseline))

    regressions = []
    checked = 0
    width = max((len(b["name"]) for b in candidate.get("benchmarks", [])), default=4)
    print(f"perf gate: candidate '{candidate.get('label', '?')}' vs latest committed "
          f"baseline per benchmark (tolerance {args.tolerance:.0%})")
    for bench in candidate.get("benchmarks", []):
        name = bench["name"]
        got = float(bench["ns_per_op"])
        if name not in baselines:
            print(f"  NEW   {name:<{width}} {got:10.2f} ns/op (no committed baseline; "
                  "gates from its first committed entry)")
            continue
        want, label = baselines[name]
        if want == 0:
            # A zero baseline (e.g. a coverage_pct row that legitimately recorded 0)
            # would make any nonzero candidate an "infinite" regression; there is no
            # meaningful ratio to gate on, so report and skip like a missing baseline.
            print(f"  ZERO  {name:<{width}} {got:10.2f} vs 0.00 ({label}) — "
                  "no gateable baseline")
            continue
        checked += 1
        limit = want * (1.0 + args.tolerance)
        ratio = got / want
        verdict = "OK" if got <= limit else "SLOW"
        print(f"  {verdict:<5} {name:<{width}} {got:10.2f} ns/op vs {want:10.2f} "
              f"({label}) = {ratio:5.2f}x, limit {limit:10.2f}")
        if got > limit:
            regressions.append((name, got, want, ratio))

    if not checked and not regressions:
        print("perf gate: nothing to check (no candidate benchmark has a baseline)")
        return 0
    if regressions:
        print(f"\nperf gate FAILED: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for name, got, want, ratio in regressions:
            print(f"  {name}: {got:.2f} ns/op vs {want:.2f} ({ratio:.2f}x)",
                  file=sys.stderr)
        return 1
    print(f"perf gate passed: {checked} benchmark(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
