// Tests for the materialized MSI state-transition table (§6.3): every row of the table is
// enumerated and checked against the protocol definition.
#include <gtest/gtest.h>

#include "src/dataplane/stt.h"

namespace mind {
namespace {

class SttTest : public ::testing::Test {
 protected:
  StateTransitionTable stt_;
};

TEST_F(SttTest, TableIsFullyMaterialized) {
  // 4 states x 2 access types x 3 roles (E rows are installed defensively even under MSI,
  // where they are unreachable), exactly as stored in the second MAU.
  EXPECT_EQ(stt_.rows().size(), 24u);
  EXPECT_EQ(stt_.rule_count(), 24u);
}

TEST_F(SttTest, InvalidReadBecomesShared) {
  const auto& e = stt_.Lookup(MsiState::kInvalid, AccessType::kRead, RequestorRole::kNone);
  EXPECT_EQ(e.next_state, MsiState::kShared);
  EXPECT_EQ(e.invalidate, InvalidateTargets::kNone);
  EXPECT_FALSE(e.sequential_fetch);
  EXPECT_TRUE(e.joins_sharers);
  EXPECT_FALSE(e.becomes_owner);
}

TEST_F(SttTest, InvalidWriteBecomesModified) {
  const auto& e = stt_.Lookup(MsiState::kInvalid, AccessType::kWrite, RequestorRole::kNone);
  EXPECT_EQ(e.next_state, MsiState::kModified);
  EXPECT_EQ(e.invalidate, InvalidateTargets::kNone);
  EXPECT_TRUE(e.becomes_owner);
}

TEST_F(SttTest, SharedReadStaysSharedNoInvalidation) {
  for (auto role : {RequestorRole::kNone, RequestorRole::kSharer}) {
    const auto& e = stt_.Lookup(MsiState::kShared, AccessType::kRead, role);
    EXPECT_EQ(e.next_state, MsiState::kShared);
    EXPECT_EQ(e.invalidate, InvalidateTargets::kNone);
    EXPECT_TRUE(e.joins_sharers);
  }
}

TEST_F(SttTest, SharedWriteUpgradesAndInvalidatesOthers) {
  const auto& e = stt_.Lookup(MsiState::kShared, AccessType::kWrite, RequestorRole::kSharer);
  EXPECT_EQ(e.next_state, MsiState::kModified);
  EXPECT_EQ(e.invalidate, InvalidateTargets::kOtherSharers);
  // Parallel fetch: data comes from memory (clean in S), overlapping the invalidations —
  // the ~9us S->M path of Fig. 7 (left).
  EXPECT_FALSE(e.sequential_fetch);
  EXPECT_TRUE(e.becomes_owner);
  EXPECT_TRUE(e.clears_sharers);
}

TEST_F(SttTest, OwnerFaultsStayModifiedWithoutInvalidation) {
  for (auto access : {AccessType::kRead, AccessType::kWrite}) {
    const auto& e = stt_.Lookup(MsiState::kModified, access, RequestorRole::kOwner);
    EXPECT_EQ(e.next_state, MsiState::kModified);
    EXPECT_EQ(e.invalidate, InvalidateTargets::kNone);
    EXPECT_FALSE(e.sequential_fetch);
  }
}

TEST_F(SttTest, RemoteReadOfModifiedIsSequential) {
  const auto& e = stt_.Lookup(MsiState::kModified, AccessType::kRead, RequestorRole::kNone);
  EXPECT_EQ(e.next_state, MsiState::kShared);
  EXPECT_EQ(e.invalidate, InvalidateTargets::kOwner);
  // The owner must flush before the fetch — the 2-RTT, ~18us path of Fig. 7 (left).
  EXPECT_TRUE(e.sequential_fetch);
  EXPECT_TRUE(e.clears_sharers);  // The old owner drops all PTEs (§6.1).
  EXPECT_TRUE(e.joins_sharers);
}

TEST_F(SttTest, RemoteWriteOfModifiedHandsOffOwnership) {
  const auto& e = stt_.Lookup(MsiState::kModified, AccessType::kWrite, RequestorRole::kNone);
  EXPECT_EQ(e.next_state, MsiState::kModified);
  EXPECT_EQ(e.invalidate, InvalidateTargets::kOwner);
  EXPECT_TRUE(e.sequential_fetch);
  EXPECT_TRUE(e.becomes_owner);
}

TEST_F(SttTest, EveryRowPreservesMsiInvariants) {
  auto owner_held = [](MsiState st) {
    return st == MsiState::kModified || st == MsiState::kExclusive;
  };
  for (const auto& row : stt_.rows()) {
    // A region never needs both owner- and sharer-targeted invalidations at once.
    // Writes always end owner-held; reads never end owner-held unless the requestor
    // already owned it (MSI) or takes cold exclusivity (MESI's I->E, absent under MSI).
    if (row.access == AccessType::kWrite) {
      EXPECT_TRUE(owner_held(row.next_state));
      EXPECT_TRUE(row.becomes_owner);
    } else {
      if (row.next_state == MsiState::kModified) {
        EXPECT_EQ(row.role, RequestorRole::kOwner);
      }
    }
    // Invalidations only ever arise from S (other sharers) or owner-held states.
    if (row.invalidate == InvalidateTargets::kOtherSharers) {
      EXPECT_EQ(row.state, MsiState::kShared);
    }
    if (row.invalidate == InvalidateTargets::kOwner) {
      EXPECT_TRUE(owner_held(row.state));
    }
    // Sequential (flush-then-fetch) only when leaving an owner-held state someone else has.
    if (row.sequential_fetch) {
      EXPECT_TRUE(owner_held(row.state));
      EXPECT_NE(row.role, RequestorRole::kOwner);
    }
  }
}

TEST(SttMesi, ColdReadTakesExclusive) {
  StateTransitionTable mesi(CoherenceProtocol::kMesi);
  const auto& e = mesi.Lookup(MsiState::kInvalid, AccessType::kRead, RequestorRole::kNone);
  EXPECT_EQ(e.next_state, MsiState::kExclusive);
  EXPECT_TRUE(e.becomes_owner);
  EXPECT_EQ(e.invalidate, InvalidateTargets::kNone);
}

TEST(SttMesi, ExclusiveRemoteAccessesInvalidateHolder) {
  StateTransitionTable mesi(CoherenceProtocol::kMesi);
  const auto& rd = mesi.Lookup(MsiState::kExclusive, AccessType::kRead, RequestorRole::kNone);
  EXPECT_EQ(rd.next_state, MsiState::kShared);
  EXPECT_EQ(rd.invalidate, InvalidateTargets::kOwner);
  EXPECT_TRUE(rd.sequential_fetch);  // The holder may have silently written.
  const auto& wr = mesi.Lookup(MsiState::kExclusive, AccessType::kWrite, RequestorRole::kNone);
  EXPECT_EQ(wr.next_state, MsiState::kModified);
  EXPECT_TRUE(wr.becomes_owner);
}

TEST(SttMesi, MsiNeverEntersExclusive) {
  StateTransitionTable msi(CoherenceProtocol::kMsi);
  for (const auto& row : msi.rows()) {
    if (row.state != MsiState::kExclusive) {  // E rows exist but are unreachable under MSI.
      EXPECT_NE(row.next_state, MsiState::kExclusive);
    }
  }
}

TEST_F(SttTest, LookupMatchesRowsExhaustively) {
  // The array-indexed lookup and the row list must be the same table.
  for (const auto& row : stt_.rows()) {
    const auto& via_lookup = stt_.Lookup(row.state, row.access, row.role);
    EXPECT_EQ(via_lookup.next_state, row.next_state);
    EXPECT_EQ(via_lookup.invalidate, row.invalidate);
    EXPECT_EQ(via_lookup.sequential_fetch, row.sequential_fetch);
  }
}

}  // namespace
}  // namespace mind
