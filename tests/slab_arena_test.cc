// Slab-arena unit tests: recycle/reuse behavior, pointer stability, and the DramCache
// payload path (fault-in, eviction write-back, reinsert) that replaced per-fault heap
// allocation for `store_data` replay.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/blade/dram_cache.h"
#include "src/common/slab_arena.h"

namespace mind {
namespace {

TEST(SlabArena, RecyclesFreedObjectsLifoBeforeGrowing) {
  SlabArena<PageData, 4> arena;
  PageData* a = arena.Alloc();
  PageData* b = arena.Alloc();
  EXPECT_EQ(arena.slab_count(), 1u);
  EXPECT_EQ(arena.recycled(), 0u);
  arena.Free(a);
  arena.Free(b);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.free_count(), 2u);
  // LIFO reuse: the most recently freed object comes back first, no new slab.
  EXPECT_EQ(arena.Alloc(), b);
  EXPECT_EQ(arena.Alloc(), a);
  EXPECT_EQ(arena.recycled(), 2u);
  EXPECT_EQ(arena.slab_count(), 1u);
}

TEST(SlabArena, GrowsByWholeSlabsAndNeverMovesLiveObjects) {
  SlabArena<PageData, 4> arena;
  std::vector<PageData*> pages;
  for (int i = 0; i < 9; ++i) {
    pages.push_back(arena.Alloc());
    (*pages.back())[0] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(arena.slab_count(), 3u);  // ceil(9 / 4).
  // All distinct, all still holding their bytes (no relocation on growth).
  std::set<PageData*> unique(pages.begin(), pages.end());
  EXPECT_EQ(unique.size(), pages.size());
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ((*pages[i])[0], static_cast<uint8_t>(i));
  }
}

TEST(SlabArena, SteadyStateChurnsWithoutNewSlabs) {
  SlabArena<PageData, 8> arena;
  std::vector<PageData*> live;
  for (int i = 0; i < 8; ++i) {
    live.push_back(arena.Alloc());
  }
  const size_t slabs = arena.slab_count();
  // A replay-like churn: evict one payload, fault another in, thousands of times.
  for (int i = 0; i < 5000; ++i) {
    arena.Free(live.back());
    live.pop_back();
    live.push_back(arena.Alloc());
  }
  EXPECT_EQ(arena.slab_count(), slabs);  // Zero growth at steady state.
  EXPECT_EQ(arena.recycled(), 5000u);
}

TEST(SlabArena, UniquePtrFlavorReturnsToArenaOnDrop) {
  SlabArena<PageData, 4> arena;
  PageData* raw = nullptr;
  {
    auto p = arena.AllocPtr();
    raw = p.get();
    EXPECT_EQ(arena.live(), 1u);
  }
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.Alloc(), raw);  // The dropped payload was recycled.
}

TEST(SlabArena, ReserveSlabsPrefaultsWithoutCountingAsChurn) {
  SlabArena<PageData, 4> arena;
  arena.ReserveSlabs(3);
  EXPECT_EQ(arena.slab_count(), 3u);
  EXPECT_EQ(arena.frees(), 0u);
  EXPECT_EQ(arena.free_count(), 12u);
  for (int i = 0; i < 12; ++i) {
    arena.Alloc();
  }
  EXPECT_EQ(arena.slab_count(), 3u);  // Reserved capacity absorbed all 12 allocs.
}

TEST(DramCachePayloads, FaultEvictReinsertRecyclesThroughBladeArena) {
  DramCache cache(/*capacity_frames=*/2, /*store_data=*/true);
  PageData bytes{};
  bytes[7] = 0x5A;
  (void)cache.Insert(1, /*writable=*/true, &bytes);
  (void)cache.Insert(2, /*writable=*/true, &bytes);
  EXPECT_EQ(cache.payload_pool().live(), 2u);

  // Capacity eviction hands the payload out as an owning pointer...
  auto ev = cache.Insert(3, /*writable=*/true, &bytes);
  ASSERT_TRUE(ev.has_value());
  ASSERT_NE(ev->data, nullptr);
  EXPECT_EQ((*ev->data)[7], 0x5A);
  EXPECT_EQ(cache.payload_pool().live(), 3u);  // 2 resident + 1 in flight.
  // ...and dropping it (after write-back) recycles the slot into this blade's arena.
  ev.reset();
  EXPECT_EQ(cache.payload_pool().live(), 2u);

  // The next fault reuses the recycled slot and must see fresh content, not stale bytes.
  const uint64_t recycled_before = cache.payload_pool().recycled();
  auto ev2 = cache.Insert(4, /*writable=*/false, /*bytes=*/nullptr);
  ASSERT_TRUE(ev2.has_value());
  EXPECT_GT(cache.payload_pool().recycled(), recycled_before);
  const DramCache::Frame* f = cache.Peek(4);
  ASSERT_NE(f, nullptr);
  ASSERT_NE(f->data, nullptr);
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ((*f->data)[i], 0u) << "recycled payload leaked stale byte " << i;
  }
}

TEST(DramCachePayloads, RangeInvalidationFlushesRecycleOnDrop) {
  DramCache cache(/*capacity_frames=*/8, /*store_data=*/true);
  for (uint64_t p = 0; p < 4; ++p) {
    (void)cache.Insert(p, /*writable=*/true, nullptr);
    cache.MarkDirty(p);
  }
  EXPECT_EQ(cache.payload_pool().live(), 4u);
  {
    auto inv = cache.InvalidateRange(0, 4);
    EXPECT_EQ(inv.flushed.size(), 4u);
    EXPECT_EQ(cache.payload_pool().live(), 4u);  // In flight to write-back.
  }
  EXPECT_EQ(cache.payload_pool().live(), 0u);  // All recycled after the flush.
}

TEST(DramCachePayloads, MetadataOnlyModeAllocatesNothing) {
  DramCache cache(/*capacity_frames=*/4, /*store_data=*/false);
  for (uint64_t p = 0; p < 16; ++p) {
    (void)cache.Insert(p, false, nullptr);
  }
  EXPECT_EQ(cache.payload_pool().allocs(), 0u);
  EXPECT_EQ(cache.payload_pool().slab_count(), 0u);
}

}  // namespace
}  // namespace mind
