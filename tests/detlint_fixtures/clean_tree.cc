// detlint-expect: clean
// The compliant shape of everything the other fixtures get wrong: draws on the
// serialized path only, parallel counters in per-shard scratch folded at the
// barrier, justified allow/mailbox markers, sorted unordered iteration, and
// tagged contract overrides.
#include <cstdint>
#include <unordered_map>
#include <vector>

#define MIND_PARALLEL_PHASE
#define MIND_SERIALIZED_PATH

// detlint: mailbox(stats_)  -- per-engine scratch, folded at the phase barrier.

namespace mind {

using SimTime = uint64_t;

class Rng {
 public:
  MIND_SERIALIZED_PATH uint64_t NextBelow(uint64_t bound);
};

struct Scratch {
  uint64_t hits = 0;
};

struct EngineStats {
  uint64_t useful = 0;
};

class System {
 public:
  // Serialized reference path: draws are fine here.
  MIND_SERIALIZED_PATH void DrainOne() { victim_ = rng_.NextBelow(64); }

  // Parallel phase: counters go to the shard's scratch mailbox...
  MIND_PARALLEL_PHASE void CommitShard(Scratch& scratch, uint64_t n) {
    scratch.hits += n;
    ++stats_.useful;  // ...and stats_ is a declared per-engine mailbox.
  }

  // ...and Fold merges at the barrier, on the serialized path.
  MIND_SERIALIZED_PATH void Fold(const Scratch& scratch) {
    total_hits_ += scratch.hits;
  }

  std::vector<uint64_t> SortedRegions() const {
    std::vector<uint64_t> out;
    // detlint: allow(unordered-iteration): collected then sorted below.
    for (const auto& [region, count] : regions_) {
      out.push_back(region);
    }
    SortAscending(out);
    return out;
  }

 private:
  static void SortAscending(std::vector<uint64_t>& v);

  Rng rng_;
  EngineStats stats_;
  uint64_t victim_ = 0;
  uint64_t total_hits_ = 0;
  std::unordered_map<uint64_t, uint64_t> regions_;
};

}  // namespace mind
