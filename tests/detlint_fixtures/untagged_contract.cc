// detlint-expect: untagged-contract
// Overrides of the phase-contract methods (OwnerDrainOps, MemorySystem,
// AccessChannel) must restate their phase tag so the contract stays total:
// a new system cannot silently opt out of declaring which phase its drain
// entry points run in.
#include <cstdint>

#define MIND_PARALLEL_PHASE
#define MIND_SERIALIZED_PATH

namespace mind {

using SimTime = uint64_t;

class OwnerDrainOps {
 public:
  virtual ~OwnerDrainOps() = default;
  MIND_PARALLEL_PHASE virtual bool Eligible(uint64_t va, SimTime now) const = 0;
  MIND_SERIALIZED_PATH virtual void Fold() = 0;
};

class MyDrain final : public OwnerDrainOps {
 public:
  // BAD: no phase tag restated on a contract method override.
  bool Eligible(uint64_t va, SimTime now) const override {
    return va != 0 && now != 0;
  }
  MIND_SERIALIZED_PATH void Fold() override {}
};

}  // namespace mind
