// detlint-expect: parallel-rng
// The draw hides two untagged helpers below the parallel root: DetLint must
// walk the call graph, not just the root's own body.
#include <cstdint>

#define MIND_PARALLEL_PHASE
#define MIND_SERIALIZED_PATH

namespace mind {

class Rng {
 public:
  MIND_SERIALIZED_PATH uint64_t NextBelow(uint64_t bound);
};

class Engine {
 public:
  MIND_PARALLEL_PHASE void ScanPhase() { ClassifyTop(); }

 private:
  void ClassifyTop() { PickVictim(); }
  void PickVictim() {
    victim_ = rng_.NextBelow(64);  // BAD: reachable from ScanPhase.
  }

  Rng rng_;
  uint64_t victim_ = 0;
};

}  // namespace mind
