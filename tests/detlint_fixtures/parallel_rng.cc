// detlint-expect: parallel-rng
// A parallel-phase root drawing from the seeded Rng directly: the draw sequence
// would then depend on shard interleaving, breaking bit-identical replay.
#include <cstdint>

#define MIND_PARALLEL_PHASE
#define MIND_SERIALIZED_PATH

namespace mind {

class Rng {
 public:
  MIND_SERIALIZED_PATH bool NextBool(double p);
  MIND_SERIALIZED_PATH uint64_t Next();
};

class Shard {
 public:
  MIND_PARALLEL_PHASE void CommitPhase() {
    if (rng_.NextBool(0.5)) {  // BAD: RNG draw inside a parallel phase.
      ++committed_;
    }
  }

 private:
  Rng rng_;
  uint64_t committed_ = 0;
};

}  // namespace mind
