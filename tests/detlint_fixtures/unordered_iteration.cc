// detlint-expect: unordered-iteration
// Range-for over an unordered map feeding an output vector: libstdc++ hash
// order is not part of the contract, so the result order can change across
// toolchains (and across runs once pointer keys are involved). Collect + sort.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mind {

class RegionTable {
 public:
  std::vector<uint64_t> LiveRegions() const {
    std::vector<uint64_t> out;
    for (const auto& [region, count] : regions_) {  // BAD: hash order escapes.
      out.push_back(region);
    }
    return out;
  }

 private:
  std::unordered_map<uint64_t, uint64_t> regions_;
};

}  // namespace mind
