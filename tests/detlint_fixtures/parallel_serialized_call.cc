// detlint-expect: parallel-serialized-call
// A parallel phase calling onto a serialized-path function (a drain-only
// mutation entry point) without an allow marker stating the confinement
// argument.
#include <cstdint>

#define MIND_PARALLEL_PHASE
#define MIND_SERIALIZED_PATH

namespace mind {

class Directory {
 public:
  MIND_SERIALIZED_PATH void ApplyInvalidation(uint64_t region);
};

class Shard {
 public:
  MIND_PARALLEL_PHASE void OwnerPhase(uint64_t region) {
    directory_.ApplyInvalidation(region);  // BAD: serialized-path callee.
  }

 private:
  Directory directory_;
};

}  // namespace mind
