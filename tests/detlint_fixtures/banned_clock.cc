// detlint-expect: banned-source
// Wall-clock reads leak host timing into replay; simulated time (SimTime) is
// the only clock the engine may observe.
#include <chrono>
#include <cstdint>

namespace mind {

inline uint64_t Stamp() {
  auto t = std::chrono::steady_clock::now();  // BAD: wall clock.
  return static_cast<uint64_t>(t.time_since_epoch().count());
}

}  // namespace mind
