// detlint-expect: parallel-counter
// A parallel phase bumping the system-global counter block instead of writing
// per-shard scratch: totals would depend on the interleaving of shards.
#include <cstdint>

#define MIND_PARALLEL_PHASE

namespace mind {

struct SystemCounters {
  uint64_t total_accesses = 0;
  uint64_t local_hits = 0;
};

class System {
 public:
  MIND_PARALLEL_PHASE void CommitRun(uint64_t n) {
    counters_.total_accesses += n;  // BAD: global counters, no Fold barrier.
    ++counters_.local_hits;         // BAD: same.
  }

 private:
  SystemCounters counters_;
};

}  // namespace mind
