// detlint-expect: banned-source
// Sleeping synchronizes against host time: replay timing must be a pure
// function of the trace and the simulated latency model.
#include <chrono>
#include <thread>

namespace mind {

inline void Backoff() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // BAD.
}

}  // namespace mind
