// detlint-expect: banned-source
// Hashing a pointer bakes ASLR into bucket order; any iteration or tie-break
// derived from it differs run to run.
#include <cstddef>
#include <functional>

namespace mind {

struct Node {
  int id = 0;
};

inline size_t Bucket(Node* n) {
  std::hash<Node*> h;  // BAD: pointer identity is not stable across runs.
  return h(n) % 64;
}

}  // namespace mind
