// detlint-expect: banned-source
// std::random_device is hardware entropy: two replay runs of the same trace
// would diverge. All randomness must come from the seeded serialized-path Rng.
#include <random>

namespace mind {

inline unsigned PickSeed() {
  std::random_device rd;  // BAD: nondeterministic entropy source.
  return rd();
}

}  // namespace mind
