// Unit tests for compute/memory blade models: DRAM cache LRU + dirty tracking, range
// invalidation, invalidation-handler timing, memory blade page store.
#include <gtest/gtest.h>

#include "src/blade/compute_blade.h"
#include "src/blade/dram_cache.h"
#include "src/blade/memory_blade.h"

namespace mind {
namespace {

TEST(DramCache, InsertLookupBasics) {
  DramCache c(4, /*store_data=*/false);
  EXPECT_EQ(c.Lookup(10), nullptr);
  EXPECT_FALSE(c.Insert(10, /*writable=*/false).has_value());
  auto* f = c.Lookup(10);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->writable);
  EXPECT_FALSE(f->dirty);
  EXPECT_EQ(c.size(), 1u);
}

TEST(DramCache, LruEviction) {
  DramCache c(2, false);
  (void)c.Insert(1, false);
  (void)c.Insert(2, false);
  (void)c.Lookup(1);  // 1 is now MRU; 2 is LRU.
  auto ev = c.Insert(3, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->page, 2u);
  EXPECT_NE(c.Lookup(1), nullptr);
  EXPECT_EQ(c.Lookup(2), nullptr);
}

TEST(DramCache, DirtyEvictionCarriesFlag) {
  DramCache c(1, false);
  (void)c.Insert(1, true);
  c.MarkDirty(1);
  auto ev = c.Insert(2, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->page, 1u);
  EXPECT_TRUE(ev->dirty);  // Caller must write this back.
}

TEST(DramCache, ReinsertUpgradesInPlace) {
  DramCache c(2, false);
  (void)c.Insert(1, false);
  EXPECT_FALSE(c.Insert(1, true).has_value());  // No eviction; upgrade.
  EXPECT_TRUE(c.Lookup(1)->writable);
  EXPECT_EQ(c.size(), 1u);
}

TEST(DramCache, MakeWritableAndMarkDirtyNoOpWhenAbsent) {
  DramCache c(2, false);
  c.MakeWritable(99);  // Must not crash or create entries.
  c.MarkDirty(99);
  EXPECT_EQ(c.size(), 0u);
}

TEST(DramCache, InvalidateRangeSeparatesDirtyFromClean) {
  DramCache c(8, false);
  (void)c.Insert(10, true);
  c.MarkDirty(10);
  (void)c.Insert(11, false);
  (void)c.Insert(12, true);
  c.MarkDirty(12);
  (void)c.Insert(20, true);  // Outside the range.
  c.MarkDirty(20);

  auto inv = c.InvalidateRange(10, 13);
  ASSERT_EQ(inv.flushed.size(), 2u);
  EXPECT_EQ(inv.flushed[0].page, 10u);
  EXPECT_EQ(inv.flushed[1].page, 12u);
  EXPECT_EQ(inv.dropped_clean, 1u);
  EXPECT_EQ(c.Lookup(11), nullptr);   // All PTEs in range removed (§6.1).
  EXPECT_NE(c.Lookup(20), nullptr);   // Out of range untouched.
}

TEST(DramCache, DowngradeFlushesButKeepsResident) {
  DramCache c(8, false);
  (void)c.Insert(5, true);
  c.MarkDirty(5);
  auto down = c.DowngradeRange(5, 6);
  ASSERT_EQ(down.flushed.size(), 1u);
  auto* f = c.Lookup(5);
  ASSERT_NE(f, nullptr);  // Still cached...
  EXPECT_FALSE(f->writable);  // ...but read-only and clean.
  EXPECT_FALSE(f->dirty);
}

TEST(DramCache, StoreDataRoundTrip) {
  DramCache c(2, /*store_data=*/true);
  PageData data{};
  data[0] = 0xAB;
  data[kPageSize - 1] = 0xCD;
  (void)c.Insert(7, true, &data);
  auto* f = c.Lookup(7);
  ASSERT_NE(f, nullptr);
  ASSERT_NE(f->data, nullptr);
  EXPECT_EQ((*f->data)[0], 0xAB);
  EXPECT_EQ((*f->data)[kPageSize - 1], 0xCD);
}

TEST(DramCache, CountRange) {
  DramCache c(8, false);
  (void)c.Insert(1, false);
  (void)c.Insert(3, false);
  (void)c.Insert(5, false);
  EXPECT_EQ(c.CountRange(0, 4), 2u);
  EXPECT_EQ(c.CountRange(4, 10), 1u);
  EXPECT_EQ(c.CountRange(10, 20), 0u);
}

TEST(ComputeBlade, InvalidationTimingComposition) {
  LatencyModel lat;
  ComputeBlade blade(0, 16, false, lat);
  (void)blade.cache().Insert(PageNumber(0x10000), true);
  blade.cache().MarkDirty(PageNumber(0x10000));
  (void)blade.cache().Insert(PageNumber(0x11000), false);

  auto out = blade.HandleInvalidation(0x10000, 0x12000, /*arrival=*/1000);
  EXPECT_EQ(out.start, 1000u);  // Idle queue: no wait.
  EXPECT_EQ(out.queue_wait, 0u);
  EXPECT_EQ(out.tlb_time, lat.tlb_shootdown);
  // Service = handler CPU + shootdown + 1 dirty-page flush.
  EXPECT_EQ(out.done,
            1000 + lat.invalidation_handler_cpu + lat.tlb_shootdown + lat.page_flush_cpu);
  ASSERT_EQ(out.flushed.size(), 1u);
  EXPECT_EQ(out.flushed[0].page, PageNumber(0x10000));
  EXPECT_EQ(out.dropped_clean, 1u);
  EXPECT_EQ(blade.pages_flushed(), 1u);
  EXPECT_EQ(blade.tlb_shootdowns(), 1u);
}

TEST(ComputeBlade, EmptyRegionInvalidationIsCheap) {
  LatencyModel lat;
  ComputeBlade blade(0, 16, false, lat);
  auto out = blade.HandleInvalidation(0x10000, 0x12000, 500);
  EXPECT_TRUE(out.flushed.empty());
  EXPECT_EQ(out.tlb_time, 0u);  // No PTEs dropped -> no shootdown.
  EXPECT_EQ(out.done, 500 + lat.invalidation_handler_cpu);
}

TEST(ComputeBlade, ConcurrentInvalidationsQueue) {
  // The serial kernel handler is the "Inv. (queue)" source in Fig. 7 (right).
  LatencyModel lat;
  ComputeBlade blade(0, 16, false, lat);
  (void)blade.cache().Insert(1, false);
  (void)blade.cache().Insert(100, false);
  auto first = blade.HandleInvalidation(PageToAddr(1), PageToAddr(2), 1000);
  auto second = blade.HandleInvalidation(PageToAddr(100), PageToAddr(101), 1000);
  EXPECT_EQ(first.queue_wait, 0u);
  EXPECT_GT(second.queue_wait, 0u);
  EXPECT_EQ(second.start, first.done);
}

TEST(MemoryBlade, MetadataOnlyCountsOps) {
  MemoryBlade m(0, 1 << 20, /*store_data=*/false);
  m.WritePage(5, nullptr);
  EXPECT_EQ(m.ReadPage(5), nullptr);
  EXPECT_EQ(m.writes(), 1u);
  EXPECT_EQ(m.reads(), 1u);
  EXPECT_EQ(m.resident_pages(), 0u);
}

TEST(MemoryBlade, StoresBytes) {
  MemoryBlade m(0, 1 << 20, /*store_data=*/true);
  PageData page{};
  page[42] = 0x7f;
  m.WritePage(3, &page);
  const PageData* read = m.ReadPage(3);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ((*read)[42], 0x7f);
  EXPECT_EQ(m.ReadPage(99), nullptr);  // Never written: semantically zero.
}

TEST(MemoryBlade, FirstTouchZeroFills) {
  MemoryBlade m(0, 1 << 20, true);
  m.WritePage(1, nullptr);  // Touch without payload.
  const PageData* read = m.ReadPage(1);
  ASSERT_NE(read, nullptr);
  for (size_t i = 0; i < kPageSize; i += 512) {
    EXPECT_EQ((*read)[i], 0);
  }
}

}  // namespace
}  // namespace mind
