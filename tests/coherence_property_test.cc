// Property-based tests of the in-network coherence protocol.
//
// Strategy: drive a small rack with thousands of randomized reads/writes from all blades
// (in monotone logical time, matching the replay engine's execution model) and check after
// every operation that
//   (1) structural MSI invariants hold — at most one owner; writable frames only at the
//       owner; every blade caching any page of a region appears in its sharer list (the
//       conservative-superset property that makes invalidations sound), and
//   (2) data values behave like a single shared memory — every read observes the value of
//       the latest preceding write to that page (store_data mode, real bytes end to end).
// The test is parameterized over RNG seeds and over configurations that stress different
// mechanisms (tiny directory => capacity evictions; tiny caches => evictions; PSO).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <tuple>

#include "src/common/rng.h"
#include "src/core/mind.h"

namespace mind {
namespace {

struct PropertyCase {
  const char* name;
  uint64_t seed;
  uint32_t directory_slots;
  uint64_t cache_frames;
  ConsistencyModel consistency;
  CoherenceProtocol protocol = CoherenceProtocol::kMsi;
};

class CoherencePropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static constexpr int kBlades = 4;
  static constexpr uint64_t kSpaceBytes = 1ull << 20;  // 256 pages.

  void SetUp() override {
    const PropertyCase& pc = GetParam();
    RackConfig cfg;
    cfg.num_compute_blades = kBlades;
    cfg.num_memory_blades = 2;
    cfg.memory_blade_capacity = 1ull << 28;
    cfg.compute_cache_bytes = pc.cache_frames * kPageSize;
    cfg.directory_slots = pc.directory_slots;
    cfg.store_data = true;
    cfg.consistency = pc.consistency;
    cfg.protocol = pc.protocol;
    cfg.splitting.epoch_length = 5 * kMillisecond;  // Exercise splitting frequently.
    rack_ = std::make_unique<Rack>(cfg);
    pid_ = *rack_->Exec("prop");
    pdid_ = *rack_->controller().PdidOf(pid_);
    for (int i = 0; i < kBlades; ++i) {
      tids_.push_back(rack_->SpawnThread(pid_, static_cast<ComputeBladeId>(i))->tid);
    }
    va_ = *rack_->Mmap(pid_, kSpaceBytes, PermClass::kReadWrite);
  }

  void CheckStructuralInvariants() {
    rack_->directory().ForEach([&](DirectoryEntry& e) {
      const uint64_t first_page = PageNumber(e.base);
      const uint64_t end_page = PageNumber(e.end() - 1) + 1;
      // Owner-held (M/E) entries have exactly one owner, recorded in the sharer bitmap.
      if (e.OwnerHeld()) {
        ASSERT_NE(e.owner, kInvalidComputeBlade);
        ASSERT_EQ(e.sharers, BladeBit(e.owner));
      } else {
        ASSERT_EQ(e.owner, kInvalidComputeBlade);
      }
      for (int b = 0; b < kBlades; ++b) {
        auto& cache = rack_->compute_blade(static_cast<ComputeBladeId>(b)).cache();
        uint64_t writable = 0;
        uint64_t cached = 0;
        for (uint64_t p = first_page; p < end_page; ++p) {
          const auto* f = cache.Peek(p);
          if (f != nullptr) {
            ++cached;
            writable += f->writable ? 1 : 0;
          }
        }
        if (writable > 0) {
          // Writable frames exist only at the current owner of an owner-held (M/E) region.
          ASSERT_TRUE(e.OwnerHeld()) << "region " << std::hex << e.base;
          ASSERT_EQ(e.owner, b);
        }
        if (cached > 0) {
          // Conservative sharer superset: anyone caching pages must be invalidatable.
          ASSERT_TRUE((e.sharers & BladeBit(static_cast<ComputeBladeId>(b))) != 0)
              << "blade " << b << " caches pages of region " << std::hex << e.base
              << " but is not in sharer list";
        }
      }
    });
  }

  std::unique_ptr<Rack> rack_;
  ProcessId pid_ = kInvalidProcess;
  ProtDomainId pdid_ = 0;
  std::vector<ThreadId> tids_;
  VirtAddr va_ = 0;
};

TEST_P(CoherencePropertyTest, RandomOpsPreserveInvariantsAndData) {
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed);
  std::map<uint64_t, uint64_t> shadow;  // page -> last written stamp.
  SimTime now = 0;
  uint64_t stamp = 1;

  const int kOps = 3000;
  for (int op = 0; op < kOps; ++op) {
    const int blade = static_cast<int>(rng.NextBelow(kBlades));
    const uint64_t page = rng.NextBelow(kSpaceBytes >> kPageShift);
    const VirtAddr addr = va_ + PageToAddr(page);
    const bool is_write = rng.NextBool(0.4);
    const ThreadId tid = tids_[static_cast<size_t>(blade)];

    if (is_write) {
      const uint64_t value = stamp++;
      auto done = rack_->WriteBytes(tid, addr, &value, sizeof(value), now);
      ASSERT_TRUE(done.ok()) << done.status().ToString();
      shadow[page] = value;
      now = std::max(now, *done);
    } else {
      uint64_t value = 0;
      auto done = rack_->ReadBytes(tid, addr, &value, sizeof(value), now);
      ASSERT_TRUE(done.ok()) << done.status().ToString();
      const uint64_t expected = shadow.count(page) != 0 ? shadow[page] : 0;
      ASSERT_EQ(value, expected)
          << "stale read at page " << page << " op " << op << " blade " << blade;
      now = std::max(now, *done);
    }
    now += 1 + rng.NextBelow(2000);

    if (op % 64 == 0) {
      CheckStructuralInvariants();
    }
  }
  CheckStructuralInvariants();

  // The workload shared pages across blades, so coherence machinery must have engaged.
  EXPECT_GT(rack_->stats().remote_accesses, 0u);
  EXPECT_GT(rack_->stats().invalidations_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CoherencePropertyTest,
    ::testing::Values(
        PropertyCase{"tso_roomy_1", 101, 30000, 4096, ConsistencyModel::kTso},
        PropertyCase{"tso_roomy_2", 202, 30000, 4096, ConsistencyModel::kTso},
        PropertyCase{"tso_roomy_3", 303, 30000, 4096, ConsistencyModel::kTso},
        PropertyCase{"tiny_directory_1", 404, 12, 4096, ConsistencyModel::kTso},
        PropertyCase{"tiny_directory_2", 505, 12, 4096, ConsistencyModel::kTso},
        PropertyCase{"tiny_cache", 606, 30000, 64, ConsistencyModel::kTso},
        PropertyCase{"tiny_everything", 707, 12, 64, ConsistencyModel::kTso},
        PropertyCase{"pso_1", 808, 30000, 4096, ConsistencyModel::kPso},
        PropertyCase{"pso_tiny_directory", 909, 12, 4096, ConsistencyModel::kPso},
        PropertyCase{"mesi_roomy", 1010, 30000, 4096, ConsistencyModel::kTso,
                     CoherenceProtocol::kMesi},
        PropertyCase{"mesi_tiny_directory", 1111, 12, 4096, ConsistencyModel::kTso,
                     CoherenceProtocol::kMesi},
        PropertyCase{"mesi_pso", 1212, 30000, 4096, ConsistencyModel::kPso,
                     CoherenceProtocol::kMesi}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) { return info.param.name; });

}  // namespace
}  // namespace mind
