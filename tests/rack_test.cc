// Integration tests for the full MIND rack: every MSI transition end-to-end, latency
// calibration against Fig. 7 (left), false-invalidation accounting, PSO semantics,
// directory capacity pressure, the §4.4 reset path and teardown.
#include <gtest/gtest.h>

#include <cstring>

#include "src/core/mind.h"

namespace mind {
namespace {

RackConfig TestConfig() {
  RackConfig c;
  c.num_compute_blades = 4;
  c.num_memory_blades = 2;
  c.memory_blade_capacity = 1ull << 30;
  c.compute_cache_bytes = 16ull << 20;  // 4096 frames.
  c.store_data = false;
  c.splitting.epoch_length = 100 * kMillisecond;
  return c;
}

class RackTest : public ::testing::Test {
 protected:
  void SetUp() override { Init(TestConfig()); }

  void Init(const RackConfig& cfg) {
    rack_ = std::make_unique<Rack>(cfg);
    pid_ = *rack_->Exec("test");
    pdid_ = *rack_->controller().PdidOf(pid_);
    for (int i = 0; i < cfg.num_compute_blades; ++i) {
      tids_.push_back(rack_->SpawnThread(pid_, static_cast<ComputeBladeId>(i))->tid);
    }
    va_ = *rack_->Mmap(pid_, 4ull << 20, PermClass::kReadWrite);  // 4 MB vma.
  }

  AccessResult Go(int blade, VirtAddr va, AccessType t, SimTime now) {
    return rack_->Access(AccessRequest{tids_[static_cast<size_t>(blade)],
                                       static_cast<ComputeBladeId>(blade), pdid_, va, t, now});
  }

  std::unique_ptr<Rack> rack_;
  ProcessId pid_ = kInvalidProcess;
  ProtDomainId pdid_ = 0;
  std::vector<ThreadId> tids_;
  VirtAddr va_ = 0;
};

// --- Basic transitions and calibration -------------------------------------------------

TEST_F(RackTest, ColdReadIsOneRttAndCaches) {
  auto r = Go(0, va_, AccessType::kRead, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.local_hit);
  EXPECT_EQ(r.prev_state, MsiState::kInvalid);
  EXPECT_EQ(r.next_state, MsiState::kShared);
  // Fig. 7 (left): 1-RTT fetch in the 8.5-9.4 us band.
  EXPECT_GE(ToMicros(r.latency), 8.0);
  EXPECT_LE(ToMicros(r.latency), 9.5);

  auto again = Go(0, va_, AccessType::kRead, r.completion);
  EXPECT_TRUE(again.local_hit);
  EXPECT_LT(again.latency, 100u);  // Local DRAM hit (§7.2).
}

TEST_F(RackTest, ColdWriteGoesModified) {
  auto r = Go(0, va_, AccessType::kWrite, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.next_state, MsiState::kModified);
  const DirectoryEntry* e = rack_->directory().Lookup(va_);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, MsiState::kModified);
  EXPECT_EQ(e->owner, 0);
  // Writes are cached writable: the next write is a pure DRAM hit.
  auto w2 = Go(0, va_, AccessType::kWrite, r.completion);
  EXPECT_TRUE(w2.local_hit);
}

TEST_F(RackTest, SharedReadersJoinSharerList) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kRead, t).completion;
  t = Go(1, va_, AccessType::kRead, t).completion;
  auto r = Go(2, va_ + kPageSize, AccessType::kRead, t);  // Same region, different page.
  EXPECT_EQ(r.prev_state, MsiState::kShared);
  const DirectoryEntry* e = rack_->directory().Lookup(va_);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->sharers, BladeBit(0) | BladeBit(1) | BladeBit(2));
  EXPECT_EQ(rack_->stats().invalidations_sent, 0u);  // Pure read sharing: no invalidations.
}

TEST_F(RackTest, SharedWriteInvalidatesOtherSharers) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kRead, t).completion;
  t = Go(1, va_, AccessType::kRead, t).completion;
  auto w = Go(2, va_, AccessType::kWrite, t);
  ASSERT_TRUE(w.status.ok());
  EXPECT_TRUE(w.triggered_invalidation);
  EXPECT_EQ(w.prev_state, MsiState::kShared);
  EXPECT_EQ(w.next_state, MsiState::kModified);
  EXPECT_EQ(rack_->stats().invalidations_sent, 2u);  // Blades 0 and 1, not the requester.
  // The previous sharers' pages are gone.
  EXPECT_EQ(rack_->compute_blade(0).cache().CountRange(PageNumber(va_), PageNumber(va_) + 1),
            0u);
  EXPECT_EQ(rack_->compute_blade(1).cache().CountRange(PageNumber(va_), PageNumber(va_) + 1),
            0u);
  // Clean S-state copies are dropped, not flushed.
  EXPECT_EQ(rack_->stats().pages_flushed, 0u);
  EXPECT_EQ(rack_->stats().clean_drops, 2u);
}

TEST_F(RackTest, ModifiedHandoffIsSequentialTwoRtt) {
  SimTime t = 0;
  auto w = Go(0, va_, AccessType::kWrite, t);
  ASSERT_TRUE(w.status.ok());
  auto r = Go(1, va_, AccessType::kRead, w.completion);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.prev_state, MsiState::kModified);
  EXPECT_EQ(r.next_state, MsiState::kShared);
  EXPECT_TRUE(r.triggered_invalidation);
  // Fig. 7 (left): M->S is ~2x the 1-RTT latency (flush then fetch), ~18 us.
  EXPECT_GE(ToMicros(r.latency), 15.0);
  EXPECT_LE(ToMicros(r.latency), 21.0);
  // The dirty page was flushed (it IS the requested page: not a false invalidation).
  EXPECT_EQ(rack_->stats().pages_flushed, 1u);
  EXPECT_EQ(rack_->stats().false_invalidations, 0u);
  // Old owner dropped its PTEs (§6.1) and the requester became the only sharer.
  const DirectoryEntry* e = rack_->directory().Lookup(va_);
  EXPECT_EQ(e->sharers, BladeBit(1));
}

TEST_F(RackTest, OwnershipHandoffOnRemoteWrite) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kWrite, t).completion;
  auto w = Go(1, va_, AccessType::kWrite, t);
  EXPECT_EQ(w.prev_state, MsiState::kModified);
  EXPECT_EQ(w.next_state, MsiState::kModified);
  const DirectoryEntry* e = rack_->directory().Lookup(va_);
  EXPECT_EQ(e->owner, 1);
  EXPECT_GE(ToMicros(w.latency), 15.0);  // Sequential flush-then-fetch.
}

TEST_F(RackTest, OwnerFaultInOwnRegionIsOneRtt) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kWrite, t).completion;
  // Same region (16 KB initial), different page: still M-owned by blade 0.
  auto r = Go(0, va_ + kPageSize, AccessType::kWrite, t);
  EXPECT_EQ(r.prev_state, MsiState::kModified);
  EXPECT_FALSE(r.triggered_invalidation);
  EXPECT_LE(ToMicros(r.latency), 9.5);  // No invalidation: single RTT.
  EXPECT_EQ(rack_->stats().transitions_m_stay, 1u);
}

TEST_F(RackTest, WriteUpgradeSkipsDataFetch) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kRead, t).completion;  // Cached read-only at blade 0.
  auto w = Go(0, va_, AccessType::kWrite, t);       // Upgrade in place, no other sharers.
  ASSERT_TRUE(w.status.ok());
  EXPECT_FALSE(w.triggered_invalidation);  // Only sharer is the requester itself.
  EXPECT_EQ(rack_->stats().write_upgrades, 1u);
  // No page payload moved: cheaper than a full fetch.
  EXPECT_LT(w.latency, Go(1, va_ + (2ull << 20), AccessType::kRead, t).latency);
}

// --- False invalidations (§4.3.1) -------------------------------------------------------

TEST_F(RackTest, FalseInvalidationsCountDirtyNonRequestedPages) {
  SimTime t = 0;
  // Blade 0 dirties three pages of one 16 KB region.
  for (int p = 0; p < 3; ++p) {
    t = Go(0, va_ + static_cast<uint64_t>(p) * kPageSize, AccessType::kWrite, t).completion;
  }
  // Blade 1 writes the fourth page of the same region: the whole region is invalidated at
  // blade 0; its 3 dirty pages flush, and since none of them is the requested page, all 3
  // are false invalidations.
  auto w = Go(1, va_ + 3 * kPageSize, AccessType::kWrite, t);
  ASSERT_TRUE(w.status.ok());
  EXPECT_EQ(rack_->stats().pages_flushed, 3u);
  EXPECT_EQ(rack_->stats().false_invalidations, 3u);
}

TEST_F(RackTest, RequestedDirtyPageIsNotFalse) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kWrite, t).completion;       // One dirty page.
  auto w = Go(1, va_, AccessType::kWrite, t);             // Request exactly that page.
  ASSERT_TRUE(w.status.ok());
  EXPECT_EQ(rack_->stats().pages_flushed, 1u);
  EXPECT_EQ(rack_->stats().false_invalidations, 0u);
}

// --- Breakdown accounting ---------------------------------------------------------------

TEST_F(RackTest, BreakdownSumsToTotal) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kWrite, t).completion;
  auto r = Go(1, va_, AccessType::kRead, t);
  ASSERT_FALSE(r.local_hit);
  EXPECT_EQ(r.breakdown.Total(), r.latency);  // Additive decomposition (Fig. 7 right).
  EXPECT_GT(r.breakdown.inv_tlb, 0u);         // Invalidation path includes a shootdown.
  EXPECT_GT(r.breakdown.network, r.breakdown.fault);
}

// --- Protection and faults ---------------------------------------------------------------

TEST_F(RackTest, ReadOnlyVmaRejectsWrites) {
  auto ro = rack_->Mmap(pid_, 64 * kPageSize, PermClass::kReadOnly);
  ASSERT_TRUE(ro.ok());
  EXPECT_TRUE(Go(0, *ro, AccessType::kRead, 0).status.ok());
  auto w = Go(0, *ro, AccessType::kWrite, 0);
  EXPECT_EQ(w.status.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(rack_->stats().permission_denials, 1u);
}

TEST_F(RackTest, ForeignDomainRejected) {
  const ProtDomainId intruder = 4242;
  auto r = rack_->Access(AccessRequest{tids_[0], 0, intruder, va_, AccessType::kRead, 0});
  EXPECT_EQ(r.status.code(), ErrorCode::kPermissionDenied);
}

TEST_F(RackTest, UnmappedAddressFaults) {
  auto r = Go(0, va_ + (512ull << 20), AccessType::kRead, 0);
  EXPECT_EQ(r.status.code(), ErrorCode::kFault);
}

// --- PSO (§6.1, §7.1) ---------------------------------------------------------------------

TEST_F(RackTest, PsoWritesReturnEarly) {
  RackConfig pso = TestConfig();
  pso.consistency = ConsistencyModel::kPso;
  Init(pso);
  // Prime: two sharers so the write needs invalidations.
  SimTime t = 0;
  t = Go(0, va_, AccessType::kRead, t).completion;
  t = Go(1, va_, AccessType::kRead, t).completion;
  auto w = Go(2, va_, AccessType::kWrite, t);
  ASSERT_TRUE(w.status.ok());
  // Thread-visible latency is just the issue cost; completion is much later.
  EXPECT_LT(ToMicros(w.latency), 3.0);
  EXPECT_GT(w.completion, t + w.latency);
}

TEST_F(RackTest, PsoReadAfterWriteBlocks) {
  RackConfig pso = TestConfig();
  pso.consistency = ConsistencyModel::kPso;
  Init(pso);
  SimTime t = 0;
  t = Go(0, va_, AccessType::kRead, t).completion;
  t = Go(1, va_, AccessType::kRead, t).completion;
  auto w = Go(2, va_, AccessType::kWrite, t);
  const SimTime write_done = w.completion;
  // Same thread reads the same region immediately: must wait for the pending store.
  auto r = Go(2, va_, AccessType::kRead, t + w.latency);
  EXPECT_GE(t + w.latency + r.latency, write_done);
}

TEST_F(RackTest, TsoWritesBlockUntilComplete) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kRead, t).completion;
  t = Go(1, va_, AccessType::kRead, t).completion;
  auto w = Go(2, va_, AccessType::kWrite, t);
  EXPECT_EQ(t + w.latency, w.completion);  // TSO: thread waits out the whole transition.
}

// --- Directory capacity pressure (§7.2) ---------------------------------------------------

TEST_F(RackTest, CapacityEvictionForcesInvalidations) {
  RackConfig tiny = TestConfig();
  tiny.directory_slots = 8;
  Init(tiny);
  SimTime t = 0;
  // Touch 32 distinct 16 KB regions: far beyond 8 slots.
  for (int i = 0; i < 32; ++i) {
    auto r = Go(0, va_ + static_cast<uint64_t>(i) * 16 * 1024, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok()) << i;
    t = r.completion;
  }
  EXPECT_LE(rack_->directory().entry_count(), 8u);
  EXPECT_GT(rack_->stats().directory_capacity_evictions, 0u);
  // Evicted dirty regions flushed with no requested page: all false invalidations.
  EXPECT_GT(rack_->stats().false_invalidations, 0u);
}

// --- Reset path (§4.4) --------------------------------------------------------------------

TEST_F(RackTest, ResetDropsEntryAndCaches) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kWrite, t).completion;
  ASSERT_NE(rack_->directory().Lookup(va_), nullptr);
  ASSERT_TRUE(rack_->ResetAddress(va_, t).ok());
  EXPECT_EQ(rack_->directory().Lookup(va_), nullptr);
  EXPECT_EQ(rack_->compute_blade(0).cache().CountRange(PageNumber(va_), PageNumber(va_) + 4),
            0u);
  // Dirty data was preserved via flush.
  EXPECT_GE(rack_->stats().pages_flushed, 1u);
}

TEST_F(RackTest, LossyFabricEventuallyResets) {
  RackConfig lossy = TestConfig();
  lossy.fault.reliability.loss_probability = 1.0;
  lossy.fault.reliability.max_retransmissions = 2;
  Init(lossy);
  // Every message-with-ACK is lost: even the cold fetch exhausts its retry budget, resets
  // the address (§4.4) and fails the access.
  auto r = Go(0, va_, AccessType::kRead, 0);
  EXPECT_EQ(r.status.code(), ErrorCode::kTimedOut);
  EXPECT_EQ(rack_->directory().Lookup(va_), nullptr);  // Reset removed the entry.
  EXPECT_GT(rack_->fault_plane().counters().resets_triggered, 0u);
  // Bounded failure, never a wedge: each retry fails after its summed timeouts and leaves
  // the directory clean for when connectivity returns (recovery after a *partial* outage —
  // one dead blade — is covered end to end in fault_injection_test.cc).
  auto again = Go(0, va_, AccessType::kRead, r.completion);
  EXPECT_EQ(again.status.code(), ErrorCode::kTimedOut);
  EXPECT_EQ(rack_->directory().Lookup(va_), nullptr);
}

// --- Eviction write-backs ------------------------------------------------------------------

TEST_F(RackTest, CacheEvictionWritesBackDirty) {
  RackConfig small = TestConfig();
  small.compute_cache_bytes = 8 * kPageSize;  // 8 frames.
  Init(small);
  SimTime t = 0;
  for (int i = 0; i < 16; ++i) {
    auto r = Go(0, va_ + static_cast<uint64_t>(i) * kPageSize, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
    t = r.completion;
  }
  EXPECT_GT(rack_->stats().evict_writebacks, 0u);
  EXPECT_LE(rack_->compute_blade(0).cache().size(), 8u);
}

TEST_F(RackTest, EvictedDirtyPageRefetchesFromMemoryOneRtt) {
  RackConfig small = TestConfig();
  small.compute_cache_bytes = 2 * kPageSize;
  Init(small);
  SimTime t = 0;
  t = Go(0, va_, AccessType::kWrite, t).completion;
  // Push the dirty page out...
  t = Go(0, va_ + 64 * kPageSize, AccessType::kWrite, t).completion;
  t = Go(0, va_ + 128 * kPageSize, AccessType::kWrite, t).completion;
  // ...then fault it back in: still M-owned by blade 0, so a 1-RTT memory fetch.
  auto r = Go(0, va_, AccessType::kWrite, t);
  EXPECT_FALSE(r.triggered_invalidation);
  EXPECT_LE(ToMicros(r.latency), 9.5);
}

// --- Munmap teardown ------------------------------------------------------------------------

TEST_F(RackTest, MunmapRemovesCoherenceState) {
  SimTime t = 0;
  t = Go(0, va_, AccessType::kWrite, t).completion;
  t = Go(1, va_ + 32 * kPageSize, AccessType::kRead, t).completion;
  ASSERT_TRUE(rack_->Munmap(pid_, va_).ok());
  EXPECT_EQ(rack_->directory().Lookup(va_), nullptr);
  auto r = Go(0, va_, AccessType::kRead, t);
  EXPECT_EQ(r.status.code(), ErrorCode::kFault);  // Address space gone.
}

// --- Bounded splitting integration ----------------------------------------------------------

TEST_F(RackTest, EpochsFireOnTheDataPath) {
  SimTime t = 0;
  ASSERT_EQ(rack_->bounded_splitting().stats().epochs, 0u);
  (void)Go(0, va_, AccessType::kRead, 250 * kMillisecond);
  EXPECT_EQ(rack_->bounded_splitting().stats().epochs, 2u);
}

TEST_F(RackTest, ContendedRegionSplitsOverEpochs) {
  SimTime t = 0;
  // Two blades ping-pong writes to different pages of the same initial region, generating
  // false invalidations every handoff.
  for (int round = 0; round < 40; ++round) {
    t = Go(0, va_, AccessType::kWrite, t).completion;
    t = Go(1, va_ + kPageSize, AccessType::kWrite, t).completion;
    t += 10 * kMillisecond;  // Let epochs elapse.
  }
  // The 16 KB initial region must have split: the two hot pages now live in separate
  // regions, so the ping-pong no longer falsely invalidates the sibling page.
  const DirectoryEntry* e0 = rack_->directory().Lookup(va_);
  const DirectoryEntry* e1 = rack_->directory().Lookup(va_ + kPageSize);
  ASSERT_NE(e0, nullptr);
  ASSERT_NE(e1, nullptr);
  EXPECT_NE(e0->base, e1->base);
  EXPECT_GT(rack_->bounded_splitting().stats().splits, 0u);
}

// --- Match-action rule accounting ------------------------------------------------------------

TEST_F(RackTest, RuleCountIndependentOfFootprint) {
  const uint64_t before = rack_->MatchActionRules();
  auto big = rack_->Mmap(pid_, 64ull << 20, PermClass::kReadWrite);  // +64 MB.
  ASSERT_TRUE(big.ok());
  const uint64_t after = rack_->MatchActionRules();
  // One vma => at most one protection rule more; translation rules unchanged (§4.1-4.2).
  EXPECT_LE(after - before, 2u);
}

}  // namespace
}  // namespace mind
