// Unit tests for the control plane: process management, controller syscall surface,
// vma bookkeeping and protection-domain grants.
#include <gtest/gtest.h>

#include "src/controlplane/controller.h"
#include "src/controlplane/process_manager.h"
#include "src/dataplane/protection.h"
#include "src/dataplane/translation.h"

namespace mind {
namespace {

constexpr uint64_t kGiB = 1024ull * 1024 * 1024;

TEST(ProcessManager, ExecAssignsPidAsPdid) {
  ProcessManager pm(4);
  auto pid = pm.Exec("app");
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(*pm.PdidOf(*pid), *pid);  // §4.2: PID doubles as PDID by default.
}

TEST(ProcessManager, RoundRobinThreadPlacement) {
  ProcessManager pm(4);
  auto pid = pm.Exec("app");
  std::vector<ComputeBladeId> blades;
  for (int i = 0; i < 8; ++i) {
    auto p = pm.SpawnThread(*pid);
    ASSERT_TRUE(p.ok());
    blades.push_back(p->blade);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(blades[static_cast<size_t>(i)], i % 4);
  }
}

TEST(ProcessManager, PinnedPlacementHonored) {
  ProcessManager pm(4);
  auto pid = pm.Exec("app");
  auto p = pm.SpawnThread(*pid, 3);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->blade, 3);
  EXPECT_EQ(*pm.BladeOfThread(p->tid), 3);
  EXPECT_EQ(*pm.ProcessOfThread(p->tid), *pid);
}

TEST(ProcessManager, ThreadsShareAddressSpaceAcrossBlades) {
  // The transparency core: one process's threads land on different blades with one PID.
  ProcessManager pm(8);
  auto pid = pm.Exec("elastic-app");
  auto t0 = pm.SpawnThread(*pid, 0);
  auto t7 = pm.SpawnThread(*pid, 7);
  ASSERT_TRUE(t0.ok() && t7.ok());
  EXPECT_EQ(*pm.ProcessOfThread(t0->tid), *pm.ProcessOfThread(t7->tid));
}

TEST(ProcessManager, ExitCleansUp) {
  ProcessManager pm(2);
  auto pid = pm.Exec("app");
  auto t = pm.SpawnThread(*pid);
  ASSERT_TRUE(pm.Exit(*pid).ok());
  EXPECT_FALSE(pm.BladeOfThread(t->tid).ok());
  EXPECT_FALSE(pm.Exit(*pid).ok());
  EXPECT_EQ(pm.process_count(), 0u);
}

TEST(ProcessManager, CustomPdidPerSession) {
  ProcessManager pm(2);
  auto pid = pm.Exec("db-server");
  ASSERT_TRUE(pm.SetPdid(*pid, 9001).ok());
  EXPECT_EQ(*pm.PdidOf(*pid), 9001u);
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : tcam_(45000),
        translator_(&tcam_),
        protection_(&tcam_),
        controller_(&translator_, &protection_, nullptr, 4) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(controller_.MemoryBladeOnline(static_cast<MemoryBladeId>(i), kGiB).ok());
    }
    pid_ = *controller_.Exec("app");
  }

  TcamCapacity tcam_;
  AddressTranslator translator_;
  ProtectionTable protection_;
  Controller controller_;
  ProcessId pid_;
};

TEST_F(ControllerTest, MmapGrantsAndTranslates) {
  auto va = controller_.Mmap(pid_, 64 * kPageSize, PermClass::kReadWrite);
  ASSERT_TRUE(va.ok());
  // The vma is visible, protected and translatable.
  const VmaRecord* vma = controller_.FindVma(*va);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->pid, pid_);
  EXPECT_TRUE(protection_.Allows(pid_, *va, AccessType::kWrite));
  EXPECT_TRUE(translator_.Translate(*va).ok());
  EXPECT_TRUE(translator_.Translate(*va + 64 * kPageSize - 1).ok());
}

TEST_F(ControllerTest, MmapReturnsDistinctVmas) {
  auto a = controller_.Mmap(pid_, kPageSize, PermClass::kReadWrite);
  auto b = controller_.Mmap(pid_, kPageSize, PermClass::kReadWrite);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);  // Isolation: allocations never overlap (§4.1).
}

TEST_F(ControllerTest, MunmapRevokesEverything) {
  auto va = controller_.Mmap(pid_, 16 * kPageSize, PermClass::kReadWrite);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(controller_.Munmap(pid_, *va).ok());
  EXPECT_EQ(controller_.FindVma(*va), nullptr);
  EXPECT_FALSE(protection_.Allows(pid_, *va, AccessType::kRead));
}

TEST_F(ControllerTest, MunmapWrongProcessDenied) {
  auto va = controller_.Mmap(pid_, kPageSize, PermClass::kReadWrite);
  const ProcessId other = *controller_.Exec("intruder");
  EXPECT_EQ(controller_.Munmap(other, *va).code(), ErrorCode::kPermissionDenied);
  EXPECT_NE(controller_.FindVma(*va), nullptr);  // Unharmed.
}

TEST_F(ControllerTest, MprotectDowngradesRange) {
  auto va = controller_.Mmap(pid_, 16 * kPageSize, PermClass::kReadWrite);
  ASSERT_TRUE(controller_.Mprotect(pid_, *va, 4 * kPageSize, PermClass::kReadOnly).ok());
  EXPECT_FALSE(protection_.Allows(pid_, *va, AccessType::kWrite));
  EXPECT_TRUE(protection_.Allows(pid_, *va, AccessType::kRead));
  EXPECT_TRUE(protection_.Allows(pid_, *va + 4 * kPageSize, AccessType::kWrite));
}

TEST_F(ControllerTest, MprotectBeyondVmaRejected) {
  auto va = controller_.Mmap(pid_, 4 * kPageSize, PermClass::kReadWrite);
  EXPECT_EQ(controller_.Mprotect(pid_, *va, 64 * kPageSize, PermClass::kReadOnly).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(ControllerTest, CrossDomainGrant) {
  // Capability-style sharing (§4.2): owner grants a slice of its vma to another domain.
  auto va = controller_.Mmap(pid_, 16 * kPageSize, PermClass::kReadWrite);
  const ProtDomainId session = 777;
  EXPECT_FALSE(protection_.Allows(session, *va, AccessType::kRead));
  ASSERT_TRUE(controller_.GrantToDomain(pid_, session, *va, 4 * kPageSize,
                                        PermClass::kReadOnly)
                  .ok());
  EXPECT_TRUE(protection_.Allows(session, *va, AccessType::kRead));
  EXPECT_FALSE(protection_.Allows(session, *va, AccessType::kWrite));
  EXPECT_FALSE(protection_.Allows(session, *va + 4 * kPageSize, AccessType::kRead));
  ASSERT_TRUE(controller_.RevokeFromDomain(session, *va, 4 * kPageSize).ok());
  EXPECT_FALSE(protection_.Allows(session, *va, AccessType::kRead));
}

TEST_F(ControllerTest, GrantRequiresOwnership) {
  auto va = controller_.Mmap(pid_, kPageSize, PermClass::kReadWrite);
  const ProcessId other = *controller_.Exec("other");
  EXPECT_EQ(controller_.GrantToDomain(other, 5, *va, kPageSize, PermClass::kReadOnly).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(ControllerTest, ExitTearsDownAllVmas) {
  auto a = controller_.Mmap(pid_, kPageSize, PermClass::kReadWrite);
  auto b = controller_.Mmap(pid_, kPageSize, PermClass::kReadWrite);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(controller_.Exit(pid_).ok());
  EXPECT_EQ(controller_.FindVma(*a), nullptr);
  EXPECT_EQ(controller_.FindVma(*b), nullptr);
  EXPECT_EQ(controller_.vma_count(), 0u);
}

TEST_F(ControllerTest, MigrationInstallsOutlier) {
  auto va = controller_.Mmap(pid_, 16 * kPageSize, PermClass::kReadWrite);
  auto before = translator_.Translate(*va);
  ASSERT_TRUE(before.ok());
  const MemoryBladeId dst = before->blade == 0 ? 1 : 0;
  ASSERT_TRUE(controller_.MigrateRange(*va, 14, dst, 0x123000).ok());
  auto after = translator_.Translate(*va + 0x100);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->blade, dst);
  EXPECT_EQ(after->phys_addr, 0x123000u + 0x100);
}

TEST_F(ControllerTest, AllocationFailureIsEnomem) {
  // Ask for more than the whole rack holds.
  EXPECT_EQ(controller_.Mmap(pid_, 64 * kGiB, PermClass::kReadWrite).status().code(),
            ErrorCode::kNoMemory);
}

}  // namespace
}  // namespace mind
