// End-to-end tests for the MESI extension (§8, "Other coherence protocols"): silent write
// upgrades on exclusively-held regions, E->S/M handoffs, and data correctness.
#include <gtest/gtest.h>

#include <cstring>

#include "src/core/mind.h"

namespace mind {
namespace {

RackConfig MesiConfig() {
  RackConfig c;
  c.num_compute_blades = 3;
  c.num_memory_blades = 2;
  c.memory_blade_capacity = 1ull << 30;
  c.compute_cache_bytes = 16ull << 20;
  c.protocol = CoherenceProtocol::kMesi;
  c.store_data = true;
  return c;
}

class RackMesiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rack_ = std::make_unique<Rack>(MesiConfig());
    pid_ = *rack_->Exec("mesi");
    pdid_ = *rack_->controller().PdidOf(pid_);
    for (int i = 0; i < 3; ++i) {
      tids_.push_back(rack_->SpawnThread(pid_, static_cast<ComputeBladeId>(i))->tid);
    }
    va_ = *rack_->Mmap(pid_, 1 << 20, PermClass::kReadWrite);
  }

  AccessResult Go(int blade, VirtAddr va, AccessType t, SimTime now) {
    return rack_->Access(AccessRequest{tids_[static_cast<size_t>(blade)],
                                       static_cast<ComputeBladeId>(blade), pdid_, va, t, now});
  }

  std::unique_ptr<Rack> rack_;
  ProcessId pid_ = kInvalidProcess;
  ProtDomainId pdid_ = 0;
  std::vector<ThreadId> tids_;
  VirtAddr va_ = 0;
};

TEST_F(RackMesiTest, ColdReadEntersExclusive) {
  auto r = Go(0, va_, AccessType::kRead, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.next_state, MsiState::kExclusive);
  const DirectoryEntry* e = rack_->directory().Lookup(va_);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, MsiState::kExclusive);
  EXPECT_EQ(e->owner, 0);
}

TEST_F(RackMesiTest, SilentUpgradeMakesFirstWriteLocal) {
  // The MESI payoff: read-then-write on private data costs zero extra coherence traffic.
  auto r = Go(0, va_, AccessType::kRead, 0);
  auto w = Go(0, va_, AccessType::kWrite, r.completion);
  EXPECT_TRUE(w.local_hit);
  EXPECT_LT(w.latency, 100u);
  // Under MSI the same sequence pays a remote upgrade round trip.
  RackConfig msi = MesiConfig();
  msi.protocol = CoherenceProtocol::kMsi;
  Rack other(msi);
  const ProcessId pid = *other.Exec("msi");
  const ProtDomainId pdid = *other.controller().PdidOf(pid);
  const ThreadId tid = other.SpawnThread(pid, 0)->tid;
  const VirtAddr va = *other.Mmap(pid, 1 << 20, PermClass::kReadWrite);
  auto mr = other.Access({tid, 0, pdid, va, AccessType::kRead, 0});
  auto mw = other.Access({tid, 0, pdid, va, AccessType::kWrite, mr.completion});
  EXPECT_FALSE(mw.local_hit);
  EXPECT_GT(mw.latency, kMicrosecond);
}

TEST_F(RackMesiTest, RemoteReadDowngradesExclusiveWithFlush) {
  // Blade 0 reads (E) then writes silently; blade 1's read must still see fresh bytes.
  const uint64_t value = 0xfeedface;
  SimTime t = *rack_->WriteBytes(tids_[0], va_, &value, sizeof(value), 0);
  // The write was silent (E): no invalidations so far.
  EXPECT_EQ(rack_->stats().invalidations_sent, 0u);

  uint64_t readback = 0;
  t = *rack_->ReadBytes(tids_[1], va_, &readback, sizeof(readback), t);
  EXPECT_EQ(readback, value);  // The E holder's dirty page was flushed on the handoff.
  EXPECT_GE(rack_->stats().invalidations_sent, 1u);
  const DirectoryEntry* e = rack_->directory().Lookup(va_);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, MsiState::kShared);
}

TEST_F(RackMesiTest, RemoteWriteTakesOwnershipFromExclusive) {
  SimTime t = Go(0, va_, AccessType::kRead, 0).completion;  // Blade 0 in E.
  auto w = Go(1, va_, AccessType::kWrite, t);
  ASSERT_TRUE(w.status.ok());
  EXPECT_EQ(w.prev_state, MsiState::kExclusive);
  EXPECT_EQ(w.next_state, MsiState::kModified);
  EXPECT_TRUE(w.triggered_invalidation);
  const DirectoryEntry* e = rack_->directory().Lookup(va_);
  EXPECT_EQ(e->owner, 1);
}

TEST_F(RackMesiTest, SecondReaderSharesNormally) {
  SimTime t = Go(0, va_, AccessType::kRead, 0).completion;
  auto r1 = Go(1, va_, AccessType::kRead, t);
  EXPECT_EQ(r1.next_state, MsiState::kShared);
  auto r2 = Go(2, va_, AccessType::kRead, r1.completion);
  EXPECT_EQ(r2.next_state, MsiState::kShared);
  EXPECT_FALSE(r2.triggered_invalidation);  // S->S stays invalidation-free.
  const DirectoryEntry* e = rack_->directory().Lookup(va_);
  EXPECT_EQ(e->sharers, BladeBit(1) | BladeBit(2));  // Blade 0 dropped on the E->S handoff.
}

}  // namespace
}  // namespace mind
