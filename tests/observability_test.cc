// Unit tests for the src/obs/ machinery itself: TraceSink ring-buffer overflow,
// TraceScope merge order and digest algebra, Histogram::Summary, the MetricsRegistry
// (upsert, sampling bounds, text/JSON export) and the PhaseProfiler storage discipline.
// End-to-end determinism of traced replay lives in trace_determinism_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/phase_profiler.h"
#include "src/obs/trace.h"
#include "src/obs/trace_scope.h"

namespace mind {
namespace {

TraceEvent MakeEvent(TraceEventKind kind, SimTime clock, uint64_t a = 0,
                     ThreadId tid = 0, ComputeBladeId blade = 0) {
  TraceEvent e;
  e.kind = kind;
  e.clock = clock;
  e.a = a;
  e.tid = tid;
  e.blade = blade;
  return e;
}

// --- TraceSink -------------------------------------------------------------------------

TEST(TraceSink, RingOverflowDropsOldestKeepsNewest) {
  TraceSink sink(/*capacity=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    sink.Emit(MakeEvent(TraceEventKind::kAccessSpan, /*clock=*/i, /*a=*/i));
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  std::vector<uint64_t> seen;
  sink.ForEach([&](const TraceEvent& e) { seen.push_back(e.a); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{6, 7, 8, 9}));  // Oldest-first survivors.
}

TEST(TraceSink, ForEachIsEmissionOrderedBelowCapacity) {
  TraceSink sink(16);
  sink.Emit(MakeEvent(TraceEventKind::kAccessSpan, 30));
  sink.Emit(MakeEvent(TraceEventKind::kAccessSpan, 10));  // Out of clock order: fine.
  sink.Emit(MakeEvent(TraceEventKind::kAccessSpan, 20));
  std::vector<SimTime> clocks;
  sink.ForEach([&](const TraceEvent& e) { clocks.push_back(e.clock); });
  EXPECT_EQ(clocks, (std::vector<SimTime>{30, 10, 20}));
  EXPECT_EQ(sink.dropped(), 0u);
}

// --- TraceScope ------------------------------------------------------------------------

TEST(TraceScope, FinalizeMergesByClockThenTidStable) {
  TraceScope scope(/*num_shards=*/2);
  scope.control()->Emit(MakeEvent(TraceEventKind::kInvalidationWave, 100, 1, /*tid=*/2));
  scope.shard(0)->Emit(MakeEvent(TraceEventKind::kChannelCommit, 50, 2, /*tid=*/1));
  scope.shard(1)->Emit(MakeEvent(TraceEventKind::kGroupCommit, 100, 3, /*tid=*/1));
  scope.Finalize();
  ASSERT_EQ(scope.merged().size(), 3u);
  EXPECT_EQ(scope.merged()[0].clock, 50u);
  EXPECT_EQ(scope.merged()[1].clock, 100u);
  EXPECT_EQ(scope.merged()[1].tid, 1u);  // (clock, tid) order within the tie.
  EXPECT_EQ(scope.merged()[2].tid, 2u);
  EXPECT_EQ(scope.semantic_events(), 1u);
  EXPECT_EQ(scope.execution_events(), 2u);
}

TEST(TraceScope, SemanticBytesIgnoresExecutionEventsAndMailboxContents) {
  TraceScope a(1);
  TraceScope b(4);
  for (const SimTime t : {10u, 20u, 30u}) {
    a.control()->Emit(MakeEvent(TraceEventKind::kAccessSpan, t, t * 7));
    b.control()->Emit(MakeEvent(TraceEventKind::kAccessSpan, t, t * 7));
  }
  // Execution noise lands differently per mode — the witness must not see it.
  a.shard(0)->Emit(MakeEvent(TraceEventKind::kChannelCommit, 15, 99));
  b.shard(3)->Emit(MakeEvent(TraceEventKind::kDrainPhase, 25, 42));
  b.control()->Emit(MakeEvent(TraceEventKind::kChannelCommit, 5, 7));  // Filtered by kind.
  EXPECT_EQ(a.SemanticBytes(), b.SemanticBytes());
  EXPECT_EQ(a.SemanticDigest(), b.SemanticDigest());
  EXPECT_NE(a.SemanticBytes(), std::string());
}

TEST(TraceScope, SemanticBytesOrderSensitive) {
  TraceScope a(1);
  TraceScope b(1);
  a.control()->Emit(MakeEvent(TraceEventKind::kAccessSpan, 10));
  a.control()->Emit(MakeEvent(TraceEventKind::kFaultTimeout, 20));
  b.control()->Emit(MakeEvent(TraceEventKind::kFaultTimeout, 20));
  b.control()->Emit(MakeEvent(TraceEventKind::kAccessSpan, 10));
  EXPECT_NE(a.SemanticBytes(), b.SemanticBytes());  // Emission order IS the witness.
}

TEST(TraceScope, ChromeJsonSkeletonValid) {
  TraceScope scope(1);
  TraceEvent span = MakeEvent(TraceEventKind::kAccessSpan, 1500, 0xdead, 3, 1);
  span.dur = 2500;  // -> "X" with ts=1.500, dur=2.500.
  scope.control()->Emit(span);
  scope.control()->Emit(MakeEvent(TraceEventKind::kDirectorySplit, 3000));  // Instant.
  scope.Finalize();
  std::ostringstream os;
  scope.WriteChromeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"access\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dir-split\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"semanticDigest\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a JSON parser
  // (tools/trace_export.py --validate does the real parse in CI).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --- Histogram::Summary ----------------------------------------------------------------

TEST(HistogramSummary, MatchesIndividualQueries) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  const HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean, h.Mean());
  EXPECT_EQ(s.p50, h.Percentile(0.50));
  EXPECT_EQ(s.p90, h.Percentile(0.90));
  EXPECT_EQ(s.p99, h.Percentile(0.99));
  EXPECT_EQ(s.p999, h.Percentile(0.999));
  EXPECT_EQ(HistogramSummary{}, Histogram{}.Summary());  // Empty histogram: all zeros.
}

// --- MetricsRegistry -------------------------------------------------------------------

TEST(MetricsRegistry, UpsertAndFind) {
  MetricsRegistry reg;
  reg.SetCounter("a/b/ops", 7);
  reg.SetCounter("a/b/ops", 9);  // Last write wins.
  reg.SetGauge("a/b/rate", 1.5);
  ASSERT_NE(reg.Find("a/b/ops"), nullptr);
  EXPECT_EQ(reg.Find("a/b/ops")->counter, 9u);
  EXPECT_DOUBLE_EQ(reg.Find("a/b/rate")->gauge, 1.5);
  EXPECT_EQ(reg.Find("missing"), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, SampleSeriesIsBoundedAndScalarOnly) {
  MetricsRegistry reg;
  reg.SetCounter("x", 1);
  Histogram h;
  h.Record(10);
  reg.SetSummary("lat", h.Summary());
  for (size_t i = 0; i < MetricsRegistry::kMaxSamples + 5; ++i) {
    reg.SetCounter("x", i);
    reg.Sample(static_cast<SimTime>(i));
  }
  EXPECT_EQ(reg.series().size(), MetricsRegistry::kMaxSamples);
  EXPECT_EQ(reg.samples_skipped(), 5u);
  const auto& p0 = reg.series().front();
  ASSERT_EQ(p0.values.size(), 1u);  // The summary is not part of the series.
  EXPECT_EQ(p0.values[0].first, "x");
}

TEST(MetricsRegistry, ExportsAreDeterministicallyOrdered) {
  MetricsRegistry reg;
  reg.SetCounter("z/last", 1);
  reg.SetCounter("a/first", 2);
  reg.SetGauge("m/mid", 0.25);
  std::ostringstream text;
  reg.ExportText(text);
  const std::string t = text.str();
  EXPECT_LT(t.find("a/first"), t.find("m/mid"));
  EXPECT_LT(t.find("m/mid"), t.find("z/last"));
  std::ostringstream json;
  reg.ExportJson(json);
  const std::string j = json.str();
  EXPECT_LT(j.find("a/first"), j.find("m/mid"));
  EXPECT_LT(j.find("m/mid"), j.find("z/last"));
  EXPECT_NE(j.find("\"metrics\""), std::string::npos);
  EXPECT_NE(j.find("\"series\""), std::string::npos);
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), std::count(j.begin(), j.end(), '}'));
}

// --- PhaseProfiler ---------------------------------------------------------------------

TEST(PhaseProfiler, LanesAccumulateAndBound) {
  PhaseProfiler prof(/*num_shards=*/2);
  EXPECT_EQ(prof.num_lanes(), 3u);
  EXPECT_EQ(prof.serial_lane(), 2u);
  const uint64_t start = prof.Begin();
  prof.End(0, PhaseProfiler::Phase::kScan, start);
  prof.End(prof.serial_lane(), PhaseProfiler::Phase::kSerialDrain, start);
  EXPECT_EQ(prof.lane(0).count[static_cast<size_t>(PhaseProfiler::Phase::kScan)], 1u);
  EXPECT_EQ(prof.lane(2).count[static_cast<size_t>(PhaseProfiler::Phase::kSerialDrain)],
            1u);
  EXPECT_EQ(prof.lane(0).intervals.size(), 1u);
  EXPECT_EQ(prof.lane(1).intervals.size(), 0u);
}

}  // namespace
}  // namespace mind
