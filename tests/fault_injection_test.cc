// FaultPlane end-to-end tests (§4.4): the fault conformance oracle (an identical fault
// seed/schedule must produce bit-identical counters, histograms and makespan across 1/2/4/8
// shards and channel groups on/off, for MIND, GAM and FastSwap, at every loss rate), the
// reset path after a blade death (no deadlock, directory entry gone, cached copies flushed,
// clean re-fault), scheduled blade drain/failover under live replay, stall windows, and the
// FaultCounters block algebra. Reliability-tracker unit tests live in net_test.cc.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/fastswap.h"
#include "src/baselines/gam.h"
#include "src/baselines/mind_system.h"
#include "src/core/mind.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

namespace mind {
namespace {

// --- Shared helpers ------------------------------------------------------------------------

void ExpectReportsIdentical(const ReplayReport& want, const ReplayReport& got) {
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.total_ops, got.total_ops);
  EXPECT_EQ(want.counters.total_accesses, got.counters.total_accesses);
  EXPECT_EQ(want.counters.local_hits, got.counters.local_hits);
  EXPECT_EQ(want.counters.remote_accesses, got.counters.remote_accesses);
  EXPECT_EQ(want.counters.invalidations, got.counters.invalidations);
  EXPECT_EQ(want.counters.pages_flushed, got.counters.pages_flushed);
  EXPECT_EQ(want.counters.false_invalidations, got.counters.false_invalidations);
  EXPECT_TRUE(want.latency_histogram == got.latency_histogram);
  EXPECT_DOUBLE_EQ(want.avg_latency_us, got.avg_latency_us);
  EXPECT_DOUBLE_EQ(want.throughput_mops, got.throughput_mops);
  // The fault block is part of the oracle: same schedule => same timeouts, retransmissions,
  // resets, reset flushes, drains and stalls, bit for bit.
  EXPECT_TRUE(want.fault == got.fault);
}

ReplayReport RunReplay(MemorySystem* sys, const WorkloadTraces& traces, ReplayOptions opts) {
  ReplayEngine engine(sys, &traces, opts);
  EXPECT_TRUE(engine.Setup().ok());
  return engine.Run();
}

// The execution-strategy matrix every fault schedule must be invariant under: the per-op
// reference path, then channel groups on at 1/2/4/8 shards and off at 1/4.
void ExpectFaultConformance(const std::function<std::unique_ptr<MemorySystem>()>& make,
                            const WorkloadTraces& traces, const ReplayReport& want) {
  struct Mode {
    bool groups;
    int shards;
  };
  for (const Mode m : {Mode{true, 1}, Mode{true, 2}, Mode{true, 4}, Mode{true, 8},
                       Mode{false, 1}, Mode{false, 4}}) {
    SCOPED_TRACE(::testing::Message()
                 << (m.groups ? "groups" : "plain") << "/" << m.shards << "shards");
    auto sys = make();
    ReplayOptions opts;
    opts.shards = m.shards;
    opts.use_channel_groups = m.groups;
    ExpectReportsIdentical(want, RunReplay(sys.get(), traces, opts));
  }
}

ReplayReport SerialReference(const std::function<std::unique_ptr<MemorySystem>()>& make,
                             const WorkloadTraces& traces) {
  auto sys = make();
  ReplayOptions opts;
  opts.use_channels = false;  // Per-op reference: one virtual Access per op.
  return RunReplay(sys.get(), traces, opts);
}

RackConfig FaultRackConfig(double loss) {
  RackConfig c;
  c.num_compute_blades = 4;
  c.num_memory_blades = 4;
  c.memory_blade_capacity = 2ull << 30;
  c.compute_cache_bytes = 8ull << 20;  // Small cache: real LRU evictions during replay.
  c.directory_slots = 2048;            // Small directory: capacity evictions + merges.
  c.splitting.epoch_length = 2 * kMillisecond;
  c.fault.reliability.loss_probability = loss;
  return c;
}

GamConfig FaultGamConfig(double loss) {
  GamConfig c;
  c.num_compute_blades = 4;
  c.num_memory_blades = 4;
  c.compute_cache_bytes = 8ull << 20;
  c.fault.reliability.loss_probability = loss;
  return c;
}

FastSwapConfig FaultFastSwapConfig(double loss) {
  FastSwapConfig c;
  c.num_memory_blades = 4;
  c.compute_cache_bytes = 4ull << 20;  // 1024 frames: real faults and evictions.
  c.fault.reliability.loss_probability = loss;
  return c;
}

WorkloadSpec CoherenceSpec(int blades) {
  // Zipfian shared table with 50/50 GET/SET: dense invalidation waves and remote fetches —
  // plenty of message-with-ACK sends for the loss model to bite.
  WorkloadSpec spec = MemcachedASpec(blades, /*threads_per_blade=*/2,
                                     /*accesses_per_thread=*/2500);
  spec.shared_pages = 4096;
  return spec;
}

WorkloadSpec SwapSpec() {
  // Single-blade working set ~1.5x the FastSwap cache: a steady fault/eviction stream.
  WorkloadSpec spec;
  spec.name = "fastswap-faulty";
  spec.num_blades = 1;
  spec.threads_per_blade = 2;
  spec.private_pages_per_thread = 800;
  spec.private_pattern = Pattern::kUniform;
  spec.private_write_fraction = 0.5;
  spec.accesses_per_thread = 5000;
  return spec;
}

// --- The fault conformance oracle: loss rates x systems x execution strategies -------------

TEST(FaultConformance, MindBitIdenticalAtEveryLossRate) {
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  for (const double loss : {0.0, 0.005, 0.05}) {
    SCOPED_TRACE(loss);
    auto make = [loss] { return std::make_unique<MindSystem>(FaultRackConfig(loss)); };
    const ReplayReport want = SerialReference(make, traces);
    ASSERT_GT(want.total_ops, 0u);
    if (loss == 0.0) {
      EXPECT_TRUE(want.fault == FaultCounters{});  // Loss-free stays fault-silent.
    } else {
      EXPECT_GT(want.fault.timeouts, 0u);  // The loss model actually bit.
    }
    ExpectFaultConformance(make, traces, want);
  }
}

TEST(FaultConformance, GamBitIdenticalAtEveryLossRate) {
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  for (const double loss : {0.0, 0.005, 0.05}) {
    SCOPED_TRACE(loss);
    auto make = [loss] { return std::make_unique<GamSystem>(FaultGamConfig(loss)); };
    const ReplayReport want = SerialReference(make, traces);
    ASSERT_GT(want.total_ops, 0u);
    if (loss == 0.0) {
      EXPECT_TRUE(want.fault == FaultCounters{});
    } else {
      EXPECT_GT(want.fault.timeouts, 0u);
    }
    ExpectFaultConformance(make, traces, want);
  }
}

TEST(FaultConformance, FastSwapBitIdenticalAtEveryLossRate) {
  const WorkloadTraces traces = GenerateTraces(SwapSpec());
  for (const double loss : {0.0, 0.005, 0.05}) {
    SCOPED_TRACE(loss);
    auto make = [loss] {
      return std::make_unique<FastSwapSystem>(FaultFastSwapConfig(loss));
    };
    const ReplayReport want = SerialReference(make, traces);
    ASSERT_GT(want.total_ops, 0u);
    if (loss == 0.0) {
      EXPECT_TRUE(want.fault == FaultCounters{});
    } else {
      EXPECT_GT(want.fault.timeouts, 0u);
      // FastSwap never resets: the kernel retries, so exhaustion only delays the fetch.
      EXPECT_EQ(want.fault.resets_triggered, 0u);
    }
    ExpectFaultConformance(make, traces, want);
  }
}

TEST(FaultConformance, MindBladeDeathScheduleIsModeInvariant) {
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  // Probe the fault-free makespan, then kill blade 1 halfway through the replay.
  const SimTime makespan =
      SerialReference([] { return std::make_unique<MindSystem>(FaultRackConfig(0.0)); },
                      traces)
          .makespan;
  ASSERT_GT(makespan, 0u);
  RackConfig config = FaultRackConfig(0.0);
  config.fault.death.blade = 1;
  config.fault.death.at = makespan / 2;
  auto make = [config] { return std::make_unique<MindSystem>(config); };
  const ReplayReport want = SerialReference(make, traces);
  // Waves targeting the dead blade exhaust their budgets deterministically (no RNG draw)
  // and reset their regions — the replay must survive and stay bit-identical.
  EXPECT_GT(want.fault.resets_triggered, 0u);
  EXPECT_GT(want.fault.timeouts, 0u);
  EXPECT_GT(want.fault.pages_flushed_by_reset, 0u);
  ExpectFaultConformance(make, traces, want);
}

TEST(FaultConformance, MindScheduledDrainIsModeInvariant) {
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  const SimTime makespan =
      SerialReference([] { return std::make_unique<MindSystem>(FaultRackConfig(0.0)); },
                      traces)
          .makespan;
  ASSERT_GT(makespan, 0u);
  RackConfig config = FaultRackConfig(0.0);
  config.fault.drains.push_back(
      FaultPlaneConfig::BladeDrain{/*blade=*/0, /*dst=*/1, /*at=*/makespan / 2});
  auto make = [config] { return std::make_unique<MindSystem>(config); };
  const ReplayReport want = SerialReference(make, traces);
  // The drain completed mid-replay and actually moved memory off the blade. Bit-identity
  // across shard counts is exactly what the engine's horizon clamp at
  // NextScheduledFaultAt() guarantees: no channel hit commits past the drain's clock.
  EXPECT_EQ(want.fault.drains_completed, 1u);
  EXPECT_GT(want.fault.drain_pages_migrated, 0u);
  ExpectFaultConformance(make, traces, want);
}

TEST(FaultConformance, MindFullFaultStormIsModeInvariant) {
  // Everything at once: seeded loss, a mid-replay blade death, a scheduled drain and a
  // stall window — the worst-case schedule must still be an execution-strategy invariant.
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  const SimTime makespan =
      SerialReference([] { return std::make_unique<MindSystem>(FaultRackConfig(0.0)); },
                      traces)
          .makespan;
  ASSERT_GT(makespan, 0u);
  RackConfig config = FaultRackConfig(0.005);
  config.fault.death.blade = 2;
  config.fault.death.at = (makespan * 3) / 4;
  config.fault.drains.push_back(
      FaultPlaneConfig::BladeDrain{/*blade=*/1, /*dst=*/3, /*at=*/makespan / 2});
  config.fault.stalls.push_back(FaultPlaneConfig::StallWindow{
      /*blade=*/3, /*from=*/makespan / 4, /*until=*/makespan / 2,
      /*delay=*/20 * kMicrosecond});
  auto make = [config] { return std::make_unique<MindSystem>(config); };
  const ReplayReport want = SerialReference(make, traces);
  EXPECT_GT(want.fault.timeouts, 0u);
  EXPECT_EQ(want.fault.drains_completed, 1u);
  ExpectFaultConformance(make, traces, want);
}

// --- The owner-parallel drain under fault schedules ----------------------------------------

TEST(FaultConformance, OwnerParallelDrainInvariantUnderFaults) {
  // The region-ownership drain partition (ReplayOptions::owner_parallel_drain) against
  // three fault schedules — fault-free, 0.5% seeded loss, and a mid-replay scheduled
  // blade drain — at 1/2/4/8 shards, groups on and off, plus the owner-off baseline.
  // Every time-driven boundary serializes through the drain safety horizon
  // (NextScheduledFaultAt clamps it), so the results and the drain composition
  // (owner-parallel subset included) are bit-identical across the whole matrix.
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  const SimTime makespan =
      SerialReference([] { return std::make_unique<MindSystem>(FaultRackConfig(0.0)); },
                      traces)
          .makespan;
  ASSERT_GT(makespan, 0u);

  RackConfig drained = FaultRackConfig(0.0);
  drained.fault.drains.push_back(
      FaultPlaneConfig::BladeDrain{/*blade=*/0, /*dst=*/1, /*at=*/makespan / 2});
  const std::vector<std::pair<std::string, RackConfig>> schedules = {
      {"no-fault", FaultRackConfig(0.0)},
      {"loss-0.5%", FaultRackConfig(0.005)},
      {"scheduled-drain", drained},
  };
  for (const auto& [label, config] : schedules) {
    SCOPED_TRACE(label);
    auto make = [&config] { return std::make_unique<MindSystem>(config); };
    const ReplayReport want = SerialReference(make, traces);
    uint64_t owner_expected = 0;
    bool first = true;
    for (const bool groups : {true, false}) {
      for (const int shards : {1, 2, 4, 8}) {
        SCOPED_TRACE(::testing::Message()
                     << (groups ? "groups" : "plain") << "/" << shards << "shards");
        auto sys = make();
        ReplayOptions opts;
        opts.shards = shards;
        opts.use_channel_groups = groups;
        ReplayEngine engine(sys.get(), &traces, opts);
        ASSERT_TRUE(engine.Setup().ok());
        ExpectReportsIdentical(want, engine.Run());
        uint64_t owner = 0;
        for (const ShardReport& sr : engine.shard_reports()) {
          owner += sr.owner_drained;
        }
        EXPECT_GT(owner, 0u);  // Engaged even while the schedule fires.
        if (first) {
          owner_expected = owner;
          first = false;
        } else {
          EXPECT_EQ(owner, owner_expected);  // Composition is matrix-invariant.
        }
      }
    }
    // Owner-off baseline: the pre-ownership serial drain under the same schedule.
    auto sys = make();
    ReplayOptions off;
    off.shards = 4;
    off.owner_parallel_drain = false;
    ExpectReportsIdentical(want, RunReplay(sys.get(), traces, off));
  }
}

// --- The reset path after a blade death (§4.4), at rack level ------------------------------

RackConfig ResetTestConfig() {
  RackConfig c;
  c.num_compute_blades = 4;
  c.num_memory_blades = 2;
  c.memory_blade_capacity = 1ull << 30;
  c.compute_cache_bytes = 16ull << 20;
  c.splitting.epoch_length = 100 * kMillisecond;
  return c;
}

class FaultRackTest : public ::testing::Test {
 protected:
  void Init(const RackConfig& cfg) {
    rack_ = std::make_unique<Rack>(cfg);
    pid_ = *rack_->Exec("test");
    pdid_ = *rack_->controller().PdidOf(pid_);
    for (int i = 0; i < cfg.num_compute_blades; ++i) {
      tids_.push_back(rack_->SpawnThread(pid_, static_cast<ComputeBladeId>(i))->tid);
    }
    va_ = *rack_->Mmap(pid_, 4ull << 20, PermClass::kReadWrite);
  }

  AccessResult Go(int blade, VirtAddr va, AccessType t, SimTime now) {
    return rack_->Access(AccessRequest{tids_[static_cast<size_t>(blade)],
                                       static_cast<ComputeBladeId>(blade), pdid_, va, t,
                                       now});
  }

  std::unique_ptr<Rack> rack_;
  ProcessId pid_ = kInvalidProcess;
  ProtDomainId pdid_ = 0;
  std::vector<ThreadId> tids_;
  VirtAddr va_ = 0;
};

TEST_F(FaultRackTest, BladeDeathMidTransitionResetsAndRecovers) {
  RackConfig cfg = ResetTestConfig();
  cfg.fault.death.blade = 1;
  cfg.fault.death.at = 10 * kMillisecond;
  Init(cfg);

  // Blade 1 writes: it becomes the Modified owner with a dirty cached copy.
  auto w = Go(1, va_, AccessType::kWrite, 0);
  ASSERT_TRUE(w.status.ok());
  ASSERT_EQ(w.next_state, MsiState::kModified);
  ASSERT_GT(rack_->compute_blade(1).cache().CountRange(PageNumber(va_), PageNumber(va_) + 1),
            0u);

  // Blade 1 dies at 10 ms. Blade 0's read needs the owner's copy — the invalidation wave
  // targets a dead blade, deterministically exhausts its retry budget (no deadlock: the
  // requester bounds the wait at (max_retransmissions + 1) * ack_timeout) and resets.
  const SimTime after_death = 11 * kMillisecond;
  auto r = Go(0, va_, AccessType::kRead, after_death);
  EXPECT_EQ(r.status.code(), ErrorCode::kTimedOut);
  const auto& rel = rack_->fault_plane().config().reliability;
  // Latency = switch pipeline work up to the wave + the full timeout-summed wait.
  const SimTime budget = static_cast<SimTime>(rel.max_retransmissions + 1) * rel.ack_timeout;
  EXPECT_GE(r.latency, budget);
  EXPECT_LT(r.latency, budget + 10 * kMicrosecond);

  // §4.4 postconditions: directory entry removed, every blade's copies flushed.
  EXPECT_EQ(rack_->directory().Lookup(va_), nullptr);
  for (int b = 0; b < cfg.num_compute_blades; ++b) {
    EXPECT_EQ(rack_->compute_blade(static_cast<ComputeBladeId>(b))
                  .cache()
                  .CountRange(PageNumber(va_), PageNumber(va_) + 1),
              0u)
        << "blade " << b;
  }
  const FaultCounters fc = rack_->fault_plane().counters();
  EXPECT_EQ(fc.resets_triggered, 1u);
  EXPECT_EQ(fc.timeouts, static_cast<uint64_t>(rel.max_retransmissions + 1));
  EXPECT_GE(fc.pages_flushed_by_reset, 1u);  // The dead owner's dirty copy was preserved.

  // Replay continues: the next access re-faults cleanly from scratch (blade 1 is dead but
  // no longer holds the region, so no wave targets it).
  auto retry = Go(0, va_, AccessType::kRead, r.completion);
  ASSERT_TRUE(retry.status.ok());
  EXPECT_EQ(retry.next_state, MsiState::kShared);
  EXPECT_EQ(rack_->fault_plane().counters().resets_triggered, 1u);  // No second reset.
}

TEST_F(FaultRackTest, DeathScheduleInertBeforeItsClock) {
  RackConfig cfg = ResetTestConfig();
  cfg.fault.death.blade = 1;
  cfg.fault.death.at = 10 * kMillisecond;
  Init(cfg);
  // The same M -> S transition before the death clock behaves exactly as a healthy rack.
  auto w = Go(1, va_, AccessType::kWrite, 0);
  ASSERT_TRUE(w.status.ok());
  auto r = Go(0, va_, AccessType::kRead, w.completion);
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(rack_->fault_plane().counters() == FaultCounters{});
}

// --- Stall windows --------------------------------------------------------------------------

TEST_F(FaultRackTest, StallWindowDelaysInvalidationAcks) {
  // Baseline: healthy M -> S downgrade latency.
  Init(ResetTestConfig());
  auto w0 = Go(1, va_, AccessType::kWrite, 0);
  ASSERT_TRUE(w0.status.ok());
  const auto base = Go(0, va_, AccessType::kRead, w0.completion);
  ASSERT_TRUE(base.status.ok());

  // Same transition with blade 1's deliveries stalled by 50 us: the wave's ACK — and the
  // requester's committed latency — move by at least the stall.
  RackConfig cfg = ResetTestConfig();
  const SimTime stall = 50 * kMicrosecond;
  cfg.fault.stalls.push_back(FaultPlaneConfig::StallWindow{
      /*blade=*/1, /*from=*/0, /*until=*/FaultPlane::kNever, /*delay=*/stall});
  tids_.clear();
  Init(cfg);
  auto w1 = Go(1, va_, AccessType::kWrite, 0);
  ASSERT_TRUE(w1.status.ok());
  const auto stalled = Go(0, va_, AccessType::kRead, w1.completion);
  ASSERT_TRUE(stalled.status.ok());
  EXPECT_GE(stalled.latency, base.latency + stall);
  EXPECT_EQ(rack_->fault_plane().counters().stalled_deliveries, 1u);
}

// --- Graceful blade drain/failover ----------------------------------------------------------

TEST_F(FaultRackTest, DrainMemoryBladeMigratesAndRetargets) {
  Init(ResetTestConfig());
  // Dirty the region so the drain's shoot-down has real write-backs to preserve.
  SimTime t = 0;
  for (int i = 0; i < 8; ++i) {
    t = Go(0, va_ + static_cast<VirtAddr>(i) * kPageSize, AccessType::kWrite, t).completion;
  }
  const MemoryBladeId src = rack_->translator().Translate(va_)->blade;
  const MemoryBladeId dst = static_cast<MemoryBladeId>(src == 0 ? 1 : 0);

  auto done = rack_->DrainMemoryBlade(src, dst, t);
  ASSERT_TRUE(done.ok());
  EXPECT_GT(*done, t);  // Migration work takes simulated time.

  // Translation retargeted: the whole vma now resolves to the survivor.
  for (uint64_t off = 0; off < (4ull << 20); off += kPageSize) {
    ASSERT_EQ(rack_->translator().Translate(va_ + off)->blade, dst);
  }
  const FaultCounters fc = rack_->fault_plane().counters();
  EXPECT_EQ(fc.drains_completed, 1u);
  EXPECT_GT(fc.drain_pages_migrated, 0u);

  // The drained blade is offline to the allocator: new vmas land elsewhere.
  const VirtAddr fresh = *rack_->Mmap(pid_, 1ull << 20, PermClass::kReadWrite);
  EXPECT_NE(rack_->translator().Translate(fresh)->blade, src);

  // Accesses after the drain fetch from the new home and rebuild coherence state.
  auto r = Go(2, va_, AccessType::kRead, *done);
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.local_hit);
}

TEST_F(FaultRackTest, ScheduledDrainFiresAtItsClockViaAccess) {
  RackConfig cfg = ResetTestConfig();
  const SimTime drain_at = 5 * kMillisecond;
  cfg.fault.drains.push_back(FaultPlaneConfig::BladeDrain{/*blade=*/0, /*dst=*/1, drain_at});
  Init(cfg);
  ASSERT_EQ(rack_->NextScheduledFaultAt(), drain_at);

  auto before = Go(0, va_, AccessType::kWrite, 0);
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(rack_->fault_plane().counters().drains_completed, 0u);  // Not due yet.

  // The first access at or past the scheduled clock runs the drain before anything else.
  auto after = Go(0, va_, AccessType::kRead, drain_at + 1);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(rack_->fault_plane().counters().drains_completed, 1u);
  EXPECT_EQ(rack_->NextScheduledFaultAt(), FaultPlane::kNever);
  EXPECT_EQ(rack_->translator().Translate(va_)->blade, 1);
}

// --- FaultCounters block algebra ------------------------------------------------------------

TEST(FaultCountersBlock, MergeAndDeltaMirrorSystemCounters) {
  FaultCounters a;
  a.timeouts = 10;
  a.retransmissions = 7;
  a.resets_triggered = 2;
  a.pages_flushed_by_reset = 5;
  a.drains_completed = 1;
  a.drain_pages_migrated = 512;
  a.stalled_deliveries = 3;
  FaultCounters b = a;
  b.timeouts = 4;
  a.Merge(b);
  EXPECT_EQ(a.timeouts, 14u);
  EXPECT_EQ(a.retransmissions, 14u);
  EXPECT_EQ(a.resets_triggered, 4u);
  EXPECT_EQ(a.pages_flushed_by_reset, 10u);
  EXPECT_EQ(a.drains_completed, 2u);
  EXPECT_EQ(a.drain_pages_migrated, 1024u);
  EXPECT_EQ(a.stalled_deliveries, 6u);

  const FaultCounters d = a.DeltaSince(b);
  EXPECT_EQ(d.timeouts, 10u);
  EXPECT_EQ(d.retransmissions, 7u);
  EXPECT_EQ(d.resets_triggered, 2u);
  EXPECT_EQ(d.pages_flushed_by_reset, 5u);
  EXPECT_EQ(d.drains_completed, 1u);
  EXPECT_EQ(d.drain_pages_migrated, 512u);
  EXPECT_EQ(d.stalled_deliveries, 3u);
  EXPECT_TRUE(FaultCounters{} == FaultCounters{}.DeltaSince(FaultCounters{}));
}

}  // namespace
}  // namespace mind
