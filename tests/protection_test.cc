// Unit + property tests for domain-based memory protection (§4.2): power-of-two
// decomposition, coalescing, per-domain isolation and TCAM rule accounting.
#include <gtest/gtest.h>

#include "src/common/bitops.h"
#include "src/common/rng.h"
#include "src/dataplane/protection.h"

namespace mind {
namespace {

TEST(Decompose, PowerOfTwoAlignedIsOneEntry) {
  // The control plane aligns allocations so each vma is exactly one TCAM entry (§4.2).
  const auto pieces = ProtectionTable::DecomposeRange(0x10000, 0x10000);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].base, 0x10000u);
  EXPECT_EQ(pieces[0].size_log2, 16u);
}

TEST(Decompose, ArbitraryRangeIsBoundedByLog) {
  // Unaligned/odd ranges split into at most ~2*log2(size) pieces.
  const uint64_t base = 0x12345000;
  const uint64_t size = 0x6789000;
  const auto pieces = ProtectionTable::DecomposeRange(base, size);
  uint64_t covered = 0;
  VirtAddr expect = base;
  for (const auto& p : pieces) {
    EXPECT_EQ(p.base, expect);  // Contiguous.
    EXPECT_TRUE(IsAligned(p.base, uint64_t{1} << p.size_log2));  // TCAM-valid.
    covered += uint64_t{1} << p.size_log2;
    expect = p.base + (uint64_t{1} << p.size_log2);
  }
  EXPECT_EQ(covered, size);  // Exact cover.
  EXPECT_LE(pieces.size(), 2 * (Log2Ceil(size) + 1));
}

TEST(Decompose, PropertyExactCoverRandomRanges) {
  Rng rng(321);
  for (int i = 0; i < 200; ++i) {
    const VirtAddr base = (rng.Next() % (1ull << 40)) & ~0xfffull;
    const uint64_t size = ((rng.Next() % (1ull << 24)) + 1) & ~0xfffull;
    if (size == 0) {
      continue;
    }
    const auto pieces = ProtectionTable::DecomposeRange(base, size);
    uint64_t covered = 0;
    VirtAddr expect = base;
    for (const auto& p : pieces) {
      ASSERT_EQ(p.base, expect);
      ASSERT_TRUE(IsAligned(p.base, uint64_t{1} << p.size_log2));
      covered += uint64_t{1} << p.size_log2;
      expect += uint64_t{1} << p.size_log2;
    }
    ASSERT_EQ(covered, size);
    ASSERT_LE(pieces.size(), 2 * (Log2Ceil(size) + 1));
  }
}

TEST(Protection, GrantCheckRevoke) {
  ProtectionTable t(nullptr);
  ASSERT_TRUE(t.Grant(1, 0x1000, 0x1000, PermClass::kReadWrite).ok());
  EXPECT_TRUE(t.Allows(1, 0x1000, AccessType::kWrite));
  EXPECT_TRUE(t.Allows(1, 0x1fff, AccessType::kRead));
  EXPECT_FALSE(t.Allows(1, 0x2000, AccessType::kRead));
  ASSERT_TRUE(t.Revoke(1, 0x1000, 0x1000).ok());
  EXPECT_FALSE(t.Allows(1, 0x1000, AccessType::kRead));
}

TEST(Protection, DomainsAreIsolated) {
  ProtectionTable t(nullptr);
  ASSERT_TRUE(t.Grant(1, 0x1000, 0x1000, PermClass::kReadWrite).ok());
  // Domain 2 has no access to domain 1's region — the ssh-session use case of §4.2.
  EXPECT_FALSE(t.Allows(2, 0x1000, AccessType::kRead));
  ASSERT_TRUE(t.Grant(2, 0x1000, 0x1000, PermClass::kReadOnly).ok());
  EXPECT_TRUE(t.Allows(2, 0x1000, AccessType::kRead));
  EXPECT_FALSE(t.Allows(2, 0x1000, AccessType::kWrite));
  EXPECT_TRUE(t.Allows(1, 0x1000, AccessType::kWrite));  // Unaffected.
}

TEST(Protection, ReadOnlyRejectsWrites) {
  ProtectionTable t(nullptr);
  ASSERT_TRUE(t.Grant(1, 0x4000, 0x1000, PermClass::kReadOnly).ok());
  EXPECT_EQ(t.Check(1, 0x4000), PermClass::kReadOnly);
  EXPECT_FALSE(t.Allows(1, 0x4000, AccessType::kWrite));
}

TEST(Protection, CoalescingReducesRules) {
  ProtectionTable t(nullptr);
  ASSERT_TRUE(t.Grant(1, 0x0, 0x1000, PermClass::kReadWrite).ok());
  const uint64_t one = t.rule_count();
  ASSERT_TRUE(t.Grant(1, 0x1000, 0x1000, PermClass::kReadWrite).ok());
  // Two adjacent 4K grants coalesce into a single aligned 8K entry.
  EXPECT_EQ(t.rule_count(), one);
  EXPECT_EQ(t.Check(1, 0x1800), PermClass::kReadWrite);
}

TEST(Protection, NoCoalesceAcrossDifferentClasses) {
  ProtectionTable t(nullptr);
  ASSERT_TRUE(t.Grant(1, 0x0, 0x1000, PermClass::kReadWrite).ok());
  ASSERT_TRUE(t.Grant(1, 0x1000, 0x1000, PermClass::kReadOnly).ok());
  EXPECT_EQ(t.Check(1, 0x0800), PermClass::kReadWrite);
  EXPECT_EQ(t.Check(1, 0x1800), PermClass::kReadOnly);
}

TEST(Protection, PartialRevokeSplitsInterval) {
  ProtectionTable t(nullptr);
  ASSERT_TRUE(t.Grant(1, 0x0, 0x4000, PermClass::kReadWrite).ok());
  ASSERT_TRUE(t.Revoke(1, 0x1000, 0x1000).ok());  // Punch a hole.
  EXPECT_TRUE(t.Allows(1, 0x0fff, AccessType::kWrite));
  EXPECT_FALSE(t.Allows(1, 0x1000, AccessType::kRead));
  EXPECT_FALSE(t.Allows(1, 0x1fff, AccessType::kRead));
  EXPECT_TRUE(t.Allows(1, 0x2000, AccessType::kWrite));
}

TEST(Protection, OverwriteChangesClass) {
  ProtectionTable t(nullptr);
  ASSERT_TRUE(t.Grant(1, 0x0, 0x2000, PermClass::kReadWrite).ok());
  ASSERT_TRUE(t.Grant(1, 0x0, 0x2000, PermClass::kReadOnly).ok());
  EXPECT_EQ(t.Check(1, 0x1000), PermClass::kReadOnly);
}

TEST(Protection, MprotectMiddleOfVma) {
  ProtectionTable t(nullptr);
  ASSERT_TRUE(t.Grant(1, 0x0, 0x10000, PermClass::kReadWrite).ok());
  // Make one interior page read-only (guard-page style).
  ASSERT_TRUE(t.Grant(1, 0x3000, 0x1000, PermClass::kReadOnly).ok());
  EXPECT_EQ(t.Check(1, 0x2fff), PermClass::kReadWrite);
  EXPECT_EQ(t.Check(1, 0x3000), PermClass::kReadOnly);
  EXPECT_EQ(t.Check(1, 0x4000), PermClass::kReadWrite);
}

TEST(Protection, CapacityExhaustionSurfaces) {
  TcamCapacity cap(2);
  ProtectionTable t(&cap);
  ASSERT_TRUE(t.Grant(1, 0x0, 0x1000, PermClass::kReadWrite).ok());
  ASSERT_TRUE(t.Grant(2, 0x8000, 0x1000, PermClass::kReadWrite).ok());
  // Third rule cannot fit: 0x4000 doesn't coalesce with either.
  EXPECT_EQ(t.Grant(3, 0x4000, 0x1000, PermClass::kReadWrite).code(),
            ErrorCode::kResourceExhausted);
}

TEST(Protection, PropertyRandomGrantsMatchReferenceModel) {
  // Property test: the TCAM-backed table must agree with a naive per-page map.
  ProtectionTable t(nullptr);
  Rng rng(777);
  constexpr uint64_t kPages = 256;
  std::vector<PermClass> reference(kPages, PermClass::kNone);
  for (int step = 0; step < 300; ++step) {
    const uint64_t start = rng.NextBelow(kPages);
    const uint64_t len = 1 + rng.NextBelow(kPages - start);
    const bool revoke = rng.NextBool(0.3);
    if (revoke) {
      (void)t.Revoke(1, start * kPageSize, len * kPageSize);
      for (uint64_t p = start; p < start + len; ++p) {
        reference[p] = PermClass::kNone;
      }
    } else {
      const PermClass pc = rng.NextBool(0.5) ? PermClass::kReadWrite : PermClass::kReadOnly;
      ASSERT_TRUE(t.Grant(1, start * kPageSize, len * kPageSize, pc).ok());
      for (uint64_t p = start; p < start + len; ++p) {
        reference[p] = pc;
      }
    }
    for (uint64_t p = 0; p < kPages; ++p) {
      ASSERT_EQ(t.Check(1, p * kPageSize + (p % kPageSize)), reference[p])
          << "page " << p << " step " << step;
    }
  }
}

}  // namespace
}  // namespace mind
