// Unit tests for src/sim: latency model calibration and busy-until FIFO resources.
#include <gtest/gtest.h>

#include "src/sim/latency_model.h"
#include "src/sim/resource.h"

namespace mind {
namespace {

TEST(LatencyModel, SerializationScalesWithBytes) {
  LatencyModel lat;
  EXPECT_EQ(lat.Serialize(0), 0u);
  // 4 KB at 100 Gbps = 4096*8/100 ns = 327 ns.
  EXPECT_NEAR(static_cast<double>(lat.Serialize(4096)), 327.0, 1.0);
  // Halving bandwidth doubles the delay.
  LatencyModel slow = lat;
  slow.link_bandwidth_gbps = 50.0;
  EXPECT_NEAR(static_cast<double>(slow.Serialize(4096)),
              2.0 * static_cast<double>(lat.Serialize(4096)), 2.0);
}

TEST(LatencyModel, PageHopExceedsControlHop) {
  LatencyModel lat;
  EXPECT_GT(lat.PageHop(), lat.ControlHop());
}

TEST(LatencyModel, OneRttFetchMatchesPaperBand) {
  // Fig. 7 (left): transitions without invalidations land at 8.5-9.4 us end to end.
  LatencyModel lat;
  const double us = ToMicros(lat.OneRttFetch());
  EXPECT_GE(us, 8.0);
  EXPECT_LE(us, 9.5);
}

TEST(LatencyModel, LocalHitFarBelowRemote) {
  LatencyModel lat;
  // Local DRAM hit < 100 ns (§7.2); remote is two orders of magnitude above.
  EXPECT_LT(lat.local_cache_hit, 100u);
  EXPECT_GT(lat.OneRttFetch() / lat.local_cache_hit, 50u);
}

TEST(FifoResource, NoWaitWhenIdle) {
  FifoResource r;
  const auto g = r.Acquire(100, 50);
  EXPECT_EQ(g.start, 100u);
  EXPECT_EQ(g.finish, 150u);
  EXPECT_EQ(g.wait, 0u);
}

TEST(FifoResource, QueuesBackToBack) {
  FifoResource r;
  (void)r.Acquire(100, 50);
  const auto g2 = r.Acquire(110, 50);  // Arrives while busy.
  EXPECT_EQ(g2.start, 150u);
  EXPECT_EQ(g2.finish, 200u);
  EXPECT_EQ(g2.wait, 40u);
}

TEST(FifoResource, IdleGapResets) {
  FifoResource r;
  (void)r.Acquire(100, 50);
  const auto g2 = r.Acquire(1000, 50);  // Arrives long after the server drained.
  EXPECT_EQ(g2.start, 1000u);
  EXPECT_EQ(g2.wait, 0u);
}

TEST(FifoResource, BlockUntilExtendsHorizon) {
  FifoResource r;
  r.BlockUntil(500);
  const auto g = r.Acquire(100, 10);
  EXPECT_EQ(g.start, 500u);
  EXPECT_EQ(g.wait, 400u);
  // BlockUntil never shrinks the horizon.
  r.BlockUntil(10);
  EXPECT_EQ(r.busy_until(), 510u);
}

TEST(FifoResource, AccountsTotals) {
  FifoResource r;
  (void)r.Acquire(0, 10);
  (void)r.Acquire(0, 10);
  EXPECT_EQ(r.jobs(), 2u);
  EXPECT_EQ(r.total_busy(), 20u);
  EXPECT_EQ(r.total_wait(), 10u);  // Second job waited 10.
}

TEST(ResourceMap, IndependentPerKey) {
  ResourceMap<uint64_t> m;
  (void)m.Get(1).Acquire(0, 100);
  const auto g = m.Get(2).Acquire(0, 100);
  EXPECT_EQ(g.wait, 0u);  // Key 2 unaffected by key 1's queue.
  EXPECT_EQ(m.size(), 2u);
}

}  // namespace
}  // namespace mind
