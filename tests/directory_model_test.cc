// Property test for the flat-structure CacheDirectory: the open-addressed hash +
// active-size-class bitmap + arena must agree, at every step, with a plain std::map
// reference model across randomized create/split/merge/evict/remove/lookup sequences.
// This is the refactor-parity gate for the O(1) lookup pipeline — any divergence between
// bit-scan probing and ordered-map interval search is a bug here before it is a coherence
// bug anywhere else.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/dataplane/directory.h"

namespace mind {
namespace {

struct RefRegion {
  uint64_t size = 0;
  SimTime busy_until = 0;
  SimTime last_active = 0;
};

class DirectoryModelTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr VirtAddr kSpace = 1ull << 26;  // 64 MB playground.

  // Reference interval lookup: the entry containing va, if any.
  static std::optional<VirtAddr> RefLookup(const std::map<VirtAddr, RefRegion>& ref,
                                           VirtAddr va) {
    auto it = ref.upper_bound(va);
    if (it == ref.begin()) {
      return std::nullopt;
    }
    --it;
    if (va < it->first + it->second.size) {
      return it->first;
    }
    return std::nullopt;
  }
};

TEST_P(DirectoryModelTest, FlatDirectoryMatchesMapModel) {
  CacheDirectory dir(512);
  std::map<VirtAddr, RefRegion> ref;
  Rng rng(GetParam());
  SimTime now = 0;

  for (int step = 0; step < 4000; ++step) {
    now += rng.NextBelow(100);
    const double roll = rng.NextDouble();
    if (roll < 0.35) {
      // Create a random aligned region (4 KB .. 2 MB — a wide size-class spread so the
      // active-class bitmap holds many bits at once).
      const uint32_t log2 = 12 + static_cast<uint32_t>(rng.NextBelow(10));
      const uint64_t size = uint64_t{1} << log2;
      const VirtAddr base = AlignDown(rng.NextBelow(kSpace - size), size);
      auto created = dir.Create(base, log2);
      bool overlaps = false;
      for (const auto& [rbase, rr] : ref) {
        if (rbase < base + size && base < rbase + rr.size) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) {
        ASSERT_FALSE(created.ok()) << "step " << step;
      } else if (ref.size() >= 512) {
        ASSERT_FALSE(created.ok());
      } else {
        ASSERT_TRUE(created.ok()) << created.status().ToString() << " step " << step;
        (*created)->busy_until = now + rng.NextBelow(50);
        (*created)->last_active = now;
        ref[base] = RefRegion{size, (*created)->busy_until, now};
      }
    } else if (roll < 0.5 && !ref.empty()) {
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(ref.size())));
      const VirtAddr base = it->first;
      const uint64_t size = it->second.size;
      const Status s = dir.Split(base);
      if (size <= kPageSize || ref.size() >= 512) {
        ASSERT_FALSE(s.ok());
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        const RefRegion parent = it->second;
        ref[base] = RefRegion{size / 2, parent.busy_until, parent.last_active};
        ref[base + size / 2] = RefRegion{size / 2, parent.busy_until, parent.last_active};
      }
    } else if (roll < 0.62 && !ref.empty()) {
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(ref.size())));
      const VirtAddr base = it->first;
      const uint64_t size = it->second.size;
      const VirtAddr buddy = base ^ size;
      const bool mergeable =
          ref.count(buddy) != 0 && ref[buddy].size == size && size < (1ull << 22);
      const Status s = dir.MergeWithBuddy(base, 22);
      ASSERT_EQ(s.ok(), mergeable) << s.ToString();
      if (mergeable) {
        const VirtAddr lower = std::min(base, buddy);
        const VirtAddr upper = std::max(base, buddy);
        const RefRegion merged{size * 2, std::max(ref[lower].busy_until, ref[upper].busy_until),
                               std::max(ref[lower].last_active, ref[upper].last_active)};
        ref.erase(upper);
        ref[lower] = merged;
      }
    } else if (roll < 0.72 && !ref.empty()) {
      // Capacity-style eviction through the CLOCK sweep: whatever victim the directory
      // proposes must exist, match the reference geometry, and not be busy. The scan limit
      // covers the whole capacity so "no victim" must mean "every entry busy".
      auto victim = dir.FindEvictionVictim(now, /*scan_limit=*/512);
      bool any_idle = false;
      for (const auto& [rbase, rr] : ref) {
        any_idle = any_idle || rr.busy_until <= now;
      }
      ASSERT_EQ(victim.has_value(), any_idle);
      if (victim.has_value()) {
        auto rit = ref.find(*victim);
        ASSERT_NE(rit, ref.end()) << "victim not in reference model";
        ASSERT_LE(rit->second.busy_until, now) << "victim was busy";
        ASSERT_TRUE(dir.Remove(*victim).ok());
        ref.erase(rit);
      }
    } else if (roll < 0.8 && !ref.empty()) {
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(ref.size())));
      ASSERT_TRUE(dir.Remove(it->first).ok());
      ref.erase(it);
    } else {
      // Random-address lookups: flat bit-scan probing must agree with the interval model,
      // including just-inside/just-outside boundary addresses.
      for (int probe = 0; probe < 8; ++probe) {
        const VirtAddr va = rng.NextBelow(kSpace);
        const auto expect = RefLookup(ref, va);
        DirectoryEntry* got = dir.Lookup(va);
        if (expect.has_value()) {
          ASSERT_NE(got, nullptr) << "va " << va << " step " << step;
          ASSERT_EQ(got->base, *expect);
        } else {
          ASSERT_EQ(got, nullptr) << "va " << va << " step " << step;
        }
      }
    }

    if (step % 64 == 0) {
      ASSERT_EQ(dir.entry_count(), ref.size());
      ASSERT_EQ(dir.slots().used(), ref.size());
      // ForEach must visit every reference region exactly once, in ascending base order.
      std::vector<VirtAddr> seen;
      dir.ForEach([&](DirectoryEntry& e) { seen.push_back(e.base); });
      ASSERT_EQ(seen.size(), ref.size());
      auto rit = ref.begin();
      for (size_t i = 0; i < seen.size(); ++i, ++rit) {
        ASSERT_EQ(seen[i], rit->first);
        ASSERT_EQ(dir.Lookup(rit->first)->size(), rit->second.size);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryModelTest, ::testing::Values(11u, 23u, 47u, 91u));

// The CLOCK cursor must survive removal of the entry it points at: evict-and-remove in a
// tight loop used to re-seek the whole map (and could skip or repeat entries when the
// cursor's key vanished). Now the cursor is an arena slot and freed slots are skipped.
TEST(DirectoryClock, CursorSurvivesVictimRemoval) {
  CacheDirectory d(64);
  for (uint64_t i = 0; i < 32; ++i) {
    auto e = d.Create(i << 12, 12);
    ASSERT_TRUE(e.ok());
    (*e)->last_active = i;  // Entry 0 is stalest.
  }
  // Evict all 32 entries one by one; every pick must be a live entry and all must go.
  for (int round = 0; round < 32; ++round) {
    auto victim = d.FindEvictionVictim(/*now=*/1000, /*scan_limit=*/8);
    ASSERT_TRUE(victim.has_value()) << "round " << round;
    ASSERT_NE(d.Lookup(*victim), nullptr);
    ASSERT_TRUE(d.Remove(*victim).ok());
  }
  EXPECT_EQ(d.entry_count(), 0u);
  EXPECT_FALSE(d.FindEvictionVictim(1000).has_value());
}

// A scan limited to fewer entries than exist must still make forward progress around the
// ring: successive sweeps visit different windows rather than rescanning the same prefix.
TEST(DirectoryClock, BoundedScanRotatesWindows) {
  CacheDirectory d(64);
  for (uint64_t i = 0; i < 16; ++i) {
    auto e = d.Create(i << 12, 12);
    ASSERT_TRUE(e.ok());
    (*e)->last_active = 100 - i;
  }
  // scan_limit=4: first sweep sees entries 0..3 (stalest among them is base 3<<12, the one
  // with the smallest last_active in the window).
  auto v1 = d.FindEvictionVictim(/*now=*/1000, /*scan_limit=*/4);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, uint64_t{3} << 12);
  // Second sweep resumes where the first stopped: entries 4..7.
  auto v2 = d.FindEvictionVictim(/*now=*/1000, /*scan_limit=*/4);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, uint64_t{7} << 12);
}

}  // namespace
}  // namespace mind
