// Unit tests for the in-network cache directory (§4.3, §6.3): SRAM slot accounting, region
// lookup, split/merge mechanics and capacity eviction.
#include <gtest/gtest.h>

#include "src/dataplane/directory.h"

namespace mind {
namespace {

TEST(Sram, AllocateFreeCycle) {
  SramSlotStore s(2);
  auto a = s.Allocate(0x1000);
  auto b = s.Allocate(0x2000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(s.Allocate(0x3000).status().code(), ErrorCode::kResourceExhausted);
  ASSERT_TRUE(s.Free(0x1000).ok());
  EXPECT_TRUE(s.Allocate(0x3000).ok());
  EXPECT_EQ(s.used(), 2u);
  EXPECT_EQ(s.high_water(), 2u);
}

TEST(Sram, RekeyPreservesSlot) {
  SramSlotStore s(4);
  auto slot = s.Allocate(0x1000);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(s.Rekey(0x1000, 0x9000).ok());
  EXPECT_FALSE(s.SlotOf(0x1000).has_value());
  EXPECT_EQ(s.SlotOf(0x9000).value(), *slot);
}

TEST(Directory, CreateAndLookup) {
  CacheDirectory d(16);
  auto e = d.Create(0x10000, 14);  // 16 KB region.
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(d.Lookup(0x10000), *e);
  EXPECT_EQ(d.Lookup(0x13fff), *e);  // Last byte of the region.
  EXPECT_EQ(d.Lookup(0x14000), nullptr);
  EXPECT_EQ(d.Lookup(0xffff), nullptr);
  EXPECT_EQ(d.entry_count(), 1u);
}

TEST(Directory, RejectsBadGeometry) {
  CacheDirectory d(16);
  EXPECT_EQ(d.Create(0x1000, 11).status().code(), ErrorCode::kInvalidArgument);  // < 4 KB.
  EXPECT_EQ(d.Create(0x1000, 14).status().code(), ErrorCode::kInvalidArgument);  // Unaligned.
}

TEST(Directory, RejectsOverlap) {
  CacheDirectory d(16);
  ASSERT_TRUE(d.Create(0x10000, 14).ok());
  EXPECT_EQ(d.Create(0x10000, 12).status().code(), ErrorCode::kExists);
  EXPECT_EQ(d.Create(0x12000, 12).status().code(), ErrorCode::kExists);  // Inside.
  EXPECT_EQ(d.Create(0x0, 17).status().code(), ErrorCode::kExists);      // Encloses.
  EXPECT_TRUE(d.Create(0x14000, 14).ok());                               // Adjacent OK.
}

TEST(Directory, SplitHalvesAndInheritsState) {
  CacheDirectory d(16);
  auto e = d.Create(0x10000, 14);
  ASSERT_TRUE(e.ok());
  (*e)->state = MsiState::kShared;
  (*e)->sharers = BladeBit(2) | BladeBit(5);
  ASSERT_TRUE(d.Split(0x10000).ok());
  EXPECT_EQ(d.entry_count(), 2u);
  DirectoryEntry* lower = d.Lookup(0x10000);
  DirectoryEntry* upper = d.Lookup(0x12000);
  ASSERT_NE(lower, nullptr);
  ASSERT_NE(upper, nullptr);
  EXPECT_NE(lower, upper);
  EXPECT_EQ(lower->size(), 0x2000u);
  EXPECT_EQ(upper->size(), 0x2000u);
  // Children inherit the coherence state conservatively.
  EXPECT_EQ(upper->state, MsiState::kShared);
  EXPECT_EQ(upper->sharers, lower->sharers);
}

TEST(Directory, SplitStopsAtPageFloor) {
  CacheDirectory d(16);
  ASSERT_TRUE(d.Create(0x10000, 12).ok());  // Already 4 KB.
  EXPECT_EQ(d.Split(0x10000).code(), ErrorCode::kInvalidArgument);
}

TEST(Directory, SplitFailsWhenSramFull) {
  CacheDirectory d(1);
  ASSERT_TRUE(d.Create(0x10000, 14).ok());
  EXPECT_EQ(d.Split(0x10000).code(), ErrorCode::kResourceExhausted);
}

TEST(Directory, MergeBuddiesUnionsSharers) {
  CacheDirectory d(16);
  auto lo = d.Create(0x10000, 13);
  auto hi = d.Create(0x12000, 13);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  (*lo)->state = MsiState::kShared;
  (*lo)->sharers = BladeBit(1);
  (*hi)->state = MsiState::kShared;
  (*hi)->sharers = BladeBit(2);
  ASSERT_TRUE(d.MergeWithBuddy(0x10000, 21).ok());
  EXPECT_EQ(d.entry_count(), 1u);
  DirectoryEntry* merged = d.Lookup(0x13fff);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->base, 0x10000u);
  EXPECT_EQ(merged->size(), 0x4000u);
  EXPECT_EQ(merged->sharers, BladeBit(1) | BladeBit(2));
  EXPECT_EQ(merged->state, MsiState::kShared);
}

TEST(Directory, MergeFromUpperBuddyWorks) {
  CacheDirectory d(16);
  ASSERT_TRUE(d.Create(0x10000, 13).ok());
  ASSERT_TRUE(d.Create(0x12000, 13).ok());
  ASSERT_TRUE(d.MergeWithBuddy(0x12000, 21).ok());  // Initiated from the upper half.
  EXPECT_EQ(d.entry_count(), 1u);
  EXPECT_EQ(d.Lookup(0x12000)->base, 0x10000u);
}

TEST(Directory, MergeRefusesConflictingOwners) {
  CacheDirectory d(16);
  auto lo = d.Create(0x10000, 13);
  auto hi = d.Create(0x12000, 13);
  (*lo)->state = MsiState::kModified;
  (*lo)->owner = 1;
  (*lo)->sharers = BladeBit(1);
  (*hi)->state = MsiState::kModified;
  (*hi)->owner = 2;
  (*hi)->sharers = BladeBit(2);
  EXPECT_EQ(d.MergeWithBuddy(0x10000, 21).code(), ErrorCode::kInvalidArgument);
}

TEST(Directory, MergeAllowsOwnerPlusInvalid) {
  CacheDirectory d(16);
  auto lo = d.Create(0x10000, 13);
  auto hi = d.Create(0x12000, 13);
  (*lo)->state = MsiState::kModified;
  (*lo)->owner = 3;
  (*lo)->sharers = BladeBit(3);
  (*hi)->state = MsiState::kInvalid;
  ASSERT_TRUE(d.MergeWithBuddy(0x10000, 21).ok());
  DirectoryEntry* merged = d.Lookup(0x12000);
  EXPECT_EQ(merged->state, MsiState::kModified);
  EXPECT_EQ(merged->owner, 3);
}

TEST(Directory, MergeRespectsMaxSize) {
  CacheDirectory d(16);
  ASSERT_TRUE(d.Create(0x10000, 13).ok());
  ASSERT_TRUE(d.Create(0x12000, 13).ok());
  EXPECT_EQ(d.MergeWithBuddy(0x10000, 13).code(), ErrorCode::kInvalidArgument);
}

TEST(Directory, MergeNeedsSameSizeBuddy) {
  CacheDirectory d(16);
  ASSERT_TRUE(d.Create(0x10000, 13).ok());
  ASSERT_TRUE(d.Create(0x12000, 12).ok());  // Half-size neighbour, not a buddy.
  EXPECT_EQ(d.MergeWithBuddy(0x10000, 21).code(), ErrorCode::kNotFound);
}

TEST(Directory, SplitThenMergeRoundTripsSlots) {
  CacheDirectory d(4);
  ASSERT_TRUE(d.Create(0x10000, 14).ok());
  ASSERT_TRUE(d.Split(0x10000).ok());
  ASSERT_TRUE(d.Split(0x10000).ok());
  EXPECT_EQ(d.entry_count(), 3u);
  ASSERT_TRUE(d.MergeWithBuddy(0x10000, 21).ok());
  ASSERT_TRUE(d.MergeWithBuddy(0x10000, 21).ok());
  EXPECT_EQ(d.entry_count(), 1u);
  EXPECT_EQ(d.Lookup(0x10000)->size(), 0x4000u);
  EXPECT_EQ(d.slots().used(), 1u);
}

TEST(Directory, EvictionVictimPrefersStale) {
  CacheDirectory d(8);
  auto a = d.Create(0x10000, 12);
  auto b = d.Create(0x20000, 12);
  auto c = d.Create(0x30000, 12);
  (*a)->last_active = 100;
  (*b)->last_active = 5000;
  (*c)->last_active = 2000;
  auto victim = d.FindEvictionVictim(/*now=*/10000);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0x10000u);  // Stalest.
}

TEST(Directory, EvictionSkipsBusyEntries) {
  CacheDirectory d(8);
  auto a = d.Create(0x10000, 12);
  auto b = d.Create(0x20000, 12);
  (*a)->last_active = 0;
  (*a)->busy_until = 1'000'000;  // Mid-transition: not evictable.
  (*b)->last_active = 500;
  auto victim = d.FindEvictionVictim(/*now=*/1000);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0x20000u);
}

TEST(Directory, EvictionNoneWhenAllBusy) {
  CacheDirectory d(8);
  auto a = d.Create(0x10000, 12);
  (*a)->busy_until = 1'000'000;
  EXPECT_FALSE(d.FindEvictionVictim(/*now=*/1000).has_value());
}

TEST(DirectoryEntry, RoleResolution) {
  DirectoryEntry e;
  e.state = MsiState::kModified;
  e.owner = 4;
  e.sharers = BladeBit(4);
  EXPECT_EQ(e.RoleOf(4), RequestorRole::kOwner);
  EXPECT_EQ(e.RoleOf(2), RequestorRole::kNone);
  e.state = MsiState::kShared;
  e.owner = kInvalidComputeBlade;
  e.sharers = BladeBit(1) | BladeBit(2);
  EXPECT_EQ(e.RoleOf(1), RequestorRole::kSharer);
  EXPECT_EQ(e.RoleOf(4), RequestorRole::kNone);
}

}  // namespace
}  // namespace mind
