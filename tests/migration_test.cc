// End-to-end tests for page migration via outlier translation entries (§4.1).
#include <gtest/gtest.h>

#include "src/core/mind.h"

namespace mind {
namespace {

RackConfig Config() {
  RackConfig c;
  c.num_compute_blades = 2;
  c.num_memory_blades = 2;
  c.memory_blade_capacity = 1ull << 30;
  c.compute_cache_bytes = 16ull << 20;
  c.store_data = true;
  return c;
}

class MigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rack_ = std::make_unique<Rack>(Config());
    pid_ = *rack_->Exec("mig");
    tid0_ = rack_->SpawnThread(pid_, 0)->tid;
    tid1_ = rack_->SpawnThread(pid_, 1)->tid;
    va_ = *rack_->Mmap(pid_, 1 << 20, PermClass::kReadWrite);
  }

  std::unique_ptr<Rack> rack_;
  ProcessId pid_ = kInvalidProcess;
  ThreadId tid0_ = 0;
  ThreadId tid1_ = 0;
  VirtAddr va_ = 0;
};

TEST_F(MigrationTest, DataSurvivesMigration) {
  // Write a recognizable pattern, migrate the 64 KB range, read it back from the other
  // blade: the bytes must have followed the pages to the new memory blade.
  const uint64_t magic = 0xabcdef0123456789ull;
  SimTime t = *rack_->WriteBytes(tid0_, va_ + 3 * kPageSize, &magic, sizeof(magic), 0);

  const MemoryBladeId old_home = rack_->translator().Translate(va_)->blade;
  const MemoryBladeId new_home = old_home == 0 ? 1 : 0;
  auto done = rack_->MigrateRange(va_, 16, new_home, t);  // 64 KB.
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  t = *done;

  // Translation now points at the new home (outlier LPM override).
  auto tr = rack_->translator().Translate(va_ + 3 * kPageSize);
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr->blade, new_home);

  uint64_t readback = 0;
  t = *rack_->ReadBytes(tid1_, va_ + 3 * kPageSize, &readback, sizeof(readback), t);
  EXPECT_EQ(readback, magic);
}

TEST_F(MigrationTest, AddressesOutsideRangeUnaffected) {
  const uint64_t before = 7;
  SimTime t = *rack_->WriteBytes(tid0_, va_ + 128 * kPageSize, &before, sizeof(before), 0);
  const MemoryBladeId old_home = rack_->translator().Translate(va_)->blade;
  auto done = rack_->MigrateRange(va_, 16, old_home == 0 ? 1 : 0, t);
  ASSERT_TRUE(done.ok());
  // Pages beyond the migrated 64 KB still translate to the original blade range.
  auto tr = rack_->translator().Translate(va_ + 128 * kPageSize);
  EXPECT_EQ(tr->blade, old_home);
  uint64_t readback = 0;
  (void)rack_->ReadBytes(tid1_, va_ + 128 * kPageSize, &readback, sizeof(readback), *done);
  EXPECT_EQ(readback, before);
}

TEST_F(MigrationTest, WritesAfterMigrationLandOnNewHome) {
  const MemoryBladeId old_home = rack_->translator().Translate(va_)->blade;
  const MemoryBladeId new_home = old_home == 0 ? 1 : 0;
  auto done = rack_->MigrateRange(va_, 16, new_home, 0);
  ASSERT_TRUE(done.ok());

  const uint64_t writes_before = rack_->memory_blade(new_home).writes();
  const uint64_t value = 99;
  SimTime t = *rack_->WriteBytes(tid0_, va_, &value, sizeof(value), *done);
  // Force a flush to memory via a cross-blade read (M->S handoff writes back to new home).
  uint64_t readback = 0;
  t = *rack_->ReadBytes(tid1_, va_, &readback, sizeof(readback), t);
  EXPECT_EQ(readback, value);
  EXPECT_GT(rack_->memory_blade(new_home).writes(), writes_before);
}

TEST_F(MigrationTest, RejectsBadArguments) {
  EXPECT_FALSE(rack_->MigrateRange(va_, 16, /*dst=*/9, 0).ok());          // No such blade.
  EXPECT_FALSE(rack_->MigrateRange(0xdead0000, 16, 0, 0).ok());           // Unmapped.
}

TEST_F(MigrationTest, CoherenceRestartsColdAfterMigration) {
  SimTime t = rack_->AccessByThread(tid0_, va_, AccessType::kWrite, 0).completion;
  ASSERT_NE(rack_->directory().Lookup(va_), nullptr);
  auto done = rack_->MigrateRange(va_, 16, 1, t);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(rack_->directory().Lookup(va_), nullptr);  // Entries removed with the move.
  auto r = rack_->AccessByThread(tid1_, va_, AccessType::kRead, *done);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.prev_state, MsiState::kInvalid);  // Fresh I-state at the new home.
}

}  // namespace
}  // namespace mind
