// Unit tests for balanced memory allocation (§4.1): least-loaded placement, first-fit
// fragmentation behaviour, power-of-two rounding, interleaved-page comparison policy.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/controlplane/allocator.h"

namespace mind {
namespace {

constexpr uint64_t kMiB = 1024 * 1024;

BalancedAllocator MakeAllocator(int blades, uint64_t capacity, AllocatorConfig cfg = {}) {
  BalancedAllocator a(cfg);
  for (int i = 0; i < blades; ++i) {
    EXPECT_TRUE(a.AddBlade(static_cast<MemoryBladeId>(i),
                           static_cast<uint64_t>(i) * capacity, capacity)
                    .ok());
  }
  return a;
}

TEST(Allocator, RoundsToPowerOfTwo) {
  auto a = MakeAllocator(1, 64 * kMiB);
  auto vma = a.Allocate(5000);
  ASSERT_TRUE(vma.ok());
  EXPECT_EQ(vma->size, 8192u);  // 5000 -> 8 KB.
  EXPECT_TRUE(IsAligned(vma->base, vma->size));  // One TCAM entry.
}

TEST(Allocator, BalancedPlacementPicksLeastLoaded) {
  auto a = MakeAllocator(4, 64 * kMiB);
  // Allocate four equal chunks: each must land on a different blade.
  std::vector<MemoryBladeId> used;
  for (int i = 0; i < 4; ++i) {
    auto vma = a.Allocate(4 * kMiB);
    ASSERT_TRUE(vma.ok());
    ASSERT_EQ(vma->chunks.size(), 1u);
    used.push_back(vma->chunks[0].blade);
  }
  std::sort(used.begin(), used.end());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(used[static_cast<size_t>(i)], i);
  }
  EXPECT_DOUBLE_EQ(JainFairnessIndex(a.PerBladeLoad()), 1.0);
}

TEST(Allocator, MixedSizesStayNearBalanced) {
  auto a = MakeAllocator(8, 256 * kMiB);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const uint64_t size = (1 + rng.NextBelow(512)) * kPageSize;
    ASSERT_TRUE(a.Allocate(size).ok());
  }
  // The paper reports near-optimal balancing (Fig. 8 right, Jain index ~1.0).
  EXPECT_GT(JainFairnessIndex(a.PerBladeLoad()), 0.95);
}

TEST(Allocator, FreeAndReuse) {
  auto a = MakeAllocator(1, 16 * kMiB);
  auto v1 = a.Allocate(8 * kMiB);
  ASSERT_TRUE(v1.ok());
  auto v2 = a.Allocate(8 * kMiB);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(a.Allocate(8 * kMiB).ok());  // Full.
  ASSERT_TRUE(a.Free(*v1).ok());
  auto v3 = a.Allocate(8 * kMiB);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->base, v1->base);  // First-fit reuses the freed extent.
}

TEST(Allocator, FreeCoalescesExtents) {
  auto a = MakeAllocator(1, 16 * kMiB);
  auto v1 = a.Allocate(4 * kMiB);
  auto v2 = a.Allocate(4 * kMiB);
  auto v3 = a.Allocate(4 * kMiB);
  ASSERT_TRUE(v1.ok() && v2.ok() && v3.ok());
  ASSERT_TRUE(a.Free(*v1).ok());
  ASSERT_TRUE(a.Free(*v3).ok());
  ASSERT_TRUE(a.Free(*v2).ok());  // Middle free must coalesce with both sides.
  auto big = a.Allocate(16 * kMiB);
  EXPECT_TRUE(big.ok());
}

TEST(Allocator, ExhaustionReturnsNoMemory) {
  auto a = MakeAllocator(2, 8 * kMiB);
  EXPECT_EQ(a.Allocate(16 * kMiB).status().code(), ErrorCode::kNoMemory);
  EXPECT_EQ(a.Allocate(0).status().code(), ErrorCode::kInvalidArgument);
}

TEST(Allocator, SpillsToOtherBladeWhenPreferredFull) {
  auto a = MakeAllocator(2, 8 * kMiB);
  ASSERT_TRUE(a.Allocate(8 * kMiB).ok());  // Fills blade A.
  ASSERT_TRUE(a.Allocate(8 * kMiB).ok());  // Fills blade B.
  EXPECT_FALSE(a.Allocate(kPageSize * 2).ok());
}

TEST(Allocator, InterleavePolicySpreadsChunks) {
  AllocatorConfig cfg;
  cfg.policy = PlacementPolicy::kPageInterleave;
  cfg.interleave_page_size = 2 * kMiB;
  auto a = MakeAllocator(4, 64 * kMiB, cfg);
  auto vma = a.Allocate(8 * kMiB);  // 4 chunks of 2 MB.
  ASSERT_TRUE(vma.ok());
  EXPECT_EQ(vma->chunks.size(), 4u);
  // Round-robin: each chunk on a different blade.
  std::vector<MemoryBladeId> blades;
  for (const auto& c : vma->chunks) {
    blades.push_back(c.blade);
  }
  std::sort(blades.begin(), blades.end());
  EXPECT_EQ(std::unique(blades.begin(), blades.end()), blades.end());
  // One translation rule per chunk — the linear growth of Fig. 8 (center).
  EXPECT_EQ(a.placement_count(), 4u);
}

TEST(Allocator, InterleaveHugePagesImbalanceSmallAllocs) {
  AllocatorConfig cfg;
  cfg.policy = PlacementPolicy::kPageInterleave;
  cfg.interleave_page_size = 64 * kMiB;  // "1 GB page" regime, scaled down.
  auto a = MakeAllocator(4, 256 * kMiB, cfg);
  // Many small allocations each consume a full huge page on one blade.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(a.Allocate(kMiB).ok());
  }
  // 3 huge chunks over 4 blades: someone has nothing.
  EXPECT_LT(JainFairnessIndex(a.PerBladeLoad()), 0.8);
}

TEST(Allocator, BalancedHandlesInterleaveRollback) {
  AllocatorConfig cfg;
  cfg.policy = PlacementPolicy::kPageInterleave;
  cfg.interleave_page_size = 8 * kMiB;
  auto a = MakeAllocator(2, 8 * kMiB, cfg);
  ASSERT_TRUE(a.Allocate(16 * kMiB).ok());  // Exactly fills both blades.
  auto fail = a.Allocate(8 * kMiB);
  EXPECT_FALSE(fail.ok());  // Nothing left; rollback must not corrupt state.
  EXPECT_EQ(a.total_allocated(), 16 * kMiB);
}

}  // namespace
}  // namespace mind
